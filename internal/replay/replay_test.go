package replay

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/vm"
)

const racy = `global int m = 0;
global int counter = 0;
void worker(int n) {
	for (int i = 0; i < n; i++) {
		lock(&m);
		counter = counter + 1;
		unlock(&m);
	}
}
int main() {
	int t1 = spawn(worker, 10);
	int t2 = spawn(worker, 10);
	join(t1);
	join(t2);
	return counter;
}`

func TestRecordReplayRoundTrip(t *testing.T) {
	prog := ir.MustCompile("t.mc", racy)
	for seed := int64(0); seed < 20; seed++ {
		log, meter := Record(prog, vm.Config{Seed: seed, PreemptMean: 2})
		if len(log.Events) == 0 {
			t.Fatalf("seed %d: empty log", seed)
		}
		if meter.OverheadPct() <= 0 {
			t.Fatalf("seed %d: no recording overhead", seed)
		}
		out, err := Replay(prog, log)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Exit != log.Outcome.Exit {
			t.Fatalf("seed %d: replayed exit %d, recorded %d", seed, out.Exit, log.Outcome.Exit)
		}
	}
}

func TestReplayOfFailingRun(t *testing.T) {
	prog := ir.MustCompile("t.mc", `
struct q { int* mut; };
global struct q* g;
void cons(int a) { struct q* f = g; unlock(f->mut); }
int main() {
	g = malloc(sizeof(q));
	g->mut = malloc(8);
	int t = spawn(cons, 0);
	free(g->mut);
	g->mut = null;
	join(t);
	return 0;
}`)
	var log *Log
	for seed := int64(0); seed < 300; seed++ {
		l, _ := Record(prog, vm.Config{Seed: seed, PreemptMean: 3})
		if l.Outcome.Failed {
			log = l
			break
		}
	}
	if log == nil {
		t.Fatal("no failing recording found")
	}
	out, err := Replay(prog, log)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !out.Failed || out.Report.ID() != log.Outcome.Report.ID() {
		t.Fatal("failure not reproduced under replay")
	}
}

func TestRecordingLogsSharedAccessesOnly(t *testing.T) {
	prog := ir.MustCompile("t.mc", `
global int g;
int main() {
	int local = 0;
	for (int i = 0; i < 50; i++) { local = local + i; }
	g = local;
	return g;
}`)
	log, _ := Record(prog, vm.Config{Seed: 1})
	for _, e := range log.Events {
		if e.Kind == EvLoad || e.Kind == EvStore {
			if vm.IsStackAddr(e.Addr) {
				t.Fatalf("stack access recorded: %+v", e)
			}
		}
	}
	// The single global store must be present.
	var stores int
	for _, e := range log.Events {
		if e.Kind == EvStore {
			stores++
		}
	}
	if stores != 1 {
		t.Errorf("expected exactly 1 shared store, got %d", stores)
	}
}

func TestRecordOverheadDwarfsBase(t *testing.T) {
	// Record/replay of shared-memory-heavy code must cost orders of
	// magnitude more than the hardware approaches (the Fig. 13 shape).
	prog := ir.MustCompile("t.mc", `
global int a;
int main() {
	for (int i = 0; i < 500; i++) { a = a + i; }
	return a;
}`)
	pct := OverheadPct(prog, vm.Config{Seed: 1})
	if pct < 100 {
		t.Errorf("record/replay overhead suspiciously low: %.1f%%", pct)
	}
}

// Property: recording is deterministic in the seed — same seed, same log.
func TestRecordDeterminism(t *testing.T) {
	prog := ir.MustCompile("t.mc", racy)
	f := func(seed int64) bool {
		a, _ := Record(prog, vm.Config{Seed: seed, PreemptMean: 2})
		b, _ := Record(prog, vm.Config{Seed: seed, PreemptMean: 2})
		if len(a.Events) != len(b.Events) {
			return false
		}
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
