// Package replay implements the record/replay baseline Gist is compared
// against in Fig. 13 (Mozilla rr-style software record/replay).
//
// The recorder logs every source of nondeterminism the replayer would
// need: the scheduling decisions, thread creations, and every shared
// (non-stack) memory access with its value. Each logged event pays the
// software logging cost (synchronization + copy), which is what makes
// full record/replay roughly two orders of magnitude more expensive than
// hardware control-flow tracing — the paper's core comparison.
//
// Replay re-executes the program and verifies the recorded event stream
// is reproduced exactly, the fidelity property record/replay systems
// guarantee.
package replay

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/ir"
	"repro/internal/vm"
)

// EventKind classifies recorded events.
type EventKind int

// Recorded event kinds.
const (
	EvLoad EventKind = iota
	EvStore
	EvSchedule
	EvSpawn
)

// Event is one recorded nondeterministic event.
type Event struct {
	Kind    EventKind
	Thread  int
	InstrID int
	Addr    int64
	Val     int64
	Clock   int64
}

// Log is a complete recording of one run.
type Log struct {
	Seed        int64
	Workload    vm.Workload
	PreemptMean int
	MaxSteps    int64
	Events      []Event
	Outcome     *vm.Outcome
}

// Record executes prog under full recording and returns the log and the
// overhead meter. Besides the per-event logging cost, every instruction
// executed while more than one thread is runnable pays the single-core
// serialization tax: rr deschedules all but one thread, so parallel
// phases slow down by the lost parallelism.
func Record(prog *ir.Program, cfg vm.Config) (*Log, *cost.Meter) {
	log := &Log{Seed: cfg.Seed, Workload: cfg.Workload, PreemptMean: cfg.PreemptMean, MaxSteps: cfg.MaxSteps}
	meter := &cost.Meter{}
	hooks := recordHooks(log, meter)
	var machine *vm.VM
	base := hooks.OnStep
	hooks.OnStep = func(t *vm.Thread, in *ir.Instr, clock int64) {
		base(t, in, clock)
		if machine.RunnableThreads() > 1 {
			meter.AddExtra(cost.RRSerializeMC)
		}
	}
	cfg.Hooks = hooks
	machine = vm.New(prog, cfg)
	log.Outcome = machine.Run()
	return log, meter
}

func recordHooks(log *Log, meter *cost.Meter) vm.Hooks {
	emit := func(e Event) {
		log.Events = append(log.Events, e)
		if meter != nil {
			meter.AddExtra(cost.RREventMC)
		}
	}
	return vm.Hooks{
		OnStep: func(t *vm.Thread, in *ir.Instr, clock int64) {
			if meter != nil {
				meter.AddInstr(1)
			}
		},
		OnLoad: func(t *vm.Thread, in *ir.Instr, addr, val, size int64, clock int64) {
			if !vm.IsStackAddr(addr) {
				emit(Event{Kind: EvLoad, Thread: t.ID, InstrID: in.ID, Addr: addr, Val: val, Clock: clock})
			}
		},
		OnStore: func(t *vm.Thread, in *ir.Instr, addr, val, size int64, clock int64) {
			if !vm.IsStackAddr(addr) {
				emit(Event{Kind: EvStore, Thread: t.ID, InstrID: in.ID, Addr: addr, Val: val, Clock: clock})
			}
		},
		OnSchedule: func(from, to int, clock int64) {
			emit(Event{Kind: EvSchedule, Thread: to, Addr: int64(from), Clock: clock})
		},
		OnSpawn: func(parent, child int, fn *ir.Func, clock int64) {
			emit(Event{Kind: EvSpawn, Thread: parent, Addr: int64(child), Clock: clock})
		},
	}
}

// Replay re-executes the recorded run and verifies that the event stream
// and the outcome match the log exactly. It returns the replayed outcome.
func Replay(prog *ir.Program, log *Log) (*vm.Outcome, error) {
	check := &Log{Seed: log.Seed, Workload: log.Workload}
	cfg := vm.Config{
		Seed:        log.Seed,
		Workload:    log.Workload,
		PreemptMean: log.PreemptMean,
		MaxSteps:    log.MaxSteps,
		Hooks:       recordHooks(check, nil),
	}
	out := vm.Run(prog, cfg)
	if len(check.Events) != len(log.Events) {
		return out, fmt.Errorf("replay: event count mismatch: recorded %d, replayed %d", len(log.Events), len(check.Events))
	}
	for i := range log.Events {
		if log.Events[i] != check.Events[i] {
			return out, fmt.Errorf("replay: event %d diverged: recorded %+v, replayed %+v", i, log.Events[i], check.Events[i])
		}
	}
	if out.Failed != log.Outcome.Failed || out.Exit != log.Outcome.Exit || out.Steps != log.Outcome.Steps {
		return out, fmt.Errorf("replay: outcome diverged")
	}
	if out.Failed && out.Report.ID() != log.Outcome.Report.ID() {
		return out, fmt.Errorf("replay: failure identity diverged")
	}
	return out, nil
}

// OverheadPct runs prog under recording and returns the overhead
// percentage (the Fig. 13 measurement for the rr bar).
func OverheadPct(prog *ir.Program, cfg vm.Config) float64 {
	_, meter := Record(prog, cfg)
	return meter.OverheadPct()
}
