package shard

import (
	"strings"
	"testing"
	"time"
)

// TestPlaceIsStableAndInRange pins the placement hash: deterministic
// across calls, always in [0, shards), and sensitive to every identity
// component — so two campaigns differing only by signature can land on
// different shards.
func TestPlaceIsStableAndInRange(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 16} {
		seen := map[int]bool{}
		for _, id := range [][3]string{
			{"acme", "pbzip2", ""},
			{"acme", "pbzip2", "sig-a"},
			{"acme", "curl", ""},
			{"globex", "pbzip2", ""},
		} {
			s := Place(id[0], id[1], id[2], shards)
			if s < 0 || s >= shards {
				t.Fatalf("Place(%v, %d) = %d out of range", id, shards, s)
			}
			if again := Place(id[0], id[1], id[2], shards); again != s {
				t.Fatalf("Place(%v, %d) unstable: %d then %d", id, shards, s, again)
			}
			seen[s] = true
		}
		if shards >= 16 && len(seen) < 2 {
			t.Fatalf("Place sent 4 distinct identities to one shard of %d", shards)
		}
	}
	// The NUL joiner keeps concatenation ambiguity out of the hash.
	if Place("a", "bc", "", 1024) == Place("ab", "c", "", 1024) {
		t.Fatalf("Place conflates (a, bc) with (ab, c)")
	}
}

// TestCampaignNameMatchesServiceLayout pins the sanitized naming the
// fleet shares with the service's state directory layout.
func TestCampaignNameMatchesServiceLayout(t *testing.T) {
	got := CampaignName("acme corp", "pbzip2#sig/1")
	want := "acme_corp__pbzip2_sig_1"
	if got != want {
		t.Fatalf("CampaignName = %q, want %q", got, want)
	}
}

// TestFleetFlagValidation table-tests shard.Flags the same way
// ServeFlags and AgentFlags are tested: every rejection names the
// offending flag (the CLI turns these into exit 2).
func TestFleetFlagValidation(t *testing.T) {
	valid := func() Flags {
		return Flags{Shards: 3, WorkerID: 2, Worker: true, StateDir: "fleet", Lease: 10 * time.Second}
	}
	cases := []struct {
		name     string
		mutate   func(*Flags)
		wantFlag string // "" means valid
	}{
		{"valid worker", func(f *Flags) {}, ""},
		{"valid coordinator", func(f *Flags) { f.Worker = false; f.WorkerID = 0 }, ""},
		{"zero shards", func(f *Flags) { f.Shards = 0 }, "-shards"},
		{"negative shards", func(f *Flags) { f.Shards = -4 }, "-shards"},
		{"zero worker id", func(f *Flags) { f.WorkerID = 0 }, "-worker-id"},
		{"negative worker id", func(f *Flags) { f.WorkerID = -1 }, "-worker-id"},
		{"worker id past shards", func(f *Flags) { f.WorkerID = 4 }, "-worker-id"},
		{"coordinator ignores worker id", func(f *Flags) { f.Worker = false; f.WorkerID = -9 }, ""},
		{"empty state dir", func(f *Flags) { f.StateDir = "" }, "-state-dir"},
		{"zero lease", func(f *Flags) { f.Lease = 0 }, "-lease"},
		{"negative lease", func(f *Flags) { f.Lease = -time.Second }, "-lease"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := valid()
			tc.mutate(&f)
			err := f.Validate()
			if tc.wantFlag == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid flags accepted")
			}
			if !strings.Contains(err.Error(), tc.wantFlag) {
				t.Fatalf("error %q does not name %s", err, tc.wantFlag)
			}
		})
	}
}
