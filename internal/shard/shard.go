// Package shard scales campaign ownership across worker processes.
//
// The paper's deployment is one Gist server driving the whole endpoint
// fleet; this layer makes campaign *placement* explicit so the control
// plane can go horizontal. A coordinator assigns each campaign — one
// (tenant, bug, signature) diagnosis stream — to a shard by FNV hash,
// and worker processes claim ownership of assigned campaigns through
// lease records. The only medium shared between processes is a
// store.Backend: a DirBackend on a shared directory in production, a
// MemBackend in tests. Everything a worker needs to drive a campaign —
// the assignment record, the lease table, the generation-numbered
// checkpoint store, the finished-sketch record — lives under one root
// on that backend:
//
//	<root>/assign/  one record per placed campaign
//	<root>/lease/   ownership claims (see lease.go)
//	<root>/state/   per-tenant checkpoint stores (internal/store)
//	<root>/done/    finished diagnoses (sketch bytes + outcome)
//
// The safety invariant is the one every layer of this repo pins: a
// diagnosis is a pure function of its configuration and seed cursor, so
// a campaign resumed by another worker from the last durable checkpoint
// generation — or even briefly double-driven during a lease handoff —
// produces sketches byte-identical to the undisturbed single-process
// run.
package shard

import (
	"fmt"
	"hash/fnv"
	"path/filepath"
	"strings"
	"time"
)

// Place maps a campaign identity to a shard index in [0, shards). The
// hash is FNV-64a over the NUL-joined identity, so placement is stable
// across processes, restarts, and Go versions.
func Place(tenant, bug, sig string, shards int) int {
	h := fnv.New64a()
	h.Write([]byte(tenant))
	h.Write([]byte{0})
	h.Write([]byte(bug))
	h.Write([]byte{0})
	h.Write([]byte(sig))
	return int(h.Sum64() % uint64(shards))
}

// Layout helpers: every process derives the same paths from the root.

// AssignDir is where the coordinator's placement records live.
func AssignDir(root string) string { return filepath.Join(root, "assign") }

// LeaseDir is where workers' ownership claims live.
func LeaseDir(root string) string { return filepath.Join(root, "lease") }

// DoneDir is where finished diagnoses land.
func DoneDir(root string) string { return filepath.Join(root, "done") }

// StateRoot is the checkpoint-store root workers open per-tenant stores
// under — the same layout internal/service uses, so a server on the
// same backend serves fleet-produced sketches with its existing reload
// path.
func StateRoot(root string) string { return filepath.Join(root, "state") }

// Sanitize maps a tenant or campaign label to a safe path segment,
// byte-compatible with the service's state layout.
func Sanitize(label string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, label)
}

// CampaignName is the fleet-wide file-safe name of one campaign: the
// sanitized tenant and campaign key joined so assignment, lease, and
// done records for the same diagnosis always collide on the same name.
func CampaignName(tenant, key string) string {
	return Sanitize(tenant) + "__" + Sanitize(key)
}

// Flags is the CLI-facing shard fleet configuration (-coordinator and
// -worker modes), validated before any work starts. Field names mirror
// the gist flags that populate them; every validation error names the
// offending flag so the CLI convention (exit 2, flag named) holds.
type Flags struct {
	Shards   int           // -shards
	WorkerID int           // -worker-id (1-based; worker mode only)
	Worker   bool          // -worker (as opposed to -coordinator)
	StateDir string        // -state-dir (the shared fleet root)
	Lease    time.Duration // -lease (ownership lease TTL)
}

// Validate rejects nonsensical fleet flags, naming the flag at fault.
func (f Flags) Validate() error {
	if f.Shards <= 0 {
		return fmt.Errorf("-shards %d must be positive", f.Shards)
	}
	if f.Worker {
		if f.WorkerID <= 0 {
			return fmt.Errorf("-worker-id %d must be positive (workers are numbered 1..-shards)", f.WorkerID)
		}
		if f.WorkerID > f.Shards {
			return fmt.Errorf("-worker-id %d out of range: -shards is %d", f.WorkerID, f.Shards)
		}
	}
	if f.StateDir == "" {
		return fmt.Errorf("-state-dir must not be empty (it is the fleet's shared root)")
	}
	if f.Lease <= 0 {
		return fmt.Errorf("-lease %v must be positive", f.Lease)
	}
	return nil
}
