package shard

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/store"
	"repro/internal/vm"
)

// Assignment is the durable record placing one campaign on the fleet:
// everything a worker needs to build (or resume) the diagnosis.
type Assignment struct {
	Tenant string `json:"tenant"`
	Bug    string `json:"bug"`
	// Key is the campaign key within the tenant (the bug name, refined
	// by "#<signature>" for report submits), matching the service's
	// campaign registry and state layout.
	Key       string `json:"key"`
	Signature string `json:"signature,omitempty"`
	// Shard is the placement hash's verdict, recorded so workers agree
	// on primary ownership without rehashing.
	Shard int `json:"shard"`
	// Report, when non-nil, is the submitted production failure; nil
	// means the owning worker runs discovery itself (deterministic, so
	// the sketch is byte-identical either way).
	Report        *vm.FailureReport `json:"report,omitempty"`
	DiscoveryRuns int               `json:"discovery_runs,omitempty"`
}

// Campaign is the assignment's fleet-wide file-safe name.
func (a Assignment) Campaign() string { return CampaignName(a.Tenant, a.Key) }

// DoneRecord is one finished diagnosis as published by the worker that
// drove it to completion: the sketch bytes (byte-identical to a
// single-process run) plus the outcome the service surfaces.
type DoneRecord struct {
	Tenant string `json:"tenant"`
	Bug    string `json:"bug"`
	Key    string `json:"key"`
	// Worker records who finished the campaign — observability only;
	// the sketch bytes are worker-independent.
	Worker        string `json:"worker"`
	LowConfidence bool   `json:"low_confidence,omitempty"`
	Restarts      int    `json:"restarts,omitempty"`
	Resumed       bool   `json:"resumed,omitempty"`
	Err           string `json:"err,omitempty"`
	// Sketch is the rendered sketch JSON, byte-identical to the
	// single-process run. Held as []byte (base64 on the wire) rather
	// than json.RawMessage: the record's own marshalling would compact
	// a RawMessage and break byte-identity.
	Sketch []byte `json:"sketch,omitempty"`
}

// Coordinator owns campaign placement: it writes assignment records the
// worker fleet picks up and reads back the done records workers
// publish. It holds no in-memory state a restart could lose — the
// backend is the source of truth, so coordinator death just pauses new
// placements.
type Coordinator struct {
	b       store.Backend
	root    string
	shards  int
	noFsync bool
}

// NewCoordinator opens (creating if needed) a fleet root on b with the
// given shard count.
func NewCoordinator(b store.Backend, root string, shards int, noFsync bool) (*Coordinator, error) {
	if b == nil {
		b = store.DirBackend{}
	}
	if shards <= 0 {
		return nil, fmt.Errorf("shard: coordinator needs a positive shard count, got %d", shards)
	}
	for _, dir := range []string{AssignDir(root), LeaseDir(root), DoneDir(root), StateRoot(root)} {
		if err := b.EnsureDir(dir); err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
	}
	return &Coordinator{b: b, root: root, shards: shards, noFsync: noFsync}, nil
}

// Backend returns the shared medium the fleet runs over.
func (c *Coordinator) Backend() store.Backend { return c.b }

// Root returns the fleet root on the backend.
func (c *Coordinator) Root() string { return c.root }

// Shards returns the fleet's shard count.
func (c *Coordinator) Shards() int { return c.shards }

// CheckpointRoot is the state root workers checkpoint under — handed to
// the service so its sketch-reload path reads the fleet's stores.
func (c *Coordinator) CheckpointRoot() string { return StateRoot(c.root) }

// Assign places a campaign: compute its shard from the placement hash
// and publish the assignment record durably. Idempotent — re-assigning
// the same campaign rewrites an identical record.
func (c *Coordinator) Assign(a Assignment) (Assignment, error) {
	if a.Tenant == "" || a.Bug == "" {
		return a, fmt.Errorf("shard: assignment needs tenant and bug")
	}
	if a.Key == "" {
		a.Key = a.Bug
	}
	a.Shard = Place(a.Tenant, a.Bug, a.Signature, c.shards)
	if err := writeRecord(c.b, filepath.Join(AssignDir(c.root), a.Campaign()+".assign"), &a, c.noFsync); err != nil {
		return a, err
	}
	return a, nil
}

// Done returns the campaign's finished record, or nil while the fleet
// is still working on it.
func (c *Coordinator) Done(tenant, key string) (*DoneRecord, error) {
	return ReadDone(c.b, c.root, CampaignName(tenant, key))
}

// Assignments lists every placed campaign, sorted by campaign name so
// all workers walk the same order. Torn or foreign files are skipped.
func Assignments(b store.Backend, root string) ([]Assignment, error) {
	dir := AssignDir(root)
	names, err := b.ListFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("shard: assignments: %w", err)
	}
	sort.Strings(names)
	var out []Assignment
	for _, base := range names {
		if !strings.HasSuffix(base, ".assign") {
			continue
		}
		var a Assignment
		if err := readRecord(b, filepath.Join(dir, base), &a); err != nil {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}

// WriteDone publishes a finished diagnosis. Written via atomic rename;
// if a lease-handoff window ever lets two workers finish the same
// campaign, both write the same sketch bytes, so last-write-wins is
// benign.
func WriteDone(b store.Backend, root string, rec *DoneRecord, noFsync bool) error {
	return writeRecord(b, filepath.Join(DoneDir(root), CampaignName(rec.Tenant, rec.Key)+".done"), rec, noFsync)
}

// ReadDone returns a campaign's done record, or nil when none exists.
func ReadDone(b store.Backend, root string, campaign string) (*DoneRecord, error) {
	path := filepath.Join(DoneDir(root), campaign+".done")
	if !b.Exists(path) {
		return nil, nil
	}
	var rec DoneRecord
	if err := readRecord(b, path, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// writeRecord publishes a CRC-framed JSON record via temp + rename.
func writeRecord(b store.Backend, path string, v any, noFsync bool) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	tmp := path + ".tmp"
	if err := b.WriteFile(tmp, store.EncodeFrame(payload), !noFsync); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if err := b.Rename(tmp, path); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if !noFsync {
		if err := b.SyncDir(filepath.Dir(path)); err != nil {
			return fmt.Errorf("shard: %w", err)
		}
	}
	return nil
}

func readRecord(b store.Backend, path string, v any) error {
	data, err := b.ReadFile(path)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	payload, err := store.DecodeFrame(data)
	if err != nil {
		return fmt.Errorf("shard: %s: %w", path, err)
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("shard: %s: %w", path, err)
	}
	return nil
}
