package shard_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/vm"
)

// fleetBug prepares one bug for fleet tests: the campaign config, the
// discovered failure, and the single-process baseline sketch bytes.
type fleetBug struct {
	name     string
	cfg      core.Config
	report   *vm.FailureReport
	disc     int
	baseline []byte
}

func prepareFleetBug(t *testing.T, tenant, name string) fleetBug {
	t.Helper()
	b := bugs.ByName(name)
	if b == nil {
		t.Fatalf("unknown bug %q", name)
	}
	cfg := b.GistConfig()
	cfg.Features = core.AllFeatures()
	cfg.Label = tenant + "/" + name
	cfg.Workers = 1
	report, disc, err := core.FirstFailure(cfg)
	if err != nil {
		t.Fatalf("%s: discovery: %v", name, err)
	}
	res, err := core.RunFromReport(cfg, report, disc)
	if err != nil {
		t.Fatalf("%s: baseline: %v", name, err)
	}
	baseline, err := res.Sketch.MarshalIndentJSON()
	if err != nil {
		t.Fatalf("%s: baseline sketch: %v", name, err)
	}
	return fleetBug{name: name, cfg: cfg, report: report, disc: disc, baseline: baseline}
}

func newTestWorker(t *testing.T, b store.Backend, idx, shards int, ttl time.Duration, fbs []fleetBug) *shard.Worker {
	t.Helper()
	cfgs := map[string]core.Config{}
	for _, fb := range fbs {
		cfgs[fb.name] = fb.cfg
	}
	w, err := shard.NewWorker(shard.WorkerOptions{
		Backend: b, Root: "fleet",
		ID: fmt.Sprintf("w%d", idx+1), Index: idx, Shards: shards,
		LeaseTTL: ttl, Width: 1, NoFsync: true,
		ConfigFor: func(bug string) (core.Config, error) {
			cfg, ok := cfgs[bug]
			if !ok {
				return core.Config{}, fmt.Errorf("unknown bug %q", bug)
			}
			return cfg, nil
		},
	})
	if err != nil {
		t.Fatalf("NewWorker %d: %v", idx, err)
	}
	return w
}

// TestFleetMatchesSingleProcess places two campaigns on a two-worker
// fleet, drives both workers round-robin to completion, and requires
// every published sketch to byte-match the single-process baseline —
// the repo invariant extended across process boundaries.
func TestFleetMatchesSingleProcess(t *testing.T) {
	const tenant = "acme"
	fbs := []fleetBug{
		prepareFleetBug(t, tenant, "pbzip2"),
		prepareFleetBug(t, tenant, "curl"),
	}
	b := store.NewMemBackend()
	coord, err := shard.NewCoordinator(b, "fleet", 2, true)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	for _, fb := range fbs {
		if _, err := coord.Assign(shard.Assignment{
			Tenant: tenant, Bug: fb.name, Report: fb.report, DiscoveryRuns: fb.disc,
		}); err != nil {
			t.Fatalf("Assign %s: %v", fb.name, err)
		}
	}
	workers := []*shard.Worker{
		newTestWorker(t, b, 0, 2, 10*time.Second, fbs),
		newTestWorker(t, b, 1, 2, 10*time.Second, fbs),
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		for _, w := range workers {
			if _, err := w.Round(); err != nil {
				t.Fatalf("%s: Round: %v", w.ID(), err)
			}
		}
		done := 0
		for _, fb := range fbs {
			if rec, err := coord.Done(tenant, fb.name); err != nil {
				t.Fatalf("Done %s: %v", fb.name, err)
			} else if rec != nil {
				done++
			}
		}
		if done == len(fbs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet did not finish %d campaigns in time", len(fbs))
		}
	}
	for _, fb := range fbs {
		rec, err := coord.Done(tenant, fb.name)
		if err != nil || rec == nil {
			t.Fatalf("Done %s: %+v, %v", fb.name, rec, err)
		}
		if rec.Err != "" {
			t.Fatalf("%s failed on %s: %s", fb.name, rec.Worker, rec.Err)
		}
		wantWorker := fmt.Sprintf("w%d", shard.Place(tenant, fb.name, "", 2)+1)
		if rec.Worker != wantWorker {
			t.Errorf("%s diagnosed by %s, placement says %s", fb.name, rec.Worker, wantWorker)
		}
		if !bytes.Equal(rec.Sketch, fb.baseline) {
			t.Errorf("%s: fleet sketch diverged from the single-process baseline", fb.name)
		}
	}
}

// TestDeadWorkerCampaignIsTakenOverByteIdentically is the kill-a-worker
// chaos path as a unit test: the owning worker claims its campaign,
// checkpoints a couple of rounds, and is never driven again — a SIGKILL
// leaves exactly that (lease intact, no release). The surviving worker
// must wait out the lease, take the campaign over, resume from the last
// durable generation, and publish a sketch byte-identical to the
// undisturbed single-process run.
func TestDeadWorkerCampaignIsTakenOverByteIdentically(t *testing.T) {
	// Pick a tenant whose single campaign lands on shard 0 (the victim).
	const bug = "pbzip2"
	tenant := ""
	for i := 0; i < 64; i++ {
		cand := fmt.Sprintf("tenant-%d", i)
		if shard.Place(cand, bug, "", 2) == 0 {
			tenant = cand
			break
		}
	}
	if tenant == "" {
		t.Fatalf("no tenant label places %s on shard 0", bug)
	}
	fbs := []fleetBug{prepareFleetBug(t, tenant, bug)}

	b := store.NewMemBackend()
	coord, err := shard.NewCoordinator(b, "fleet", 2, true)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	if _, err := coord.Assign(shard.Assignment{
		Tenant: tenant, Bug: bug, Report: fbs[0].report, DiscoveryRuns: fbs[0].disc,
	}); err != nil {
		t.Fatalf("Assign: %v", err)
	}

	const ttl = 300 * time.Millisecond
	victim := newTestWorker(t, b, 0, 2, ttl, fbs)
	survivor := newTestWorker(t, b, 1, 2, ttl, fbs)

	// The victim claims the campaign and checkpoints two rounds, then
	// "dies": no release, lease left to expire.
	for round := 0; round < 2; round++ {
		if _, err := victim.Round(); err != nil {
			t.Fatalf("victim Round: %v", err)
		}
	}
	if rec, err := coord.Done(tenant, bug); err != nil || rec != nil {
		t.Fatalf("campaign finished in two rounds (%+v, %v); it must outlive the victim for the test to bite", rec, err)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := survivor.Round(); err != nil {
			t.Fatalf("survivor Round: %v", err)
		}
		rec, err := coord.Done(tenant, bug)
		if err != nil {
			t.Fatalf("Done: %v", err)
		}
		if rec != nil {
			if rec.Err != "" {
				t.Fatalf("takeover diagnosis failed: %s", rec.Err)
			}
			if rec.Worker != "w2" {
				t.Fatalf("done record published by %s, want the survivor w2", rec.Worker)
			}
			if !rec.Resumed {
				t.Fatalf("survivor rebuilt the campaign from scratch instead of resuming the victim's checkpoint")
			}
			if !bytes.Equal(rec.Sketch, fbs[0].baseline) {
				t.Fatalf("takeover sketch diverged from the single-process baseline")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivor never finished the dead worker's campaign")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := survivor.Stats()
	if st.Takeovers != 1 || st.Resumed != 1 || st.Finished != 1 {
		t.Fatalf("survivor stats = %+v, want exactly one takeover, resumed, finished", st)
	}
}
