package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/store"
)

// ErrLeaseLost reports that a worker no longer owns a campaign: its
// claim expired and another worker's claim now wins. The holder must
// stop driving the campaign; the new owner resumes it from the last
// durable checkpoint generation.
var ErrLeaseLost = errors.New("shard: lease lost")

// Lease is one worker's ownership claim over one campaign.
type Lease struct {
	Campaign string `json:"campaign"`
	Worker   string `json:"worker"`
	// Gen is the claim's burned generation number (see LeaseTable).
	Gen uint64 `json:"gen"`
	// ExpiresUnixNS is when the claim lapses unless renewed.
	ExpiresUnixNS int64 `json:"expires_unix_ns"`
}

func (l *Lease) expired(now time.Time) bool { return l.ExpiresUnixNS <= now.UnixNano() }

// LeaseTable is one worker process's view of the fleet's ownership
// claims, stored as individual files on the shared backend.
//
// The protocol makes acquisition atomic under racing workers without
// any shared lock — it is Lamport's bakery algorithm over backend
// files:
//
//   - Every claim is its own file, named <campaign>.g<gen>.<worker>.lease,
//     written via temp-file + atomic rename. Distinct workers write
//     distinct files, so concurrent claims never overwrite each other —
//     a race leaves both claims visible and every observer sees the
//     same set.
//
//   - Generation numbers follow the checkpoint store's burned-numbering
//     rule: a claimant draws max(observed)+1, and a number once drawn
//     is never reused by this table even if the claim loses and is
//     withdrawn. The winner among unexpired claims is the lowest
//     generation (the earliest claim), ties broken by the lowest
//     worker id — a pure function of the visible claim set.
//
//   - Before drawing, a claimant publishes an intent marker (the bakery
//     "choosing" flag) and removes it after its claim file is in place.
//     The decision scan waits until no foreign unexpired intent is
//     visible, which guarantees that any rival who drew concurrently
//     (and might hold an equal generation) has its claim on the backend
//     by decision time. Both racers therefore see the same claim set
//     and the deterministic winner rule picks exactly one of them; the
//     loser observes the winner's lease. Intents expire with the lease
//     TTL, so a claimant that dies mid-claim stalls rivals for at most
//     one TTL.
//
// Renewal rewrites only the holder's own file (same generation, later
// expiry) and fails with ErrLeaseLost the moment the holder's claim has
// expired or lost: a worker resurrected after a long stall cannot renew
// its stale low-generation claim back to life and steal the campaign
// from the worker that took over. The residual split-brain window — old
// owner finishing its current round while the new owner resumes — is
// harmless: both drive the same deterministic campaign and write
// byte-identical checkpoints.
type LeaseTable struct {
	b       store.Backend
	dir     string
	ttl     time.Duration
	noFsync bool
	now     func() time.Time

	mu sync.Mutex
	// drawn is the burned-generation floor per campaign: the next claim
	// this table writes uses at least this number, even if the file that
	// burned a lower one has been withdrawn.
	drawn map[string]uint64
}

// NewLeaseTable opens the fleet's lease directory under root on b.
func NewLeaseTable(b store.Backend, root string, ttl time.Duration, noFsync bool) (*LeaseTable, error) {
	if b == nil {
		b = store.DirBackend{}
	}
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	dir := LeaseDir(root)
	if err := b.EnsureDir(dir); err != nil {
		return nil, fmt.Errorf("shard: lease dir: %w", err)
	}
	return &LeaseTable{
		b: b, dir: dir, ttl: ttl, noFsync: noFsync,
		now:   time.Now,
		drawn: map[string]uint64{},
	}, nil
}

// winner applies the deterministic ownership rule to a claim set: the
// unexpired claim with the lowest generation wins, ties broken by the
// lowest worker id. Nil means the campaign is unowned.
func winner(claims []*Lease, now time.Time) *Lease {
	var w *Lease
	for _, c := range claims {
		if c.expired(now) {
			continue
		}
		if w == nil || c.Gen < w.Gen || (c.Gen == w.Gen && c.Worker < w.Worker) {
			w = c
		}
	}
	return w
}

// Claim attempts to take ownership of a campaign for worker. It returns
// (true, own lease) when the worker owns the campaign afterwards and
// (false, winning lease) when another worker does. Exactly one of two
// racing claimants wins, and the loser's returned lease names the
// winner.
func (lt *LeaseTable) Claim(campaign, worker string) (bool, *Lease, error) {
	// Bakery "choosing" flag: rivals deciding concurrently must wait for
	// this claimant's number to be on the backend before they decide.
	if err := lt.writeIntent(campaign, worker); err != nil {
		return false, nil, err
	}
	claims, maxGen, err := lt.scan(campaign)
	if err != nil {
		lt.removeIntent(campaign, worker)
		return false, nil, err
	}
	now := lt.now()
	if w := winner(claims, now); w != nil {
		lt.removeIntent(campaign, worker)
		if w.Worker != worker {
			return false, w, nil
		}
		// Already the owner (a re-claim): refresh the existing lease
		// instead of burning a new generation.
		w.ExpiresUnixNS = now.Add(lt.ttl).UnixNano()
		if err := lt.write(w); err != nil {
			return false, nil, err
		}
		return true, w, nil
	}
	self := &Lease{
		Campaign:      campaign,
		Worker:        worker,
		Gen:           lt.draw(campaign, maxGen),
		ExpiresUnixNS: now.Add(lt.ttl).UnixNano(),
	}
	if err := lt.write(self); err != nil {
		lt.removeIntent(campaign, worker)
		return false, nil, err
	}
	lt.removeIntent(campaign, worker)

	// Settle: wait out every foreign claimant still between intent and
	// claim, then decide from the (now complete) claim set. The winner
	// rule is a pure function of that set, so every racer that settles
	// reaches the same verdict.
	if err := lt.settle(campaign, worker); err != nil {
		lt.remove(self)
		return false, nil, err
	}
	claims, _, err = lt.scan(campaign)
	if err != nil {
		return false, nil, err
	}
	w := winner(claims, now)
	if w == nil {
		return false, nil, fmt.Errorf("shard: claim %s: own unexpired claim missing after write", campaign)
	}
	if w.Worker != worker || w.Gen != self.Gen {
		// Lost the race. Withdraw the claim file — its generation number
		// stays burned in drawn, so this table can never reissue it.
		lt.remove(self)
		return false, w, nil
	}
	// Won. Expired predecessors can never win again (renewal refuses
	// expired claims); withdraw them so the table stays small.
	for _, c := range claims {
		if c.expired(now) {
			lt.remove(c)
		}
	}
	return true, self, nil
}

// Renew extends the worker's existing claim. It fails with ErrLeaseLost
// when the claim has expired or another worker's claim now wins — the
// caller must retire the campaign locally and let the new owner drive.
func (lt *LeaseTable) Renew(campaign, worker string) (*Lease, error) {
	claims, _, err := lt.scan(campaign)
	if err != nil {
		return nil, err
	}
	now := lt.now()
	var self *Lease
	for _, c := range claims {
		if c.Worker == worker && (self == nil || c.Gen > self.Gen) {
			self = c
		}
	}
	// An expired claim cannot be renewed — only re-claimed, which draws
	// a fresh (higher, losing) generation. This is what keeps a stalled
	// owner from resurrecting its old low-generation claim after a
	// takeover.
	if self == nil || self.expired(now) {
		return nil, ErrLeaseLost
	}
	if w := winner(claims, now); w == nil || w.Worker != worker {
		return nil, ErrLeaseLost
	}
	self.ExpiresUnixNS = now.Add(lt.ttl).UnixNano()
	if err := lt.write(self); err != nil {
		return nil, err
	}
	return self, nil
}

// Release withdraws the worker's claims on a campaign (diagnosis done).
func (lt *LeaseTable) Release(campaign, worker string) {
	claims, _, err := lt.scan(campaign)
	if err != nil {
		return
	}
	for _, c := range claims {
		if c.Worker == worker {
			lt.remove(c)
		}
	}
}

// Owner returns the campaign's current owner, or nil when it is
// unowned (no claims, or all claims expired).
func (lt *LeaseTable) Owner(campaign string) (*Lease, error) {
	claims, _, err := lt.scan(campaign)
	if err != nil {
		return nil, err
	}
	return winner(claims, lt.now()), nil
}

// draw burns a generation number for campaign: one past both the
// highest number visible on the backend and the highest this table has
// ever issued.
func (lt *LeaseTable) draw(campaign string, maxSeen uint64) uint64 {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	gen := maxSeen + 1
	if g := lt.drawn[campaign]; g > gen {
		gen = g
	}
	lt.drawn[campaign] = gen + 1
	return gen
}

// settle blocks until no foreign unexpired intent for campaign is
// visible. A rival past its intent has its claim file in place; a rival
// that died mid-claim ages out with its intent's expiry.
func (lt *LeaseTable) settle(campaign, worker string) error {
	for {
		names, err := lt.b.ListFiles(lt.dir)
		if err != nil {
			return fmt.Errorf("shard: lease settle: %w", err)
		}
		busy := false
		now := lt.now()
		for _, base := range names {
			if !strings.HasPrefix(base, campaign+".i.") || !strings.HasSuffix(base, ".intent") {
				continue
			}
			data, err := lt.b.ReadFile(filepath.Join(lt.dir, base))
			if err != nil {
				continue // withdrawn between list and read
			}
			payload, err := store.DecodeFrame(data)
			if err != nil {
				continue
			}
			var in Lease
			if err := json.Unmarshal(payload, &in); err != nil || in.Campaign != campaign {
				continue
			}
			if in.Worker != worker && !in.expired(now) {
				busy = true
				break
			}
		}
		if !busy {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (lt *LeaseTable) intentPath(campaign, worker string) string {
	return filepath.Join(lt.dir, fmt.Sprintf("%s.i.%s.intent", campaign, worker))
}

// writeIntent publishes the bakery choosing flag; it expires with the
// lease TTL so a claimant that dies here cannot stall rivals forever.
func (lt *LeaseTable) writeIntent(campaign, worker string) error {
	in := Lease{Campaign: campaign, Worker: worker, ExpiresUnixNS: lt.now().Add(lt.ttl).UnixNano()}
	payload, err := json.Marshal(&in)
	if err != nil {
		return fmt.Errorf("shard: intent: %w", err)
	}
	path := lt.intentPath(campaign, worker)
	tmp := path + ".tmp"
	if err := lt.b.WriteFile(tmp, store.EncodeFrame(payload), false); err != nil {
		return fmt.Errorf("shard: intent: %w", err)
	}
	if err := lt.b.Rename(tmp, path); err != nil {
		return fmt.Errorf("shard: intent: %w", err)
	}
	return nil
}

func (lt *LeaseTable) removeIntent(campaign, worker string) {
	lt.b.Remove(lt.intentPath(campaign, worker))
}

// scan reads every claim for campaign, returning the decoded claims and
// the highest generation number observed in filenames — burned whether
// or not the payload decodes, so a torn claim still consumes its
// number.
func (lt *LeaseTable) scan(campaign string) ([]*Lease, uint64, error) {
	names, err := lt.b.ListFiles(lt.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("shard: lease scan: %w", err)
	}
	prefix := campaign + ".g"
	var claims []*Lease
	var maxGen uint64
	for _, base := range names {
		if !strings.HasPrefix(base, prefix) || !strings.HasSuffix(base, ".lease") {
			continue
		}
		rest := strings.TrimSuffix(base[len(prefix):], ".lease")
		dot := strings.IndexByte(rest, '.')
		if dot <= 0 {
			continue
		}
		gen, err := strconv.ParseUint(rest[:dot], 10, 64)
		if err != nil {
			continue
		}
		if gen > maxGen {
			maxGen = gen
		}
		data, err := lt.b.ReadFile(filepath.Join(lt.dir, base))
		if err != nil {
			continue // withdrawn by a racing worker between list and read
		}
		payload, err := store.DecodeFrame(data)
		if err != nil {
			continue // torn claim: number burned above, record void
		}
		var l Lease
		if err := json.Unmarshal(payload, &l); err != nil {
			continue
		}
		// The campaign name prefix can collide across campaigns whose
		// names embed ".g"; the payload is the truth.
		if l.Campaign != campaign {
			continue
		}
		claims = append(claims, &l)
	}
	return claims, maxGen, nil
}

// path is the claim's backend location; its name embeds (campaign,
// generation, worker) so distinct claimants never share a file.
func (lt *LeaseTable) path(l *Lease) string {
	return filepath.Join(lt.dir, fmt.Sprintf("%s.g%d.%s.lease", l.Campaign, l.Gen, l.Worker))
}

// write publishes a claim atomically: CRC-framed payload to a temp file
// (unique per worker), then rename into place.
func (lt *LeaseTable) write(l *Lease) error {
	payload, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("shard: lease: %w", err)
	}
	path := lt.path(l)
	tmp := path + ".tmp"
	if err := lt.b.WriteFile(tmp, store.EncodeFrame(payload), !lt.noFsync); err != nil {
		return fmt.Errorf("shard: lease: %w", err)
	}
	if err := lt.b.Rename(tmp, path); err != nil {
		return fmt.Errorf("shard: lease: %w", err)
	}
	if !lt.noFsync {
		if err := lt.b.SyncDir(lt.dir); err != nil {
			return fmt.Errorf("shard: lease: %w", err)
		}
	}
	return nil
}

// remove withdraws a claim file; a concurrent withdrawal is fine.
func (lt *LeaseTable) remove(l *Lease) { lt.b.Remove(lt.path(l)) }
