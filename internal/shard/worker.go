package shard

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/supervise"
	"repro/internal/telemetry"
)

// WorkerOptions configures one worker process.
type WorkerOptions struct {
	// Backend is the fleet's shared medium; nil means DirBackend.
	Backend store.Backend
	// Root is the fleet root on the backend (the coordinator's root).
	Root string
	// ID is the worker's fleet-unique name (the CLI uses "w<worker-id>").
	// It doubles as the lease tiebreak, so it must be stable.
	ID string
	// Index is the worker's 0-based shard index; assignments whose shard
	// maps onto it are claimed immediately, others only after they sit
	// unowned for TakeoverRounds rounds (the dead-worker takeover path).
	Index int
	// Shards is the fleet size Index lives in.
	Shards int
	// LeaseTTL is how long an ownership claim lasts unrenewed (default
	// 10s). Leases are renewed every round, so it must exceed the
	// worst-case round duration.
	LeaseTTL time.Duration
	// TakeoverRounds is how many consecutive rounds a foreign campaign
	// must be observed unowned before this worker steals it (default 2).
	TakeoverRounds int
	// Width is the worker's fleet pool width (0 = GOMAXPROCS).
	Width int
	// StepTimeout is the per-step watchdog deadline (supervise default).
	StepTimeout time.Duration
	// NoFsync disables checkpoint and lease fsync.
	NoFsync bool
	// RoundDelay, when positive, sleeps this long after every round that
	// stepped at least one campaign. Diagnosis stays byte-identical (the
	// delay is outside the deterministic core); it only widens the
	// kill window for crash-recovery testing, like gist -iter-delay.
	RoundDelay time.Duration
	// ConfigFor maps a bug name to its campaign configuration; nil means
	// the registered bug suite's GistConfig — the same default the
	// service applies, so fleet sketches byte-match `gist -bug X -full`.
	ConfigFor func(bug string) (core.Config, error)
	// Telemetry receives supervise.*, store.*, and shard.* counters.
	Telemetry *telemetry.Tracer
	// Logf, when non-nil, receives one line per notable worker event.
	Logf func(format string, args ...any)
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Backend == nil {
		o.Backend = store.DirBackend{}
	}
	if o.ID == "" {
		o.ID = fmt.Sprintf("w%d", o.Index+1)
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.TakeoverRounds <= 0 {
		o.TakeoverRounds = 2
	}
	if o.ConfigFor == nil {
		o.ConfigFor = func(bug string) (core.Config, error) {
			b := bugs.ByName(bug)
			if b == nil {
				return core.Config{}, fmt.Errorf("unknown bug %q", bug)
			}
			return b.GistConfig(), nil
		}
	}
	return o
}

// owned is the worker's bookkeeping for one campaign it holds.
type owned struct {
	a       Assignment
	name    string
	slot    int
	resumed bool
	stolen  bool
}

// Stats summarizes the work a worker executed locally.
type Stats struct {
	// Runs is the production runs campaigns consumed on this worker
	// (runs a campaign consumed on a previous owner are not counted).
	Runs int
	// Campaigns is how many campaigns this worker enrolled.
	Campaigns int
	// Takeovers is how many of those were stolen from a dead worker's
	// shard; Resumed is how many were restored from another process's
	// durable checkpoint generation.
	Takeovers int
	Resumed   int
	// LostLeases is how many campaigns this worker retired because
	// ownership moved away mid-diagnosis.
	LostLeases int
	// Finished is how many done records this worker published.
	Finished int
}

// Worker is one campaign-owning process in the shard fleet. Each round
// it adopts newly assigned (or orphaned) campaigns, renews its leases
// (retiring campaigns whose ownership moved away), steps every live
// campaign once through the supervisor, and publishes finished
// diagnoses. Not safe for concurrent use; Stats may be read after Run
// returns.
type Worker struct {
	o      WorkerOptions
	leases *LeaseTable
	sup    *supervise.Supervisor

	slots   map[string]int // campaign name -> supervisor slot
	holding map[int]*owned // slot -> campaign held
	unowned map[string]int // campaign name -> consecutive rounds seen unowned

	stats Stats
}

// NewWorker opens a worker over the fleet root.
func NewWorker(o WorkerOptions) (*Worker, error) {
	o = o.withDefaults()
	if o.Index < 0 || o.Index >= o.Shards {
		return nil, fmt.Errorf("shard: worker index %d out of range for %d shards", o.Index, o.Shards)
	}
	leases, err := NewLeaseTable(o.Backend, o.Root, o.LeaseTTL, o.NoFsync)
	if err != nil {
		return nil, err
	}
	for _, dir := range []string{AssignDir(o.Root), DoneDir(o.Root), StateRoot(o.Root)} {
		if err := o.Backend.EnsureDir(dir); err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
	}
	return &Worker{
		o:      o,
		leases: leases,
		sup: supervise.New(o.Width, supervise.Config{
			StepTimeout: o.StepTimeout,
			Telemetry:   o.Telemetry,
		}),
		slots:   map[string]int{},
		holding: map[int]*owned{},
		unowned: map[string]int{},
	}, nil
}

// ID returns the worker's fleet-unique name.
func (w *Worker) ID() string { return w.o.ID }

// Stats returns the worker's work summary. Call only between rounds or
// after Run returns.
func (w *Worker) Stats() Stats {
	s := w.stats
	for _, out := range w.sup.Outcomes() {
		for _, runs := range out.RunsPerRound {
			s.Runs += runs
		}
	}
	return s
}

// Round performs one fleet round: adopt, renew, step, publish. It
// returns how many campaigns this worker stepped; 0 means it holds no
// live work right now (more may arrive — keep polling).
func (w *Worker) Round() (int, error) {
	if err := w.adopt(); err != nil {
		return 0, err
	}
	w.renew()
	live := w.sup.RunRound()
	if err := w.publish(); err != nil {
		return live, err
	}
	return live, nil
}

// Run drives rounds until ctx is cancelled, idling between rounds that
// found no live work. A cancelled context stops the loop without
// releasing leases — exactly what a killed process leaves behind — so
// graceful shutdown is the caller's choice, not a side effect.
func (w *Worker) Run(ctx context.Context, idle time.Duration) error {
	if idle <= 0 {
		idle = 200 * time.Millisecond
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		live, err := w.Round()
		if err != nil {
			return err
		}
		wait := w.o.RoundDelay
		if live == 0 {
			wait = idle
		}
		if wait > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
		}
	}
}

// adopt scans the assignment table and claims what this worker should
// own: its own shard's campaigns immediately, foreign campaigns only
// after they sit unowned long enough to conclude their worker is dead.
func (w *Worker) adopt() error {
	as, err := Assignments(w.o.Backend, w.o.Root)
	if err != nil {
		return err
	}
	for _, a := range as {
		name := a.Campaign()
		if _, ok := w.slots[name]; ok {
			continue
		}
		rec, err := ReadDone(w.o.Backend, w.o.Root, name)
		if err == nil && rec != nil {
			delete(w.unowned, name)
			continue
		}
		mine := a.Shard%w.o.Shards == w.o.Index
		if !mine {
			owner, err := w.leases.Owner(name)
			if err != nil {
				return err
			}
			if owner != nil {
				w.unowned[name] = 0
				continue
			}
			// Unowned foreign campaign: its worker may just be between
			// claim and first renewal. Steal only after observing it
			// unowned for TakeoverRounds consecutive rounds.
			w.unowned[name]++
			if w.unowned[name] <= w.o.TakeoverRounds {
				continue
			}
		}
		won, lease, err := w.leases.Claim(name, w.o.ID)
		if err != nil {
			return err
		}
		if !won {
			if lease != nil {
				w.unowned[name] = 0
			}
			continue
		}
		delete(w.unowned, name)
		if err := w.enroll(a, name, !mine); err != nil {
			// The campaign cannot be built (unknown bug, poisoned
			// checkpoint dir): publish the failure so submitters are not
			// left polling, and release the claim.
			w.logf("enroll %s failed: %v", name, err)
			rec := &DoneRecord{Tenant: a.Tenant, Bug: a.Bug, Key: a.Key, Worker: w.o.ID, Err: err.Error()}
			if werr := WriteDone(w.o.Backend, w.o.Root, rec, w.o.NoFsync); werr != nil {
				return werr
			}
			w.leases.Release(name, w.o.ID)
		}
	}
	return nil
}

// enroll builds or resumes the campaign and hands it to the supervisor.
func (w *Worker) enroll(a Assignment, name string, stolen bool) error {
	cfg, err := w.o.ConfigFor(a.Bug)
	if err != nil {
		return err
	}
	cfg.Label = a.Tenant + "/" + a.Key
	if cfg.Telemetry == nil {
		cfg.Telemetry = w.o.Telemetry
	}
	ckpt, err := store.Open(
		filepath.Join(StateRoot(w.o.Root), Sanitize(a.Tenant)), Sanitize(a.Key),
		store.Options{
			Backend:   w.o.Backend,
			NoFsync:   w.o.NoFsync,
			Telemetry: w.o.Telemetry,
			Label:     cfg.Label,
		})
	if err != nil {
		return err
	}
	slot, resumed, err := w.sup.Adopt(cfg, ckpt, func() (*core.Campaign, error) {
		report, disc := a.Report, a.DiscoveryRuns
		if report == nil {
			report, disc, err = core.FirstFailure(cfg)
			if err != nil {
				return nil, fmt.Errorf("discovery: %w", err)
			}
		}
		return core.NewCampaign(cfg, report, disc)
	})
	if err != nil {
		return err
	}
	w.slots[name] = slot
	w.holding[slot] = &owned{a: a, name: name, slot: slot, resumed: resumed, stolen: stolen}
	w.stats.Campaigns++
	if stolen {
		w.stats.Takeovers++
	}
	if resumed {
		w.stats.Resumed++
	}
	w.logf("enrolled %s (slot %d, stolen=%v, resumed=%v)", name, slot, stolen, resumed)
	return nil
}

// renew extends every held lease; a campaign whose ownership moved away
// is retired locally so the new owner's resume is the only live driver.
func (w *Worker) renew() {
	for _, slot := range w.slotOrder() {
		oc := w.holding[slot]
		if _, err := w.leases.Renew(oc.name, w.o.ID); err != nil {
			if !errors.Is(err, ErrLeaseLost) {
				// Backend trouble: keep driving — the diagnosis is
				// deterministic, so even a takeover racing this worker
				// produces identical bytes — and retry next round.
				w.logf("renew %s: %v", oc.name, err)
				continue
			}
			w.logf("lease lost: %s (slot %d)", oc.name, slot)
			w.sup.RetireSlot(slot)
			delete(w.holding, slot)
			delete(w.slots, oc.name)
			w.stats.LostLeases++
		}
	}
}

// publish writes done records for held campaigns that finished (or were
// abandoned by the breaker) and releases their leases.
func (w *Worker) publish() error {
	var outs []supervise.Outcome
	for _, slot := range w.slotOrder() {
		oc := w.holding[slot]
		c := w.sup.Scheduler().Campaign(slot)
		if !c.Finished() && !w.sup.Scheduler().Retired(slot) {
			continue
		}
		if outs == nil {
			outs = w.sup.Outcomes()
		}
		out := outs[slot]
		rec := &DoneRecord{
			Tenant: oc.a.Tenant, Bug: oc.a.Bug, Key: oc.a.Key,
			Worker: w.o.ID, Restarts: out.Restarts, Resumed: oc.resumed,
		}
		if out.Result != nil && out.Result.Sketch != nil {
			sketch, err := out.Result.Sketch.MarshalIndentJSON()
			if err != nil {
				return fmt.Errorf("shard: marshal sketch %s: %w", oc.name, err)
			}
			rec.Sketch = sketch
			rec.LowConfidence = out.Result.Sketch.LowConfidence
		} else if out.Err != nil {
			rec.Err = out.Err.Error()
		} else {
			rec.Err = "campaign produced no sketch"
		}
		if err := WriteDone(w.o.Backend, w.o.Root, rec, w.o.NoFsync); err != nil {
			return err
		}
		w.leases.Release(oc.name, w.o.ID)
		delete(w.holding, slot)
		w.stats.Finished++
		w.logf("done: %s (low_confidence=%v restarts=%d)", oc.name, rec.LowConfidence, rec.Restarts)
	}
	return nil
}

// slotOrder returns held slots in ascending order, so every walk over
// the holdings is deterministic.
func (w *Worker) slotOrder() []int {
	slots := make([]int, 0, len(w.holding))
	for slot := range w.holding {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	return slots
}

func (w *Worker) logf(format string, args ...any) {
	if w.o.Logf != nil {
		w.o.Logf(format, args...)
	}
}
