package shard

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// fakeClock is a settable clock shared by every lease table in a test,
// so expiry is driven explicitly instead of by sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestTable(t *testing.T, b store.Backend, clock *fakeClock, ttl time.Duration) *LeaseTable {
	t.Helper()
	lt, err := NewLeaseTable(b, "fleet", ttl, true)
	if err != nil {
		t.Fatalf("NewLeaseTable: %v", err)
	}
	if clock != nil {
		lt.now = clock.now
	}
	return lt
}

// TestClaimRaceExactlyOneWinner is the satellite race test: two workers
// on a shared backend claim the same campaign simultaneously. Exactly
// one must win, and the loser must observe the winner's lease. Run with
// -race; the backend is the only shared state.
func TestClaimRaceExactlyOneWinner(t *testing.T) {
	b := store.NewMemBackend()
	lt1 := newTestTable(t, b, nil, 10*time.Second)
	lt2 := newTestTable(t, b, nil, 10*time.Second)

	for i := 0; i < 25; i++ {
		campaign := fmt.Sprintf("tenant__bug-%d", i)
		type outcome struct {
			worker string
			won    bool
			lease  *Lease
			err    error
		}
		results := make([]outcome, 2)
		var wg sync.WaitGroup
		for j, cl := range []struct {
			lt     *LeaseTable
			worker string
		}{{lt1, "w1"}, {lt2, "w2"}} {
			wg.Add(1)
			go func(j int, lt *LeaseTable, worker string) {
				defer wg.Done()
				won, lease, err := lt.Claim(campaign, worker)
				results[j] = outcome{worker: worker, won: won, lease: lease, err: err}
			}(j, cl.lt, cl.worker)
		}
		wg.Wait()

		var winner, loser *outcome
		for j := range results {
			r := &results[j]
			if r.err != nil {
				t.Fatalf("round %d: %s: Claim error: %v", i, r.worker, r.err)
			}
			if r.won {
				if winner != nil {
					t.Fatalf("round %d: both workers won the same campaign", i)
				}
				winner = r
			} else {
				loser = r
			}
		}
		if winner == nil {
			t.Fatalf("round %d: no worker won", i)
		}
		if loser.lease == nil {
			t.Fatalf("round %d: loser observed no lease", i)
		}
		if loser.lease.Worker != winner.worker {
			t.Fatalf("round %d: loser observed lease held by %q, winner is %q",
				i, loser.lease.Worker, winner.worker)
		}
	}
}

// TestClaimWhileOwnedLoses pins the steady state: a claim against a
// live lease loses and names the holder; the holder re-claiming its own
// campaign refreshes the lease without burning a new generation.
func TestClaimWhileOwnedLoses(t *testing.T) {
	b := store.NewMemBackend()
	clock := newFakeClock()
	lt1 := newTestTable(t, b, clock, 10*time.Second)
	lt2 := newTestTable(t, b, clock, 10*time.Second)

	won, own, err := lt1.Claim("t__bug", "w1")
	if err != nil || !won {
		t.Fatalf("initial claim: won=%v err=%v", won, err)
	}
	won, obs, err := lt2.Claim("t__bug", "w2")
	if err != nil {
		t.Fatalf("rival claim: %v", err)
	}
	if won || obs == nil || obs.Worker != "w1" {
		t.Fatalf("rival claim against a live lease: won=%v observed=%+v", won, obs)
	}
	won, again, err := lt1.Claim("t__bug", "w1")
	if err != nil || !won {
		t.Fatalf("re-claim by holder: won=%v err=%v", won, err)
	}
	if again.Gen != own.Gen {
		t.Fatalf("re-claim burned a new generation: %d -> %d", own.Gen, again.Gen)
	}
}

// TestExpiredLeaseIsTakenOverAndCannotRenew drives the dead-worker
// protocol with an explicit clock: the lease expires, a rival's claim
// wins at a higher generation, and the original holder's Renew reports
// ErrLeaseLost — a resurrected worker cannot steal the campaign back.
func TestExpiredLeaseIsTakenOverAndCannotRenew(t *testing.T) {
	b := store.NewMemBackend()
	clock := newFakeClock()
	ttl := 10 * time.Second
	lt1 := newTestTable(t, b, clock, ttl)
	lt2 := newTestTable(t, b, clock, ttl)

	won, first, err := lt1.Claim("t__bug", "w1")
	if err != nil || !won {
		t.Fatalf("initial claim: won=%v err=%v", won, err)
	}

	// While live: renew extends, rival cannot take over.
	clock.advance(ttl / 2)
	if _, err := lt1.Renew("t__bug", "w1"); err != nil {
		t.Fatalf("renew while live: %v", err)
	}
	if won, _, _ := lt2.Claim("t__bug", "w2"); won {
		t.Fatalf("rival took over a live lease")
	}

	// Let it lapse: the rival wins at a higher generation.
	clock.advance(2 * ttl)
	won, second, err := lt2.Claim("t__bug", "w2")
	if err != nil || !won {
		t.Fatalf("takeover claim: won=%v err=%v", won, err)
	}
	if second.Gen <= first.Gen {
		t.Fatalf("takeover generation %d not past the expired claim's %d", second.Gen, first.Gen)
	}

	// The resurrected original holder must not renew its way back.
	if _, err := lt1.Renew("t__bug", "w1"); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("renew of an expired, superseded lease: err = %v, want ErrLeaseLost", err)
	}
	owner, err := lt2.Owner("t__bug")
	if err != nil || owner == nil || owner.Worker != "w2" {
		t.Fatalf("owner after takeover = %+v, %v; want w2", owner, err)
	}
}

// TestReleaseUnowns checks the clean-handoff path: after Release the
// campaign is unowned and the next claimant wins immediately, at a
// generation the table never reuses.
func TestReleaseUnowns(t *testing.T) {
	b := store.NewMemBackend()
	lt := newTestTable(t, b, nil, 10*time.Second)

	won, first, err := lt.Claim("t__bug", "w1")
	if err != nil || !won {
		t.Fatalf("claim: won=%v err=%v", won, err)
	}
	lt.Release("t__bug", "w1")
	owner, err := lt.Owner("t__bug")
	if err != nil || owner != nil {
		t.Fatalf("owner after release = %+v, %v; want none", owner, err)
	}
	won, second, err := lt.Claim("t__bug", "w2")
	if err != nil || !won {
		t.Fatalf("claim after release: won=%v err=%v", won, err)
	}
	if second.Gen <= first.Gen {
		t.Fatalf("generation %d reused after release (first claim was %d)", second.Gen, first.Gen)
	}
}

// TestTornClaimBurnsItsGeneration mirrors the checkpoint store's
// burned-numbering rule at the lease layer: a torn claim file (bad
// frame) is void as a record but its generation number is consumed.
func TestTornClaimBurnsItsGeneration(t *testing.T) {
	b := store.NewMemBackend()
	lt := newTestTable(t, b, nil, 10*time.Second)
	if err := b.WriteFile(LeaseDir("fleet")+"/t__bug.g7.wX.lease", []byte("torn"), false); err != nil {
		t.Fatalf("plant torn claim: %v", err)
	}
	won, lease, err := lt.Claim("t__bug", "w1")
	if err != nil || !won {
		t.Fatalf("claim over torn file: won=%v err=%v", won, err)
	}
	if lease.Gen <= 7 {
		t.Fatalf("claim drew generation %d; torn file should have burned 7", lease.Gen)
	}
}
