package slicer

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/vm"
)

// failingInstr runs the program until it fails and returns the failing
// instruction ID (the root of the slice, as reported in production).
func failingInstr(t *testing.T, p *ir.Program, wl vm.Workload, seeds ...int64) int {
	t.Helper()
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	for _, seed := range seeds {
		out := vm.Run(p, vm.Config{Seed: seed, PreemptMean: 3, MaxSteps: 100_000, Workload: wl})
		if out.Failed {
			return out.Report.InstrID
		}
	}
	t.Fatal("program did not fail under any seed")
	return -1
}

// linesOf maps slice instruction IDs to distinct source lines.
func linesOf(p *ir.Program, ids []int) map[int]bool {
	lines := make(map[int]bool)
	for _, id := range ids {
		lines[p.Instrs[id].Pos.Line] = true
	}
	return lines
}

func TestSliceSequentialDataFlow(t *testing.T) {
	// Only the chain feeding the failing division should be in the slice:
	// the unrelated computation must be excluded.
	src := `int main() {
	int unrelated = 5;
	unrelated = unrelated * 3;
	int d = input(0);
	int d2 = d - 1;
	int r = 100 / d2;
	return r + unrelated;
}`
	p := ir.MustCompile("t.mc", src)
	g := cfg.BuildTICFG(p)
	fail := failingInstr(t, p, vm.Workload{Ints: []int64{1}}) // division by zero when input(0) == 1
	s := Compute(g, fail)
	lines := linesOf(p, s.IDs)
	for _, want := range []int{4, 5, 6} { // d, d2, r lines
		if !lines[want] {
			t.Errorf("slice missing line %d; got lines %v", want, lines)
		}
	}
	for _, not := range []int{2, 3} { // unrelated lines
		if lines[not] {
			t.Errorf("slice should not contain unrelated line %d; got %v", not, lines)
		}
	}
}

func TestSliceFollowsControlDependence(t *testing.T) {
	src := `int main() {
	int x = input(0);
	int y = 0;
	if (x > 3) {
		y = 1;
	}
	int z = 10 / y;
	return z;
}`
	p := ir.MustCompile("t.mc", src)
	g := cfg.BuildTICFG(p)
	fail := failingInstr(t, p, vm.Workload{})
	s := Compute(g, fail)
	lines := linesOf(p, s.IDs)
	// The if-condition (line 4) controls whether y=1 executes; it must be
	// in the slice, and so must x's def.
	for _, want := range []int{2, 4, 5, 7} {
		if !lines[want] {
			t.Errorf("slice missing line %d; got %v", want, lines)
		}
	}
}

func TestSliceInterprocedural(t *testing.T) {
	src := `int deref(int* p) {
	return *p;
}
int* make(int which) {
	if (which == 1) { return null; }
	return malloc(8);
}
int main() {
	int* q = make(input(0));
	return deref(q);
}`
	p := ir.MustCompile("t.mc", src)
	g := cfg.BuildTICFG(p)
	fail := failingInstr(t, p, vm.Workload{Ints: []int64{1}}) // null deref inside deref()
	s := Compute(g, fail)
	lines := linesOf(p, s.IDs)
	// The slice must cross deref -> main (argument q) -> make (return
	// values) and include the null return and its guard.
	for _, want := range []int{2, 5, 6, 9, 10} {
		if !lines[want] {
			t.Errorf("slice missing line %d; got %v", want, lines)
		}
	}
}

const pbzipSrc = `struct queue { int* mut; int size; };
global struct queue* fifo;
global int unrelated = 0;
void cons(int arg) {
	struct queue* f = fifo;
	unlock(f->mut);
}
int main() {
	fifo = malloc(sizeof(queue));
	fifo->mut = malloc(8);
	int t = spawn(cons, 0);
	unrelated = unrelated + 1;
	free(fifo->mut);
	fifo->mut = null;
	join(t);
	return 0;
}`

func TestSliceCrossesThreadCreation(t *testing.T) {
	p := ir.MustCompile("t.mc", pbzipSrc)
	g := cfg.BuildTICFG(p)
	fail := failingInstr(t, p, vm.Workload{}, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)
	s := Compute(g, fail)
	lines := linesOf(p, s.IDs)
	// cons's statements and the globals feeding them.
	for _, want := range []int{5, 6, 9} { // f = fifo; unlock(f->mut); fifo = malloc(...)
		if !lines[want] {
			t.Errorf("slice missing line %d; got %v", want, lines)
		}
	}
	if lines[12] {
		t.Errorf("slice should not contain the unrelated counter (line 12); got %v", lines)
	}
}

func TestNoAliasAnalysisByDesign(t *testing.T) {
	// Stores through a struct-field pointer must NOT be statically
	// connected to loads of the same field: that is exactly the
	// imprecision hardware watchpoints repair at runtime (§3.2.3).
	p := ir.MustCompile("t.mc", pbzipSrc)
	g := cfg.BuildTICFG(p)
	fail := failingInstr(t, p, vm.Workload{}, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)
	s := Compute(g, fail)
	lines := linesOf(p, s.IDs)
	// Line 14 (fifo->mut = null) is a store through a pointer; without
	// alias analysis it must be absent from the static slice.
	if lines[14] {
		t.Errorf("static slice contains pointer store line 14 — alias analysis crept in: %v", lines)
	}
	// But runtime refinement can add it.
	var storeNull *ir.Instr
	for _, in := range p.Instrs {
		if in.Op == ir.OpStore && in.Pos.Line == 14 {
			storeNull = in
		}
	}
	if storeNull == nil {
		t.Fatal("no store at line 14")
	}
	if !s.Add(storeNull.ID) {
		t.Fatal("Add reported existing instruction")
	}
	if !s.Contains(storeNull.ID) {
		t.Fatal("Add did not insert")
	}
	if s.Add(storeNull.ID) {
		t.Fatal("double Add reported new")
	}
}

func TestWindowGrowsMonotonically(t *testing.T) {
	p := ir.MustCompile("t.mc", pbzipSrc)
	g := cfg.BuildTICFG(p)
	fail := failingInstr(t, p, vm.Workload{}, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)
	s := Compute(g, fail)
	prev := 0
	for sigma := 1; sigma <= s.LineCount()+2; sigma *= 2 {
		w := s.Window(sigma)
		if len(w) < prev {
			t.Fatalf("window shrank at sigma=%d: %d < %d", sigma, len(w), prev)
		}
		prev = len(w)
		// Window instructions are always slice members.
		for _, id := range w {
			if !s.Contains(id) {
				t.Fatalf("window instr %%%d not in slice", id)
			}
		}
	}
	// The full window covers the whole slice.
	if got := len(s.Window(s.LineCount())); got != s.InstrCount() {
		t.Errorf("full window has %d instrs, slice has %d", got, s.InstrCount())
	}
}

func TestWindowContainsFailingStatement(t *testing.T) {
	p := ir.MustCompile("t.mc", pbzipSrc)
	g := cfg.BuildTICFG(p)
	fail := failingInstr(t, p, vm.Workload{}, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)
	s := Compute(g, fail)
	failLine := p.Instrs[fail].Pos.Line
	w := s.Window(1)
	if !linesOf(p, w)[failLine] {
		t.Errorf("sigma=1 window %v does not contain the failing line %d", linesOf(p, w), failLine)
	}
}

func TestDiscoveryOrderStartsAtFailure(t *testing.T) {
	p := ir.MustCompile("t.mc", pbzipSrc)
	g := cfg.BuildTICFG(p)
	fail := failingInstr(t, p, vm.Workload{}, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)
	s := Compute(g, fail)
	if len(s.Discovery) == 0 || s.Discovery[0] != fail {
		t.Errorf("discovery order must start at the failing instruction")
	}
	if !s.Contains(fail) {
		t.Error("slice must contain the failing instruction")
	}
}

func TestSharedAccessClassification(t *testing.T) {
	src := `global int g;
struct s { int f; };
int main() {
	int local = 1;
	g = local;
	struct s* p = malloc(sizeof(s));
	p->f = 2;
	int a = g;
	int b = p->f;
	int c = local;
	return a + b + c;
}`
	p := ir.MustCompile("t.mc", src)
	g := cfg.BuildTICFG(p)
	byLine := map[int][]bool{}
	for _, in := range p.Instrs {
		if in.IsMemAccess() {
			byLine[in.Pos.Line] = append(byLine[in.Pos.Line], SharedAccess(g, in))
		}
	}
	anyShared := func(line int) bool {
		for _, v := range byLine[line] {
			if v {
				return true
			}
		}
		return false
	}
	if !anyShared(5) { // g = local  (global store)
		t.Error("global store not classified shared")
	}
	if !anyShared(7) { // p->f = 2  (heap store)
		t.Error("heap field store not classified shared")
	}
	if anyShared(4) { // int local = 1 (stack only)
		t.Error("stack store classified shared")
	}
}
