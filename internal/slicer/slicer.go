// Package slicer implements Gist's interprocedural, path-insensitive,
// flow-sensitive static backward slicing (Algorithm 1 of the paper).
//
// Given the failing instruction, the slicer computes the set of program
// instructions that may affect it, walking:
//
//   - register def-use chains within functions,
//   - named-memory def-use chains (globals and locals, purely syntactic),
//   - interprocedural edges of the TICFG: return values of called
//     functions (getRetValues) and arguments at callsites, including
//     spawn sites for thread start routines (getArgValues),
//   - control dependences (the branches that decide whether an
//     instruction executes).
//
// Exactly like the paper (§3.1), the slicer uses *no alias analysis*:
// loads and stores through pointers (heap fields, array elements) are not
// connected statically; the pointer's computation enters the slice, but
// matching stores do not. Runtime data-flow tracking with hardware
// watchpoints discovers those statements and refinement adds them to the
// slice (§3.2.3) — that division of labor is the heart of the design.
package slicer

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// Slice is a static backward slice rooted at a failing instruction.
type Slice struct {
	Prog      *ir.Program
	FailingID int

	// IDs holds the slice's instruction IDs in ascending (program text)
	// order — the flow-sensitive presentation order.
	IDs []int
	// Discovery holds the same instructions in worklist discovery order:
	// dependence-wise closest to the failure first. Adaptive slice
	// tracking windows are taken in this order.
	Discovery []int

	member map[int]bool
}

// Contains reports whether instruction id is in the slice.
func (s *Slice) Contains(id int) bool { return s.member[id] }

// InstrCount returns the slice size in IR instructions.
func (s *Slice) InstrCount() int { return len(s.IDs) }

// SourceLines returns the distinct source lines of the slice in discovery
// order (closest to the failure first).
func (s *Slice) SourceLines() []int {
	var lines []int
	seen := make(map[int]bool)
	for _, id := range s.Discovery {
		ln := s.Prog.Instrs[id].Pos.Line
		if ln > 0 && !seen[ln] {
			seen[ln] = true
			lines = append(lines, ln)
		}
	}
	return lines
}

// LineCount returns the slice size in source lines.
func (s *Slice) LineCount() int { return len(s.SourceLines()) }

// Window returns the instruction IDs of the first sigma source lines of
// the slice in discovery order — the portion adaptive slice tracking
// monitors at runtime (§3.2.1). The failing statement's line is always
// part of the window.
func (s *Slice) Window(sigma int) []int {
	lines := s.SourceLines()
	if sigma > len(lines) {
		sigma = len(lines)
	}
	want := make(map[int]bool, sigma)
	for _, ln := range lines[:sigma] {
		want[ln] = true
	}
	var ids []int
	for _, id := range s.IDs {
		if want[s.Prog.Instrs[id].Pos.Line] {
			ids = append(ids, id)
		}
	}
	return ids
}

// Clone returns an independent copy of the slice. The analysis cache
// hands out clones because refinement (§3.2.3) mutates the slice a
// diagnosis works on, and the memoized master must stay pristine.
func (s *Slice) Clone() *Slice {
	c := &Slice{
		Prog:      s.Prog,
		FailingID: s.FailingID,
		IDs:       append([]int(nil), s.IDs...),
		Discovery: append([]int(nil), s.Discovery...),
		member:    make(map[int]bool, len(s.member)),
	}
	for id := range s.member {
		c.member[id] = true
	}
	return c
}

// Add inserts an instruction discovered at runtime (refinement, §3.2.3)
// into the slice. It reports whether the instruction was new.
func (s *Slice) Add(id int) bool {
	if s.member[id] {
		return false
	}
	s.member[id] = true
	s.Discovery = append(s.Discovery, id)
	s.IDs = append(s.IDs, id)
	sort.Ints(s.IDs)
	return true
}

// ---------------------------------------------------------------- items

// Items mirror Algorithm 1's work-set elements.
type regItem struct {
	fn  *ir.Func
	reg int
}

type localItem struct {
	fn   *ir.Func
	slot int
}

type globalItem struct{ idx int }

// AddrRootKind classifies what a memory access's address resolves to
// statically.
type AddrRootKind int

// Address root kinds.
const (
	RootDynamic AddrRootKind = iota // pointer-based: unresolvable without alias analysis
	RootGlobal
	RootLocal
)

// AddrRoot is the static resolution of an access's address operand.
type AddrRoot struct {
	Kind   AddrRootKind
	Global int // for RootGlobal
	Fn     *ir.Func
	Slot   int // for RootLocal
}

type slicerState struct {
	g    *cfg.TICFG
	prog *ir.Program

	slice *Slice

	// defs[fn][reg] = instructions defining reg in fn.
	defs map[*ir.Func]map[int][]*ir.Instr
	// ctrlDeps[block] = branch instructions the block is control-dependent on.
	ctrlDeps map[*ir.Block][]*ir.Instr
	// storesTo indexes Store instructions by their static address root.
	globalStores map[int][]*ir.Instr
	localStores  map[*ir.Func]map[int][]*ir.Instr

	work     []any
	inWork   map[any]bool
	maxItems int
}

// Compute builds the backward slice of the program rooted at failingID.
func Compute(g *cfg.TICFG, failingID int) *Slice {
	st := &slicerState{
		g:            g,
		prog:         g.Prog,
		slice:        &Slice{Prog: g.Prog, FailingID: failingID, member: make(map[int]bool)},
		defs:         make(map[*ir.Func]map[int][]*ir.Instr),
		ctrlDeps:     make(map[*ir.Block][]*ir.Instr),
		globalStores: make(map[int][]*ir.Instr),
		localStores:  make(map[*ir.Func]map[int][]*ir.Instr),
		inWork:       make(map[any]bool),
		maxItems:     1 << 20,
	}
	st.buildIndexes()
	failing := st.prog.Instrs[failingID]
	st.addInstr(failing)
	st.pushInstrDeps(failing)
	for len(st.work) > 0 && st.maxItems > 0 {
		st.maxItems--
		item := st.work[len(st.work)-1]
		st.work = st.work[:len(st.work)-1]
		st.processItem(item)
	}
	sort.Ints(st.slice.IDs)
	return st.slice
}

func (st *slicerState) buildIndexes() {
	for _, f := range st.prog.Funcs {
		st.defs[f] = make(map[int][]*ir.Instr)
		st.localStores[f] = make(map[int][]*ir.Instr)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Dst >= 0 {
					st.defs[f][in.Dst] = append(st.defs[f][in.Dst], in)
				}
				if in.Op == ir.OpStore {
					root := st.RootOf(in)
					switch root.Kind {
					case RootGlobal:
						st.globalStores[root.Global] = append(st.globalStores[root.Global], in)
					case RootLocal:
						st.localStores[f][root.Slot] = append(st.localStores[f][root.Slot], in)
					}
				}
			}
		}
		st.buildCtrlDeps(f)
	}
}

// buildCtrlDeps computes classic control dependence: block B is control
// dependent on branch A iff A has a successor S from which B is reachable
// with B postdominating S, while B does not postdominate A itself.
func (st *slicerState) buildCtrlDeps(f *ir.Func) {
	pdom := st.g.PDom[f]
	for _, a := range f.Blocks {
		term := a.Terminator()
		if term == nil || term.Op != ir.OpBr {
			continue
		}
		for _, s := range a.Succs() {
			// Walk the postdominator tree from s up to (exclusive)
			// ipdom(a); every block on the way is control dependent on a.
			runner := s
			stop := pdom.IPDom(a)
			for runner != nil && runner != stop {
				st.ctrlDeps[runner] = append(st.ctrlDeps[runner], term)
				runner = pdom.IPDom(runner)
			}
		}
	}
}

// RootOf statically resolves the address operand of a Load/Store. The
// address register is always a fresh temporary with a single definition
// in our IR, so a one-step walk suffices.
func (st *slicerState) RootOf(in *ir.Instr) AddrRoot {
	if in.A.Kind != ir.ValReg {
		return AddrRoot{Kind: RootDynamic}
	}
	fn := in.Blk.Fn
	defs := st.defs[fn][in.A.Reg]
	if len(defs) != 1 {
		return AddrRoot{Kind: RootDynamic}
	}
	switch d := defs[0]; d.Op {
	case ir.OpGlobalAddr:
		return AddrRoot{Kind: RootGlobal, Global: d.Global}
	case ir.OpLocalAddr:
		return AddrRoot{Kind: RootLocal, Fn: fn, Slot: d.Slot}
	default:
		return AddrRoot{Kind: RootDynamic}
	}
}

// RootOf is exported for the planner, which needs the same resolution to
// decide which accesses are shared-memory accesses.
func RootOf(g *cfg.TICFG, in *ir.Instr) AddrRoot {
	st := &slicerState{g: g, prog: g.Prog, defs: map[*ir.Func]map[int][]*ir.Instr{}}
	fn := in.Blk.Fn
	st.defs[fn] = make(map[int][]*ir.Instr)
	for _, b := range fn.Blocks {
		for _, i2 := range b.Instrs {
			if i2.Dst >= 0 {
				st.defs[fn][i2.Dst] = append(st.defs[fn][i2.Dst], i2)
			}
		}
	}
	return st.RootOf(in)
}

func (st *slicerState) push(item any) {
	if st.inWork[item] {
		return
	}
	st.inWork[item] = true
	st.work = append(st.work, item)
}

func (st *slicerState) pushVal(fn *ir.Func, v ir.Value) {
	if v.Kind == ir.ValReg {
		st.push(regItem{fn, v.Reg})
	}
}

// addInstr admits an instruction into the slice and pulls in the branches
// it is control-dependent on.
func (st *slicerState) addInstr(in *ir.Instr) {
	if st.slice.member[in.ID] {
		return
	}
	st.slice.member[in.ID] = true
	st.slice.Discovery = append(st.slice.Discovery, in.ID)
	st.slice.IDs = append(st.slice.IDs, in.ID)
	for _, br := range st.ctrlDeps[in.Blk] {
		if !st.slice.member[br.ID] {
			st.addInstr(br)
			st.pushInstrDeps(br)
		}
	}
}

// pushInstrDeps pushes the work-set items feeding an instruction —
// Algorithm 1's getItems/isSource step.
func (st *slicerState) pushInstrDeps(in *ir.Instr) {
	fn := in.Blk.Fn
	switch in.Op {
	case ir.OpLoad:
		root := st.RootOf(in)
		switch root.Kind {
		case RootGlobal:
			st.push(globalItem{root.Global})
		case RootLocal:
			st.push(localItem{root.Fn, root.Slot})
		}
		// The address computation itself is always relevant (for dynamic
		// roots it is all we have — the pointer's provenance).
		st.pushVal(fn, in.A)
	case ir.OpStore:
		st.pushVal(fn, in.A)
		st.pushVal(fn, in.B)
	case ir.OpCall:
		callee := st.g.CallEdges[in.ID]
		if callee != nil {
			for _, ret := range st.g.Rets[callee] {
				st.addInstr(ret)
				st.pushInstrDeps(ret)
			}
		}
		for _, a := range in.Args {
			st.pushVal(fn, a)
		}
	case ir.OpCallB:
		for _, a := range in.Args {
			st.pushVal(fn, a)
		}
	case ir.OpBr, ir.OpRet, ir.OpMov, ir.OpNot, ir.OpNeg, ir.OpJmp:
		st.pushVal(fn, in.A)
	case ir.OpBin, ir.OpIndexAddr:
		st.pushVal(fn, in.A)
		st.pushVal(fn, in.B)
	case ir.OpFieldAddr:
		st.pushVal(fn, in.A)
	case ir.OpLocalAddr, ir.OpGlobalAddr, ir.OpStrAddr:
		// Leaves: no inputs.
	}
}

func (st *slicerState) processItem(item any) {
	switch it := item.(type) {
	case regItem:
		for _, def := range st.defs[it.fn][it.reg] {
			st.addInstr(def)
			st.pushInstrDeps(def)
		}
	case localItem:
		for _, store := range st.localStores[it.fn][it.slot] {
			st.addInstr(store)
			st.pushInstrDeps(store)
		}
		if it.slot < it.fn.Params {
			// Parameter: flow in from every callsite (and spawn site).
			for _, av := range st.g.ArgValues(it.fn, it.slot) {
				st.addInstr(av.Site)
				st.pushVal(av.Site.Blk.Fn, av.Val)
				// Spawn payloads: the spawn's own operands are pulled in
				// by pushInstrDeps at the site.
				st.pushInstrDeps(av.Site)
			}
		}
	case globalItem:
		for _, store := range st.globalStores[it.idx] {
			st.addInstr(store)
			st.pushInstrDeps(store)
		}
	}
}

// SharedAccess reports whether a Load/Store instruction touches
// potentially shared memory: a global, or anything reached through a
// pointer (heap). Stack slots are excluded, as Gist never watches the
// stack (§3.2.3, §6).
func SharedAccess(g *cfg.TICFG, in *ir.Instr) bool {
	if !in.IsMemAccess() {
		return false
	}
	switch RootOf(g, in).Kind {
	case RootGlobal, RootDynamic:
		return true
	default:
		return false
	}
}
