package supervise_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/store"
	"repro/internal/supervise"
	"repro/internal/vm"
)

var superBugs = []string{"pbzip2", "curl", "memcached"}

// fingerprint captures everything diagnosis-visible about an outcome;
// two equal fingerprints mean byte-identical diagnoses.
func fingerprint(res *core.Result, err error) string {
	if err != nil {
		return "err: " + err.Error()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "disc=%d total=%d rec=%d ov=%.9f\n",
		res.DiscoveryRuns, res.TotalRuns, res.FailureRecurrences, res.AvgOverheadPct)
	fmt.Fprintf(&sb, "health=%+v\n", res.Health)
	for _, it := range res.Iters {
		fmt.Fprintf(&sb, "iter=%+v\n", it)
	}
	fmt.Fprintf(&sb, "slice=%v\n", res.Slice.IDs)
	sb.WriteString(res.Sketch.Render())
	for _, r := range res.Sketch.AllRanked {
		fmt.Fprintf(&sb, "ranked=%+v\n", r)
	}
	return sb.String()
}

type tenantFixture struct {
	name   string
	cfg    core.Config
	report *vm.FailureReport
	disc   int
	make   func() *core.Campaign
	serial string
}

// prepare discovers each bug's first failure once and returns per-bug
// campaign factories (with the restore config the supervisor needs)
// plus serial baseline fingerprints.
func prepare(t *testing.T, names []string) []*tenantFixture {
	t.Helper()
	var out []*tenantFixture
	for _, name := range names {
		b := bugs.ByName(name)
		if b == nil {
			t.Fatalf("unknown bug %q", name)
		}
		cfg := b.GistConfig()
		cfg.Label = b.Name
		cfg.StopWhen = experiments.DeveloperOracle(b)
		report, disc, err := core.FirstFailure(cfg)
		if err != nil {
			t.Fatalf("%s: discovery: %v", name, err)
		}
		fx := &tenantFixture{name: name, cfg: cfg, report: report, disc: disc}
		fx.serial = fingerprint(core.RunFromReport(cfg, report, disc))
		fx.make = func() *core.Campaign {
			camp, err := core.NewCampaign(cfg, report, disc)
			if err != nil {
				t.Fatalf("%s: NewCampaign: %v", name, err)
			}
			return camp
		}
		out = append(out, fx)
	}
	return out
}

// TestSupervisedCleanMatchesSerial runs all tenants supervised with no
// faults: every diagnosis must be byte-identical to the serial
// baseline, with zero restarts and a durable checkpoint per step.
func TestSupervisedCleanMatchesSerial(t *testing.T) {
	fixtures := prepare(t, superBugs)
	sup := supervise.New(0, supervise.Config{})
	for i, fx := range fixtures {
		st, err := store.Open(t.TempDir(), fx.name, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		slot, err := sup.Add(fx.cfg, fx.make(), st)
		if err != nil || slot != i {
			t.Fatalf("Add(%s) = slot %d, err %v", fx.name, slot, err)
		}
	}
	outs := sup.Run()
	for i, out := range outs {
		fx := fixtures[i]
		if got := fingerprint(out.Result, out.Err); got != fx.serial {
			t.Errorf("%s: supervised diagnosis diverged from serial:\n%s", fx.name, got)
		}
		if out.Restarts != 0 || out.BreakerTripped || out.Drained {
			t.Errorf("%s: clean run recorded supervision events: %+v", fx.name, out)
		}
		// One checkpoint at enrollment plus one per completed round.
		if out.Checkpoints != out.Rounds+1 {
			t.Errorf("%s: %d checkpoints for %d rounds", fx.name, out.Checkpoints, out.Rounds)
		}
	}
}

// TestCrashAndHangRestartsAreByteIdentical injects one panic into one
// tenant and one hang into another; the supervisor must restart both
// from their checkpoints and still produce byte-identical diagnoses.
func TestCrashAndHangRestartsAreByteIdentical(t *testing.T) {
	fixtures := prepare(t, superBugs)
	sup := supervise.New(0, supervise.Config{StepTimeout: 2 * time.Second})
	for _, fx := range fixtures {
		if _, err := sup.Add(fx.cfg, fx.make(), nil); err != nil {
			t.Fatal(err)
		}
	}
	sup.SetStepFault(0, func(step int) supervise.StepFault {
		if step == 1 {
			return supervise.StepPanic
		}
		return supervise.StepNone
	})
	sup.SetStepFault(1, func(step int) supervise.StepFault {
		if step == 0 {
			return supervise.StepHang
		}
		return supervise.StepNone
	})
	outs := sup.Run()
	for i, out := range outs {
		fx := fixtures[i]
		if got := fingerprint(out.Result, out.Err); got != fx.serial {
			t.Errorf("%s: post-restart diagnosis diverged from serial:\n%s", fx.name, got)
		}
	}
	if outs[0].Restarts != 1 || outs[0].Panics != 1 {
		t.Errorf("slot 0: restarts=%d panics=%d, want 1/1", outs[0].Restarts, outs[0].Panics)
	}
	if outs[1].Restarts != 1 || outs[1].WatchdogTrips != 1 {
		t.Errorf("slot 1: restarts=%d watchdog=%d, want 1/1", outs[1].Restarts, outs[1].WatchdogTrips)
	}
	if outs[2].Restarts != 0 {
		t.Errorf("slot 2: healthy tenant restarted %d times", outs[2].Restarts)
	}
}

// TestBreakerDegradesToLastCheckpoint crash-loops one tenant past its
// restart budget: the breaker must retire the slot and serve the last
// checkpointed sketch marked low-confidence rather than fail the whole
// schedule.
func TestBreakerDegradesToLastCheckpoint(t *testing.T) {
	fx := prepare(t, []string{"pbzip2"})[0]
	// Drop the developer oracle so the campaign needs several
	// iterations to converge — the breaker must fire mid-diagnosis.
	cfg := fx.cfg
	cfg.StopWhen = nil

	// Expected degraded state: one clean iteration, then abandonment.
	ref, err := core.NewCampaign(cfg, fx.report, fx.disc)
	if err != nil {
		t.Fatal(err)
	}
	if done, _ := ref.Step(); done {
		t.Skip("bug converged in one iteration; breaker cannot fire mid-diagnosis")
	}
	snap, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	expected, err := core.RestoreCampaign(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	expected.Abandon(fmt.Errorf("reference"))
	wantRes, wantErr := expected.Result()

	sup := supervise.New(0, supervise.Config{MaxRestarts: 2})
	camp, err := core.NewCampaign(cfg, fx.report, fx.disc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Add(cfg, camp, nil); err != nil {
		t.Fatal(err)
	}
	sup.SetStepFault(0, func(step int) supervise.StepFault {
		if step >= 1 {
			return supervise.StepPanic
		}
		return supervise.StepNone
	})
	out := sup.Run()[0]
	if !out.BreakerTripped {
		t.Fatalf("breaker did not trip: %+v", out)
	}
	if out.Restarts != 3 {
		t.Errorf("restarts = %d, want 3 (budget 2 + breaker trip)", out.Restarts)
	}
	if wantErr != nil {
		if out.Err == nil || out.Err.Error() != wantErr.Error() {
			t.Fatalf("degraded err = %v, want %v", out.Err, wantErr)
		}
		return
	}
	if out.Result == nil {
		t.Fatalf("breaker served no result (err %v)", out.Err)
	}
	if !out.Result.Sketch.LowConfidence {
		t.Error("degraded sketch not marked low-confidence")
	}
	if got, want := fingerprint(out.Result, out.Err), fingerprint(wantRes, wantErr); got != want {
		t.Errorf("degraded diagnosis is not the last checkpoint:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestCrashLoopCannotStarveOthers is the fairness satellite: one tenant
// crash-loops from its very first step, and the healthy tenants must
// still complete byte-identically with an even share of the fleet
// (Jain index over their per-round consumption stays near 1).
func TestCrashLoopCannotStarveOthers(t *testing.T) {
	fixtures := prepare(t, superBugs)
	sup := supervise.New(0, supervise.Config{MaxRestarts: 3, BackoffCap: 4})
	for _, fx := range fixtures {
		if _, err := sup.Add(fx.cfg, fx.make(), nil); err != nil {
			t.Fatal(err)
		}
	}
	sup.SetStepFault(0, func(int) supervise.StepFault { return supervise.StepPanic })
	outs := sup.Run()

	if !outs[0].BreakerTripped {
		t.Fatalf("crash-looping tenant did not trip the breaker: %+v", outs[0])
	}
	for _, n := range outs[0].RunsPerRound {
		if n != 0 {
			t.Errorf("crash-looping tenant consumed %d fleet runs in a round", n)
		}
	}
	var shares []float64
	for i := 1; i < len(outs); i++ {
		out := outs[i]
		fx := fixtures[i]
		if got := fingerprint(out.Result, out.Err); got != fx.serial {
			t.Errorf("%s: diagnosis diverged beside a crash-looping tenant:\n%s", fx.name, got)
		}
		sum := 0
		for _, n := range out.RunsPerRound {
			sum += n
		}
		shares = append(shares, float64(sum)/float64(out.Rounds))
	}
	if j := experiments.JainIndex(shares); j < 0.6 {
		t.Errorf("Jain fairness index %.3f across healthy tenants, want >= 0.6 (shares %v)", j, shares)
	}
}

// TestDrainCheckpointsAndResumes requests a drain mid-run: every
// in-flight campaign must be checkpointed durably, and a fresh process
// (new store handle, new supervisor) must finish each diagnosis
// byte-identically from those checkpoints.
func TestDrainCheckpointsAndResumes(t *testing.T) {
	fixtures := prepare(t, superBugs)
	dirs := make([]string, len(fixtures))
	sup := supervise.New(0, supervise.Config{})
	for i, fx := range fixtures {
		dirs[i] = t.TempDir()
		st, err := store.Open(dirs[i], fx.name, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sup.Add(fx.cfg, fx.make(), st); err != nil {
			t.Fatal(err)
		}
	}
	// A stepper-side hook flips the drain flag during round 2; the
	// supervisor notices at the round boundary.
	sup.SetStepFault(0, func(step int) supervise.StepFault {
		if step == 1 {
			sup.RequestDrain()
		}
		return supervise.StepNone
	})
	outs := sup.Run()
	if !sup.Draining() {
		t.Fatal("drain request lost")
	}

	for i, out := range outs {
		fx := fixtures[i]
		final := out
		if out.Drained {
			if out.Err == nil {
				t.Errorf("%s: drained outcome has no pending error", fx.name)
			}
			// Simulate process restart: reopen the store, restore the
			// newest generation, finish under a new supervisor.
			st, err := store.Open(dirs[i], fx.name, store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			latest := st.Latest()
			if latest == nil {
				t.Fatalf("%s: drain left no durable checkpoint", fx.name)
			}
			snap, err := core.DecodeCampaignSnapshot(latest.Payload)
			if err != nil {
				t.Fatalf("%s: drain checkpoint undecodable: %v", fx.name, err)
			}
			camp, err := core.RestoreCampaign(fx.cfg, snap)
			if err != nil {
				t.Fatalf("%s: restore: %v", fx.name, err)
			}
			resumed := supervise.New(0, supervise.Config{})
			if _, err := resumed.Add(fx.cfg, camp, st); err != nil {
				t.Fatal(err)
			}
			final = resumed.Run()[0]
		}
		if got := fingerprint(final.Result, final.Err); got != fx.serial {
			t.Errorf("%s: drained-and-resumed diagnosis diverged from serial:\n%s", fx.name, got)
		}
	}
}
