package supervise_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/supervise"
)

// openStore opens a fresh per-campaign checkpoint store on b.
func openStore(t *testing.T, b store.Backend, name string) *store.Store {
	t.Helper()
	st, err := store.Open("ckpt", name, store.Options{Backend: b, NoFsync: true})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

// TestAdoptFreshWhenStoreIsEmpty pins Adopt's cold path: with no
// checkpoint generation it builds the campaign via the fresh callback
// and reports resumed=false.
func TestAdoptFreshWhenStoreIsEmpty(t *testing.T) {
	fx := prepare(t, []string{"pbzip2"})[0]
	b := store.NewMemBackend()
	sup := supervise.New(1, supervise.Config{})
	slot, resumed, err := sup.Adopt(fx.cfg, openStore(t, b, fx.name), func() (*core.Campaign, error) {
		return core.NewCampaign(fx.cfg, fx.report, fx.disc)
	})
	if err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	if resumed {
		t.Fatalf("Adopt reported resumed on an empty store")
	}
	out := sup.Run()[slot]
	if got := fingerprint(out.Result, out.Err); got != fx.serial {
		t.Errorf("adopted-fresh diagnosis diverged from serial baseline")
	}
}

// TestAdoptResumesFromLatestGeneration pins the takeover path: a first
// supervisor checkpoints a few rounds and stops (process death); a
// second supervisor adopting the same store must resume (not restart —
// the fresh callback must not run) and finish byte-identical to the
// serial baseline.
func TestAdoptResumesFromLatestGeneration(t *testing.T) {
	fx := prepare(t, []string{"pbzip2"})[0]
	b := store.NewMemBackend()

	first := supervise.New(1, supervise.Config{})
	camp, err := core.NewCampaign(fx.cfg, fx.report, fx.disc)
	if err != nil {
		t.Fatalf("NewCampaign: %v", err)
	}
	if _, err := first.Add(fx.cfg, camp, openStore(t, b, fx.name)); err != nil {
		t.Fatalf("Add: %v", err)
	}
	for r := 0; r < 2; r++ {
		if first.RunRound() == 0 {
			t.Fatalf("campaign finished before the handoff round; pick a longer bug")
		}
	}
	// The first supervisor is simply never driven again — process death.

	second := supervise.New(1, supervise.Config{})
	slot, resumed, err := second.Adopt(fx.cfg, openStore(t, b, fx.name), func() (*core.Campaign, error) {
		t.Fatalf("fresh callback ran despite a durable checkpoint generation")
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	if !resumed {
		t.Fatalf("Adopt did not resume from the checkpoint store")
	}
	out := second.Run()[slot]
	if got := fingerprint(out.Result, out.Err); got != fx.serial {
		t.Errorf("resumed diagnosis diverged from serial baseline:\n--- resumed ---\n%s\n--- serial ---\n%s",
			got, fx.serial)
	}
}

// TestAdoptFallsBackAcrossCorruptGenerations: a newest generation whose
// payload no longer decodes is discarded and the previous one resumes.
func TestAdoptFallsBackAcrossCorruptGenerations(t *testing.T) {
	fx := prepare(t, []string{"pbzip2"})[0]
	b := store.NewMemBackend()

	first := supervise.New(1, supervise.Config{})
	camp, err := core.NewCampaign(fx.cfg, fx.report, fx.disc)
	if err != nil {
		t.Fatalf("NewCampaign: %v", err)
	}
	st := openStore(t, b, fx.name)
	if _, err := first.Add(fx.cfg, camp, st); err != nil {
		t.Fatalf("Add: %v", err)
	}
	for r := 0; r < 2; r++ {
		if first.RunRound() == 0 {
			t.Fatalf("campaign finished too early for the test to bite")
		}
	}
	// Append a generation whose frame is valid but whose payload is not
	// a campaign snapshot: Adopt must discard it and use the real one.
	if _, err := st.Save([]byte("not a campaign snapshot")); err != nil {
		t.Fatalf("Save: %v", err)
	}

	second := supervise.New(1, supervise.Config{})
	slot, resumed, err := second.Adopt(fx.cfg, openStore(t, b, fx.name), func() (*core.Campaign, error) {
		t.Fatalf("fresh callback ran despite a valid older generation")
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	if !resumed {
		t.Fatalf("Adopt did not resume")
	}
	out := second.Run()[slot]
	if got := fingerprint(out.Result, out.Err); got != fx.serial {
		t.Errorf("fallback-resumed diagnosis diverged from serial baseline")
	}
}

// TestRetireSlotStopsSteppingAndMarksReleased pins the lease-lost path:
// RetireSlot makes the scheduler skip the slot and the outcome reports
// Released, distinguishing ownership handoff from breaker abandonment.
func TestRetireSlotStopsSteppingAndMarksReleased(t *testing.T) {
	fx := prepare(t, []string{"pbzip2"})[0]
	sup := supervise.New(1, supervise.Config{})
	camp, err := core.NewCampaign(fx.cfg, fx.report, fx.disc)
	if err != nil {
		t.Fatalf("NewCampaign: %v", err)
	}
	slot, err := sup.Add(fx.cfg, camp, nil)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if sup.RunRound() != 1 {
		t.Fatalf("campaign not live before RetireSlot")
	}
	sup.RetireSlot(slot)
	if !sup.Scheduler().Retired(slot) {
		t.Fatalf("RetireSlot did not retire the scheduler slot")
	}
	if sup.RunRound() != 0 {
		t.Fatalf("retired slot still stepped")
	}
	out := sup.Outcomes()[slot]
	if !out.Released {
		t.Fatalf("outcome not marked Released after RetireSlot: %+v", out)
	}
	if out.BreakerTripped {
		t.Fatalf("RetireSlot must not read as a breaker trip")
	}
}
