// Package supervise wraps the multi-campaign scheduler in a
// self-healing supervisor: every campaign step runs under panic
// recovery and a watchdog deadline, a campaign that crashes or hangs is
// replaced by one restored from its last good checkpoint after a capped
// exponential backoff (measured in scheduler rounds, so recovery is
// deterministic), and a campaign that crash-loops past its restart
// budget trips a per-bug circuit breaker: the slot is retired and the
// last checkpointed state is served as a degraded, low-confidence
// diagnosis instead of poisoning the whole deployment.
//
// The paper's deployment model (§3.3) assumes the diagnosis service
// itself keeps running for weeks while failures recur; this layer is
// what makes that survivable. Because a campaign's diagnosis is a pure
// function of its iteration-boundary state, a supervised restart
// reproduces the uninterrupted run byte-for-byte — supervision changes
// availability, never answers.
//
// Checkpoints flow through internal/store when a tenant has one
// attached: after every successful step the boundary snapshot is saved
// durably, so a process kill (not just a goroutine crash) resumes from
// at most one iteration back. The in-memory copy of the last good
// snapshot is the restart source within a process; the store matters
// across process death.
package supervise

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// StepFault is an injected failure consulted at step entry — the
// supervisor's own fault dimension, separate from the pipeline and disk
// classes in internal/faults. Faults are injected before the campaign
// is touched, so an abandoned (hung) step goroutine never mutates
// campaign state behind the restored replacement's back.
type StepFault int

const (
	StepNone StepFault = iota
	// StepPanic makes the step goroutine panic before stepping.
	StepPanic
	// StepHang makes the step goroutine block, without stepping, until
	// the watchdog abandons it.
	StepHang
)

// Config tunes the supervisor. The zero value gets sane defaults.
type Config struct {
	// StepTimeout is the watchdog deadline for one campaign step
	// (default 30s). A step that overruns is abandoned and the campaign
	// restarted from its last good checkpoint.
	StepTimeout time.Duration
	// MaxRestarts is the circuit-breaker threshold: restart number
	// MaxRestarts+1 trips the breaker instead (default 3).
	MaxRestarts int
	// BackoffCap bounds the exponential restart backoff, in scheduler
	// rounds (default 8): restart n waits min(2^(n-1), BackoffCap)
	// rounds before the campaign is stepped again.
	BackoffCap int
	// Telemetry receives supervise.* counters; nil is fine.
	Telemetry *telemetry.Tracer
	// OnRestore, when non-nil, is called with every campaign restored
	// from checkpoint before it re-enters the scheduler. The service
	// uses it to reattach its remote runner — restoration rebuilds the
	// campaign from serialized state, which cannot carry a live
	// transport.
	OnRestore func(c *core.Campaign)
}

func (c Config) withDefaults() Config {
	if c.StepTimeout <= 0 {
		c.StepTimeout = 30 * time.Second
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 3
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 8
	}
	return c
}

// Outcome is one supervised campaign's result: the scheduler outcome
// plus the supervision history that produced it.
type Outcome struct {
	sched.Outcome
	// Restarts is how many times the campaign was restored from its
	// last good checkpoint after a crash or hang.
	Restarts int
	// Panics and WatchdogTrips break Restarts down by cause.
	Panics        int
	WatchdogTrips int
	// Checkpoints is how many boundary snapshots were durably saved.
	Checkpoints int
	// BreakerTripped marks a campaign abandoned by the circuit breaker;
	// its Result is the degraded, low-confidence last checkpoint.
	BreakerTripped bool
	// Drained marks a campaign checkpointed and suspended by a drain
	// request; its Err is the campaign's not-finished error.
	Drained bool
	// Released marks a campaign retired by RetireSlot because its
	// ownership moved to another process; the last durable checkpoint
	// generation is where the new owner resumes.
	Released bool
}

// tenant is the supervisor's per-slot bookkeeping.
type tenant struct {
	label    string
	cfg      core.Config
	ckpt     *store.Store // nil = in-memory supervision only
	lastGood *core.CampaignSnapshot
	steps    int // guarded step attempts, feeds the fault script
	backoff  int // rounds left to sit out before the next step
	faultFn  func(step int) StepFault

	restarts      int
	panics        int
	watchdogTrips int
	checkpoints   int
	breaker       bool
	drained       bool
	released      bool
	dead          bool // could not restore; Err carries the reason
	deadErr       error
}

// Supervisor drives campaigns through a sched.Scheduler with per-step
// guards and checkpoint-based restarts. Not safe for concurrent use,
// except RequestDrain which may be called from any goroutine (a signal
// handler).
type Supervisor struct {
	cfg      Config
	sched    *sched.Scheduler
	tenants  []*tenant
	draining atomic.Bool
}

// New returns a supervisor over a fresh scheduler whose shared fleet
// has the given width (0 = GOMAXPROCS).
func New(width int, cfg Config) *Supervisor {
	s := &Supervisor{cfg: cfg.withDefaults(), sched: sched.New(width)}
	s.sched.SetStepper(s.step)
	return s
}

// Scheduler exposes the underlying scheduler (for width queries).
func (s *Supervisor) Scheduler() *sched.Scheduler { return s.sched }

// Add enrolls a campaign. cfg must be the configuration the campaign
// was built (or restored) with — it is what restarts restore under.
// ckpt, when non-nil, receives a durable boundary snapshot after every
// successful step; the enrollment snapshot is saved immediately so even
// a step-zero kill can resume. The campaign must sit at an iteration
// boundary (freshly built or restored).
func (s *Supervisor) Add(cfg core.Config, c *core.Campaign, ckpt *store.Store) (int, error) {
	snap, err := c.Snapshot()
	if err != nil {
		return 0, fmt.Errorf("supervise: enrolling %s: %w", c.Label(), err)
	}
	t := &tenant{label: c.Label(), cfg: cfg, ckpt: ckpt, lastGood: snap}
	slot := s.sched.Len()
	s.sched.Add(c)
	s.tenants = append(s.tenants, t)
	s.save(t, snap)
	return slot, nil
}

// Adopt enrolls a campaign previously owned by another process — the
// dead-process analogue of the in-process restart path. It restores the
// newest checkpoint generation whose payload decodes, discarding
// unreadable generations one by one (exactly the newest-valid-wins rule
// the CLI's -resume applies), and falls back to fresh when no
// generation survives — the campaign had not reached its first durable
// boundary, so building it from scratch is byte-identical to resuming.
// It reports the slot and whether a checkpoint was resumed.
func (s *Supervisor) Adopt(cfg core.Config, ckpt *store.Store, fresh func() (*core.Campaign, error)) (int, bool, error) {
	if ckpt != nil {
		for {
			latest := ckpt.Latest()
			if latest == nil {
				break
			}
			snap, err := core.DecodeCampaignSnapshot(latest.Payload)
			if err != nil {
				ckpt.Discard(fmt.Errorf("supervise: adopt: undecodable snapshot: %w", err))
				continue
			}
			c, err := core.RestoreCampaign(cfg, snap)
			if err != nil {
				ckpt.Discard(fmt.Errorf("supervise: adopt: unrestorable snapshot: %w", err))
				continue
			}
			if s.cfg.OnRestore != nil {
				s.cfg.OnRestore(c)
			}
			slot, err := s.Add(cfg, c, ckpt)
			if err != nil {
				return 0, false, err
			}
			s.count("supervise.adopted", s.tenants[slot], 1)
			return slot, true, nil
		}
	}
	c, err := fresh()
	if err != nil {
		return 0, false, err
	}
	slot, err := s.Add(cfg, c, ckpt)
	return slot, false, err
}

// RunRound drives one scheduler round: every live campaign is stepped
// once under the supervision guards. It returns how many campaigns were
// live; 0 means every enrolled campaign is finished or retired. Callers
// that interleave supervision with other per-round work (the shard
// worker renews leases between rounds) drive this instead of Run.
func (s *Supervisor) RunRound() int { return s.sched.RunRound() }

// RetireSlot permanently excludes a slot from future rounds without
// tripping the breaker: campaign ownership moved to another process,
// which resumes from the last durable checkpoint generation. The
// outcome is marked Released.
func (s *Supervisor) RetireSlot(slot int) {
	t := s.tenants[slot]
	t.released = true
	s.sched.Retire(slot)
	s.count("supervise.released", t, 1)
}

// SetStepFault installs a fault script for one slot: fn is consulted
// with the slot's step-attempt index before each guarded step. Used by
// tests and the crashloop experiment; nil clears the script.
func (s *Supervisor) SetStepFault(slot int, fn func(step int) StepFault) {
	s.tenants[slot].faultFn = fn
}

// RequestDrain asks the supervisor to stop at the next round boundary,
// checkpoint every in-flight campaign, and return. Safe from any
// goroutine; the CLI wires SIGINT/SIGTERM here.
func (s *Supervisor) RequestDrain() { s.draining.Store(true) }

// Draining reports whether a drain has been requested.
func (s *Supervisor) Draining() bool { return s.draining.Load() }

// Run drives all enrolled campaigns to completion — or to the breaker,
// or to a drain request — and returns the outcomes in enrollment
// order.
func (s *Supervisor) Run() []Outcome {
	for !s.draining.Load() {
		if s.sched.RunRound() == 0 {
			break
		}
	}
	if s.draining.Load() {
		s.drain()
	}
	return s.Outcomes()
}

// drain checkpoints every live campaign at the current round boundary.
func (s *Supervisor) drain() {
	for i, t := range s.tenants {
		c := s.sched.Campaign(i)
		if c.Finished() || s.sched.Retired(i) {
			continue
		}
		t.drained = true
		s.count("supervise.drained", t, 1)
		if snap, err := c.Snapshot(); err == nil {
			t.lastGood = snap
			s.save(t, snap)
		}
	}
}

// Outcomes returns the per-slot outcomes in enrollment order.
func (s *Supervisor) Outcomes() []Outcome {
	base := s.sched.Outcomes()
	outs := make([]Outcome, len(base))
	for i, t := range s.tenants {
		outs[i] = Outcome{
			Outcome:        base[i],
			Restarts:       t.restarts,
			Panics:         t.panics,
			WatchdogTrips:  t.watchdogTrips,
			Checkpoints:    t.checkpoints,
			BreakerTripped: t.breaker,
			Drained:        t.drained,
			Released:       t.released,
		}
		if t.dead {
			outs[i].Result, outs[i].Err = nil, t.deadErr
		}
	}
	return outs
}

// step is the scheduler's Stepper: guard one campaign step, checkpoint
// on success, restart or break on failure. It runs concurrently with
// other slots' steps and touches only its own slot.
func (s *Supervisor) step(slot int, c *core.Campaign) {
	t := s.tenants[slot]
	if t.dead {
		s.sched.Retire(slot)
		return
	}
	if t.backoff > 0 {
		t.backoff--
		s.count("supervise.backoff_rounds", t, 1)
		return
	}
	if s.guardedStep(t, c) {
		if snap, err := c.Snapshot(); err == nil {
			t.lastGood = snap
			s.save(t, snap)
		}
		return
	}

	// The step crashed or hung. Restart from the last good checkpoint,
	// or trip the breaker once the restart budget is spent.
	t.restarts++
	s.count("supervise.restarts", t, 1)
	reason := fmt.Errorf("supervise: %s crashed/hung %d time(s) at iteration %d",
		t.label, t.restarts, t.lastGood.Iter)
	restored, err := core.RestoreCampaign(t.cfg, t.lastGood)
	if err == nil && s.cfg.OnRestore != nil {
		s.cfg.OnRestore(restored)
	}
	if err != nil {
		// The checkpoint itself cannot be restored — nothing to heal
		// from. Retire the slot with the restore error.
		t.dead = true
		t.deadErr = fmt.Errorf("supervise: cannot restore %s from checkpoint: %w", t.label, err)
		s.sched.Retire(slot)
		s.count("supervise.breaker_trips", t, 1)
		return
	}
	if t.restarts > s.cfg.MaxRestarts {
		t.breaker = true
		s.count("supervise.breaker_trips", t, 1)
		restored.Abandon(reason)
		s.sched.Replace(slot, restored)
		s.sched.Retire(slot)
		return
	}
	t.backoff = 1 << (t.restarts - 1)
	if t.backoff > s.cfg.BackoffCap {
		t.backoff = s.cfg.BackoffCap
	}
	s.sched.Replace(slot, restored)
}

// guardedStep runs one campaign step under panic recovery and the
// watchdog. It reports whether the step completed normally; on false
// the campaign object may be in an arbitrary state and must be
// replaced, never stepped again.
func (s *Supervisor) guardedStep(t *tenant, c *core.Campaign) bool {
	var fault StepFault
	if t.faultFn != nil {
		fault = t.faultFn(t.steps)
	}
	t.steps++
	abandoned := make(chan struct{})
	done := make(chan bool, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- false
			}
		}()
		switch fault {
		case StepPanic:
			panic(fmt.Sprintf("supervise: injected panic in %s step %d", t.label, t.steps-1))
		case StepHang:
			// Injected hangs never touch the campaign: block until the
			// watchdog gives up, then exit cleanly. Campaign state and
			// the seed cursor stay exactly at the boundary.
			<-abandoned
			return
		}
		c.Step() // terminal errors surface via Result, not here
		done <- true
	}()
	timer := time.NewTimer(s.cfg.StepTimeout)
	defer timer.Stop()
	select {
	case ok := <-done:
		if !ok {
			t.panics++
			s.count("supervise.panics", t, 1)
		}
		return ok
	case <-timer.C:
		close(abandoned)
		t.watchdogTrips++
		s.count("supervise.watchdog_trips", t, 1)
		return false
	}
}

// save checkpoints a boundary snapshot to the tenant's store, if any.
// A failed save (injected fsync fault, full disk) is counted and
// tolerated: the previous durable generation stands and the in-memory
// copy still powers in-process restarts.
func (s *Supervisor) save(t *tenant, snap *core.CampaignSnapshot) {
	if t.ckpt == nil {
		return
	}
	payload, err := snap.Encode()
	if err != nil {
		return
	}
	if _, err := t.ckpt.Save(payload); err != nil {
		s.count("supervise.checkpoint_errors", t, 1)
		return
	}
	t.checkpoints++
	s.count("supervise.checkpoints", t, 1)
}

func (s *Supervisor) count(name string, t *tenant, n int64) {
	s.cfg.Telemetry.AddL(t.label, name, n)
}
