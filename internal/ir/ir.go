// Package ir defines the intermediate representation that the
// failure-sketching pipeline analyzes and executes.
//
// The IR is deliberately shaped like LLVM IR before mem2run promotion:
// every named variable (global or local) lives in memory and is accessed
// through explicit Load/Store instructions, while temporaries live in
// per-frame virtual registers. That shape is what makes the paper's
// algorithms transcribe directly:
//
//   - the backward slicer (Algorithm 1) walks operands of loads, stores,
//     calls and branches;
//   - Intel PT start/stop placement reasons about basic blocks,
//     predecessors, dominators and postdominators;
//   - hardware watchpoints watch the addresses computed by FieldAddr /
//     IndexAddr / GlobalAddr instructions.
//
// Each instruction records the source position of the statement it was
// generated from; failure sketches are rendered by mapping slice
// instructions back to source lines.
package ir

import (
	"fmt"
	"strings"

	"repro/internal/lang/sema"
	"repro/internal/lang/token"
)

// Op enumerates instruction opcodes.
type Op int

// Instruction opcodes.
const (
	OpMov        Op = iota // Dst = A
	OpLocalAddr            // Dst = &frame.slots[Slot]
	OpGlobalAddr           // Dst = &globals[Global]
	OpStrAddr              // Dst = &stringpool[Str]
	OpLoad                 // Dst = *(A) ; Size bytes
	OpStore                // *(A) = B  ; Size bytes
	OpFieldAddr            // Dst = A + Offset (struct field address)
	OpIndexAddr            // Dst = A + B*ElemSize (array element address)
	OpBin                  // Dst = A <BinOp> B
	OpNot                  // Dst = !A
	OpNeg                  // Dst = -A
	OpCall                 // Dst = Callee(Args...) ; user function
	OpCallB                // Dst = builtin(Args...)
	OpBr                   // if A != 0 goto Then else goto Else
	OpJmp                  // goto Then
	OpRet                  // return A (A may be Nil for void)
)

var opNames = [...]string{
	OpMov: "mov", OpLocalAddr: "localaddr", OpGlobalAddr: "globaladdr",
	OpStrAddr: "straddr", OpLoad: "load", OpStore: "store",
	OpFieldAddr: "fieldaddr", OpIndexAddr: "indexaddr", OpBin: "bin",
	OpNot: "not", OpNeg: "neg", OpCall: "call", OpCallB: "callb",
	OpBr: "br", OpJmp: "jmp", OpRet: "ret",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// ValKind discriminates operand kinds.
type ValKind int

// Operand kinds.
const (
	ValNil     ValKind = iota // absent operand
	ValConst                  // integer constant
	ValReg                    // virtual register (per-frame)
	ValFuncRef                // function reference (spawn target)
)

// Value is an instruction operand.
type Value struct {
	Kind ValKind
	Int  int64  // for ValConst
	Reg  int    // for ValReg
	Func string // for ValFuncRef
}

// Nil is the absent operand.
var Nil = Value{Kind: ValNil}

// ConstInt returns a constant operand.
func ConstInt(v int64) Value { return Value{Kind: ValConst, Int: v} }

// Reg returns a register operand.
func Reg(r int) Value { return Value{Kind: ValReg, Reg: r} }

// FuncRef returns a function-reference operand.
func FuncRef(name string) Value { return Value{Kind: ValFuncRef, Func: name} }

// IsNil reports whether the operand is absent.
func (v Value) IsNil() bool { return v.Kind == ValNil }

// String renders the operand.
func (v Value) String() string {
	switch v.Kind {
	case ValNil:
		return "_"
	case ValConst:
		return fmt.Sprintf("%d", v.Int)
	case ValReg:
		return fmt.Sprintf("r%d", v.Reg)
	case ValFuncRef:
		return "@" + v.Func
	default:
		return "?"
	}
}

// Instr is a single IR instruction.
//
// ID is unique across the whole program and is assigned by
// Program.Finalize; IDs increase in (function, block, index) order, so
// they provide a stable total order over the program text — the order the
// flow-sensitive slicer walks backward through.
type Instr struct {
	ID  int
	Op  Op
	Dst int // destination register, -1 if none

	A, B Value

	Slot    int        // OpLocalAddr: frame slot index
	Global  int        // OpGlobalAddr: global index
	Str     int        // OpStrAddr: string pool index
	Size    int64      // OpLoad/OpStore: access size in bytes (8 or 1)
	Offset  int64      // OpFieldAddr: byte offset
	ElemSz  int64      // OpIndexAddr: element size in bytes
	BinOp   token.Kind // OpBin
	Callee  string     // OpCall / OpCallB
	Builtin sema.Builtin
	Args    []Value // OpCall / OpCallB

	Then *Block // OpBr taken target, OpJmp target
	Else *Block // OpBr fall-through target

	Pos token.Position // source statement this instruction came from

	Blk *Block // owning block (set by Finalize)
	Idx int    // index within owning block (set by Finalize)
}

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instr) IsTerminator() bool {
	return in.Op == OpBr || in.Op == OpJmp || in.Op == OpRet
}

// IsMemAccess reports whether the instruction reads or writes memory
// through a computed address (the accesses data-flow tracking cares about).
func (in *Instr) IsMemAccess() bool { return in.Op == OpLoad || in.Op == OpStore }

// String renders the instruction.
func (in *Instr) String() string {
	dst := ""
	if in.Dst >= 0 {
		dst = fmt.Sprintf("r%d = ", in.Dst)
	}
	switch in.Op {
	case OpMov:
		return fmt.Sprintf("%smov %s", dst, in.A)
	case OpLocalAddr:
		return fmt.Sprintf("%slocaladdr slot%d", dst, in.Slot)
	case OpGlobalAddr:
		return fmt.Sprintf("%sglobaladdr g%d", dst, in.Global)
	case OpStrAddr:
		return fmt.Sprintf("%sstraddr s%d", dst, in.Str)
	case OpLoad:
		return fmt.Sprintf("%sload [%s] size=%d", dst, in.A, in.Size)
	case OpStore:
		return fmt.Sprintf("store [%s] = %s size=%d", in.A, in.B, in.Size)
	case OpFieldAddr:
		return fmt.Sprintf("%sfieldaddr %s + %d", dst, in.A, in.Offset)
	case OpIndexAddr:
		return fmt.Sprintf("%sindexaddr %s + %s*%d", dst, in.A, in.B, in.ElemSz)
	case OpBin:
		return fmt.Sprintf("%s%s %s, %s", dst, in.BinOp, in.A, in.B)
	case OpNot:
		return fmt.Sprintf("%snot %s", dst, in.A)
	case OpNeg:
		return fmt.Sprintf("%sneg %s", dst, in.A)
	case OpCall, OpCallB:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = a.String()
		}
		return fmt.Sprintf("%s%s %s(%s)", dst, in.Op, in.Callee, strings.Join(args, ", "))
	case OpBr:
		return fmt.Sprintf("br %s, bb%d, bb%d", in.A, in.Then.ID, in.Else.ID)
	case OpJmp:
		return fmt.Sprintf("jmp bb%d", in.Then.ID)
	case OpRet:
		if in.A.IsNil() {
			return "ret"
		}
		return fmt.Sprintf("ret %s", in.A)
	default:
		return fmt.Sprintf("?%s", in.Op)
	}
}

// Block is a basic block: a maximal straight-line instruction sequence
// ending in a terminator.
type Block struct {
	ID     int // index within the function
	Fn     *Func
	Instrs []*Instr
	Preds  []*Block // filled by Finalize
}

// Terminator returns the block's terminating instruction (nil while the
// function is still under construction).
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the block's successor blocks in (taken, fallthrough) order.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch t.Op {
	case OpBr:
		return []*Block{t.Then, t.Else}
	case OpJmp:
		return []*Block{t.Then}
	default:
		return nil
	}
}

// Local is a named stack slot (parameter or local variable).
type Local struct {
	Name string
	Type *sema.Type
}

// Func is a function in IR form.
type Func struct {
	Name    string
	ID      int
	Params  int // the first Params slots hold the arguments
	Locals  []Local
	Blocks  []*Block
	NumRegs int
	Ret     *sema.Type
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NewBlock appends a fresh empty block to the function.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks), Fn: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Global is a global variable.
type Global struct {
	Name  string
	Index int
	Type  *sema.Type
	Init  int64 // initial value (0 for pointers initialized to null)
	// InitStr >= 0 means the global is initialized to the address of
	// string-pool entry InitStr.
	InitStr int
}

// Program is a whole MiniC program in IR form, plus the metadata the
// analyses and the sketch renderer need.
type Program struct {
	Name       string
	Funcs      []*Func
	FuncByName map[string]*Func
	Globals    []*Global
	Strings    []string
	Structs    map[string]*sema.StructInfo

	Source      string
	SourceLines []string

	// Instrs is the program-wide instruction table indexed by Instr.ID.
	Instrs []*Instr

	// SpawnTargets maps each spawn call instruction ID to the statically
	// known thread start routine (the TICFG thread-creation edges).
	SpawnTargets map[int]string
}

// GlobalByName returns the named global, or nil.
func (p *Program) GlobalByName(name string) *Global {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// Finalize assigns program-wide instruction IDs, block back-references and
// predecessor lists. It must be called once after construction and before
// any analysis.
func (p *Program) Finalize() {
	p.Instrs = p.Instrs[:0]
	id := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			b.Preds = nil
		}
	}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i, in := range b.Instrs {
				in.ID = id
				in.Blk = b
				in.Idx = i
				p.Instrs = append(p.Instrs, in)
				id++
			}
		}
		for _, b := range f.Blocks {
			for _, s := range b.Succs() {
				s.Preds = append(s.Preds, b)
			}
		}
	}
}

// SourceLine returns the trimmed source text of a 1-based line number.
func (p *Program) SourceLine(n int) string {
	if n < 1 || n > len(p.SourceLines) {
		return ""
	}
	return strings.TrimSpace(p.SourceLines[n-1])
}

// String renders the whole program's IR as text.
func (p *Program) String() string {
	var b strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&b, "global g%d %s : %s = %d\n", g.Index, g.Name, g.Type, g.Init)
	}
	for i, s := range p.Strings {
		fmt.Fprintf(&b, "string s%d = %q\n", i, s)
	}
	for _, f := range p.Funcs {
		fmt.Fprintf(&b, "\nfunc %s (params=%d, slots=%d, regs=%d):\n", f.Name, f.Params, len(f.Locals), f.NumRegs)
		for _, blk := range f.Blocks {
			fmt.Fprintf(&b, "bb%d:\n", blk.ID)
			for _, in := range blk.Instrs {
				fmt.Fprintf(&b, "  %%%-4d %-40s ; %s\n", in.ID, in.String(), in.Pos)
			}
		}
	}
	return b.String()
}
