package ir

import (
	"fmt"

	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
	"repro/internal/lang/sema"
	"repro/internal/lang/token"
)

// Build lowers a type-checked file to IR. The returned program is
// finalized (instruction IDs and predecessor lists are valid).
func Build(info *sema.Info, source string) (*Program, error) {
	b := &builder{
		info: info,
		prog: &Program{
			Name:         info.File.Name,
			FuncByName:   make(map[string]*Func),
			Structs:      info.Structs,
			Source:       source,
			SourceLines:  splitLines(source),
			SpawnTargets: make(map[int]string),
		},
		strIdx: make(map[string]int),
	}
	if err := b.buildGlobals(); err != nil {
		return nil, err
	}
	for _, fd := range info.File.Funcs {
		fi := info.Funcs[fd.Name]
		f := &Func{Name: fd.Name, ID: len(b.prog.Funcs), Params: len(fd.Params), Ret: fi.Sig.Ret}
		b.prog.Funcs = append(b.prog.Funcs, f)
		b.prog.FuncByName[fd.Name] = f
	}
	for _, fd := range info.File.Funcs {
		if err := b.buildFunc(fd); err != nil {
			return nil, err
		}
	}
	if _, ok := b.prog.FuncByName["main"]; !ok {
		return nil, fmt.Errorf("%s: no main function", info.File.Name)
	}
	b.prog.Finalize()
	for _, in := range b.pendingSpawns {
		b.prog.SpawnTargets[in.ID] = in.Args[0].Func
	}
	return b.prog, nil
}

// Compile parses, checks and lowers MiniC source in one step.
func Compile(filename, source string) (*Program, error) {
	f, err := parser.ParseFile(filename, source)
	if err != nil {
		return nil, err
	}
	info, err := sema.Check(f)
	if err != nil {
		return nil, err
	}
	return Build(info, source)
}

// MustCompile compiles source and panics on error; for the embedded bug
// suite and tests.
func MustCompile(filename, source string) *Program {
	p, err := Compile(filename, source)
	if err != nil {
		panic(fmt.Sprintf("compile %s: %v", filename, err))
	}
	return p
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	lines = append(lines, s[start:])
	return lines
}

type loopCtx struct {
	brk, cont *Block
}

type builder struct {
	info   *sema.Info
	prog   *Program
	strIdx map[string]int

	fn     *Func
	cur    *Block
	scopes []map[string]int // variable name -> frame slot
	loops  []loopCtx

	// pendingSpawns collects spawn call instructions; their program-wide
	// IDs are only known after Finalize, at which point Build records them
	// in Program.SpawnTargets.
	pendingSpawns []*Instr
}

func (b *builder) buildGlobals() error {
	for _, gd := range b.info.File.Globals {
		var gi *sema.VarInfo
		for _, v := range b.info.Globals {
			if v.Name == gd.Name {
				gi = v
				break
			}
		}
		if gi == nil {
			continue
		}
		g := &Global{Name: gd.Name, Index: len(b.prog.Globals), Type: gi.Type, InitStr: -1}
		if gd.Init != nil {
			switch init := gd.Init.(type) {
			case *ast.IntLit:
				g.Init = init.Value
			case *ast.NullLit:
				g.Init = 0
			case *ast.StringLit:
				g.InitStr = b.internString(init.Value)
			case *ast.UnaryExpr:
				lit, ok := init.X.(*ast.IntLit)
				if init.Op == token.MINUS && ok {
					g.Init = -lit.Value
				} else {
					return fmt.Errorf("%s: global initializer must be a constant", gd.Pos())
				}
			default:
				return fmt.Errorf("%s: global initializer must be a constant", gd.Pos())
			}
		}
		b.prog.Globals = append(b.prog.Globals, g)
	}
	return nil
}

func (b *builder) internString(s string) int {
	if i, ok := b.strIdx[s]; ok {
		return i
	}
	i := len(b.prog.Strings)
	b.prog.Strings = append(b.prog.Strings, s)
	b.strIdx[s] = i
	return i
}

func (b *builder) newReg() int {
	r := b.fn.NumRegs
	b.fn.NumRegs++
	return r
}

func (b *builder) emit(in *Instr) *Instr {
	if t := b.cur.Terminator(); t != nil {
		// Dead code after return/break/continue: emit into a fresh
		// unreachable block to keep every block well-formed.
		b.cur = b.fn.NewBlock()
	}
	b.cur.Instrs = append(b.cur.Instrs, in)
	return in
}

func (b *builder) pushScope() { b.scopes = append(b.scopes, make(map[string]int)) }
func (b *builder) popScope()  { b.scopes = b.scopes[:len(b.scopes)-1] }

func (b *builder) declareLocal(name string, t *sema.Type) int {
	slot := len(b.fn.Locals)
	b.fn.Locals = append(b.fn.Locals, Local{Name: name, Type: t})
	b.scopes[len(b.scopes)-1][name] = slot
	return slot
}

// lookupLocal returns the frame slot of name, or -1 if name is not a local.
func (b *builder) lookupLocal(name string) int {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		if s, ok := b.scopes[i][name]; ok {
			return s
		}
	}
	return -1
}

func (b *builder) buildFunc(fd *ast.FuncDecl) error {
	b.fn = b.prog.FuncByName[fd.Name]
	b.fn.Blocks = nil
	b.fn.NumRegs = 0
	b.fn.Locals = nil
	b.cur = b.fn.NewBlock()
	b.scopes = nil
	b.loops = nil
	b.pushScope()
	fi := b.info.Funcs[fd.Name]
	for i, p := range fd.Params {
		b.declareLocal(p.Name, fi.Sig.Params[i])
	}
	if err := b.stmt(fd.Body); err != nil {
		return err
	}
	if b.cur.Terminator() == nil {
		pos := fd.Pos()
		if fi.Sig.Ret.Kind == sema.KindVoid {
			b.emit(&Instr{Op: OpRet, Dst: -1, A: Nil, Pos: pos})
		} else {
			b.emit(&Instr{Op: OpRet, Dst: -1, A: ConstInt(0), Pos: pos})
		}
	}
	b.popScope()
	return nil
}

// ---------------------------------------------------------------- stmts

func (b *builder) stmt(s ast.Stmt) error {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.pushScope()
		for _, st := range s.List {
			if err := b.stmt(st); err != nil {
				return err
			}
		}
		b.popScope()
		return nil
	case *ast.DeclStmt:
		var init Value
		if s.Init != nil {
			v, err := b.expr(s.Init)
			if err != nil {
				return err
			}
			init = v
		}
		t := b.localDeclType(s)
		slot := b.declareLocal(s.Name, t)
		if s.Init != nil {
			addr := b.newReg()
			b.emit(&Instr{Op: OpLocalAddr, Dst: addr, Slot: slot, Pos: s.Pos()})
			b.emit(&Instr{Op: OpStore, Dst: -1, A: Reg(addr), B: init, Size: sema.WordSize, Pos: s.Pos()})
		}
		return nil
	case *ast.ExprStmt:
		_, err := b.expr(s.X)
		return err
	case *ast.AssignStmt:
		addr, size, err := b.addrOf(s.LHS)
		if err != nil {
			return err
		}
		v, err := b.expr(s.RHS)
		if err != nil {
			return err
		}
		b.emit(&Instr{Op: OpStore, Dst: -1, A: addr, B: v, Size: size, Pos: s.Pos()})
		return nil
	case *ast.IfStmt:
		cond, err := b.expr(s.Cond)
		if err != nil {
			return err
		}
		thenBlk := b.fn.NewBlock()
		endBlk := b.fn.NewBlock()
		elseBlk := endBlk
		if s.Else != nil {
			elseBlk = b.fn.NewBlock()
		}
		b.emit(&Instr{Op: OpBr, Dst: -1, A: cond, Then: thenBlk, Else: elseBlk, Pos: s.Cond.Pos()})
		b.cur = thenBlk
		if err := b.stmt(s.Then); err != nil {
			return err
		}
		if b.cur.Terminator() == nil {
			b.emit(&Instr{Op: OpJmp, Dst: -1, Then: endBlk, Pos: s.Pos()})
		}
		if s.Else != nil {
			b.cur = elseBlk
			if err := b.stmt(s.Else); err != nil {
				return err
			}
			if b.cur.Terminator() == nil {
				b.emit(&Instr{Op: OpJmp, Dst: -1, Then: endBlk, Pos: s.Pos()})
			}
		}
		b.cur = endBlk
		return nil
	case *ast.WhileStmt:
		condBlk := b.fn.NewBlock()
		b.emit(&Instr{Op: OpJmp, Dst: -1, Then: condBlk, Pos: s.Pos()})
		b.cur = condBlk
		cond, err := b.expr(s.Cond)
		if err != nil {
			return err
		}
		bodyBlk := b.fn.NewBlock()
		endBlk := b.fn.NewBlock()
		b.emit(&Instr{Op: OpBr, Dst: -1, A: cond, Then: bodyBlk, Else: endBlk, Pos: s.Cond.Pos()})
		b.cur = bodyBlk
		b.loops = append(b.loops, loopCtx{brk: endBlk, cont: condBlk})
		if err := b.stmt(s.Body); err != nil {
			return err
		}
		b.loops = b.loops[:len(b.loops)-1]
		if b.cur.Terminator() == nil {
			b.emit(&Instr{Op: OpJmp, Dst: -1, Then: condBlk, Pos: s.Pos()})
		}
		b.cur = endBlk
		return nil
	case *ast.ForStmt:
		b.pushScope()
		if s.Init != nil {
			if err := b.stmt(s.Init); err != nil {
				return err
			}
		}
		condBlk := b.fn.NewBlock()
		b.emit(&Instr{Op: OpJmp, Dst: -1, Then: condBlk, Pos: s.Pos()})
		b.cur = condBlk
		bodyBlk := b.fn.NewBlock()
		endBlk := b.fn.NewBlock()
		if s.Cond != nil {
			cond, err := b.expr(s.Cond)
			if err != nil {
				return err
			}
			b.emit(&Instr{Op: OpBr, Dst: -1, A: cond, Then: bodyBlk, Else: endBlk, Pos: s.Cond.Pos()})
		} else {
			b.emit(&Instr{Op: OpJmp, Dst: -1, Then: bodyBlk, Pos: s.Pos()})
		}
		contBlk := condBlk
		var postBlk *Block
		if s.Post != nil {
			postBlk = b.fn.NewBlock()
			contBlk = postBlk
		}
		b.cur = bodyBlk
		b.loops = append(b.loops, loopCtx{brk: endBlk, cont: contBlk})
		if err := b.stmt(s.Body); err != nil {
			return err
		}
		b.loops = b.loops[:len(b.loops)-1]
		if b.cur.Terminator() == nil {
			b.emit(&Instr{Op: OpJmp, Dst: -1, Then: contBlk, Pos: s.Pos()})
		}
		if s.Post != nil {
			b.cur = postBlk
			if err := b.stmt(s.Post); err != nil {
				return err
			}
			if b.cur.Terminator() == nil {
				b.emit(&Instr{Op: OpJmp, Dst: -1, Then: condBlk, Pos: s.Pos()})
			}
		}
		b.cur = endBlk
		b.popScope()
		return nil
	case *ast.ReturnStmt:
		if s.X == nil {
			b.emit(&Instr{Op: OpRet, Dst: -1, A: Nil, Pos: s.Pos()})
			return nil
		}
		v, err := b.expr(s.X)
		if err != nil {
			return err
		}
		b.emit(&Instr{Op: OpRet, Dst: -1, A: v, Pos: s.Pos()})
		return nil
	case *ast.BreakStmt:
		b.emit(&Instr{Op: OpJmp, Dst: -1, Then: b.loops[len(b.loops)-1].brk, Pos: s.Pos()})
		return nil
	case *ast.ContinueStmt:
		b.emit(&Instr{Op: OpJmp, Dst: -1, Then: b.loops[len(b.loops)-1].cont, Pos: s.Pos()})
		return nil
	default:
		return fmt.Errorf("%s: unhandled statement %T", s.Pos(), s)
	}
}

func (b *builder) localDeclType(s *ast.DeclStmt) *sema.Type {
	// Re-resolve the declared type from the checker's viewpoint: the
	// checker already validated it, so errors cannot occur here. We map
	// the syntax to a resolved type using the struct table.
	var resolve func(t ast.TypeExpr) *sema.Type
	resolve = func(t ast.TypeExpr) *sema.Type {
		switch t := t.(type) {
		case *ast.NamedType:
			switch t.Name {
			case "string":
				return sema.TypeString
			case "void":
				return sema.TypeVoid
			default:
				return sema.TypeInt
			}
		case *ast.StructRef:
			if si, ok := b.info.Structs[t.Name]; ok {
				return &sema.Type{Kind: sema.KindStruct, Struct: si}
			}
			return sema.TypeInt
		case *ast.PointerType:
			return sema.PointerTo(resolve(t.Elem))
		default:
			return sema.TypeInt
		}
	}
	return resolve(s.Type)
}

// ---------------------------------------------------------------- exprs

// expr lowers an expression and returns the operand holding its value.
func (b *builder) expr(e ast.Expr) (Value, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return ConstInt(e.Value), nil
	case *ast.NullLit:
		return ConstInt(0), nil
	case *ast.StringLit:
		idx := b.internString(e.Value)
		dst := b.newReg()
		b.emit(&Instr{Op: OpStrAddr, Dst: dst, Str: idx, Pos: e.Pos()})
		return Reg(dst), nil
	case *ast.Ident:
		addr, _, err := b.addrOf(e)
		if err != nil {
			return Nil, err
		}
		dst := b.newReg()
		b.emit(&Instr{Op: OpLoad, Dst: dst, A: addr, Size: sema.WordSize, Pos: e.Pos()})
		return Reg(dst), nil
	case *ast.UnaryExpr:
		return b.unary(e)
	case *ast.BinaryExpr:
		return b.binary(e)
	case *ast.CallExpr:
		return b.call(e)
	case *ast.IndexExpr, *ast.FieldExpr:
		addr, size, err := b.addrOf(e)
		if err != nil {
			return Nil, err
		}
		dst := b.newReg()
		b.emit(&Instr{Op: OpLoad, Dst: dst, A: addr, Size: size, Pos: e.Pos()})
		return Reg(dst), nil
	default:
		return Nil, fmt.Errorf("%s: unhandled expression %T", e.Pos(), e)
	}
}

func (b *builder) unary(e *ast.UnaryExpr) (Value, error) {
	switch e.Op {
	case token.MINUS:
		x, err := b.expr(e.X)
		if err != nil {
			return Nil, err
		}
		dst := b.newReg()
		b.emit(&Instr{Op: OpNeg, Dst: dst, A: x, Pos: e.Pos()})
		return Reg(dst), nil
	case token.NOT:
		x, err := b.expr(e.X)
		if err != nil {
			return Nil, err
		}
		dst := b.newReg()
		b.emit(&Instr{Op: OpNot, Dst: dst, A: x, Pos: e.Pos()})
		return Reg(dst), nil
	case token.STAR:
		p, err := b.expr(e.X)
		if err != nil {
			return Nil, err
		}
		dst := b.newReg()
		b.emit(&Instr{Op: OpLoad, Dst: dst, A: p, Size: sema.WordSize, Pos: e.Pos()})
		return Reg(dst), nil
	case token.AMP:
		addr, _, err := b.addrOf(e.X)
		return addr, err
	}
	return Nil, fmt.Errorf("%s: unhandled unary op %s", e.Pos(), e.Op)
}

func (b *builder) binary(e *ast.BinaryExpr) (Value, error) {
	if e.Op == token.LAND || e.Op == token.LOR {
		return b.shortCircuit(e)
	}
	x, err := b.expr(e.X)
	if err != nil {
		return Nil, err
	}
	y, err := b.expr(e.Y)
	if err != nil {
		return Nil, err
	}
	// Pointer arithmetic scales by the element size. All our element
	// types are word-sized except string bytes, and MiniC (like the bug
	// suite) only ever indexes strings via [], so + and - scale by the
	// word size only when the checker typed the operand as a non-string
	// pointer.
	if e.Op == token.PLUS || e.Op == token.MINUS {
		xt := b.info.ExprTypes[e.X]
		yt := b.info.ExprTypes[e.Y]
		if xt != nil && xt.IsPointer() && yt != nil && yt.Kind == sema.KindInt {
			scaled := b.newReg()
			b.emit(&Instr{Op: OpBin, Dst: scaled, BinOp: token.STAR, A: y, B: ConstInt(sema.WordSize), Pos: e.Pos()})
			y = Reg(scaled)
		}
	}
	dst := b.newReg()
	b.emit(&Instr{Op: OpBin, Dst: dst, BinOp: e.Op, A: x, B: y, Pos: e.Pos()})
	return Reg(dst), nil
}

func (b *builder) shortCircuit(e *ast.BinaryExpr) (Value, error) {
	dst := b.newReg()
	first := int64(0)
	if e.Op == token.LOR {
		first = 1
	}
	b.emit(&Instr{Op: OpMov, Dst: dst, A: ConstInt(first), Pos: e.Pos()})
	x, err := b.expr(e.X)
	if err != nil {
		return Nil, err
	}
	evalY := b.fn.NewBlock()
	end := b.fn.NewBlock()
	if e.Op == token.LAND {
		b.emit(&Instr{Op: OpBr, Dst: -1, A: x, Then: evalY, Else: end, Pos: e.Pos()})
	} else {
		b.emit(&Instr{Op: OpBr, Dst: -1, A: x, Then: end, Else: evalY, Pos: e.Pos()})
	}
	b.cur = evalY
	y, err := b.expr(e.Y)
	if err != nil {
		return Nil, err
	}
	norm := b.newReg()
	b.emit(&Instr{Op: OpBin, Dst: norm, BinOp: token.NE, A: y, B: ConstInt(0), Pos: e.Y.Pos()})
	b.emit(&Instr{Op: OpMov, Dst: dst, A: Reg(norm), Pos: e.Y.Pos()})
	b.emit(&Instr{Op: OpJmp, Dst: -1, Then: end, Pos: e.Pos()})
	b.cur = end
	return Reg(dst), nil
}

func (b *builder) call(e *ast.CallExpr) (Value, error) {
	sig := b.info.CallSigs[e]
	if sig == nil {
		return Nil, fmt.Errorf("%s: unresolved call %s", e.Pos(), e.Fun.Name)
	}
	if sig.Builtin == sema.BuiltinSizeof {
		return ConstInt(b.info.ConstValues[e]), nil
	}
	var args []Value
	if sig.Builtin == sema.BuiltinSpawn {
		target := b.info.SpawnTargets[e]
		args = append(args, FuncRef(target))
		v, err := b.expr(e.Args[1])
		if err != nil {
			return Nil, err
		}
		args = append(args, v)
	} else {
		for _, a := range e.Args {
			v, err := b.expr(a)
			if err != nil {
				return Nil, err
			}
			args = append(args, v)
		}
	}
	dst := -1
	if sig.Ret.Kind != sema.KindVoid {
		dst = b.newReg()
	}
	op := OpCall
	if sig.Builtin != sema.BuiltinNone {
		op = OpCallB
	}
	in := b.emit(&Instr{Op: op, Dst: dst, Callee: sig.Name, Builtin: sig.Builtin, Args: args, Pos: e.Pos()})
	if sig.Builtin == sema.BuiltinSpawn {
		// Recorded after Finalize assigns IDs; stash via deferred fixup.
		b.pendingSpawns = append(b.pendingSpawns, in)
	}
	if dst < 0 {
		return Nil, nil
	}
	return Reg(dst), nil
}

// addrOf lowers an lvalue expression to the register holding its address,
// and returns the access size in bytes.
func (b *builder) addrOf(e ast.Expr) (Value, int64, error) {
	switch e := e.(type) {
	case *ast.Ident:
		if slot := b.lookupLocal(e.Name); slot >= 0 {
			dst := b.newReg()
			b.emit(&Instr{Op: OpLocalAddr, Dst: dst, Slot: slot, Pos: e.Pos()})
			return Reg(dst), sema.WordSize, nil
		}
		g := b.prog.GlobalByName(e.Name)
		if g == nil {
			return Nil, 0, fmt.Errorf("%s: unknown variable %s", e.Pos(), e.Name)
		}
		dst := b.newReg()
		b.emit(&Instr{Op: OpGlobalAddr, Dst: dst, Global: g.Index, Pos: e.Pos()})
		return Reg(dst), sema.WordSize, nil
	case *ast.UnaryExpr:
		if e.Op != token.STAR {
			return Nil, 0, fmt.Errorf("%s: not an lvalue", e.Pos())
		}
		p, err := b.expr(e.X)
		return p, sema.WordSize, err
	case *ast.FieldExpr:
		base, err := b.expr(e.X)
		if err != nil {
			return Nil, 0, err
		}
		xt := b.info.ExprTypes[e.X]
		fld := xt.Elem.Struct.Field(e.Name)
		dst := b.newReg()
		b.emit(&Instr{Op: OpFieldAddr, Dst: dst, A: base, Offset: fld.Offset, Pos: e.Pos()})
		return Reg(dst), sema.WordSize, nil
	case *ast.IndexExpr:
		base, err := b.expr(e.X)
		if err != nil {
			return Nil, 0, err
		}
		idx, err := b.expr(e.Index)
		if err != nil {
			return Nil, 0, err
		}
		elemSz := int64(sema.WordSize)
		if xt := b.info.ExprTypes[e.X]; xt != nil && xt.Kind == sema.KindString {
			elemSz = 1
		}
		dst := b.newReg()
		b.emit(&Instr{Op: OpIndexAddr, Dst: dst, A: base, B: idx, ElemSz: elemSz, Pos: e.Pos()})
		return Reg(dst), elemSz, nil
	default:
		return Nil, 0, fmt.Errorf("%s: not an lvalue: %T", e.Pos(), e)
	}
}
