package ir

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lang/token"
)

const pbzipLike = `
struct queue {
	int* mut;
	int size;
};
global struct queue* fifo;
void cons(int arg) {
	struct queue* f = fifo;
	unlock(f->mut);
}
int main() {
	fifo = malloc(sizeof(queue));
	fifo->mut = malloc(8);
	int t = spawn(cons, 0);
	free(fifo->mut);
	fifo->mut = null;
	join(t);
	return 0;
}
`

func TestCompilePbzipLike(t *testing.T) {
	p, err := Compile("pbzip.mc", pbzipLike)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(p.Funcs) != 2 {
		t.Fatalf("funcs: got %d", len(p.Funcs))
	}
	if p.FuncByName["main"] == nil || p.FuncByName["cons"] == nil {
		t.Fatal("missing functions")
	}
	if len(p.Globals) != 1 || p.Globals[0].Name != "fifo" {
		t.Fatalf("globals: %+v", p.Globals)
	}
	if len(p.SpawnTargets) != 1 {
		t.Fatalf("spawn targets: %v", p.SpawnTargets)
	}
	for id, target := range p.SpawnTargets {
		if target != "cons" {
			t.Errorf("spawn target = %s", target)
		}
		if p.Instrs[id].Builtin != 0 && p.Instrs[id].Callee != "spawn" {
			t.Errorf("spawn target instr: %s", p.Instrs[id])
		}
	}
}

func TestEveryBlockHasTerminator(t *testing.T) {
	srcs := []string{
		pbzipLike,
		`int main() { if (1) { return 1; } else { return 2; } }`,
		`int main() { while (1) { break; } return 0; }`,
		`int main() { for (int i = 0; i < 3; i++) { if (i == 1) { continue; } print(i); } return 0; }`,
		`int main() { return 0; print(1); }`, // dead code after return
		`void main() { }`,
	}
	for _, src := range srcs {
		p, err := Compile("t.mc", src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		for _, f := range p.Funcs {
			for _, b := range f.Blocks {
				if b.Terminator() == nil {
					t.Errorf("source %q: %s bb%d lacks a terminator", src, f.Name, b.ID)
				}
				for i, in := range b.Instrs {
					if in.IsTerminator() && i != len(b.Instrs)-1 {
						t.Errorf("source %q: %s bb%d has terminator mid-block", src, f.Name, b.ID)
					}
				}
			}
		}
	}
}

func TestInstrIDsDenseAndOrdered(t *testing.T) {
	p := MustCompile("t.mc", pbzipLike)
	for i, in := range p.Instrs {
		if in.ID != i {
			t.Fatalf("instr %d has ID %d", i, in.ID)
		}
		if in.Blk == nil || in.Blk.Instrs[in.Idx] != in {
			t.Fatalf("instr %d has wrong back-reference", i)
		}
	}
}

func TestPredsMatchSuccs(t *testing.T) {
	p := MustCompile("t.mc", `
int main() {
	int s = 0;
	for (int i = 0; i < 10; i++) {
		if (i % 2 == 0 && i > 2) { s = s + i; }
	}
	return s;
}`)
	for _, f := range p.Funcs {
		// succ->pred consistency
		type edge struct{ from, to int }
		fwd := make(map[edge]bool)
		for _, b := range f.Blocks {
			for _, s := range b.Succs() {
				fwd[edge{b.ID, s.ID}] = true
			}
		}
		count := 0
		for _, b := range f.Blocks {
			for _, pr := range b.Preds {
				if !fwd[edge{pr.ID, b.ID}] {
					t.Errorf("pred edge bb%d->bb%d not in successor sets", pr.ID, b.ID)
				}
				count++
			}
		}
		if count != len(fwd) {
			// Preds may contain duplicates only if a Br has identical arms,
			// which the builder never produces.
			t.Errorf("edge count mismatch: %d preds vs %d succ edges", count, len(fwd))
		}
	}
}

func TestPointerArithmeticScaling(t *testing.T) {
	p := MustCompile("t.mc", `
int main() {
	int* p = malloc(32);
	int* q = p + 3;
	return q - p;
}`)
	// Expect a multiply by 8 feeding the + for q = p + 3.
	var sawScale bool
	for _, in := range p.Instrs {
		if in.Op == OpBin && in.BinOp == token.STAR && in.B.Kind == ValConst && in.B.Int == 8 {
			sawScale = true
		}
	}
	if !sawScale {
		t.Errorf("no pointer scaling multiply found:\n%s", p)
	}
}

func TestStringInterning(t *testing.T) {
	p := MustCompile("t.mc", `
int main() {
	prints("abc");
	prints("abc");
	prints("def");
	return 0;
}`)
	if len(p.Strings) != 2 {
		t.Errorf("string pool: %v", p.Strings)
	}
}

func TestShortCircuitBlocks(t *testing.T) {
	p := MustCompile("t.mc", `int main() { int a = 1; int b = 0; if (a && b) { return 1; } return 0; }`)
	f := p.FuncByName["main"]
	if len(f.Blocks) < 4 {
		t.Errorf("short-circuit should create extra blocks, got %d", len(f.Blocks))
	}
	// The && lowering must not unconditionally evaluate b: there must be a
	// branch whose taken/not-taken arms differ before b's load.
	var sawBr bool
	for _, in := range p.Instrs {
		if in.Op == OpBr {
			sawBr = true
		}
	}
	if !sawBr {
		t.Error("no branch emitted for &&")
	}
}

func TestGlobalInitializers(t *testing.T) {
	p := MustCompile("t.mc", `
global int a = 42;
global int b = -7;
global int* p = null;
global string s = "hi";
int main() { return a; }`)
	if p.Globals[0].Init != 42 || p.Globals[1].Init != -7 || p.Globals[2].Init != 0 {
		t.Errorf("global inits: %+v", p.Globals)
	}
	if p.Globals[3].InitStr < 0 || p.Strings[p.Globals[3].InitStr] != "hi" {
		t.Errorf("string init: %+v strings %v", p.Globals[3], p.Strings)
	}
}

func TestNonConstGlobalInitRejected(t *testing.T) {
	_, err := Compile("t.mc", `global int a = 1 + 2; int main() { return a; }`)
	if err == nil || !strings.Contains(err.Error(), "constant") {
		t.Errorf("expected constant-initializer error, got %v", err)
	}
}

func TestMissingMainRejected(t *testing.T) {
	_, err := Compile("t.mc", `int f() { return 1; }`)
	if err == nil || !strings.Contains(err.Error(), "no main") {
		t.Errorf("expected no-main error, got %v", err)
	}
}

func TestStringIndexByteAccess(t *testing.T) {
	p := MustCompile("t.mc", `
int main() {
	string s = "abc";
	int c = s[1];
	return c;
}`)
	var sawByteLoad bool
	for _, in := range p.Instrs {
		if in.Op == OpLoad && in.Size == 1 {
			sawByteLoad = true
		}
		if in.Op == OpIndexAddr && in.ElemSz != 1 {
			t.Errorf("string index elem size: %d", in.ElemSz)
		}
	}
	if !sawByteLoad {
		t.Error("no byte-sized load for string index")
	}
}

func TestFieldAddrOffsets(t *testing.T) {
	p := MustCompile("t.mc", `
struct item { int a; int b; int c; };
int main() {
	struct item* it = malloc(sizeof(item));
	it->c = 5;
	return it->c;
}`)
	offsets := map[int64]bool{}
	for _, in := range p.Instrs {
		if in.Op == OpFieldAddr {
			offsets[in.Offset] = true
		}
	}
	if !offsets[16] {
		t.Errorf("expected field offset 16 for ->c, got %v", offsets)
	}
}

func TestProgramStringRendering(t *testing.T) {
	p := MustCompile("t.mc", pbzipLike)
	out := p.String()
	for _, frag := range []string{"func main", "func cons", "callb spawn", "globaladdr g0", "ret"} {
		if !strings.Contains(out, frag) {
			t.Errorf("IR dump missing %q:\n%s", frag, out)
		}
	}
}

// Property: for arbitrary small expression trees over declared ints, the
// builder produces a program whose every block is well terminated and
// whose register references are in range.
func TestBuilderWellFormedProperty(t *testing.T) {
	exprs := []string{
		"a + b * c", "a && (b || c)", "!(a - b)", "-(a % (b + 1))",
		"a == b", "(a < b) != (b >= c)", "a && b && c", "a || b || c",
	}
	f := func(pick uint8) bool {
		e := exprs[int(pick)%len(exprs)]
		src := "int main() { int a = 1; int b = 2; int c = 3; int r = " + e + "; return r; }"
		p, err := Compile("t.mc", src)
		if err != nil {
			return false
		}
		for _, fn := range p.Funcs {
			for _, b := range fn.Blocks {
				if b.Terminator() == nil {
					return false
				}
				for _, in := range b.Instrs {
					for _, v := range []Value{in.A, in.B} {
						if v.Kind == ValReg && (v.Reg < 0 || v.Reg >= fn.NumRegs) {
							return false
						}
					}
					if in.Dst >= fn.NumRegs {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
