package pt

import (
	"fmt"

	"repro/internal/ir"
)

// Segment is one contiguous traced region of a core's execution: the
// program-wide instruction IDs in execution order between a PGE and the
// matching PGD (or the end of the buffer).
type Segment struct {
	Instrs []int
}

// BranchObs is one conditional-branch outcome recovered from a TNT bit.
type BranchObs struct {
	IP    int
	Taken bool
}

// DataObs is one extended-PT data access (PTW packet): which instruction
// accessed which address with what value, stamped with the TSC.
type DataObs struct {
	IP      int
	Addr    int64
	Val     int64
	Size    int64
	IsWrite bool
	TSC     int64
}

// Decode reconstructs the executed instruction sequence of one core from
// its raw packet buffer, against the program's CFG — the offline side of
// control-flow tracking: packets only say "taken/not-taken/target", and
// the decoder replays the CFG to recover which statements executed.
//
// wrapped indicates the ring buffer overflowed; decoding then starts at
// the first PSB sync point and the lost prefix is silently dropped,
// exactly like a real PT decoder.
func Decode(prog *ir.Program, data []byte, wrapped bool) ([]Segment, error) {
	segs, _, err := DecodeWithBranches(prog, data, wrapped)
	return segs, err
}

// DecodeWithBranches is Decode plus the conditional-branch outcomes
// recovered from the TNT bits, in consumption order. The outcomes are a
// byproduct of CFG replay: they carry strictly more information than the
// flow alone when a trace stops right at a branch (the successor is then
// not part of the flow but the outcome is still known).
func DecodeWithBranches(prog *ir.Program, data []byte, wrapped bool) ([]Segment, []BranchObs, error) {
	evs, err := ParsePackets(data, !wrapped)
	if err != nil {
		return nil, nil, err
	}
	return DecodeEvents(prog, evs)
}

// DecodeEvents reconstructs segments from parsed packet events.
func DecodeEvents(prog *ir.Program, evs []Event) ([]Segment, []BranchObs, error) {
	segs, branches, _, err := DecodeEventsData(prog, evs)
	return segs, branches, err
}

// DecodeEventsData is DecodeEvents plus the extended-PT data accesses.
func DecodeEventsData(prog *ir.Program, evs []Event) ([]Segment, []BranchObs, []DataObs, error) {
	d := &decoder{prog: prog, evs: evs}
	segs, err := d.run()
	return segs, d.branches, d.data, err
}

// DecodeFull decodes a raw buffer into segments, branch outcomes, and
// extended-PT data accesses.
func DecodeFull(prog *ir.Program, data []byte, wrapped bool) ([]Segment, []BranchObs, []DataObs, error) {
	decodeCalls.Add(1)
	decodedBytes.Add(int64(len(data)))
	evs, err := ParsePackets(data, !wrapped)
	if err != nil {
		decodeErrors.Add(1)
		return nil, nil, nil, err
	}
	segs, branches, dobs, err := DecodeEventsData(prog, evs)
	if err != nil {
		decodeErrors.Add(1)
	}
	return segs, branches, dobs, err
}

type decoder struct {
	prog *ir.Program
	evs  []Event
	pos  int // next event index

	bits []bool // TNT bits available for consumption
	segs []Segment
	cur  *ir.Instr // nil = tracing off / waiting for PGE
	seg  []int

	emitted  int // total instructions emitted, for the runaway guard
	branches []BranchObs
	data     []DataObs
}

// maxDecodedInstrs bounds decoder output: a traced unconditional-jump
// loop produces no packets, so without a bound the CFG replay would spin
// forever. Real decoders are bounded by trace-buffer contents; we bound
// by emitted instructions.
const maxDecodedInstrs = 50_000_000

// next returns the next event, or nil.
func (d *decoder) peek() *Event {
	// Coalesce: TNT bits are pulled eagerly into d.bits by advanceEvents.
	if d.pos >= len(d.evs) {
		return nil
	}
	return &d.evs[d.pos]
}

func (d *decoder) run() ([]Segment, error) {
	for {
		// Pull events until we can walk.
		ev := d.peek()
		if ev == nil {
			d.closeSegment()
			return d.segs, nil
		}
		switch ev.Kind {
		case EvPSB:
			d.pos++
		case EvPGD:
			d.pos++
			d.closeSegment()
		case EvPGE:
			d.pos++
			in, err := d.instrAt(ev.IP)
			if err != nil {
				return d.segs, err
			}
			if d.cur == nil {
				d.cur = in
				if err := d.walk(); err != nil {
					return d.segs, err
				}
			}
			// If already walking (periodic re-anchor PGE), the anchor is
			// redundant and skipped.
		case EvTNT:
			d.pos++
			d.bits = append(d.bits, ev.Bits...)
			if err := d.walk(); err != nil {
				return d.segs, err
			}
		case EvPTW:
			d.pos++
			d.data = append(d.data, DataObs{
				IP: ev.IP, Addr: ev.Addr, Val: ev.Val, Size: ev.Size,
				IsWrite: ev.IsWrite, TSC: ev.TSC,
			})
		case EvFUP:
			// Precise stop position: the walker may have over-run past
			// the stop point along a straight line; truncate the segment
			// just after the last occurrence of the FUP IP.
			d.pos++
			if d.cur != nil || len(d.seg) > 0 {
				for i := len(d.seg) - 1; i >= 0; i-- {
					if d.seg[i] == ev.IP {
						d.seg = d.seg[:i+1]
						break
					}
				}
				d.cur = nil
			}
		case EvTIP:
			// Consumed inside walk; if we see one here with no walker
			// position, the prefix was lost (post-wrap): skip it.
			if d.cur == nil {
				d.pos++
			} else {
				before := d.pos
				if err := d.walk(); err != nil {
					return d.segs, err
				}
				if d.pos == before && d.cur != nil {
					return d.segs, fmt.Errorf("pt: unexpected TIP at event %d (walker stalled at a branch)", d.pos)
				}
			}
		}
	}
}

func (d *decoder) instrAt(ip int) (*ir.Instr, error) {
	if ip < 0 || ip >= len(d.prog.Instrs) {
		return nil, fmt.Errorf("pt: PGE/TIP target %d out of range", ip)
	}
	return d.prog.Instrs[ip], nil
}

func (d *decoder) closeSegment() {
	if len(d.seg) > 0 {
		d.segs = append(d.segs, Segment{Instrs: d.seg})
	}
	d.seg = nil
	d.cur = nil
	d.bits = nil
}

// walk replays straight-line control flow from d.cur, consuming TNT bits
// at conditional branches and TIP targets at calls/returns, until it runs
// out of packet material.
func (d *decoder) walk() error {
	for d.cur != nil {
		in := d.cur
		d.seg = append(d.seg, in.ID)
		d.emitted++
		if d.emitted > maxDecodedInstrs {
			return fmt.Errorf("pt: decoder runaway after %d instructions (untraceable unconditional loop?)", d.emitted)
		}
		switch in.Op {
		case ir.OpBr:
			if len(d.bits) == 0 {
				// Need more TNT material; if the next event is a TNT we
				// could continue, but run() will re-enter walk after
				// pulling it. Rewind the emission of this instruction so
				// it is not recorded twice.
				d.seg = d.seg[:len(d.seg)-1]
				if ev := d.peek(); ev != nil && ev.Kind == EvTNT {
					d.bits = append(d.bits, ev.Bits...)
					d.pos++
					continue
				}
				return d.stall()
			}
			taken := d.bits[0]
			d.bits = d.bits[1:]
			d.branches = append(d.branches, BranchObs{IP: in.ID, Taken: taken})
			if taken {
				d.cur = in.Then.Instrs[0]
			} else {
				d.cur = in.Else.Instrs[0]
			}
		case ir.OpJmp:
			d.cur = in.Then.Instrs[0]
		case ir.OpCall, ir.OpRet:
			ev := d.peek()
			if ev == nil || ev.Kind != EvTIP {
				// A ret that leaves the traced world (thread exit) or a
				// region cut short: the segment ends here.
				d.cur = nil
				return nil
			}
			d.pos++
			target, err := d.instrAt(ev.IP)
			if err != nil {
				return err
			}
			d.cur = target
		default:
			// Straight-line: next instruction in the block. Every block
			// ends in a terminator, so Idx+1 is always in range for
			// non-terminators.
			d.cur = in.Blk.Instrs[in.Idx+1]
		}
	}
	return nil
}

// stall pauses the walker mid-block waiting for more events; run() will
// re-enter walk. The walker position is preserved in d.cur.
func (d *decoder) stall() error { return nil }
