package pt

import (
	"testing"
	"testing/quick"
)

func TestZigzagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{0, -1, 1, -1 << 62, 1 << 62} {
		if unzigzag(zigzag(v)) != v {
			t.Errorf("zigzag(%d) broken", v)
		}
	}
}

// Property: PTW packets round-trip arbitrary data accesses.
func TestPTWRoundTripProperty(t *testing.T) {
	f := func(ip uint16, addr uint32, val int64, isWrite, byteSized bool, tsc uint32) bool {
		size := int64(8)
		if byteSized {
			size = 1
		}
		buf := encodePTW(nil, int(ip), int64(addr), val, size, isWrite, int64(tsc))
		evs, err := ParsePackets(buf, true)
		if err != nil || len(evs) != 1 {
			return false
		}
		e := evs[0]
		return e.Kind == EvPTW && e.IP == int(ip) && e.Addr == int64(addr) &&
			e.Val == val && e.Size == size && e.IsWrite == isWrite && e.TSC == int64(tsc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDataPacketsInterleaveWithControlFlow(t *testing.T) {
	tr := NewTracer(Config{}, nil)
	tr.Enable(0, 10)
	tr.Branch(0, 10, true)
	tr.Data(0, 11, 0x2000, -5, 8, true, 100)
	tr.Branch(0, 12, false)
	tr.Disable(0, 12)
	buf, wrapped := tr.CoreBytes(0)
	if wrapped {
		t.Fatal("unexpected wrap")
	}
	evs, err := ParsePackets(buf, true)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []EventKind
	for _, e := range evs {
		kinds = append(kinds, e.Kind)
	}
	// PGE, TNT(true), PTW, TNT(false), FUP, PGD — the Data call flushes
	// pending TNT bits first so per-core order is preserved.
	want := []EventKind{EvPGE, EvTNT, EvPTW, EvTNT, EvFUP, EvPGD}
	if len(kinds) != len(want) {
		t.Fatalf("events: %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d: got %v, want %v", i, kinds[i], want[i])
		}
	}
	if evs[2].Val != -5 || !evs[2].IsWrite || evs[2].TSC != 100 {
		t.Errorf("PTW payload: %+v", evs[2])
	}
}

func TestDataIgnoredWhileDisabled(t *testing.T) {
	tr := NewTracer(Config{}, nil)
	tr.Data(0, 1, 0x1000, 7, 8, false, 5)
	buf, _ := tr.CoreBytes(0)
	if len(buf) != 0 {
		t.Errorf("data recorded while tracing off: %d bytes", len(buf))
	}
}

func TestDecodeFullSeparatesStreams(t *testing.T) {
	tr := NewTracer(Config{}, nil)
	tr.Enable(0, 0)
	tr.Data(0, 3, 0x1000, 1, 8, true, 1)
	tr.Data(0, 4, 0x1008, 2, 8, false, 2)
	tr.Disable(0, 4)
	buf, wrapped := tr.CoreBytes(0)
	evs, err := ParsePackets(buf, !wrapped)
	if err != nil {
		t.Fatal(err)
	}
	nptw := 0
	for _, e := range evs {
		if e.Kind == EvPTW {
			nptw++
		}
	}
	if nptw != 2 {
		t.Fatalf("PTW events: %d", nptw)
	}
}
