package pt

import (
	"testing"

	"repro/internal/ir"
)

// salvageProg produces a long, branchy trace so that a small SyncEvery
// yields many PSB sync points to resynchronize at.
const salvageProg = `
int main() {
	int s = 0;
	for (int i = 0; i < 2000; i++) {
		if (i % 3 == 0) { s = s + 1; } else { s = s - 1; }
	}
	return s;
}`

// psbOffsets returns the offsets of every PSB magic in data.
func psbOffsets(data []byte) []int {
	var offs []int
	for i := 0; i+len(psbMagic) <= len(data); i++ {
		if matchPSB(data[i:]) {
			offs = append(offs, i)
		}
	}
	return offs
}

func flatten(segs []Segment) []int {
	var all []int
	for _, s := range segs {
		all = append(all, s.Instrs...)
	}
	return all
}

// TestSalvageDecodeTable drives SalvageDecode through the fault shapes
// the fleet produces: ring-buffer wrap, a corrupted PSB sync point,
// corruption in a packet body, and a buffer with no surviving sync
// point at all.
func TestSalvageDecodeTable(t *testing.T) {
	prog := ir.MustCompile("s.mc", salvageProg)

	smashPSB := func(data []byte, which int) []byte {
		out := append([]byte(nil), data...)
		offs := psbOffsets(out)
		if which >= len(offs) {
			t.Fatalf("only %d PSBs, wanted to smash #%d", len(offs), which)
		}
		for k := 0; k < len(psbMagic); k++ {
			out[offs[which]+k] = 0xEE // not a packet opcode: parser must error
		}
		return out
	}

	cases := []struct {
		name string
		cfg  Config
		// mutate damages the raw trace; nil leaves it clean.
		mutate func([]byte) []byte

		wantRecovered bool
		// wantFullMatch asserts salvage recovers exactly what a clean
		// DecodeFull of the unmutated buffer yields.
		wantFullMatch bool
		wantBadChunks bool
		wantResyncs   bool
	}{
		{
			name:          "clean buffer matches full decode",
			cfg:           Config{SyncEvery: 32},
			wantRecovered: true,
			wantFullMatch: true,
		},
		{
			name:          "overflow wrap resyncs at first PSB",
			cfg:           Config{BufBytes: 512, SyncEvery: 32},
			wantRecovered: true,
			wantFullMatch: true,
		},
		{
			name:          "corrupt PSB loses one chunk, rest survives",
			cfg:           Config{SyncEvery: 32},
			mutate:        func(d []byte) []byte { return smashPSB(d, 2) },
			wantRecovered: true,
			wantBadChunks: true,
			wantResyncs:   true,
		},
		{
			name: "corrupt packet body loses a suffix of its chunk",
			cfg:  Config{SyncEvery: 32},
			mutate: func(d []byte) []byte {
				out := append([]byte(nil), d...)
				offs := psbOffsets(out)
				if len(offs) < 3 {
					t.Fatalf("only %d PSBs", len(offs))
				}
				// Damage a byte midway between the 2nd and 3rd PSB.
				out[(offs[1]+offs[2])/2] = 0xEE
				return out
			},
			wantRecovered: true,
			wantBadChunks: true,
			wantResyncs:   true,
		},
		{
			name: "no surviving PSB on a wrapped buffer recovers nothing",
			cfg:  Config{BufBytes: 512, SyncEvery: 32},
			mutate: func(d []byte) []byte {
				out := append([]byte(nil), d...)
				for _, off := range psbOffsets(out) {
					for k := 0; k < len(psbMagic); k++ {
						out[off+k] = 0xEE
					}
				}
				return out
			},
			wantRecovered: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, truth, out := fullTraceRun(t, prog, 1, tc.cfg)
			if out.Failed {
				t.Fatalf("run failed: %v", out.Report)
			}
			data, wrapped := tr.CoreBytes(0)
			if tc.cfg.BufBytes > 0 && !wrapped {
				t.Fatalf("buffer should have wrapped (len=%d)", len(data))
			}
			cleanSegs, _, _, err := DecodeFull(prog, data, wrapped)
			if err != nil {
				t.Fatalf("clean decode: %v", err)
			}
			clean := flatten(cleanSegs)

			mutated := data
			if tc.mutate != nil {
				mutated = tc.mutate(data)
			}
			segs, _, _, rep := SalvageDecode(prog, mutated, wrapped)
			got := flatten(segs)

			if rep.Recovered() != tc.wantRecovered {
				t.Fatalf("Recovered() = %v, want %v (report %+v)", rep.Recovered(), tc.wantRecovered, rep)
			}
			if rep.Instrs != len(got) {
				t.Fatalf("report counts %d instrs, segments hold %d", rep.Instrs, len(got))
			}
			if tc.wantFullMatch {
				if len(got) != len(clean) {
					t.Fatalf("salvage recovered %d instrs, full decode %d", len(got), len(clean))
				}
				for i := range clean {
					if got[i] != clean[i] {
						t.Fatalf("pos %d: salvage %%%d, full %%%d", i, got[i], clean[i])
					}
				}
			}
			if tc.wantBadChunks && rep.BadChunks == 0 {
				t.Fatalf("expected bad chunks, report %+v", rep)
			}
			if tc.wantResyncs && rep.Resyncs == 0 {
				t.Fatalf("expected PSB resyncs, report %+v", rep)
			}
			if tc.wantBadChunks && len(got) >= len(clean) {
				t.Fatalf("corruption lost nothing: salvaged %d of %d", len(got), len(clean))
			}
			// Whatever survives must be real instructions in executed order:
			// every recovered instruction exists, and each decoded segment
			// is a contiguous subsequence of the ground-truth stream.
			for _, id := range got {
				if id < 0 || id >= len(prog.Instrs) {
					t.Fatalf("salvage invented instruction %%%d", id)
				}
			}
			want := truth[0]
			for _, seg := range segs {
				if len(seg.Instrs) == 0 {
					continue
				}
				if !isSubsequenceOf(seg.Instrs, want) {
					t.Fatalf("segment %v is not a contiguous run of the executed stream", seg.Instrs)
				}
			}
		})
	}
}

// isSubsequenceOf reports whether needle appears as a contiguous run
// inside haystack.
func isSubsequenceOf(needle, haystack []int) bool {
	if len(needle) == 0 {
		return true
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j := range needle {
			if haystack[i+j] != needle[j] {
				continue outer
			}
		}
		return true
	}
	return false
}
