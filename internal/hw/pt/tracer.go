package pt

import (
	"sort"
	"sync"

	"repro/internal/cost"
)

// Mode selects the cost model of the tracer.
type Mode int

// Tracer modes.
const (
	// Hardware models Intel PT: near-zero per-instruction cost, small
	// per-packet costs.
	Hardware Mode = iota
	// Software models a dynamic-binary-instrumentation tracer (the
	// paper's PIN-based Intel PT simulator): every retired instruction
	// pays an instrumentation tax and branches are far more expensive.
	Software
)

// Config configures a Tracer.
type Config struct {
	// BufBytes is the per-core ring buffer size; 0 means 2 MB (the size
	// used by the paper's kernel driver).
	BufBytes int
	// Mode selects hardware or software cost accounting.
	Mode Mode
	// SyncEvery emits a PSB sync point (plus a PGE re-anchor at the next
	// event) every N packets; 0 means 256.
	SyncEvery int
}

// DefaultBufBytes is the default per-core trace buffer size.
const DefaultBufBytes = 2 << 20

func (c Config) withDefaults() Config {
	if c.BufBytes == 0 {
		c.BufBytes = DefaultBufBytes
	}
	if c.SyncEvery == 0 {
		c.SyncEvery = 256
	}
	return c
}

// coreTrace is the per-core encoder state.
type coreTrace struct {
	buf      []byte
	wrapped  bool
	enabled  bool
	pending  []bool // TNT bits not yet flushed into a packet
	packets  int
	needSync bool
}

// Tracer is the per-core Intel PT encoder. Each VM thread maps to its own
// core, which gives exactly the paper's trace semantics: per-core order
// only.
type Tracer struct {
	cfg   Config
	cores map[int]*coreTrace
	meter *cost.Meter
}

// NewTracer returns a tracer charging costs to meter (which may be nil).
func NewTracer(cfg Config, meter *cost.Meter) *Tracer {
	return &Tracer{cfg: cfg.withDefaults(), cores: make(map[int]*coreTrace), meter: meter}
}

// bufPool recycles per-core ring buffers across runs. A fleet executes
// thousands of runs, each of which would otherwise grow a fresh trace
// buffer (up to BufBytes) per thread; a released buffer keeps its
// capacity and the next run's encoder appends into it allocation-free.
var bufPool sync.Pool

func (t *Tracer) core(id int) *coreTrace {
	c, ok := t.cores[id]
	if !ok {
		c = &coreTrace{}
		if b, ok := bufPool.Get().([]byte); ok {
			c.buf = b[:0]
		}
		t.cores[id] = c
	}
	return c
}

// Release parks every core's trace buffer on the package pool and
// detaches it from the tracer. Callers must be completely done with the
// run's trace data — including slices returned by CoreBytes — before
// releasing; the endpoint client calls it after the decode phase, when
// the decoded flow has been copied into the RunTrace.
func (t *Tracer) Release() {
	for id, c := range t.cores {
		if cap(c.buf) > 0 {
			bufPool.Put(c.buf[:0])
		}
		delete(t.cores, id)
	}
}

func (t *Tracer) charge(mc int64) {
	if t.meter != nil {
		t.meter.AddExtra(mc)
	}
}

// append writes packet bytes honoring the ring-buffer bound: when the
// buffer would exceed its capacity, the oldest bytes are discarded and
// the core is marked wrapped (the decoder will resync at a PSB).
func (t *Tracer) append(c *coreTrace, pkt []byte) {
	c.buf = append(c.buf, pkt...)
	if over := len(c.buf) - t.cfg.BufBytes; over > 0 {
		c.buf = c.buf[over:]
		c.wrapped = true
	}
	c.packets++
	if c.packets%t.cfg.SyncEvery == 0 {
		c.needSync = true
	}
}

// flushTNT emits any buffered TNT bits as a packet.
func (t *Tracer) flushTNT(c *coreTrace) {
	for len(c.pending) > 0 {
		n := len(c.pending)
		if n > 5 {
			n = 5
		}
		t.append(c, encodeTNT(nil, c.pending[:n]))
		c.pending = c.pending[n:]
	}
}

// maybeSync emits PSB + PGE(ip) if a sync point is due. It must be called
// with the current instruction ip so the decoder can re-anchor.
func (t *Tracer) maybeSync(c *coreTrace, ip int) {
	if !c.needSync {
		return
	}
	c.needSync = false
	t.flushTNT(c)
	t.append(c, encodePSB(nil))
	t.append(c, encodePGE(nil, ip))
}

// Enabled reports whether tracing is on for the core.
func (t *Tracer) Enabled(core int) bool { return t.core(core).enabled }

// Enable turns tracing on for core, anchored at instruction ip.
func (t *Tracer) Enable(core, ip int) {
	c := t.core(core)
	if c.enabled {
		return
	}
	c.enabled = true
	t.append(c, encodePGE(nil, ip))
	t.charge(cost.PTToggleMC)
}

// Disable turns tracing off for core. lastIP is the instruction at which
// tracing stops; it is emitted as a FUP packet so the decoder can
// truncate the reconstructed flow precisely, as real PT does on
// asynchronous trace stops. Pass a negative lastIP to omit the FUP.
func (t *Tracer) Disable(core, lastIP int) {
	c := t.core(core)
	if !c.enabled {
		return
	}
	c.enabled = false
	t.flushTNT(c)
	if lastIP >= 0 {
		t.append(c, encodeFUP(nil, lastIP))
	}
	t.append(c, encodePGD(nil))
	t.charge(cost.PTToggleMC)
}

// Branch records a conditional branch outcome executed at instruction ip.
func (t *Tracer) Branch(core, ip int, taken bool) {
	c := t.core(core)
	if !c.enabled {
		return
	}
	t.maybeSync(c, ip)
	c.pending = append(c.pending, taken)
	if len(c.pending) >= 5 {
		t.flushTNT(c)
	}
	switch t.cfg.Mode {
	case Hardware:
		t.charge(cost.PTBranchMC)
	case Software:
		t.charge(cost.SWPTBranchMC)
	}
}

// TIP records an indirect control transfer (call or return) executed at
// instruction ip with the given target.
func (t *Tracer) TIP(core, ip, target int) {
	c := t.core(core)
	if !c.enabled {
		return
	}
	t.maybeSync(c, ip)
	t.flushTNT(c)
	t.append(c, encodeTIP(nil, target))
	switch t.cfg.Mode {
	case Hardware:
		t.charge(cost.PTTIPMC)
	case Software:
		t.charge(cost.SWPTBranchMC)
	}
}

// Data records a shared-memory access in the extended-PT mode: address,
// value, access kind, and a TSC timestamp that gives cross-core order —
// the hardware extension §6 of the paper wishes for ("if Intel PT also
// captured a trace of the data addresses and values ... we could
// eliminate the need for hardware watchpoints and the complexity of a
// cooperative approach").
func (t *Tracer) Data(core, ip int, addr, val, size int64, isWrite bool, tsc int64) {
	c := t.core(core)
	if !c.enabled {
		return
	}
	t.maybeSync(c, ip)
	t.flushTNT(c)
	t.append(c, encodePTW(nil, ip, addr, val, size, isWrite, tsc))
	t.charge(cost.PTWDataMC)
}

// InstrRetired accounts one retired instruction on core while tracing is
// enabled. In hardware mode this is free; in software mode every
// instruction pays the instrumentation tax.
func (t *Tracer) InstrRetired(core int) {
	c := t.core(core)
	if !c.enabled {
		return
	}
	if t.cfg.Mode == Software {
		t.charge(cost.SWPTInstrMC)
	}
}

// CoreBytes returns the raw trace buffer of a core and whether it wrapped.
// Pending TNT bits are flushed first so the returned buffer is complete.
func (t *Tracer) CoreBytes(core int) (data []byte, wrapped bool) {
	c := t.core(core)
	t.flushTNT(c)
	return c.buf, c.wrapped
}

// Cores returns the IDs of all cores that produced trace data, sorted.
func (t *Tracer) Cores() []int {
	var ids []int
	for id := range t.cores {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// BufferedBytes reports the total bytes currently buffered across cores
// (trace volume, §6's concern for highly concurrent software).
func (t *Tracer) BufferedBytes() int {
	n := 0
	for _, c := range t.cores {
		n += len(c.buf)
	}
	return n
}
