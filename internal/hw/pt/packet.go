// Package pt simulates Intel Processor Trace at packet level.
//
// The simulator reproduces the properties of the real facility that the
// Gist design depends on (§3.2.2, §6):
//
//   - control flow is recorded as a highly compressed packet stream:
//     conditional branch outcomes as TNT bits (several per byte), indirect
//     transfer targets (calls, returns) as TIP packets;
//   - traces are per core and only partially ordered across cores —
//     no cross-thread order and no data values, which is why Gist needs
//     hardware watchpoints for data flow;
//   - tracing can be turned on (PGE) and off (PGD) around regions of
//     interest, at a modest toggle cost;
//   - packets accumulate in a bounded ring buffer (2 MB by default, the
//     size the paper's kernel driver uses); on overflow the oldest
//     packets are lost and the decoder resynchronizes at the next PSB
//     sync point.
//
// Instruction "IPs" are program-wide IR instruction IDs.
package pt

import (
	"encoding/binary"
	"fmt"
)

// Packet type bytes. PSB uses a 4-byte magic so a decoder can resync by
// scanning for it after ring-buffer overwrite, like real PT's long PSB
// pattern.
const (
	pktPGE = 0x02 // + uvarint ip : trace enabled at ip
	pktPGD = 0x03 //              : trace disabled
	pktTNT = 0x04 // + 1 byte: low 3 bits = count n (1..5), bits 3..2+n = outcomes
	pktTIP = 0x05 // + uvarint target ip : indirect transfer target
	pktFUP = 0x06 // + uvarint ip : flow update (precise IP at async trace stop)
	// pktPTW is the extended-PT data packet of the §6 "what if PT also
	// carried data" extension (the shape Intel later shipped as
	// PTWRITE+FUP, plus a TSC for cross-core ordering): flags byte, then
	// uvarint ip, address, zigzag value, and TSC.
	pktPTW  = 0x07
	psbByte = 0x01
)

// psbMagic is the PSB synchronization pattern.
var psbMagic = []byte{psbByte, 0xC3, 0x5A, 0x99}

// EventKind discriminates decoded packet events.
type EventKind int

// Decoded event kinds.
const (
	EvPSB EventKind = iota
	EvPGE
	EvPGD
	EvTNT
	EvTIP
	EvFUP
	EvPTW
)

// Event is one decoded packet.
type Event struct {
	Kind EventKind
	IP   int    // EvPGE, EvTIP, EvPTW
	Bits []bool // EvTNT, up to 5 branch outcomes in execution order

	// EvPTW payload: one data access with its TSC timestamp.
	Addr    int64
	Val     int64
	Size    int64
	IsWrite bool
	TSC     int64
}

// appendUvarint appends v in unsigned varint encoding.
func appendUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

// encodePSB appends a PSB sync packet.
func encodePSB(dst []byte) []byte { return append(dst, psbMagic...) }

// encodePGE appends a trace-enable packet at ip.
func encodePGE(dst []byte, ip int) []byte {
	dst = append(dst, pktPGE)
	return appendUvarint(dst, uint64(ip))
}

// encodePGD appends a trace-disable packet.
func encodePGD(dst []byte) []byte { return append(dst, pktPGD) }

// encodeTNT appends a TNT packet carrying bits (1..6 outcomes).
func encodeTNT(dst []byte, bits []bool) []byte {
	if len(bits) == 0 || len(bits) > 5 {
		panic(fmt.Sprintf("pt: TNT packet with %d bits", len(bits)))
	}
	b := byte(len(bits))
	for i, bit := range bits {
		if bit {
			b |= 1 << (3 + i)
		}
	}
	return append(dst, pktTNT, b)
}

// encodeTIP appends a TIP packet with the transfer target.
func encodeTIP(dst []byte, target int) []byte {
	dst = append(dst, pktTIP)
	return appendUvarint(dst, uint64(target))
}

// encodeFUP appends a flow-update packet carrying the precise last IP.
func encodeFUP(dst []byte, ip int) []byte {
	dst = append(dst, pktFUP)
	return appendUvarint(dst, uint64(ip))
}

// zigzag encodes a signed value for uvarint transport.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// encodePTW appends an extended-PT data packet.
func encodePTW(dst []byte, ip int, addr, val, size int64, isWrite bool, tsc int64) []byte {
	flags := byte(0)
	if isWrite {
		flags |= 1
	}
	if size == 1 {
		flags |= 2
	}
	dst = append(dst, pktPTW, flags)
	dst = appendUvarint(dst, uint64(ip))
	dst = appendUvarint(dst, uint64(addr))
	dst = appendUvarint(dst, zigzag(val))
	return appendUvarint(dst, uint64(tsc))
}

// ParsePackets decodes a raw packet byte stream into events. If synced is
// false (the buffer wrapped and its head may be mid-packet), parsing
// starts at the first PSB magic; everything before it is lost.
func ParsePackets(data []byte, synced bool) ([]Event, error) {
	i := 0
	if !synced {
		i = indexOfPSB(data)
		if i < 0 {
			return nil, nil // no sync point survived: whole buffer lost
		}
	}
	var evs []Event
	for i < len(data) {
		switch data[i] {
		case psbByte:
			if i+len(psbMagic) > len(data) || !matchPSB(data[i:]) {
				return evs, fmt.Errorf("pt: corrupt PSB at offset %d", i)
			}
			evs = append(evs, Event{Kind: EvPSB})
			i += len(psbMagic)
		case pktPGE:
			ip, n := binary.Uvarint(data[i+1:])
			if n <= 0 {
				return evs, fmt.Errorf("pt: truncated PGE at offset %d", i)
			}
			evs = append(evs, Event{Kind: EvPGE, IP: int(ip)})
			i += 1 + n
		case pktPGD:
			evs = append(evs, Event{Kind: EvPGD})
			i++
		case pktTNT:
			if i+1 >= len(data) {
				return evs, fmt.Errorf("pt: truncated TNT at offset %d", i)
			}
			b := data[i+1]
			n := int(b & 0x7)
			if n == 0 || n > 5 {
				return evs, fmt.Errorf("pt: bad TNT count %d at offset %d", n, i)
			}
			bits := make([]bool, n)
			for k := 0; k < n; k++ {
				bits[k] = b&(1<<(3+k)) != 0
			}
			evs = append(evs, Event{Kind: EvTNT, Bits: bits})
			i += 2
		case pktTIP:
			ip, n := binary.Uvarint(data[i+1:])
			if n <= 0 {
				return evs, fmt.Errorf("pt: truncated TIP at offset %d", i)
			}
			evs = append(evs, Event{Kind: EvTIP, IP: int(ip)})
			i += 1 + n
		case pktFUP:
			ip, n := binary.Uvarint(data[i+1:])
			if n <= 0 {
				return evs, fmt.Errorf("pt: truncated FUP at offset %d", i)
			}
			evs = append(evs, Event{Kind: EvFUP, IP: int(ip)})
			i += 1 + n
		case pktPTW:
			if i+1 >= len(data) {
				return evs, fmt.Errorf("pt: truncated PTW at offset %d", i)
			}
			flags := data[i+1]
			j := i + 2
			var fields [4]uint64
			for k := 0; k < 4; k++ {
				v, n := binary.Uvarint(data[j:])
				if n <= 0 {
					return evs, fmt.Errorf("pt: truncated PTW payload at offset %d", j)
				}
				fields[k] = v
				j += n
			}
			size := int64(8)
			if flags&2 != 0 {
				size = 1
			}
			evs = append(evs, Event{
				Kind: EvPTW, IP: int(fields[0]), Addr: int64(fields[1]),
				Val: unzigzag(fields[2]), Size: size,
				IsWrite: flags&1 != 0, TSC: int64(fields[3]),
			})
			i = j
		default:
			return evs, fmt.Errorf("pt: unknown packet byte %#x at offset %d", data[i], i)
		}
	}
	return evs, nil
}

func matchPSB(data []byte) bool {
	for i, m := range psbMagic {
		if data[i] != m {
			return false
		}
	}
	return true
}

// indexOfPSB returns the offset of the first full PSB magic, or -1.
func indexOfPSB(data []byte) int {
	for i := 0; i+len(psbMagic) <= len(data); i++ {
		if matchPSB(data[i:]) {
			return i
		}
	}
	return -1
}
