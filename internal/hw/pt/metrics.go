package pt

import "sync/atomic"

// Package-level decode metrics, surfaced by the telemetry layer. The
// counters are atomics updated once per decode call (never per packet),
// so the hot decode loop is untouched; they observe only — nothing in
// the decoder reads them back, so determinism is unaffected.
var (
	decodeCalls    atomic.Int64
	decodeErrors   atomic.Int64
	decodedBytes   atomic.Int64
	salvageCalls   atomic.Int64
	salvagedChunks atomic.Int64
	salvagedInstrs atomic.Int64
)

// Metrics is a snapshot of the package's decode counters.
type Metrics struct {
	// DecodeCalls counts full-trace decode attempts (one per traced
	// core per run); DecodeErrors counts the attempts that failed and
	// fell through to salvage.
	DecodeCalls, DecodeErrors int64
	// DecodedBytes is the total raw trace bytes handed to the decoder.
	DecodedBytes int64
	// SalvageCalls counts salvage passes; SalvagedChunks and
	// SalvagedInstrs count what those passes recovered.
	SalvageCalls, SalvagedChunks, SalvagedInstrs int64
}

// Snapshot returns the current decode counters.
func Snapshot() Metrics {
	return Metrics{
		DecodeCalls:    decodeCalls.Load(),
		DecodeErrors:   decodeErrors.Load(),
		DecodedBytes:   decodedBytes.Load(),
		SalvageCalls:   salvageCalls.Load(),
		SalvagedChunks: salvagedChunks.Load(),
		SalvagedInstrs: salvagedInstrs.Load(),
	}
}

// ResetMetrics zeroes the decode counters (benchmark/metrics-window
// hygiene, like analysis.Reset).
func ResetMetrics() {
	decodeCalls.Store(0)
	decodeErrors.Store(0)
	decodedBytes.Store(0)
	salvageCalls.Store(0)
	salvagedChunks.Store(0)
	salvagedInstrs.Store(0)
}
