package pt

import (
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/ir"
	"repro/internal/vm"
)

// fullTraceRun executes prog under full PT tracing (every thread traced
// from its first instruction) and returns the tracer plus the ground-truth
// per-thread instruction streams observed directly from the interpreter.
func fullTraceRun(t *testing.T, prog *ir.Program, seed int64, cfg Config) (*Tracer, map[int][]int, *vm.Outcome) {
	t.Helper()
	meter := &cost.Meter{}
	tr := NewTracer(cfg, meter)
	truth := make(map[int][]int)
	last := make(map[int]int)
	hooks := vm.Hooks{
		OnStep: func(th *vm.Thread, in *ir.Instr, clock int64) {
			if !tr.Enabled(th.ID) {
				tr.Enable(th.ID, in.ID)
			}
			tr.InstrRetired(th.ID)
			truth[th.ID] = append(truth[th.ID], in.ID)
			last[th.ID] = in.ID
		},
		OnBranch: func(th *vm.Thread, in *ir.Instr, taken bool, clock int64) {
			tr.Branch(th.ID, in.ID, taken)
		},
		OnIndirect: func(th *vm.Thread, in *ir.Instr, target *ir.Instr, clock int64) {
			if in.Op == ir.OpCall || in.Op == ir.OpRet {
				tr.TIP(th.ID, in.ID, target.ID)
			}
		},
	}
	out := vm.Run(prog, vm.Config{Seed: seed, PreemptMean: 3, Hooks: hooks})
	for core := range truth {
		tr.Disable(core, last[core])
	}
	return tr, truth, out
}

func decodeAll(t *testing.T, prog *ir.Program, tr *Tracer, core int) []int {
	t.Helper()
	data, wrapped := tr.CoreBytes(core)
	segs, err := Decode(prog, data, wrapped)
	if err != nil {
		t.Fatalf("decode core %d: %v", core, err)
	}
	var all []int
	for _, s := range segs {
		all = append(all, s.Instrs...)
	}
	return all
}

const workload = `
global int acc = 0;
int helper(int x) {
	if (x % 2 == 0) { return x / 2; }
	return 3 * x + 1;
}
void worker(int n) {
	for (int i = 0; i < n; i++) { acc = acc + helper(i); }
}
int main() {
	int t1 = spawn(worker, 6);
	int s = 0;
	for (int i = 0; i < 5; i++) {
		if (i == 2) { s = s + helper(i); } else { s = s - 1; }
	}
	join(t1);
	return s + acc;
}`

func TestDecodeMatchesExecutionExactly(t *testing.T) {
	prog := ir.MustCompile("w.mc", workload)
	for seed := int64(0); seed < 25; seed++ {
		tr, truth, out := fullTraceRun(t, prog, seed, Config{})
		if out.Failed {
			t.Fatalf("seed %d: %v", seed, out.Report)
		}
		for core, want := range truth {
			got := decodeAll(t, prog, tr, core)
			if len(got) != len(want) {
				t.Fatalf("seed %d core %d: decoded %d instrs, executed %d", seed, core, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d core %d: instr %d decoded %%%d, executed %%%d", seed, core, i, got[i], want[i])
				}
			}
		}
	}
}

func TestDecodeWithStartStopRegions(t *testing.T) {
	// Trace only while inside helper(): enable on entry instruction,
	// disable at the ret. The decode must reproduce exactly the helper
	// subsequences.
	prog := ir.MustCompile("w.mc", workload)
	helper := prog.FuncByName["helper"]
	entryID := helper.Entry().Instrs[0].ID
	inHelper := func(in *ir.Instr) bool { return in.Blk.Fn == helper }

	tr := NewTracer(Config{}, nil)
	truth := make(map[int][]int)
	hooks := vm.Hooks{
		OnStep: func(th *vm.Thread, in *ir.Instr, clock int64) {
			if in.ID == entryID && !tr.Enabled(th.ID) {
				tr.Enable(th.ID, in.ID)
			}
			if tr.Enabled(th.ID) && inHelper(in) {
				truth[th.ID] = append(truth[th.ID], in.ID)
			}
		},
		OnBranch: func(th *vm.Thread, in *ir.Instr, taken bool, clock int64) {
			tr.Branch(th.ID, in.ID, taken)
		},
		OnIndirect: func(th *vm.Thread, in *ir.Instr, target *ir.Instr, clock int64) {
			if in.Op == ir.OpRet && inHelper(in) {
				// Stop tracing when helper returns: FUP at the ret.
				tr.Disable(th.ID, in.ID)
				return
			}
			if (in.Op == ir.OpCall || in.Op == ir.OpRet) && tr.Enabled(th.ID) {
				tr.TIP(th.ID, in.ID, target.ID)
			}
		},
	}
	out := vm.Run(prog, vm.Config{Seed: 7, PreemptMean: 3, Hooks: hooks})
	if out.Failed {
		t.Fatalf("run failed: %v", out.Report)
	}
	for _, core := range tr.Cores() {
		got := decodeAll(t, prog, tr, core)
		want := truth[core]
		if len(got) != len(want) {
			t.Fatalf("core %d: decoded %d, want %d\n got=%v\nwant=%v", core, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("core %d pos %d: got %%%d want %%%d", core, i, got[i], want[i])
			}
		}
	}
}

func TestRingBufferWrapResyncs(t *testing.T) {
	prog := ir.MustCompile("w.mc", `
int main() {
	int s = 0;
	for (int i = 0; i < 2000; i++) {
		if (i % 3 == 0) { s = s + 1; } else { s = s - 1; }
	}
	return s;
}`)
	tr, truth, out := fullTraceRun(t, prog, 1, Config{BufBytes: 512, SyncEvery: 32})
	if out.Failed {
		t.Fatalf("%v", out.Report)
	}
	data, wrapped := tr.CoreBytes(0)
	if !wrapped {
		t.Fatalf("buffer should have wrapped (len=%d)", len(data))
	}
	if len(data) > 512 {
		t.Fatalf("ring exceeded capacity: %d", len(data))
	}
	segs, err := Decode(prog, data, wrapped)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	var got []int
	for _, s := range segs {
		got = append(got, s.Instrs...)
	}
	if len(got) == 0 {
		t.Fatal("nothing decoded after wrap")
	}
	// What was decoded must be a suffix of the truth.
	want := truth[0]
	if len(got) > len(want) {
		t.Fatalf("decoded more than executed: %d > %d", len(got), len(want))
	}
	suffix := want[len(want)-len(got):]
	for i := range got {
		if got[i] != suffix[i] {
			t.Fatalf("pos %d: got %%%d, want suffix %%%d", i, got[i], suffix[i])
		}
	}
}

func TestTraceIsCompact(t *testing.T) {
	// ~0.5 bits per retired instruction is the paper's figure for PT;
	// our encoding must stay within the same order of magnitude (< 2
	// bits/instr on branch-heavy code).
	prog := ir.MustCompile("w.mc", workload)
	tr, truth, _ := fullTraceRun(t, prog, 3, Config{})
	totalInstrs := 0
	for _, tt := range truth {
		totalInstrs += len(tt)
	}
	bytes := tr.BufferedBytes()
	bitsPerInstr := float64(bytes*8) / float64(totalInstrs)
	if bitsPerInstr > 2.0 {
		t.Errorf("trace too fat: %.2f bits/instr (%d bytes for %d instrs)", bitsPerInstr, bytes, totalInstrs)
	}
}

func TestSoftwareModeCostsMore(t *testing.T) {
	prog := ir.MustCompile("w.mc", workload)
	runMode := func(mode Mode) float64 {
		meter := &cost.Meter{}
		tr := NewTracer(Config{Mode: mode}, meter)
		hooks := vm.Hooks{
			OnStep: func(th *vm.Thread, in *ir.Instr, clock int64) {
				if !tr.Enabled(th.ID) {
					tr.Enable(th.ID, in.ID)
				}
				tr.InstrRetired(th.ID)
				meter.AddInstr(1)
			},
			OnBranch: func(th *vm.Thread, in *ir.Instr, taken bool, clock int64) {
				tr.Branch(th.ID, in.ID, taken)
			},
			OnIndirect: func(th *vm.Thread, in *ir.Instr, target *ir.Instr, clock int64) {
				if in.Op == ir.OpCall || in.Op == ir.OpRet {
					tr.TIP(th.ID, in.ID, target.ID)
				}
			},
		}
		vm.Run(prog, vm.Config{Seed: 5, Hooks: hooks})
		return meter.OverheadPct()
	}
	hw := runMode(Hardware)
	sw := runMode(Software)
	if hw <= 0 || sw <= 0 {
		t.Fatalf("overheads must be positive: hw=%f sw=%f", hw, sw)
	}
	if sw < 20*hw {
		t.Errorf("software tracing should dwarf hardware tracing: hw=%.2f%% sw=%.2f%%", hw, sw)
	}
	if hw > 40 {
		t.Errorf("hardware full-trace overhead out of the paper's ballpark: %.2f%%", hw)
	}
}

// Property: TNT packets round-trip arbitrary branch-outcome sequences.
func TestTNTRoundTripProperty(t *testing.T) {
	f := func(raw []bool) bool {
		var buf []byte
		for i := 0; i < len(raw); i += 5 {
			end := i + 5
			if end > len(raw) {
				end = len(raw)
			}
			buf = encodeTNT(buf, raw[i:end])
		}
		if len(raw) == 0 {
			return true
		}
		evs, err := ParsePackets(buf, true)
		if err != nil {
			return false
		}
		var got []bool
		for _, e := range evs {
			if e.Kind != EvTNT {
				return false
			}
			got = append(got, e.Bits...)
		}
		if len(got) != len(raw) {
			return false
		}
		for i := range raw {
			if got[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the packet parser never panics on arbitrary bytes and either
// errors or returns well-formed events.
func TestParseArbitraryBytes(t *testing.T) {
	f := func(data []byte, synced bool) bool {
		evs, _ := ParsePackets(data, synced)
		for _, e := range evs {
			if e.Kind == EvTNT && (len(e.Bits) == 0 || len(e.Bits) > 5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestVarintPacketsRoundTrip(t *testing.T) {
	f := func(ip uint32) bool {
		buf := encodePGE(nil, int(ip))
		buf = encodeTIP(buf, int(ip)+1)
		buf = encodeFUP(buf, int(ip)+2)
		evs, err := ParsePackets(buf, true)
		if err != nil || len(evs) != 3 {
			return false
		}
		return evs[0].Kind == EvPGE && evs[0].IP == int(ip) &&
			evs[1].Kind == EvTIP && evs[1].IP == int(ip)+1 &&
			evs[2].Kind == EvFUP && evs[2].IP == int(ip)+2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnableDisableIdempotent(t *testing.T) {
	tr := NewTracer(Config{}, nil)
	tr.Enable(0, 5)
	tr.Enable(0, 9) // no-op
	tr.Branch(0, 6, true)
	tr.Disable(0, 6)
	tr.Disable(0, 7) // no-op
	data, wrapped := tr.CoreBytes(0)
	if wrapped {
		t.Fatal("tiny trace should not wrap")
	}
	evs, err := ParsePackets(data, true)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]EventKind, len(evs))
	for i, e := range evs {
		kinds[i] = e.Kind
	}
	want := []EventKind{EvPGE, EvTNT, EvFUP, EvPGD}
	if len(kinds) != len(want) {
		t.Fatalf("events: %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d: got %v want %v", i, kinds[i], want[i])
		}
	}
}
