package pt

import "repro/internal/ir"

// Salvage support: decoding what remains of a damaged trace buffer.
//
// A clean decode (DecodeFull) aborts at the first malformed packet. In a
// production fleet, trace buffers arrive with flipped bytes and torn
// writes, and a single bad byte should not cost the whole buffer: real
// PT decoders restart at the next PSB sync point, exactly as they do
// after ring-buffer overwrite. SalvageDecode does the same — it splits
// the buffer at PSB boundaries, decodes every chunk independently, and
// keeps whatever parses and replays cleanly, so the server can use the
// surviving flow suffixes instead of quarantining the run outright.

// SalvageReport accounts what a salvage decode recovered and lost.
type SalvageReport struct {
	// Chunks is the number of PSB-delimited regions examined.
	Chunks int
	// BadChunks is the number of regions that hit a parse or replay
	// error; their packets after the error point are lost.
	BadChunks int
	// Resyncs is the number of PSB sync points that restarted decoding
	// after an earlier region errored.
	Resyncs int
	// Instrs is the total number of instructions recovered.
	Instrs int
}

// Recovered reports whether anything usable survived.
func (r SalvageReport) Recovered() bool { return r.Instrs > 0 }

// SalvageDecode decodes as much of a possibly corrupt trace buffer as
// possible. Unlike DecodeFull it never fails: each PSB-delimited chunk
// is parsed and CFG-replayed independently, chunks that error keep
// their prefix up to the error, and the rest of the buffer continues at
// the next PSB. wrapped has the same meaning as in DecodeFull: the ring
// buffer overflowed, so the bytes before the first PSB are skipped.
func SalvageDecode(prog *ir.Program, data []byte, wrapped bool) ([]Segment, []BranchObs, []DataObs, SalvageReport) {
	salvageCalls.Add(1)
	var (
		segs     []Segment
		branches []BranchObs
		dobs     []DataObs
		rep      SalvageReport
	)
	defer func() {
		salvagedChunks.Add(int64(rep.Chunks - rep.BadChunks))
		salvagedInstrs.Add(int64(rep.Instrs))
	}()
	start := 0
	if wrapped {
		start = indexOfPSB(data)
		if start < 0 {
			return nil, nil, nil, rep // no sync point survived
		}
	}
	prevBad := false
	for _, chunk := range splitAtPSB(data[start:]) {
		rep.Chunks++
		if prevBad {
			rep.Resyncs++ // this chunk's PSB restarted decoding
		}
		evs, perr := ParsePackets(chunk, true)
		s, b, d, derr := DecodeEventsData(prog, evs)
		prevBad = perr != nil || derr != nil
		if prevBad {
			rep.BadChunks++
		}
		segs = append(segs, s...)
		branches = append(branches, b...)
		dobs = append(dobs, d...)
		for _, sg := range s {
			rep.Instrs += len(sg.Instrs)
		}
	}
	return segs, branches, dobs, rep
}

// splitAtPSB cuts data into regions, each running up to (but not
// including) the next PSB magic: the still-synced head of the buffer
// first, then one region per PSB. Regions after the first start with
// their PSB so the parser sees a self-synchronizing chunk.
func splitAtPSB(data []byte) [][]byte {
	var chunks [][]byte
	pos := 0
	for pos < len(data) {
		// Find the next PSB strictly after the current region start
		// (skipping over a PSB the region itself begins with).
		searchFrom := pos + 1
		if matchPSB0(data[pos:]) {
			searchFrom = pos + len(psbMagic)
		}
		rel := indexOfPSB(data[searchFrom:])
		if rel < 0 {
			chunks = append(chunks, data[pos:])
			break
		}
		end := searchFrom + rel
		chunks = append(chunks, data[pos:end])
		pos = end
	}
	return chunks
}

// matchPSB0 reports whether data begins with the PSB magic.
func matchPSB0(data []byte) bool {
	return len(data) >= len(psbMagic) && matchPSB(data)
}
