// Package watch simulates x86 hardware watchpoints (debug registers
// DR0–DR3 programmed through ptrace, as the paper's prototype does).
//
// The unit reproduces the properties Gist's data-flow tracking (§3.2.3)
// depends on:
//
//   - only four addresses can be watched at a time — the scarcity that
//     forces adaptive slice tracking and the cooperative partitioning of
//     watched addresses across production runs;
//   - a trap delivers the accessing instruction, the address, the value,
//     whether it was a write, and a global clock — giving the total order
//     of accesses to watched shared variables across threads, which
//     per-core Intel PT traces cannot provide;
//   - setting/clearing a watchpoint and each trap have ptrace-like costs.
package watch

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cost"
)

// NumRegisters is the number of hardware watchpoint slots (x86 has 4).
const NumRegisters = 4

// Kind selects which accesses trap.
type Kind int

// Watchpoint kinds (x86 DR7 supports write-only and read/write breaks).
const (
	KindWrite Kind = iota
	KindReadWrite
)

// Watchpoint is one armed debug register.
type Watchpoint struct {
	Addr int64
	Size int64 // watched byte range (x86 allows 1/2/4/8)
	Kind Kind
}

// Trap is one delivered watchpoint hit. Traps are recorded in global
// clock order, giving a total order over all watched accesses.
type Trap struct {
	Slot    int
	Addr    int64 // address actually accessed
	Val     int64 // value read or written
	Size    int64
	IsWrite bool
	InstrID int // accessing instruction
	Thread  int
	Clock   int64
}

// String renders a trap for diagnostics.
func (t Trap) String() string {
	rw := "R"
	if t.IsWrite {
		rw = "W"
	}
	return fmt.Sprintf("%s T%d %%%d addr=%#x val=%d @%d", rw, t.Thread, t.InstrID, t.Addr, t.Val, t.Clock)
}

// Unit is the watchpoint unit for one run.
type Unit struct {
	slots [NumRegisters]*Watchpoint
	traps []Trap
	meter *cost.Meter
}

// trapPool recycles trap-log backing arrays across runs; a data-flow
// heavy run can log thousands of traps, and the fleet executes runs by
// the thousand.
var trapPool sync.Pool

// NewUnit returns a unit charging costs to meter (which may be nil).
// The trap log starts on a pooled backing array when one is available.
func NewUnit(meter *cost.Meter) *Unit {
	u := &Unit{meter: meter}
	if t, ok := trapPool.Get().([]Trap); ok {
		u.traps = t[:0]
	}
	return u
}

// Release parks the trap log's backing array for reuse by a later
// NewUnit. Callers must be done with the unit; Traps returns private
// copies, so previously returned logs stay valid.
func (u *Unit) Release() {
	if cap(u.traps) > 0 {
		trapPool.Put(u.traps[:0])
	}
	u.traps = nil
}

func (u *Unit) charge(mc int64) {
	if u.meter != nil {
		u.meter.AddExtra(mc)
	}
}

// ErrNoFreeSlot is returned when all debug registers are armed.
var ErrNoFreeSlot = fmt.Errorf("watch: all %d hardware watchpoints in use", NumRegisters)

// Set arms slot i. Arming costs a ptrace round trip.
func (u *Unit) Set(i int, wp Watchpoint) error {
	if i < 0 || i >= NumRegisters {
		return fmt.Errorf("watch: slot %d out of range", i)
	}
	u.slots[i] = &wp
	u.charge(cost.WatchSetupMC)
	armsTotal.Add(1)
	return nil
}

// SetAny arms the first free slot and returns its index.
func (u *Unit) SetAny(wp Watchpoint) (int, error) {
	for i, s := range u.slots {
		if s == nil {
			return i, u.Set(i, wp)
		}
	}
	return -1, ErrNoFreeSlot
}

// Clear disarms slot i.
func (u *Unit) Clear(i int) {
	if i >= 0 && i < NumRegisters && u.slots[i] != nil {
		u.slots[i] = nil
		u.charge(cost.WatchSetupMC)
	}
}

// FreeSlots reports how many debug registers are unarmed.
func (u *Unit) FreeSlots() int {
	n := 0
	for _, s := range u.slots {
		if s == nil {
			n++
		}
	}
	return n
}

// Watched reports whether any armed watchpoint overlaps [addr, addr+size).
func (u *Unit) Watched(addr, size int64) bool {
	return u.slotFor(addr, size, true) >= 0
}

func (u *Unit) slotFor(addr, size int64, anyKind bool) int {
	for i, s := range u.slots {
		if s == nil {
			continue
		}
		if addr < s.Addr+s.Size && s.Addr < addr+size {
			if anyKind || s.Kind == KindReadWrite {
				return i
			}
		}
	}
	return -1
}

// CheckAccess is called by the client runtime on every data memory access
// (wired to the VM's OnLoad/OnStore hooks). If the access overlaps an
// armed watchpoint of a matching kind, a trap is recorded and true is
// returned.
func (u *Unit) CheckAccess(thread, instrID int, addr, size, val int64, isWrite bool, clock int64) bool {
	var slot int
	if isWrite {
		slot = u.slotFor(addr, size, true)
	} else {
		slot = u.slotFor(addr, size, false) // reads trap only on KindReadWrite
	}
	if slot < 0 {
		return false
	}
	u.traps = append(u.traps, Trap{
		Slot: slot, Addr: addr, Val: val, Size: size,
		IsWrite: isWrite, InstrID: instrID, Thread: thread, Clock: clock,
	})
	u.charge(cost.WatchTrapMC)
	trapsTotal.Add(1)
	return true
}

// Traps returns all delivered traps in clock order. The returned slice
// is an exact-size private copy, so it stays valid after Release parks
// the unit's internal log for reuse.
func (u *Unit) Traps() []Trap {
	if len(u.traps) == 0 {
		return nil
	}
	out := make([]Trap, len(u.traps))
	copy(out, u.traps)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Clock < out[j].Clock })
	return out
}
