package watch

import "testing"

// TestRegisterPressureMisses: a run that needs more watchpoints than
// the register file reports misses instead of silently dropping
// accesses — the pressure signal that drives cooperative partitioning.
func TestRegisterPressureMisses(t *testing.T) {
	u := NewUnit(nil)
	misses := 0
	for i := 0; i < 8; i++ {
		wp := Watchpoint{Addr: int64(0x1000 + 16*i), Size: 8, Kind: KindReadWrite}
		if _, err := u.SetAny(wp); err != nil {
			if err != ErrNoFreeSlot {
				t.Fatalf("unexpected error: %v", err)
			}
			misses++
		}
	}
	if misses != 8-NumRegisters {
		t.Fatalf("got %d misses arming 8 watchpoints on %d registers", misses, NumRegisters)
	}
	if u.FreeSlots() != 0 {
		t.Fatalf("registers should be exhausted, %d free", u.FreeSlots())
	}
}

// TestCooperativePartitioningConvergesUnderTrapLoss: eight watched
// addresses split across two endpoint groups of NumRegisters each. Even
// when the delivery path drops every other trap from one endpoint and
// duplicates a record on the other, the union of surviving traps still
// covers every address — partitioned coverage converges because each
// address is observed repeatedly per run.
func TestCooperativePartitioningConvergesUnderTrapLoss(t *testing.T) {
	var addrs []int64
	for i := 0; i < 2*NumRegisters; i++ {
		addrs = append(addrs, int64(0x2000+16*i))
	}
	groups := [][]int64{addrs[:NumRegisters], addrs[NumRegisters:]}
	inGroup := func(g int, a int64) bool {
		for _, x := range groups[g] {
			if x == a {
				return true
			}
		}
		return false
	}

	seen := make(map[int64]bool)
	clock := int64(0)
	for g := range groups {
		u := NewUnit(nil)
		for _, a := range groups[g] {
			if _, err := u.SetAny(Watchpoint{Addr: a, Size: 8, Kind: KindReadWrite}); err != nil {
				t.Fatalf("group %d: arming its own partition must not miss: %v", g, err)
			}
		}
		// The run touches every shared address twice; only this group's
		// partition traps.
		for pass := 0; pass < 2; pass++ {
			for i, a := range addrs {
				clock++
				trapped := u.CheckAccess(i%2, 100+i, a, 8, int64(i), true, clock)
				if trapped != inGroup(g, a) {
					t.Fatalf("group %d addr %#x: trapped=%v, want %v", g, a, trapped, inGroup(g, a))
				}
			}
		}
		traps := u.Traps()
		if len(traps) != 2*NumRegisters {
			t.Fatalf("group %d: %d traps, want %d", g, len(traps), 2*NumRegisters)
		}
		// Degrade the log in transit: group 0 loses every third record,
		// group 1 sees one record duplicated.
		var degraded []Trap
		if g == 0 {
			for i, tr := range traps {
				if i%3 != 0 {
					degraded = append(degraded, tr)
				}
			}
		} else {
			degraded = append(degraded, traps...)
			degraded = append(degraded, traps[0])
		}
		for _, tr := range degraded {
			if !inGroup(g, tr.Addr) {
				t.Fatalf("group %d trapped outside its partition: %v", g, tr)
			}
			seen[tr.Addr] = true
		}
	}
	for _, a := range addrs {
		if !seen[a] {
			t.Errorf("address %#x lost: cooperative coverage did not converge", a)
		}
	}
}

// TestTrapsStayClockOrderedWithDuplicates: duplicated deliveries and
// equal clocks must not break the total order Traps() promises.
func TestTrapsStayClockOrderedWithDuplicates(t *testing.T) {
	u := NewUnit(nil)
	if _, err := u.SetAny(Watchpoint{Addr: 0x3000, Size: 8, Kind: KindReadWrite}); err != nil {
		t.Fatal(err)
	}
	// Out-of-order delivery with a duplicated clock.
	u.CheckAccess(0, 1, 0x3000, 8, 10, true, 5)
	u.CheckAccess(1, 2, 0x3000, 8, 20, false, 3)
	u.CheckAccess(0, 3, 0x3000, 8, 30, true, 3)
	traps := u.Traps()
	if len(traps) != 3 {
		t.Fatalf("%d traps, want 3", len(traps))
	}
	for i := 1; i < len(traps); i++ {
		if traps[i].Clock < traps[i-1].Clock {
			t.Fatalf("traps out of clock order: %v", traps)
		}
	}
	// Stable sort: the two clock-3 traps keep delivery order.
	if traps[0].InstrID != 2 || traps[1].InstrID != 3 {
		t.Errorf("equal-clock traps reordered: %v", traps)
	}
}
