package watch

import (
	"testing"
	"testing/quick"

	"repro/internal/cost"
)

func TestSlotManagement(t *testing.T) {
	u := NewUnit(nil)
	if u.FreeSlots() != NumRegisters {
		t.Fatalf("fresh unit: %d free", u.FreeSlots())
	}
	for i := 0; i < NumRegisters; i++ {
		slot, err := u.SetAny(Watchpoint{Addr: int64(0x1000 + i*8), Size: 8, Kind: KindReadWrite})
		if err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		if slot != i {
			t.Errorf("slot: got %d, want %d", slot, i)
		}
	}
	if _, err := u.SetAny(Watchpoint{Addr: 0x2000, Size: 8}); err != ErrNoFreeSlot {
		t.Fatalf("fifth watchpoint: got %v, want ErrNoFreeSlot", err)
	}
	u.Clear(2)
	if u.FreeSlots() != 1 {
		t.Fatalf("after clear: %d free", u.FreeSlots())
	}
	if slot, err := u.SetAny(Watchpoint{Addr: 0x3000, Size: 8}); err != nil || slot != 2 {
		t.Fatalf("reuse: slot=%d err=%v", slot, err)
	}
	if err := u.Set(99, Watchpoint{}); err == nil {
		t.Error("out-of-range slot accepted")
	}
}

func TestTrapSemantics(t *testing.T) {
	u := NewUnit(nil)
	if _, err := u.SetAny(Watchpoint{Addr: 0x1000, Size: 8, Kind: KindReadWrite}); err != nil {
		t.Fatal(err)
	}
	if _, err := u.SetAny(Watchpoint{Addr: 0x2000, Size: 8, Kind: KindWrite}); err != nil {
		t.Fatal(err)
	}

	// Read+write on the RW watchpoint both trap.
	if !u.CheckAccess(0, 10, 0x1000, 8, 42, false, 1) {
		t.Error("read on RW watchpoint should trap")
	}
	if !u.CheckAccess(1, 11, 0x1004, 1, 7, true, 2) {
		t.Error("overlapping write should trap")
	}
	// Reads on write-only watchpoints do not trap; writes do.
	if u.CheckAccess(0, 12, 0x2000, 8, 0, false, 3) {
		t.Error("read on write-only watchpoint must not trap")
	}
	if !u.CheckAccess(0, 13, 0x2000, 8, 5, true, 4) {
		t.Error("write on write-only watchpoint should trap")
	}
	// Unwatched address.
	if u.CheckAccess(0, 14, 0x5000, 8, 0, true, 5) {
		t.Error("unwatched address trapped")
	}

	traps := u.Traps()
	if len(traps) != 3 {
		t.Fatalf("traps: %v", traps)
	}
	for i := 1; i < len(traps); i++ {
		if traps[i].Clock < traps[i-1].Clock {
			t.Error("traps not in clock order")
		}
	}
	if traps[0].Val != 42 || traps[0].InstrID != 10 || traps[0].Thread != 0 || traps[0].IsWrite {
		t.Errorf("trap 0: %+v", traps[0])
	}
}

func TestCostAccounting(t *testing.T) {
	m := &cost.Meter{}
	m.AddInstr(1000)
	u := NewUnit(m)
	slot, _ := u.SetAny(Watchpoint{Addr: 0x1000, Size: 8, Kind: KindReadWrite})
	u.CheckAccess(0, 1, 0x1000, 8, 0, true, 1)
	u.Clear(slot)
	wantMC := int64(cost.WatchSetupMC + cost.WatchTrapMC + cost.WatchSetupMC)
	if got := m.ExtraCycles(); got != float64(wantMC)/1000 {
		t.Errorf("extra cycles: got %v, want %v", got, float64(wantMC)/1000)
	}
}

// Property: an access traps iff it overlaps an armed watchpoint with a
// matching kind, for arbitrary ranges.
func TestOverlapProperty(t *testing.T) {
	f := func(wpOff, accOff uint8, wpSize, accSize uint8, isWrite, rw bool) bool {
		u := NewUnit(nil)
		ws := int64(wpSize%8) + 1
		as := int64(accSize%8) + 1
		wa := 0x1000 + int64(wpOff)
		aa := 0x1000 + int64(accOff)
		kind := KindWrite
		if rw {
			kind = KindReadWrite
		}
		if _, err := u.SetAny(Watchpoint{Addr: wa, Size: ws, Kind: kind}); err != nil {
			return false
		}
		overlaps := aa < wa+ws && wa < aa+as
		kindOK := isWrite || rw
		want := overlaps && kindOK
		got := u.CheckAccess(0, 1, aa, as, 0, isWrite, 1)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
