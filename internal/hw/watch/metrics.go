package watch

import "sync/atomic"

// Package-level watchpoint metrics for the telemetry layer. Arms are
// rare (one per location class per run); traps are bounded by accesses
// to watched addresses, so a single atomic add per delivered trap is
// noise next to the simulated ptrace cost already charged. The unit
// never reads these back — observation only.
var (
	armsTotal  atomic.Int64
	trapsTotal atomic.Int64
)

// Metrics is a snapshot of the package's watchpoint counters.
type Metrics struct {
	// Arms counts debug-register arming operations across all units.
	Arms int64
	// Traps counts delivered watchpoint hits across all units.
	Traps int64
}

// Snapshot returns the current watchpoint counters.
func Snapshot() Metrics {
	return Metrics{Arms: armsTotal.Load(), Traps: trapsTotal.Load()}
}

// ResetMetrics zeroes the counters (metrics-window hygiene).
func ResetMetrics() {
	armsTotal.Store(0)
	trapsTotal.Store(0)
}
