package service_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/service"
	"repro/internal/service/agent"
)

// inProcessSketch computes the reference sketch bytes exactly as
// `gist -bug X -json` renders them.
var (
	sketchMu    sync.Mutex
	sketchCache = map[string][]byte{}
)

func inProcessSketch(t *testing.T, bug string) []byte {
	t.Helper()
	sketchMu.Lock()
	defer sketchMu.Unlock()
	if data, ok := sketchCache[bug]; ok {
		return data
	}
	b := bugs.ByName(bug)
	if b == nil {
		t.Fatalf("unknown bug %q", bug)
	}
	res, err := core.Run(b.GistConfig())
	if err != nil {
		t.Fatalf("in-process run of %s: %v", bug, err)
	}
	data, err := res.Sketch.MarshalIndentJSON()
	if err != nil {
		t.Fatalf("marshal in-process sketch: %v", err)
	}
	sketchCache[bug] = data
	return data
}

// serviceSketch runs one diagnosis through the full wire: loopback
// server, a small agent fleet, transport faults at the given rate.
func serviceSketch(t *testing.T, bug string, rate float64, nAgents int) ([]byte, service.Counters) {
	t.Helper()
	srv := service.NewServer(service.Options{
		LeaseTTL:        2 * time.Second,
		PollTimeout:     200 * time.Millisecond,
		MaxTaskAttempts: 10,
	})
	defer srv.Close()
	transport := service.LoopbackTransport{Handler: srv.Handler()}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < nAgents; i++ {
		a, err := agent.New(agent.Config{
			Server:    "http://gist",
			Tenant:    "acme",
			ID:        fmt.Sprintf("ep-%d", i),
			Poll:      150 * time.Millisecond,
			Faults:    faults.Transport(int64(1000+i), rate),
			Transport: transport,
			Sleep:     func(time.Duration) {},
		})
		if err != nil {
			t.Fatalf("agent: %v", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.Run(ctx); err != nil {
				t.Errorf("agent run: %v", err)
			}
		}()
	}
	defer wg.Wait()
	defer cancel()

	cli := service.NewClient(service.ClientOptions{
		BaseURL:   "http://gist",
		Tenant:    "acme",
		Actor:     "cli",
		Faults:    faults.Transport(77, rate),
		Transport: transport,
		Sleep:     func(time.Duration) {},
	})
	var sub service.SubmitResponse
	if err := cli.Call(ctx, service.PathSubmit, &service.SubmitRequest{Tenant: "acme", Bug: bug}, &sub); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if !srv.WaitCampaign("acme", bug) {
		t.Fatal("campaign vanished after submit")
	}

	var st service.StatusResponse
	if err := cli.Call(ctx, service.PathStatus, &service.StatusRequest{Tenant: "acme", Bug: bug}, &st); err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.State != service.StateDone {
		t.Fatalf("campaign state = %q (err=%q), want done", st.State, st.Err)
	}
	var sk service.SketchResponse
	if err := cli.Call(ctx, service.PathSketch, &service.SketchRequest{Tenant: "acme", Bug: bug}, &sk); err != nil {
		t.Fatalf("sketch: %v", err)
	}
	if !sk.Ready || len(sk.Sketch) == 0 {
		t.Fatal("campaign done but sketch not ready")
	}
	counters, _ := srv.Snapshot()
	return sk.Sketch, counters
}

// TestServiceSketchesByteIdentical is the tentpole proof: a diagnosis
// routed through the wire — JSON codec, checksums, long-polls, retries,
// and (at 10%) injected transport drops/delays/duplicates/corruptions/
// disconnects — produces byte-for-byte the sketch of an in-process run.
func TestServiceSketchesByteIdentical(t *testing.T) {
	suite := []string{"pbzip2", "curl", "apache-1"}
	if testing.Short() {
		suite = suite[:1]
	}
	for _, bug := range suite {
		bug := bug
		t.Run(bug, func(t *testing.T) {
			want := inProcessSketch(t, bug)
			for _, rate := range []float64{0, 0.10} {
				got, counters := serviceSketch(t, bug, rate, 3)
				if !bytes.Equal(got, want) {
					t.Errorf("rate %.2f: service sketch differs from in-process run\nservice:\n%s\nin-process:\n%s",
						rate, got, want)
				}
				if counters.LostTasks != 0 {
					t.Errorf("rate %.2f: %d tasks lost; transport faults must never lose work", rate, counters.LostTasks)
				}
			}
		})
	}
}

// TestAgentDeathReassignsRuns kills an agent mid-campaign (it takes a
// task and vanishes without a heartbeat) and checks the lease reaper
// hands its run to a healthy agent — same sketch bytes, nothing lost.
func TestAgentDeathReassignsRuns(t *testing.T) {
	const bug = "pbzip2"
	want := inProcessSketch(t, bug)

	srv := service.NewServer(service.Options{
		LeaseTTL:        300 * time.Millisecond,
		PollTimeout:     100 * time.Millisecond,
		MaxTaskAttempts: 10,
	})
	defer srv.Close()
	transport := service.LoopbackTransport{Handler: srv.Handler()}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cli := service.NewClient(service.ClientOptions{
		BaseURL: "http://gist", Tenant: "acme", Actor: "cli",
		Transport: transport, Sleep: func(time.Duration) {},
	})
	var sub service.SubmitResponse
	if err := cli.Call(ctx, service.PathSubmit, &service.SubmitRequest{Tenant: "acme", Bug: bug}, &sub); err != nil {
		t.Fatalf("submit: %v", err)
	}

	// The doomed agent registers, grabs one task, and dies without
	// uploading or heartbeating.
	doomed := service.NewClient(service.ClientOptions{
		BaseURL: "http://gist", Tenant: "acme", Actor: "doomed",
		Transport: transport, Sleep: func(time.Duration) {},
	})
	if err := doomed.Call(ctx, service.PathRegister, &service.RegisterRequest{Tenant: "acme", Agent: "doomed"}, nil); err != nil {
		t.Fatalf("doomed register: %v", err)
	}
	grabbed := false
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		var poll service.PollResponse
		if err := doomed.Call(ctx, service.PathPoll, &service.PollRequest{Tenant: "acme", Agent: "doomed", WaitMs: 100}, &poll); err != nil {
			t.Fatalf("doomed poll: %v", err)
		}
		if poll.Task != nil {
			grabbed = true
			break
		}
	}
	if !grabbed {
		t.Fatal("doomed agent never received a task")
	}

	// Now the healthy agent joins and finishes the campaign, including
	// the run the dead agent took with it.
	a, err := agent.New(agent.Config{
		Server: "http://gist", Tenant: "acme", ID: "healthy",
		Poll: 100 * time.Millisecond, Transport: transport, Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatalf("agent: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := a.Run(ctx); err != nil {
			t.Errorf("healthy agent: %v", err)
		}
	}()
	defer wg.Wait()
	defer cancel()

	if !srv.WaitCampaign("acme", bug) {
		t.Fatal("campaign vanished")
	}
	var sk service.SketchResponse
	if err := cli.Call(ctx, service.PathSketch, &service.SketchRequest{Tenant: "acme", Bug: bug}, &sk); err != nil {
		t.Fatalf("sketch: %v", err)
	}
	if !sk.Ready {
		var st service.StatusResponse
		_ = cli.Call(ctx, service.PathStatus, &service.StatusRequest{Tenant: "acme", Bug: bug}, &st)
		t.Fatalf("campaign finished without a sketch: state=%q err=%q", st.State, st.Err)
	}
	if !bytes.Equal(sk.Sketch, want) {
		t.Errorf("sketch after agent death differs from in-process run")
	}
	counters, _ := srv.Snapshot()
	if counters.Reassigned == 0 {
		t.Error("no task was ever reassigned; the doomed agent's lease never expired?")
	}
	if counters.LostTasks != 0 {
		t.Errorf("%d tasks lost; reassignment should have saved them all", counters.LostTasks)
	}
}

// TestFleetVanishesDegradesGracefully submits a campaign with no agents
// at all: every dispatched run times out under NoAgentTimeout and the
// campaign must degrade (low-confidence sketch or clean failure), never
// hang.
func TestFleetVanishesDegradesGracefully(t *testing.T) {
	srv := service.NewServer(service.Options{
		LeaseTTL:        100 * time.Millisecond,
		PollTimeout:     50 * time.Millisecond,
		NoAgentTimeout:  300 * time.Millisecond,
		MaxTaskAttempts: 2,
	})
	defer srv.Close()
	transport := service.LoopbackTransport{Handler: srv.Handler()}
	cli := service.NewClient(service.ClientOptions{
		BaseURL: "http://gist", Tenant: "ghost", Actor: "cli",
		Transport: transport, Sleep: func(time.Duration) {},
	})
	ctx := context.Background()
	if err := cli.Call(ctx, service.PathSubmit, &service.SubmitRequest{Tenant: "ghost", Bug: "pbzip2"}, nil); err != nil {
		t.Fatalf("submit: %v", err)
	}
	done := make(chan struct{})
	go func() {
		srv.WaitCampaign("ghost", "pbzip2")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Minute):
		t.Fatal("campaign with no agents hung instead of degrading")
	}
	var st service.StatusResponse
	if err := cli.Call(ctx, service.PathStatus, &service.StatusRequest{Tenant: "ghost", Bug: "pbzip2"}, &st); err != nil {
		t.Fatalf("status: %v", err)
	}
	switch st.State {
	case service.StateDone:
		if !st.LowConfidence {
			t.Error("campaign finished full-confidence with zero agents — quorum accounting is broken")
		}
	case service.StateFailed:
		// A clean failure is acceptable degradation; a hang is not.
	default:
		t.Fatalf("campaign state = %q after fleet vanished", st.State)
	}
	counters, _ := srv.Snapshot()
	if counters.LostTasks == 0 {
		t.Error("no tasks were written off despite an empty fleet")
	}
}
