package service

import (
	"testing"
	"time"

	"repro/internal/bugs"
	"repro/internal/core"
)

// TestSubmitSignatureDedup is the regression test for the (tenant, bug)
// dedup bug: two distinct failure signatures submitted under one bug
// name used to collapse into one campaign, so the second root cause was
// never diagnosed. With signature-keyed ingestion each signature gets
// its own campaign, while true recurrences still fold.
func TestSubmitSignatureDedup(t *testing.T) {
	b := bugs.ByName("pbzip2")
	if b == nil {
		t.Fatal("pbzip2 not registered")
	}
	reportA, disc, err := core.FirstFailure(b.GistConfig())
	if err != nil {
		t.Fatalf("discover failure: %v", err)
	}

	s := NewServer(Options{LeaseTTL: 100 * time.Millisecond, PollTimeout: 50 * time.Millisecond})
	defer s.Close()

	sub := func(req *SubmitRequest) *SubmitResponse {
		t.Helper()
		resp, err := s.handleSubmit(req)
		if err != nil {
			t.Fatalf("submit %+v: %v", req, err)
		}
		return resp
	}

	r1 := sub(&SubmitRequest{Tenant: "acme", Bug: "pbzip2", Report: reportA, Seed: 1, DiscoveryRuns: disc})
	if r1.Duplicate || r1.Signature != reportA.ID() || r1.Reports != 1 {
		t.Fatalf("first report: %+v", r1)
	}

	// The same failure again: folded, not relaunched.
	r2 := sub(&SubmitRequest{Tenant: "acme", Bug: "pbzip2", Report: reportA, Seed: 2, DiscoveryRuns: disc})
	if !r2.Duplicate || r2.Reports != 2 || r2.Signature != r1.Signature {
		t.Fatalf("recurrence: %+v", r2)
	}

	// A different root cause filed under the same bug name: its blocked
	// partner set differs, so its signature differs, so it must get its
	// own campaign — this is exactly what the old dedup swallowed.
	reportB := *reportA
	reportB.OtherPCs = append(append([]int(nil), reportA.OtherPCs...), reportA.InstrID)
	if reportB.ID() == reportA.ID() {
		t.Fatal("mutated report has the same signature; test is vacuous")
	}
	r3 := sub(&SubmitRequest{Tenant: "acme", Bug: "pbzip2", Report: &reportB, Seed: 3, DiscoveryRuns: disc})
	if r3.Duplicate {
		t.Fatalf("distinct signature treated as duplicate: %+v", r3)
	}
	if r3.Signature != reportB.ID() {
		t.Fatalf("signature = %q, want %q", r3.Signature, reportB.ID())
	}

	// Both campaigns exist and are addressable by signature.
	for _, sig := range []string{reportA.ID(), reportB.ID()} {
		st, err := s.handleStatus(&StatusRequest{Tenant: "acme", Bug: "pbzip2", Signature: sig})
		if err != nil {
			t.Fatalf("status %s: %v", sig, err)
		}
		if st.State == StateUnknown {
			t.Errorf("campaign for signature %s does not exist", sig)
		}
	}

	c, _ := s.Snapshot()
	if c.NovelSignatures != 2 || c.FoldedReports != 1 {
		t.Fatalf("counters: novel=%d folded=%d, want 2/1", c.NovelSignatures, c.FoldedReports)
	}
}

// TestDoneTaskEviction is the regression test for unbounded
// idempotency-key growth: churn 10k completed tasks through a server
// capped at 100 retained keys and check (a) memory stays bounded, (b)
// every task admits exactly once, (c) a live task is never evicted no
// matter how much completed churn surrounds it.
func TestDoneTaskEviction(t *testing.T) {
	const (
		churn  = 10_000
		keyCap = 100
	)
	s := NewServer(Options{MaxDoneTasks: keyCap, DoneTaskTTL: time.Hour})
	defer s.Close()

	// A live task that must survive the whole churn.
	live := enqueueTask(s, "acme", "pbzip2")

	var firstEvicted *task
	for i := 0; i < churn; i++ {
		tk := enqueueTask(s, "acme", "pbzip2")
		if firstEvicted == nil {
			firstEvicted = tk
		}
		resp, err := s.handleUpload(&UploadRequest{Tenant: "acme", Agent: "a", TaskID: tk.id, Trace: &WireTrace{}})
		if err != nil || !resp.Accepted || resp.Duplicate {
			t.Fatalf("upload %d: %+v, %v", i, resp, err)
		}
		// Exactly-once: an immediate retry is a duplicate, not a
		// readmission.
		resp, err = s.handleUpload(&UploadRequest{Tenant: "acme", Agent: "a", TaskID: tk.id, Trace: &WireTrace{}})
		if err != nil || !resp.Duplicate {
			t.Fatalf("retry %d not deduped: %+v, %v", i, resp, err)
		}
		// Evict deterministically instead of waiting on the reaper tick.
		s.mu.Lock()
		s.evictDoneTasks(time.Now())
		s.mu.Unlock()
	}

	s.mu.Lock()
	retainedDone := len(s.doneTasks)
	total := len(s.tasks)
	_, liveRetained := s.tasks[live.id]
	_, firstStillPresent := s.tasks[firstEvicted.id]
	s.mu.Unlock()
	if retainedDone > keyCap {
		t.Errorf("retained %d done keys, cap is %d", retainedDone, keyCap)
	}
	if total > keyCap+1 {
		t.Errorf("task table holds %d entries after churn, want <= cap+1", total)
	}
	if !liveRetained {
		t.Fatal("live task was evicted")
	}
	if firstStillPresent {
		t.Error("oldest churned key survived a full churn cycle")
	}

	// An upload for an evicted key is acknowledged as a duplicate —
	// never readmitted.
	resp, err := s.handleUpload(&UploadRequest{Tenant: "acme", Agent: "a", TaskID: firstEvicted.id, Trace: &WireTrace{}})
	if err != nil || !resp.Duplicate {
		t.Fatalf("evicted-key upload: %+v, %v", resp, err)
	}

	// The live task still admits exactly once after all that churn.
	resp, err = s.handleUpload(&UploadRequest{Tenant: "acme", Agent: "a", TaskID: live.id, Trace: &WireTrace{}})
	if err != nil || !resp.Accepted || resp.Duplicate {
		t.Fatalf("live upload: %+v, %v", resp, err)
	}

	c, _ := s.Snapshot()
	if c.Uploads != churn+1 {
		t.Errorf("Uploads = %d, want %d (exactly-once admission)", c.Uploads, churn+1)
	}
	if c.EvictedTasks == 0 {
		t.Error("no keys were ever evicted")
	}
}

// TestDoneTaskTTLEviction pins the time-based half of the eviction
// policy: keys older than DoneTaskTTL go even when the size cap has
// room.
func TestDoneTaskTTLEviction(t *testing.T) {
	s := NewServer(Options{DoneTaskTTL: 10 * time.Millisecond})
	defer s.Close()
	tk := enqueueTask(s, "acme", "pbzip2")
	if _, err := s.handleUpload(&UploadRequest{Tenant: "acme", Agent: "a", TaskID: tk.id, Trace: &WireTrace{}}); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.evictDoneTasks(time.Now().Add(time.Second)) // well past the TTL
	_, present := s.tasks[tk.id]
	s.mu.Unlock()
	if present {
		t.Fatal("expired key not evicted")
	}
}
