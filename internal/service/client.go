package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
)

// ClientOptions tunes one wire client (an agent or a submitter).
type ClientOptions struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8443".
	BaseURL string
	// Tenant and Actor identify the caller; they key the transport
	// fault stream and the server's agent bookkeeping.
	Tenant string
	Actor  string
	// Deadline bounds each RPC attempt (default 30s). It must exceed
	// the poll wait or long-polls always time out client-side.
	Deadline time.Duration
	// MaxAttempts bounds the retry loop per call (default 8). At a 10%
	// transport fault rate eight attempts leave a ~1e-8 chance of a
	// call failing outright — retried attempts draw fresh fault
	// decisions, so a faulted call can never starve.
	MaxAttempts int
	// BackoffBase and BackoffCap shape the capped exponential backoff
	// between attempts (defaults 25ms and 1s). Jitter is ±50%, drawn
	// from a stream seeded by (tenant, actor) so tests replay exactly.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Faults injects transport chaos at the codec boundary; the zero
	// value is a clean wire.
	Faults faults.Config
	// Transport overrides the HTTP transport; nil means the default.
	// Tests and the load bench pass a LoopbackTransport.
	Transport http.RoundTripper
	// Sleep overrides the backoff sleep; nil means time.Sleep.
	Sleep func(time.Duration)
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Deadline <= 0 {
		o.Deadline = 30 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 8
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 25 * time.Millisecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = time.Second
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// StatusError is a non-200 server reply.
type StatusError struct {
	Code int
	Msg  string
	// RetryAfter is the server's backoff hint on 429/503 replies (zero
	// when the server sent none). Millisecond precision when the server
	// set RetryAfterMsHeader; whole seconds from a plain Retry-After.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Code, e.Msg)
}

// Client is a fault-tolerant wire client: every call carries a body
// checksum and a per-attempt deadline, retries with capped exponential
// backoff and jitter, and (when configured) injects deterministic
// transport chaos at the codec boundary — requests dropped before the
// server, responses discarded after it, duplicated deliveries, and
// corrupted bodies the server's checksum rejects.
type Client struct {
	opts ClientOptions
	hc   *http.Client
	inj  *faults.Injector
	seq  atomic.Uint64

	jmu sync.Mutex
	jit *rand.Rand
}

// NewClient returns a client for the given options.
func NewClient(opts ClientOptions) *Client {
	opts = opts.withDefaults()
	h := fnv.New64a()
	fmt.Fprintf(h, "jitter|%s|%s", opts.Tenant, opts.Actor)
	return &Client{
		opts: opts,
		hc:   &http.Client{Transport: opts.Transport},
		inj:  faults.NewInjector(opts.Faults),
		jit:  rand.New(rand.NewSource(int64(h.Sum64()))),
	}
}

// Call performs one RPC: marshal in, POST to path, unmarshal the reply
// into out (out may be nil). Each retry attempt draws its own transport
// fault decision keyed by (tenant, actor, request, attempt); the
// request key is unique per Call, so two calls never share a fault
// stream but the retries of one call walk the same one.
func (c *Client) Call(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: marshal %s: %w", path, err)
	}
	reqKey := fmt.Sprintf("%s#%d", path, c.seq.Add(1))
	sum := BodyChecksum(body)

	var lastErr error
	var retryAfter time.Duration
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt > 0 {
			// A server Retry-After hint (429 shed) overrides the computed
			// backoff for exactly one sleep: the server knows when a token
			// accrues, so honoring it beats guessing — but only once, lest
			// a stale hint pin every later retry to the same delay.
			d := c.backoff(attempt)
			if retryAfter > 0 {
				d = retryAfter
				retryAfter = 0
			}
			c.opts.Sleep(d)
		}
		dec := c.inj.ForRequest(c.opts.Tenant, c.opts.Actor, reqKey, attempt)
		switch dec.Kind {
		case faults.TransportDrop:
			// The request never reaches the server; the caller sees a
			// timeout and retries.
			lastErr = fmt.Errorf("client: %s: request dropped (injected)", path)
			continue
		case faults.TransportCorrupt:
			// Body bytes damaged in flight, checksum intact: the
			// server must reject before decoding.
			_, err := c.post(ctx, path, dec.CorruptBody(body), sum)
			if err == nil {
				lastErr = fmt.Errorf("client: %s: corrupted body was accepted", path)
				continue
			}
			lastErr = err
			continue
		case faults.TransportDelay, faults.TransportDisconnect:
			// The server processes the call; the response never makes
			// it back (past-deadline arrival or connection reset). The
			// retry exercises server-side idempotency.
			_, _ = c.post(ctx, path, body, sum)
			lastErr = fmt.Errorf("client: %s: response lost to %s (injected)", path, dec.Kind)
			continue
		case faults.TransportDuplicate:
			// Delivered twice; the second reply is the one the caller
			// sees. The server must admit the pair exactly once.
			_, _ = c.post(ctx, path, body, sum)
		}
		data, err := c.post(ctx, path, body, sum)
		if err != nil {
			var se *StatusError
			if errors.As(err, &se) {
				switch se.Code {
				case http.StatusServiceUnavailable:
					// Transient: draining or momentary overload.
				case http.StatusTooManyRequests:
					// Shed by admission control; retry when the server
					// says a token (or launch slot) should be free.
					retryAfter = se.RetryAfter
				default:
					// A definitive server verdict (bad request, method
					// not allowed) will not change on retry.
					return err
				}
			}
			lastErr = err
			continue
		}
		if out == nil {
			return nil
		}
		if err := json.Unmarshal(data, out); err != nil {
			lastErr = fmt.Errorf("client: decode %s reply: %w", path, err)
			continue
		}
		return nil
	}
	return fmt.Errorf("client: %s failed after %d attempts: %w", path, c.opts.MaxAttempts, lastErr)
}

// post performs one HTTP attempt under the per-attempt deadline.
func (c *Client) post(ctx context.Context, path string, body []byte, sum string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opts.Deadline)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.opts.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ChecksumHeader, sum)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var er ErrorResponse
		_ = json.Unmarshal(data, &er)
		return nil, &StatusError{
			Code:       resp.StatusCode,
			Msg:        er.Err,
			RetryAfter: parseRetryAfter(resp.Header),
		}
	}
	return data, nil
}

// parseRetryAfter extracts the server's backoff hint. The ms-precision
// extension header wins (token-bucket refills are sub-second; rounding
// to the mandatory ≥1s standard header would triple a flooded tenant's
// recovery time); the standard delta-seconds Retry-After is the
// fallback for plain proxies.
func parseRetryAfter(h http.Header) time.Duration {
	if v := h.Get(RetryAfterMsHeader); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	if v := h.Get("Retry-After"); v != "" {
		if sec, err := strconv.Atoi(v); err == nil && sec > 0 {
			return time.Duration(sec) * time.Second
		}
	}
	return 0
}

// backoff returns the capped exponential delay before attempt n (n ≥
// 1), with ±50% deterministic jitter.
func (c *Client) backoff(n int) time.Duration {
	d := c.opts.BackoffBase << (n - 1)
	if d > c.opts.BackoffCap || d <= 0 {
		d = c.opts.BackoffCap
	}
	c.jmu.Lock()
	f := 0.5 + c.jit.Float64()
	c.jmu.Unlock()
	return time.Duration(float64(d) * f)
}

// LoopbackTransport is an http.RoundTripper that dispatches requests
// straight into a handler — no sockets, no listener. Tests and the
// ≥1,000-agent load bench ride it: the full codec (JSON, checksums,
// fault injection, retries) is exercised while staying deterministic
// and sandbox-friendly. Handlers run synchronously; a request's
// context deadline does not interrupt a running handler, so callers
// must keep server-side waits (the poll timeout) below their RPC
// deadline.
type LoopbackTransport struct {
	Handler http.Handler
}

// RoundTrip implements http.RoundTripper.
func (l LoopbackTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := &loopbackRecorder{code: http.StatusOK, header: http.Header{}}
	l.Handler.ServeHTTP(rec, req)
	return &http.Response{
		Status:        http.StatusText(rec.code),
		StatusCode:    rec.code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        rec.header,
		Body:          io.NopCloser(bytes.NewReader(rec.buf.Bytes())),
		ContentLength: int64(rec.buf.Len()),
		Request:       req,
	}, nil
}

// loopbackRecorder is a minimal in-memory http.ResponseWriter.
type loopbackRecorder struct {
	code   int
	wrote  bool
	header http.Header
	buf    bytes.Buffer
}

func (r *loopbackRecorder) Header() http.Header { return r.header }

func (r *loopbackRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
}

func (r *loopbackRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.buf.Write(p)
}
