package service

import (
	"encoding/json"
	"math"
	"net/http"
	"time"
)

// This file is the server's overload-control surface: the per-tenant
// token bucket behind Options.TenantRPS, the /v1/health readiness
// report, and the drain protocol `gist -serve` runs on SIGINT/SIGTERM.
//
// Shed priority, cheapest work admitted first:
//
//  1. Recurrence folds (O(1) cluster updates) are always admitted once
//     past the tenant's rate limit — dedup is the cheapest way to absorb
//     a recurring failure, so shedding it would be self-defeating.
//  2. Novel-signature launches queue behind the MaxInflight cap, up to
//     LaunchBudget parked launches.
//  3. Beyond the budget, novel submits are shed with 429 + Retry-After;
//     the shed probe is read-only, so the signature stays novel for the
//     retry that finally lands.

// tokenBucket is a classic token bucket: `rate` tokens/sec accrue up to
// `burst`, one submit spends one token. All methods are called under
// the server mutex with the server's injected clock, so refill math is
// deterministic in tests.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64 // bucket depth
	tokens float64
	last   time.Time // last refill instant; zero before first take
}

// newTokenBucket returns a full bucket.
func newTokenBucket(rate float64, burst int) *tokenBucket {
	b := float64(burst)
	if b < 1 {
		b = math.Ceil(2 * rate)
		if b < 1 {
			b = 1
		}
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b}
}

// take spends one token if available. On refusal it returns how long
// until the next token accrues — the Retry-After hint, which makes the
// 429 actionable instead of inviting a blind retry storm.
func (b *tokenBucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if !b.last.IsZero() {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * b.rate
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate // seconds until one whole token
	return false, time.Duration(need * float64(time.Second))
}

// ---- health -----------------------------------------------------------

// Health snapshots the server's readiness: admission-queue depths, shed
// counters, and the FleetHealth aggregate across finished campaigns.
func (s *Server) Health() HealthResponse {
	s.mu.Lock()
	queued := 0
	for _, t := range s.tenants {
		queued += len(t.queue)
	}
	h := HealthResponse{
		Ready: !s.draining &&
			(s.slotCh == nil || s.launchQ < s.opts.LaunchBudget),
		Draining:          s.draining,
		InflightCampaigns: s.inflight,
		QueuedLaunches:    s.launchQ,
		MaxQueuedLaunches: s.maxLaunchQ,
		QueuedTasks:       queued,
		DoneTasks:         len(s.doneTasks),
		Fleet:             s.health,
	}
	s.mu.Unlock()
	h.Counters, _ = s.Snapshot()
	return h
}

// handleHealth serves the readiness report. Unlike the POST-only task
// endpoints this one answers GET too (load balancers and curl probe
// it), and answers 503 while not ready so a balancer steers submits
// away without parsing the body.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode health: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if !h.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	w.Write(data)
}

// ---- drain ------------------------------------------------------------

// BeginDrain stops admitting new submits (they shed with 429 so the
// client's Retry-After backoff steers them to a peer) and asks every
// live campaign supervisor to drain at its next iteration boundary,
// flushing a durable checkpoint. In-flight agent uploads keep landing —
// the caller closes the listener only after DrainWait — so no live
// result is dropped. Idempotent.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	sups := make([]func(), 0, len(s.sups))
	for sup := range s.sups {
		sups = append(sups, sup.RequestDrain)
	}
	s.mu.Unlock()
	for _, req := range sups {
		req()
	}
	s.logf("drain: admissions stopped, %d campaigns asked to checkpoint", len(sups))
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// DrainWait blocks until every campaign goroutine has unwound (each
// either finished or checkpointed-and-suspended) or the timeout
// elapses. It returns how many campaigns drained to a checkpoint — the
// count that makes the CLI's exit-3 "resumable work left behind"
// contract decidable — and whether the server went fully idle.
func (s *Server) DrainWait(timeout time.Duration) (drained int, idle bool) {
	done := make(chan struct{})
	go func() {
		s.campWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		idle = true
	case <-time.After(timeout):
	}
	s.mu.Lock()
	for _, t := range s.tenants {
		for _, cs := range t.campaigns {
			if cs.state == StateDrained {
				drained++
			}
		}
	}
	s.mu.Unlock()
	return drained, idle
}
