package service

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/hw/pt"
	"repro/internal/hw/watch"
	"repro/internal/vm"
)

func TestTraceSurvivesWireRoundTrip(t *testing.T) {
	meter := cost.MeterFromMC(1000, 250)
	rt := &core.RunTrace{
		Spec:    core.RunSpec{EndpointID: 3, Seed: 99, PreemptMean: 4, MaxSteps: 1000},
		Outcome: &vm.Outcome{Failed: true, Exit: 2, Steps: 512, Prints: []string{"boom"}},
		Flow:    map[int][]int{0: {1, 2, 3}, 1: {4, 5}},
		Branches: map[int][]pt.BranchObs{
			0: {{IP: 2, Taken: true}, {IP: 3, Taken: false}},
		},
		Executed:       map[int]bool{1: true, 2: true, 5: true},
		Traps:          []watch.Trap{{Slot: 0, Addr: 64, Val: 7, Size: 8, IsWrite: true, InstrID: 2, Thread: 1, Clock: 12}},
		WatchMisses:    2,
		Meter:          meter,
		SalvagedCores:  1,
		Late:           false,
		DroppedTraps:   3,
		ReorderedTraps: 1,
	}

	// JSON the wire form, as the transport would.
	w := EncodeTrace(rt)
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var w2 WireTrace
	if err := json.Unmarshal(data, &w2); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	got := DecodeTrace(&w2)

	if !reflect.DeepEqual(got.Spec, rt.Spec) {
		t.Errorf("spec: got %+v want %+v", got.Spec, rt.Spec)
	}
	if !reflect.DeepEqual(got.Outcome, rt.Outcome) {
		t.Errorf("outcome: got %+v want %+v", got.Outcome, rt.Outcome)
	}
	if !reflect.DeepEqual(got.Flow, rt.Flow) {
		t.Errorf("flow: got %v want %v", got.Flow, rt.Flow)
	}
	if !reflect.DeepEqual(got.Branches, rt.Branches) {
		t.Errorf("branches: got %v want %v", got.Branches, rt.Branches)
	}
	if !reflect.DeepEqual(got.Executed, rt.Executed) {
		t.Errorf("executed: got %v want %v", got.Executed, rt.Executed)
	}
	if !reflect.DeepEqual(got.Traps, rt.Traps) {
		t.Errorf("traps: got %v want %v", got.Traps, rt.Traps)
	}
	if got.Meter != rt.Meter {
		t.Errorf("meter: got %+v want %+v", got.Meter, rt.Meter)
	}
	if got.WatchMisses != rt.WatchMisses || got.SalvagedCores != rt.SalvagedCores ||
		got.DroppedTraps != rt.DroppedTraps || got.ReorderedTraps != rt.ReorderedTraps {
		t.Errorf("counters did not round-trip: got %+v", got)
	}
}

func TestNilTraceStaysNil(t *testing.T) {
	if EncodeTrace(nil) != nil {
		t.Fatal("EncodeTrace(nil) != nil")
	}
	if DecodeTrace(nil) != nil {
		t.Fatal("DecodeTrace(nil) != nil")
	}
}

func TestDecodeErrSurvivesAsString(t *testing.T) {
	rt := &core.RunTrace{
		Flow:      map[int][]int{},
		Executed:  map[int]bool{},
		DecodeErr: errors.New("pt: packet stream corrupt at byte 12"),
	}
	w := EncodeTrace(rt)
	got := DecodeTrace(w)
	if got.DecodeErr == nil || got.DecodeErr.Error() != rt.DecodeErr.Error() {
		t.Fatalf("decode err = %v, want %v", got.DecodeErr, rt.DecodeErr)
	}
}
