package service_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/store"
)

// TestCoordinatorModeSketchesByteIdentical is the split-role proof: a
// coordinator-only server places submitted campaigns on the shard
// fleet, a worker process (in-process here, over the same shared
// backend a fleet would use) drives the diagnosis, and the sketch the
// server hands back over the wire is byte-identical to an in-process
// run — the submit/status/sketch surface cannot tell which process
// diagnosed the bug.
func TestCoordinatorModeSketchesByteIdentical(t *testing.T) {
	const bug = "pbzip2"
	want := inProcessSketch(t, bug)

	b := store.NewMemBackend()
	coord, err := shard.NewCoordinator(b, "fleet", 2, true)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	srv := service.NewServer(service.Options{
		Placer:    coord,
		PlacePoll: 10 * time.Millisecond,
	})
	defer srv.Close()
	transport := service.LoopbackTransport{Handler: srv.Handler()}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w, err := shard.NewWorker(shard.WorkerOptions{
			Backend: b, Root: "fleet",
			Index: i, Shards: 2, Width: 1, NoFsync: true,
		})
		if err != nil {
			t.Fatalf("NewWorker %d: %v", i, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx, 5*time.Millisecond)
		}()
	}
	defer wg.Wait()
	defer cancel()

	cli := service.NewClient(service.ClientOptions{
		BaseURL:   "http://gist",
		Tenant:    "acme",
		Actor:     "cli",
		Transport: transport,
		Sleep:     func(time.Duration) {},
	})
	var sub service.SubmitResponse
	if err := cli.Call(ctx, service.PathSubmit, &service.SubmitRequest{Tenant: "acme", Bug: bug}, &sub); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if !srv.WaitCampaign("acme", bug) {
		t.Fatal("campaign vanished after submit")
	}

	var st service.StatusResponse
	if err := cli.Call(ctx, service.PathStatus, &service.StatusRequest{Tenant: "acme", Bug: bug}, &st); err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.State != service.StateDone {
		t.Fatalf("campaign state = %q (err=%q), want done", st.State, st.Err)
	}
	var sk service.SketchResponse
	if err := cli.Call(ctx, service.PathSketch, &service.SketchRequest{Tenant: "acme", Bug: bug}, &sk); err != nil {
		t.Fatalf("sketch: %v", err)
	}
	if !sk.Ready || len(sk.Sketch) == 0 {
		t.Fatal("campaign done but sketch not ready")
	}
	if !bytes.Equal(sk.Sketch, want) {
		t.Errorf("coordinator-mode sketch differs from in-process run\nfleet:\n%s\nin-process:\n%s", sk.Sketch, want)
	}

	// The fleet's done record carries the same bytes durably.
	rec, err := coord.Done("acme", bug)
	if err != nil || rec == nil {
		t.Fatalf("done record: %+v, %v", rec, err)
	}
	if !bytes.Equal(rec.Sketch, want) {
		t.Errorf("done record sketch differs from in-process run")
	}
}

// TestCoordinatorModeSurfacesWorkerFailure pins the failure path: when
// the owning worker cannot build the placed campaign, it publishes a
// done record carrying the error, and the coordinator must surface the
// campaign as failed with that error — not hang the submitter.
func TestCoordinatorModeSurfacesWorkerFailure(t *testing.T) {
	const bug = "pbzip2"
	b := store.NewMemBackend()
	coord, err := shard.NewCoordinator(b, "fleet", 1, true)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	srv := service.NewServer(service.Options{
		Placer:    coord,
		PlacePoll: 10 * time.Millisecond,
	})
	defer srv.Close()
	transport := service.LoopbackTransport{Handler: srv.Handler()}

	w, err := shard.NewWorker(shard.WorkerOptions{
		Backend: b, Root: "fleet", Shards: 1, Width: 1, NoFsync: true,
		ConfigFor: func(string) (core.Config, error) {
			return core.Config{}, errors.New("bug corpus not installed on this host")
		},
	})
	if err != nil {
		t.Fatalf("NewWorker: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.Run(ctx, 5*time.Millisecond)
	}()
	defer wg.Wait()
	defer cancel()

	cli := service.NewClient(service.ClientOptions{
		BaseURL:   "http://gist",
		Tenant:    "acme",
		Actor:     "cli",
		Transport: transport,
		Sleep:     func(time.Duration) {},
	})
	var sub service.SubmitResponse
	if err := cli.Call(ctx, service.PathSubmit, &service.SubmitRequest{Tenant: "acme", Bug: bug}, &sub); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if !srv.WaitCampaign("acme", bug) {
		t.Fatal("campaign vanished after submit")
	}
	var st service.StatusResponse
	if err := cli.Call(ctx, service.PathStatus, &service.StatusRequest{Tenant: "acme", Bug: bug}, &st); err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.State != service.StateFailed {
		t.Fatalf("campaign state = %q, want failed", st.State)
	}
	if !strings.Contains(st.Err, "bug corpus not installed") {
		t.Errorf("campaign error %q does not carry the worker's error", st.Err)
	}
}
