package service

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTokenBucketRefillAndRetryAfter(t *testing.T) {
	clk := newFakeClock()
	b := newTokenBucket(2, 2) // 2 tokens/sec, burst 2

	// The bucket starts full: the burst is admitted, the next take is
	// refused with the time until one whole token accrues.
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(clk.Now()); !ok {
			t.Fatalf("take %d refused on a full bucket", i)
		}
	}
	ok, ra := b.take(clk.Now())
	if ok {
		t.Fatal("take on an empty bucket admitted")
	}
	if ra <= 0 || ra > 500*time.Millisecond {
		t.Fatalf("retry-after = %v, want in (0, 500ms] at 2 tokens/sec", ra)
	}

	// After the advertised wait the next take must succeed.
	clk.Advance(ra)
	if ok, _ := b.take(clk.Now()); !ok {
		t.Fatal("take refused after waiting out the advertised Retry-After")
	}

	// Idle refill is capped at the burst: a long quiet spell must not
	// bank an unbounded flood allowance.
	clk.Advance(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := b.take(clk.Now()); ok {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("admitted %d after an idle hour, want burst cap 2", admitted)
	}
}

func TestSubmitShedsOverRateLimit(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(Options{TenantRPS: 1, TenantBurst: 1, Now: clk.Now})
	defer s.Close()
	// Pre-register the signature so every submit is a recurrence fold —
	// the gate under test is the rate limit, not campaign launch.
	s.front.Ingest("acme", "pbzip2", nil, 1)
	s.front.Ingest("beta", "pbzip2", nil, 1)

	resp, err := s.handleSubmit(&SubmitRequest{Tenant: "acme", Bug: "pbzip2"})
	if err != nil || !resp.Duplicate {
		t.Fatalf("first submit = %+v, %v, want folded duplicate", resp, err)
	}

	// The burst is spent; the next submit sheds with 429 + Retry-After.
	_, err = s.handleSubmit(&SubmitRequest{Tenant: "acme", Bug: "pbzip2"})
	he, ok := err.(*httpError)
	if !ok || he.code != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit error = %v, want 429 httpError", err)
	}
	if he.retryAfter <= 0 || he.retryAfter > time.Second {
		t.Fatalf("retry-after = %v, want in (0, 1s] at 1 rps", he.retryAfter)
	}

	// Another tenant's bucket is independent of the flooded one.
	if _, err := s.handleSubmit(&SubmitRequest{Tenant: "beta", Bug: "pbzip2"}); err != nil {
		t.Fatalf("independent tenant shed alongside the flooder: %v", err)
	}

	// Waiting out the hint readmits the flooded tenant.
	clk.Advance(he.retryAfter)
	if _, err := s.handleSubmit(&SubmitRequest{Tenant: "acme", Bug: "pbzip2"}); err != nil {
		t.Fatalf("submit after Retry-After wait: %v", err)
	}

	c, _ := s.Snapshot()
	if c.ShedRateLimited != 1 {
		t.Fatalf("ShedRateLimited = %d, want 1", c.ShedRateLimited)
	}
}

func TestRetryAfterHeadersOnShedResponse(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(Options{TenantRPS: 1, TenantBurst: 1, Now: clk.Now})
	defer s.Close()
	s.front.Ingest("acme", "pbzip2", nil, 1)

	post := func() *httptest.ResponseRecorder {
		body := []byte(`{"tenant":"acme","bug":"pbzip2"}`)
		req := httptest.NewRequest(http.MethodPost, PathSubmit, strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		return rec
	}
	if rec := post(); rec.Code != http.StatusOK {
		t.Fatalf("first submit = %d: %s", rec.Code, rec.Body)
	}
	rec := post()
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit = %d, want 429: %s", rec.Code, rec.Body)
	}
	// Both the standard (whole-second, rounded up) and the ms-precision
	// extension header must be present.
	if ra := rec.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After header = %q, want >= 1 second", ra)
	}
	if ms := rec.Header().Get(RetryAfterMsHeader); ms == "" || ms == "0" {
		t.Fatalf("%s header = %q, want positive milliseconds", RetryAfterMsHeader, ms)
	}
}

// occupy fabricates campaign occupancy so the launch-budget gate can be
// tested without running real diagnoses.
func occupy(s *Server, inflight, queued int) {
	s.mu.Lock()
	s.inflight = inflight
	s.launchQ = queued
	s.mu.Unlock()
}

func TestLaunchBudgetShedsNovelAdmitsFolds(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(Options{MaxInflight: 1, LaunchBudget: 1, Now: clk.Now})
	defer s.Close()
	s.front.Ingest("acme", "pbzip2", nil, 1) // known signature → folds
	occupy(s, 1, 1)                          // running + parked = at the bound

	// A novel signature would need a launch; at full occupancy it sheds.
	_, err := s.handleSubmit(&SubmitRequest{Tenant: "acme", Bug: "apache-1"})
	he, ok := err.(*httpError)
	if !ok || he.code != http.StatusTooManyRequests {
		t.Fatalf("novel submit at full occupancy = %v, want 429", err)
	}
	if he.retryAfter <= 0 {
		t.Fatalf("launch shed carries no Retry-After: %v", he.retryAfter)
	}

	// The shed probe must be read-only: the signature is still novel,
	// so the tenant's retry (once load drops) launches normally.
	if s.front.Known("acme", "apache-1", nil) {
		t.Fatal("shed submit burned its signature's Novel slot")
	}

	// A recurrence fold is always admitted past the launch gate — it
	// costs no launch.
	resp, err := s.handleSubmit(&SubmitRequest{Tenant: "acme", Bug: "pbzip2"})
	if err != nil || !resp.Duplicate {
		t.Fatalf("fold at full occupancy = %+v, %v, want admitted duplicate", resp, err)
	}

	c, _ := s.Snapshot()
	if c.ShedLaunches != 1 {
		t.Fatalf("ShedLaunches = %d, want 1", c.ShedLaunches)
	}
	occupy(s, 0, 0)
}

func TestHealthEndpointReportsReadiness(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(Options{MaxInflight: 1, LaunchBudget: 1, Now: clk.Now})
	defer s.Close()

	get := func() (int, HealthResponse) {
		req := httptest.NewRequest(http.MethodGet, PathHealth, nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		var h HealthResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
			t.Fatalf("decode health: %v: %s", err, rec.Body)
		}
		return rec.Code, h
	}

	code, h := get()
	if code != http.StatusOK || !h.Ready {
		t.Fatalf("idle health = %d ready=%v, want 200 ready", code, h.Ready)
	}

	// Full launch queue → not ready → 503 so a balancer steers away.
	occupy(s, 1, 1)
	code, h = get()
	if code != http.StatusServiceUnavailable || h.Ready {
		t.Fatalf("saturated health = %d ready=%v, want 503 not-ready", code, h.Ready)
	}
	if h.InflightCampaigns != 1 || h.QueuedLaunches != 1 {
		t.Fatalf("health depths = %+v, want 1 inflight, 1 queued", h)
	}
	occupy(s, 0, 0)

	s.BeginDrain()
	code, h = get()
	if code != http.StatusServiceUnavailable || !h.Draining {
		t.Fatalf("draining health = %d draining=%v, want 503 draining", code, h.Draining)
	}
}

func TestDrainShedsSubmits(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	s.front.Ingest("acme", "pbzip2", nil, 1)

	s.BeginDrain()
	s.BeginDrain() // idempotent
	if !s.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	_, err := s.handleSubmit(&SubmitRequest{Tenant: "acme", Bug: "pbzip2"})
	he, ok := err.(*httpError)
	if !ok || he.code != http.StatusTooManyRequests {
		t.Fatalf("submit while draining = %v, want 429", err)
	}
	drained, idle := s.DrainWait(time.Second)
	if drained != 0 || !idle {
		t.Fatalf("DrainWait = (%d, %v), want (0, true) with no campaigns", drained, idle)
	}
}

func TestDeadlineExpiresQueuedCampaign(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(Options{MaxInflight: 1, LaunchBudget: 2, Now: clk.Now})
	defer s.Close()
	// Fill the only slot so the submitted campaign parks in the launch
	// queue; it must die there when its deadline passes, without ever
	// running.
	s.slotCh <- struct{}{}
	defer func() { <-s.slotCh }()

	resp, err := s.handleSubmit(&SubmitRequest{Tenant: "acme", Bug: "pbzip2", DeadlineMs: 1000})
	if err != nil || resp.Duplicate {
		t.Fatalf("submit = %+v, %v, want novel admission", resp, err)
	}

	clk.Advance(1500 * time.Millisecond)
	s.reapOnce(clk.Now())

	// The abort is delivered to the parked goroutine asynchronously;
	// poll status until it lands (scheduling, not wall-time, bounds it).
	var st *StatusResponse
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		st, err = s.handleStatus(&StatusRequest{Tenant: "acme", Bug: "pbzip2"})
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if st.State == StateFailed {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if st.State != StateFailed {
		t.Fatalf("queued campaign state = %q after deadline, want %q", st.State, StateFailed)
	}
	if !strings.Contains(st.Err, "deadline") {
		t.Fatalf("failure reason %q does not mention the deadline", st.Err)
	}
	c, _ := s.Snapshot()
	if c.DeadlineExpired == 0 {
		t.Fatal("DeadlineExpired counter never incremented")
	}
}

func TestTaskDeadlineWrittenOffAndWired(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(Options{Now: clk.Now})
	defer s.Close()

	// A task with a live deadline ships the remaining budget to the
	// agent; one with none ships zero.
	tk := enqueueTask(s, "acme", "pbzip2")
	s.mu.Lock()
	tk.deadline = clk.Now().Add(250 * time.Millisecond)
	s.mu.Unlock()
	r, err := s.handlePoll(&PollRequest{Tenant: "acme", Agent: "a1", WaitMs: 100})
	if err != nil || r.Task == nil {
		t.Fatalf("poll = %+v, %v", r, err)
	}
	if r.Task.DeadlineMs <= 0 || r.Task.DeadlineMs > 250 {
		t.Fatalf("wired DeadlineMs = %d, want in (0, 250]", r.Task.DeadlineMs)
	}

	// Past the deadline the reaper writes the task off.
	clk.Advance(300 * time.Millisecond)
	s.reapOnce(clk.Now())
	select {
	case <-tk.doneCh:
	default:
		t.Fatal("past-deadline task not written off")
	}
	s.mu.Lock()
	lost := tk.lost
	s.mu.Unlock()
	if !lost {
		t.Fatal("past-deadline task done but not lost")
	}
	c, _ := s.Snapshot()
	if c.DeadlineExpired != 1 {
		t.Fatalf("DeadlineExpired = %d, want 1", c.DeadlineExpired)
	}

	tk2 := enqueueTask(s, "acme", "pbzip2")
	r, err = s.handlePoll(&PollRequest{Tenant: "acme", Agent: "a1", WaitMs: 100})
	if err != nil || r.Task == nil || r.Task.TaskID != tk2.id {
		t.Fatalf("poll = %+v, %v, want task %d", r, err, tk2.id)
	}
	if r.Task.DeadlineMs != 0 {
		t.Fatalf("deadline-free task wired DeadlineMs = %d, want 0", r.Task.DeadlineMs)
	}
}

func TestHedgedDispatchFirstUploadWins(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(Options{HedgeAfter: 100 * time.Millisecond, MaxTaskAttempts: 3, Now: clk.Now})
	defer s.Close()
	tk := enqueueTask(s, "acme", "pbzip2")

	r1, err := s.handlePoll(&PollRequest{Tenant: "acme", Agent: "a1", WaitMs: 100})
	if err != nil || r1.Task == nil {
		t.Fatalf("first poll = %+v, %v", r1, err)
	}

	// Before the threshold: no hedge.
	clk.Advance(50 * time.Millisecond)
	s.reapOnce(clk.Now())
	if c, _ := s.Snapshot(); c.HedgedTasks != 0 {
		t.Fatalf("hedged before threshold: %d", c.HedgedTasks)
	}

	// Past it: the same task is re-dispatched to a second agent.
	clk.Advance(100 * time.Millisecond)
	s.reapOnce(clk.Now())
	if c, _ := s.Snapshot(); c.HedgedTasks != 1 {
		t.Fatalf("HedgedTasks = %d, want 1", c.HedgedTasks)
	}
	r2, err := s.handlePoll(&PollRequest{Tenant: "acme", Agent: "a2", WaitMs: 100})
	if err != nil || r2.Task == nil {
		t.Fatalf("hedge poll = %+v, %v", r2, err)
	}
	if r2.Task.TaskID != tk.id {
		t.Fatalf("hedge dispatched task %d, want the straggler %d", r2.Task.TaskID, tk.id)
	}

	// A task is hedged at most once.
	clk.Advance(time.Second)
	s.reapOnce(clk.Now())
	if c, _ := s.Snapshot(); c.HedgedTasks != 1 {
		t.Fatalf("task hedged twice: %d", c.HedgedTasks)
	}

	// First valid upload wins via the task-ID idempotency key; the
	// loser's delivery is acknowledged as a duplicate.
	u1, err := s.handleUpload(&UploadRequest{Tenant: "acme", Agent: "a2", TaskID: tk.id, Trace: &WireTrace{}})
	if err != nil || !u1.Accepted || u1.Duplicate {
		t.Fatalf("winning upload = %+v, %v", u1, err)
	}
	u2, err := s.handleUpload(&UploadRequest{Tenant: "acme", Agent: "a1", TaskID: tk.id, Trace: &WireTrace{}})
	if err != nil || !u2.Accepted || !u2.Duplicate {
		t.Fatalf("losing upload = %+v, %v, want accepted duplicate", u2, err)
	}
	c, _ := s.Snapshot()
	if c.HedgedResults != 1 {
		t.Fatalf("HedgedResults = %d, want 1 (exactly one admitted hedge result)", c.HedgedResults)
	}
	if c.Uploads != 1 || c.DuplicateUploads != 1 {
		t.Fatalf("uploads = %d/%d dup, want exactly-once admission", c.Uploads, c.DuplicateUploads)
	}
}

func TestHedgeThresholdTracksP95(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(Options{HedgeAfter: 10 * time.Millisecond, Now: clk.Now})
	defer s.Close()

	s.mu.Lock()
	th := s.hedgeThreshold()
	s.mu.Unlock()
	if th != 10*time.Millisecond {
		t.Fatalf("threshold with no samples = %v, want the HedgeAfter floor", th)
	}

	// Feed 100 run durations around 200ms; the p95 must lift the
	// threshold above the floor.
	for i := 0; i < 100; i++ {
		s.observeRunDuration(time.Duration(150+i) * time.Millisecond)
	}
	s.mu.Lock()
	th = s.hedgeThreshold()
	s.mu.Unlock()
	if th < 200*time.Millisecond || th > 250*time.Millisecond {
		t.Fatalf("threshold = %v, want ≈ p95 of [150ms, 250ms)", th)
	}
}

// ---- client backoff & Retry-After ------------------------------------

// TestClientBackoffJitterWithinSchedule property-tests the retry
// schedule across several identities and attempts: every delay must sit
// within ±50% of the capped exponential base schedule, and the jitter
// stream must be deterministic per (tenant, actor).
func TestClientBackoffJitterWithinSchedule(t *testing.T) {
	const (
		base = 10 * time.Millisecond
		cap_ = 400 * time.Millisecond
	)
	sched := func(n int) time.Duration {
		d := base << (n - 1)
		if d > cap_ || d <= 0 {
			d = cap_
		}
		return d
	}
	for _, id := range []struct{ tenant, actor string }{
		{"acme", "cli"}, {"beta", "agent-1"}, {"", ""}, {"acme", "agent-9"},
	} {
		c := NewClient(ClientOptions{Tenant: id.tenant, Actor: id.actor, BackoffBase: base, BackoffCap: cap_})
		// Replica of the client's jitter stream: same FNV seed, same
		// draw order — the schedule must be exactly reproducible.
		h := fnv.New64a()
		fmt.Fprintf(h, "jitter|%s|%s", id.tenant, id.actor)
		jit := rand.New(rand.NewSource(int64(h.Sum64())))
		for n := 1; n <= 30; n++ {
			d := c.backoff(n)
			lo, hi := sched(n)/2, sched(n)*3/2
			if d < lo || d > hi {
				t.Fatalf("(%q,%q) backoff(%d) = %v outside [%v, %v]", id.tenant, id.actor, n, d, lo, hi)
			}
			want := time.Duration(float64(sched(n)) * (0.5 + jit.Float64()))
			if d != want {
				t.Fatalf("(%q,%q) backoff(%d) = %v, want deterministic %v", id.tenant, id.actor, n, d, want)
			}
		}
	}
}

func TestClient429RetryAfterOverridesBackoffOnce(t *testing.T) {
	hits := 0
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		hits++
		switch hits {
		case 1:
			// Shed with a precise ms hint; the client must sleep exactly
			// this long before its retry.
			w.Header().Set("Retry-After", "1")
			w.Header().Set(RetryAfterMsHeader, "250")
			writeError(w, http.StatusTooManyRequests, "shed")
		case 2:
			// Shed again with no hint: the computed backoff applies —
			// the earlier hint must not leak into this sleep.
			writeError(w, http.StatusTooManyRequests, "shed again")
		default:
			w.Write([]byte(`{"state":"running"}`))
		}
	})
	var sleeps []time.Duration
	c := NewClient(ClientOptions{
		BaseURL:     "http://gist",
		Tenant:      "acme",
		Actor:       "cli",
		BackoffBase: 10 * time.Millisecond,
		BackoffCap:  80 * time.Millisecond,
		Transport:   LoopbackTransport{Handler: mux},
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	var resp StatusResponse
	if err := c.Call(context.Background(), PathStatus, &StatusRequest{Tenant: "acme", Bug: "x"}, &resp); err != nil {
		t.Fatalf("call through 429s: %v", err)
	}
	if hits != 3 {
		t.Fatalf("hits = %d, want 3 (two sheds then success)", hits)
	}
	if len(sleeps) != 2 {
		t.Fatalf("sleeps = %v, want exactly 2", sleeps)
	}
	if sleeps[0] != 250*time.Millisecond {
		t.Fatalf("first sleep = %v, want the server's 250ms hint (ms header over seconds header)", sleeps[0])
	}
	// Attempt 2's base schedule is 20ms; with ±50% jitter the sleep is
	// in [10ms, 30ms] — far from 250ms, so a leaked hint would be loud.
	if sleeps[1] < 10*time.Millisecond || sleeps[1] > 30*time.Millisecond {
		t.Fatalf("second sleep = %v, want computed backoff in [10ms, 30ms], not a stale hint", sleeps[1])
	}
}

func TestParseRetryAfter(t *testing.T) {
	mk := func(std, ms string) http.Header {
		h := http.Header{}
		if std != "" {
			h.Set("Retry-After", std)
		}
		if ms != "" {
			h.Set(RetryAfterMsHeader, ms)
		}
		return h
	}
	cases := []struct {
		std, ms string
		want    time.Duration
	}{
		{"", "", 0},
		{"2", "", 2 * time.Second},
		{"1", "250", 250 * time.Millisecond}, // ms precision wins
		{"", "40", 40 * time.Millisecond},
		{"garbage", "", 0},
		{"-1", "", 0},
		{"1", "junk", time.Second}, // bad ms header falls back to seconds
	}
	for _, tc := range cases {
		if got := parseRetryAfter(mk(tc.std, tc.ms)); got != tc.want {
			t.Fatalf("parseRetryAfter(std=%q, ms=%q) = %v, want %v", tc.std, tc.ms, got, tc.want)
		}
	}
}
