package service_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/service/agent"
)

// TestReportSubmitByteIdenticalAndCacheReload drives the streaming
// ingestion path end to end: a production failure report submitted over
// the wire (with duplicate submissions racing the campaign), diagnosed
// by a loopback agent fleet, must yield byte-for-byte the sketch of the
// batch in-process run — and must keep yielding those bytes when the
// sketch cache is too small to hold anything, forcing every fetch
// through the checkpoint-store reload path.
func TestReportSubmitByteIdenticalAndCacheReload(t *testing.T) {
	const bug = "pbzip2"
	b := bugs.ByName(bug)
	if b == nil {
		t.Fatalf("unknown bug %q", bug)
	}
	cfg := b.GistConfig()
	report, disc, err := core.FirstFailure(cfg)
	if err != nil {
		t.Fatalf("discover failure: %v", err)
	}
	res, err := core.RunFromReport(cfg, report, disc)
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}
	want, err := res.Sketch.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}

	srv := service.NewServer(service.Options{
		LeaseTTL:         2 * time.Second,
		PollTimeout:      200 * time.Millisecond,
		MaxTaskAttempts:  10,
		SketchCacheBytes: 1, // force the reload path on every fetch
	})
	defer srv.Close()
	transport := service.LoopbackTransport{Handler: srv.Handler()}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		a, err := agent.New(agent.Config{
			Server: "http://gist", Tenant: "acme", ID: fmt.Sprintf("ep-%d", i),
			Poll: 100 * time.Millisecond, Transport: transport, Sleep: func(time.Duration) {},
		})
		if err != nil {
			t.Fatalf("agent: %v", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.Run(ctx); err != nil {
				t.Errorf("agent run: %v", err)
			}
		}()
	}
	defer wg.Wait()
	defer cancel()

	cli := service.NewClient(service.ClientOptions{
		BaseURL: "http://gist", Tenant: "acme", Actor: "cli",
		Transport: transport, Sleep: func(time.Duration) {},
	})

	// The novel report launches the campaign; concurrent duplicates
	// race it and must all fold without perturbing a byte.
	var sub service.SubmitResponse
	req := &service.SubmitRequest{Tenant: "acme", Bug: bug, Report: report, Seed: 7, DiscoveryRuns: disc}
	if err := cli.Call(ctx, service.PathSubmit, req, &sub); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if sub.Duplicate || sub.Signature != report.ID() {
		t.Fatalf("novel submit: %+v", sub)
	}
	var dupWG sync.WaitGroup
	for i := 0; i < 4; i++ {
		dupWG.Add(1)
		go func(i int) {
			defer dupWG.Done()
			d := service.NewClient(service.ClientOptions{
				BaseURL: "http://gist", Tenant: "acme", Actor: fmt.Sprintf("dup-%d", i),
				Transport: transport, Sleep: func(time.Duration) {},
			})
			for j := 0; j < 5; j++ {
				var r service.SubmitResponse
				dup := &service.SubmitRequest{Tenant: "acme", Bug: bug, Report: report, Seed: int64(100 + i*10 + j), DiscoveryRuns: disc}
				if err := d.Call(ctx, service.PathSubmit, dup, &r); err != nil {
					t.Errorf("dup submit: %v", err)
					return
				}
				if !r.Duplicate {
					t.Errorf("recurrence launched a campaign: %+v", r)
				}
			}
		}(i)
	}
	dupWG.Wait()

	if !srv.WaitCampaignSig("acme", bug, report.ID()) {
		t.Fatal("campaign vanished")
	}

	// Fetch twice: with a 1-byte cache both fetches re-render from the
	// checkpoint store, and both must match the batch bytes exactly.
	for fetch := 0; fetch < 2; fetch++ {
		var sk service.SketchResponse
		skReq := &service.SketchRequest{Tenant: "acme", Bug: bug, Signature: report.ID()}
		if err := cli.Call(ctx, service.PathSketch, skReq, &sk); err != nil {
			t.Fatalf("sketch fetch %d: %v", fetch, err)
		}
		if !sk.Ready {
			t.Fatalf("fetch %d: sketch not ready", fetch)
		}
		if !bytes.Equal(sk.Sketch, want) {
			t.Errorf("fetch %d: streamed sketch differs from batch run\nstream:\n%s\nbatch:\n%s", fetch, sk.Sketch, want)
		}
	}

	c, _ := srv.Snapshot()
	if c.SketchReloads < 2 {
		t.Errorf("SketchReloads = %d, want >= 2 (1-byte cache must force the store-reload path)", c.SketchReloads)
	}
	if c.NovelSignatures != 1 || c.FoldedReports != 20 {
		t.Errorf("ingest counters: novel=%d folded=%d, want 1/20", c.NovelSignatures, c.FoldedReports)
	}
	ist := srv.IngestStats()
	if ist.Reports != 21 || ist.Novel != 1 || ist.Folded != 20 {
		t.Errorf("frontend stats: %+v", ist)
	}
}
