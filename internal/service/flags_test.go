package service

import (
	"strings"
	"testing"
	"time"
)

func validServeFlags() ServeFlags {
	return ServeFlags{
		Listen:      "127.0.0.1:8443",
		StateDir:    "state",
		Lease:       10 * time.Second,
		PollTimeout: 5 * time.Second,
	}
}

func TestServeFlagValidation(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(*ServeFlags)
		wantFlag string // "" means valid
	}{
		{"valid", func(f *ServeFlags) {}, ""},
		{"valid all-interfaces", func(f *ServeFlags) { f.Listen = ":8443" }, ""},
		{"empty listen", func(f *ServeFlags) { f.Listen = "" }, "-listen"},
		{"listen without port", func(f *ServeFlags) { f.Listen = "127.0.0.1" }, "-listen"},
		{"listen bare port", func(f *ServeFlags) { f.Listen = "8443" }, "-listen"},
		{"empty state dir", func(f *ServeFlags) { f.StateDir = "" }, "-state-dir"},
		{"zero lease", func(f *ServeFlags) { f.Lease = 0 }, "-lease"},
		{"negative lease", func(f *ServeFlags) { f.Lease = -time.Second }, "-lease"},
		{"zero poll timeout", func(f *ServeFlags) { f.PollTimeout = 0 }, "-poll-timeout"},
		{"fault rate below range", func(f *ServeFlags) { f.TransportFaultRate = -0.1 }, "-transport-fault-rate"},
		{"fault rate above range", func(f *ServeFlags) { f.TransportFaultRate = 1.1 }, "-transport-fault-rate"},
		{"valid tenant rps", func(f *ServeFlags) { f.TenantRPS = 2.5 }, ""},
		{"negative tenant rps", func(f *ServeFlags) { f.TenantRPS = -1 }, "-tenant-rps"},
		{"valid tenant burst", func(f *ServeFlags) { f.TenantRPS = 2.5; f.TenantBurst = 10 }, ""},
		{"negative tenant burst", func(f *ServeFlags) { f.TenantRPS = 2.5; f.TenantBurst = -1 }, "-tenant-burst"},
		{"burst without rate", func(f *ServeFlags) { f.TenantBurst = 10 }, "-tenant-burst"},
		{"valid inflight cap", func(f *ServeFlags) { f.MaxInflight = 8 }, ""},
		{"negative inflight cap", func(f *ServeFlags) { f.MaxInflight = -1 }, "-max-inflight"},
		{"valid launch budget", func(f *ServeFlags) { f.MaxInflight = 8; f.LaunchBudget = 32 }, ""},
		{"negative launch budget", func(f *ServeFlags) { f.LaunchBudget = -1 }, "-launch-budget"},
		{"budget without inflight cap", func(f *ServeFlags) { f.LaunchBudget = 32 }, "-launch-budget"},
		{"valid hedge", func(f *ServeFlags) { f.HedgeAfter = 2 * time.Second }, ""},
		{"negative hedge", func(f *ServeFlags) { f.HedgeAfter = -time.Second }, "-hedge-after"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := validServeFlags()
			tc.mutate(&f)
			err := f.Validate()
			if tc.wantFlag == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid flags accepted")
			}
			if !strings.Contains(err.Error(), tc.wantFlag) {
				t.Fatalf("error %q does not name %s", err, tc.wantFlag)
			}
		})
	}
}

func validAgentFlags() AgentFlags {
	return AgentFlags{
		Server:      "http://127.0.0.1:8443",
		Tenant:      "acme",
		AgentID:     "ep-1",
		AgentPoll:   2 * time.Second,
		RPCDeadline: 30 * time.Second,
	}
}

func TestAgentFlagValidation(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(*AgentFlags)
		wantFlag string
	}{
		{"valid", func(f *AgentFlags) {}, ""},
		{"empty server", func(f *AgentFlags) { f.Server = "" }, "-server"},
		{"server without scheme", func(f *AgentFlags) { f.Server = "127.0.0.1:8443" }, "-server"},
		{"empty tenant", func(f *AgentFlags) { f.Tenant = "" }, "-tenant"},
		{"empty agent id", func(f *AgentFlags) { f.AgentID = "" }, "-agent-id"},
		{"zero poll", func(f *AgentFlags) { f.AgentPoll = 0 }, "-agent-poll"},
		{"negative poll", func(f *AgentFlags) { f.AgentPoll = -time.Second }, "-agent-poll"},
		{"zero deadline", func(f *AgentFlags) { f.RPCDeadline = 0 }, "-rpc-deadline"},
		{"deadline under poll", func(f *AgentFlags) { f.RPCDeadline = time.Second }, "-rpc-deadline"},
		{"fault rate below range", func(f *AgentFlags) { f.TransportFaultRate = -0.01 }, "-transport-fault-rate"},
		{"fault rate above range", func(f *AgentFlags) { f.TransportFaultRate = 2 }, "-transport-fault-rate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := validAgentFlags()
			tc.mutate(&f)
			err := f.Validate()
			if tc.wantFlag == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid flags accepted")
			}
			if !strings.Contains(err.Error(), tc.wantFlag) {
				t.Fatalf("error %q does not name %s", err, tc.wantFlag)
			}
		})
	}
}
