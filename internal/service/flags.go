package service

import (
	"fmt"
	"net"
	"strings"
	"time"
)

// ServeFlags is the CLI-facing server configuration, validated before
// any work starts. Field names mirror the gist flags that populate
// them; every validation error names the offending flag so the CLI
// convention (exit 2, flag named) holds.
type ServeFlags struct {
	Listen             string        // -listen
	StateDir           string        // -state-dir
	Lease              time.Duration // -lease
	PollTimeout        time.Duration // -poll-timeout
	TransportFaultRate float64       // -transport-fault-rate
	IngestCacheBytes   int64         // -ingest-cache-bytes
	IngestTaskTTL      time.Duration // -ingest-task-ttl
	IngestTaskCap      int           // -ingest-task-cap
	TenantRPS          float64       // -tenant-rps (0 = unlimited)
	TenantBurst        int           // -tenant-burst (0 = default 2×rps)
	MaxInflight        int           // -max-inflight (0 = uncapped)
	LaunchBudget       int           // -launch-budget (0 = default 4×max-inflight)
	HedgeAfter         time.Duration // -hedge-after (0 = hedging off)
}

// Validate rejects nonsensical serve flags, naming the flag at fault.
func (f ServeFlags) Validate() error {
	if err := validateListen(f.Listen); err != nil {
		return err
	}
	if f.StateDir == "" {
		return fmt.Errorf("-state-dir must not be empty")
	}
	if f.Lease <= 0 {
		return fmt.Errorf("-lease %v must be positive", f.Lease)
	}
	if f.PollTimeout <= 0 {
		return fmt.Errorf("-poll-timeout %v must be positive", f.PollTimeout)
	}
	if f.TransportFaultRate < 0 || f.TransportFaultRate > 1 {
		return fmt.Errorf("-transport-fault-rate %g outside [0,1]", f.TransportFaultRate)
	}
	if f.IngestCacheBytes < 0 {
		return fmt.Errorf("-ingest-cache-bytes %d must be >= 0 (0 = default)", f.IngestCacheBytes)
	}
	if f.IngestTaskTTL < 0 {
		return fmt.Errorf("-ingest-task-ttl %v must be >= 0 (0 = default)", f.IngestTaskTTL)
	}
	if f.IngestTaskCap < 0 {
		return fmt.Errorf("-ingest-task-cap %d must be >= 0 (0 = default)", f.IngestTaskCap)
	}
	if f.TenantRPS < 0 {
		return fmt.Errorf("-tenant-rps %g must be >= 0 (0 = unlimited)", f.TenantRPS)
	}
	if f.TenantBurst < 0 {
		return fmt.Errorf("-tenant-burst %d must be >= 0 (0 = default)", f.TenantBurst)
	}
	if f.TenantBurst > 0 && f.TenantRPS == 0 {
		return fmt.Errorf("-tenant-burst %d requires -tenant-rps > 0 (no bucket to size without a rate)", f.TenantBurst)
	}
	if f.MaxInflight < 0 {
		return fmt.Errorf("-max-inflight %d must be >= 0 (0 = uncapped)", f.MaxInflight)
	}
	if f.LaunchBudget < 0 {
		return fmt.Errorf("-launch-budget %d must be >= 0 (0 = default)", f.LaunchBudget)
	}
	if f.LaunchBudget > 0 && f.MaxInflight == 0 {
		return fmt.Errorf("-launch-budget %d requires -max-inflight > 0 (nothing queues without an inflight cap)", f.LaunchBudget)
	}
	if f.HedgeAfter < 0 {
		return fmt.Errorf("-hedge-after %v must be >= 0 (0 = hedging off)", f.HedgeAfter)
	}
	return nil
}

// AgentFlags is the CLI-facing agent configuration.
type AgentFlags struct {
	Server             string        // -server
	Tenant             string        // -tenant
	AgentID            string        // -agent-id
	AgentPoll          time.Duration // -agent-poll
	RPCDeadline        time.Duration // -rpc-deadline
	TransportFaultRate float64       // -transport-fault-rate
}

// Validate rejects nonsensical agent flags, naming the flag at fault.
func (f AgentFlags) Validate() error {
	if f.Server == "" {
		return fmt.Errorf("-server must be set to the diagnosis server URL")
	}
	if !strings.HasPrefix(f.Server, "http://") && !strings.HasPrefix(f.Server, "https://") {
		return fmt.Errorf("-server %q must be an http(s) URL", f.Server)
	}
	if f.Tenant == "" {
		return fmt.Errorf("-tenant must not be empty")
	}
	if f.AgentID == "" {
		return fmt.Errorf("-agent-id must not be empty")
	}
	if f.AgentPoll <= 0 {
		return fmt.Errorf("-agent-poll %v must be positive", f.AgentPoll)
	}
	if f.RPCDeadline <= 0 {
		return fmt.Errorf("-rpc-deadline %v must be positive", f.RPCDeadline)
	}
	if f.RPCDeadline <= f.AgentPoll {
		return fmt.Errorf("-rpc-deadline %v must exceed -agent-poll %v or every long-poll times out client-side", f.RPCDeadline, f.AgentPoll)
	}
	if f.TransportFaultRate < 0 || f.TransportFaultRate > 1 {
		return fmt.Errorf("-transport-fault-rate %g outside [0,1]", f.TransportFaultRate)
	}
	return nil
}

// validateListen checks a -listen address: host:port where the port
// parses. An empty host (":8443") binds all interfaces and is fine.
func validateListen(addr string) error {
	if addr == "" {
		return fmt.Errorf("-listen must not be empty")
	}
	_, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("-listen %q is not host:port: %v", addr, err)
	}
	if port == "" {
		return fmt.Errorf("-listen %q has no port", addr)
	}
	return nil
}
