package service

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
)

// enqueueTask fabricates one queued task so the handlers can be tested
// without driving a whole campaign.
func enqueueTask(s *Server, tenant, bug string) *task {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenant(tenant)
	s.nextTask++
	tk := &task{
		id:     s.nextTask,
		tenant: tenant,
		bug:    bug,
		window: []int{1, 2, 3},
		spec:   core.RunSpec{Seed: 42, EndpointID: 7},
		queued: s.now(),
		doneCh: make(chan struct{}),
	}
	s.tasks[tk.id] = tk
	s.dispatch(t, tk)
	return tk
}

// fakeClock is a hand-advanced clock injected via Options.Now so lease
// and reaper tests drive s.reapOnce directly instead of sleeping
// through wall time.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestUploadIdempotency(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	tk := enqueueTask(s, "acme", "pbzip2")

	up := &UploadRequest{Tenant: "acme", Agent: "a1", TaskID: tk.id, Trace: &WireTrace{}}
	resp, err := s.handleUpload(up)
	if err != nil {
		t.Fatalf("first upload: %v", err)
	}
	if !resp.Accepted || resp.Duplicate {
		t.Fatalf("first upload = %+v, want accepted non-duplicate", resp)
	}
	select {
	case <-tk.doneCh:
	default:
		t.Fatal("task not marked done after upload")
	}

	// A retried delivery of the same task must admit exactly once.
	resp, err = s.handleUpload(up)
	if err != nil {
		t.Fatalf("retried upload: %v", err)
	}
	if !resp.Accepted || !resp.Duplicate {
		t.Fatalf("retried upload = %+v, want accepted duplicate", resp)
	}

	// An upload for a task the server never issued is acknowledged as a
	// duplicate so the agent moves on.
	resp, err = s.handleUpload(&UploadRequest{Tenant: "acme", Agent: "a1", TaskID: 9999, Crashed: true})
	if err != nil {
		t.Fatalf("unknown-task upload: %v", err)
	}
	if !resp.Duplicate {
		t.Fatalf("unknown-task upload = %+v, want duplicate", resp)
	}

	c, _ := s.Snapshot()
	if c.Uploads != 1 || c.DuplicateUploads != 2 {
		t.Fatalf("counters = %+v, want 1 upload and 2 duplicates", c)
	}
}

func TestUploadRequiresTraceOrCrashMarker(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	tk := enqueueTask(s, "acme", "pbzip2")
	_, err := s.handleUpload(&UploadRequest{Tenant: "acme", TaskID: tk.id})
	if err == nil {
		t.Fatal("upload with neither trace nor crash marker was accepted")
	}
}

func TestChecksumMismatchRejectedBeforeDecode(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()

	body := []byte(`{"tenant":"acme","bug":"pbzip2"}`)
	req := httptest.NewRequest(http.MethodPost, PathStatus, bytes.NewReader(body))
	req.Header.Set(ChecksumHeader, "12345") // wrong on purpose
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("corrupted body got %d, want 400", rec.Code)
	}
	c, _ := s.Snapshot()
	if c.BadChecksum != 1 {
		t.Fatalf("BadChecksum = %d, want 1", c.BadChecksum)
	}

	// The same body with the right checksum decodes fine.
	req = httptest.NewRequest(http.MethodPost, PathStatus, bytes.NewReader(body))
	req.Header.Set(ChecksumHeader, BodyChecksum(body))
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("clean body got %d, want 200: %s", rec.Code, rec.Body)
	}
}

func TestPollTimesOutEmpty(t *testing.T) {
	s := NewServer(Options{PollTimeout: 50 * time.Millisecond})
	defer s.Close()
	start := time.Now()
	resp, err := s.handlePoll(&PollRequest{Tenant: "acme", Agent: "a1", WaitMs: 20})
	if err != nil {
		t.Fatalf("poll: %v", err)
	}
	if resp.Task != nil {
		t.Fatalf("poll on empty queue returned task %+v", resp.Task)
	}
	if time.Since(start) > time.Second {
		t.Fatal("empty poll blocked far past its wait")
	}
}

func TestPollDeliversQueuedTask(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	tk := enqueueTask(s, "acme", "pbzip2")
	resp, err := s.handlePoll(&PollRequest{Tenant: "acme", Agent: "a1", WaitMs: 100})
	if err != nil {
		t.Fatalf("poll: %v", err)
	}
	if resp.Task == nil || resp.Task.TaskID != tk.id {
		t.Fatalf("poll = %+v, want task %d", resp.Task, tk.id)
	}
	if resp.Task.Spec.Seed != 42 || resp.Task.Spec.EndpointID != 7 {
		t.Fatalf("task spec = %+v did not survive the wire", resp.Task.Spec)
	}
	if resp.Task.Attempt != 1 {
		t.Fatalf("attempt = %d, want 1 on first lease", resp.Task.Attempt)
	}
}

func TestLeaseExpiryReassignsTask(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(Options{LeaseTTL: 40 * time.Millisecond, MaxTaskAttempts: 5, Now: clk.Now})
	defer s.Close()
	tk := enqueueTask(s, "acme", "pbzip2")

	// Agent a1 takes the task and vanishes.
	resp, err := s.handlePoll(&PollRequest{Tenant: "acme", Agent: "a1", WaitMs: 100})
	if err != nil || resp.Task == nil {
		t.Fatalf("first poll = %+v, %v", resp, err)
	}

	// Step the clock past the lease and run one reaper sweep: the task
	// requeues and a2 picks it up — no wall-clock waiting.
	clk.Advance(50 * time.Millisecond)
	s.reapOnce(clk.Now())
	got, err := s.handlePoll(&PollRequest{Tenant: "acme", Agent: "a2", WaitMs: 100})
	if err != nil {
		t.Fatalf("poll: %v", err)
	}
	if got.Task == nil || got.Task.TaskID != tk.id {
		t.Fatalf("reassigned poll = %+v, want task %d", got.Task, tk.id)
	}
	if got.Task.Attempt != 2 {
		t.Fatalf("reassigned attempt = %d, want 2", got.Task.Attempt)
	}
	c, _ := s.Snapshot()
	if c.Reassigned == 0 {
		t.Fatal("Reassigned counter never incremented")
	}

	// The reassigned agent's upload completes the task normally.
	ur, err := s.handleUpload(&UploadRequest{Tenant: "acme", Agent: "a2", TaskID: tk.id, Trace: &WireTrace{}})
	if err != nil || !ur.Accepted || ur.Duplicate {
		t.Fatalf("upload after reassignment = %+v, %v", ur, err)
	}
}

func TestTaskLostAfterAttemptBudget(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(Options{LeaseTTL: 30 * time.Millisecond, MaxTaskAttempts: 1, Now: clk.Now})
	defer s.Close()
	tk := enqueueTask(s, "acme", "pbzip2")
	if r, err := s.handlePoll(&PollRequest{Tenant: "acme", Agent: "a1", WaitMs: 100}); err != nil || r.Task == nil {
		t.Fatalf("poll = %+v, %v", r, err)
	}
	// The only allowed attempt expires; the next sweep writes it off.
	clk.Advance(40 * time.Millisecond)
	s.reapOnce(clk.Now())
	select {
	case <-tk.doneCh:
	default:
		t.Fatal("task not written off after its only lease expired")
	}
	s.mu.Lock()
	lost := tk.lost
	s.mu.Unlock()
	if !lost {
		t.Fatal("task done but not marked lost")
	}
	c, _ := s.Snapshot()
	if c.LostTasks != 1 {
		t.Fatalf("LostTasks = %d, want 1", c.LostTasks)
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(Options{LeaseTTL: 60 * time.Millisecond, MaxTaskAttempts: 5, Now: clk.Now})
	defer s.Close()
	tk := enqueueTask(s, "acme", "pbzip2")
	if r, err := s.handlePoll(&PollRequest{Tenant: "acme", Agent: "a1", WaitMs: 100}); err != nil || r.Task == nil {
		t.Fatalf("poll = %+v, %v", r, err)
	}
	// Heartbeat across 5 lease lifetimes of fake time, sweeping the
	// reaper at every step; the task must stay leased to a1.
	for i := 0; i < 15; i++ {
		if _, err := s.handleHeartbeat(&HeartbeatRequest{Tenant: "acme", Agent: "a1"}); err != nil {
			t.Fatalf("heartbeat: %v", err)
		}
		clk.Advance(20 * time.Millisecond)
		s.reapOnce(clk.Now())
	}
	s.mu.Lock()
	agent, attempt := tk.agent, tk.attempt
	s.mu.Unlock()
	if agent != "a1" || attempt != 1 {
		t.Fatalf("task after heartbeats: agent=%q attempt=%d, want still leased to a1 on attempt 1", agent, attempt)
	}
}

func TestSubmitUnknownBugRejected(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	_, err := s.handleSubmit(&SubmitRequest{Tenant: "acme", Bug: "no-such-bug"})
	if err == nil {
		t.Fatal("submit of unknown bug was accepted")
	}
	if !strings.Contains(err.Error(), "no-such-bug") {
		t.Fatalf("error %q does not name the bug", err)
	}
}

func TestClientRetriesTransientServerErrors(t *testing.T) {
	hits := 0
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits < 3 {
			writeError(w, http.StatusServiceUnavailable, "warming up")
			return
		}
		w.Write([]byte(`{"state":"running"}`))
	})
	c := NewClient(ClientOptions{
		BaseURL:   "http://gist",
		Tenant:    "acme",
		Actor:     "cli",
		Transport: LoopbackTransport{Handler: mux},
		Sleep:     func(time.Duration) {},
	})
	var resp StatusResponse
	if err := c.Call(context.Background(), PathStatus, &StatusRequest{Tenant: "acme", Bug: "x"}, &resp); err != nil {
		t.Fatalf("call: %v", err)
	}
	if hits != 3 {
		t.Fatalf("hits = %d, want 3 (two 503s then success)", hits)
	}
	if resp.State != "running" {
		t.Fatalf("state = %q", resp.State)
	}
}

func TestClientDoesNotRetryDefinitiveRejections(t *testing.T) {
	hits := 0
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		hits++
		writeError(w, http.StatusBadRequest, "no")
	})
	c := NewClient(ClientOptions{
		BaseURL:   "http://gist",
		Transport: LoopbackTransport{Handler: mux},
		Sleep:     func(time.Duration) {},
	})
	err := c.Call(context.Background(), PathStatus, &StatusRequest{}, nil)
	if err == nil {
		t.Fatal("400 did not surface as an error")
	}
	if hits != 1 {
		t.Fatalf("hits = %d, want 1 (no retry on a definitive 400)", hits)
	}
}

// TestClientCorruptionRejectedThenRetried pins the corrupt-body story
// end to end: find a seed whose first attempt draws a Corrupt decision,
// then watch the server reject the damaged body on checksum and the
// clean retry succeed.
func TestClientCorruptionRejectedThenRetried(t *testing.T) {
	reqKey := PathStatus + "#1"
	seed := int64(-1)
	for cand := int64(1); cand < 4096; cand++ {
		inj := faults.NewInjector(faults.Transport(cand, 0.9))
		if inj.ForRequest("acme", "cli", reqKey, 0).Kind == faults.TransportCorrupt &&
			inj.ForRequest("acme", "cli", reqKey, 1).Kind == faults.TransportNone {
			seed = cand
			break
		}
	}
	if seed < 0 {
		t.Fatal("no seed with (corrupt, clean) attempts in range — fault stream changed?")
	}

	s := NewServer(Options{})
	defer s.Close()
	c := NewClient(ClientOptions{
		BaseURL:   "http://gist",
		Tenant:    "acme",
		Actor:     "cli",
		Faults:    faults.Transport(seed, 0.9),
		Transport: LoopbackTransport{Handler: s.Handler()},
		Sleep:     func(time.Duration) {},
	})
	var resp StatusResponse
	if err := c.Call(context.Background(), PathStatus, &StatusRequest{Tenant: "acme", Bug: "x"}, &resp); err != nil {
		t.Fatalf("call through corruption: %v", err)
	}
	if resp.State != StateUnknown {
		t.Fatalf("state = %q, want %q", resp.State, StateUnknown)
	}
	counters, _ := s.Snapshot()
	if counters.BadChecksum == 0 {
		t.Fatal("server never saw the corrupted body")
	}
}

func TestClientBackoffCappedWithJitter(t *testing.T) {
	c := NewClient(ClientOptions{BackoffBase: 10 * time.Millisecond, BackoffCap: 80 * time.Millisecond})
	for n := 1; n < 20; n++ {
		d := c.backoff(n)
		if d <= 0 {
			t.Fatalf("backoff(%d) = %v, want positive", n, d)
		}
		if d > 120*time.Millisecond { // cap × 1.5 jitter ceiling
			t.Fatalf("backoff(%d) = %v exceeds jittered cap", n, d)
		}
	}
	// Early attempts must be shorter than the cap on average.
	if d := c.backoff(1); d > 15*time.Millisecond {
		t.Fatalf("backoff(1) = %v, want ≈ base", d)
	}
}
