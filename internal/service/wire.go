// Package service is the Gist diagnosis service: an HTTP/JSON wire
// protocol between the central server and remote endpoint agents,
// promoting the paper's deployment topology (§3.3: one server driving
// 1,136 cooperating endpoints) from in-process function calls to a real
// transport.
//
// The server accepts failure reports, schedules one diagnosis campaign
// per (tenant, bug) on the existing sched + supervise stack, streams
// tracking plans to agents, collects run traces, and serves finished
// sketches. Agents register, long-poll for work, execute production
// runs through the same core.RunInstrumented path the in-process fleet
// uses, and upload traces.
//
// Correctness across an unreliable wire rests on four properties:
//
//   - Determinism. A production run is a pure function of (plan, spec,
//     fault decision), and the campaign admits results strictly in
//     dispatch order — so where a run executes (in-process worker,
//     remote agent, a different remote agent after a reassignment)
//     cannot change a byte of the diagnosis.
//   - Idempotency. Every task has a server-assigned ID that doubles as
//     the upload's idempotency key: retried or duplicated uploads admit
//     exactly once.
//   - Leases. An agent holds a task under a lease; a lease that expires
//     (agent death, network partition) sends the task back to the queue
//     for reassignment. Tasks that exhaust their attempt budget — or
//     that sit unassigned while no live agent exists — are reported
//     lost, which feeds the campaign's existing retry/quorum machinery
//     and degrades the sketch to low-confidence instead of hanging.
//   - Checksums. Every request body carries a CRC-32C; a corrupted body
//     is rejected before decoding and the client retries.
//
// The wire never ships a fault decision or a tracking plan: both are
// pure functions of data the agent already has (the bug's compiled
// program, the shipped window and feature gates, the shipped endpoint
// fault Config), so the agent re-derives them locally. That keeps every
// unexported-field type off the wire and makes a corrupted plan
// impossible by construction.
package service

import (
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/hw/pt"
	"repro/internal/hw/watch"
	"repro/internal/vm"
)

// Wire paths. All task-flow endpoints are POST + JSON; the sketch and
// status reads are POSTs too so every call shares one checksummed
// codec.
const (
	PathSubmit    = "/v1/reports"
	PathStatus    = "/v1/status"
	PathSketch    = "/v1/sketch"
	PathRegister  = "/v1/agents/register"
	PathPoll      = "/v1/agents/poll"
	PathHeartbeat = "/v1/agents/heartbeat"
	PathUpload    = "/v1/traces"
	PathHealthz   = "/v1/healthz"
	PathHealth    = "/v1/health"
)

// ChecksumHeader carries the CRC-32C (Castagnoli) of the request body,
// in decimal. The server rejects a body whose checksum disagrees with
// HTTP 400 before decoding a byte of JSON.
const ChecksumHeader = "X-Gist-Crc32c"

// RetryAfterMsHeader carries the server's shed back-pressure hint in
// milliseconds alongside the standard integer-seconds Retry-After
// header. Sub-second token-bucket refills need the precision; clients
// prefer this header and fall back to Retry-After.
const RetryAfterMsHeader = "X-Gist-Retry-After-Ms"

var wireCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// BodyChecksum returns the wire checksum of a request body.
func BodyChecksum(body []byte) string {
	return strconv.FormatUint(uint64(crc32.Checksum(body, wireCastagnoli)), 10)
}

// SubmitRequest asks the server to diagnose one failure for one tenant.
// When Report is set the submit is a production failure report: the
// server dedups on the report's failure signature (vm.FailureReport.ID),
// so two distinct root causes filed under one bug name stay two
// campaigns, and every recurrence of a known signature folds into the
// live campaign as evidence instead of launching a duplicate. A nil
// Report asks the server to discover the failure itself and dedups on
// the bug name alone (the pre-ingest behavior).
type SubmitRequest struct {
	Tenant string `json:"tenant"`
	Bug    string `json:"bug"`
	// Report is the observed failure; nil means server-side discovery.
	Report *vm.FailureReport `json:"report,omitempty"`
	// Seed is the production run seed that produced Report (recorded as
	// cluster evidence).
	Seed int64 `json:"seed,omitempty"`
	// DiscoveryRuns is how many runs the reporter needed to hit the
	// failure — the campaign's run-budget accounting needs it to match a
	// server-side discovery byte for byte.
	DiscoveryRuns int `json:"discovery_runs,omitempty"`
	// DeadlineMs bounds the diagnosis end to end, relative to admission
	// (0 = none). The server stamps an absolute deadline on the campaign
	// and its tasks, ships the remaining budget to agents with each
	// lease, and fails the campaign — rather than serving a partial
	// sketch — when the deadline expires.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// SubmitResponse acknowledges a submission.
type SubmitResponse struct {
	Tenant string `json:"tenant"`
	Bug    string `json:"bug"`
	// Signature is the failure signature the report was deduped on; ""
	// for a discovery submit.
	Signature string `json:"signature,omitempty"`
	// Duplicate marks a report folded into an existing campaign.
	Duplicate bool `json:"duplicate,omitempty"`
	// Reports is the signature's recurrence count including this report.
	Reports int `json:"reports,omitempty"`
}

// StatusRequest asks for one campaign's state. Signature selects among
// campaigns filed under one bug name; "" addresses the discovery-submit
// campaign.
type StatusRequest struct {
	Tenant    string `json:"tenant"`
	Bug       string `json:"bug"`
	Signature string `json:"signature,omitempty"`
}

// Campaign states reported by StatusResponse.
const (
	StateUnknown = "unknown" // no such campaign
	// StateQueued marks an admitted novel signature parked in the
	// bounded launch queue behind the global in-flight cap.
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
	// StateDrained marks a campaign checkpointed and suspended by a
	// server drain; its diagnosis resumes from the durable generation.
	StateDrained = "drained"
)

// StatusResponse reports a campaign's state.
type StatusResponse struct {
	State         string `json:"state"`
	Err           string `json:"err,omitempty"`
	LowConfidence bool   `json:"low_confidence,omitempty"`
	Restarts      int    `json:"restarts,omitempty"`
}

// SketchRequest asks for a finished sketch. Signature selects among
// campaigns filed under one bug name, as in StatusRequest.
type SketchRequest struct {
	Tenant    string `json:"tenant"`
	Bug       string `json:"bug"`
	Signature string `json:"signature,omitempty"`
}

// SketchResponse carries the finished sketch. Sketch holds the exact
// bytes of the sketch's indented-JSON rendering — the server marshals
// once and ships verbatim, so a loopback client and an in-process run
// can be diffed byte for byte.
type SketchResponse struct {
	Ready  bool   `json:"ready"`
	Sketch []byte `json:"sketch,omitempty"`
}

// RegisterRequest announces an agent to the server.
type RegisterRequest struct {
	Tenant string `json:"tenant"`
	Agent  string `json:"agent"`
}

// RegisterResponse acknowledges registration and tells the agent its
// lease terms.
type RegisterResponse struct {
	LeaseMs int64 `json:"lease_ms"`
}

// PollRequest long-polls for one task. The server holds the request
// open up to WaitMs (capped by the server's poll timeout) when no work
// is queued. Polling also renews the agent's liveness.
type PollRequest struct {
	Tenant string `json:"tenant"`
	Agent  string `json:"agent"`
	WaitMs int64  `json:"wait_ms"`
}

// PollResponse carries at most one task; Task is nil when the poll
// timed out empty.
type PollResponse struct {
	Task *WireTask `json:"task,omitempty"`
}

// HeartbeatRequest renews the leases of an agent mid-run, so a long
// production run is not mistaken for a dead agent.
type HeartbeatRequest struct {
	Tenant string `json:"tenant"`
	Agent  string `json:"agent"`
}

// HeartbeatResponse acknowledges a heartbeat.
type HeartbeatResponse struct {
	OK bool `json:"ok"`
}

// WireTask is one production run assigned to an agent. The agent
// rebuilds the tracking plan locally with core.BuildPlan over its own
// compiled copy of Bug's program — BuildPlan is deterministic, so the
// shipped instruction window and feature gates pin the plan exactly —
// and re-derives the endpoint fault decision from Faults, which is a
// pure function of (Faults.Seed, Spec.EndpointID, Spec.Seed).
type WireTask struct {
	TaskID  uint64        `json:"task_id"`
	Tenant  string        `json:"tenant"`
	Bug     string        `json:"bug"`
	Window  []int         `json:"window"`
	Feats   core.Features `json:"feats"`
	Spec    core.RunSpec  `json:"spec"`
	Faults  faults.Config `json:"faults"`
	Attempt int           `json:"attempt"`
	// DeadlineMs is the run budget remaining at lease time: 0 means no
	// deadline, negative means the deadline already passed and the agent
	// must decline the run (the reaper writes it off server-side).
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// UploadRequest delivers one finished run. TaskID is the idempotency
// key: the server admits each task's trace exactly once, no matter how
// many times a retry or a duplicating network delivers it. Crashed
// marks a run whose endpoint fault decision killed it — the agent is
// alive, the simulated endpoint died, and the server must admit a nil
// trace (distinct from an agent that vanished, which the lease reaper
// handles).
type UploadRequest struct {
	Tenant  string     `json:"tenant"`
	Agent   string     `json:"agent"`
	TaskID  uint64     `json:"task_id"`
	Crashed bool       `json:"crashed,omitempty"`
	Trace   *WireTrace `json:"trace,omitempty"`
}

// UploadResponse acknowledges an upload. Duplicate marks a delivery
// the idempotency key already admitted (or a task the server had
// already written off); the agent treats both as success.
type UploadResponse struct {
	Accepted  bool `json:"accepted"`
	Duplicate bool `json:"duplicate,omitempty"`
}

// ErrorResponse is the JSON body of every non-200 reply.
type ErrorResponse struct {
	Err string `json:"err"`
}

// HealthResponse is the /v1/health readiness report: queue depths, shed
// counters, and the fleet-health aggregate across finished campaigns.
// Unlike the liveness probe (/v1/healthz, always 200 while the process
// runs), /v1/health answers 503 when the server is draining or its
// launch queue is full — the signal a load balancer needs to steer
// submits elsewhere.
type HealthResponse struct {
	Ready    bool `json:"ready"`
	Draining bool `json:"draining,omitempty"`
	// InflightCampaigns is how many campaigns hold a launch slot;
	// QueuedLaunches how many admitted novel signatures are parked
	// behind the in-flight cap (including ones racing to a free slot),
	// and MaxQueuedLaunches the high-water mark of occupancy beyond the
	// cap over the server's life — the admission gate bounds it by the
	// launch budget.
	InflightCampaigns int `json:"inflight_campaigns"`
	QueuedLaunches    int `json:"queued_launches"`
	MaxQueuedLaunches int `json:"max_queued_launches"`
	// QueuedTasks is the sum of all tenants' dispatch queues; DoneTasks
	// the retained idempotency keys (both bounded: tasks by the
	// in-flight cap, keys by TTL + MaxDoneTasks).
	QueuedTasks int `json:"queued_tasks"`
	DoneTasks   int `json:"done_tasks"`
	// Counters are the server's scalar health counters, shed and hedge
	// counters included.
	Counters Counters `json:"counters"`
	// Fleet aggregates FleetHealth across every finished campaign.
	Fleet core.FleetHealth `json:"fleet"`
}

// WireTrace is core.RunTrace flattened for JSON: the executed-set map
// becomes a sorted slice, the cost meter its two raw counters, and the
// decode error a string. Everything else round-trips as-is — every
// field the admission path reads is exported and JSON-safe.
type WireTrace struct {
	Spec           core.RunSpec           `json:"spec"`
	Outcome        *vm.Outcome            `json:"outcome,omitempty"`
	Flow           map[int][]int          `json:"flow"`
	Branches       map[int][]pt.BranchObs `json:"branches,omitempty"`
	Executed       []int                  `json:"executed"`
	Traps          []watch.Trap           `json:"traps,omitempty"`
	WatchMisses    int                    `json:"watch_misses,omitempty"`
	BaseMC         int64                  `json:"base_mc"`
	ExtraMC        int64                  `json:"extra_mc"`
	DecodeErr      string                 `json:"decode_err,omitempty"`
	SalvagedCores  int                    `json:"salvaged_cores,omitempty"`
	Late           bool                   `json:"late,omitempty"`
	DroppedTraps   int                    `json:"dropped_traps,omitempty"`
	ReorderedTraps int                    `json:"reordered_traps,omitempty"`
	Truncated      faults.TruncateKind    `json:"truncated,omitempty"`
}

// EncodeTrace flattens a run trace for the wire. Nil stays nil (a
// crashed endpoint).
func EncodeTrace(rt *core.RunTrace) *WireTrace {
	if rt == nil {
		return nil
	}
	executed := make([]int, 0, len(rt.Executed))
	for id, on := range rt.Executed {
		if on {
			executed = append(executed, id)
		}
	}
	sort.Ints(executed)
	base, extra := rt.Meter.MC()
	w := &WireTrace{
		Spec:           rt.Spec,
		Outcome:        rt.Outcome,
		Flow:           rt.Flow,
		Branches:       rt.Branches,
		Executed:       executed,
		Traps:          rt.Traps,
		WatchMisses:    rt.WatchMisses,
		BaseMC:         base,
		ExtraMC:        extra,
		SalvagedCores:  rt.SalvagedCores,
		Late:           rt.Late,
		DroppedTraps:   rt.DroppedTraps,
		ReorderedTraps: rt.ReorderedTraps,
		Truncated:      rt.Truncated,
	}
	if rt.DecodeErr != nil {
		w.DecodeErr = rt.DecodeErr.Error()
	}
	return w
}

// DecodeTrace rebuilds a run trace from the wire. The admission path
// only ever iterates or looks up the maps, so nil-vs-empty after a
// JSON round trip is behaviorally invisible; Executed and the meter
// are rebuilt exactly.
func DecodeTrace(w *WireTrace) *core.RunTrace {
	if w == nil {
		return nil
	}
	executed := make(map[int]bool, len(w.Executed))
	for _, id := range w.Executed {
		executed[id] = true
	}
	flow := w.Flow
	if flow == nil {
		flow = map[int][]int{}
	}
	rt := &core.RunTrace{
		Spec:           w.Spec,
		Outcome:        w.Outcome,
		Flow:           flow,
		Branches:       w.Branches,
		Executed:       executed,
		Traps:          w.Traps,
		WatchMisses:    w.WatchMisses,
		Meter:          cost.MeterFromMC(w.BaseMC, w.ExtraMC),
		SalvagedCores:  w.SalvagedCores,
		Late:           w.Late,
		DroppedTraps:   w.DroppedTraps,
		ReorderedTraps: w.ReorderedTraps,
		Truncated:      w.Truncated,
	}
	if w.DecodeErr != "" {
		rt.DecodeErr = fmt.Errorf("%s", w.DecodeErr)
	}
	return rt
}
