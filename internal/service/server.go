package service

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/ingest"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/supervise"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// Options tunes the diagnosis server. The zero value is usable: state
// lives on an in-memory backend, leases last 10 seconds, and campaigns
// are configured from the registered bug suite.
type Options struct {
	// Backend is the checkpoint medium; nil means in-memory (process
	// lifetime only). The CLI passes a DirBackend when -state-dir is
	// set.
	Backend store.Backend
	// StateRoot is the directory (on Backend) under which per-tenant
	// checkpoint stores live; "" means "state".
	StateRoot string
	// LeaseTTL is how long an agent holds a task before the reaper
	// reassigns it (default 10s).
	LeaseTTL time.Duration
	// PollTimeout caps how long a long-poll is held open (default 5s).
	PollTimeout time.Duration
	// MaxTaskAttempts is how many lease grants a task gets before it is
	// reported lost to the campaign (default 3).
	MaxTaskAttempts int
	// NoAgentTimeout is how long a queued task may sit with no live
	// agent in its tenant before it is reported lost, which lets a
	// campaign degrade to a low-confidence sketch instead of hanging
	// when the whole fleet vanishes (default 4×LeaseTTL).
	NoAgentTimeout time.Duration
	// StepTimeout is the supervisor watchdog deadline per campaign
	// step. Remote steps wait on real agents, so the default is a
	// generous 5 minutes — watchdog trips restore from checkpoint and
	// re-dispatch, they are for wedged campaigns, not slow fleets.
	StepTimeout time.Duration
	// NoFsync disables checkpoint fsync (mirrors the CLI flag).
	NoFsync bool
	// SketchCacheBytes bounds the LRU cache finished sketches are served
	// from (default 8 MiB; < 0 disables the bound). Evicted sketches are
	// re-rendered on demand from the campaign's checkpoint store, so the
	// cache keeps server memory flat without losing anything.
	SketchCacheBytes int64
	// DoneTaskTTL is how long a completed task's idempotency key is
	// retained for duplicate-upload detection before eviction (default
	// 4×LeaseTTL). Live tasks are never evicted.
	DoneTaskTTL time.Duration
	// MaxDoneTasks caps retained completed-task keys regardless of age
	// (default 65536, FIFO by completion).
	MaxDoneTasks int
	// MaxSeedsPerSignature bounds each failure signature's recorded seed
	// evidence (0 = 16, as in core.ClusterConfig).
	MaxSeedsPerSignature int
	// Placer, when non-nil, runs the server coordinator-only: submits
	// are placed on the shard fleet instead of diagnosed in-process, and
	// worker processes own the campaigns. Backend and StateRoot are
	// derived from the placer (the fleet's shared root) so the sketch
	// fetch path reads the workers' checkpoint stores unchanged.
	Placer *shard.Coordinator
	// PlacePoll is how often a coordinator-mode campaign polls the fleet
	// for its done record (default 150ms).
	PlacePoll time.Duration
	// TenantRPS caps each tenant's submit rate on /v1/reports with a
	// token bucket (tokens/sec); 0 disables rate limiting. A tenant
	// over its rate is bounced with HTTP 429 and a Retry-After telling
	// it when the next token accrues — the front-door gate that keeps
	// one flooding tenant from starving the rest.
	TenantRPS float64
	// TenantBurst is the bucket depth (max burst admitted at once);
	// 0 means max(1, ceil(2×TenantRPS)).
	TenantBurst int
	// MaxInflight caps concurrently running campaigns; 0 = unbounded.
	// Admitted novel signatures beyond it park in the launch queue.
	MaxInflight int
	// LaunchBudget bounds the launch queue behind the in-flight cap;
	// novel submits beyond it are shed with 429. 0 means 4×MaxInflight.
	// Ignored while MaxInflight is 0.
	LaunchBudget int
	// HedgeAfter floors the hedged-dispatch threshold: a leased task
	// running longer than max(HedgeAfter, p95 of completed run
	// durations) is speculatively re-dispatched to a second agent and
	// the first valid upload wins. 0 disables hedging.
	HedgeAfter time.Duration
	// ShedRetryAfter is the Retry-After advertised on a launch-budget
	// or drain shed (default 1s); rate-limit sheds compute theirs from
	// the bucket refill instead.
	ShedRetryAfter time.Duration
	// Now overrides the server's clock (leases, reaper, heartbeat
	// cutoff, done-task TTL, token buckets, deadlines); nil means
	// time.Now. Tests drive lease expiry without sleeping through it.
	Now func() time.Time
	// ConfigFor maps a bug name to its campaign configuration; nil
	// means the registered bug suite's GistConfig.
	ConfigFor func(bug string) (core.Config, error)
	// Telemetry receives service.* counters; nil is fine.
	Telemetry *telemetry.Tracer
	// Logf, when non-nil, receives one line per notable server event.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Placer != nil {
		// Coordinator mode: the fleet's shared medium is the server's
		// medium, so reloadSketch finds worker-written checkpoints.
		o.Backend = o.Placer.Backend()
		o.StateRoot = o.Placer.CheckpointRoot()
	}
	if o.PlacePoll <= 0 {
		o.PlacePoll = 150 * time.Millisecond
	}
	if o.Backend == nil {
		o.Backend = store.NewMemBackend()
	}
	if o.StateRoot == "" {
		o.StateRoot = "state"
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.PollTimeout <= 0 {
		o.PollTimeout = 5 * time.Second
	}
	if o.MaxTaskAttempts <= 0 {
		o.MaxTaskAttempts = 3
	}
	if o.NoAgentTimeout <= 0 {
		o.NoAgentTimeout = 4 * o.LeaseTTL
	}
	if o.StepTimeout <= 0 {
		o.StepTimeout = 5 * time.Minute
	}
	if o.SketchCacheBytes == 0 {
		o.SketchCacheBytes = 8 << 20
	}
	if o.DoneTaskTTL <= 0 {
		o.DoneTaskTTL = 4 * o.LeaseTTL
	}
	if o.MaxDoneTasks <= 0 {
		o.MaxDoneTasks = 65536
	}
	if o.TenantBurst <= 0 && o.TenantRPS > 0 {
		o.TenantBurst = int(math.Ceil(2 * o.TenantRPS))
		if o.TenantBurst < 1 {
			o.TenantBurst = 1
		}
	}
	if o.LaunchBudget <= 0 && o.MaxInflight > 0 {
		o.LaunchBudget = 4 * o.MaxInflight
	}
	if o.ShedRetryAfter <= 0 {
		o.ShedRetryAfter = time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.ConfigFor == nil {
		o.ConfigFor = func(bug string) (core.Config, error) {
			b := bugs.ByName(bug)
			if b == nil {
				return core.Config{}, fmt.Errorf("unknown bug %q", bug)
			}
			return b.GistConfig(), nil
		}
	}
	return o
}

// task is one dispatched production run in flight between the campaign
// and the agent fleet. All fields are guarded by the server mutex
// except doneCh, which is closed exactly once (under the mutex) when
// the task completes or is written off.
type task struct {
	id     uint64
	tenant string
	bug    string
	window []int
	feats  core.Features
	spec   core.RunSpec
	fcfg   faults.Config
	queued time.Time

	attempt    int // lease grants so far
	agent      string
	leaseUntil time.Time // zero while queued
	leasedAt   time.Time // when the current lease was granted
	// deadline is the campaign deadline stamped on the task (zero =
	// none); the reaper writes past-deadline tasks off.
	deadline time.Time
	// hedged marks a task the reaper speculatively re-dispatched after
	// its runtime crossed the hedge threshold; at most one hedge per
	// task, and the idempotency key admits whichever upload lands first.
	hedged bool

	done    bool
	doneAt  time.Time // when done became true; drives idempotency-key eviction
	lost    bool
	crashed bool
	trace   *core.RunTrace
	doneCh  chan struct{}
}

// waiter is one parked long-poll.
type waiter struct {
	agent string
	ch    chan *task // buffered 1; delivery happens under the mutex
}

// agentInfo is the server's view of one registered agent.
type agentInfo struct {
	lastSeen time.Time
}

// campaignState tracks one diagnosis end to end. Finished sketch bytes
// live in the server's LRU sketch cache (reloadable from the checkpoint
// store), not here — retaining them per campaign is exactly the
// unbounded growth the cache exists to prevent.
type campaignState struct {
	state         string
	err           error
	lowConfidence bool
	restarts      int
	done          chan struct{}
	// deadline is the absolute diagnosis deadline (zero = none);
	// expired is set by the reaper when it passes, and abort is closed
	// at the same moment so a launch parked in the queue unparks.
	deadline time.Time
	expired  bool
	abort    chan struct{}
}

// tenantState is one tenant's agents, queue, campaigns, and rate
// limiter.
type tenantState struct {
	name      string
	agents    map[string]*agentInfo
	queue     []*task
	waiters   []*waiter
	campaigns map[string]*campaignState // by campaignKey(bug, signature)
	bucket    *tokenBucket              // nil until the first submit under TenantRPS
}

// campaignKey names one diagnosis stream within a tenant: the bug name,
// refined by the failure signature for report submits. Discovery
// submits (no report, sig "") keep the bare bug name, so the pre-ingest
// wire behavior is unchanged for them.
func campaignKey(bug, sig string) string {
	if sig == "" {
		return bug
	}
	return bug + "#" + sig
}

// Server is the diagnosis service. Create with NewServer, expose
// Handler over any listener (or a LoopbackTransport), and Close when
// done.
type Server struct {
	opts Options

	front *ingest.Frontend
	cache *ingest.SketchCache

	mu       sync.Mutex
	tenants  map[string]*tenantState
	tasks    map[uint64]*task
	nextTask uint64
	// doneTasks holds completed tasks in completion order, the eviction
	// queue for idempotency keys (guarded by mu).
	doneTasks []*task
	// Admission state (guarded by mu): inflight campaigns hold a slot
	// in slotCh, launchQ counts admitted novel signatures parked behind
	// the cap, maxLaunchQ is its high-water mark, draining stops new
	// admissions, and sups tracks live supervisors for drain requests.
	inflight   int
	launchQ    int
	maxLaunchQ int
	draining   bool
	sups       map[*supervise.Supervisor]struct{}
	// runDur is a bounded ring of completed-run durations (ms) feeding
	// the hedge threshold's p95.
	runDur    []float64
	runDurPos int
	// health aggregates FleetHealth across finished campaigns.
	health core.FleetHealth

	// slotCh is the MaxInflight semaphore; nil when uncapped.
	slotCh chan struct{}

	metrics metrics

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	// campWG tracks campaign goroutines only (wg also covers the
	// reaper); drain waits on it.
	campWG sync.WaitGroup

	handler http.Handler
}

// NewServer returns a running server (reaper started, no listener).
func NewServer(opts Options) *Server {
	s := &Server{
		opts:    opts.withDefaults(),
		tenants: map[string]*tenantState{},
		tasks:   map[uint64]*task{},
		sups:    map[*supervise.Supervisor]struct{}{},
		closed:  make(chan struct{}),
	}
	if s.opts.MaxInflight > 0 {
		s.slotCh = make(chan struct{}, s.opts.MaxInflight)
	}
	s.front = ingest.NewFrontend(s.opts.MaxSeedsPerSignature)
	s.cache = ingest.NewSketchCache(s.opts.SketchCacheBytes)
	mux := http.NewServeMux()
	mux.HandleFunc(PathHealthz, s.handleHealthz)
	mux.HandleFunc(PathHealth, s.handleHealth)
	mux.HandleFunc(PathSubmit, jsonHandler(s, s.handleSubmit))
	mux.HandleFunc(PathStatus, jsonHandler(s, s.handleStatus))
	mux.HandleFunc(PathSketch, jsonHandler(s, s.handleSketch))
	mux.HandleFunc(PathRegister, jsonHandler(s, s.handleRegister))
	mux.HandleFunc(PathPoll, jsonHandler(s, s.handlePoll))
	mux.HandleFunc(PathHeartbeat, jsonHandler(s, s.handleHeartbeat))
	mux.HandleFunc(PathUpload, jsonHandler(s, s.handleUpload))
	s.handler = s.measure(mux)
	s.wg.Add(1)
	go s.reap()
	return s
}

// Handler returns the server's HTTP handler (checksum verification and
// latency metrics included).
func (s *Server) Handler() http.Handler { return s.handler }

// Close stops the reaper and writes off every in-flight task so
// campaign goroutines blocked on the fleet unwind. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.mu.Lock()
		for _, tk := range s.tasks {
			if !tk.done {
				s.markLost(tk)
			}
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
}

// WaitCampaign blocks until the (tenant, bug) discovery campaign
// finishes; it reports false when no such campaign exists.
func (s *Server) WaitCampaign(tenant, bug string) bool {
	return s.WaitCampaignSig(tenant, bug, "")
}

// WaitCampaignSig blocks until the campaign for one failure signature
// under (tenant, bug) finishes; "" addresses the discovery campaign.
func (s *Server) WaitCampaignSig(tenant, bug, sig string) bool {
	s.mu.Lock()
	t := s.tenants[tenant]
	var cs *campaignState
	if t != nil {
		cs = t.campaigns[campaignKey(bug, sig)]
	}
	s.mu.Unlock()
	if cs == nil {
		return false
	}
	<-cs.done
	return true
}

// now reads the injected clock.
func (s *Server) now() time.Time { return s.opts.Now() }

// ---- HTTP plumbing ----------------------------------------------------

// httpError is an error with a status code and, for shed replies, a
// Retry-After hint.
type httpError struct {
	code       int
	msg        string
	retryAfter time.Duration
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// overloaded builds the 429 shed reply: the standard Retry-After header
// (integer seconds, rounded up) plus the millisecond-precision header
// the wire client prefers.
func overloaded(retryAfter time.Duration, format string, args ...any) error {
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	return &httpError{
		code:       http.StatusTooManyRequests,
		msg:        fmt.Sprintf(format, args...),
		retryAfter: retryAfter,
	}
}

// jsonHandler adapts a typed handler: verify the body checksum, decode
// JSON, dispatch, encode the response. The checksum check runs before
// any decoding so a transport-corrupted body can never half-apply.
func jsonHandler[Req, Resp any](s *Server, f func(*Req) (*Resp, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "read body: %v", err)
			return
		}
		if want := r.Header.Get(ChecksumHeader); want != "" {
			if got := BodyChecksum(body); got != want {
				s.metrics.add(func(m *Counters) { m.BadChecksum++ })
				writeError(w, http.StatusBadRequest, "body checksum mismatch: have %s, header says %s", got, want)
				return
			}
		}
		var req Req
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, "decode request: %v", err)
			return
		}
		resp, err := f(&req)
		if err != nil {
			code := http.StatusInternalServerError
			if he, ok := err.(*httpError); ok {
				code = he.code
				if he.retryAfter > 0 {
					secs := int64(math.Ceil(he.retryAfter.Seconds()))
					if secs < 1 {
						secs = 1
					}
					w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
					w.Header().Set(RetryAfterMsHeader, strconv.FormatInt(he.retryAfter.Milliseconds(), 10))
				}
			}
			writeError(w, code, "%v", err)
			return
		}
		data, err := json.Marshal(resp)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "encode response: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	}
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, _ := json.Marshal(ErrorResponse{Err: fmt.Sprintf(format, args...)})
	w.Write(data)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// ---- handlers ---------------------------------------------------------

func (s *Server) handleSubmit(req *SubmitRequest) (*SubmitResponse, error) {
	if req.Tenant == "" || req.Bug == "" {
		return nil, badRequest("submit: tenant and bug are required")
	}
	if req.DiscoveryRuns < 0 {
		return nil, badRequest("submit: discovery_runs must be >= 0, got %d", req.DiscoveryRuns)
	}
	if req.DeadlineMs < 0 {
		return nil, badRequest("submit: deadline_ms must be >= 0, got %d", req.DeadlineMs)
	}
	cfg, err := s.opts.ConfigFor(req.Bug)
	if err != nil {
		return nil, badRequest("submit: %v", err)
	}
	// Ingest under the server mutex so the dedup decision and the
	// campaign registration are one atomic step: exactly the Novel
	// caller registers, everyone else observes the registered campaign.
	// The admission gates run under the same lock, before the ingest
	// mutation, so a shed report leaves no trace in the frontend.
	s.mu.Lock()
	now := s.now()
	t := s.tenant(req.Tenant)
	// Gate 1: per-tenant rate limit. Every submit — fold or novel —
	// spends a token; a flooding tenant is bounced here with the time
	// until its next token as the Retry-After.
	if s.opts.TenantRPS > 0 {
		if t.bucket == nil {
			t.bucket = newTokenBucket(s.opts.TenantRPS, s.opts.TenantBurst)
		}
		if ok, ra := t.bucket.take(now); !ok {
			s.mu.Unlock()
			s.metrics.add(func(m *Counters) { m.ShedRateLimited++ })
			s.opts.Telemetry.AddL(req.Tenant, "service.shed_rate_limited", 1)
			return nil, overloaded(ra, "submit: tenant %s over its rate limit (%g/s)", req.Tenant, s.opts.TenantRPS)
		}
	}
	if s.draining {
		s.mu.Unlock()
		s.metrics.add(func(m *Counters) { m.ShedLaunches++ })
		return nil, overloaded(s.opts.ShedRetryAfter, "submit: server is draining")
	}
	// Gate 2: priority shedding. A recurrence fold is an O(1) cluster
	// update and always admitted past this point; a novel signature
	// must launch a campaign, which queues behind the in-flight cap up
	// to the launch budget and is shed beyond it. The novelty probe is
	// read-only: a shed report must stay novel for its retry.
	// The bound is on total occupancy (running + parked) rather than on
	// the two counts separately: a just-admitted campaign sits in
	// launchQ until its goroutine grabs a slot, and checking the counts
	// separately would let submits racing that handoff overshoot the
	// queue bound.
	novel := !s.front.Known(req.Tenant, req.Bug, req.Report)
	if novel && s.slotCh != nil && s.inflight+s.launchQ >= s.opts.MaxInflight+s.opts.LaunchBudget {
		inflight, queued := s.inflight, s.launchQ
		s.mu.Unlock()
		s.metrics.add(func(m *Counters) { m.ShedLaunches++ })
		s.opts.Telemetry.AddL(req.Tenant, "service.shed_launches", 1)
		return nil, overloaded(s.opts.ShedRetryAfter,
			"submit: launch queue full (%d campaigns in flight, %d queued)", inflight, queued)
	}
	dec := s.front.Ingest(req.Tenant, req.Bug, req.Report, req.Seed)
	resp := &SubmitResponse{
		Tenant: req.Tenant, Bug: req.Bug,
		Signature: dec.Key.Sig, Reports: dec.Reports,
	}
	if !dec.Novel {
		s.mu.Unlock()
		s.metrics.add(func(m *Counters) { m.FoldedReports++ })
		resp.Duplicate = true
		return resp, nil
	}
	cs := &campaignState{state: StateRunning, done: make(chan struct{}), abort: make(chan struct{})}
	if req.DeadlineMs > 0 {
		cs.deadline = now.Add(time.Duration(req.DeadlineMs) * time.Millisecond)
	}
	key := campaignKey(req.Bug, dec.Key.Sig)
	t.campaigns[key] = cs
	if s.slotCh != nil {
		// Account the launch-queue seat under the same lock as the
		// budget check, so the bound can never be overshot by a race.
		cs.state = StateQueued
		s.launchQ++
		// The high-water mark counts campaigns parked beyond the
		// in-flight cap, not raw launchQ: a just-admitted campaign sits
		// in launchQ until its goroutine grabs a free slot, and that
		// transient would read as queue growth. The occupancy gate
		// bounds this excess by exactly LaunchBudget.
		if excess := s.inflight + s.launchQ - s.opts.MaxInflight; excess > s.maxLaunchQ {
			s.maxLaunchQ = excess
		}
	}
	s.mu.Unlock()
	s.metrics.add(func(m *Counters) { m.NovelSignatures++ })

	s.logf("submit: tenant=%s bug=%s sig=%q deadline_ms=%d", req.Tenant, req.Bug, dec.Key.Sig, req.DeadlineMs)
	s.wg.Add(1)
	s.campWG.Add(1)
	if s.opts.Placer != nil {
		go s.launch(cs, tenantKeyLabel(req.Tenant, key), func() {
			s.placeCampaign(cs, req.Tenant, req.Bug, key, dec.Key.Sig, req.Report, req.DiscoveryRuns)
		})
	} else {
		go s.launch(cs, tenantKeyLabel(req.Tenant, key), func() {
			s.runCampaign(cs, req.Tenant, req.Bug, key, cfg, req.Report, req.DiscoveryRuns)
		})
	}
	return resp, nil
}

// tenantKeyLabel names a campaign for logs.
func tenantKeyLabel(tenant, key string) string { return tenant + "/" + key }

// launch runs one admitted campaign under the global in-flight cap:
// park in the bounded launch queue until a slot frees (or the deadline
// reaper, a drain-less Close, aborts the wait), then run. run must not
// touch wg/campWG itself.
func (s *Server) launch(cs *campaignState, label string, run func()) {
	defer s.wg.Done()
	defer s.campWG.Done()
	if s.slotCh != nil {
		select {
		case s.slotCh <- struct{}{}:
		case <-cs.abort:
			s.mu.Lock()
			s.launchQ--
			cs.state = StateFailed
			cs.err = fmt.Errorf("deadline exceeded before launch")
			close(cs.done)
			s.mu.Unlock()
			s.metrics.add(func(m *Counters) { m.DeadlineExpired++ })
			s.logf("campaign %s shed from launch queue: deadline exceeded", label)
			return
		case <-s.closed:
			s.mu.Lock()
			s.launchQ--
			cs.state = StateFailed
			cs.err = fmt.Errorf("server closed while queued for launch")
			close(cs.done)
			s.mu.Unlock()
			return
		}
		s.mu.Lock()
		s.launchQ--
		s.inflight++
		if cs.state == StateQueued {
			cs.state = StateRunning
		}
		s.mu.Unlock()
		defer func() {
			s.mu.Lock()
			s.inflight--
			s.mu.Unlock()
			<-s.slotCh
		}()
	} else {
		s.mu.Lock()
		s.inflight++
		s.mu.Unlock()
		defer func() {
			s.mu.Lock()
			s.inflight--
			s.mu.Unlock()
		}()
	}
	run()
}

// placeCampaign is runCampaign's coordinator-mode counterpart: publish
// the assignment to the shard fleet, then poll for the done record a
// worker publishes. The worker checkpoints under the server's StateRoot
// with the same layout runCampaign uses, so sketch fetch and reload are
// oblivious to which process diagnosed the bug.
func (s *Server) placeCampaign(cs *campaignState, tenant, bug, key, sig string, report *vm.FailureReport, discRuns int) {
	fail := func(err error) {
		s.mu.Lock()
		cs.state = StateFailed
		cs.err = err
		close(cs.done)
		s.mu.Unlock()
		s.logf("campaign failed: tenant=%s key=%s: %v", tenant, key, err)
	}
	if _, err := s.opts.Placer.Assign(shard.Assignment{
		Tenant: tenant, Bug: bug, Key: key, Signature: sig,
		Report: report, DiscoveryRuns: discRuns,
	}); err != nil {
		fail(fmt.Errorf("place: %w", err))
		return
	}
	tick := time.NewTicker(s.opts.PlacePoll)
	defer tick.Stop()
	for {
		select {
		case <-s.closed:
			fail(fmt.Errorf("server closed while campaign was on the fleet"))
			return
		case <-tick.C:
		}
		rec, err := s.opts.Placer.Done(tenant, key)
		if err != nil || rec == nil {
			continue
		}
		if rec.Err != "" {
			fail(fmt.Errorf("worker %s: %s", rec.Worker, rec.Err))
			return
		}
		s.cache.Put(tenant+"/"+key, rec.Sketch)
		s.mu.Lock()
		cs.state = StateDone
		cs.lowConfidence = rec.LowConfidence
		cs.restarts = rec.Restarts
		close(cs.done)
		s.mu.Unlock()
		s.logf("campaign done (fleet): tenant=%s key=%s worker=%s low_confidence=%v restarts=%d",
			tenant, key, rec.Worker, rec.LowConfidence, rec.Restarts)
		return
	}
}

func (s *Server) handleStatus(req *StatusRequest) (*StatusResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[req.Tenant]
	if t == nil {
		return &StatusResponse{State: StateUnknown}, nil
	}
	cs := t.campaigns[campaignKey(req.Bug, req.Signature)]
	if cs == nil {
		return &StatusResponse{State: StateUnknown}, nil
	}
	resp := &StatusResponse{
		State:         cs.state,
		LowConfidence: cs.lowConfidence,
		Restarts:      cs.restarts,
	}
	if cs.err != nil {
		resp.Err = cs.err.Error()
	}
	return resp, nil
}

func (s *Server) handleSketch(req *SketchRequest) (*SketchResponse, error) {
	key := campaignKey(req.Bug, req.Signature)
	s.mu.Lock()
	t := s.tenants[req.Tenant]
	var cs *campaignState
	if t != nil {
		cs = t.campaigns[key]
	}
	done := cs != nil && cs.state == StateDone
	s.mu.Unlock()
	if !done {
		return &SketchResponse{}, nil
	}
	ck := req.Tenant + "/" + key
	if sketch := s.cache.Get(ck); sketch != nil {
		return &SketchResponse{Ready: true, Sketch: sketch}, nil
	}
	// Cache miss: the sketch was evicted (or the cache is tiny).
	// Re-render it from the campaign's durable checkpoint — the
	// supervisor saved the finished snapshot, so the bytes come back
	// identical.
	sketch, err := s.reloadSketch(req.Tenant, req.Bug, key)
	if err != nil {
		return nil, fmt.Errorf("sketch: reload %s/%s: %w", req.Tenant, key, err)
	}
	s.metrics.add(func(m *Counters) { m.SketchReloads++ })
	s.cache.Put(ck, sketch)
	return &SketchResponse{Ready: true, Sketch: sketch}, nil
}

// reloadSketch re-renders a finished campaign's sketch bytes from its
// checkpoint store. Called outside the server mutex (store access may
// touch disk).
func (s *Server) reloadSketch(tenant, bug, key string) ([]byte, error) {
	cfg, err := s.opts.ConfigFor(bug)
	if err != nil {
		return nil, err
	}
	ckpt, err := store.Open(
		filepath.Join(s.opts.StateRoot, sanitizeLabel(tenant)), sanitizeLabel(key),
		store.Options{Backend: s.opts.Backend, NoFsync: true, Telemetry: s.opts.Telemetry})
	if err != nil {
		return nil, err
	}
	latest := ckpt.Latest()
	if latest == nil {
		return nil, fmt.Errorf("no checkpoint generations")
	}
	snap, err := core.DecodeCampaignSnapshot(latest.Payload)
	if err != nil {
		return nil, err
	}
	return snap.RenderSketchJSON(cfg.Prog)
}

func (s *Server) handleRegister(req *RegisterRequest) (*RegisterResponse, error) {
	if req.Tenant == "" || req.Agent == "" {
		return nil, badRequest("register: tenant and agent are required")
	}
	s.mu.Lock()
	t := s.tenant(req.Tenant)
	t.touch(req.Agent, s.now())
	s.mu.Unlock()
	s.logf("register: tenant=%s agent=%s", req.Tenant, req.Agent)
	return &RegisterResponse{LeaseMs: s.opts.LeaseTTL.Milliseconds()}, nil
}

func (s *Server) handlePoll(req *PollRequest) (*PollResponse, error) {
	if req.Tenant == "" || req.Agent == "" {
		return nil, badRequest("poll: tenant and agent are required")
	}
	s.mu.Lock()
	t := s.tenant(req.Tenant)
	t.touch(req.Agent, s.now())
	if tk := t.pop(); tk != nil {
		s.lease(tk, req.Agent)
		resp := &PollResponse{Task: s.wireTask(tk)}
		s.mu.Unlock()
		return resp, nil
	}
	w := &waiter{agent: req.Agent, ch: make(chan *task, 1)}
	t.waiters = append(t.waiters, w)
	s.mu.Unlock()

	wait := time.Duration(req.WaitMs) * time.Millisecond
	if wait <= 0 || wait > s.opts.PollTimeout {
		wait = s.opts.PollTimeout
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case tk := <-w.ch:
		return &PollResponse{Task: s.wireTask(tk)}, nil
	case <-timer.C:
	case <-s.closed:
	}
	s.mu.Lock()
	t.unpark(w)
	s.mu.Unlock()
	// A delivery may have raced the timeout; it went through the
	// buffered channel under the mutex, so one non-blocking receive
	// settles it.
	select {
	case tk := <-w.ch:
		return &PollResponse{Task: s.wireTask(tk)}, nil
	default:
		return &PollResponse{}, nil
	}
}

func (s *Server) handleHeartbeat(req *HeartbeatRequest) (*HeartbeatResponse, error) {
	if req.Tenant == "" || req.Agent == "" {
		return nil, badRequest("heartbeat: tenant and agent are required")
	}
	s.mu.Lock()
	t := s.tenant(req.Tenant)
	now := s.now()
	t.touch(req.Agent, now)
	for _, tk := range s.tasks {
		if !tk.done && tk.tenant == req.Tenant && tk.agent == req.Agent && !tk.leaseUntil.IsZero() {
			tk.leaseUntil = now.Add(s.opts.LeaseTTL)
		}
	}
	s.mu.Unlock()
	return &HeartbeatResponse{OK: true}, nil
}

func (s *Server) handleUpload(req *UploadRequest) (*UploadResponse, error) {
	if req.Tenant == "" || req.TaskID == 0 {
		return nil, badRequest("upload: tenant and task_id are required")
	}
	if req.Trace == nil && !req.Crashed {
		return nil, badRequest("upload: task %d carries neither a trace nor a crash marker", req.TaskID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenant(req.Tenant)
	t.touch(req.Agent, s.now())
	tk := s.tasks[req.TaskID]
	if tk == nil || tk.tenant != req.Tenant {
		// Unknown task: a retry that outlived its campaign (or a
		// restarted server). Acknowledge as a duplicate so the agent
		// moves on.
		s.metrics.add(func(m *Counters) { m.DuplicateUploads++ })
		return &UploadResponse{Duplicate: true}, nil
	}
	if tk.done {
		// The idempotency key already admitted this task (a retried
		// upload, a duplicated delivery, or a run the reaper wrote
		// off). Exactly-once admission means this delivery is a no-op.
		s.metrics.add(func(m *Counters) { m.DuplicateUploads++ })
		return &UploadResponse{Accepted: true, Duplicate: true}, nil
	}
	tk.crashed = req.Crashed
	if !req.Crashed {
		tk.trace = DecodeTrace(req.Trace)
	}
	if tk.hedged {
		s.metrics.add(func(m *Counters) { m.HedgedResults++ })
	}
	if !tk.leasedAt.IsZero() {
		// Completed-run durations feed the hedge threshold's p95.
		s.observeRunDuration(s.now().Sub(tk.leasedAt))
	}
	s.markDone(tk)
	s.metrics.add(func(m *Counters) { m.Uploads++ })
	s.opts.Telemetry.AddL(tk.tenant+"/"+tk.bug, "service.uploads", 1)
	return &UploadResponse{Accepted: true}, nil
}

// ---- campaign lifecycle ----------------------------------------------

// runCampaign drives one diagnosis stream: obtain the failure report
// (from the submitted production report, or by server-side discovery),
// build the campaign, route its fleet through the remote runner, and
// supervise it to completion with per-tenant durable checkpoints. key
// is the campaignKey the stream is registered under.
func (s *Server) runCampaign(cs *campaignState, tenant, bug, key string, cfg core.Config, report *vm.FailureReport, discRuns int) {
	fail := func(err error) {
		s.mu.Lock()
		cs.state = StateFailed
		cs.err = err
		close(cs.done)
		s.mu.Unlock()
		s.logf("campaign failed: tenant=%s key=%s: %v", tenant, key, err)
	}
	cfg.Label = tenant + "/" + key
	if cfg.Telemetry == nil {
		cfg.Telemetry = s.opts.Telemetry
	}

	// A campaign admitted but expired while queued must not burn runs.
	s.mu.Lock()
	expired := cs.expired
	deadline := cs.deadline
	s.mu.Unlock()
	if expired {
		s.metrics.add(func(m *Counters) { m.DeadlineExpired++ })
		fail(fmt.Errorf("deadline exceeded before launch"))
		return
	}

	if report == nil {
		// Discovery submit: find the failure server-side, exactly as
		// core.Run would.
		var err error
		report, discRuns, err = core.FirstFailure(cfg)
		if err != nil {
			fail(fmt.Errorf("discovery: %w", err))
			return
		}
	}
	camp, err := core.NewCampaign(cfg, report, discRuns)
	if err != nil {
		fail(fmt.Errorf("campaign: %w", err))
		return
	}
	runner := &remoteRunner{s: s, tenant: tenant, bug: bug, fcfg: cfg.Faults, deadline: deadline}
	camp.UseRunner(runner)

	ckpt, err := store.Open(
		filepath.Join(s.opts.StateRoot, sanitizeLabel(tenant)), sanitizeLabel(key),
		store.Options{
			Backend:   s.opts.Backend,
			NoFsync:   s.opts.NoFsync,
			Telemetry: s.opts.Telemetry,
			Label:     cfg.Label,
		})
	if err != nil {
		fail(fmt.Errorf("checkpoint store: %w", err))
		return
	}

	sup := supervise.New(1, supervise.Config{
		StepTimeout: s.opts.StepTimeout,
		Telemetry:   s.opts.Telemetry,
		OnRestore:   func(c *core.Campaign) { c.UseRunner(runner) },
	})
	if _, err := sup.Add(cfg, camp, ckpt); err != nil {
		fail(err)
		return
	}
	// Register the supervisor so a server drain reaches mid-flight
	// campaigns; a drain that began before this launch acquired its
	// slot drains the campaign at its first boundary.
	s.mu.Lock()
	s.sups[sup] = struct{}{}
	draining := s.draining
	s.mu.Unlock()
	if draining {
		sup.RequestDrain()
	}
	outs := sup.Run()
	s.mu.Lock()
	delete(s.sups, sup)
	expired = cs.expired
	s.mu.Unlock()
	out := outs[0]
	if expired {
		// The reaper wrote the campaign's runs off when the deadline
		// passed; whatever the degraded machinery produced is not a
		// trustworthy diagnosis, so the deadline surfaces as failure —
		// an admitted sketch is either byte-identical to batch or never
		// served.
		fail(fmt.Errorf("deadline exceeded after %d restarts", out.Restarts))
		return
	}
	if out.Drained {
		s.mu.Lock()
		cs.state = StateDrained
		cs.err = out.Err
		cs.restarts = out.Restarts
		close(cs.done)
		s.mu.Unlock()
		s.logf("campaign drained to checkpoint: tenant=%s key=%s", tenant, key)
		return
	}
	if out.Result == nil || out.Result.Sketch == nil {
		err := out.Err
		if err == nil {
			err = fmt.Errorf("campaign produced no sketch")
		}
		fail(err)
		return
	}
	sketch, err := out.Result.Sketch.MarshalIndentJSON()
	if err != nil {
		fail(fmt.Errorf("marshal sketch: %w", err))
		return
	}
	// Populate the cache before the campaign reads as done, so a fetch
	// racing completion hits either the cache or the store — never a gap.
	s.cache.Put(tenant+"/"+key, sketch)
	s.mu.Lock()
	cs.state = StateDone
	cs.lowConfidence = out.Result.Sketch.LowConfidence
	cs.restarts = out.Restarts
	s.health.Merge(out.Result.Health)
	close(cs.done)
	s.mu.Unlock()
	s.logf("campaign done: tenant=%s key=%s low_confidence=%v restarts=%d",
		tenant, key, out.Result.Sketch.LowConfidence, out.Restarts)
}

// ---- fleet plumbing ---------------------------------------------------

// remoteRunner is the core.Runner that hands a campaign's batches to
// the agent fleet over the wire.
type remoteRunner struct {
	s      *Server
	tenant string
	bug    string
	fcfg   faults.Config
	// deadline is the campaign deadline stamped on every task (zero =
	// none).
	deadline time.Time
}

// RunBatch enqueues every job as a task and blocks until each is
// uploaded, reassigned to exhaustion, or written off — then returns the
// traces in job order, exactly like the in-process fleet.
func (r *remoteRunner) RunBatch(plan *core.Plan, jobs []core.RunJob) []*core.RunTrace {
	tasks := make([]*task, len(jobs))
	r.s.mu.Lock()
	t := r.s.tenant(r.tenant)
	now := r.s.now()
	for i, job := range jobs {
		r.s.nextTask++
		tk := &task{
			id:       r.s.nextTask,
			tenant:   r.tenant,
			bug:      r.bug,
			window:   plan.Tracked,
			feats:    plan.Feats,
			spec:     job.Spec,
			fcfg:     r.fcfg,
			queued:   now,
			deadline: r.deadline,
			doneCh:   make(chan struct{}),
		}
		r.s.tasks[tk.id] = tk
		tasks[i] = tk
		r.s.dispatch(t, tk)
	}
	// A batch dispatched after Close swept the task table would block
	// its campaign forever (Close only writes off tasks that exist at
	// close time). Write such tasks off immediately so in-flight
	// campaigns wind down instead of deadlocking Close's wg.Wait.
	select {
	case <-r.s.closed:
		for _, tk := range tasks {
			if !tk.done {
				r.s.markLost(tk)
			}
		}
	default:
	}
	r.s.mu.Unlock()

	out := make([]*core.RunTrace, len(jobs))
	for i, tk := range tasks {
		<-tk.doneCh
		r.s.mu.Lock()
		if !tk.lost && !tk.crashed {
			out[i] = tk.trace
		}
		// The batch has consumed the task; drop the trace bytes but
		// keep the entry so late duplicate uploads still answer
		// idempotently.
		tk.trace = nil
		r.s.mu.Unlock()
	}
	return out
}

// tenant returns (creating if needed) a tenant's state. Caller holds mu.
func (s *Server) tenant(name string) *tenantState {
	t := s.tenants[name]
	if t == nil {
		t = &tenantState{
			name:      name,
			agents:    map[string]*agentInfo{},
			campaigns: map[string]*campaignState{},
		}
		s.tenants[name] = t
	}
	return t
}

// touch records agent liveness at the given instant. Caller holds mu.
func (t *tenantState) touch(agent string, now time.Time) {
	if agent == "" {
		return
	}
	a := t.agents[agent]
	if a == nil {
		a = &agentInfo{}
		t.agents[agent] = a
	}
	a.lastSeen = now
}

// live reports whether any agent of the tenant has been seen within the
// window ending at now. Caller holds mu.
func (t *tenantState) live(now time.Time, window time.Duration) bool {
	cutoff := now.Add(-window)
	for _, a := range t.agents {
		if a.lastSeen.After(cutoff) {
			return true
		}
	}
	return false
}

// pop dequeues the next pending task, skipping written-off ones.
// Caller holds mu.
func (t *tenantState) pop() *task {
	for len(t.queue) > 0 {
		tk := t.queue[0]
		t.queue = t.queue[1:]
		if tk.done {
			continue
		}
		return tk
	}
	return nil
}

// unpark removes a waiter from the parked list. Caller holds mu.
func (t *tenantState) unpark(w *waiter) {
	for i, o := range t.waiters {
		if o == w {
			t.waiters = append(t.waiters[:i], t.waiters[i+1:]...)
			return
		}
	}
}

// dispatch hands a task to a parked waiter or queues it. Caller holds
// mu.
func (s *Server) dispatch(t *tenantState, tk *task) {
	if len(t.waiters) > 0 {
		w := t.waiters[0]
		t.waiters = t.waiters[1:]
		s.lease(tk, w.agent)
		w.ch <- tk
		return
	}
	t.queue = append(t.queue, tk)
}

// lease grants a task to an agent. Caller holds mu.
func (s *Server) lease(tk *task, agent string) {
	now := s.now()
	tk.attempt++
	tk.agent = agent
	tk.leasedAt = now
	tk.leaseUntil = now.Add(s.opts.LeaseTTL)
}

// markDone completes a task exactly once: flips the idempotency flag,
// stamps the completion time, wakes the batch waiter, and queues the
// key for TTL/size-capped eviction. Caller holds mu.
func (s *Server) markDone(tk *task) {
	tk.done = true
	tk.doneAt = s.now()
	close(tk.doneCh)
	s.doneTasks = append(s.doneTasks, tk)
}

// markLost writes a task off: the campaign sees a nil trace, which its
// Lost/retry/quorum machinery absorbs. Caller holds mu.
func (s *Server) markLost(tk *task) {
	tk.lost = true
	s.markDone(tk)
	s.metrics.add(func(m *Counters) { m.LostTasks++ })
	s.opts.Telemetry.AddL(tk.tenant+"/"+tk.bug, "service.lost_tasks", 1)
}

// evictDoneTasks drops completed-task idempotency keys that are past
// the retention TTL or over the size cap (FIFO by completion). Only
// done tasks are ever in the queue, so a live task can never be evicted
// and exactly-once admission is preserved: an upload for an evicted key
// hits the unknown-task path, which acknowledges it as a duplicate
// without admitting anything. Caller holds mu.
func (s *Server) evictDoneTasks(now time.Time) {
	cutoff := now.Add(-s.opts.DoneTaskTTL)
	evicted := int64(0)
	for len(s.doneTasks) > 0 {
		tk := s.doneTasks[0]
		if len(s.doneTasks) <= s.opts.MaxDoneTasks && !tk.doneAt.Before(cutoff) {
			break
		}
		s.doneTasks = s.doneTasks[1:]
		delete(s.tasks, tk.id)
		evicted++
	}
	if evicted > 0 {
		s.metrics.add(func(m *Counters) { m.EvictedTasks += evicted })
	}
}

// reap is the lease reaper loop; reapOnce holds the logic. The tick
// tightens to half the hedge floor when hedging is on, so a straggler
// is noticed well before its lease would expire.
func (s *Server) reap() {
	defer s.wg.Done()
	tick := s.opts.LeaseTTL / 4
	if s.opts.HedgeAfter > 0 && s.opts.HedgeAfter/2 < tick {
		tick = s.opts.HedgeAfter / 2
	}
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-ticker.C:
		}
		s.reapOnce(s.now())
	}
}

// reapOnce runs one reaper sweep at the given instant: past-deadline
// tasks and campaigns are written off, expired leases send tasks back
// to the queue for reassignment (or write them off past the attempt
// budget), over-threshold leased tasks are hedged to a second agent,
// queued tasks with no live fleet are written off after NoAgentTimeout,
// and stale idempotency keys are evicted. Tests drive it directly with
// an injected clock instead of sleeping through wall time.
func (s *Server) reapOnce(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	hedgeTh := s.hedgeThreshold()
	for _, tk := range s.tasks {
		if tk.done {
			continue
		}
		t := s.tenant(tk.tenant)
		if !tk.deadline.IsZero() && now.After(tk.deadline) {
			s.logf("task %d (%s/%s) written off: deadline exceeded", tk.id, tk.tenant, tk.bug)
			s.metrics.add(func(m *Counters) { m.DeadlineExpired++ })
			s.markLost(tk)
			continue
		}
		if !tk.leaseUntil.IsZero() && now.After(tk.leaseUntil) {
			// The agent holding the lease went quiet.
			if tk.attempt >= s.opts.MaxTaskAttempts {
				s.logf("task %d (%s/%s) lost after %d attempts", tk.id, tk.tenant, tk.bug, tk.attempt)
				s.markLost(tk)
				continue
			}
			tk.agent = ""
			tk.leaseUntil = time.Time{}
			s.metrics.add(func(m *Counters) { m.Reassigned++ })
			s.opts.Telemetry.AddL(tk.tenant+"/"+tk.bug, "service.reassigned", 1)
			s.logf("task %d (%s/%s) lease expired; requeued (attempt %d)", tk.id, tk.tenant, tk.bug, tk.attempt)
			s.dispatch(t, tk)
			continue
		}
		if hedgeTh > 0 && !tk.hedged && !tk.leaseUntil.IsZero() &&
			tk.attempt < s.opts.MaxTaskAttempts && now.Sub(tk.leasedAt) > hedgeTh {
			// Straggler: the lease is alive but the run has outlived the
			// hedge threshold. Re-dispatch the same task — same ID, same
			// spec — to a second agent; determinism makes both results
			// byte-identical and the idempotency key admits exactly one.
			tk.hedged = true
			s.metrics.add(func(m *Counters) { m.HedgedTasks++ })
			s.opts.Telemetry.AddL(tk.tenant+"/"+tk.bug, "service.hedged", 1)
			s.logf("task %d (%s/%s) hedged after %v (threshold %v)", tk.id, tk.tenant, tk.bug, now.Sub(tk.leasedAt), hedgeTh)
			s.dispatch(t, tk)
			continue
		}
		if tk.leaseUntil.IsZero() && !t.live(now, 2*s.opts.LeaseTTL) &&
			now.Sub(tk.queued) > s.opts.NoAgentTimeout {
			s.logf("task %d (%s/%s) lost: no live agents", tk.id, tk.tenant, tk.bug)
			s.markLost(tk)
		}
	}
	// Campaign deadlines: mark expiry exactly once and unpark queued
	// launches. Running campaigns see their remaining tasks written off
	// above on subsequent sweeps and fail on completion.
	for _, t := range s.tenants {
		for _, cs := range t.campaigns {
			if cs.deadline.IsZero() || cs.expired {
				continue
			}
			if (cs.state == StateQueued || cs.state == StateRunning) && now.After(cs.deadline) {
				cs.expired = true
				close(cs.abort)
			}
		}
	}
	s.evictDoneTasks(now)
}

// hedgeThreshold is the leased runtime above which a task is hedged:
// the p95 of completed run durations once enough samples exist, floored
// by HedgeAfter. Zero when hedging is off. Caller holds mu.
func (s *Server) hedgeThreshold() time.Duration {
	if s.opts.HedgeAfter <= 0 {
		return 0
	}
	th := s.opts.HedgeAfter
	if len(s.runDur) >= 20 {
		sl := append([]float64(nil), s.runDur...)
		sort.Float64s(sl)
		if p := time.Duration(percentile(sl, 0.95) * float64(time.Millisecond)); p > th {
			th = p
		}
	}
	return th
}

// observeRunDuration records one completed run's leased runtime in the
// bounded sample ring. Caller holds mu.
func (s *Server) observeRunDuration(d time.Duration) {
	const ringCap = 512
	ms := float64(d.Microseconds()) / 1000
	if len(s.runDur) < ringCap {
		s.runDur = append(s.runDur, ms)
		return
	}
	s.runDur[s.runDurPos] = ms
	s.runDurPos = (s.runDurPos + 1) % ringCap
}

// wireTask renders a task for the wire, deadline rebased to a remaining
// budget. Caller holds mu (or the task is freshly leased and unshared).
func (s *Server) wireTask(tk *task) *WireTask {
	w := &WireTask{
		TaskID:  tk.id,
		Tenant:  tk.tenant,
		Bug:     tk.bug,
		Window:  tk.window,
		Feats:   tk.feats,
		Spec:    tk.spec,
		Faults:  tk.fcfg,
		Attempt: tk.attempt,
	}
	if !tk.deadline.IsZero() {
		w.DeadlineMs = tk.deadline.Sub(s.now()).Milliseconds()
		if w.DeadlineMs == 0 {
			w.DeadlineMs = -1 // expired exactly now; the agent must decline
		}
	}
	return w
}

// sanitizeLabel maps a tenant label to a safe path segment.
func sanitizeLabel(label string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, label)
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// ---- metrics ----------------------------------------------------------

// Counters are the server's scalar health counters.
type Counters struct {
	Requests         int64
	BadChecksum      int64
	Uploads          int64
	DuplicateUploads int64
	Reassigned       int64
	LostTasks        int64
	// NovelSignatures counts submits that launched a campaign;
	// FoldedReports counts submits deduped into a live one.
	NovelSignatures int64
	FoldedReports   int64
	// EvictedTasks counts completed-task idempotency keys dropped by
	// TTL/size-capped eviction.
	EvictedTasks int64
	// SketchReloads counts sketch fetches re-rendered from the
	// checkpoint store after LRU eviction.
	SketchReloads int64
	// ShedRateLimited counts submits bounced by a tenant's token
	// bucket; ShedLaunches counts novel signatures shed because the
	// launch queue was at budget (or the server was draining).
	ShedRateLimited int64
	ShedLaunches    int64
	// HedgedTasks counts stragglers speculatively re-dispatched;
	// HedgedResults counts uploads admitted for hedged tasks.
	HedgedTasks   int64
	HedgedResults int64
	// DeadlineExpired counts tasks written off and campaigns failed by
	// deadline propagation.
	DeadlineExpired int64
}

// RPCStat is the latency distribution of one wire path.
type RPCStat struct {
	Path  string  `json:"path"`
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// metrics aggregates request latencies per path, capped so an
// arbitrarily long bench cannot grow without bound.
type metrics struct {
	mu       sync.Mutex
	counters Counters
	samples  map[string][]float64 // path -> latency ms
}

const maxLatencySamples = 1 << 20

func (m *metrics) add(f func(*Counters)) {
	m.mu.Lock()
	f(&m.counters)
	m.mu.Unlock()
}

func (m *metrics) observe(path string, d time.Duration) {
	m.mu.Lock()
	m.counters.Requests++
	if m.samples == nil {
		m.samples = map[string][]float64{}
	}
	if sl := m.samples[path]; len(sl) < maxLatencySamples {
		m.samples[path] = append(sl, float64(d.Microseconds())/1000)
	}
	m.mu.Unlock()
}

// measure wraps the mux with per-request latency recording.
func (s *Server) measure(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		s.metrics.observe(r.URL.Path, time.Since(start))
	})
}

// Snapshot returns the server's counters and per-path latency
// percentiles.
func (s *Server) Snapshot() (Counters, []RPCStat) {
	s.metrics.mu.Lock()
	defer s.metrics.mu.Unlock()
	counters := s.metrics.counters
	paths := make([]string, 0, len(s.metrics.samples))
	for p := range s.metrics.samples {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	stats := make([]RPCStat, 0, len(paths))
	for _, p := range paths {
		sl := append([]float64(nil), s.metrics.samples[p]...)
		sort.Float64s(sl)
		stats = append(stats, RPCStat{
			Path:  p,
			Count: int64(len(sl)),
			P50Ms: percentile(sl, 0.50),
			P95Ms: percentile(sl, 0.95),
			P99Ms: percentile(sl, 0.99),
		})
	}
	return counters, stats
}

// CacheStats returns the sketch cache's counters and occupancy.
func (s *Server) CacheStats() ingest.CacheStats { return s.cache.Stats() }

// IngestStats returns the streaming front-end's traffic counters.
func (s *Server) IngestStats() ingest.Stats { return s.front.Stats() }

// percentile reads the p-quantile from a sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
