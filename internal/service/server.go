package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/ingest"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/supervise"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// Options tunes the diagnosis server. The zero value is usable: state
// lives on an in-memory backend, leases last 10 seconds, and campaigns
// are configured from the registered bug suite.
type Options struct {
	// Backend is the checkpoint medium; nil means in-memory (process
	// lifetime only). The CLI passes a DirBackend when -state-dir is
	// set.
	Backend store.Backend
	// StateRoot is the directory (on Backend) under which per-tenant
	// checkpoint stores live; "" means "state".
	StateRoot string
	// LeaseTTL is how long an agent holds a task before the reaper
	// reassigns it (default 10s).
	LeaseTTL time.Duration
	// PollTimeout caps how long a long-poll is held open (default 5s).
	PollTimeout time.Duration
	// MaxTaskAttempts is how many lease grants a task gets before it is
	// reported lost to the campaign (default 3).
	MaxTaskAttempts int
	// NoAgentTimeout is how long a queued task may sit with no live
	// agent in its tenant before it is reported lost, which lets a
	// campaign degrade to a low-confidence sketch instead of hanging
	// when the whole fleet vanishes (default 4×LeaseTTL).
	NoAgentTimeout time.Duration
	// StepTimeout is the supervisor watchdog deadline per campaign
	// step. Remote steps wait on real agents, so the default is a
	// generous 5 minutes — watchdog trips restore from checkpoint and
	// re-dispatch, they are for wedged campaigns, not slow fleets.
	StepTimeout time.Duration
	// NoFsync disables checkpoint fsync (mirrors the CLI flag).
	NoFsync bool
	// SketchCacheBytes bounds the LRU cache finished sketches are served
	// from (default 8 MiB; < 0 disables the bound). Evicted sketches are
	// re-rendered on demand from the campaign's checkpoint store, so the
	// cache keeps server memory flat without losing anything.
	SketchCacheBytes int64
	// DoneTaskTTL is how long a completed task's idempotency key is
	// retained for duplicate-upload detection before eviction (default
	// 4×LeaseTTL). Live tasks are never evicted.
	DoneTaskTTL time.Duration
	// MaxDoneTasks caps retained completed-task keys regardless of age
	// (default 65536, FIFO by completion).
	MaxDoneTasks int
	// MaxSeedsPerSignature bounds each failure signature's recorded seed
	// evidence (0 = 16, as in core.ClusterConfig).
	MaxSeedsPerSignature int
	// Placer, when non-nil, runs the server coordinator-only: submits
	// are placed on the shard fleet instead of diagnosed in-process, and
	// worker processes own the campaigns. Backend and StateRoot are
	// derived from the placer (the fleet's shared root) so the sketch
	// fetch path reads the workers' checkpoint stores unchanged.
	Placer *shard.Coordinator
	// PlacePoll is how often a coordinator-mode campaign polls the fleet
	// for its done record (default 150ms).
	PlacePoll time.Duration
	// ConfigFor maps a bug name to its campaign configuration; nil
	// means the registered bug suite's GistConfig.
	ConfigFor func(bug string) (core.Config, error)
	// Telemetry receives service.* counters; nil is fine.
	Telemetry *telemetry.Tracer
	// Logf, when non-nil, receives one line per notable server event.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Placer != nil {
		// Coordinator mode: the fleet's shared medium is the server's
		// medium, so reloadSketch finds worker-written checkpoints.
		o.Backend = o.Placer.Backend()
		o.StateRoot = o.Placer.CheckpointRoot()
	}
	if o.PlacePoll <= 0 {
		o.PlacePoll = 150 * time.Millisecond
	}
	if o.Backend == nil {
		o.Backend = store.NewMemBackend()
	}
	if o.StateRoot == "" {
		o.StateRoot = "state"
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.PollTimeout <= 0 {
		o.PollTimeout = 5 * time.Second
	}
	if o.MaxTaskAttempts <= 0 {
		o.MaxTaskAttempts = 3
	}
	if o.NoAgentTimeout <= 0 {
		o.NoAgentTimeout = 4 * o.LeaseTTL
	}
	if o.StepTimeout <= 0 {
		o.StepTimeout = 5 * time.Minute
	}
	if o.SketchCacheBytes == 0 {
		o.SketchCacheBytes = 8 << 20
	}
	if o.DoneTaskTTL <= 0 {
		o.DoneTaskTTL = 4 * o.LeaseTTL
	}
	if o.MaxDoneTasks <= 0 {
		o.MaxDoneTasks = 65536
	}
	if o.ConfigFor == nil {
		o.ConfigFor = func(bug string) (core.Config, error) {
			b := bugs.ByName(bug)
			if b == nil {
				return core.Config{}, fmt.Errorf("unknown bug %q", bug)
			}
			return b.GistConfig(), nil
		}
	}
	return o
}

// task is one dispatched production run in flight between the campaign
// and the agent fleet. All fields are guarded by the server mutex
// except doneCh, which is closed exactly once (under the mutex) when
// the task completes or is written off.
type task struct {
	id     uint64
	tenant string
	bug    string
	window []int
	feats  core.Features
	spec   core.RunSpec
	fcfg   faults.Config
	queued time.Time

	attempt    int // lease grants so far
	agent      string
	leaseUntil time.Time // zero while queued

	done    bool
	doneAt  time.Time // when done became true; drives idempotency-key eviction
	lost    bool
	crashed bool
	trace   *core.RunTrace
	doneCh  chan struct{}
}

// waiter is one parked long-poll.
type waiter struct {
	agent string
	ch    chan *task // buffered 1; delivery happens under the mutex
}

// agentInfo is the server's view of one registered agent.
type agentInfo struct {
	lastSeen time.Time
}

// campaignState tracks one diagnosis end to end. Finished sketch bytes
// live in the server's LRU sketch cache (reloadable from the checkpoint
// store), not here — retaining them per campaign is exactly the
// unbounded growth the cache exists to prevent.
type campaignState struct {
	state         string
	err           error
	lowConfidence bool
	restarts      int
	done          chan struct{}
}

// tenantState is one tenant's agents, queue, and campaigns.
type tenantState struct {
	name      string
	agents    map[string]*agentInfo
	queue     []*task
	waiters   []*waiter
	campaigns map[string]*campaignState // by campaignKey(bug, signature)
}

// campaignKey names one diagnosis stream within a tenant: the bug name,
// refined by the failure signature for report submits. Discovery
// submits (no report, sig "") keep the bare bug name, so the pre-ingest
// wire behavior is unchanged for them.
func campaignKey(bug, sig string) string {
	if sig == "" {
		return bug
	}
	return bug + "#" + sig
}

// Server is the diagnosis service. Create with NewServer, expose
// Handler over any listener (or a LoopbackTransport), and Close when
// done.
type Server struct {
	opts Options

	front *ingest.Frontend
	cache *ingest.SketchCache

	mu       sync.Mutex
	tenants  map[string]*tenantState
	tasks    map[uint64]*task
	nextTask uint64
	// doneTasks holds completed tasks in completion order, the eviction
	// queue for idempotency keys (guarded by mu).
	doneTasks []*task

	metrics metrics

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	handler http.Handler
}

// NewServer returns a running server (reaper started, no listener).
func NewServer(opts Options) *Server {
	s := &Server{
		opts:    opts.withDefaults(),
		tenants: map[string]*tenantState{},
		tasks:   map[uint64]*task{},
		closed:  make(chan struct{}),
	}
	s.front = ingest.NewFrontend(s.opts.MaxSeedsPerSignature)
	s.cache = ingest.NewSketchCache(s.opts.SketchCacheBytes)
	mux := http.NewServeMux()
	mux.HandleFunc(PathHealthz, s.handleHealthz)
	mux.HandleFunc(PathSubmit, jsonHandler(s, s.handleSubmit))
	mux.HandleFunc(PathStatus, jsonHandler(s, s.handleStatus))
	mux.HandleFunc(PathSketch, jsonHandler(s, s.handleSketch))
	mux.HandleFunc(PathRegister, jsonHandler(s, s.handleRegister))
	mux.HandleFunc(PathPoll, jsonHandler(s, s.handlePoll))
	mux.HandleFunc(PathHeartbeat, jsonHandler(s, s.handleHeartbeat))
	mux.HandleFunc(PathUpload, jsonHandler(s, s.handleUpload))
	s.handler = s.measure(mux)
	s.wg.Add(1)
	go s.reap()
	return s
}

// Handler returns the server's HTTP handler (checksum verification and
// latency metrics included).
func (s *Server) Handler() http.Handler { return s.handler }

// Close stops the reaper and writes off every in-flight task so
// campaign goroutines blocked on the fleet unwind. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.mu.Lock()
		for _, tk := range s.tasks {
			if !tk.done {
				s.markLost(tk)
			}
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
}

// WaitCampaign blocks until the (tenant, bug) discovery campaign
// finishes; it reports false when no such campaign exists.
func (s *Server) WaitCampaign(tenant, bug string) bool {
	return s.WaitCampaignSig(tenant, bug, "")
}

// WaitCampaignSig blocks until the campaign for one failure signature
// under (tenant, bug) finishes; "" addresses the discovery campaign.
func (s *Server) WaitCampaignSig(tenant, bug, sig string) bool {
	s.mu.Lock()
	t := s.tenants[tenant]
	var cs *campaignState
	if t != nil {
		cs = t.campaigns[campaignKey(bug, sig)]
	}
	s.mu.Unlock()
	if cs == nil {
		return false
	}
	<-cs.done
	return true
}

// ---- HTTP plumbing ----------------------------------------------------

// httpError is an error with a status code.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// jsonHandler adapts a typed handler: verify the body checksum, decode
// JSON, dispatch, encode the response. The checksum check runs before
// any decoding so a transport-corrupted body can never half-apply.
func jsonHandler[Req, Resp any](s *Server, f func(*Req) (*Resp, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "read body: %v", err)
			return
		}
		if want := r.Header.Get(ChecksumHeader); want != "" {
			if got := BodyChecksum(body); got != want {
				s.metrics.add(func(m *Counters) { m.BadChecksum++ })
				writeError(w, http.StatusBadRequest, "body checksum mismatch: have %s, header says %s", got, want)
				return
			}
		}
		var req Req
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, "decode request: %v", err)
			return
		}
		resp, err := f(&req)
		if err != nil {
			code := http.StatusInternalServerError
			if he, ok := err.(*httpError); ok {
				code = he.code
			}
			writeError(w, code, "%v", err)
			return
		}
		data, err := json.Marshal(resp)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "encode response: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	}
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, _ := json.Marshal(ErrorResponse{Err: fmt.Sprintf(format, args...)})
	w.Write(data)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// ---- handlers ---------------------------------------------------------

func (s *Server) handleSubmit(req *SubmitRequest) (*SubmitResponse, error) {
	if req.Tenant == "" || req.Bug == "" {
		return nil, badRequest("submit: tenant and bug are required")
	}
	if req.DiscoveryRuns < 0 {
		return nil, badRequest("submit: discovery_runs must be >= 0, got %d", req.DiscoveryRuns)
	}
	cfg, err := s.opts.ConfigFor(req.Bug)
	if err != nil {
		return nil, badRequest("submit: %v", err)
	}
	// Ingest under the server mutex so the dedup decision and the
	// campaign registration are one atomic step: exactly the Novel
	// caller registers, everyone else observes the registered campaign.
	s.mu.Lock()
	t := s.tenant(req.Tenant)
	dec := s.front.Ingest(req.Tenant, req.Bug, req.Report, req.Seed)
	resp := &SubmitResponse{
		Tenant: req.Tenant, Bug: req.Bug,
		Signature: dec.Key.Sig, Reports: dec.Reports,
	}
	if !dec.Novel {
		s.mu.Unlock()
		s.metrics.add(func(m *Counters) { m.FoldedReports++ })
		resp.Duplicate = true
		return resp, nil
	}
	cs := &campaignState{state: StateRunning, done: make(chan struct{})}
	key := campaignKey(req.Bug, dec.Key.Sig)
	t.campaigns[key] = cs
	s.mu.Unlock()
	s.metrics.add(func(m *Counters) { m.NovelSignatures++ })

	s.logf("submit: tenant=%s bug=%s sig=%q", req.Tenant, req.Bug, dec.Key.Sig)
	s.wg.Add(1)
	if s.opts.Placer != nil {
		go s.placeCampaign(cs, req.Tenant, req.Bug, key, dec.Key.Sig, req.Report, req.DiscoveryRuns)
	} else {
		go s.runCampaign(cs, req.Tenant, req.Bug, key, cfg, req.Report, req.DiscoveryRuns)
	}
	return resp, nil
}

// placeCampaign is runCampaign's coordinator-mode counterpart: publish
// the assignment to the shard fleet, then poll for the done record a
// worker publishes. The worker checkpoints under the server's StateRoot
// with the same layout runCampaign uses, so sketch fetch and reload are
// oblivious to which process diagnosed the bug.
func (s *Server) placeCampaign(cs *campaignState, tenant, bug, key, sig string, report *vm.FailureReport, discRuns int) {
	defer s.wg.Done()
	fail := func(err error) {
		s.mu.Lock()
		cs.state = StateFailed
		cs.err = err
		close(cs.done)
		s.mu.Unlock()
		s.logf("campaign failed: tenant=%s key=%s: %v", tenant, key, err)
	}
	if _, err := s.opts.Placer.Assign(shard.Assignment{
		Tenant: tenant, Bug: bug, Key: key, Signature: sig,
		Report: report, DiscoveryRuns: discRuns,
	}); err != nil {
		fail(fmt.Errorf("place: %w", err))
		return
	}
	tick := time.NewTicker(s.opts.PlacePoll)
	defer tick.Stop()
	for {
		select {
		case <-s.closed:
			fail(fmt.Errorf("server closed while campaign was on the fleet"))
			return
		case <-tick.C:
		}
		rec, err := s.opts.Placer.Done(tenant, key)
		if err != nil || rec == nil {
			continue
		}
		if rec.Err != "" {
			fail(fmt.Errorf("worker %s: %s", rec.Worker, rec.Err))
			return
		}
		s.cache.Put(tenant+"/"+key, rec.Sketch)
		s.mu.Lock()
		cs.state = StateDone
		cs.lowConfidence = rec.LowConfidence
		cs.restarts = rec.Restarts
		close(cs.done)
		s.mu.Unlock()
		s.logf("campaign done (fleet): tenant=%s key=%s worker=%s low_confidence=%v restarts=%d",
			tenant, key, rec.Worker, rec.LowConfidence, rec.Restarts)
		return
	}
}

func (s *Server) handleStatus(req *StatusRequest) (*StatusResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[req.Tenant]
	if t == nil {
		return &StatusResponse{State: StateUnknown}, nil
	}
	cs := t.campaigns[campaignKey(req.Bug, req.Signature)]
	if cs == nil {
		return &StatusResponse{State: StateUnknown}, nil
	}
	resp := &StatusResponse{
		State:         cs.state,
		LowConfidence: cs.lowConfidence,
		Restarts:      cs.restarts,
	}
	if cs.err != nil {
		resp.Err = cs.err.Error()
	}
	return resp, nil
}

func (s *Server) handleSketch(req *SketchRequest) (*SketchResponse, error) {
	key := campaignKey(req.Bug, req.Signature)
	s.mu.Lock()
	t := s.tenants[req.Tenant]
	var cs *campaignState
	if t != nil {
		cs = t.campaigns[key]
	}
	done := cs != nil && cs.state == StateDone
	s.mu.Unlock()
	if !done {
		return &SketchResponse{}, nil
	}
	ck := req.Tenant + "/" + key
	if sketch := s.cache.Get(ck); sketch != nil {
		return &SketchResponse{Ready: true, Sketch: sketch}, nil
	}
	// Cache miss: the sketch was evicted (or the cache is tiny).
	// Re-render it from the campaign's durable checkpoint — the
	// supervisor saved the finished snapshot, so the bytes come back
	// identical.
	sketch, err := s.reloadSketch(req.Tenant, req.Bug, key)
	if err != nil {
		return nil, fmt.Errorf("sketch: reload %s/%s: %w", req.Tenant, key, err)
	}
	s.metrics.add(func(m *Counters) { m.SketchReloads++ })
	s.cache.Put(ck, sketch)
	return &SketchResponse{Ready: true, Sketch: sketch}, nil
}

// reloadSketch re-renders a finished campaign's sketch bytes from its
// checkpoint store. Called outside the server mutex (store access may
// touch disk).
func (s *Server) reloadSketch(tenant, bug, key string) ([]byte, error) {
	cfg, err := s.opts.ConfigFor(bug)
	if err != nil {
		return nil, err
	}
	ckpt, err := store.Open(
		filepath.Join(s.opts.StateRoot, sanitizeLabel(tenant)), sanitizeLabel(key),
		store.Options{Backend: s.opts.Backend, NoFsync: true, Telemetry: s.opts.Telemetry})
	if err != nil {
		return nil, err
	}
	latest := ckpt.Latest()
	if latest == nil {
		return nil, fmt.Errorf("no checkpoint generations")
	}
	snap, err := core.DecodeCampaignSnapshot(latest.Payload)
	if err != nil {
		return nil, err
	}
	return snap.RenderSketchJSON(cfg.Prog)
}

func (s *Server) handleRegister(req *RegisterRequest) (*RegisterResponse, error) {
	if req.Tenant == "" || req.Agent == "" {
		return nil, badRequest("register: tenant and agent are required")
	}
	s.mu.Lock()
	t := s.tenant(req.Tenant)
	t.touch(req.Agent)
	s.mu.Unlock()
	s.logf("register: tenant=%s agent=%s", req.Tenant, req.Agent)
	return &RegisterResponse{LeaseMs: s.opts.LeaseTTL.Milliseconds()}, nil
}

func (s *Server) handlePoll(req *PollRequest) (*PollResponse, error) {
	if req.Tenant == "" || req.Agent == "" {
		return nil, badRequest("poll: tenant and agent are required")
	}
	s.mu.Lock()
	t := s.tenant(req.Tenant)
	t.touch(req.Agent)
	if tk := t.pop(); tk != nil {
		s.lease(tk, req.Agent)
		s.mu.Unlock()
		return &PollResponse{Task: wireTask(tk)}, nil
	}
	w := &waiter{agent: req.Agent, ch: make(chan *task, 1)}
	t.waiters = append(t.waiters, w)
	s.mu.Unlock()

	wait := time.Duration(req.WaitMs) * time.Millisecond
	if wait <= 0 || wait > s.opts.PollTimeout {
		wait = s.opts.PollTimeout
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case tk := <-w.ch:
		return &PollResponse{Task: wireTask(tk)}, nil
	case <-timer.C:
	case <-s.closed:
	}
	s.mu.Lock()
	t.unpark(w)
	s.mu.Unlock()
	// A delivery may have raced the timeout; it went through the
	// buffered channel under the mutex, so one non-blocking receive
	// settles it.
	select {
	case tk := <-w.ch:
		return &PollResponse{Task: wireTask(tk)}, nil
	default:
		return &PollResponse{}, nil
	}
}

func (s *Server) handleHeartbeat(req *HeartbeatRequest) (*HeartbeatResponse, error) {
	if req.Tenant == "" || req.Agent == "" {
		return nil, badRequest("heartbeat: tenant and agent are required")
	}
	s.mu.Lock()
	t := s.tenant(req.Tenant)
	t.touch(req.Agent)
	now := time.Now()
	for _, tk := range s.tasks {
		if !tk.done && tk.tenant == req.Tenant && tk.agent == req.Agent && !tk.leaseUntil.IsZero() {
			tk.leaseUntil = now.Add(s.opts.LeaseTTL)
		}
	}
	s.mu.Unlock()
	return &HeartbeatResponse{OK: true}, nil
}

func (s *Server) handleUpload(req *UploadRequest) (*UploadResponse, error) {
	if req.Tenant == "" || req.TaskID == 0 {
		return nil, badRequest("upload: tenant and task_id are required")
	}
	if req.Trace == nil && !req.Crashed {
		return nil, badRequest("upload: task %d carries neither a trace nor a crash marker", req.TaskID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenant(req.Tenant)
	t.touch(req.Agent)
	tk := s.tasks[req.TaskID]
	if tk == nil || tk.tenant != req.Tenant {
		// Unknown task: a retry that outlived its campaign (or a
		// restarted server). Acknowledge as a duplicate so the agent
		// moves on.
		s.metrics.add(func(m *Counters) { m.DuplicateUploads++ })
		return &UploadResponse{Duplicate: true}, nil
	}
	if tk.done {
		// The idempotency key already admitted this task (a retried
		// upload, a duplicated delivery, or a run the reaper wrote
		// off). Exactly-once admission means this delivery is a no-op.
		s.metrics.add(func(m *Counters) { m.DuplicateUploads++ })
		return &UploadResponse{Accepted: true, Duplicate: true}, nil
	}
	tk.crashed = req.Crashed
	if !req.Crashed {
		tk.trace = DecodeTrace(req.Trace)
	}
	s.markDone(tk)
	s.metrics.add(func(m *Counters) { m.Uploads++ })
	s.opts.Telemetry.AddL(tk.tenant+"/"+tk.bug, "service.uploads", 1)
	return &UploadResponse{Accepted: true}, nil
}

// ---- campaign lifecycle ----------------------------------------------

// runCampaign drives one diagnosis stream: obtain the failure report
// (from the submitted production report, or by server-side discovery),
// build the campaign, route its fleet through the remote runner, and
// supervise it to completion with per-tenant durable checkpoints. key
// is the campaignKey the stream is registered under.
func (s *Server) runCampaign(cs *campaignState, tenant, bug, key string, cfg core.Config, report *vm.FailureReport, discRuns int) {
	defer s.wg.Done()
	fail := func(err error) {
		s.mu.Lock()
		cs.state = StateFailed
		cs.err = err
		close(cs.done)
		s.mu.Unlock()
		s.logf("campaign failed: tenant=%s key=%s: %v", tenant, key, err)
	}
	cfg.Label = tenant + "/" + key
	if cfg.Telemetry == nil {
		cfg.Telemetry = s.opts.Telemetry
	}

	if report == nil {
		// Discovery submit: find the failure server-side, exactly as
		// core.Run would.
		var err error
		report, discRuns, err = core.FirstFailure(cfg)
		if err != nil {
			fail(fmt.Errorf("discovery: %w", err))
			return
		}
	}
	camp, err := core.NewCampaign(cfg, report, discRuns)
	if err != nil {
		fail(fmt.Errorf("campaign: %w", err))
		return
	}
	runner := &remoteRunner{s: s, tenant: tenant, bug: bug, fcfg: cfg.Faults}
	camp.UseRunner(runner)

	ckpt, err := store.Open(
		filepath.Join(s.opts.StateRoot, sanitizeLabel(tenant)), sanitizeLabel(key),
		store.Options{
			Backend:   s.opts.Backend,
			NoFsync:   s.opts.NoFsync,
			Telemetry: s.opts.Telemetry,
			Label:     cfg.Label,
		})
	if err != nil {
		fail(fmt.Errorf("checkpoint store: %w", err))
		return
	}

	sup := supervise.New(1, supervise.Config{
		StepTimeout: s.opts.StepTimeout,
		Telemetry:   s.opts.Telemetry,
		OnRestore:   func(c *core.Campaign) { c.UseRunner(runner) },
	})
	if _, err := sup.Add(cfg, camp, ckpt); err != nil {
		fail(err)
		return
	}
	outs := sup.Run()
	out := outs[0]
	if out.Result == nil || out.Result.Sketch == nil {
		err := out.Err
		if err == nil {
			err = fmt.Errorf("campaign produced no sketch")
		}
		fail(err)
		return
	}
	sketch, err := out.Result.Sketch.MarshalIndentJSON()
	if err != nil {
		fail(fmt.Errorf("marshal sketch: %w", err))
		return
	}
	// Populate the cache before the campaign reads as done, so a fetch
	// racing completion hits either the cache or the store — never a gap.
	s.cache.Put(tenant+"/"+key, sketch)
	s.mu.Lock()
	cs.state = StateDone
	cs.lowConfidence = out.Result.Sketch.LowConfidence
	cs.restarts = out.Restarts
	close(cs.done)
	s.mu.Unlock()
	s.logf("campaign done: tenant=%s key=%s low_confidence=%v restarts=%d",
		tenant, key, out.Result.Sketch.LowConfidence, out.Restarts)
}

// ---- fleet plumbing ---------------------------------------------------

// remoteRunner is the core.Runner that hands a campaign's batches to
// the agent fleet over the wire.
type remoteRunner struct {
	s      *Server
	tenant string
	bug    string
	fcfg   faults.Config
}

// RunBatch enqueues every job as a task and blocks until each is
// uploaded, reassigned to exhaustion, or written off — then returns the
// traces in job order, exactly like the in-process fleet.
func (r *remoteRunner) RunBatch(plan *core.Plan, jobs []core.RunJob) []*core.RunTrace {
	tasks := make([]*task, len(jobs))
	r.s.mu.Lock()
	t := r.s.tenant(r.tenant)
	now := time.Now()
	for i, job := range jobs {
		r.s.nextTask++
		tk := &task{
			id:     r.s.nextTask,
			tenant: r.tenant,
			bug:    r.bug,
			window: plan.Tracked,
			feats:  plan.Feats,
			spec:   job.Spec,
			fcfg:   r.fcfg,
			queued: now,
			doneCh: make(chan struct{}),
		}
		r.s.tasks[tk.id] = tk
		tasks[i] = tk
		r.s.dispatch(t, tk)
	}
	// A batch dispatched after Close swept the task table would block
	// its campaign forever (Close only writes off tasks that exist at
	// close time). Write such tasks off immediately so in-flight
	// campaigns wind down instead of deadlocking Close's wg.Wait.
	select {
	case <-r.s.closed:
		for _, tk := range tasks {
			if !tk.done {
				r.s.markLost(tk)
			}
		}
	default:
	}
	r.s.mu.Unlock()

	out := make([]*core.RunTrace, len(jobs))
	for i, tk := range tasks {
		<-tk.doneCh
		r.s.mu.Lock()
		if !tk.lost && !tk.crashed {
			out[i] = tk.trace
		}
		// The batch has consumed the task; drop the trace bytes but
		// keep the entry so late duplicate uploads still answer
		// idempotently.
		tk.trace = nil
		r.s.mu.Unlock()
	}
	return out
}

// tenant returns (creating if needed) a tenant's state. Caller holds mu.
func (s *Server) tenant(name string) *tenantState {
	t := s.tenants[name]
	if t == nil {
		t = &tenantState{
			name:      name,
			agents:    map[string]*agentInfo{},
			campaigns: map[string]*campaignState{},
		}
		s.tenants[name] = t
	}
	return t
}

// touch records agent liveness. Caller holds mu.
func (t *tenantState) touch(agent string) {
	if agent == "" {
		return
	}
	a := t.agents[agent]
	if a == nil {
		a = &agentInfo{}
		t.agents[agent] = a
	}
	a.lastSeen = time.Now()
}

// live reports whether any agent of the tenant has been seen within the
// window. Caller holds mu.
func (t *tenantState) live(window time.Duration) bool {
	cutoff := time.Now().Add(-window)
	for _, a := range t.agents {
		if a.lastSeen.After(cutoff) {
			return true
		}
	}
	return false
}

// pop dequeues the next pending task, skipping written-off ones.
// Caller holds mu.
func (t *tenantState) pop() *task {
	for len(t.queue) > 0 {
		tk := t.queue[0]
		t.queue = t.queue[1:]
		if tk.done {
			continue
		}
		return tk
	}
	return nil
}

// unpark removes a waiter from the parked list. Caller holds mu.
func (t *tenantState) unpark(w *waiter) {
	for i, o := range t.waiters {
		if o == w {
			t.waiters = append(t.waiters[:i], t.waiters[i+1:]...)
			return
		}
	}
}

// dispatch hands a task to a parked waiter or queues it. Caller holds
// mu.
func (s *Server) dispatch(t *tenantState, tk *task) {
	if len(t.waiters) > 0 {
		w := t.waiters[0]
		t.waiters = t.waiters[1:]
		s.lease(tk, w.agent)
		w.ch <- tk
		return
	}
	t.queue = append(t.queue, tk)
}

// lease grants a task to an agent. Caller holds mu.
func (s *Server) lease(tk *task, agent string) {
	tk.attempt++
	tk.agent = agent
	tk.leaseUntil = time.Now().Add(s.opts.LeaseTTL)
}

// markDone completes a task exactly once: flips the idempotency flag,
// stamps the completion time, wakes the batch waiter, and queues the
// key for TTL/size-capped eviction. Caller holds mu.
func (s *Server) markDone(tk *task) {
	tk.done = true
	tk.doneAt = time.Now()
	close(tk.doneCh)
	s.doneTasks = append(s.doneTasks, tk)
}

// markLost writes a task off: the campaign sees a nil trace, which its
// Lost/retry/quorum machinery absorbs. Caller holds mu.
func (s *Server) markLost(tk *task) {
	tk.lost = true
	s.markDone(tk)
	s.metrics.add(func(m *Counters) { m.LostTasks++ })
	s.opts.Telemetry.AddL(tk.tenant+"/"+tk.bug, "service.lost_tasks", 1)
}

// evictDoneTasks drops completed-task idempotency keys that are past
// the retention TTL or over the size cap (FIFO by completion). Only
// done tasks are ever in the queue, so a live task can never be evicted
// and exactly-once admission is preserved: an upload for an evicted key
// hits the unknown-task path, which acknowledges it as a duplicate
// without admitting anything. Caller holds mu.
func (s *Server) evictDoneTasks(now time.Time) {
	cutoff := now.Add(-s.opts.DoneTaskTTL)
	evicted := int64(0)
	for len(s.doneTasks) > 0 {
		tk := s.doneTasks[0]
		if len(s.doneTasks) <= s.opts.MaxDoneTasks && !tk.doneAt.Before(cutoff) {
			break
		}
		s.doneTasks = s.doneTasks[1:]
		delete(s.tasks, tk.id)
		evicted++
	}
	if evicted > 0 {
		s.metrics.add(func(m *Counters) { m.EvictedTasks += evicted })
	}
}

// reap is the lease reaper: expired leases send tasks back to the queue
// for reassignment (or write them off past the attempt budget), and
// queued tasks with no live fleet are written off after NoAgentTimeout.
func (s *Server) reap() {
	defer s.wg.Done()
	tick := s.opts.LeaseTTL / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-ticker.C:
		}
		now := time.Now()
		s.mu.Lock()
		for _, tk := range s.tasks {
			if tk.done {
				continue
			}
			t := s.tenant(tk.tenant)
			if !tk.leaseUntil.IsZero() && now.After(tk.leaseUntil) {
				// The agent holding the lease went quiet.
				if tk.attempt >= s.opts.MaxTaskAttempts {
					s.logf("task %d (%s/%s) lost after %d attempts", tk.id, tk.tenant, tk.bug, tk.attempt)
					s.markLost(tk)
					continue
				}
				tk.agent = ""
				tk.leaseUntil = time.Time{}
				s.metrics.add(func(m *Counters) { m.Reassigned++ })
				s.opts.Telemetry.AddL(tk.tenant+"/"+tk.bug, "service.reassigned", 1)
				s.logf("task %d (%s/%s) lease expired; requeued (attempt %d)", tk.id, tk.tenant, tk.bug, tk.attempt)
				s.dispatch(t, tk)
				continue
			}
			if tk.leaseUntil.IsZero() && !t.live(2*s.opts.LeaseTTL) &&
				now.Sub(tk.queued) > s.opts.NoAgentTimeout {
				s.logf("task %d (%s/%s) lost: no live agents", tk.id, tk.tenant, tk.bug)
				s.markLost(tk)
			}
		}
		s.evictDoneTasks(now)
		s.mu.Unlock()
	}
}

// wireTask renders a task for the wire. Caller holds mu (or the task is
// freshly leased and unshared).
func wireTask(tk *task) *WireTask {
	return &WireTask{
		TaskID:  tk.id,
		Tenant:  tk.tenant,
		Bug:     tk.bug,
		Window:  tk.window,
		Feats:   tk.feats,
		Spec:    tk.spec,
		Faults:  tk.fcfg,
		Attempt: tk.attempt,
	}
}

// sanitizeLabel maps a tenant label to a safe path segment.
func sanitizeLabel(label string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, label)
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// ---- metrics ----------------------------------------------------------

// Counters are the server's scalar health counters.
type Counters struct {
	Requests         int64
	BadChecksum      int64
	Uploads          int64
	DuplicateUploads int64
	Reassigned       int64
	LostTasks        int64
	// NovelSignatures counts submits that launched a campaign;
	// FoldedReports counts submits deduped into a live one.
	NovelSignatures int64
	FoldedReports   int64
	// EvictedTasks counts completed-task idempotency keys dropped by
	// TTL/size-capped eviction.
	EvictedTasks int64
	// SketchReloads counts sketch fetches re-rendered from the
	// checkpoint store after LRU eviction.
	SketchReloads int64
}

// RPCStat is the latency distribution of one wire path.
type RPCStat struct {
	Path  string  `json:"path"`
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// metrics aggregates request latencies per path, capped so an
// arbitrarily long bench cannot grow without bound.
type metrics struct {
	mu       sync.Mutex
	counters Counters
	samples  map[string][]float64 // path -> latency ms
}

const maxLatencySamples = 1 << 20

func (m *metrics) add(f func(*Counters)) {
	m.mu.Lock()
	f(&m.counters)
	m.mu.Unlock()
}

func (m *metrics) observe(path string, d time.Duration) {
	m.mu.Lock()
	m.counters.Requests++
	if m.samples == nil {
		m.samples = map[string][]float64{}
	}
	if sl := m.samples[path]; len(sl) < maxLatencySamples {
		m.samples[path] = append(sl, float64(d.Microseconds())/1000)
	}
	m.mu.Unlock()
}

// measure wraps the mux with per-request latency recording.
func (s *Server) measure(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		s.metrics.observe(r.URL.Path, time.Since(start))
	})
}

// Snapshot returns the server's counters and per-path latency
// percentiles.
func (s *Server) Snapshot() (Counters, []RPCStat) {
	s.metrics.mu.Lock()
	defer s.metrics.mu.Unlock()
	counters := s.metrics.counters
	paths := make([]string, 0, len(s.metrics.samples))
	for p := range s.metrics.samples {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	stats := make([]RPCStat, 0, len(paths))
	for _, p := range paths {
		sl := append([]float64(nil), s.metrics.samples[p]...)
		sort.Float64s(sl)
		stats = append(stats, RPCStat{
			Path:  p,
			Count: int64(len(sl)),
			P50Ms: percentile(sl, 0.50),
			P95Ms: percentile(sl, 0.95),
			P99Ms: percentile(sl, 0.99),
		})
	}
	return counters, stats
}

// CacheStats returns the sketch cache's counters and occupancy.
func (s *Server) CacheStats() ingest.CacheStats { return s.cache.Stats() }

// IngestStats returns the streaming front-end's traffic counters.
func (s *Server) IngestStats() ingest.Stats { return s.front.Stats() }

// percentile reads the p-quantile from a sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
