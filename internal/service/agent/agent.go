// Package agent is the endpoint side of the Gist service: it
// registers with the diagnosis server, long-polls for tracking tasks,
// executes production runs through the same core.RunInstrumented path
// the in-process fleet uses, and uploads traces over the fault-tolerant
// wire client.
//
// An agent ships no state the server cannot regenerate: the tracking
// plan is rebuilt locally from the shipped instruction window and
// feature gates (core.BuildPlan is deterministic), and the endpoint
// fault decision is re-derived from the shipped fault config — so a
// run executes identically no matter which agent picks it up.
package agent

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/service"
)

// Config tunes one endpoint agent.
type Config struct {
	// Server is the diagnosis server's base URL.
	Server string
	// Tenant and ID identify this agent to the server.
	Tenant string
	ID     string
	// Poll is the long-poll wait the agent requests (default 2s).
	Poll time.Duration
	// RPCDeadline bounds each wire attempt (default 30s). It must
	// exceed Poll or every long-poll times out client-side.
	RPCDeadline time.Duration
	// Faults configures transport chaos on this agent's wire client.
	Faults faults.Config
	// Transport overrides the HTTP transport (tests pass a
	// LoopbackTransport); nil means the default.
	Transport http.RoundTripper
	// Sleep overrides the wire client's backoff sleep; nil means
	// time.Sleep. Tests use it to retry instantly.
	Sleep func(time.Duration)
	// Delay overrides the injected-slowdown sleep (the fault class that
	// models a degraded endpoint); nil means time.Sleep. Tests stub it
	// to observe slowdown decisions without waiting them out.
	Delay func(time.Duration)
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Poll <= 0 {
		c.Poll = 2 * time.Second
	}
	if c.RPCDeadline <= 0 {
		c.RPCDeadline = 30 * time.Second
	}
	if c.Delay == nil {
		c.Delay = time.Sleep
	}
	return c
}

// Validate rejects nonsensical agent configs.
func (c Config) Validate() error {
	if c.Server == "" {
		return fmt.Errorf("agent: server URL must be set")
	}
	if c.Tenant == "" || c.ID == "" {
		return fmt.Errorf("agent: tenant and agent id must be set")
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// Agent is one endpoint worker.
type Agent struct {
	cfg    Config
	client *service.Client
	lease  time.Duration

	mu     sync.Mutex
	graphs map[string]*plannedBug
}

// plannedBug caches one bug's compiled program and graph so repeated
// tasks against the same bug do not recompile.
type plannedBug struct {
	cfg core.Config
}

// New returns an agent; call Run to start it.
func New(cfg Config) (*Agent, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Agent{
		cfg: cfg,
		client: service.NewClient(service.ClientOptions{
			BaseURL:   cfg.Server,
			Tenant:    cfg.Tenant,
			Actor:     cfg.ID,
			Deadline:  cfg.RPCDeadline,
			Faults:    cfg.Faults,
			Transport: cfg.Transport,
			Sleep:     cfg.Sleep,
		}),
		graphs: make(map[string]*plannedBug),
	}, nil
}

// Run registers and then serves tasks until ctx is cancelled. It
// returns nil on cancellation and an error only when registration
// itself fails after all retries.
func (a *Agent) Run(ctx context.Context) error {
	var reg service.RegisterResponse
	err := a.client.Call(ctx, service.PathRegister, &service.RegisterRequest{
		Tenant: a.cfg.Tenant,
		Agent:  a.cfg.ID,
	}, &reg)
	if err != nil {
		return fmt.Errorf("agent %s: register: %w", a.cfg.ID, err)
	}
	a.lease = time.Duration(reg.LeaseMs) * time.Millisecond
	a.logf("agent %s registered (lease %v)", a.cfg.ID, a.lease)

	for {
		if ctx.Err() != nil {
			return nil
		}
		task, err := a.poll(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			a.logf("agent %s: poll: %v", a.cfg.ID, err)
			continue
		}
		if task == nil {
			continue
		}
		a.execute(ctx, task)
	}
}

// RunN serves exactly n tasks and returns — the load bench and tests
// use it to bound an agent's life deterministically.
func (a *Agent) RunN(ctx context.Context, n int) error {
	var reg service.RegisterResponse
	err := a.client.Call(ctx, service.PathRegister, &service.RegisterRequest{
		Tenant: a.cfg.Tenant,
		Agent:  a.cfg.ID,
	}, &reg)
	if err != nil {
		return fmt.Errorf("agent %s: register: %w", a.cfg.ID, err)
	}
	a.lease = time.Duration(reg.LeaseMs) * time.Millisecond
	for done := 0; done < n; {
		if err := ctx.Err(); err != nil {
			return err
		}
		task, err := a.poll(ctx)
		if err != nil || task == nil {
			continue
		}
		a.execute(ctx, task)
		done++
	}
	return nil
}

func (a *Agent) poll(ctx context.Context) (*service.WireTask, error) {
	var resp service.PollResponse
	err := a.client.Call(ctx, service.PathPoll, &service.PollRequest{
		Tenant: a.cfg.Tenant,
		Agent:  a.cfg.ID,
		WaitMs: a.cfg.Poll.Milliseconds(),
	}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Task, nil
}

// execute runs one task and uploads its trace. While the run is in
// flight a heartbeat goroutine renews the lease at a third of its TTL,
// so a long production run is not mistaken for a dead agent.
func (a *Agent) execute(ctx context.Context, task *service.WireTask) {
	if task.DeadlineMs < 0 {
		// The campaign's deadline already passed when this task was
		// leased. Running it would produce a result nobody may use (an
		// expired campaign always fails, never serves a late sketch), so
		// decline and let the reaper write the task off.
		a.logf("agent %s: task %d: declined, campaign deadline expired", a.cfg.ID, task.TaskID)
		return
	}
	stop := a.startHeartbeats(ctx)
	defer stop()

	// Injected endpoint slowdown: the decision stream is keyed by
	// (tenant, agent, task), NOT by the run spec — a hedged re-dispatch
	// of the same task to another agent draws a fresh decision, which is
	// exactly how a real degraded endpoint behaves. Only timing changes;
	// the trace bytes are untouched, so diagnoses stay byte-identical.
	if d := faults.NewInjector(task.Faults).ForSlowdown(a.cfg.Tenant, a.cfg.ID, task.TaskID); d.Slow {
		a.logf("agent %s: task %d: injected slowdown %v", a.cfg.ID, task.TaskID, d.Delay)
		a.cfg.Delay(d.Delay)
	}

	rt, err := a.runTask(task)
	if err != nil {
		// An unrunnable task (unknown bug, bad window) is not this
		// agent's to retry: leave it to the lease reaper, which will
		// reassign and eventually write it off as lost.
		a.logf("agent %s: task %d: %v", a.cfg.ID, task.TaskID, err)
		return
	}

	up := &service.UploadRequest{
		Tenant: a.cfg.Tenant,
		Agent:  a.cfg.ID,
		TaskID: task.TaskID,
	}
	if rt == nil {
		up.Crashed = true
	} else {
		up.Trace = service.EncodeTrace(rt)
	}
	var resp service.UploadResponse
	if err := a.client.Call(ctx, service.PathUpload, up, &resp); err != nil {
		a.logf("agent %s: upload task %d: %v", a.cfg.ID, task.TaskID, err)
	}
}

// runTask executes one production run exactly as the in-process fleet
// would: rebuild the plan from the shipped window, re-derive the
// endpoint fault decision, and run instrumented.
func (a *Agent) runTask(task *service.WireTask) (rt *core.RunTrace, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("run panicked: %v", r)
		}
	}()
	pb, err := a.bugConfig(task.Bug)
	if err != nil {
		return nil, err
	}
	plan := core.BuildPlan(pb.cfg.BuildGraph(), task.Window, task.Feats)
	dec := faults.NewInjector(task.Faults).ForRun(task.Spec.EndpointID, task.Spec.Seed)
	return core.RunInstrumentedFaults(plan, task.Spec, dec), nil
}

func (a *Agent) bugConfig(name string) (*plannedBug, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if pb, ok := a.graphs[name]; ok {
		return pb, nil
	}
	b := bugs.ByName(name)
	if b == nil {
		return nil, fmt.Errorf("unknown bug %q", name)
	}
	pb := &plannedBug{cfg: b.GistConfig()}
	// Warm the memoized graph while holding the lock so concurrent
	// tasks against a fresh bug compile once.
	pb.cfg.BuildGraph()
	a.graphs[name] = pb
	return pb, nil
}

// startHeartbeats renews this agent's leases every lease/3 until the
// returned stop function is called.
func (a *Agent) startHeartbeats(ctx context.Context) (stop func()) {
	interval := a.lease / 3
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				var resp service.HeartbeatResponse
				_ = a.client.Call(ctx, service.PathHeartbeat, &service.HeartbeatRequest{
					Tenant: a.cfg.Tenant,
					Agent:  a.cfg.ID,
				}, &resp)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}
