// Package telemetry is the pipeline's self-observation layer: phase
// spans (how long each stage of a diagnosis took), counters and gauges
// (what the fleet, the caches, and the fault injector did), a
// structured JSONL event log, and point-in-time metrics snapshots.
//
// The paper measures Gist's own runtime per phase (§5.3: static
// analysis vs. slice tracking vs. ranking) and argues that an
// in-production tool must account for its own overhead; this package is
// that accounting for the reproduction, covering the layers later PRs
// added (parallel fleet, memoized analysis, chaos injection).
//
// Two contracts shape the design:
//
//   - Zero cost when off. A nil *Tracer is fully functional: every
//     method is a no-op that allocates nothing, StartSpan returns a
//     stack-value Span whose End does nothing, so hot paths can be
//     instrumented unconditionally.
//   - Determinism-neutral. Telemetry only observes; nothing the
//     pipeline computes may depend on a Tracer. Recorded durations and
//     timestamps are wall-clock and therefore vary run to run, but the
//     diagnosis output (sketches, rankings, FleetHealth) is byte-identical
//     with tracing on or off, at any worker width — the regression test
//     in internal/experiments enforces this.
//
// Concurrency: a Tracer is safe for concurrent use; fleet workers
// record spans from their own goroutines. Counter updates and span
// aggregation are mutex-protected (spans end at run granularity, not
// per instruction, so contention is negligible).
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Canonical phase names recorded by the pipeline. Keeping them as
// constants makes the BENCH JSON schema and the DESIGN.md inventory
// greppable from one place.
const (
	PhaseDiscovery    = "discovery"     // uninstrumented search for the first failure
	PhaseTICFG        = "ticfg_build"   // thread-interleaved CFG construction
	PhaseSlice        = "slice"         // backward slicing (incl. deadlock merge)
	PhasePlan         = "plan_build"    // PT start/stop + watchpoint planning per σ
	PhaseRunExec      = "run_exec"      // one instrumented production run (client side)
	PhaseDecode       = "pt_decode"     // PT trace decode incl. salvage
	PhaseWatch        = "watch_collect" // watchpoint trap collection + transit faults
	PhaseFleet        = "fleet_collect" // one iteration's fleet dispatch + admission
	PhaseRank         = "rank"          // predictor extraction + statistical ranking
	PhaseSketch       = "sketch_render" // failure-sketch assembly
	EventRuntimeStats = "runtime"       // periodic runtime.MemStats sample
)

// PhaseStat aggregates every span recorded under one phase name.
type PhaseStat struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	MaxNS   int64 `json:"max_ns"`
}

// TotalMS is TotalNS in milliseconds, for human-facing tables.
func (p PhaseStat) TotalMS() float64 { return float64(p.TotalNS) / 1e6 }

// Tracer records spans, counters, and gauges, optionally streaming each
// span as one JSONL event. The zero value is NOT usable; construct with
// New or NewWithWriter. A nil *Tracer disables everything.
type Tracer struct {
	mu       sync.Mutex
	start    time.Time
	w        io.Writer // optional JSONL sink
	werr     error     // first write error, reported by Err
	phases   map[string]*PhaseStat
	counters map[string]int64
	gauges   map[string]int64
	// campaigns holds per-tenant aggregates keyed by campaign label, so
	// one tracer shared by a multi-bug scheduler can still attribute
	// spans and counters to the diagnosis that produced them.
	campaigns map[string]*campaignAgg
}

// campaignAgg is one campaign label's private aggregate view.
type campaignAgg struct {
	phases   map[string]*PhaseStat
	counters map[string]int64
}

// New returns a Tracer that aggregates in memory only.
func New() *Tracer { return NewWithWriter(nil) }

// NewWithWriter returns a Tracer that additionally streams one JSON
// object per line to w (a span event per ended span, a runtime event
// per sampler tick). w may be nil.
func NewWithWriter(w io.Writer) *Tracer {
	return &Tracer{
		start:     time.Now(),
		w:         w,
		phases:    make(map[string]*PhaseStat),
		counters:  make(map[string]int64),
		gauges:    make(map[string]int64),
		campaigns: make(map[string]*campaignAgg),
	}
}

// OpenTrace creates path and returns a Tracer streaming JSONL to it and
// a close function that flushes and closes the file. The caller must
// invoke close before reading metrics that depend on the file.
func OpenTrace(path string) (*Tracer, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	bw := bufio.NewWriter(f)
	t := NewWithWriter(bw)
	closeFn := func() error {
		t.mu.Lock()
		ferr := bw.Flush()
		t.mu.Unlock()
		if cerr := f.Close(); ferr == nil {
			ferr = cerr
		}
		return ferr
	}
	return t, closeFn, nil
}

// Span is one in-flight phase measurement. The zero value (from a nil
// Tracer) is inert.
type Span struct {
	t     *Tracer
	name  string
	label string
	start time.Time
}

// StartSpan begins timing one phase occurrence. On a nil Tracer it
// returns an inert Span without touching the clock.
func (t *Tracer) StartSpan(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: time.Now()}
}

// StartSpanL is StartSpan with a campaign label: the span still folds
// into the global phase aggregate, but additionally into the labeled
// campaign's view, and the JSONL event carries the label. An empty
// label is exactly StartSpan, so unlabeled pipelines emit byte-identical
// event logs.
func (t *Tracer) StartSpanL(name, label string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, label: label, start: time.Now()}
}

// End finishes the span, folding its duration into the phase aggregate
// and emitting a JSONL event when the tracer has a writer.
func (s Span) End() {
	if s.t == nil {
		return
	}
	d := time.Since(s.start)
	t := s.t
	t.mu.Lock()
	fold := func(phases map[string]*PhaseStat) {
		ps := phases[s.name]
		if ps == nil {
			ps = &PhaseStat{}
			phases[s.name] = ps
		}
		ps.Count++
		ps.TotalNS += d.Nanoseconds()
		if d.Nanoseconds() > ps.MaxNS {
			ps.MaxNS = d.Nanoseconds()
		}
	}
	fold(t.phases)
	if s.label != "" {
		fold(t.campaign(s.label).phases)
	}
	if t.w != nil && t.werr == nil {
		var err error
		if s.label != "" {
			_, err = fmt.Fprintf(t.w, `{"ev":"span","name":%q,"campaign":%q,"t_us":%d,"dur_us":%d}`+"\n",
				s.name, s.label, s.start.Sub(t.start).Microseconds(), d.Microseconds())
		} else {
			_, err = fmt.Fprintf(t.w, `{"ev":"span","name":%q,"t_us":%d,"dur_us":%d}`+"\n",
				s.name, s.start.Sub(t.start).Microseconds(), d.Microseconds())
		}
		if err != nil {
			t.werr = err
		}
	}
	t.mu.Unlock()
}

// campaign returns (creating on first use) the labeled aggregate.
// Callers must hold t.mu.
func (t *Tracer) campaign(label string) *campaignAgg {
	c := t.campaigns[label]
	if c == nil {
		c = &campaignAgg{
			phases:   make(map[string]*PhaseStat),
			counters: make(map[string]int64),
		}
		t.campaigns[label] = c
	}
	return c
}

// Add increments a named counter. Nil-safe.
func (t *Tracer) Add(name string, delta int64) {
	if t == nil || delta == 0 {
		return
	}
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
}

// AddL increments a named counter under a campaign label: the global
// counter advances exactly as with Add, and the labeled campaign's
// private counter advances alongside it. An empty label is exactly Add.
// Nil-safe.
func (t *Tracer) AddL(label, name string, delta int64) {
	if t == nil || delta == 0 {
		return
	}
	t.mu.Lock()
	t.counters[name] += delta
	if label != "" {
		t.campaign(label).counters[name] += delta
	}
	t.mu.Unlock()
}

// SetGauge records the latest value of a named gauge. Nil-safe.
func (t *Tracer) SetGauge(name string, v int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.gauges[name] = v
	t.mu.Unlock()
}

// Counter returns the current value of a counter (0 on a nil Tracer).
func (t *Tracer) Counter(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[name]
}

// Err reports the first JSONL write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.werr
}

// RuntimeStats is the Go-runtime portion of a snapshot.
type RuntimeStats struct {
	GoMaxProcs      int     `json:"gomaxprocs"`
	NumGoroutine    int     `json:"num_goroutine"`
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	NumGC           uint32  `json:"num_gc"`
	PauseTotalMS    float64 `json:"pause_total_ms"`
}

func readRuntimeStats() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		NumGoroutine:    runtime.NumGoroutine(),
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		NumGC:           ms.NumGC,
		PauseTotalMS:    float64(ms.PauseTotalNs) / 1e6,
	}
}

// CampaignStats is one campaign label's slice of a snapshot: the phase
// spans and counters attributed to that tenant via StartSpanL/AddL.
type CampaignStats struct {
	Phases   map[string]PhaseStat `json:"phases"`
	Counters map[string]int64     `json:"counters"`
}

// Snapshot is a point-in-time view of everything the tracer knows.
type Snapshot struct {
	UptimeMS float64              `json:"uptime_ms"`
	Phases   map[string]PhaseStat `json:"phases"`
	Counters map[string]int64     `json:"counters"`
	Gauges   map[string]int64     `json:"gauges,omitempty"`
	// Campaigns separates the labeled tenants of a multi-campaign run
	// (the scheduler labels each diagnosis), absent when nothing was
	// labeled so single-tenant snapshots keep their historical schema.
	Campaigns map[string]CampaignStats `json:"campaigns,omitempty"`
	Runtime   RuntimeStats             `json:"runtime"`
}

// Snapshot captures the current aggregates. On a nil Tracer it returns
// a zero snapshot (with empty, non-nil maps) so callers can serialize
// it unconditionally.
func (t *Tracer) Snapshot() Snapshot {
	snap := Snapshot{
		Phases:   make(map[string]PhaseStat),
		Counters: make(map[string]int64),
	}
	if t == nil {
		return snap
	}
	t.mu.Lock()
	snap.UptimeMS = float64(time.Since(t.start).Nanoseconds()) / 1e6
	for name, ps := range t.phases {
		snap.Phases[name] = *ps
	}
	for name, v := range t.counters {
		snap.Counters[name] = v
	}
	if len(t.gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(t.gauges))
		for name, v := range t.gauges {
			snap.Gauges[name] = v
		}
	}
	if len(t.campaigns) > 0 {
		snap.Campaigns = make(map[string]CampaignStats, len(t.campaigns))
		for label, c := range t.campaigns {
			cs := CampaignStats{
				Phases:   make(map[string]PhaseStat, len(c.phases)),
				Counters: make(map[string]int64, len(c.counters)),
			}
			for name, ps := range c.phases {
				cs.Phases[name] = *ps
			}
			for name, v := range c.counters {
				cs.Counters[name] = v
			}
			snap.Campaigns[label] = cs
		}
	}
	t.mu.Unlock()
	snap.Runtime = readRuntimeStats()
	return snap
}

// WriteMetricsJSON serializes a snapshot (indented, trailing newline)
// to path. Nil-safe: a nil Tracer writes a zero snapshot, so a CLI can
// honor -metrics-json without special-casing disabled telemetry.
func (t *Tracer) WriteMetricsJSON(path string) error {
	data, err := json.MarshalIndent(t.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PhaseNames returns the recorded phase names, sorted, for stable
// rendering.
func (s Snapshot) PhaseNames() []string {
	names := make([]string, 0, len(s.Phases))
	for name := range s.Phases {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// StartRuntimeSampler emits one EventRuntimeStats JSONL event and
// refreshes runtime gauges every period until the returned stop
// function is called. Nil-safe; stop is idempotent.
func (t *Tracer) StartRuntimeSampler(period time.Duration) (stop func()) {
	if t == nil {
		return func() {}
	}
	if period <= 0 {
		period = 5 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				t.sampleRuntime()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

func (t *Tracer) sampleRuntime() {
	rs := readRuntimeStats()
	t.mu.Lock()
	t.gauges["runtime.heap_alloc_bytes"] = int64(rs.HeapAllocBytes)
	t.gauges["runtime.num_goroutine"] = int64(rs.NumGoroutine)
	t.gauges["runtime.num_gc"] = int64(rs.NumGC)
	if t.w != nil && t.werr == nil {
		_, err := fmt.Fprintf(t.w,
			`{"ev":%q,"t_us":%d,"heap_alloc_bytes":%d,"total_alloc_bytes":%d,"num_gc":%d,"num_goroutine":%d}`+"\n",
			EventRuntimeStats, time.Since(t.start).Microseconds(),
			rs.HeapAllocBytes, rs.TotalAllocBytes, rs.NumGC, rs.NumGoroutine)
		if err != nil {
			t.werr = err
		}
	}
	t.mu.Unlock()
}
