package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// A nil Tracer must be a complete no-op: every method callable, zero
// allocations on the span path.
func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan(PhaseRank)
	sp.End()
	tr.Add("x", 1)
	tr.SetGauge("g", 2)
	if tr.Counter("x") != 0 {
		t.Fatal("nil tracer counter should read 0")
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	stop := tr.StartRuntimeSampler(time.Millisecond)
	stop()
	snap := tr.Snapshot()
	if len(snap.Phases) != 0 || len(snap.Counters) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", snap)
	}
}

func TestNilSpanPathAllocationFree(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan(PhaseDecode)
		sp.End()
		tr.Add("c", 1)
	})
	if allocs != 0 {
		t.Fatalf("nil telemetry path allocates: %v allocs/op", allocs)
	}
}

func TestSpanAggregation(t *testing.T) {
	tr := New()
	for i := 0; i < 3; i++ {
		sp := tr.StartSpan(PhaseSlice)
		sp.End()
	}
	snap := tr.Snapshot()
	ps, ok := snap.Phases[PhaseSlice]
	if !ok || ps.Count != 3 {
		t.Fatalf("want 3 slice spans, got %+v", snap.Phases)
	}
	if ps.TotalNS < 0 || ps.MaxNS > ps.TotalNS {
		t.Fatalf("inconsistent aggregate: %+v", ps)
	}
}

func TestCountersAndGauges(t *testing.T) {
	tr := New()
	tr.Add("fleet.lost", 2)
	tr.Add("fleet.lost", 3)
	tr.Add("zero", 0) // no-op, should not materialize
	tr.SetGauge("width", 8)
	if got := tr.Counter("fleet.lost"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	snap := tr.Snapshot()
	if _, ok := snap.Counters["zero"]; ok {
		t.Fatal("zero delta should not create a counter")
	}
	if snap.Gauges["width"] != 8 {
		t.Fatalf("gauge = %d, want 8", snap.Gauges["width"])
	}
}

// Every JSONL line must parse as a JSON object with the event schema.
func TestJSONLWellFormed(t *testing.T) {
	var buf bytes.Buffer
	tr := NewWithWriter(&buf)
	sp := tr.StartSpan(PhaseRank)
	sp.End()
	tr.sampleRuntime()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v: %s", lines, err, sc.Text())
		}
		if _, ok := ev["ev"]; !ok {
			t.Fatalf("line %d missing ev field: %s", lines, sc.Text())
		}
	}
	if lines != 2 {
		t.Fatalf("want 2 events (span + runtime), got %d", lines)
	}
}

func TestOpenTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr, closeFn, err := OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	sp := tr.StartSpan(PhaseSketch)
	sp.End()
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"name":"sketch_render"`) {
		t.Fatalf("trace file missing span: %s", data)
	}
}

func TestWriteMetricsJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	tr := New()
	tr.Add("cache.graph_builds", 1)
	sp := tr.StartSpan(PhaseTICFG)
	sp.End()
	if err := tr.WriteMetricsJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["cache.graph_builds"] != 1 {
		t.Fatalf("counter lost in round trip: %+v", snap)
	}
	if _, ok := snap.Phases[PhaseTICFG]; !ok {
		t.Fatalf("phase lost in round trip: %+v", snap)
	}
	if snap.Runtime.GoMaxProcs < 1 {
		t.Fatalf("runtime stats missing: %+v", snap.Runtime)
	}

	// A nil tracer still writes a valid (zero) snapshot.
	var nilTr *Tracer
	if err := nilTr.WriteMetricsJSON(path); err != nil {
		t.Fatal(err)
	}
}

// Spans and counters from many goroutines must aggregate without loss.
func TestConcurrentRecording(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := tr.StartSpan(PhaseRunExec)
				tr.Add("runs", 1)
				sp.End()
			}
		}()
	}
	wg.Wait()
	snap := tr.Snapshot()
	if snap.Phases[PhaseRunExec].Count != workers*per {
		t.Fatalf("span count = %d, want %d", snap.Phases[PhaseRunExec].Count, workers*per)
	}
	if snap.Counters["runs"] != workers*per {
		t.Fatalf("counter = %d, want %d", snap.Counters["runs"], workers*per)
	}
}

func TestPhaseNamesSorted(t *testing.T) {
	tr := New()
	for _, name := range []string{PhaseSketch, PhaseDiscovery, PhaseRank} {
		sp := tr.StartSpan(name)
		sp.End()
	}
	names := tr.Snapshot().PhaseNames()
	if len(names) != 3 || names[0] != PhaseDiscovery || names[1] != PhaseRank || names[2] != PhaseSketch {
		t.Fatalf("unsorted phase names: %v", names)
	}
}

// Campaign labels must split spans and counters per tenant while the
// global aggregates stay exactly what unlabeled recording would produce.
func TestCampaignLabels(t *testing.T) {
	var buf bytes.Buffer
	tr := NewWithWriter(&buf)
	for i := 0; i < 2; i++ {
		sp := tr.StartSpanL(PhaseFleet, "pbzip2")
		sp.End()
	}
	sp := tr.StartSpanL(PhaseFleet, "curl")
	sp.End()
	sp = tr.StartSpan(PhaseFleet) // unlabeled
	sp.End()
	tr.AddL("pbzip2", "fleet.dispatched", 10)
	tr.AddL("curl", "fleet.dispatched", 5)
	tr.AddL("", "fleet.dispatched", 1) // empty label == Add

	snap := tr.Snapshot()
	if got := snap.Phases[PhaseFleet].Count; got != 4 {
		t.Fatalf("global phase count = %d, want 4", got)
	}
	if got := snap.Counters["fleet.dispatched"]; got != 16 {
		t.Fatalf("global counter = %d, want 16", got)
	}
	if len(snap.Campaigns) != 2 {
		t.Fatalf("want 2 campaigns, got %v", snap.Campaigns)
	}
	pb := snap.Campaigns["pbzip2"]
	if pb.Phases[PhaseFleet].Count != 2 || pb.Counters["fleet.dispatched"] != 10 {
		t.Fatalf("pbzip2 campaign stats wrong: %+v", pb)
	}
	cu := snap.Campaigns["curl"]
	if cu.Phases[PhaseFleet].Count != 1 || cu.Counters["fleet.dispatched"] != 5 {
		t.Fatalf("curl campaign stats wrong: %+v", cu)
	}

	// JSONL events: labeled spans carry the campaign field, unlabeled
	// spans keep the historical schema (no extra key).
	labeled, unlabeled := 0, 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if _, ok := ev["campaign"]; ok {
			labeled++
		} else {
			unlabeled++
		}
	}
	if labeled != 3 || unlabeled != 1 {
		t.Fatalf("labeled/unlabeled events = %d/%d, want 3/1", labeled, unlabeled)
	}
}

// An unlabeled tracer's snapshot must not grow a campaigns section —
// single-tenant metrics JSON keeps its historical schema.
func TestNoCampaignsWhenUnlabeled(t *testing.T) {
	tr := New()
	sp := tr.StartSpan(PhaseRank)
	sp.End()
	tr.Add("x", 1)
	data, err := json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "campaigns") {
		t.Fatalf("unlabeled snapshot leaked campaigns section: %s", data)
	}
	var nilTr *Tracer
	nilTr.AddL("x", "y", 1) // nil-safe
	spn := nilTr.StartSpanL(PhaseRank, "x")
	spn.End()
}
