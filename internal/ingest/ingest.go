// Package ingest is the streaming front-end of the gist service: a
// WER-style collector (§7 of the paper) that stands between the
// production report firehose and the diagnosis stack. Every incoming
// failure report is reduced to its failure signature
// (vm.FailureReport.ID(): bug class + failing PC + stack + other
// blocked PCs); the first report of a signature launches one campaign,
// every recurrence folds into that campaign's cluster as incremental
// evidence instead of spawning a duplicate diagnosis. Lumos-style
// online operation (PAPERS.md): statistics update as reports stream in,
// and finished sketches are served from a size-bounded LRU cache so
// server memory stays flat under sustained load.
package ingest

import (
	"container/list"
	"sync"

	"repro/internal/core"
	"repro/internal/vm"
)

// Key identifies one diagnosis stream: a tenant's bug name refined by
// the failure signature. Two distinct signatures under one bug name are
// two keys — the fix for the (tenant, bug)-only dedup that collapsed
// distinct root causes into one campaign.
type Key struct {
	Tenant string
	Bug    string
	Sig    string
}

// Signature reduces a report to its cluster identity. A nil report (a
// submit that asks the server to discover the failure itself) has no
// signature; dedup then falls back to the bug name alone.
func Signature(report *vm.FailureReport) string {
	if report == nil {
		return ""
	}
	return report.ID()
}

// Decision is the outcome of ingesting one report.
type Decision struct {
	Key Key
	// Novel is true exactly once per key: for the report that must
	// launch a campaign. Every later report folds into the cluster.
	Novel bool
	// Reports is the cluster's recurrence count including this report.
	Reports int
	// Seq is the global ingest sequence number of this report (1-based).
	Seq uint64
}

// Evidence is the accumulated state of one signature's report stream:
// the cluster (shared admission rule with the fleet-sweep clusterer)
// plus ingest-order bookkeeping. No wall-clock time — determinism.
type Evidence struct {
	core.FailureCluster
	// FirstSeq/LastSeq are the ingest sequence numbers of the first and
	// latest report of this signature.
	FirstSeq, LastSeq uint64
}

// Stats summarizes a frontend's traffic.
type Stats struct {
	// Reports is every ingested report; Novel of them launched
	// campaigns, the rest were folded as duplicates.
	Reports, Novel, Folded uint64
}

// Frontend dedups a report stream by failure signature. Safe for
// concurrent use; decisions are atomic, so exactly one caller observes
// Novel for a given key no matter how submits interleave.
type Frontend struct {
	mu       sync.Mutex
	seq      uint64
	sigs     map[Key]*Evidence
	maxSeeds int
}

// NewFrontend returns an empty frontend. maxSeeds bounds each
// signature's recorded seed list (0 = 16, like ClusterConfig).
func NewFrontend(maxSeeds int) *Frontend {
	if maxSeeds == 0 {
		maxSeeds = 16
	}
	return &Frontend{sigs: make(map[Key]*Evidence), maxSeeds: maxSeeds}
}

// Ingest folds one report into the stream and decides its fate:
// Novel=true means the caller must launch a campaign for the key;
// otherwise the report was recorded as a recurrence of the live one.
func (f *Frontend) Ingest(tenant, bug string, report *vm.FailureReport, seed int64) Decision {
	key := Key{Tenant: tenant, Bug: bug, Sig: Signature(report)}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	ev := f.sigs[key]
	novel := ev == nil
	if novel {
		ev = &Evidence{
			FailureCluster: core.FailureCluster{ID: key.Sig, Report: report},
			FirstSeq:       f.seq,
		}
		f.sigs[key] = ev
	}
	ev.Admit(seed, f.maxSeeds)
	ev.LastSeq = f.seq
	return Decision{Key: key, Novel: novel, Reports: ev.Count, Seq: f.seq}
}

// Known reports whether a (tenant, bug, signature) stream is already
// registered, without recording anything. The admission path's shed
// decision needs this probe: a novel report rejected for lack of launch
// budget must not burn its signature's one Novel slot — it has to stay
// novel for the retry that finally gets admitted.
func (f *Frontend) Known(tenant, bug string, report *vm.FailureReport) bool {
	key := Key{Tenant: tenant, Bug: bug, Sig: Signature(report)}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sigs[key] != nil
}

// Evidence returns a copy of the accumulated evidence for a key, or nil
// if the key has never been seen.
func (f *Frontend) Evidence(key Key) *Evidence {
	f.mu.Lock()
	defer f.mu.Unlock()
	ev := f.sigs[key]
	if ev == nil {
		return nil
	}
	cp := *ev
	cp.Seeds = append([]int64(nil), ev.Seeds...)
	return &cp
}

// Stats returns the traffic counters so far.
func (f *Frontend) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := Stats{Reports: f.seq, Novel: uint64(len(f.sigs))}
	s.Folded = s.Reports - s.Novel
	return s
}

// CacheStats summarizes a sketch cache's behavior.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
	Bytes, MaxBytes         int64
}

// SketchCache is a size-bounded LRU over finished sketch bytes. Serving
// a sketch is pure read traffic, and every sketch is durably recoverable
// from the checkpoint store, so eviction only costs a re-render — the
// cache exists to keep server memory flat while a long-lived deployment
// accumulates finished campaigns.
type SketchCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[string]*list.Element
	stats    CacheStats
}

type cacheEntry struct {
	key    string
	sketch []byte
}

// NewSketchCache returns a cache bounded to maxBytes of sketch payload
// (keys and bookkeeping are not charged). maxBytes <= 0 means an
// unbounded cache.
func NewSketchCache(maxBytes int64) *SketchCache {
	return &SketchCache{
		maxBytes: maxBytes,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get returns the cached sketch for key and marks it most recently
// used, or nil on a miss. The returned slice is shared; callers must
// not mutate it.
func (c *SketchCache) Get(key string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.entries[key]
	if el == nil {
		c.stats.Misses++
		return nil
	}
	c.stats.Hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).sketch
}

// Put stores a sketch, evicting least-recently-used entries until the
// new total fits. A sketch larger than the whole budget is refused
// (cached nowhere) rather than evicting everything for nothing.
func (c *SketchCache) Put(key string, sketch []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes > 0 && int64(len(sketch)) > c.maxBytes {
		return
	}
	if el := c.entries[key]; el != nil {
		ent := el.Value.(*cacheEntry)
		c.bytes += int64(len(sketch)) - int64(len(ent.sketch))
		ent.sketch = sketch
		c.order.MoveToFront(el)
	} else {
		el = c.order.PushFront(&cacheEntry{key: key, sketch: sketch})
		c.entries[key] = el
		c.bytes += int64(len(sketch))
	}
	for c.maxBytes > 0 && c.bytes > c.maxBytes {
		back := c.order.Back()
		ent := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.entries, ent.key)
		c.bytes -= int64(len(ent.sketch))
		c.stats.Evictions++
	}
}

// Remove drops a key if present.
func (c *SketchCache) Remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el := c.entries[key]; el != nil {
		ent := el.Value.(*cacheEntry)
		c.order.Remove(el)
		delete(c.entries, ent.key)
		c.bytes -= int64(len(ent.sketch))
	}
}

// Stats returns the cache counters and current occupancy.
func (c *SketchCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Bytes = c.bytes
	s.MaxBytes = c.maxBytes
	return s
}
