package ingest

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/vm"
)

func report(instr int) *vm.FailureReport {
	return &vm.FailureReport{Kind: vm.FaultNullDeref, InstrID: instr}
}

// TestFrontendDedup pins the core routing rule: one Novel decision per
// distinct (tenant, bug, signature), recurrences fold with exact counts,
// and distinct signatures under one bug name stay separate streams.
func TestFrontendDedup(t *testing.T) {
	f := NewFrontend(4)

	d1 := f.Ingest("acme", "crash", report(10), 1)
	if !d1.Novel || d1.Reports != 1 || d1.Seq != 1 {
		t.Fatalf("first report: %+v", d1)
	}
	d2 := f.Ingest("acme", "crash", report(10), 2)
	if d2.Novel || d2.Reports != 2 {
		t.Fatalf("recurrence: %+v", d2)
	}
	if d2.Key != d1.Key {
		t.Fatalf("same signature produced different keys: %+v vs %+v", d1.Key, d2.Key)
	}

	// Same bug name, different failing PC: a distinct root cause that the
	// old (tenant, bug) dedup would have swallowed.
	d3 := f.Ingest("acme", "crash", report(11), 3)
	if !d3.Novel || d3.Key == d1.Key {
		t.Fatalf("distinct signature not routed to a new campaign: %+v", d3)
	}

	// Tenants are isolated.
	d4 := f.Ingest("beta", "crash", report(10), 4)
	if !d4.Novel {
		t.Fatalf("tenant isolation broken: %+v", d4)
	}

	// Nil reports fall back to name-only dedup.
	d5 := f.Ingest("acme", "other", nil, 5)
	d6 := f.Ingest("acme", "other", nil, 6)
	if !d5.Novel || d6.Novel || d5.Key.Sig != "" {
		t.Fatalf("nil-report dedup: %+v / %+v", d5, d6)
	}

	st := f.Stats()
	if st.Reports != 6 || st.Novel != 4 || st.Folded != 2 {
		t.Fatalf("stats: %+v", st)
	}

	ev := f.Evidence(d1.Key)
	if ev == nil || ev.Count != 2 || len(ev.Seeds) != 2 || ev.FirstSeq != 1 || ev.LastSeq != 2 {
		t.Fatalf("evidence: %+v", ev)
	}
	if f.Evidence(Key{Tenant: "nobody"}) != nil {
		t.Fatal("evidence for unseen key")
	}
}

// TestFrontendSeedCap pins that evidence seed lists stay bounded under
// sustained recurrences while the count keeps growing.
func TestFrontendSeedCap(t *testing.T) {
	f := NewFrontend(3)
	var key Key
	for s := int64(0); s < 50; s++ {
		key = f.Ingest("t", "b", report(1), s).Key
	}
	ev := f.Evidence(key)
	if ev.Count != 50 || len(ev.Seeds) != 3 {
		t.Fatalf("count=%d seeds=%v", ev.Count, ev.Seeds)
	}
}

// TestFrontendConcurrentExactlyOnce hammers one frontend from many
// goroutines and checks the property the submit path depends on: for
// every signature exactly one caller sees Novel, counts are exact, and
// sequence numbers are unique — regardless of interleaving. Run under
// -race like the rest of the determinism suites.
func TestFrontendConcurrentExactlyOnce(t *testing.T) {
	const (
		workers = 8
		perSig  = 25
		sigs    = 10
	)
	f := NewFrontend(0)
	var mu sync.Mutex
	novel := make(map[Key]int)
	seqs := make(map[uint64]bool)

	// Fan a fixed multiset of submissions over the workers; which worker
	// ingests which report is up to the scheduler.
	var wg sync.WaitGroup
	type sub struct {
		sig  int
		seed int64
	}
	var subs []sub
	for s := 0; s < sigs; s++ {
		for i := 0; i < perSig; i++ {
			subs = append(subs, sub{sig: s, seed: int64(s*1000 + i)})
		}
	}
	ch := make(chan sub, len(subs))
	for _, s := range subs {
		ch <- s
	}
	close(ch)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range ch {
				d := f.Ingest("t", fmt.Sprintf("bug%d", s.sig%3), report(s.sig), s.seed)
				mu.Lock()
				if d.Novel {
					novel[d.Key]++
				}
				if seqs[d.Seq] {
					t.Errorf("duplicate seq %d", d.Seq)
				}
				seqs[d.Seq] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if len(novel) != sigs {
		t.Fatalf("%d novel keys, want %d", len(novel), sigs)
	}
	for k, n := range novel {
		if n != 1 {
			t.Errorf("key %+v novel %d times", k, n)
		}
		ev := f.Evidence(k)
		if ev.Count != perSig {
			t.Errorf("key %+v count %d, want %d", k, ev.Count, perSig)
		}
	}
	st := f.Stats()
	if st.Reports != uint64(len(subs)) || st.Novel != sigs {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSketchCacheLRU pins eviction order, the byte bound, update-in-
// place accounting, and the oversized-entry refusal.
func TestSketchCacheLRU(t *testing.T) {
	c := NewSketchCache(10)
	c.Put("a", []byte("aaaa")) // 4 bytes
	c.Put("b", []byte("bbbb")) // 8 bytes
	if got := c.Get("a"); string(got) != "aaaa" {
		t.Fatalf("a: %q", got)
	}
	// "a" is now MRU; inserting 4 more bytes must evict "b", not "a".
	c.Put("c", []byte("cccc"))
	if c.Get("b") != nil {
		t.Fatal("b should have been evicted (LRU)")
	}
	if c.Get("a") == nil || c.Get("c") == nil {
		t.Fatal("a/c should have survived")
	}
	st := c.Stats()
	if st.Bytes != 8 || st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("over budget: %+v", st)
	}

	// Updating a key in place adjusts accounting without duplicating.
	c.Put("a", []byte("aa"))
	if st := c.Stats(); st.Bytes != 6 || st.Entries != 2 {
		t.Fatalf("after update: %+v", st)
	}

	// An entry larger than the whole budget is refused and evicts nothing.
	c.Put("huge", make([]byte, 11))
	if c.Get("huge") != nil {
		t.Fatal("oversized entry cached")
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("oversized Put disturbed the cache: %+v", st)
	}

	c.Remove("a")
	if c.Get("a") != nil {
		t.Fatal("removed key still cached")
	}
	if st := c.Stats(); st.Bytes != 4 || st.Entries != 1 {
		t.Fatalf("after remove: %+v", st)
	}
}

// TestSketchCacheUnbounded pins that maxBytes <= 0 disables eviction.
func TestSketchCacheUnbounded(t *testing.T) {
	c := NewSketchCache(0)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), make([]byte, 1000))
	}
	if st := c.Stats(); st.Entries != 100 || st.Evictions != 0 {
		t.Fatalf("unbounded cache evicted: %+v", st)
	}
}

// TestKnownIsReadOnly pins the shed-probe contract: Known answers
// registration without recording anything, so a report shed by
// admission control keeps its one Novel slot for the retry that lands.
func TestKnownIsReadOnly(t *testing.T) {
	f := NewFrontend(4)

	if f.Known("acme", "crash", report(10)) {
		t.Fatal("Known true before any ingest")
	}
	// Probing must not consume the signature's Novel slot or bump any
	// counter.
	for i := 0; i < 5; i++ {
		f.Known("acme", "crash", report(10))
	}
	if st := f.Stats(); st.Reports != 0 || st.Novel != 0 {
		t.Fatalf("stats after probes = %+v, want untouched", st)
	}
	d := f.Ingest("acme", "crash", report(10), 1)
	if !d.Novel {
		t.Fatalf("first ingest after probes = %+v, want Novel", d)
	}
	if !f.Known("acme", "crash", report(10)) {
		t.Fatal("Known false after ingest")
	}
	// Distinct tenant, bug, or signature are distinct streams.
	if f.Known("beta", "crash", report(10)) || f.Known("acme", "other", report(10)) ||
		f.Known("acme", "crash", report(11)) {
		t.Fatal("Known leaked across tenant/bug/signature boundaries")
	}
}
