package sampling

import (
	"fmt"
	"testing"

	"repro/internal/ir"
	"repro/internal/vm"
)

// A program whose failure is predicted by one branch outcome that occurs
// exactly once per failing run.
const seqBug = `global int mode = 0;
int main() {
	int x = input(0);
	for (int i = 0; i < 200; i++) { mode = mode + i; }
	if (x == 7) {
		mode = -1;
	}
	int* p = malloc(8);
	if (mode == -1) { p = null; }
	return *p;
}`

func failingWorkload() vm.Workload { return vm.Workload{Ints: []int64{7}} }

func TestAlwaysOnObservesImmediately(t *testing.T) {
	prog := ir.MustCompile("t.mc", seqBug)
	res := Run(prog, vm.Config{Seed: 1, Workload: failingWorkload()}, Config{Rate: 1, Seed: 9})
	if !res.Outcome.Failed {
		t.Fatal("run should fail")
	}
	// Find the x==7 branch predicate among the observations.
	var found bool
	for k := range res.Predicates {
		if k == fmt.Sprintf("br:%d:taken", brAtLine(prog, 5)) {
			found = true
		}
	}
	if !found {
		t.Errorf("always-on sampling missed the discriminating branch; got %v", res.Predicates)
	}
}

func brAtLine(p *ir.Program, line int) int {
	for _, in := range p.Instrs {
		if in.Op == ir.OpBr && in.Pos.Line == line {
			return in.ID
		}
	}
	return -1
}

func TestSparseSamplingMissesRareEvents(t *testing.T) {
	prog := ir.MustCompile("t.mc", seqBug)
	pred := fmt.Sprintf("br:%d:taken", brAtLine(prog, 5))

	alwaysOn := RunsUntilObserved(prog, pred, Config{Rate: 1, Seed: 5}, failingWorkload(), 1, 50)
	sparse := RunsUntilObserved(prog, pred, Config{Rate: 200, Seed: 5}, failingWorkload(), 1, 50)
	if alwaysOn != 1 {
		t.Errorf("always-on monitor should observe in the first failing run, took %d", alwaysOn)
	}
	if sparse <= alwaysOn {
		t.Errorf("sparse sampling should have higher latency: always-on %d, sparse %d", alwaysOn, sparse)
	}
}

func TestSamplingCheaperThanAlwaysOn(t *testing.T) {
	prog := ir.MustCompile("t.mc", seqBug)
	always := Run(prog, vm.Config{Seed: 1, Workload: failingWorkload()}, Config{Rate: 1, Seed: 2})
	sparse := Run(prog, vm.Config{Seed: 1, Workload: failingWorkload()}, Config{Rate: 100, Seed: 2})
	if sparse.Meter.OverheadPct() >= always.Meter.OverheadPct() {
		t.Errorf("sampling at 1/100 should be cheaper: sparse %.2f%%, always %.2f%%",
			sparse.Meter.OverheadPct(), always.Meter.OverheadPct())
	}
}

func TestSamplingDeterministicInSeed(t *testing.T) {
	prog := ir.MustCompile("t.mc", seqBug)
	a := Run(prog, vm.Config{Seed: 3, Workload: failingWorkload()}, Config{Rate: 10, Seed: 4})
	b := Run(prog, vm.Config{Seed: 3, Workload: failingWorkload()}, Config{Rate: 10, Seed: 4})
	if len(a.Predicates) != len(b.Predicates) {
		t.Fatalf("nondeterministic sampling: %d vs %d predicates", len(a.Predicates), len(b.Predicates))
	}
	for k := range a.Predicates {
		if !b.Predicates[k] {
			t.Fatalf("predicate sets differ on %s", k)
		}
	}
}

func TestRateOneIsAlwaysOnForStores(t *testing.T) {
	prog := ir.MustCompile("t.mc", `
global int g;
int main() {
	g = 41;
	g = g + 1;
	return g;
}`)
	res := Run(prog, vm.Config{Seed: 1}, Config{Rate: 1, Seed: 1})
	var sawStoreVal bool
	for k := range res.Predicates {
		if k == fmt.Sprintf("val:%d:42", storeAtLine(prog, 5)) {
			sawStoreVal = true
		}
	}
	if !sawStoreVal {
		t.Errorf("always-on monitor missed the store value; got %v", res.Predicates)
	}
}

func storeAtLine(p *ir.Program, line int) int {
	for _, in := range p.Instrs {
		if in.Op == ir.OpStore && in.Pos.Line == line {
			return in.ID
		}
	}
	return -1
}
