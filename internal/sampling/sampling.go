// Package sampling implements a cooperative-bug-isolation-style baseline
// (CBI/CCI/PBI family): predicates are observed by *sampling* rather than
// always-on tracking. Sampling keeps the per-run cost low, but a rare
// failure-predicting event is seen only with probability 1/rate per
// occurrence — which is exactly the root-cause-diagnosis *latency*
// problem (§2, §7) that motivates Gist's always-on, slice-focused design.
// The ablation benchmarks measure how many failing runs each approach
// needs before the discriminating predicate has been observed.
package sampling

import (
	"fmt"
	"math/rand"

	"repro/internal/cost"
	"repro/internal/ir"
	"repro/internal/vm"
)

// perSamplePredicateMC is the software cost of evaluating and logging one
// sampled predicate (counter decrement + slow-path logging, CBI-style).
const perSamplePredicateMC = 4_000

// Config configures a sampling monitor.
type Config struct {
	// Rate samples one out of every Rate candidate events; 1 = always on.
	Rate int
	// Seed drives the sampling decisions (independent of the program
	// schedule seed).
	Seed int64
}

// Result is a single monitored run.
type Result struct {
	Outcome *vm.Outcome
	// Predicates observed this run: branch outcomes ("br:<id>:taken") and
	// shared-store values ("val:<id>:<v>").
	Predicates map[string]bool
	Meter      cost.Meter
}

// Run executes prog with sampled predicate monitoring.
func Run(prog *ir.Program, vmCfg vm.Config, s Config) *Result {
	if s.Rate < 1 {
		s.Rate = 1
	}
	res := &Result{Predicates: make(map[string]bool)}
	rng := rand.New(rand.NewSource(s.Seed))
	// Geometric countdown sampling, as in CBI: cheap fast path, sampled
	// slow path. Rate 1 is genuinely always-on.
	countdown := rng.Intn(s.Rate) + 1
	sample := func() bool {
		if s.Rate == 1 {
			return true
		}
		countdown--
		if countdown > 0 {
			return false
		}
		countdown = rng.Intn(2*s.Rate-1) + 1
		return true
	}
	vmCfg.Hooks = vm.Hooks{
		OnStep: func(t *vm.Thread, in *ir.Instr, clock int64) {
			res.Meter.AddInstr(1)
		},
		OnBranch: func(t *vm.Thread, in *ir.Instr, taken bool, clock int64) {
			if sample() {
				res.Meter.AddExtra(perSamplePredicateMC)
				res.Predicates[branchKey(in.ID, taken)] = true
			}
		},
		OnStore: func(t *vm.Thread, in *ir.Instr, addr, val, size int64, clock int64) {
			if !vm.IsStackAddr(addr) && sample() {
				res.Meter.AddExtra(perSamplePredicateMC)
				res.Predicates[valueKey(in.ID, val)] = true
			}
		},
	}
	res.Outcome = vm.Run(prog, vmCfg)
	return res
}

func branchKey(id int, taken bool) string {
	if taken {
		return fmt.Sprintf("br:%d:taken", id)
	}
	return fmt.Sprintf("br:%d:not-taken", id)
}

func valueKey(id int, val int64) string {
	return fmt.Sprintf("val:%d:%d", id, val)
}

// RunsUntilObserved reports how many failing runs the monitor needed
// before the given predicate was observed in at least one failing run —
// the diagnosis-latency metric of the sampling ablation. Seeds are
// scanned from seedBase; runs that do not fail are not counted. It gives
// up after maxFailing failing runs and returns maxFailing+1.
func RunsUntilObserved(prog *ir.Program, predicate string, s Config, wl vm.Workload, seedBase int64, maxFailing int) int {
	failing := 0
	for seed := seedBase; failing < maxFailing; seed++ {
		res := Run(prog, vm.Config{Seed: seed, Workload: wl, PreemptMean: 3}, Config{Rate: s.Rate, Seed: seed ^ s.Seed})
		if !res.Outcome.Failed {
			continue
		}
		failing++
		if res.Predicates[predicate] {
			return failing
		}
	}
	return maxFailing + 1
}
