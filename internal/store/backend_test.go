package store

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/faults"
)

// TestMemBackendRoundTrip runs the full store lifecycle on the
// in-memory backend: save generations, reopen, read the newest back,
// and prune old ones — no filesystem involved.
func TestMemBackendRoundTrip(t *testing.T) {
	b := NewMemBackend()
	dir := "state/acme"
	s, err := Open(dir, "pbzip2", Options{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Save([]byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	re, err := Open(dir, "pbzip2", Options{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	latest := re.Latest()
	if latest == nil {
		t.Fatal("no generation survived the reopen scan")
	}
	if string(latest.Payload) != "payload-4" {
		t.Errorf("latest payload = %q, want payload-4", latest.Payload)
	}
	// Keep defaults to 3: generations 0 and 1 are pruned.
	if n := len(re.Generations()); n != 3 {
		t.Errorf("%d generations survived, want 3 (pruned)", n)
	}
	// A second name in the same directory is independent.
	s2, err := Open(dir, "curl", Options{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Latest() != nil {
		t.Error("fresh name sees another name's generations")
	}
}

// TestMemBackendIsolatesTenants checks the per-tenant keying the
// service relies on: same checkpoint name, different directories.
func TestMemBackendIsolatesTenants(t *testing.T) {
	b := NewMemBackend()
	sA, err := Open("state/tenant-a", "bug", Options{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	sB, err := Open("state/tenant-b", "bug", Options{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sA.Save([]byte("A")); err != nil {
		t.Fatal(err)
	}
	if _, err := sB.Save([]byte("B")); err != nil {
		t.Fatal(err)
	}
	reB, err := Open("state/tenant-b", "bug", Options{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	if g := reB.Latest(); g == nil || string(g.Payload) != "B" {
		t.Errorf("tenant-b latest = %v, want payload B", g)
	}
}

// TestMemBackendSurvivesDiskFaults reruns the store's fault matrix on
// the in-memory backend: every injected hazard must be quarantined or
// reported, never surfaced as a valid generation.
func TestMemBackendSurvivesDiskFaults(t *testing.T) {
	b := NewMemBackend()
	inj := faults.NewInjector(faults.Disk(3, 1))
	s, err := Open("d", "bug", Options{Backend: b, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	saved := 0
	for i := 0; i < 40; i++ {
		if _, err := s.Save([]byte(fmt.Sprintf("gen-%d", i))); err != nil {
			if !errors.Is(err, ErrFsync) {
				t.Fatalf("save %d: unexpected error class: %v", i, err)
			}
			continue
		}
		saved++
	}
	re, err := Open("d", "bug", Options{Backend: b, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	// Every surviving generation must decode; corrupted ones must have
	// been quarantined rather than returned.
	for _, g := range re.Generations() {
		if len(g.Payload) == 0 {
			t.Errorf("gen %d: empty payload surfaced as valid", g.Gen)
		}
	}
	if saved > 0 && re.Latest() == nil && len(re.Quarantined()) == 0 {
		t.Error("saves succeeded but nothing was recovered or quarantined")
	}
}

// TestDirBackendIsDefault pins the compatibility contract: a nil
// Options.Backend behaves exactly like the pre-Backend store.
func TestDirBackendIsDefault(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "bug", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte("x")); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, "bug", Options{Backend: DirBackend{}})
	if err != nil {
		t.Fatal(err)
	}
	if g := re.Latest(); g == nil || string(g.Payload) != "x" {
		t.Errorf("dir backend round trip failed: %v", g)
	}
}
