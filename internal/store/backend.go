package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Backend abstracts the filesystem surface the checkpoint store needs,
// so a store can live on a local directory today and on a remote or
// in-memory medium tomorrow (the service keys per-tenant stores by
// label on whatever backend it was handed). Implementations must make
// Rename atomic with respect to readers: a path either resolves to the
// old bytes or the new ones, never a mix.
type Backend interface {
	// EnsureDir creates dir (and parents) if needed.
	EnsureDir(dir string) error
	// ListFiles returns the names (not paths) of the regular files in
	// dir, sorted lexically; directories are excluded. A missing dir is
	// an error. (The shard fleet's workers walk shared directories, so
	// implementations must agree on the order.)
	ListFiles(dir string) ([]string, error)
	// ReadFile returns the contents of path.
	ReadFile(path string) ([]byte, error)
	// WriteFile writes data to path, creating or truncating it. When
	// sync is true the data must be durable before WriteFile returns; a
	// failed sync returns an error wrapping ErrFsync.
	WriteFile(path string, data []byte, sync bool) error
	// Rename atomically moves oldPath to newPath.
	Rename(oldPath, newPath string) error
	// Remove deletes path; removing a missing path is an error.
	Remove(path string) error
	// Exists reports whether path exists (file or directory).
	Exists(path string) bool
	// SyncDir makes a just-renamed entry of dir durable.
	SyncDir(dir string) error
}

// DirBackend is the production Backend: a local directory tree driven
// through the os package. The zero value is ready to use.
type DirBackend struct{}

// EnsureDir implements Backend.
func (DirBackend) EnsureDir(dir string) error { return os.MkdirAll(dir, 0o755) }

// ListFiles implements Backend.
func (DirBackend) ListFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	return names, nil
}

// ReadFile implements Backend.
func (DirBackend) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// WriteFile implements Backend.
func (DirBackend) WriteFile(path string, data []byte, sync bool) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("%w: %v", ErrFsync, err)
		}
	}
	return f.Close()
}

// Rename implements Backend.
func (DirBackend) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

// Remove implements Backend.
func (DirBackend) Remove(path string) error { return os.Remove(path) }

// Exists implements Backend.
func (DirBackend) Exists(path string) bool {
	_, err := os.Lstat(path)
	return err == nil
}

// SyncDir implements Backend.
func (DirBackend) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// MemBackend is an in-memory Backend: process-lifetime durability only,
// used by the service when it has no state directory and by tests. It
// is safe for concurrent use — unlike a Store, a backend is shared by
// every per-tenant store the service opens on it.
type MemBackend struct {
	mu    sync.Mutex
	files map[string][]byte
	dirs  map[string]bool
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{files: map[string][]byte{}, dirs: map[string]bool{}}
}

// EnsureDir implements Backend.
func (m *MemBackend) EnsureDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for d := dir; d != "." && d != "/" && d != ""; d = filepath.Dir(d) {
		m.dirs[d] = true
	}
	return nil
}

// ListFiles implements Backend.
func (m *MemBackend) ListFiles(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[dir] {
		return nil, &os.PathError{Op: "open", Path: dir, Err: os.ErrNotExist}
	}
	var names []string
	for path := range m.files {
		if filepath.Dir(path) == dir {
			names = append(names, filepath.Base(path))
		}
	}
	sort.Strings(names)
	return names, nil
}

// ReadFile implements Backend.
func (m *MemBackend) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[path]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: path, Err: os.ErrNotExist}
	}
	return append([]byte(nil), data...), nil
}

// WriteFile implements Backend.
func (m *MemBackend) WriteFile(path string, data []byte, sync bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[path] = append([]byte(nil), data...)
	return nil
}

// Rename implements Backend.
func (m *MemBackend) Rename(oldPath, newPath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[oldPath]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldPath, Err: os.ErrNotExist}
	}
	m.files[newPath] = data
	delete(m.files, oldPath)
	return nil
}

// Remove implements Backend.
func (m *MemBackend) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return &os.PathError{Op: "remove", Path: path, Err: os.ErrNotExist}
	}
	delete(m.files, path)
	return nil
}

// Exists implements Backend.
func (m *MemBackend) Exists(path string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; ok {
		return true
	}
	return m.dirs[path]
}

// SyncDir implements Backend.
func (m *MemBackend) SyncDir(dir string) error { return nil }
