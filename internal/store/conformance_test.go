package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// TestBackendConformance runs one behavioral suite against every
// Backend implementation. The shard fleet treats the Backend interface
// as its only shared medium, so the two implementations must agree on
// every observable detail: list contents and ordering, read-your-write,
// atomic rename over an existing file, remove semantics, and existence
// checks for files and directories alike.
func TestBackendConformance(t *testing.T) {
	impls := []struct {
		name string
		open func(t *testing.T) (b Backend, root string)
	}{
		{"DirBackend", func(t *testing.T) (Backend, string) { return DirBackend{}, t.TempDir() }},
		{"MemBackend", func(t *testing.T) (Backend, string) { return NewMemBackend(), "root" }},
	}
	for _, impl := range impls {
		t.Run(impl.name, func(t *testing.T) {
			b, root := impl.open(t)
			dir := filepath.Join(root, "tenant")

			// EnsureDir creates parents and is idempotent.
			if err := b.EnsureDir(dir); err != nil {
				t.Fatalf("EnsureDir: %v", err)
			}
			if err := b.EnsureDir(dir); err != nil {
				t.Fatalf("EnsureDir (again): %v", err)
			}
			if !b.Exists(dir) {
				t.Fatalf("Exists(%s) = false after EnsureDir", dir)
			}

			// Listing a missing directory is an error, not an empty list.
			if _, err := b.ListFiles(filepath.Join(root, "no-such-dir")); err == nil {
				t.Fatalf("ListFiles on a missing dir succeeded")
			}

			// Reading a missing file reports os.ErrNotExist.
			if _, err := b.ReadFile(filepath.Join(dir, "missing")); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("ReadFile missing file: err = %v, want os.ErrNotExist", err)
			}

			// Write, then read-your-write.
			path := func(name string) string { return filepath.Join(dir, name) }
			if err := b.WriteFile(path("b.ckpt"), []byte("bravo"), true); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}
			if err := b.WriteFile(path("a.ckpt"), []byte("alpha"), false); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}
			got, err := b.ReadFile(path("a.ckpt"))
			if err != nil || !bytes.Equal(got, []byte("alpha")) {
				t.Fatalf("ReadFile = %q, %v; want alpha", got, err)
			}

			// Rewriting truncates: the new content fully replaces the old,
			// even when shorter.
			if err := b.WriteFile(path("a.ckpt"), []byte("al"), false); err != nil {
				t.Fatalf("WriteFile (rewrite): %v", err)
			}
			if got, _ := b.ReadFile(path("a.ckpt")); !bytes.Equal(got, []byte("al")) {
				t.Fatalf("rewrite did not truncate: %q", got)
			}

			// Reads are isolated from later writes: mutating a returned
			// slice must not corrupt the stored bytes.
			snap, _ := b.ReadFile(path("a.ckpt"))
			if len(snap) > 0 {
				snap[0] = 'X'
			}
			if got, _ := b.ReadFile(path("a.ckpt")); !bytes.Equal(got, []byte("al")) {
				t.Fatalf("stored bytes aliased by a reader: %q", got)
			}

			// ListFiles returns names (not paths), sorted, files only.
			if err := b.EnsureDir(filepath.Join(dir, "subdir")); err != nil {
				t.Fatalf("EnsureDir subdir: %v", err)
			}
			names, err := b.ListFiles(dir)
			if err != nil {
				t.Fatalf("ListFiles: %v", err)
			}
			want := []string{"a.ckpt", "b.ckpt"}
			if len(names) != len(want) || !sort.StringsAreSorted(names) {
				t.Fatalf("ListFiles = %v, want sorted %v (directories excluded)", names, want)
			}
			for i := range want {
				if names[i] != want[i] {
					t.Fatalf("ListFiles = %v, want %v", names, want)
				}
			}

			// Rename is atomic publish: source gone, target has the bytes.
			if err := b.WriteFile(path("c.tmp"), []byte("charlie"), false); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}
			if err := b.Rename(path("c.tmp"), path("c.ckpt")); err != nil {
				t.Fatalf("Rename: %v", err)
			}
			if b.Exists(path("c.tmp")) {
				t.Fatalf("Rename left the source behind")
			}
			if got, _ := b.ReadFile(path("c.ckpt")); !bytes.Equal(got, []byte("charlie")) {
				t.Fatalf("Rename target = %q, want charlie", got)
			}

			// Rename over an existing file replaces it — the lease table
			// and checkpoint store both publish over old generations.
			if err := b.WriteFile(path("c2.tmp"), []byte("charlie-2"), false); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}
			if err := b.Rename(path("c2.tmp"), path("c.ckpt")); err != nil {
				t.Fatalf("Rename over existing: %v", err)
			}
			if got, _ := b.ReadFile(path("c.ckpt")); !bytes.Equal(got, []byte("charlie-2")) {
				t.Fatalf("Rename over existing = %q, want charlie-2", got)
			}

			// Renaming a missing source is an error.
			if err := b.Rename(path("ghost"), path("g.ckpt")); err == nil {
				t.Fatalf("Rename of a missing source succeeded")
			}

			// Remove deletes; removing again is an error (the lease
			// protocol relies on delete-once semantics for intents).
			if err := b.Remove(path("c.ckpt")); err != nil {
				t.Fatalf("Remove: %v", err)
			}
			if b.Exists(path("c.ckpt")) {
				t.Fatalf("Exists = true after Remove")
			}
			if err := b.Remove(path("c.ckpt")); err == nil {
				t.Fatalf("Remove of a missing file succeeded")
			}

			// SyncDir on an existing directory succeeds.
			if err := b.SyncDir(dir); err != nil {
				t.Fatalf("SyncDir: %v", err)
			}
		})
	}
}
