// Package store is the durable checkpoint store under the campaign
// engine: crash-safe, checksummed, generation-numbered snapshots of an
// in-flight diagnosis.
//
// The paper's deployment runs Gist in production for weeks, refining
// sketches across many failure recurrences (§3.3) — which only works if
// the diagnosis service itself survives crashes, hangs, and disk faults
// without losing accumulated AsT state. A checkpoint that exists only
// until the first torn write is not a checkpoint; this package supplies
// the missing durability contract:
//
//   - Framing. Every checkpoint payload is wrapped in a fixed header
//     (magic, frame version, payload length) and a CRC-32C (Castagnoli)
//     over the payload, so truncation, bit rot, and stale formats are
//     all detected before a byte of JSON is decoded.
//   - Atomicity + durability. Writes go to a temp file that is fsynced
//     before the rename, and the parent directory is fsynced after it,
//     so a published generation is durable and a crash mid-write can
//     only ever leave a temp file or a torn frame — never a silently
//     half-valid published checkpoint. An fsync error fails the Save:
//     the data must be presumed lost, and the previous generation
//     remains the durable truth.
//   - Monotonic generations. Each Save publishes <name>.g<number>.ckpt
//     with a strictly increasing generation number (numbers burned by
//     failed or quarantined writes are never reused), so "newest" is
//     decidable from the filename alone and an injected fault at one
//     generation can never repeat forever.
//   - Recovery scan. Open lists every generation, validates each frame,
//     quarantines torn/corrupt/stale ones into quarantine/ (keeping
//     them for post-mortems instead of deleting evidence), and exposes
//     the surviving generations newest-first so callers can fall back
//     when the newest payload fails higher-level decoding.
//
// Fault injection: Options.Faults threads the deterministic disk-fault
// injector (faults.DiskDecision) through Save, exercising exactly the
// hazards the recovery scan exists for. A store never injects anything
// on its own; the clean path is byte-identical with the hook nil.
//
// A Store is not safe for concurrent use; give each campaign its own
// (they may share a directory as long as names differ).
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/telemetry"
)

// FrameVersion is the checkpoint frame schema this build reads and
// writes. It versions the framing only; the JSON payload carries its
// own campaign-snapshot version.
const FrameVersion = 1

// frame layout (little-endian):
//
//	magic   [8]byte  "GISTCKPT"
//	version uint32   FrameVersion
//	length  uint64   payload byte count
//	crc     uint32   CRC-32C (Castagnoli) of the payload
//	payload [length]byte
const headerSize = 8 + 4 + 8 + 4

var frameMagic = [8]byte{'G', 'I', 'S', 'T', 'C', 'K', 'P', 'T'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame validation errors, wrapped with detail by DecodeFrame. A
// recovery scan quarantines on any of them; callers that need to
// distinguish (tests, error messages) use errors.Is.
var (
	ErrTorn       = errors.New("frame truncated (torn write)")
	ErrBadMagic   = errors.New("bad frame magic")
	ErrBadVersion = errors.New("unsupported frame version")
	ErrBadCRC     = errors.New("payload CRC-32C mismatch")
	// ErrFsync marks a Save whose data never became durable; the
	// previous generation remains the store's truth.
	ErrFsync = errors.New("fsync failed; checkpoint not durable")
)

// EncodeFrame wraps a payload in the checksummed checkpoint frame.
func EncodeFrame(payload []byte) []byte {
	out := make([]byte, headerSize+len(payload))
	copy(out, frameMagic[:])
	binary.LittleEndian.PutUint32(out[8:], FrameVersion)
	binary.LittleEndian.PutUint64(out[12:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[20:], crc32.Checksum(payload, castagnoli))
	copy(out[headerSize:], payload)
	return out
}

// DecodeFrame validates a frame and returns its payload. Every failure
// mode maps to one of the Err* sentinels: short data is ErrTorn, wrong
// magic ErrBadMagic, an unknown frame version ErrBadVersion, and a
// length or checksum mismatch ErrTorn / ErrBadCRC.
func DecodeFrame(data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("store: %w: %d bytes, header needs %d", ErrTorn, len(data), headerSize)
	}
	if [8]byte(data[:8]) != frameMagic {
		return nil, fmt.Errorf("store: %w: % x", ErrBadMagic, data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != FrameVersion {
		return nil, fmt.Errorf("store: %w: frame version %d (this build reads version %d)", ErrBadVersion, v, FrameVersion)
	}
	length := binary.LittleEndian.Uint64(data[12:])
	if length != uint64(len(data)-headerSize) {
		return nil, fmt.Errorf("store: %w: header says %d payload bytes, file has %d", ErrTorn, length, len(data)-headerSize)
	}
	payload := data[headerSize:]
	want := binary.LittleEndian.Uint32(data[20:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("store: %w: have %#08x, frame says %#08x", ErrBadCRC, got, want)
	}
	return payload, nil
}

// Options configures a Store. The zero value is the safe default:
// fsync on, keep the 3 newest generations, no fault injection, no
// telemetry.
type Options struct {
	// NoFsync skips the file and directory syncs (the -ckpt-fsync=false
	// CLI path): faster, but a crash can tear the newest generation —
	// which the recovery scan then quarantines, falling back one
	// generation. Durability becomes "at most one generation stale".
	NoFsync bool
	// Keep is how many generations Save retains (older ones are
	// pruned); 0 means 3. At least 2 are needed for corrupt-newest
	// fallback to have somewhere to fall.
	Keep int
	// Faults, when non-nil, injects disk faults into Save via
	// ForCheckpoint. Nil injects nothing.
	Faults *faults.Injector
	// Telemetry receives store.* counters (saves, quarantined,
	// fsync errors, pruned, fallbacks). Nil-safe.
	Telemetry *telemetry.Tracer
	// Label attributes the telemetry counters to a campaign.
	Label string
	// Backend is the storage medium; nil means the local directory
	// backend (DirBackend).
	Backend Backend
}

// Generation is one validated checkpoint generation surviving the
// recovery scan.
type Generation struct {
	Gen     uint64
	Path    string
	Payload []byte
}

// Quarantine records one file the recovery scan moved aside.
type Quarantine struct {
	From   string // original path
	To     string // where it lives now
	Reason error  // why it was quarantined
}

// Store is an open checkpoint store for one name within a directory.
type Store struct {
	dir, name string
	opts      Options
	b         Backend
	// gens is the Open-time scan result, newest first. Save does not
	// extend it: a running process restarts from its in-memory last-good
	// snapshot, and a resuming process re-runs the scan.
	gens        []Generation
	quarantined []Quarantine
	nextGen     uint64
}

// Open scans dir for name's checkpoint generations, quarantines every
// torn, corrupt, or stale-format one (and stray temp files from
// interrupted writes), and returns the store positioned after the
// newest generation number ever seen — valid, quarantined, or burned.
func Open(dir, name string, opts Options) (*Store, error) {
	if name == "" {
		return nil, fmt.Errorf("store: empty checkpoint name")
	}
	if opts.Keep == 0 {
		opts.Keep = 3
	}
	if opts.Keep < 2 {
		return nil, fmt.Errorf("store: keep %d generations; need at least 2 for fallback", opts.Keep)
	}
	b := opts.Backend
	if b == nil {
		b = DirBackend{}
	}
	if err := b.EnsureDir(dir); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, name: name, opts: opts, b: b}

	names, err := b.ListFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, base := range names {
		path := filepath.Join(dir, base)
		if gen, ok := s.parseGen(base, ".ckpt.tmp"); ok {
			// A leftover temp file is an interrupted (or
			// rename-dropped) write; its generation number is burned.
			s.bumpGen(gen)
			s.quarantine(path, fmt.Errorf("store: interrupted write (stray temp file)"))
			continue
		}
		gen, ok := s.parseGen(base, ".ckpt")
		if !ok {
			continue
		}
		s.bumpGen(gen)
		data, err := b.ReadFile(path)
		if err != nil {
			s.quarantine(path, fmt.Errorf("store: %w", err))
			continue
		}
		payload, err := DecodeFrame(data)
		if err != nil {
			s.quarantine(path, err)
			continue
		}
		s.gens = append(s.gens, Generation{Gen: gen, Path: path, Payload: payload})
	}
	// Generation numbers already moved into quarantine/ by earlier
	// recoveries must stay burned too, or a fault decision could repeat.
	if qnames, err := b.ListFiles(s.QuarantineDir()); err == nil {
		for _, qn := range qnames {
			if gen, ok := s.parseGen(qn, ".ckpt"); ok {
				s.bumpGen(gen)
			} else if gen, ok := s.parseGen(qn, ".ckpt.tmp"); ok {
				s.bumpGen(gen)
			}
		}
	}
	sort.Slice(s.gens, func(i, j int) bool { return s.gens[i].Gen > s.gens[j].Gen })
	return s, nil
}

// parseGen extracts the generation number from "<name>.g<num><suffix>".
// Quarantined copies may carry a ".<n>" collision suffix after .ckpt;
// those are parsed by trimming at the suffix.
func (s *Store) parseGen(base, suffix string) (uint64, bool) {
	prefix := s.name + ".g"
	if !strings.HasPrefix(base, prefix) {
		return 0, false
	}
	rest := base[len(prefix):]
	i := strings.Index(rest, suffix)
	if i < 0 {
		return 0, false
	}
	gen, err := strconv.ParseUint(rest[:i], 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

func (s *Store) bumpGen(gen uint64) {
	if gen >= s.nextGen {
		s.nextGen = gen + 1
	}
}

// quarantine moves a damaged file into quarantine/, recording why. The
// file is preserved (with a numeric suffix on name collisions), never
// deleted: a corrupt checkpoint is evidence, not garbage.
func (s *Store) quarantine(path string, reason error) {
	qdir := s.QuarantineDir()
	_ = s.b.EnsureDir(qdir)
	dst := filepath.Join(qdir, filepath.Base(path))
	for n := 1; s.b.Exists(dst); n++ {
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", filepath.Base(path), n))
	}
	if err := s.b.Rename(path, dst); err != nil {
		// Can't move it; removing is the lesser evil vs. re-loading a
		// known-bad checkpoint forever.
		_ = s.b.Remove(path)
		dst = ""
	}
	s.quarantined = append(s.quarantined, Quarantine{From: path, To: dst, Reason: reason})
	s.opts.Telemetry.AddL(s.opts.Label, "store.quarantined", 1)
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Name returns the checkpoint name the store serves.
func (s *Store) Name() string { return s.name }

// QuarantineDir is where damaged generations are preserved.
func (s *Store) QuarantineDir() string { return filepath.Join(s.dir, "quarantine") }

// Generations returns the valid generations found at Open, newest
// first, minus any the caller has since Discarded.
func (s *Store) Generations() []Generation {
	return append([]Generation(nil), s.gens...)
}

// Latest returns the newest valid generation, or nil when none
// survived the scan.
func (s *Store) Latest() *Generation {
	if len(s.gens) == 0 {
		return nil
	}
	g := s.gens[0]
	return &g
}

// Quarantined returns the recovery scan's quarantine records (plus any
// added by Discard), oldest first.
func (s *Store) Quarantined() []Quarantine {
	return append([]Quarantine(nil), s.quarantined...)
}

// Discard quarantines the newest valid generation — used when its frame
// verified but its payload failed higher-level decoding — and falls
// back to the next one, which Latest then returns.
func (s *Store) Discard(reason error) {
	if len(s.gens) == 0 {
		return
	}
	s.quarantine(s.gens[0].Path, reason)
	s.gens = s.gens[1:]
	s.opts.Telemetry.AddL(s.opts.Label, "store.fallbacks", 1)
}

// ExpectedPath is the published path a given generation would live at;
// used in error messages when no checkpoint exists.
func (s *Store) ExpectedPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s.g%08d.ckpt", s.name, gen))
}

// Save publishes payload as the next generation: frame, temp-file
// write, fsync, rename, parent-directory fsync, prune. It returns the
// generation number written. On error (including an injected or real
// fsync failure) the store's durable state is unchanged except possibly
// a stray temp file the next recovery scan will quarantine; the
// generation number is burned either way.
func (s *Store) Save(payload []byte) (uint64, error) {
	gen := s.nextGen
	s.nextGen++
	frame := EncodeFrame(payload)
	dec := s.opts.Faults.ForCheckpoint(s.name, gen)

	final := s.ExpectedPath(gen)
	tmp := final + ".tmp"
	data := frame
	if dec.Kind == faults.DiskTorn {
		data = frame[:dec.TornLen(len(frame))]
	}
	if dec.Kind == faults.DiskFsyncErr && !s.opts.NoFsync {
		// The temp file's contents are unknowable after a failed
		// fsync; write it unsynced and leave it for the recovery scan
		// to quarantine.
		_ = s.b.WriteFile(tmp, data, false)
		s.opts.Telemetry.AddL(s.opts.Label, "store.fsync_errors", 1)
		return gen, fmt.Errorf("store: %s: %w: injected %s fault", tmp, ErrFsync, dec.Kind)
	}
	if err := s.b.WriteFile(tmp, data, !s.opts.NoFsync); err != nil {
		if errors.Is(err, ErrFsync) {
			s.opts.Telemetry.AddL(s.opts.Label, "store.fsync_errors", 1)
			return gen, fmt.Errorf("store: %s: %w", tmp, err)
		}
		return gen, fmt.Errorf("store: %w", err)
	}
	if dec.Kind != faults.DiskRenameDrop {
		if err := s.b.Rename(tmp, final); err != nil {
			return gen, fmt.Errorf("store: %w", err)
		}
		if !s.opts.NoFsync {
			if err := s.b.SyncDir(s.dir); err != nil {
				return gen, fmt.Errorf("store: sync %s: %w", s.dir, err)
			}
		}
		if dec.Kind == faults.DiskFlip && len(data) > 0 {
			pos, mask := dec.FlipByte(len(data))
			s.flipByteAt(final, pos, mask)
		}
	}
	s.opts.Telemetry.AddL(s.opts.Label, "store.saves", 1)
	s.opts.Telemetry.AddL(s.opts.Label, "store.bytes_written", int64(len(data)))
	s.prune()
	return gen, nil
}

// prune removes published generations beyond the Keep newest, scanning
// the directory so generations from before this process are pruned too.
// Quarantined files are never touched.
func (s *Store) prune() {
	names, err := s.b.ListFiles(s.dir)
	if err != nil {
		return
	}
	var gens []uint64
	for _, base := range names {
		if gen, ok := s.parseGen(base, ".ckpt"); ok {
			gens = append(gens, gen)
		}
	}
	if len(gens) <= s.opts.Keep {
		return
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	for _, gen := range gens[s.opts.Keep:] {
		if s.b.Remove(s.ExpectedPath(gen)) == nil {
			s.opts.Telemetry.AddL(s.opts.Label, "store.pruned", 1)
		}
	}
}

// flipByteAt XORs one byte of the file at path — the post-write
// bit-flip fault. Failures are ignored: the fault model does not
// promise corruption succeeds, only that the store survives it.
func (s *Store) flipByteAt(path string, pos int, mask byte) {
	data, err := s.b.ReadFile(path)
	if err != nil || pos < 0 || pos >= len(data) {
		return
	}
	data[pos] ^= mask
	_ = s.b.WriteFile(path, data, false)
}
