package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/telemetry"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("checkpoint"), 100)} {
		frame := EncodeFrame(payload)
		got, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("DecodeFrame(EncodeFrame(%d bytes)): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed payload: %q -> %q", payload, got)
		}
	}
}

// TestOpenQuarantinesCorruptGenerations is the corrupt-checkpoint table
// test: truncation at every interesting boundary, single-byte flips in
// header and payload, a deliberate CRC mismatch, and an unknown frame
// version must all be quarantined by the recovery scan — never loaded,
// never fatal — while an intact older generation is still served.
func TestOpenQuarantinesCorruptGenerations(t *testing.T) {
	goodPayload := []byte(`{"version":1,"iter":3}`)
	frame := EncodeFrame(goodPayload)

	cases := []struct {
		name    string
		mangle  func([]byte) []byte
		wantErr error
	}{
		{"empty file", func(f []byte) []byte { return nil }, ErrTorn},
		{"torn header", func(f []byte) []byte { return f[:headerSize-1] }, ErrTorn},
		{"torn payload", func(f []byte) []byte { return f[:len(f)-5] }, ErrTorn},
		{"extra bytes", func(f []byte) []byte { return append(clone(f), 0xEE) }, ErrTorn},
		{"magic flip", func(f []byte) []byte { g := clone(f); g[0] ^= 0x01; return g }, ErrBadMagic},
		{"unknown version", func(f []byte) []byte {
			g := clone(f)
			binary.LittleEndian.PutUint32(g[8:], 99)
			return g
		}, ErrBadVersion},
		{"payload byte flip", func(f []byte) []byte { g := clone(f); g[headerSize+2] ^= 0x40; return g }, ErrBadCRC},
		{"crc field flip", func(f []byte) []byte { g := clone(f); g[20] ^= 0x80; return g }, ErrBadCRC},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			// Generation 1 is intact; generation 2 is the mangled newest.
			write := func(gen int, data []byte) string {
				p := filepath.Join(dir, fmt.Sprintf("bug.g%08d.ckpt", gen))
				if err := os.WriteFile(p, data, 0o644); err != nil {
					t.Fatal(err)
				}
				return p
			}
			write(1, frame)
			corruptPath := write(2, tc.mangle(clone(frame)))

			s, err := Open(dir, "bug", Options{})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			q := s.Quarantined()
			if len(q) != 1 {
				t.Fatalf("quarantined %d files, want 1: %+v", len(q), q)
			}
			if q[0].From != corruptPath {
				t.Errorf("quarantined %s, want %s", q[0].From, corruptPath)
			}
			if !errors.Is(q[0].Reason, tc.wantErr) {
				t.Errorf("quarantine reason %v, want %v", q[0].Reason, tc.wantErr)
			}
			if _, err := os.Stat(q[0].To); err != nil {
				t.Errorf("quarantined file not preserved at %s: %v", q[0].To, err)
			}
			if _, err := os.Stat(corruptPath); !os.IsNotExist(err) {
				t.Errorf("corrupt file still published at %s", corruptPath)
			}
			// The intact older generation is the fallback truth.
			latest := s.Latest()
			if latest == nil || latest.Gen != 1 {
				t.Fatalf("Latest() = %+v, want generation 1", latest)
			}
			if !bytes.Equal(latest.Payload, goodPayload) {
				t.Errorf("fallback payload %q, want %q", latest.Payload, goodPayload)
			}
			// The burned generation number is never reused.
			gen, err := s.Save([]byte("next"))
			if err != nil {
				t.Fatalf("Save after quarantine: %v", err)
			}
			if gen <= 2 {
				t.Errorf("Save reused generation %d; quarantined generation numbers must stay burned", gen)
			}
		})
	}
}

func TestSaveLoadNewestAndPrune(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "bug", Options{Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Latest() != nil {
		t.Fatal("empty store has a latest generation")
	}
	var lastGen uint64
	for i := 0; i < 6; i++ {
		gen, err := s.Save([]byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatalf("Save %d: %v", i, err)
		}
		if i > 0 && gen <= lastGen {
			t.Fatalf("generation %d not monotonic after %d", gen, lastGen)
		}
		lastGen = gen
	}
	// Reopen: only Keep newest survive, newest first, payload intact.
	s2, err := Open(dir, "bug", Options{Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	gens := s2.Generations()
	if len(gens) != 3 {
		t.Fatalf("%d generations after prune, want 3", len(gens))
	}
	if gens[0].Gen != lastGen {
		t.Errorf("newest generation %d, want %d", gens[0].Gen, lastGen)
	}
	if string(gens[0].Payload) != "payload-5" {
		t.Errorf("newest payload %q, want payload-5", gens[0].Payload)
	}
	if len(s2.Quarantined()) != 0 {
		t.Errorf("clean store quarantined %+v", s2.Quarantined())
	}
	// Generation numbers stay monotonic across reopen.
	gen, err := s2.Save([]byte("after reopen"))
	if err != nil {
		t.Fatal(err)
	}
	if gen <= lastGen {
		t.Errorf("reopened store reused generation %d (last was %d)", gen, lastGen)
	}
}

func TestDiscardFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, "bug", Options{})
	s.Save([]byte("old"))
	s.Save([]byte("new"))
	s2, err := Open(dir, "bug", Options{})
	if err != nil {
		t.Fatal(err)
	}
	first := s2.Latest()
	if string(first.Payload) != "new" {
		t.Fatalf("latest payload %q, want new", first.Payload)
	}
	s2.Discard(fmt.Errorf("payload failed snapshot decode"))
	second := s2.Latest()
	if second == nil || string(second.Payload) != "old" {
		t.Fatalf("after Discard latest = %+v, want the old generation", second)
	}
	if _, err := os.Stat(first.Path); !os.IsNotExist(err) {
		t.Error("discarded generation still published")
	}
	s2.Discard(fmt.Errorf("also bad"))
	if s2.Latest() != nil {
		t.Error("store with every generation discarded still has a latest")
	}
	s2.Discard(fmt.Errorf("no-op on empty"))
}

// TestInjectedDiskFaults drives Save through every injected fault kind
// and verifies the recovery contract: the store never loads a damaged
// generation, always falls back to the newest intact one, and burns the
// damaged generation's number.
func TestInjectedDiskFaults(t *testing.T) {
	kinds := map[faults.DiskKind]bool{}
	// DiskRate 0.7 with a fixed seed walks through all four fault kinds
	// plus clean saves as the generation number advances (determinism
	// is the injector's contract, exercised in internal/faults).
	tel := telemetry.New()
	dir := t.TempDir()
	inj := faults.NewInjector(faults.Disk(42, 0.7))
	s, err := Open(dir, "bug", Options{Faults: inj, Telemetry: tel, Keep: 64})
	if err != nil {
		t.Fatal(err)
	}
	var intact []string // payloads that should be recoverable
	for i := 0; i < 40; i++ {
		payload := fmt.Sprintf("payload-%d", i)
		gen, err := s.Save([]byte(payload))
		dec := inj.ForCheckpoint("bug", gen)
		kinds[dec.Kind] = true
		switch dec.Kind {
		case faults.DiskFsyncErr:
			if !errors.Is(err, ErrFsync) {
				t.Fatalf("save %d: fsync fault returned %v, want ErrFsync", i, err)
			}
		case faults.DiskNone:
			if err != nil {
				t.Fatalf("save %d: clean save failed: %v", i, err)
			}
			intact = append(intact, payload)
		default:
			// Torn writes, bit flips, and dropped renames are silent:
			// the process believes the save succeeded.
			if err != nil {
				t.Fatalf("save %d: %s fault should be silent, got %v", i, dec.Kind, err)
			}
		}
	}
	if len(kinds) < 5 {
		t.Fatalf("40 saves at rate 1 hit only %d/5 decision kinds: %v", len(kinds), kinds)
	}
	if len(intact) == 0 {
		t.Fatal("no clean saves in 40 attempts; test cannot verify recovery")
	}

	s2, err := Open(dir, "bug", Options{Keep: 64, Telemetry: tel})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	if len(s2.Quarantined()) == 0 {
		t.Error("recovery scan quarantined nothing despite injected faults")
	}
	latest := s2.Latest()
	if latest == nil {
		t.Fatal("no valid generation survived")
	}
	if got, want := string(latest.Payload), intact[len(intact)-1]; got != want {
		t.Errorf("recovered payload %q, want newest intact %q", got, want)
	}
	// Every surviving generation must be one the clean path wrote.
	ok := map[string]bool{}
	for _, p := range intact {
		ok[p] = true
	}
	for _, g := range s2.Generations() {
		if !ok[string(g.Payload)] {
			t.Errorf("generation %d carries damaged payload %q", g.Gen, g.Payload)
		}
	}
	if tel.Counter("store.quarantined") == 0 {
		t.Error("store.quarantined counter not advanced")
	}
	if tel.Counter("store.fsync_errors") == 0 {
		t.Error("store.fsync_errors counter not advanced")
	}
}

func TestNoFsyncStillAtomic(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "bug", Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte("fast")); err != nil {
		t.Fatal(err)
	}
	s2, _ := Open(dir, "bug", Options{NoFsync: true})
	if got := s2.Latest(); got == nil || string(got.Payload) != "fast" {
		t.Fatalf("NoFsync save not readable: %+v", got)
	}
}

func TestOpenRejectsBadOptions(t *testing.T) {
	if _, err := Open(t.TempDir(), "", Options{}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := Open(t.TempDir(), "bug", Options{Keep: 1}); err == nil {
		t.Error("Keep=1 accepted; fallback needs at least 2")
	}
}

// Two names sharing one directory must not see each other's
// generations.
func TestNamesAreIsolated(t *testing.T) {
	dir := t.TempDir()
	a, _ := Open(dir, "alpha", Options{})
	b, _ := Open(dir, "alpha-2", Options{})
	a.Save([]byte("A"))
	b.Save([]byte("B"))
	a2, _ := Open(dir, "alpha", Options{})
	if g := a2.Latest(); g == nil || string(g.Payload) != "A" {
		t.Fatalf("alpha sees %+v", g)
	}
	if n := len(a2.Generations()); n != 1 {
		t.Fatalf("alpha sees %d generations, want 1", n)
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

// sanity: quarantine filenames keep the original base so post-mortems
// can match them back to generations.
func TestQuarantinePreservesName(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bug.g00000007.ckpt")
	os.WriteFile(bad, []byte("garbage"), 0o644)
	s, err := Open(dir, "bug", Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := s.Quarantined()
	if len(q) != 1 || !strings.HasSuffix(q[0].To, "bug.g00000007.ckpt") {
		t.Fatalf("quarantine records %+v", q)
	}
}
