package vm

import (
	"testing"
	"testing/quick"
)

func TestMallocAlignmentAndZeroing(t *testing.T) {
	m := NewMemory(0)
	a, f := m.Malloc(13) // rounds up to 16
	if f != nil {
		t.Fatal(f)
	}
	if a%8 != 0 {
		t.Errorf("unaligned allocation %#x", a)
	}
	for off := int64(0); off < 16; off += 8 {
		v, f := m.Load(a+off, 8)
		if f != nil || v != 0 {
			t.Errorf("fresh allocation not zeroed at +%d: v=%d f=%v", off, v, f)
		}
	}
	// Past the rounded size is a red zone.
	if _, f := m.Load(a+16, 8); f == nil {
		t.Error("read past allocation end should fault")
	}
}

func TestMallocZeroSize(t *testing.T) {
	m := NewMemory(0)
	a, f := m.Malloc(0)
	if f != nil || a == 0 {
		t.Fatalf("malloc(0): %v %v", a, f)
	}
	if _, f := m.Load(a, 8); f != nil {
		t.Errorf("malloc(0) yields an unusable pointer: %v", f)
	}
}

func TestMallocNegative(t *testing.T) {
	m := NewMemory(0)
	if _, f := m.Malloc(-1); f == nil {
		t.Error("negative allocation should fault")
	}
}

func TestRedZoneBetweenAllocations(t *testing.T) {
	m := NewMemory(0)
	a, _ := m.Malloc(8)
	b, _ := m.Malloc(8)
	if b <= a {
		t.Fatalf("allocations not increasing: %#x %#x", a, b)
	}
	if b-a < 16 {
		t.Errorf("no red zone between allocations: gap %d", b-a)
	}
	if _, f := m.Load(a+8, 8); f == nil {
		t.Error("red zone readable")
	}
}

func TestFreeSemantics(t *testing.T) {
	m := NewMemory(0)
	a, _ := m.Malloc(16)
	if f := m.Free(a); f != nil {
		t.Fatalf("first free: %v", f)
	}
	if f := m.Free(a); f == nil || f.Kind != FaultDoubleFree {
		t.Errorf("double free: %v", f)
	}
	if _, f := m.Load(a, 8); f == nil || f.Kind != FaultUseAfterFree {
		t.Errorf("UAF load: %v", f)
	}
	if f := m.Store(a, 8, 1); f == nil || f.Kind != FaultUseAfterFree {
		t.Errorf("UAF store: %v", f)
	}
	if f := m.Free(a + 8); f == nil || f.Kind != FaultInvalidFree {
		t.Errorf("interior free: %v", f)
	}
	if f := m.Free(0); f != nil {
		t.Errorf("free(NULL): %v", f)
	}
}

func TestNullPage(t *testing.T) {
	m := NewMemory(1)
	for _, addr := range []int64{0, 1, 8, NullPageSize - 1} {
		if _, f := m.Load(addr, 8); f == nil || f.Kind != FaultNullDeref {
			t.Errorf("load %#x: %v", addr, f)
		}
		if f := m.Store(addr, 8, 1); f == nil || f.Kind != FaultNullDeref {
			t.Errorf("store %#x: %v", addr, f)
		}
	}
}

func TestGlobalsRegion(t *testing.T) {
	m := NewMemory(2)
	if f := m.Store(GlobalsBase, 8, 42); f != nil {
		t.Fatal(f)
	}
	if v, f := m.Load(GlobalsBase, 8); f != nil || v != 42 {
		t.Errorf("global roundtrip: %d %v", v, f)
	}
	if f := m.Store(GlobalsBase+16, 8, 1); f == nil {
		t.Error("store past globals should fault")
	}
}

func TestByteAndWordAccess(t *testing.T) {
	m := NewMemory(0)
	a, _ := m.Malloc(8)
	if f := m.Store(a, 8, 0x0102030405060708); f != nil {
		t.Fatal(f)
	}
	// Little-endian byte extraction.
	b0, _ := m.Load(a, 1)
	b7, _ := m.Load(a+7, 1)
	if b0 != 0x08 || b7 != 0x01 {
		t.Errorf("little-endian layout: b0=%#x b7=%#x", b0, b7)
	}
	if f := m.Store(a+3, 1, 0xFF); f != nil {
		t.Fatal(f)
	}
	v, _ := m.Load(a, 8)
	if v != 0x01020304FF060708 {
		t.Errorf("byte patch: %#x", v)
	}
}

func TestCStringHelpers(t *testing.T) {
	m := NewMemory(0)
	addr := m.AddString("hello")
	s, f := m.LoadCString(addr)
	if f != nil || s != "hello" {
		t.Errorf("LoadCString: %q %v", s, f)
	}
	// Mid-string read sees the suffix.
	s2, _ := m.LoadCString(addr + 2)
	if s2 != "llo" {
		t.Errorf("suffix: %q", s2)
	}
	// Strings region is bounded.
	if _, f := m.LoadCString(addr + 100); f == nil {
		t.Error("read past string pool should fault")
	}
}

func TestStackRegionIsolation(t *testing.T) {
	m := NewMemory(0)
	m.EnsureStack(0)
	m.EnsureStack(1)
	a0 := StackAddr(0, 0, 0)
	a1 := StackAddr(1, 0, 0)
	if f := m.Store(a0, 8, 111); f != nil {
		t.Fatal(f)
	}
	if f := m.Store(a1, 8, 222); f != nil {
		t.Fatal(f)
	}
	v0, _ := m.Load(a0, 8)
	v1, _ := m.Load(a1, 8)
	if v0 != 111 || v1 != 222 {
		t.Errorf("stack isolation: %d %d", v0, v1)
	}
	// A dead thread's stack is unmapped.
	if _, f := m.Load(StackAddr(7, 0, 0), 8); f == nil {
		t.Error("unmapped stack readable")
	}
	if !IsStackAddr(a0) || IsStackAddr(HeapBase) || IsStackAddr(GlobalsBase) {
		t.Error("IsStackAddr misclassifies")
	}
}

// Property: for arbitrary allocation sequences, a load of a stored word
// returns the stored value, and accesses outside any live allocation
// fault.
func TestHeapStoreLoadProperty(t *testing.T) {
	f := func(sizes []uint8, vals []int64) bool {
		m := NewMemory(0)
		type cell struct {
			addr int64
			val  int64
		}
		var cells []cell
		for i, sz := range sizes {
			if i >= len(vals) {
				break
			}
			a, fault := m.Malloc(int64(sz%32) + 8)
			if fault != nil {
				return false
			}
			if m.Store(a, 8, vals[i]) != nil {
				return false
			}
			cells = append(cells, cell{a, vals[i]})
		}
		for _, c := range cells {
			v, fault := m.Load(c.addr, 8)
			if fault != nil || v != c.val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: freed allocations never satisfy reads again, regardless of
// interleaving with fresh allocations.
func TestFreePoisonProperty(t *testing.T) {
	f := func(n uint8) bool {
		m := NewMemory(0)
		var addrs []int64
		for i := 0; i < int(n%12)+2; i++ {
			a, fault := m.Malloc(16)
			if fault != nil {
				return false
			}
			addrs = append(addrs, a)
		}
		// Free every other allocation.
		for i := 0; i < len(addrs); i += 2 {
			if m.Free(addrs[i]) != nil {
				return false
			}
		}
		for i, a := range addrs {
			_, fault := m.Load(a, 8)
			if i%2 == 0 && (fault == nil || fault.Kind != FaultUseAfterFree) {
				return false
			}
			if i%2 == 1 && fault != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultKindStrings(t *testing.T) {
	for k := FaultNone; k <= FaultStackOverflow; k++ {
		if k.String() == "" || k.String()[0] == 'f' && k != FaultNone {
			// Every kind has a human-readable name.
		}
	}
	if FaultDoubleFree.String() != "double free" {
		t.Errorf("double free name: %q", FaultDoubleFree)
	}
	if (FaultKind(99)).String() == "" {
		t.Error("unknown kind should still render")
	}
}
