package vm

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func run(t *testing.T, src string, cfg Config) *Outcome {
	t.Helper()
	p, err := ir.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return Run(p, cfg)
}

func mustExit(t *testing.T, src string, want int64) {
	t.Helper()
	out := run(t, src, Config{Seed: 1})
	if out.Failed {
		t.Fatalf("unexpected failure: %v", out.Report)
	}
	if out.Exit != want {
		t.Fatalf("exit: got %d, want %d", out.Exit, want)
	}
}

func TestArithmetic(t *testing.T) {
	mustExit(t, `int main() { return (2 + 3) * 4 - 6 / 2; }`, 17)
	mustExit(t, `int main() { return 17 % 5; }`, 2)
	mustExit(t, `int main() { return -(3 - 10); }`, 7)
	mustExit(t, `int main() { return !0 + !5; }`, 1)
	mustExit(t, `int main() { return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3) + (1 == 1) + (1 != 1); }`, 4)
}

func TestShortCircuitSemantics(t *testing.T) {
	// The RHS must not execute when the LHS decides: a division by zero
	// in the RHS would fault.
	mustExit(t, `int main() { int z = 0; if (0 && 1/z) { return 1; } return 2; }`, 2)
	mustExit(t, `int main() { int z = 0; if (1 || 1/z) { return 3; } return 4; }`, 3)
	mustExit(t, `int main() { return (5 && 7) + (0 || 9); }`, 2)
}

func TestLoops(t *testing.T) {
	mustExit(t, `int main() { int s = 0; for (int i = 1; i <= 10; i++) { s = s + i; } return s; }`, 55)
	mustExit(t, `int main() { int i = 0; while (i < 7) { i++; } return i; }`, 7)
	mustExit(t, `
int main() {
	int s = 0;
	for (int i = 0; i < 10; i++) {
		if (i == 3) { continue; }
		if (i == 6) { break; }
		s = s + i;
	}
	return s;
}`, 0+1+2+4+5)
}

func TestFunctionsAndRecursion(t *testing.T) {
	mustExit(t, `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}
int main() { return fib(10); }`, 55)
}

func TestGlobalsAndPointers(t *testing.T) {
	mustExit(t, `
global int g = 40;
int main() {
	int* p = &g;
	*p = *p + 2;
	return g;
}`, 42)
	mustExit(t, `
int main() {
	int* a = malloc(24);
	a[0] = 10; a[1] = 20; a[2] = 12;
	int* p = a + 1;
	return a[0] + *p + a[2];
}`, 42)
}

func TestStructs(t *testing.T) {
	mustExit(t, `
struct node { int val; struct node* next; };
int main() {
	struct node* a = malloc(sizeof(node));
	struct node* b = malloc(sizeof(node));
	a->val = 1; a->next = b;
	b->val = 2; b->next = null;
	int s = 0;
	struct node* it = a;
	while (it != null) { s = s + it->val; it = it->next; }
	return s;
}`, 3)
}

func TestStrings(t *testing.T) {
	mustExit(t, `int main() { return strlen("hello"); }`, 5)
	mustExit(t, `int main() { string s = "abc"; return s[0] + s[2]; }`, int64('a'+'c'))
	out := run(t, `int main() { prints("hi"); print(1, 2); return 0; }`, Config{Seed: 1})
	if len(out.Prints) != 2 || out.Prints[0] != "hi" || out.Prints[1] != "1 2" {
		t.Errorf("prints: %v", out.Prints)
	}
}

func TestWorkloadInputs(t *testing.T) {
	out := run(t, `int main() { string s = input_str(0); return input(0) + input(1) + strlen(s); }`,
		Config{Seed: 1, Workload: Workload{Ints: []int64{10, 20}, Strs: []string{"abcd"}}})
	if out.Failed || out.Exit != 34 {
		t.Fatalf("got %+v", out)
	}
	// Out-of-range input reads yield zero values.
	mustExit(t, `int main() { return input(99); }`, 0)
}

func TestFaults(t *testing.T) {
	cases := []struct {
		src  string
		kind FaultKind
	}{
		{`int main() { int* p = null; return *p; }`, FaultNullDeref},
		{`int main() { int* p = null; *p = 1; return 0; }`, FaultNullDeref},
		{`int main() { int* p = malloc(8); free(p); free(p); return 0; }`, FaultDoubleFree},
		{`int main() { int* p = malloc(8); free(p); return *p; }`, FaultUseAfterFree},
		{`int main() { int* p = malloc(8); int* q = p + 1; free(q); return 0; }`, FaultInvalidFree},
		{`int main() { int* p = malloc(8); return p[5]; }`, FaultOutOfBounds},
		{`int main() { assert(1 == 2); return 0; }`, FaultAssert},
		{`int main() { int z = 0; return 5 / z; }`, FaultDivZero},
		{`int main() { int z = 0; return 5 % z; }`, FaultDivZero},
		{`int main() { return strlen(null); }`, FaultNullDeref},
		{`int main() { while (1) { } return 0; }`, FaultHang},
		{`global int m; int main() { lock(&m); lock(&m); return 0; }`, FaultDeadlock},
	}
	for _, c := range cases {
		out := run(t, c.src, Config{Seed: 1, MaxSteps: 50_000})
		if !out.Failed {
			t.Errorf("source %q: expected failure %v, got success (exit %d)", c.src, c.kind, out.Exit)
			continue
		}
		if out.Report.Kind != c.kind {
			t.Errorf("source %q: got %v, want %v", c.src, out.Report.Kind, c.kind)
		}
		if out.Report.ID() == "" || len(out.Report.Stack) == 0 {
			t.Errorf("source %q: incomplete report %+v", c.src, out.Report)
		}
	}
}

func TestDeadlockReportCarriesAllBlockedPCs(t *testing.T) {
	src := `
global int a = 0;
global int b = 0;
void t1(int x) { lock(&a); yield(); lock(&b); unlock(&b); unlock(&a); }
void t2(int x) { lock(&b); yield(); lock(&a); unlock(&a); unlock(&b); }
int main() {
	int p = spawn(t1, 0);
	int q = spawn(t2, 0);
	join(p);
	join(q);
	return 0;
}`
	p, err := ir.Compile("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	var report *FailureReport
	for seed := int64(0); seed < 300; seed++ {
		out := Run(p, Config{Seed: seed, PreemptMean: 2, MaxSteps: 50_000})
		if out.Failed && out.Report.Kind == FaultDeadlock {
			report = out.Report
			break
		}
	}
	if report == nil {
		t.Fatal("no deadlock observed")
	}
	if len(report.OtherPCs) == 0 {
		t.Fatalf("deadlock report misses the other cycle participant: %+v", report)
	}
	// The main report and the other PC must be lock callsites on
	// different lines.
	other := p.Instrs[report.OtherPCs[0]]
	if other.Pos.Line == report.Pos.Line {
		t.Errorf("cycle participants on the same line: %d", other.Pos.Line)
	}
}

func TestFreeNullIsNoop(t *testing.T) {
	mustExit(t, `int main() { free(null); return 0; }`, 0)
}

func TestThreadsComputeInParallel(t *testing.T) {
	src := `
global int a = 0;
global int b = 0;
void workerA(int x) { a = x * 2; }
void workerB(int x) { b = x + 5; }
int main() {
	int t1 = spawn(workerA, 10);
	int t2 = spawn(workerB, 10);
	join(t1);
	join(t2);
	return a + b;
}`
	for seed := int64(0); seed < 20; seed++ {
		out := run(t, src, Config{Seed: seed})
		if out.Failed {
			t.Fatalf("seed %d: %v", seed, out.Report)
		}
		if out.Exit != 35 {
			t.Fatalf("seed %d: exit %d", seed, out.Exit)
		}
	}
}

func TestMutexProvidesExclusion(t *testing.T) {
	src := `
global int m = 0;
global int counter = 0;
void worker(int n) {
	for (int i = 0; i < n; i++) {
		lock(&m);
		int c = counter;
		c = c + 1;
		counter = c;
		unlock(&m);
	}
}
int main() {
	int t1 = spawn(worker, 50);
	int t2 = spawn(worker, 50);
	join(t1);
	join(t2);
	return counter;
}`
	for seed := int64(0); seed < 10; seed++ {
		out := run(t, src, Config{Seed: seed, PreemptMean: 2})
		if out.Failed {
			t.Fatalf("seed %d: %v", seed, out.Report)
		}
		if out.Exit != 100 {
			t.Fatalf("seed %d: counter = %d, want 100 (mutex broken)", seed, out.Exit)
		}
	}
}

func TestRacyIncrementLosesUpdates(t *testing.T) {
	// Without the mutex, some schedule must lose an update.
	src := `
global int counter = 0;
void worker(int n) {
	for (int i = 0; i < n; i++) {
		int c = counter;
		c = c + 1;
		counter = c;
	}
}
int main() {
	int t1 = spawn(worker, 30);
	int t2 = spawn(worker, 30);
	join(t1);
	join(t2);
	return counter;
}`
	lost := false
	for seed := int64(0); seed < 30; seed++ {
		out := run(t, src, Config{Seed: seed, PreemptMean: 2})
		if out.Failed {
			t.Fatalf("seed %d: %v", seed, out.Report)
		}
		if out.Exit < 60 {
			lost = true
		}
	}
	if !lost {
		t.Error("no schedule lost an update; preemption too coarse?")
	}
}

const pbzipLike = `
struct queue { int* mut; int size; };
global struct queue* fifo;
global int work = 0;
void cons(int arg) {
	struct queue* f = fifo;
	work = work + f->size;
	unlock(f->mut);
}
int main() {
	fifo = malloc(sizeof(queue));
	fifo->mut = malloc(8);
	fifo->size = 7;
	int t = spawn(cons, 0);
	int spin = 0;
	for (int i = 0; i < 1; i++) { spin = spin + i; }
	free(fifo->mut);
	fifo->mut = null;
	join(t);
	return 0;
}`

func TestPbzipLikeBugIsScheduleDependent(t *testing.T) {
	fails, successes := 0, 0
	for seed := int64(0); seed < 150; seed++ {
		out := run(t, pbzipLike, Config{Seed: seed, PreemptMean: 3})
		if out.Failed {
			fails++
			k := out.Report.Kind
			if k != FaultNullDeref && k != FaultUseAfterFree {
				t.Fatalf("seed %d: unexpected fault %v", seed, k)
			}
		} else {
			successes++
		}
	}
	if fails == 0 || successes == 0 {
		t.Fatalf("need both outcomes: fails=%d successes=%d", fails, successes)
	}
}

func TestDeterminism(t *testing.T) {
	p, err := ir.Compile("t.mc", pbzipLike)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		a := Run(p, Config{Seed: seed, PreemptMean: 3})
		b := Run(p, Config{Seed: seed, PreemptMean: 3})
		if a.Failed != b.Failed || a.Exit != b.Exit || a.Steps != b.Steps {
			return false
		}
		if a.Failed && a.Report.ID() != b.Report.ID() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHooksFire(t *testing.T) {
	var steps, branches, loads, stores, scheds, spawns int
	cfg := Config{Seed: 3, PreemptMean: 2}
	cfg.Hooks = Hooks{
		OnStep:     func(*Thread, *ir.Instr, int64) { steps++ },
		OnBranch:   func(_ *Thread, _ *ir.Instr, _ bool, _ int64) { branches++ },
		OnLoad:     func(_ *Thread, _ *ir.Instr, _, _, _ int64, _ int64) { loads++ },
		OnStore:    func(_ *Thread, _ *ir.Instr, _, _, _ int64, _ int64) { stores++ },
		OnSchedule: func(_, _ int, _ int64) { scheds++ },
		OnSpawn:    func(_, _ int, _ *ir.Func, _ int64) { spawns++ },
	}
	out := run(t, pbzipLike, cfg)
	if steps == 0 || branches == 0 || loads == 0 || stores == 0 || spawns != 1 {
		t.Errorf("hooks: steps=%d branches=%d loads=%d stores=%d scheds=%d spawns=%d outcome=%+v",
			steps, branches, loads, stores, scheds, spawns, out)
	}
	if int64(steps) != out.Steps {
		t.Errorf("OnStep count %d != Steps %d", steps, out.Steps)
	}
}

func TestStackIsolationBetweenThreads(t *testing.T) {
	src := `
global int r1 = 0;
global int r2 = 0;
void w1(int x) { int local = x; for (int i = 0; i < 20; i++) { local = local + 1; } r1 = local; }
void w2(int x) { int local = x; for (int i = 0; i < 20; i++) { local = local + 2; } r2 = local; }
int main() {
	int t1 = spawn(w1, 100);
	int t2 = spawn(w2, 200);
	join(t1); join(t2);
	return r1 + r2;
}`
	for seed := int64(0); seed < 10; seed++ {
		out := run(t, src, Config{Seed: seed, PreemptMean: 1})
		if out.Failed || out.Exit != 120+240 {
			t.Fatalf("seed %d: %+v", seed, out)
		}
	}
}

func TestStackOverflowDetected(t *testing.T) {
	out := run(t, `
int rec(int n) { int pad = n; return rec(n + pad - pad + 1); }
int main() { return rec(0); }`, Config{Seed: 1, MaxSteps: 10_000_000})
	if !out.Failed || out.Report.Kind != FaultStackOverflow {
		t.Fatalf("got %+v", out)
	}
}

func TestFailureIDStableAcrossSeeds(t *testing.T) {
	// The same bug manifesting in different runs must match (same failing
	// instruction + stack), which is how the Gist server groups reports.
	p, err := ir.Compile("t.mc", pbzipLike)
	if err != nil {
		t.Fatal(err)
	}
	idsByKind := make(map[FaultKind]map[string]bool)
	for seed := int64(0); seed < 200; seed++ {
		out := Run(p, Config{Seed: seed, PreemptMean: 3})
		if !out.Failed {
			continue
		}
		m := idsByKind[out.Report.Kind]
		if m == nil {
			m = make(map[string]bool)
			idsByKind[out.Report.Kind] = m
		}
		m[out.Report.ID()] = true
	}
	if len(idsByKind) == 0 {
		t.Fatal("no failing seeds found")
	}
	for kind, ids := range idsByKind {
		if len(ids) != 1 {
			t.Errorf("fault kind %v produced %d distinct failure IDs, want 1: %v", kind, len(ids), ids)
		}
	}
}
