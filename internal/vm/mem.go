// Package vm implements the execution substrate for MiniC programs: a
// flat 64-bit address space, a heap with double-free and use-after-free
// detection, threads with a seeded preemptive scheduler, mutexes, and
// failure detection (segfaults, assertion violations, deadlocks, hangs).
//
// Executions of this VM play the role of the paper's "production runs":
// a fleet of VM runs with different seeds and workloads yields failing
// and successful executions of the same program, which is exactly the
// population Gist's cooperative analysis operates on. The VM exposes
// tracing hooks (branch outcomes, memory accesses, scheduling events)
// that the Intel PT simulator, the watchpoint unit, and the record/replay
// baseline attach to.
package vm

import (
	"fmt"
	"sort"
)

// Address-space layout. Small addresses form the "null page": any access
// below NullPageSize faults, so dereferencing a null (or null+offset)
// pointer behaves like a real segfault.
const (
	NullPageSize = 0x1000
	GlobalsBase  = 0x0000_0000_0000_1000
	StringsBase  = 0x0000_0000_0001_0000
	StackBase    = 0x0000_0000_0010_0000
	StackStride  = 0x0000_0000_0001_0000 // per-thread stack region
	HeapBase     = 0x0000_0000_0100_0000
	heapLimit    = 0x0000_0000_1000_0000
)

// FaultKind classifies memory and runtime faults.
type FaultKind int

// Fault kinds.
const (
	FaultNone FaultKind = iota
	FaultNullDeref
	FaultOutOfBounds
	FaultUseAfterFree
	FaultDoubleFree
	FaultInvalidFree
	FaultAssert
	FaultDivZero
	FaultDeadlock
	FaultHang
	FaultStackOverflow
)

var faultNames = map[FaultKind]string{
	FaultNone:          "none",
	FaultNullDeref:     "segmentation fault (null dereference)",
	FaultOutOfBounds:   "segmentation fault (out of bounds)",
	FaultUseAfterFree:  "use after free",
	FaultDoubleFree:    "double free",
	FaultInvalidFree:   "invalid free",
	FaultAssert:        "assertion violation",
	FaultDivZero:       "division by zero",
	FaultDeadlock:      "deadlock",
	FaultHang:          "hang (step limit exceeded)",
	FaultStackOverflow: "stack overflow",
}

// String returns the human-readable fault description.
func (k FaultKind) String() string {
	if s, ok := faultNames[k]; ok {
		return s
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault is a runtime fault; it aborts the faulting run.
type Fault struct {
	Kind FaultKind
	Addr int64
	Msg  string
}

func (f *Fault) Error() string {
	if f.Msg != "" {
		return fmt.Sprintf("%s: %s", f.Kind, f.Msg)
	}
	return f.Kind.String()
}

// alloc describes one heap allocation.
type alloc struct {
	base  int64
	size  int64
	freed bool
}

// Memory is the VM's address space.
type Memory struct {
	globals []byte
	strs    []byte
	strsLen int64
	stacks  map[int][]byte // thread ID -> stack bytes
	heap    []byte
	heapLen int64

	allocs     []*alloc // sorted by base
	allocIndex map[int64]*alloc

	// stackPool holds zeroed stack regions recycled by Reset; EnsureStack
	// prefers them over fresh allocations so a reused Memory (bytecode
	// engine) does not pay a 64 KiB allocation per thread per run.
	stackPool [][]byte

	// One-entry caches for the bytecode engine's word-sized fast path
	// (memfast.go): the last stack and heap allocation touched. Both are
	// revalidated on every use and invalidated by Reset, so they are
	// invisible to fault semantics. The interpreter's byte-loop path
	// never consults them.
	cacheTid   int
	cacheStack []byte
	cacheAlloc *alloc
}

// NewMemory returns an empty address space with room for nGlobals global
// words.
func NewMemory(nGlobals int) *Memory {
	return &Memory{
		globals:    make([]byte, nGlobals*8),
		strs:       make([]byte, 0, 4096),
		stacks:     make(map[int][]byte),
		heap:       make([]byte, 0, 1<<16),
		allocIndex: make(map[int64]*alloc),
	}
}

// AddString places a NUL-terminated string in the read-only string region
// and returns its address.
func (m *Memory) AddString(s string) int64 {
	addr := StringsBase + m.strsLen
	m.strs = append(m.strs, s...)
	m.strs = append(m.strs, 0)
	m.strsLen += int64(len(s)) + 1
	return addr
}

// EnsureStack creates (or returns) the stack region for a thread,
// recycling a zeroed region parked by Reset when one is available.
func (m *Memory) EnsureStack(tid int) {
	if _, ok := m.stacks[tid]; ok {
		return
	}
	if n := len(m.stackPool); n > 0 {
		m.stacks[tid] = m.stackPool[n-1]
		m.stackPool = m.stackPool[:n-1]
		return
	}
	m.stacks[tid] = make([]byte, StackStride)
}

// StackAddr returns the address of word slot idx of frame-base fb in
// thread tid's stack.
func StackAddr(tid int, frameBase int, slot int) int64 {
	return StackBase + int64(tid)*StackStride + int64(frameBase+slot)*8
}

// IsStackAddr reports whether addr falls in any thread's stack region.
func IsStackAddr(addr int64) bool {
	return addr >= StackBase && addr < HeapBase
}

// IsHeapAddr reports whether addr falls in the heap region.
func IsHeapAddr(addr int64) bool { return addr >= HeapBase && addr < heapLimit }

// IsGlobalAddr reports whether addr falls in the globals region.
func IsGlobalAddr(addr int64) bool { return addr >= GlobalsBase && addr < StringsBase }

// Malloc allocates size zeroed bytes and returns the base address.
func (m *Memory) Malloc(size int64) (int64, *Fault) {
	if size < 0 {
		return 0, &Fault{Kind: FaultOutOfBounds, Msg: "negative allocation size"}
	}
	if size == 0 {
		size = 8
	}
	// Round up to a word and add a one-word red zone between allocations
	// so off-by-one writes land on unmapped bytes.
	size = (size + 7) &^ 7
	base := HeapBase + m.heapLen
	need := m.heapLen + size + 8
	if HeapBase+need >= heapLimit {
		return 0, &Fault{Kind: FaultOutOfBounds, Msg: "heap exhausted"}
	}
	for int64(len(m.heap)) < need {
		m.heap = append(m.heap, make([]byte, need-int64(len(m.heap)))...)
	}
	for i := m.heapLen; i < m.heapLen+size; i++ {
		m.heap[i] = 0
	}
	m.heapLen = need
	a := &alloc{base: base, size: size}
	m.allocs = append(m.allocs, a)
	m.allocIndex[base] = a
	return base, nil
}

// Free releases a heap allocation. Freeing an address that is not an
// allocation base is an invalid free; freeing twice is a double free —
// the memory bugs several of the evaluated failures hinge on.
func (m *Memory) Free(addr int64) *Fault {
	if addr == 0 {
		return nil // free(NULL) is a no-op, as in C
	}
	a, ok := m.allocIndex[addr]
	if !ok {
		return &Fault{Kind: FaultInvalidFree, Addr: addr, Msg: fmt.Sprintf("free of non-allocation address %#x", addr)}
	}
	if a.freed {
		return &Fault{Kind: FaultDoubleFree, Addr: addr, Msg: fmt.Sprintf("double free of %#x", addr)}
	}
	a.freed = true
	return nil
}

// findAlloc returns the allocation containing addr, if any.
func (m *Memory) findAlloc(addr int64) *alloc {
	i := sort.Search(len(m.allocs), func(i int) bool { return m.allocs[i].base > addr })
	if i == 0 {
		return nil
	}
	a := m.allocs[i-1]
	if addr >= a.base && addr < a.base+a.size {
		return a
	}
	return nil
}

// resolve maps an address to the backing byte slice and offset, checking
// bounds and allocation state.
func (m *Memory) resolve(addr, size int64) ([]byte, int64, *Fault) {
	switch {
	case addr >= 0 && addr < NullPageSize:
		return nil, 0, &Fault{Kind: FaultNullDeref, Addr: addr}
	case IsGlobalAddr(addr):
		off := addr - GlobalsBase
		if off+size > int64(len(m.globals)) {
			return nil, 0, &Fault{Kind: FaultOutOfBounds, Addr: addr, Msg: "past end of globals"}
		}
		return m.globals, off, nil
	case addr >= StringsBase && addr < StackBase:
		off := addr - StringsBase
		if off+size > m.strsLen {
			return nil, 0, &Fault{Kind: FaultOutOfBounds, Addr: addr, Msg: "past end of string pool"}
		}
		return m.strs, off, nil
	case IsStackAddr(addr):
		tid := int((addr - StackBase) / StackStride)
		st, ok := m.stacks[tid]
		if !ok {
			return nil, 0, &Fault{Kind: FaultOutOfBounds, Addr: addr, Msg: "stack of dead thread"}
		}
		off := (addr - StackBase) % StackStride
		if off+size > int64(len(st)) {
			return nil, 0, &Fault{Kind: FaultStackOverflow, Addr: addr}
		}
		return st, off, nil
	case IsHeapAddr(addr):
		a := m.findAlloc(addr)
		if a == nil {
			return nil, 0, &Fault{Kind: FaultOutOfBounds, Addr: addr, Msg: "unallocated heap address"}
		}
		if a.freed {
			return nil, 0, &Fault{Kind: FaultUseAfterFree, Addr: addr, Msg: fmt.Sprintf("access to freed allocation %#x", a.base)}
		}
		if addr+size > a.base+a.size {
			return nil, 0, &Fault{Kind: FaultOutOfBounds, Addr: addr, Msg: "past end of allocation"}
		}
		return m.heap, addr - HeapBase, nil
	default:
		return nil, 0, &Fault{Kind: FaultOutOfBounds, Addr: addr, Msg: "wild address"}
	}
}

// Load reads size bytes (1 or 8) at addr, little-endian.
func (m *Memory) Load(addr, size int64) (int64, *Fault) {
	buf, off, f := m.resolve(addr, size)
	if f != nil {
		return 0, f
	}
	if size == 1 {
		return int64(buf[off]), nil
	}
	var v uint64
	for i := int64(0); i < 8; i++ {
		v |= uint64(buf[off+i]) << (8 * i)
	}
	return int64(v), nil
}

// Store writes size bytes (1 or 8) at addr, little-endian.
func (m *Memory) Store(addr, size, val int64) *Fault {
	buf, off, f := m.resolve(addr, size)
	if f != nil {
		return f
	}
	if size == 1 {
		buf[off] = byte(val)
		return nil
	}
	v := uint64(val)
	for i := int64(0); i < 8; i++ {
		buf[off+i] = byte(v >> (8 * i))
	}
	return nil
}

// LoadCString reads the NUL-terminated byte string at addr (bounded at
// 64 KiB to keep runaway reads finite).
func (m *Memory) LoadCString(addr int64) (string, *Fault) {
	var out []byte
	for i := int64(0); i < 1<<16; i++ {
		b, f := m.Load(addr+i, 1)
		if f != nil {
			return "", f
		}
		if b == 0 {
			return string(out), nil
		}
		out = append(out, byte(b))
	}
	return "", &Fault{Kind: FaultOutOfBounds, Addr: addr, Msg: "unterminated string"}
}
