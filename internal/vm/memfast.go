package vm

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// This file is the reuse-and-speed surface the bytecode engine
// (internal/vm/bytecode) drives the address space through. The
// tree-walking interpreter in vm.go deliberately stays on the plain
// Load/Store byte loops — it is the reference implementation the
// bytecode engine is differentially tested against — while the bytecode
// engine uses the word-sized accessors and resets one Memory across
// runs instead of allocating a fresh address space per run.
//
// Every method here is semantically identical to the slow path: the
// same checks run in the same order per region, so the fault a program
// observes (kind, address, message) cannot depend on which engine
// executed it. The differential suite in internal/vm/bytecode and
// internal/experiments holds both engines to that.

// Reset returns the memory to its post-NewMemory state for nGlobals
// global words, recycling every internal buffer: globals are zeroed in
// place, the string region is emptied, per-thread stacks are zeroed and
// parked on a free list for the next EnsureStack, and the heap is
// emptied without releasing its backing array (Malloc re-zeroes each
// allocation's bytes, and red-zone bytes are unreadable by
// construction, so stale heap bytes can never be observed).
func (m *Memory) Reset(nGlobals int) {
	need := nGlobals * 8
	if cap(m.globals) >= need {
		m.globals = m.globals[:need]
		clear(m.globals)
	} else {
		m.globals = make([]byte, need)
	}
	m.strs = m.strs[:0]
	m.strsLen = 0
	for tid, st := range m.stacks {
		clear(st)
		m.stackPool = append(m.stackPool, st)
		delete(m.stacks, tid)
	}
	// Keep len(m.heap): Malloc zeroes [heapLen, heapLen+size) itself and
	// its grow loop then no-ops, which is what makes reuse cheaper than a
	// fresh address space.
	m.heapLen = 0
	m.allocs = m.allocs[:0]
	clear(m.allocIndex)
	m.cacheStack = nil
	m.cacheAlloc = nil
}

// SetStringBlob installs blob as the entire string-pool region. The
// bytecode engine precomputes the concatenated NUL-terminated program
// strings once at compile time; a run reset is then a single copy, and
// per-run workload strings are appended with AddString afterwards —
// producing byte- and address-identical string pools to a fresh
// interpreter VM.
func (m *Memory) SetStringBlob(blob []byte) {
	m.strs = append(m.strs[:0], blob...)
	m.strsLen = int64(len(blob))
}

// fastResolve is resolve(addr, size) with one-entry stack and
// allocation caches. Stacks are never replaced while live (only Reset
// removes them) and a cached allocation is revalidated for range and
// freed state on every hit, so a cache hit and a cold resolve return
// identical results.
func (m *Memory) fastResolve(addr, size int64) ([]byte, int64, *Fault) {
	switch {
	case IsStackAddr(addr):
		tid := int((addr - StackBase) / StackStride)
		st := m.cacheStack
		if st == nil || tid != m.cacheTid {
			var ok bool
			st, ok = m.stacks[tid]
			if !ok {
				return nil, 0, &Fault{Kind: FaultOutOfBounds, Addr: addr, Msg: "stack of dead thread"}
			}
			m.cacheTid, m.cacheStack = tid, st
		}
		off := (addr - StackBase) % StackStride
		if off+size > int64(len(st)) {
			return nil, 0, &Fault{Kind: FaultStackOverflow, Addr: addr}
		}
		return st, off, nil
	case IsHeapAddr(addr):
		a := m.cacheAlloc
		if a == nil || addr < a.base || addr >= a.base+a.size {
			a = m.findAlloc(addr)
			if a == nil {
				return nil, 0, &Fault{Kind: FaultOutOfBounds, Addr: addr, Msg: "unallocated heap address"}
			}
			m.cacheAlloc = a
		}
		if a.freed {
			return nil, 0, &Fault{Kind: FaultUseAfterFree, Addr: addr, Msg: fmt.Sprintf("access to freed allocation %#x", a.base)}
		}
		if addr+size > a.base+a.size {
			return nil, 0, &Fault{Kind: FaultOutOfBounds, Addr: addr, Msg: "past end of allocation"}
		}
		return m.heap, addr - HeapBase, nil
	default:
		return m.resolve(addr, size)
	}
}

// LoadWord is Load(addr, 8) on the cached fast path.
func (m *Memory) LoadWord(addr int64) (int64, *Fault) {
	buf, off, f := m.fastResolve(addr, 8)
	if f != nil {
		return 0, f
	}
	return int64(binary.LittleEndian.Uint64(buf[off:])), nil
}

// StoreWord is Store(addr, 8, val) on the cached fast path.
func (m *Memory) StoreWord(addr, val int64) *Fault {
	buf, off, f := m.fastResolve(addr, 8)
	if f != nil {
		return f
	}
	binary.LittleEndian.PutUint64(buf[off:], uint64(val))
	return nil
}

// LoadByte is Load(addr, 1) on the cached fast path.
func (m *Memory) LoadByte(addr int64) (int64, *Fault) {
	buf, off, f := m.fastResolve(addr, 1)
	if f != nil {
		return 0, f
	}
	return int64(buf[off]), nil
}

// StoreByte is Store(addr, 1, val) on the cached fast path.
func (m *Memory) StoreByte(addr, val int64) *Fault {
	buf, off, f := m.fastResolve(addr, 1)
	if f != nil {
		return f
	}
	buf[off] = byte(val)
	return nil
}

// ZeroStackWords zeroes n word slots starting at frame-base fb of
// thread tid's stack — the frame-push local zeroing, done as one memclr
// instead of n full Store round trips. Callers must have performed the
// frame-overflow check first (as pushFrame does), so the range is
// always in bounds.
func (m *Memory) ZeroStackWords(tid, fb, n int) {
	st := m.stacks[tid]
	clear(st[fb*8 : (fb+n)*8])
}

// regionSpan returns the backing slice, offset, and number of
// contiguously readable bytes starting at addr. A fault is exactly what
// resolve(addr, 1) would report for the first byte.
func (m *Memory) regionSpan(addr int64) ([]byte, int64, int64, *Fault) {
	switch {
	case addr >= 0 && addr < NullPageSize:
		return nil, 0, 0, &Fault{Kind: FaultNullDeref, Addr: addr}
	case IsGlobalAddr(addr):
		off := addr - GlobalsBase
		if off+1 > int64(len(m.globals)) {
			return nil, 0, 0, &Fault{Kind: FaultOutOfBounds, Addr: addr, Msg: "past end of globals"}
		}
		return m.globals, off, int64(len(m.globals)) - off, nil
	case addr >= StringsBase && addr < StackBase:
		off := addr - StringsBase
		if off+1 > m.strsLen {
			return nil, 0, 0, &Fault{Kind: FaultOutOfBounds, Addr: addr, Msg: "past end of string pool"}
		}
		return m.strs, off, m.strsLen - off, nil
	case IsStackAddr(addr):
		tid := int((addr - StackBase) / StackStride)
		st, ok := m.stacks[tid]
		if !ok {
			return nil, 0, 0, &Fault{Kind: FaultOutOfBounds, Addr: addr, Msg: "stack of dead thread"}
		}
		off := (addr - StackBase) % StackStride
		if off+1 > int64(len(st)) {
			return nil, 0, 0, &Fault{Kind: FaultStackOverflow, Addr: addr}
		}
		return st, off, int64(len(st)) - off, nil
	case IsHeapAddr(addr):
		a := m.findAlloc(addr)
		if a == nil {
			return nil, 0, 0, &Fault{Kind: FaultOutOfBounds, Addr: addr, Msg: "unallocated heap address"}
		}
		if a.freed {
			return nil, 0, 0, &Fault{Kind: FaultUseAfterFree, Addr: addr, Msg: fmt.Sprintf("access to freed allocation %#x", a.base)}
		}
		return m.heap, addr - HeapBase, a.base + a.size - addr, nil
	default:
		return nil, 0, 0, &Fault{Kind: FaultOutOfBounds, Addr: addr, Msg: "wild address"}
	}
}

// LoadCStringFast reads the NUL-terminated string at addr by scanning
// whole region spans instead of issuing one bounds-checked Load per
// byte. It walks span to span exactly as the byte loop walks byte to
// byte (a string may legitimately cross from one thread's stack into
// the next live thread's), keeps the interpreter's 64 KiB runaway
// bound, and reports the identical fault at the identical address when
// a scan runs off the end of readable memory.
func (m *Memory) LoadCStringFast(addr int64) (string, *Fault) {
	const maxLen = 1 << 16
	var out []byte
	read := int64(0)
	for read < maxLen {
		buf, off, span, f := m.regionSpan(addr + read)
		if f != nil {
			return "", f
		}
		if span > maxLen-read {
			span = maxLen - read
		}
		chunk := buf[off : off+span]
		if i := bytes.IndexByte(chunk, 0); i >= 0 {
			if read == 0 {
				return string(chunk[:i]), nil
			}
			return string(append(out, chunk[:i]...)), nil
		}
		out = append(out, chunk...)
		read += span
	}
	return "", &Fault{Kind: FaultOutOfBounds, Addr: addr, Msg: "unterminated string"}
}
