package vm

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"repro/internal/ir"
	"repro/internal/lang/sema"
	"repro/internal/lang/token"
)

// PC is an interpreter program counter.
type PC struct {
	Fn  *ir.Func
	Blk *ir.Block
	Idx int
}

// Instr returns the instruction at the PC.
func (pc PC) Instr() *ir.Instr { return pc.Blk.Instrs[pc.Idx] }

// Frame is one activation record.
type Frame struct {
	Fn       *ir.Func
	Regs     []int64
	Base     int       // first slot index within the thread stack, in words
	RetPC    PC        // caller resume point
	RetDst   int       // caller register receiving the return value, -1 if none
	CallSite *ir.Instr // nil for the bottom frame
}

// ThreadState enumerates scheduler states.
type ThreadState int

// Thread states.
const (
	ThreadRunnable ThreadState = iota
	ThreadBlocked
	ThreadDone
)

// BlockReason says what a blocked thread is waiting for.
type BlockReason struct {
	MutexAddr int64 // nonzero: waiting to lock this address
	JoinTID   int   // >= 0: waiting for this thread to finish
}

// Thread is one VM thread.
type Thread struct {
	ID     int
	Frames []*Frame
	PC     PC
	State  ThreadState
	Block  BlockReason

	stackTop int // words in use on this thread's stack
	Result   int64

	// retrying marks that the thread is re-executing a builtin that
	// previously blocked (lock, join). The retry is the same logical
	// execution of the instruction: it is not re-counted in the clock and
	// does not re-fire OnStep, matching how a blocking operation retires
	// exactly once on real hardware.
	retrying bool
}

func (t *Thread) top() *Frame { return t.Frames[len(t.Frames)-1] }

// StackEntry is one level of a captured call stack.
type StackEntry struct {
	Fn         string
	CallSiteID int // instruction ID of the callsite into Fn; -1 for the bottom frame
}

// FailureReport describes a failed run: the failure kind, the failing
// instruction (the paper's "statement where the failure manifests
// itself"), and the stack trace. Reports with equal IDs are "the same
// failure" for the purposes of cooperative aggregation (the paper matches
// program counters and stack traces).
type FailureReport struct {
	Kind     FaultKind
	InstrID  int
	Pos      token.Position
	ThreadID int
	Stack    []StackEntry
	Msg      string

	// OtherPCs are the current instructions of the other blocked threads
	// when the failure is a deadlock — a crash dump carries every
	// thread's stack, and for deadlocks the cycle's other participants
	// are part of the failure identity and of the slice roots.
	OtherPCs []int
}

// ID returns a stable identity for the failure across runs.
func (r *FailureReport) ID() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d", r.Kind, r.InstrID)
	for _, e := range r.Stack {
		fmt.Fprintf(h, "|%s@%d", e.Fn, e.CallSiteID)
	}
	for _, pc := range r.OtherPCs {
		fmt.Fprintf(h, "|o%d", pc)
	}
	return fmt.Sprintf("f%016x", h.Sum64())
}

// String renders the report like a crash dump header.
func (r *FailureReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s at instruction %%%d (%s), thread T%d\n", r.Kind, r.InstrID, r.Pos, r.ThreadID)
	if r.Msg != "" {
		fmt.Fprintf(&b, "  %s\n", r.Msg)
	}
	for i, e := range r.Stack {
		fmt.Fprintf(&b, "  #%d %s\n", i, e.Fn)
	}
	return b.String()
}

// Outcome is the result of one complete run.
type Outcome struct {
	Failed bool
	Report *FailureReport
	Exit   int64
	Steps  int64
	Prints []string
}

// Hooks are the VM's tracing callbacks. Any field may be nil. Hook code
// must not mutate VM state; it exists so the PT simulator, the watchpoint
// unit, the record/replay recorder, and sampling monitors can observe
// execution — exactly the attachment points the corresponding hardware
// provides.
type Hooks struct {
	// OnStep fires before every instruction.
	OnStep func(t *Thread, in *ir.Instr, clock int64)
	// OnBranch fires at every conditional branch with its outcome.
	OnBranch func(t *Thread, in *ir.Instr, taken bool, clock int64)
	// OnIndirect fires at control transfers whose target is not a static
	// successor (calls, returns, spawns) — PT TIP packet material.
	OnIndirect func(t *Thread, in *ir.Instr, target *ir.Instr, clock int64)
	// OnLoad/OnStore fire after each successful data memory access.
	OnLoad  func(t *Thread, in *ir.Instr, addr, val, size int64, clock int64)
	OnStore func(t *Thread, in *ir.Instr, addr, val, size int64, clock int64)
	// OnSchedule fires when the scheduler switches threads.
	OnSchedule func(from, to int, clock int64)
	// OnSpawn fires when a thread is created.
	OnSpawn func(parent, child int, fn *ir.Func, clock int64)
}

// Workload is the program input for one run.
type Workload struct {
	Ints []int64
	Strs []string
}

// Config configures one run.
type Config struct {
	Seed int64
	// MaxSteps bounds the run; exceeding it is reported as a hang.
	MaxSteps int64
	// PreemptMean is the average number of instructions between
	// preemptions; smaller means more aggressive interleaving.
	PreemptMean int
	Workload    Workload
	Hooks       Hooks
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxSteps == 0 {
		out.MaxSteps = 2_000_000
	}
	if out.PreemptMean == 0 {
		out.PreemptMean = 5
	}
	return out
}

// Normalized returns the config with the interpreter's defaults applied.
// Alternative engines (internal/vm/bytecode) call this so a zero
// MaxSteps or PreemptMean means the same thing on every engine.
func (c Config) Normalized() Config { return c.withDefaults() }

// VM executes one program run.
type VM struct {
	Prog *ir.Program
	Mem  *Memory
	cfg  Config
	rng  *rand.Rand

	Threads []*Thread
	cur     int // currently scheduled thread ID
	quantum int

	Clock  int64
	prints []string

	strAddrs      []int64 // string pool index -> address
	workloadAddrs []int64 // workload string index -> address
	nextTID       int
	fault         *FailureReport
}

// New prepares a VM for prog under cfg. The program must be finalized.
func New(prog *ir.Program, cfg Config) *VM {
	cfg = cfg.withDefaults()
	v := &VM{
		Prog: prog,
		Mem:  NewMemory(len(prog.Globals)),
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	for _, s := range prog.Strings {
		v.strAddrs = append(v.strAddrs, v.Mem.AddString(s))
	}
	for _, s := range cfg.Workload.Strs {
		v.workloadAddrs = append(v.workloadAddrs, v.Mem.AddString(s))
	}
	for _, g := range prog.Globals {
		val := g.Init
		if g.InitStr >= 0 {
			val = v.strAddrs[g.InitStr]
		}
		// Globals region is zero-initialized; only write non-zero inits.
		if val != 0 {
			if f := v.Mem.Store(GlobalsBase+int64(g.Index)*8, 8, val); f != nil {
				panic(fmt.Sprintf("global init: %v", f))
			}
		}
	}
	main := prog.FuncByName["main"]
	v.spawnThread(main, nil, -1)
	return v
}

// GlobalAddr returns the address of global index i.
func (v *VM) GlobalAddr(i int) int64 { return GlobalsBase + int64(i)*8 }

// RunnableThreads reports how many threads are currently runnable; the
// record/replay baseline uses it to model single-core serialization.
func (v *VM) RunnableThreads() int {
	n := 0
	for _, t := range v.Threads {
		if t.State == ThreadRunnable {
			n++
		}
	}
	return n
}

// spawnThread creates a thread running fn. arg, if non-nil, is stored into
// parameter slot 0.
func (v *VM) spawnThread(fn *ir.Func, arg *int64, parent int) *Thread {
	t := &Thread{ID: v.nextTID, State: ThreadRunnable}
	v.nextTID++
	v.Mem.EnsureStack(t.ID)
	v.Threads = append(v.Threads, t)
	v.pushFrame(t, fn, nil, PC{}, -1)
	if arg != nil && fn.Params > 0 {
		addr := StackAddr(t.ID, t.Frames[0].Base, 0)
		if f := v.Mem.Store(addr, 8, *arg); f != nil {
			panic(fmt.Sprintf("spawn arg store: %v", f))
		}
	}
	if v.cfg.Hooks.OnSpawn != nil && parent >= 0 {
		v.cfg.Hooks.OnSpawn(parent, t.ID, fn, v.Clock)
	}
	return t
}

func (v *VM) pushFrame(t *Thread, fn *ir.Func, callSite *ir.Instr, retPC PC, retDst int) *Fault {
	if (t.stackTop+len(fn.Locals)+8)*8 >= StackStride {
		return &Fault{Kind: FaultStackOverflow}
	}
	fr := &Frame{
		Fn:       fn,
		Regs:     make([]int64, fn.NumRegs),
		Base:     t.stackTop,
		RetPC:    retPC,
		RetDst:   retDst,
		CallSite: callSite,
	}
	// Zero the slots: freshly pushed frames see deterministic locals.
	for i := range fn.Locals {
		addr := StackAddr(t.ID, fr.Base, i)
		if f := v.Mem.Store(addr, 8, 0); f != nil {
			return f
		}
	}
	t.stackTop += len(fn.Locals)
	t.Frames = append(t.Frames, fr)
	t.PC = PC{Fn: fn, Blk: fn.Entry(), Idx: 0}
	return nil
}

// stackTrace captures t's call stack, innermost first.
func (v *VM) stackTrace(t *Thread) []StackEntry {
	var out []StackEntry
	for i := len(t.Frames) - 1; i >= 0; i-- {
		fr := t.Frames[i]
		cs := -1
		if fr.CallSite != nil {
			cs = fr.CallSite.ID
		}
		out = append(out, StackEntry{Fn: fr.Fn.Name, CallSiteID: cs})
	}
	return out
}

func (v *VM) failAt(t *Thread, in *ir.Instr, f *Fault) {
	v.fault = &FailureReport{
		Kind:     f.Kind,
		InstrID:  in.ID,
		Pos:      in.Pos,
		ThreadID: t.ID,
		Stack:    v.stackTrace(t),
		Msg:      f.Msg,
	}
}

// Run executes the program to completion and returns the outcome.
func Run(prog *ir.Program, cfg Config) *Outcome {
	return New(prog, cfg).Run()
}

// Run executes until main returns, a fault occurs, deadlock, or the step
// limit is reached.
func (v *VM) Run() *Outcome {
	for {
		if v.fault != nil {
			return &Outcome{Failed: true, Report: v.fault, Steps: v.Clock, Prints: v.prints}
		}
		if v.Threads[0].State == ThreadDone {
			return &Outcome{Exit: v.Threads[0].Result, Steps: v.Clock, Prints: v.prints}
		}
		if v.Clock >= v.cfg.MaxSteps {
			t := v.Threads[v.cur]
			in := v.currentInstrOf(t)
			v.fault = &FailureReport{
				Kind: FaultHang, InstrID: in.ID, Pos: in.Pos, ThreadID: t.ID,
				Stack: v.stackTrace(t), Msg: "step limit exceeded",
			}
			continue
		}
		t := v.schedule()
		if t == nil {
			// All threads blocked: deadlock. Attribute it to a thread
			// blocked on a mutex (a participant of the lock cycle) rather
			// than to a joiner waiting on a victim.
			var bt *Thread
			for _, th := range v.Threads {
				if th.State != ThreadBlocked {
					continue
				}
				if th.Block.MutexAddr != 0 {
					bt = th
					break
				}
				if bt == nil {
					bt = th
				}
			}
			if bt == nil {
				// Main is not done but nothing is runnable or blocked;
				// treat as clean exit of a detached world.
				return &Outcome{Exit: 0, Steps: v.Clock, Prints: v.prints}
			}
			in := v.currentInstrOf(bt)
			var others []int
			for _, th := range v.Threads {
				if th != bt && th.State == ThreadBlocked && th.Block.MutexAddr != 0 {
					others = append(others, v.currentInstrOf(th).ID)
				}
			}
			v.fault = &FailureReport{
				Kind: FaultDeadlock, InstrID: in.ID, Pos: in.Pos, ThreadID: bt.ID,
				Stack: v.stackTrace(bt), Msg: "all threads blocked", OtherPCs: others,
			}
			continue
		}
		v.step(t)
	}
}

func (v *VM) currentInstrOf(t *Thread) *ir.Instr {
	if len(t.Frames) == 0 || t.PC.Blk == nil {
		return v.Prog.Instrs[0]
	}
	return t.PC.Instr()
}

// schedule picks the thread to run next, honoring the preemption quantum.
func (v *VM) schedule() *Thread {
	var runnable []*Thread
	for _, t := range v.Threads {
		if t.State == ThreadRunnable {
			runnable = append(runnable, t)
		}
	}
	if len(runnable) == 0 {
		return nil
	}
	cur := v.Threads[v.cur]
	if cur.State == ThreadRunnable && v.quantum > 0 {
		v.quantum--
		return cur
	}
	next := runnable[v.rng.Intn(len(runnable))]
	v.quantum = 1 + v.rng.Intn(2*v.cfg.PreemptMean)
	if next.ID != v.cur {
		if v.cfg.Hooks.OnSchedule != nil {
			v.cfg.Hooks.OnSchedule(v.cur, next.ID, v.Clock)
		}
		v.cur = next.ID
	}
	return next
}

// eval resolves an operand against t's top frame.
func (v *VM) eval(t *Thread, val ir.Value) int64 {
	switch val.Kind {
	case ir.ValConst:
		return val.Int
	case ir.ValReg:
		return t.top().Regs[val.Reg]
	case ir.ValFuncRef:
		return int64(v.Prog.FuncByName[val.Func].ID)
	default:
		return 0
	}
}

func (v *VM) setReg(t *Thread, reg int, val int64) {
	if reg >= 0 {
		t.top().Regs[reg] = val
	}
}

// step executes one instruction of t.
func (v *VM) step(t *Thread) {
	in := t.PC.Instr()
	if !t.retrying {
		if v.cfg.Hooks.OnStep != nil {
			v.cfg.Hooks.OnStep(t, in, v.Clock)
		}
		v.Clock++
	}
	t.retrying = false
	advance := true
	switch in.Op {
	case ir.OpMov:
		v.setReg(t, in.Dst, v.eval(t, in.A))
	case ir.OpLocalAddr:
		v.setReg(t, in.Dst, StackAddr(t.ID, t.top().Base, in.Slot))
	case ir.OpGlobalAddr:
		v.setReg(t, in.Dst, v.GlobalAddr(in.Global))
	case ir.OpStrAddr:
		v.setReg(t, in.Dst, v.strAddrs[in.Str])
	case ir.OpFieldAddr:
		v.setReg(t, in.Dst, v.eval(t, in.A)+in.Offset)
	case ir.OpIndexAddr:
		v.setReg(t, in.Dst, v.eval(t, in.A)+v.eval(t, in.B)*in.ElemSz)
	case ir.OpLoad:
		addr := v.eval(t, in.A)
		val, f := v.Mem.Load(addr, in.Size)
		if f != nil {
			v.failAt(t, in, f)
			return
		}
		v.setReg(t, in.Dst, val)
		if v.cfg.Hooks.OnLoad != nil {
			v.cfg.Hooks.OnLoad(t, in, addr, val, in.Size, v.Clock)
		}
	case ir.OpStore:
		addr := v.eval(t, in.A)
		val := v.eval(t, in.B)
		if f := v.Mem.Store(addr, in.Size, val); f != nil {
			v.failAt(t, in, f)
			return
		}
		if v.cfg.Hooks.OnStore != nil {
			v.cfg.Hooks.OnStore(t, in, addr, val, in.Size, v.Clock)
		}
	case ir.OpBin:
		res, f := v.binop(in.BinOp, v.eval(t, in.A), v.eval(t, in.B))
		if f != nil {
			v.failAt(t, in, f)
			return
		}
		v.setReg(t, in.Dst, res)
	case ir.OpNot:
		if v.eval(t, in.A) == 0 {
			v.setReg(t, in.Dst, 1)
		} else {
			v.setReg(t, in.Dst, 0)
		}
	case ir.OpNeg:
		v.setReg(t, in.Dst, -v.eval(t, in.A))
	case ir.OpBr:
		taken := v.eval(t, in.A) != 0
		if v.cfg.Hooks.OnBranch != nil {
			v.cfg.Hooks.OnBranch(t, in, taken, v.Clock)
		}
		target := in.Else
		if taken {
			target = in.Then
		}
		t.PC = PC{Fn: t.PC.Fn, Blk: target, Idx: 0}
		advance = false
	case ir.OpJmp:
		t.PC = PC{Fn: t.PC.Fn, Blk: in.Then, Idx: 0}
		advance = false
	case ir.OpRet:
		v.doRet(t, in)
		advance = false
	case ir.OpCall:
		callee := v.Prog.FuncByName[in.Callee]
		retPC := PC{Fn: t.PC.Fn, Blk: t.PC.Blk, Idx: t.PC.Idx + 1}
		args := make([]int64, len(in.Args))
		for i, a := range in.Args {
			args[i] = v.eval(t, a)
		}
		if f := v.pushFrame(t, callee, in, retPC, in.Dst); f != nil {
			v.failAt(t, in, f)
			return
		}
		for i := range args {
			addr := StackAddr(t.ID, t.top().Base, i)
			if f := v.Mem.Store(addr, 8, args[i]); f != nil {
				v.failAt(t, in, f)
				return
			}
		}
		if v.cfg.Hooks.OnIndirect != nil {
			v.cfg.Hooks.OnIndirect(t, in, callee.Entry().Instrs[0], v.Clock)
		}
		advance = false
	case ir.OpCallB:
		blocked := v.builtin(t, in)
		if v.fault != nil {
			return
		}
		if blocked {
			advance = false   // re-execute when scheduled again
			t.retrying = true // ...as the same logical step
			v.quantum = 0     // give up the processor
		}
	default:
		v.failAt(t, in, &Fault{Kind: FaultOutOfBounds, Msg: fmt.Sprintf("bad opcode %s", in.Op)})
		return
	}
	if advance {
		t.PC.Idx++
	}
}

func (v *VM) doRet(t *Thread, in *ir.Instr) {
	fr := t.top()
	ret := int64(0)
	if !in.A.IsNil() {
		ret = v.eval(t, in.A)
	}
	t.Frames = t.Frames[:len(t.Frames)-1]
	t.stackTop = fr.Base
	if len(t.Frames) == 0 {
		t.State = ThreadDone
		t.Result = ret
		v.wakeJoiners(t.ID)
		return
	}
	if v.cfg.Hooks.OnIndirect != nil && fr.RetPC.Blk != nil && fr.RetPC.Idx < len(fr.RetPC.Blk.Instrs) {
		v.cfg.Hooks.OnIndirect(t, in, fr.RetPC.Instr(), v.Clock)
	}
	t.PC = fr.RetPC
	v.setReg(t, fr.RetDst, ret)
}

func (v *VM) wakeJoiners(tid int) {
	for _, th := range v.Threads {
		if th.State == ThreadBlocked && th.Block.MutexAddr == 0 && th.Block.JoinTID == tid {
			th.State = ThreadRunnable
			th.Block = BlockReason{JoinTID: -1}
		}
	}
}

func (v *VM) binop(op token.Kind, a, b int64) (int64, *Fault) {
	switch op {
	case token.PLUS:
		return a + b, nil
	case token.MINUS:
		return a - b, nil
	case token.STAR:
		return a * b, nil
	case token.SLASH:
		if b == 0 {
			return 0, &Fault{Kind: FaultDivZero}
		}
		return a / b, nil
	case token.PERCENT:
		if b == 0 {
			return 0, &Fault{Kind: FaultDivZero}
		}
		return a % b, nil
	case token.EQ:
		return b2i(a == b), nil
	case token.NE:
		return b2i(a != b), nil
	case token.LT:
		return b2i(a < b), nil
	case token.LE:
		return b2i(a <= b), nil
	case token.GT:
		return b2i(a > b), nil
	case token.GE:
		return b2i(a >= b), nil
	default:
		return 0, &Fault{Kind: FaultOutOfBounds, Msg: fmt.Sprintf("bad binary op %s", op)}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// builtin executes a builtin call. It returns true if the thread blocked
// (the PC must not advance).
func (v *VM) builtin(t *Thread, in *ir.Instr) bool {
	args := make([]int64, len(in.Args))
	for i, a := range in.Args {
		args[i] = v.eval(t, a)
	}
	switch in.Builtin {
	case sema.BuiltinMalloc:
		addr, f := v.Mem.Malloc(args[0])
		if f != nil {
			v.failAt(t, in, f)
			return false
		}
		v.setReg(t, in.Dst, addr)
	case sema.BuiltinFree:
		if f := v.Mem.Free(args[0]); f != nil {
			v.failAt(t, in, f)
			return false
		}
	case sema.BuiltinSpawn:
		fn := v.Prog.FuncByName[in.Args[0].Func]
		child := v.spawnThread(fn, &args[1], t.ID)
		v.setReg(t, in.Dst, int64(child.ID))
		if v.cfg.Hooks.OnIndirect != nil {
			v.cfg.Hooks.OnIndirect(t, in, fn.Entry().Instrs[0], v.Clock)
		}
	case sema.BuiltinJoin:
		tid := int(args[0])
		if tid >= 0 && tid < len(v.Threads) && v.Threads[tid].State != ThreadDone {
			t.State = ThreadBlocked
			t.Block = BlockReason{JoinTID: tid}
			return true
		}
	case sema.BuiltinLock:
		addr := args[0]
		owner, f := v.Mem.Load(addr, 8)
		if f != nil {
			v.failAt(t, in, f)
			return false
		}
		if owner != 0 {
			t.State = ThreadBlocked
			t.Block = BlockReason{MutexAddr: addr, JoinTID: -1}
			return true
		}
		if f := v.Mem.Store(addr, 8, int64(t.ID)+1); f != nil {
			v.failAt(t, in, f)
			return false
		}
	case sema.BuiltinUnlock:
		addr := args[0]
		if _, f := v.Mem.Load(addr, 8); f != nil {
			v.failAt(t, in, f)
			return false
		}
		if f := v.Mem.Store(addr, 8, 0); f != nil {
			v.failAt(t, in, f)
			return false
		}
		// Wake threads waiting on this mutex; they retry their lock.
		for _, th := range v.Threads {
			if th.State == ThreadBlocked && th.Block.MutexAddr == addr {
				th.State = ThreadRunnable
				th.Block = BlockReason{JoinTID: -1}
			}
		}
	case sema.BuiltinAssert:
		if args[0] == 0 {
			v.failAt(t, in, &Fault{Kind: FaultAssert, Msg: "assert failed"})
			return false
		}
	case sema.BuiltinPrint:
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = fmt.Sprintf("%d", a)
		}
		v.prints = append(v.prints, strings.Join(parts, " "))
	case sema.BuiltinPrints:
		s, f := v.Mem.LoadCString(args[0])
		if f != nil {
			v.failAt(t, in, f)
			return false
		}
		v.prints = append(v.prints, s)
	case sema.BuiltinStrlen:
		s, f := v.Mem.LoadCString(args[0])
		if f != nil {
			v.failAt(t, in, f)
			return false
		}
		v.setReg(t, in.Dst, int64(len(s)))
	case sema.BuiltinInput:
		i := int(args[0])
		var val int64
		if i >= 0 && i < len(v.cfg.Workload.Ints) {
			val = v.cfg.Workload.Ints[i]
		}
		v.setReg(t, in.Dst, val)
	case sema.BuiltinInputStr:
		i := int(args[0])
		var addr int64
		if i >= 0 && i < len(v.workloadAddrs) {
			addr = v.workloadAddrs[i]
		}
		v.setReg(t, in.Dst, addr)
	case sema.BuiltinYield:
		v.quantum = 0
	default:
		v.failAt(t, in, &Fault{Kind: FaultOutOfBounds, Msg: fmt.Sprintf("bad builtin %s", in.Callee)})
		return false
	}
	return false
}
