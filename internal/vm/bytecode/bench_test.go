package bytecode_test

// BenchmarkVMInterp / BenchmarkVMBytecode measure raw single-thread
// execution of the same bug runs on both engines (no pipeline, no
// hooks): the per-run cost the fleet pays thousands of times per
// diagnosis. Run with -bench 'VM(Interp|Bytecode)' -benchmem; the
// gist-bench "vm" experiment packages the same comparison into
// BENCH_vm.json.

import (
	"testing"

	"repro/internal/bugs"
	"repro/internal/vm"
	"repro/internal/vm/bytecode"
)

var benchBugs = []string{"pbzip2", "curl", "apache-3"}

func BenchmarkVMInterp(b *testing.B) {
	for _, name := range benchBugs {
		bug := bugs.ByName(name)
		prog := bug.Program() // compile outside the timer
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				vm.Run(prog, bugVMConfig(bug, int64(i%8)))
			}
		})
	}
}

func BenchmarkVMBytecode(b *testing.B) {
	for _, name := range benchBugs {
		bug := bugs.ByName(name)
		prog := bytecode.Compile(bug.Program())
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				prog.Run(bugVMConfig(bug, int64(i%8)))
			}
		})
	}
}
