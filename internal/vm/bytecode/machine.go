package bytecode

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/ir"
	"repro/internal/vm"
)

// frame is one activation record. Registers live in the thread's flat
// regs array at [base, base+numRegs); locals live in the thread's stack
// memory at word [memBase, memBase+nLocals).
type frame struct {
	fn       int32
	base     int32
	memBase  int32
	retPC    int32
	retDst   int32
	callSite int32 // ir.Instr.ID of the call, -1 for the bottom frame
}

// thread is one VM thread. All slices are reused across runs: a reset
// truncates, it never reallocates.
type thread struct {
	// shell is the *vm.Thread handed to hooks. Hook consumers across the
	// pipeline (PT, watchpoints, replay recorder, sampling monitors) read
	// only its ID; the bytecode engine keeps its real state here and
	// mirrors just the ID.
	shell vm.Thread

	id         int
	state      vm.ThreadState
	blockMutex int64 // nonzero: waiting to lock this address
	blockJoin  int   // >= 0: waiting for this thread to finish
	pc         int32
	frames     []frame
	regs       []int64
	regsTop    int32
	stackTop   int32 // words in use on this thread's stack
	result     int64
	retrying   bool
}

// Machine executes one run at a time of a compiled program. It is NOT
// safe for concurrent use; Program.Run hands each caller a pooled
// Machine. All per-run state is reset, not reallocated, so a warm
// Machine's hot loop allocates only what the program itself demands
// (heap growth, print strings).
type Machine struct {
	prog *Program
	mem  *vm.Memory
	cfg  vm.Config

	// src is the scheduler's randomness, driven directly as a Source64
	// rather than through a rand.Rand: intn replicates Rand.Intn's exact
	// draw-and-retry algorithm bit for bit (the RNG consumption order is
	// part of the determinism contract with the interpreter) while
	// skipping the wrapper calls, and preemptMax precomputes the
	// rejection bound Int31n would otherwise derive with a division on
	// every quantum expiry.
	src          rand.Source64
	preemptN     int32
	preemptMax   int32
	preemptMagic uint64 // ⌊2^preemptShift / preemptN⌋ + 1
	preemptShift uint

	threads    []*thread
	threadPool []*thread
	cur        int
	quantum    int
	clock      int64

	prints        []string
	workloadAddrs []int64
	args          []int64 // call-argument scratch (consumed before any reentry)
	fault         *vm.FailureReport
}

// NewMachine returns a cold machine for p.
func NewMachine(p *Program) *Machine {
	return &Machine{prog: p, mem: vm.NewMemory(p.nGlobals)}
}

// Reset prepares the machine for a fresh run under cfg, producing a
// state indistinguishable from a newly built interpreter VM: zeroed
// globals with initializers reapplied, the program string blob, workload
// strings appended in order, the seeded RNG, and thread 0 entering main.
func (m *Machine) Reset(cfg vm.Config) {
	m.cfg = cfg.Normalized()
	if m.src == nil {
		// rand.NewSource's concrete type implements Source64; rand.New
		// would use the same fast path internally.
		m.src = rand.NewSource(cfg.Seed).(rand.Source64)
	} else {
		m.src.Seed(cfg.Seed)
	}
	m.setPreempt(m.cfg.PreemptMean)
	m.mem.Reset(m.prog.nGlobals)
	m.mem.SetStringBlob(m.prog.strBlob)
	m.workloadAddrs = m.workloadAddrs[:0]
	for _, s := range cfg.Workload.Strs {
		m.workloadAddrs = append(m.workloadAddrs, m.mem.AddString(s))
	}
	for _, gi := range m.prog.inits {
		if f := m.mem.StoreWord(gi.addr, gi.val); f != nil {
			panic(fmt.Sprintf("global init: %v", f))
		}
	}
	m.threadPool = append(m.threadPool, m.threads...)
	m.threads = m.threads[:0]
	m.cur = 0
	m.quantum = 0
	m.clock = 0
	m.prints = m.prints[:0]
	m.fault = nil
	m.spawnThread(m.prog.mainIdx, nil, -1)
}

// Run resets the machine and executes to completion.
func (m *Machine) Run(cfg vm.Config) *vm.Outcome {
	m.Reset(cfg)
	return m.run()
}

func (m *Machine) getThread() *thread {
	if n := len(m.threadPool); n > 0 {
		t := m.threadPool[n-1]
		m.threadPool = m.threadPool[:n-1]
		return t
	}
	return &thread{}
}

// spawnThread creates a thread running funcs[fnIdx]; arg, if non-nil, is
// stored into parameter slot 0. Hook order matches the interpreter:
// OnSpawn fires here, the caller's setReg/OnIndirect follow.
func (m *Machine) spawnThread(fnIdx int32, arg *int64, parent int) *thread {
	t := m.getThread()
	tid := len(m.threads)
	t.id = tid
	t.shell = vm.Thread{ID: tid}
	t.state = vm.ThreadRunnable
	t.blockMutex = 0
	t.blockJoin = 0
	t.pc = 0
	t.frames = t.frames[:0]
	t.regs = t.regs[:0]
	t.regsTop = 0
	t.stackTop = 0
	t.result = 0
	t.retrying = false
	m.mem.EnsureStack(tid)
	m.threads = append(m.threads, t)
	m.pushFrame(t, fnIdx, -1, 0, -1)
	fi := &m.prog.funcs[fnIdx]
	if arg != nil && fi.params > 0 {
		addr := vm.StackAddr(tid, 0, 0)
		if f := m.mem.StoreWord(addr, *arg); f != nil {
			panic(fmt.Sprintf("spawn arg store: %v", f))
		}
	}
	if m.cfg.Hooks.OnSpawn != nil && parent >= 0 {
		m.cfg.Hooks.OnSpawn(parent, tid, fi.ir, m.clock)
	}
	return t
}

// pushFrame enters funcs[fnIdx] on t. The overflow pre-check mirrors the
// interpreter's and guarantees the local-zeroing cannot fault.
func (m *Machine) pushFrame(t *thread, fnIdx, callSite, retPC, retDst int32) *vm.Fault {
	fi := &m.prog.funcs[fnIdx]
	if (int(t.stackTop)+int(fi.nLocals)+8)*8 >= vm.StackStride {
		return &vm.Fault{Kind: vm.FaultStackOverflow}
	}
	base := t.regsTop
	need := int(base) + int(fi.numRegs)
	if need <= cap(t.regs) {
		t.regs = t.regs[:need]
		clear(t.regs[base:])
	} else {
		grown := make([]int64, need, need*2+16)
		copy(grown, t.regs[:base])
		t.regs = grown
	}
	t.regsTop = int32(need)
	if fi.nLocals > 0 {
		m.mem.ZeroStackWords(t.id, int(t.stackTop), int(fi.nLocals))
	}
	t.frames = append(t.frames, frame{
		fn: fnIdx, base: base, memBase: t.stackTop,
		retPC: retPC, retDst: retDst, callSite: callSite,
	})
	t.stackTop += fi.nLocals
	t.pc = fi.entry
	return nil
}

// val resolves an operand reference against a frame-register window.
func (m *Machine) val(t *thread, base, ref int32) int64 {
	if ref >= 0 {
		return t.regs[base+ref]
	}
	return m.prog.consts[^ref]
}

func (m *Machine) stackTrace(t *thread) []vm.StackEntry {
	out := make([]vm.StackEntry, 0, len(t.frames))
	for i := len(t.frames) - 1; i >= 0; i-- {
		fr := &t.frames[i]
		out = append(out, vm.StackEntry{
			Fn: m.prog.funcs[fr.fn].name, CallSiteID: int(fr.callSite),
		})
	}
	return out
}

func (m *Machine) failAt(t *thread, pc int32, f *vm.Fault) {
	in := m.prog.ir.Instrs[pc]
	m.fault = &vm.FailureReport{
		Kind:     f.Kind,
		InstrID:  in.ID,
		Pos:      in.Pos,
		ThreadID: t.id,
		Stack:    m.stackTrace(t),
		Msg:      f.Msg,
	}
}

// currentPCOf mirrors VM.currentInstrOf: a thread with no frames is
// attributed to instruction 0.
func (m *Machine) currentPCOf(t *thread) int32 {
	if len(t.frames) == 0 {
		return 0
	}
	return t.pc
}

func (m *Machine) outcome() *vm.Outcome {
	var prints []string
	if len(m.prints) > 0 {
		prints = make([]string, len(m.prints))
		copy(prints, m.prints)
	}
	if m.fault != nil {
		return &vm.Outcome{Failed: true, Report: m.fault, Steps: m.clock, Prints: prints}
	}
	return &vm.Outcome{Exit: m.threads[0].result, Steps: m.clock, Prints: prints}
}

// run executes until main returns, a fault occurs, deadlock, or the
// step limit is reached — the same decision order as VM.Run.
func (m *Machine) run() *vm.Outcome {
	for {
		if m.fault != nil {
			return m.outcome()
		}
		if m.threads[0].state == vm.ThreadDone {
			return m.outcome()
		}
		if m.clock >= m.cfg.MaxSteps {
			t := m.threads[m.cur]
			pc := m.currentPCOf(t)
			in := m.prog.ir.Instrs[pc]
			m.fault = &vm.FailureReport{
				Kind: vm.FaultHang, InstrID: in.ID, Pos: in.Pos, ThreadID: t.id,
				Stack: m.stackTrace(t), Msg: "step limit exceeded",
			}
			continue
		}
		// Quantum fast path: if the current thread is runnable with
		// quantum left, the interpreter's schedule() returns it without
		// consuming RNG, and the runnable count it builds first cannot
		// change that outcome — so skip counting entirely and burn the
		// whole quantum inside runThread's inner loop.
		if cur := m.threads[m.cur]; cur.state == vm.ThreadRunnable && m.quantum > 0 {
			m.quantum--
			m.runThread(cur)
			continue
		}
		t := m.schedule()
		if t == nil {
			// All threads blocked: deadlock. Attribute it to a thread
			// blocked on a mutex rather than a joiner, as the
			// interpreter does.
			var bt *thread
			for _, th := range m.threads {
				if th.state != vm.ThreadBlocked {
					continue
				}
				if th.blockMutex != 0 {
					bt = th
					break
				}
				if bt == nil {
					bt = th
				}
			}
			if bt == nil {
				return m.outcome()
			}
			in := m.prog.ir.Instrs[m.currentPCOf(bt)]
			var others []int
			for _, th := range m.threads {
				if th != bt && th.state == vm.ThreadBlocked && th.blockMutex != 0 {
					others = append(others, m.prog.ir.Instrs[m.currentPCOf(th)].ID)
				}
			}
			m.fault = &vm.FailureReport{
				Kind: vm.FaultDeadlock, InstrID: in.ID, Pos: in.Pos, ThreadID: bt.id,
				Stack: m.stackTrace(bt), Msg: "all threads blocked", OtherPCs: others,
			}
			continue
		}
		m.runThread(t)
	}
}

// setPreempt precomputes the constants preemptDraw needs for
// Intn(2*mean): the rejection bound, and a Granlund–Montgomery
// reciprocal for the modulo — with l = ⌈log2 n⌉ and
// magic = ⌊2^(31+l)/n⌋+1, ⌊v/n⌋ == (v*magic)>>(31+l) exactly for all
// 0 <= v < 2^31, and the product stays below 2^63. Turns both
// per-quantum-expiry hardware divisions into multiplies.
func (m *Machine) setPreempt(mean int) {
	m.preemptN = int32(2 * mean)
	m.preemptMax = int32((1 << 31) - 1 - (1<<31)%uint32(m.preemptN))
	m.preemptShift = 31 + uint(bits.Len32(uint32(m.preemptN-1)))
	m.preemptMagic = (uint64(1)<<m.preemptShift)/uint64(m.preemptN) + 1
}

// int31 mirrors rand.(*Rand).Int31 on the machine's source.
func (m *Machine) int31() int32 { return int32(m.src.Int63() >> 32) }

// preemptDraw replicates rand.(*Rand).Intn(2*PreemptMean) exactly —
// same draws from the source in the same order, same result — using the
// rejection bound and reciprocal precomputed by Reset instead of two
// divisions per call.
func (m *Machine) preemptDraw() int {
	n := m.preemptN
	if n&(n-1) == 0 {
		return int(m.int31() & (n - 1))
	}
	v := m.int31()
	for v > m.preemptMax {
		v = m.int31()
	}
	return int(v - int32((uint64(v)*m.preemptMagic)>>m.preemptShift)*n)
}

// intnDyn replicates rand.(*Rand).Intn for an n only known at call time
// (the runnable count).
func (m *Machine) intnDyn(n int32) int {
	if n&(n-1) == 0 {
		return int(m.int31() & (n - 1))
	}
	max := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	v := m.int31()
	for v > max {
		v = m.int31()
	}
	return int(v % n)
}

// schedule picks the next thread after the run loop's quantum fast
// path declined. It consumes the RNG in exactly the interpreter's order
// — one Intn(runnable) + one Intn(2*PreemptMean) per quantum expiry —
// but counts runnables and picks the k-th in thread order instead of
// materializing a slice, which removes the single largest allocation of
// the interpreter's hot loop.
func (m *Machine) schedule() *thread {
	n := 0
	for _, th := range m.threads {
		if th.state == vm.ThreadRunnable {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	k := m.intnDyn(int32(n))
	var next *thread
	for _, th := range m.threads {
		if th.state != vm.ThreadRunnable {
			continue
		}
		if k == 0 {
			next = th
			break
		}
		k--
	}
	m.quantum = 1 + m.preemptDraw()
	if next.id != m.cur {
		if m.cfg.Hooks.OnSchedule != nil {
			m.cfg.Hooks.OnSchedule(m.cur, next.id, m.clock)
		}
		m.cur = next.id
	}
	return next
}

func (m *Machine) wakeJoiners(tid int) {
	for _, th := range m.threads {
		if th.state == vm.ThreadBlocked && th.blockMutex == 0 && th.blockJoin == tid {
			th.state = vm.ThreadRunnable
			th.blockMutex = 0
			th.blockJoin = -1
		}
	}
}

func (m *Machine) doRet(t *thread, pc int32, in *instr) {
	fr := t.frames[len(t.frames)-1]
	ret := int64(0)
	if in.sz == 1 {
		ret = m.val(t, fr.base, in.a)
	}
	t.frames = t.frames[:len(t.frames)-1]
	t.stackTop = fr.memBase
	t.regsTop = fr.base
	t.regs = t.regs[:fr.base]
	if len(t.frames) == 0 {
		t.state = vm.ThreadDone
		t.result = ret
		m.wakeJoiners(t.id)
		return
	}
	// Non-bottom frames always have a valid return site: calls are never
	// block terminators, so the instruction after the call exists.
	if m.cfg.Hooks.OnIndirect != nil {
		m.cfg.Hooks.OnIndirect(&t.shell, m.prog.ir.Instrs[pc], m.prog.ir.Instrs[fr.retPC], m.clock)
	}
	t.pc = fr.retPC
	if fr.retDst >= 0 {
		parent := &t.frames[len(t.frames)-1]
		t.regs[parent.base+fr.retDst] = ret
	}
}

// opVal resolves an operand reference: a register in the current frame
// window for refs >= 0, a constant-pool entry for negative refs.
func opVal(regs, consts []int64, base, ref int32) int64 {
	if ref >= 0 {
		return regs[base+ref]
	}
	return consts[^ref]
}

// runThread executes instructions of t until its quantum is spent, it
// blocks or finishes, it faults, or the step limit is reached. Clock and
// hook semantics mirror VM.step exactly: OnStep fires (and the clock
// advances) only for the first attempt of a blocking builtin, and hooks
// during execution see the post-increment clock.
//
// The hot machine state — pc, clock, quantum, and the current frame's
// register window — lives in locals for the whole quantum and is flushed
// at every exit (the done label below), so the per-instruction cost is
// the dispatch itself rather than Machine/thread field traffic. Helper
// calls that read that state through the Machine (doRet and spawnThread
// consult m.clock for their hooks) get an explicit flush first. The
// caller has already accounted for the first step's quantum (either
// schedule() granting a fresh one, or the run loop's fast-path
// decrement); each further iteration re-checks the local quantum because
// opYield zeroes it mid-quantum while the thread stays runnable.
func (m *Machine) runThread(t *thread) {
	code := m.prog.code
	consts := m.prog.consts
	irInstrs := m.prog.ir.Instrs
	mem := m.mem
	onStep := m.cfg.Hooks.OnStep
	maxSteps := m.cfg.MaxSteps
	pc := t.pc
	clk := m.clock
	q := m.quantum
	retrying := t.retrying
	t.retrying = false
	regs := t.regs
	top := &t.frames[len(t.frames)-1]
	base, memBase := top.base, top.memBase
	for {
		in := &code[pc]
		if !retrying {
			if onStep != nil {
				onStep(&t.shell, irInstrs[pc], clk)
			}
			clk++
		} else {
			retrying = false
		}
		advance := true
		switch in.op {
		case opMov:
			if in.dst >= 0 {
				regs[base+in.dst] = opVal(regs, consts, base, in.a)
			}
		case opLocalAddr:
			if in.dst >= 0 {
				regs[base+in.dst] = vm.StackAddr(t.id, int(memBase), int(in.imm))
			}
		case opFieldAddr:
			if in.dst >= 0 {
				regs[base+in.dst] = opVal(regs, consts, base, in.a) + in.imm
			}
		case opIndexAddr:
			if in.dst >= 0 {
				regs[base+in.dst] = opVal(regs, consts, base, in.a) + opVal(regs, consts, base, in.b)*in.imm
			}
		case opLoad:
			addr := opVal(regs, consts, base, in.a)
			var val int64
			var f *vm.Fault
			if in.sz == 8 {
				val, f = mem.LoadWord(addr)
			} else {
				val, f = mem.LoadByte(addr)
			}
			if f != nil {
				m.failAt(t, pc, f)
				goto done
			}
			if in.dst >= 0 {
				regs[base+in.dst] = val
			}
			if m.cfg.Hooks.OnLoad != nil {
				m.cfg.Hooks.OnLoad(&t.shell, irInstrs[pc], addr, val, int64(in.sz), clk)
			}
		case opStore:
			addr := opVal(regs, consts, base, in.a)
			val := opVal(regs, consts, base, in.b)
			var f *vm.Fault
			if in.sz == 8 {
				f = mem.StoreWord(addr, val)
			} else {
				f = mem.StoreByte(addr, val)
			}
			if f != nil {
				m.failAt(t, pc, f)
				goto done
			}
			if m.cfg.Hooks.OnStore != nil {
				m.cfg.Hooks.OnStore(&t.shell, irInstrs[pc], addr, val, int64(in.sz), clk)
			}
		case opAdd:
			if in.dst >= 0 {
				regs[base+in.dst] = opVal(regs, consts, base, in.a) + opVal(regs, consts, base, in.b)
			}
		case opSub:
			if in.dst >= 0 {
				regs[base+in.dst] = opVal(regs, consts, base, in.a) - opVal(regs, consts, base, in.b)
			}
		case opMul:
			if in.dst >= 0 {
				regs[base+in.dst] = opVal(regs, consts, base, in.a) * opVal(regs, consts, base, in.b)
			}
		case opDiv:
			b := opVal(regs, consts, base, in.b)
			if b == 0 {
				m.failAt(t, pc, &vm.Fault{Kind: vm.FaultDivZero})
				goto done
			}
			if in.dst >= 0 {
				regs[base+in.dst] = opVal(regs, consts, base, in.a) / b
			}
		case opMod:
			b := opVal(regs, consts, base, in.b)
			if b == 0 {
				m.failAt(t, pc, &vm.Fault{Kind: vm.FaultDivZero})
				goto done
			}
			if in.dst >= 0 {
				regs[base+in.dst] = opVal(regs, consts, base, in.a) % b
			}
		case opEq:
			if in.dst >= 0 {
				regs[base+in.dst] = b2i(opVal(regs, consts, base, in.a) == opVal(regs, consts, base, in.b))
			}
		case opNe:
			if in.dst >= 0 {
				regs[base+in.dst] = b2i(opVal(regs, consts, base, in.a) != opVal(regs, consts, base, in.b))
			}
		case opLt:
			if in.dst >= 0 {
				regs[base+in.dst] = b2i(opVal(regs, consts, base, in.a) < opVal(regs, consts, base, in.b))
			}
		case opLe:
			if in.dst >= 0 {
				regs[base+in.dst] = b2i(opVal(regs, consts, base, in.a) <= opVal(regs, consts, base, in.b))
			}
		case opGt:
			if in.dst >= 0 {
				regs[base+in.dst] = b2i(opVal(regs, consts, base, in.a) > opVal(regs, consts, base, in.b))
			}
		case opGe:
			if in.dst >= 0 {
				regs[base+in.dst] = b2i(opVal(regs, consts, base, in.a) >= opVal(regs, consts, base, in.b))
			}
		case opNot:
			if in.dst >= 0 {
				regs[base+in.dst] = b2i(opVal(regs, consts, base, in.a) == 0)
			}
		case opNeg:
			if in.dst >= 0 {
				regs[base+in.dst] = -opVal(regs, consts, base, in.a)
			}
		case opBr:
			taken := opVal(regs, consts, base, in.a) != 0
			if m.cfg.Hooks.OnBranch != nil {
				m.cfg.Hooks.OnBranch(&t.shell, irInstrs[pc], taken, clk)
			}
			if taken {
				pc = in.p
			} else {
				pc = in.q
			}
			advance = false
		case opJmp:
			pc = in.p
			advance = false
		case opRet:
			m.clock = clk // doRet's OnIndirect hook reads m.clock
			m.doRet(t, pc, in)
			if len(t.frames) == 0 {
				goto done // thread finished; currentPCOf ignores pc
			}
			pc = t.pc
			regs = t.regs
			top = &t.frames[len(t.frames)-1]
			base, memBase = top.base, top.memBase
			advance = false
		case opCall:
			argN := int(in.imm)
			args := m.args[:0]
			for k := 0; k < argN; k++ {
				args = append(args, opVal(regs, consts, base, m.prog.argRefs[int(in.q)+k]))
			}
			m.args = args
			if f := m.pushFrame(t, in.p, pc, pc+1, in.dst); f != nil {
				m.failAt(t, pc, f)
				goto done
			}
			newBase := t.frames[len(t.frames)-1].memBase
			for k := 0; k < argN; k++ {
				addr := vm.StackAddr(t.id, int(newBase), k)
				if f := mem.StoreWord(addr, args[k]); f != nil {
					m.failAt(t, pc, f)
					goto done
				}
			}
			if m.cfg.Hooks.OnIndirect != nil {
				entry := m.prog.funcs[in.p].entry
				m.cfg.Hooks.OnIndirect(&t.shell, irInstrs[pc], irInstrs[entry], clk)
			}
			pc = t.pc
			regs = t.regs
			top = &t.frames[len(t.frames)-1]
			base, memBase = top.base, top.memBase
			advance = false
		case opMalloc:
			addr, f := mem.Malloc(opVal(regs, consts, base, in.a))
			if f != nil {
				m.failAt(t, pc, f)
				goto done
			}
			if in.dst >= 0 {
				regs[base+in.dst] = addr
			}
		case opFree:
			if f := mem.Free(opVal(regs, consts, base, in.a)); f != nil {
				m.failAt(t, pc, f)
				goto done
			}
		case opSpawn:
			arg := opVal(regs, consts, base, in.a)
			m.clock = clk // spawnThread's OnSpawn hook reads m.clock
			child := m.spawnThread(in.p, &arg, t.id)
			if in.dst >= 0 {
				regs[base+in.dst] = int64(child.id)
			}
			if m.cfg.Hooks.OnIndirect != nil {
				entry := m.prog.funcs[in.p].entry
				m.cfg.Hooks.OnIndirect(&t.shell, irInstrs[pc], irInstrs[entry], clk)
			}
		case opJoin:
			tid := int(opVal(regs, consts, base, in.a))
			if tid >= 0 && tid < len(m.threads) && m.threads[tid].state != vm.ThreadDone {
				t.state = vm.ThreadBlocked
				t.blockMutex = 0
				t.blockJoin = tid
				goto blocked
			}
		case opLock:
			addr := opVal(regs, consts, base, in.a)
			owner, f := mem.LoadWord(addr)
			if f != nil {
				m.failAt(t, pc, f)
				goto done
			}
			if owner != 0 {
				t.state = vm.ThreadBlocked
				t.blockMutex = addr
				t.blockJoin = -1
				goto blocked
			}
			if f := mem.StoreWord(addr, int64(t.id)+1); f != nil {
				m.failAt(t, pc, f)
				goto done
			}
		case opUnlock:
			addr := opVal(regs, consts, base, in.a)
			if _, f := mem.LoadWord(addr); f != nil {
				m.failAt(t, pc, f)
				goto done
			}
			if f := mem.StoreWord(addr, 0); f != nil {
				m.failAt(t, pc, f)
				goto done
			}
			for _, th := range m.threads {
				if th.state == vm.ThreadBlocked && th.blockMutex == addr {
					th.state = vm.ThreadRunnable
					th.blockMutex = 0
					th.blockJoin = -1
				}
			}
		case opAssert:
			if opVal(regs, consts, base, in.a) == 0 {
				m.failAt(t, pc, &vm.Fault{Kind: vm.FaultAssert, Msg: "assert failed"})
				goto done
			}
		case opPrint:
			argN := int(in.q)
			parts := make([]string, argN)
			for k := 0; k < argN; k++ {
				parts[k] = strconv.FormatInt(opVal(regs, consts, base, m.prog.argRefs[int(in.p)+k]), 10)
			}
			m.prints = append(m.prints, strings.Join(parts, " "))
		case opPrints:
			s, f := mem.LoadCStringFast(opVal(regs, consts, base, in.a))
			if f != nil {
				m.failAt(t, pc, f)
				goto done
			}
			m.prints = append(m.prints, s)
		case opStrlen:
			s, f := mem.LoadCStringFast(opVal(regs, consts, base, in.a))
			if f != nil {
				m.failAt(t, pc, f)
				goto done
			}
			if in.dst >= 0 {
				regs[base+in.dst] = int64(len(s))
			}
		case opInput:
			i := int(opVal(regs, consts, base, in.a))
			var val int64
			if i >= 0 && i < len(m.cfg.Workload.Ints) {
				val = m.cfg.Workload.Ints[i]
			}
			if in.dst >= 0 {
				regs[base+in.dst] = val
			}
		case opInputStr:
			i := int(opVal(regs, consts, base, in.a))
			var addr int64
			if i >= 0 && i < len(m.workloadAddrs) {
				addr = m.workloadAddrs[i]
			}
			if in.dst >= 0 {
				regs[base+in.dst] = addr
			}
		case opYield:
			q = 0
		case opFail:
			m.failAt(t, pc, &vm.Fault{Kind: vm.FaultOutOfBounds, Msg: m.prog.failMsgs[in.p]})
			goto done
		}
		if advance {
			pc++
		}
		if clk >= maxSteps {
			goto done
		}
		if q > 0 {
			q--
			continue
		}
		// Quantum expired with t still runnable: reschedule inline
		// instead of bouncing through the run loop. The interpreter's
		// pre-schedule checks are all vacuously satisfied here (the step
		// above completed without fault or block, so no failure is
		// pending, main cannot have finished unless t was main — which
		// would have exited above — and the clock was just checked), and
		// schedule cannot return nil because t itself is runnable. The
		// first step of the fresh quantum runs without a decrement, as in
		// the run loop's fast path.
		m.clock = clk
		t.pc = pc
		if len(m.threads) == 1 {
			// Single-threaded program: schedule() would count one
			// runnable, burn one Int31 on Intn(1) (always 0), pick t
			// again without an OnSchedule event, and grant a fresh
			// quantum — do just the draws.
			m.int31()
			q = 1 + m.preemptDraw()
			continue
		}
		if next := m.schedule(); next != t {
			t = next
			pc = t.pc
			regs = t.regs
			top = &t.frames[len(t.frames)-1]
			base, memBase = top.base, top.memBase
			retrying = t.retrying
			t.retrying = false
		}
		q = m.quantum
	}
blocked:
	t.retrying = true // re-execute as the same logical step
	q = 0             // give up the processor
done:
	t.pc = pc
	m.clock = clk
	m.quantum = q
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Run executes one run on a pooled machine and reports whether the
// machine state was reused from a previous run (the vm.state_reuse
// telemetry signal).
func (p *Program) Run(cfg vm.Config) (*vm.Outcome, bool) {
	reused := true
	m, ok := p.pool.Get().(*Machine)
	if !ok {
		m = NewMachine(p)
		reused = false
	}
	out := m.Run(cfg)
	p.pool.Put(m)
	return out, reused
}

// RunProgram compiles prog and executes one run — the convenience path
// for tests and tools. Production paths compile once via
// analysis.Bytecode and call Program.Run.
func RunProgram(prog *ir.Program, cfg vm.Config) *vm.Outcome {
	out, _ := Compile(prog).Run(cfg)
	return out
}
