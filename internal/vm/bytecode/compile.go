// Package bytecode compiles finalized IR programs to a flat, fixed-width
// bytecode and executes it on a reusable register machine.
//
// The tree-walking interpreter in internal/vm remains the reference
// implementation: it is small, obviously correct, and every one of its
// observable behaviors — the RNG consumption order of the scheduler, the
// clock at which each hook fires, the bytes of every failure report — is
// a contract the rest of the pipeline (PT decoding, watchpoint
// collection, deterministic admission, checkpoint resume) depends on.
// This engine exists purely to make those same runs cheap: differential
// tests assert byte-identical outcomes on the full bug suite, and the
// fleet runs the bytecode path by default.
//
// What the compiler removes from the hot loop:
//
//   - *ir.Instr pointer chasing: code is one flat []instr array indexed
//     by program counter, and the pc of an instruction IS its ir.Instr.ID
//     (Finalize assigns IDs in (function, block, index) order, and every
//     IR instruction lowers to exactly one bytecode instruction), so
//     jump targets, call entries and fall-throughs are plain int32
//     indices and failure reports need no reverse mapping.
//   - map lookups: callees and spawn targets are resolved to function
//     indices at compile time; FuncByName is never consulted at runtime.
//   - operand dispatch: an operand reference is an int32 that is either
//     a frame-register index (>= 0) or a constant-pool index (< 0,
//     decoded as consts[^ref]). ValConst, ValFuncRef, OpGlobalAddr and
//     OpStrAddr all collapse to constants because global and string-pool
//     addresses are compile-time constants of the address-space layout.
//   - generic switches: each binary operator and each builtin gets its
//     own opcode.
//
// Programs that the interpreter would fault at runtime with "bad
// opcode" / "bad binary op" / "bad builtin" compile to an opFail
// instruction carrying the identical message, so even the degenerate
// paths stay byte-identical.
package bytecode

import (
	"fmt"
	"sync"

	"repro/internal/ir"
	"repro/internal/lang/sema"
	"repro/internal/lang/token"
	"repro/internal/vm"
)

// opcode discriminates bytecode instructions.
type opcode uint8

const (
	opMov opcode = iota
	opLocalAddr
	opFieldAddr
	opIndexAddr
	opLoad
	opStore
	opAdd
	opSub
	opMul
	opDiv
	opMod
	opEq
	opNe
	opLt
	opLe
	opGt
	opGe
	opNot
	opNeg
	opBr
	opJmp
	opRet
	opCall
	opMalloc
	opFree
	opSpawn
	opJoin
	opLock
	opUnlock
	opAssert
	opPrint
	opPrints
	opStrlen
	opInput
	opInputStr
	opYield
	opFail // compile-time-known runtime fault (bad opcode/binop/builtin)
)

// instr is one fixed-width bytecode instruction. Field meaning varies by
// opcode:
//
//	dst    destination register, -1 if none (as in ir.Instr)
//	a, b   operand refs: >= 0 frame register, < 0 constant consts[^ref]
//	p, q   opBr: then/else code index; opJmp: target; opCall: callee
//	       func index / argRefs offset; opSpawn: callee func index;
//	       opPrint: argRefs offset / arg count; opFail: failMsgs index
//	sz     opLoad/opStore: access size (1 or 8); opRet: 1 = has value
//	imm    opLocalAddr: slot; opFieldAddr: offset; opIndexAddr: elem
//	       size; opCall: arg count
type instr struct {
	op  opcode
	sz  uint8
	dst int32
	a   int32
	b   int32
	p   int32
	q   int32
	imm int64
}

// funcInfo is the compiled view of one ir.Func.
type funcInfo struct {
	entry   int32 // code index of the first instruction
	numRegs int32
	nLocals int32
	params  int32
	name    string
	ir      *ir.Func // for OnSpawn hooks
}

// globalInit is one non-zero global initializer (index pre-multiplied
// into an absolute address, string initializers pre-resolved).
type globalInit struct {
	addr int64
	val  int64
}

// Program is a compiled program. It is immutable after Compile and safe
// for concurrent Run calls; per-run state lives in pooled Machines.
type Program struct {
	ir       *ir.Program
	code     []instr
	consts   []int64
	argRefs  []int32 // shared operand pool for opCall/opPrint argument lists
	funcs    []funcInfo
	mainIdx  int32
	strBlob  []byte  // concatenated NUL-terminated program strings
	strAddrs []int64 // string pool index -> address (layout constants)
	inits    []globalInit
	failMsgs []string
	nGlobals int

	pool sync.Pool // *Machine
}

// IR returns the source program.
func (p *Program) IR() *ir.Program { return p.ir }

// NumInstrs returns the flat code length (== len(ir.Program.Instrs)).
func (p *Program) NumInstrs() int { return len(p.code) }

type compiler struct {
	src      *ir.Program
	out      *Program
	constIdx map[int64]int32
	fnIdx    map[string]int32
}

// constRef interns v in the constant pool and returns its operand ref.
func (c *compiler) constRef(v int64) int32 {
	if ref, ok := c.constIdx[v]; ok {
		return ref
	}
	idx := int32(len(c.out.consts))
	c.out.consts = append(c.out.consts, v)
	ref := ^idx // -(idx+1)
	c.constIdx[v] = ref
	return ref
}

// ref lowers an operand to a register or constant reference. ValNil
// lowers to constant 0, matching the interpreter's eval default.
func (c *compiler) ref(v ir.Value) int32 {
	switch v.Kind {
	case ir.ValReg:
		return int32(v.Reg)
	case ir.ValConst:
		return c.constRef(v.Int)
	case ir.ValFuncRef:
		return c.constRef(int64(c.src.FuncByName[v.Func].ID))
	default:
		return c.constRef(0)
	}
}

// failInstr emits the fault the interpreter would raise at runtime for
// a malformed instruction, preserving the exact message bytes.
func (c *compiler) failInstr(msg string) instr {
	idx := int32(len(c.out.failMsgs))
	c.out.failMsgs = append(c.out.failMsgs, msg)
	return instr{op: opFail, p: idx}
}

// entryOf returns the code index of a block's first instruction.
func entryOf(b *ir.Block) int32 {
	if len(b.Instrs) == 0 {
		panic(fmt.Sprintf("bytecode: branch to empty block bb%d in %s", b.ID, b.Fn.Name))
	}
	return int32(b.Instrs[0].ID)
}

var binOps = map[token.Kind]opcode{
	token.PLUS:    opAdd,
	token.MINUS:   opSub,
	token.STAR:    opMul,
	token.SLASH:   opDiv,
	token.PERCENT: opMod,
	token.EQ:      opEq,
	token.NE:      opNe,
	token.LT:      opLt,
	token.LE:      opLe,
	token.GT:      opGt,
	token.GE:      opGe,
}

// Compile lowers a finalized program. It panics on structurally invalid
// input (unfinalized program, block without terminator, missing main) —
// the same classes of program the interpreter cannot run either.
func Compile(p *ir.Program) *Program {
	if p.FuncByName["main"] == nil {
		panic("bytecode: program has no main")
	}
	c := &compiler{
		src:      p,
		out:      &Program{ir: p, nGlobals: len(p.Globals)},
		constIdx: make(map[int64]int32),
		fnIdx:    make(map[string]int32, len(p.Funcs)),
	}
	out := c.out
	out.code = make([]instr, 0, len(p.Instrs))

	// String-pool layout is deterministic (AddString order == Strings
	// order), so every program string's address is a compile-time
	// constant and the whole pool resets with a single blob copy.
	for _, s := range p.Strings {
		out.strAddrs = append(out.strAddrs, vm.StringsBase+int64(len(out.strBlob)))
		out.strBlob = append(out.strBlob, s...)
		out.strBlob = append(out.strBlob, 0)
	}

	for _, g := range p.Globals {
		val := g.Init
		if g.InitStr >= 0 {
			val = out.strAddrs[g.InitStr]
		}
		if val != 0 {
			out.inits = append(out.inits, globalInit{
				addr: vm.GlobalsBase + int64(g.Index)*8, val: val,
			})
		}
	}

	for i, f := range p.Funcs {
		if len(f.Blocks) == 0 || len(f.Entry().Instrs) == 0 {
			panic(fmt.Sprintf("bytecode: function %s has no entry code", f.Name))
		}
		out.funcs = append(out.funcs, funcInfo{
			entry:   int32(f.Entry().Instrs[0].ID),
			numRegs: int32(f.NumRegs),
			nLocals: int32(len(f.Locals)),
			params:  int32(f.Params),
			name:    f.Name,
			ir:      f,
		})
		c.fnIdx[f.Name] = int32(i)
	}
	out.mainIdx = c.fnIdx["main"]

	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.Terminator() == nil && len(b.Instrs) > 0 {
				panic(fmt.Sprintf("bytecode: block bb%d in %s lacks a terminator", b.ID, f.Name))
			}
			for _, in := range b.Instrs {
				if in.ID != len(out.code) {
					panic("bytecode: program not finalized (instruction IDs not dense)")
				}
				out.code = append(out.code, c.emit(in))
			}
		}
	}
	return out
}

// emit lowers one IR instruction; the result lands at code index in.ID.
func (c *compiler) emit(in *ir.Instr) instr {
	d := int32(in.Dst)
	switch in.Op {
	case ir.OpMov:
		return instr{op: opMov, dst: d, a: c.ref(in.A)}
	case ir.OpLocalAddr:
		return instr{op: opLocalAddr, dst: d, imm: int64(in.Slot)}
	case ir.OpGlobalAddr:
		return instr{op: opMov, dst: d, a: c.constRef(vm.GlobalsBase + int64(in.Global)*8)}
	case ir.OpStrAddr:
		return instr{op: opMov, dst: d, a: c.constRef(c.out.strAddrs[in.Str])}
	case ir.OpFieldAddr:
		return instr{op: opFieldAddr, dst: d, a: c.ref(in.A), imm: in.Offset}
	case ir.OpIndexAddr:
		return instr{op: opIndexAddr, dst: d, a: c.ref(in.A), b: c.ref(in.B), imm: in.ElemSz}
	case ir.OpLoad:
		return instr{op: opLoad, dst: d, a: c.ref(in.A), sz: uint8(in.Size)}
	case ir.OpStore:
		return instr{op: opStore, a: c.ref(in.A), b: c.ref(in.B), sz: uint8(in.Size)}
	case ir.OpBin:
		op, ok := binOps[in.BinOp]
		if !ok {
			return c.failInstr(fmt.Sprintf("bad binary op %s", in.BinOp))
		}
		return instr{op: op, dst: d, a: c.ref(in.A), b: c.ref(in.B)}
	case ir.OpNot:
		return instr{op: opNot, dst: d, a: c.ref(in.A)}
	case ir.OpNeg:
		return instr{op: opNeg, dst: d, a: c.ref(in.A)}
	case ir.OpBr:
		return instr{op: opBr, a: c.ref(in.A), p: entryOf(in.Then), q: entryOf(in.Else)}
	case ir.OpJmp:
		return instr{op: opJmp, p: entryOf(in.Then)}
	case ir.OpRet:
		bi := instr{op: opRet}
		if !in.A.IsNil() {
			bi.sz = 1
			bi.a = c.ref(in.A)
		}
		return bi
	case ir.OpCall:
		callee, ok := c.fnIdx[in.Callee]
		if !ok {
			panic(fmt.Sprintf("bytecode: call to unknown function %s", in.Callee))
		}
		off := int32(len(c.out.argRefs))
		for _, a := range in.Args {
			c.out.argRefs = append(c.out.argRefs, c.ref(a))
		}
		return instr{op: opCall, dst: d, p: callee, q: off, imm: int64(len(in.Args))}
	case ir.OpCallB:
		return c.emitBuiltin(in, d)
	default:
		return c.failInstr(fmt.Sprintf("bad opcode %s", in.Op))
	}
}

func (c *compiler) emitBuiltin(in *ir.Instr, d int32) instr {
	arg := func(i int) int32 { return c.ref(in.Args[i]) }
	switch in.Builtin {
	case sema.BuiltinMalloc:
		return instr{op: opMalloc, dst: d, a: arg(0)}
	case sema.BuiltinFree:
		return instr{op: opFree, a: arg(0)}
	case sema.BuiltinSpawn:
		fn, ok := c.fnIdx[in.Args[0].Func]
		if !ok {
			panic(fmt.Sprintf("bytecode: spawn of unknown function %s", in.Args[0].Func))
		}
		return instr{op: opSpawn, dst: d, p: fn, a: arg(1)}
	case sema.BuiltinJoin:
		return instr{op: opJoin, a: arg(0)}
	case sema.BuiltinLock:
		return instr{op: opLock, a: arg(0)}
	case sema.BuiltinUnlock:
		return instr{op: opUnlock, a: arg(0)}
	case sema.BuiltinAssert:
		return instr{op: opAssert, a: arg(0)}
	case sema.BuiltinPrint:
		off := int32(len(c.out.argRefs))
		for _, a := range in.Args {
			c.out.argRefs = append(c.out.argRefs, c.ref(a))
		}
		return instr{op: opPrint, p: off, q: int32(len(in.Args))}
	case sema.BuiltinPrints:
		return instr{op: opPrints, a: arg(0)}
	case sema.BuiltinStrlen:
		return instr{op: opStrlen, dst: d, a: arg(0)}
	case sema.BuiltinInput:
		return instr{op: opInput, dst: d, a: arg(0)}
	case sema.BuiltinInputStr:
		return instr{op: opInputStr, dst: d, a: arg(0)}
	case sema.BuiltinYield:
		return instr{op: opYield}
	default:
		return c.failInstr(fmt.Sprintf("bad builtin %s", in.Callee))
	}
}
