package bytecode

import (
	"math/rand"
	"testing"
)

// TestDrawsMatchMathRand pins the hand-rolled Intn replicas to
// math/rand. The scheduler's RNG consumption order and results are part
// of the determinism contract with the interpreter (which draws through
// rand.Rand), so preemptDraw — including its precomputed rejection bound
// and reciprocal modulo — and intnDyn must match bit for bit, draw for
// draw, for every preemption mean and runnable count the fleet can
// configure.
func TestDrawsMatchMathRand(t *testing.T) {
	for mean := 1; mean <= 24; mean++ {
		for seed := int64(0); seed < 4; seed++ {
			m := &Machine{src: rand.NewSource(seed).(rand.Source64)}
			m.setPreempt(mean)
			ref := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				// Interleave a runnable-count draw like schedule() does, so
				// both generators stay in lockstep across mixed call patterns.
				n := int32(1 + i%9)
				if got, want := m.intnDyn(n), ref.Intn(int(n)); got != want {
					t.Fatalf("mean=%d seed=%d draw=%d: intnDyn(%d)=%d, rand.Intn=%d", mean, seed, i, n, got, want)
				}
				if got, want := m.preemptDraw(), ref.Intn(2*mean); got != want {
					t.Fatalf("mean=%d seed=%d draw=%d: preemptDraw()=%d, rand.Intn(%d)=%d", mean, seed, i, got, 2*mean, want)
				}
			}
		}
	}
}
