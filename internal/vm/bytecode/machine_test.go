package bytecode_test

// The bytecode engine's contract is total observational equivalence
// with the interpreter: same outcomes, same failure-report bytes, and
// the same hook event stream at the same clocks. These tests check that
// contract directly at the engine level (the experiments package checks
// it again end-to-end through the whole diagnosis pipeline).

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bugs"
	"repro/internal/ir"
	"repro/internal/vm"
	"repro/internal/vm/bytecode"
)

// bugVMConfig mirrors how the pipeline configures raw runs for a bug.
func bugVMConfig(b *bugs.Bug, seed int64) vm.Config {
	cfg := vm.Config{Seed: seed, MaxSteps: 200_000, PreemptMean: 3}
	if b.PreemptMean > 0 {
		cfg.PreemptMean = b.PreemptMean
	}
	if len(b.Workloads) > 0 {
		cfg.Workload = b.Workloads[int(seed)%len(b.Workloads)]
	}
	return cfg
}

func reportEqual(t *testing.T, name string, seed int64, a, b *vm.FailureReport) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s seed %d: interp report=%v bytecode report=%v", name, seed, a, b)
	}
	if a == nil {
		return
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s seed %d: reports differ\ninterp:   %#v\nbytecode: %#v", name, seed, a, b)
	}
	if a.ID() != b.ID() || a.String() != b.String() {
		t.Fatalf("%s seed %d: report identity differs: %q vs %q", name, seed, a.ID(), b.ID())
	}
}

func outcomesEqual(t *testing.T, name string, seed int64, a, b *vm.Outcome) {
	t.Helper()
	if a.Failed != b.Failed || a.Exit != b.Exit || a.Steps != b.Steps {
		t.Fatalf("%s seed %d: outcomes differ: interp {failed=%v exit=%d steps=%d} bytecode {failed=%v exit=%d steps=%d}",
			name, seed, a.Failed, a.Exit, a.Steps, b.Failed, b.Exit, b.Steps)
	}
	if !reflect.DeepEqual(a.Prints, b.Prints) {
		t.Fatalf("%s seed %d: prints differ: %v vs %v", name, seed, a.Prints, b.Prints)
	}
	reportEqual(t, name, seed, a.Report, b.Report)
}

// TestDifferentialOutcomes runs every suite bug on both engines across
// many seeds and requires identical outcomes, including failure-report
// bytes.
func TestDifferentialOutcomes(t *testing.T) {
	for _, b := range bugs.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			prog := bytecode.Compile(b.Program())
			for seed := int64(0); seed < 30; seed++ {
				cfg := bugVMConfig(b, seed)
				want := vm.Run(b.Program(), cfg)
				got, _ := prog.Run(cfg)
				outcomesEqual(t, b.Name, seed, want, got)
			}
		})
	}
}

// TestDifferentialHookStream compares the full tracing-hook event
// streams — what PT, the watchpoint unit, and the replay recorder all
// consume — on the concurrency-heavy bugs.
func TestDifferentialHookStream(t *testing.T) {
	names := []string{"pbzip2", "apache-3", "deadlock", "curl", "memcached"}
	for _, name := range names {
		b := bugs.ByName(name)
		if b == nil {
			t.Fatalf("unknown bug %s", name)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prog := bytecode.Compile(b.Program())
			for seed := int64(0); seed < 10; seed++ {
				cfg := bugVMConfig(b, seed)
				var interpEvents, bcEvents []string
				c1 := cfg
				c1.Hooks = recordingHooks(&interpEvents)
				c2 := cfg
				c2.Hooks = recordingHooks(&bcEvents)
				want := vm.Run(b.Program(), c1)
				got, _ := prog.Run(c2)
				outcomesEqual(t, name, seed, want, got)
				if len(interpEvents) != len(bcEvents) {
					t.Fatalf("%s seed %d: %d interp events vs %d bytecode events",
						name, seed, len(interpEvents), len(bcEvents))
				}
				for i := range interpEvents {
					if interpEvents[i] != bcEvents[i] {
						t.Fatalf("%s seed %d: event %d differs:\ninterp:   %s\nbytecode: %s",
							name, seed, i, interpEvents[i], bcEvents[i])
					}
				}
			}
		})
	}
}

func recordingHooks(events *[]string) vm.Hooks {
	add := func(format string, args ...any) {
		*events = append(*events, fmt.Sprintf(format, args...))
	}
	return vm.Hooks{
		OnStep: func(t *vm.Thread, in *ir.Instr, clock int64) {
			add("step t%d %%%d @%d", t.ID, in.ID, clock)
		},
		OnBranch: func(t *vm.Thread, in *ir.Instr, taken bool, clock int64) {
			add("branch t%d %%%d taken=%v @%d", t.ID, in.ID, taken, clock)
		},
		OnIndirect: func(t *vm.Thread, in *ir.Instr, target *ir.Instr, clock int64) {
			add("indirect t%d %%%d -> %%%d @%d", t.ID, in.ID, target.ID, clock)
		},
		OnLoad: func(t *vm.Thread, in *ir.Instr, addr, val, size, clock int64) {
			add("load t%d %%%d [%#x]=%d sz%d @%d", t.ID, in.ID, addr, val, size, clock)
		},
		OnStore: func(t *vm.Thread, in *ir.Instr, addr, val, size, clock int64) {
			add("store t%d %%%d [%#x]=%d sz%d @%d", t.ID, in.ID, addr, val, size, clock)
		},
		OnSchedule: func(from, to int, clock int64) {
			add("sched %d->%d @%d", from, to, clock)
		},
		OnSpawn: func(parent, child int, fn *ir.Func, clock int64) {
			add("spawn %d->%d %s @%d", parent, child, fn.Name, clock)
		},
	}
}

// TestMachineReuse drives one machine through many heterogeneous runs
// and requires each to match a cold interpreter run — the reset/reuse
// contract the fleet's pooling depends on (stale stacks, heap contents,
// strings or RNG state would all surface here).
func TestMachineReuse(t *testing.T) {
	for _, name := range []string{"pbzip2", "sqlite", "transmission", "deadlock"} {
		b := bugs.ByName(name)
		prog := bytecode.Compile(b.Program())
		m := bytecode.NewMachine(prog)
		for round := 0; round < 3; round++ {
			for seed := int64(0); seed < 8; seed++ {
				cfg := bugVMConfig(b, seed)
				want := vm.Run(b.Program(), cfg)
				got := m.Run(cfg)
				outcomesEqual(t, name+"-reuse", seed, want, got)
			}
		}
	}
}
