package sched_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sched"
)

// schedBugs is the multi-tenant suite: four distinct failures diagnosed
// concurrently over one shared fleet.
var schedBugs = []string{"pbzip2", "curl", "memcached", "apache-1"}

// fingerprint captures everything diagnosis-visible about an outcome;
// two equal fingerprints mean byte-identical diagnoses.
func fingerprint(res *core.Result, err error) string {
	if err != nil {
		return "err: " + err.Error()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "disc=%d total=%d rec=%d ov=%.9f\n",
		res.DiscoveryRuns, res.TotalRuns, res.FailureRecurrences, res.AvgOverheadPct)
	fmt.Fprintf(&sb, "health=%+v\n", res.Health)
	for _, it := range res.Iters {
		fmt.Fprintf(&sb, "iter=%+v\n", it)
	}
	fmt.Fprintf(&sb, "slice=%v\n", res.Slice.IDs)
	sb.WriteString(res.Sketch.Render())
	for _, r := range res.Sketch.AllRanked {
		fmt.Fprintf(&sb, "ranked=%+v\n", r)
	}
	return sb.String()
}

// prepareTenants discovers each bug's first failure once and returns a
// campaign factory per tenant plus the serial RunFromReport baseline
// fingerprints the scheduled runs must match.
func prepareTenants(t *testing.T) ([]func() *core.Campaign, []string) {
	t.Helper()
	var makes []func() *core.Campaign
	var serial []string
	for _, name := range schedBugs {
		b := bugs.ByName(name)
		if b == nil {
			t.Fatalf("unknown bug %q", name)
		}
		cfg := b.GistConfig()
		cfg.Label = b.Name
		cfg.StopWhen = experiments.DeveloperOracle(b)
		report, disc, err := core.FirstFailure(cfg)
		if err != nil {
			t.Fatalf("%s: discovery: %v", name, err)
		}
		serial = append(serial, fingerprint(core.RunFromReport(cfg, report, disc)))
		makes = append(makes, func() *core.Campaign {
			camp, err := core.NewCampaign(cfg, report, disc)
			if err != nil {
				t.Fatalf("%s: NewCampaign: %v", name, err)
			}
			return camp
		})
	}
	return makes, serial
}

// TestSchedulerMatchesSerial interleaves all tenants over shared pools
// of width 1 and 8 and requires every campaign's outcome to be
// byte-identical to its serial RunFromReport baseline — determinism
// regardless of interleaving.
func TestSchedulerMatchesSerial(t *testing.T) {
	makes, serial := prepareTenants(t)
	for _, width := range []int{1, 8} {
		s := sched.New(width)
		if s.Width() != width {
			t.Fatalf("Width() = %d, want %d", s.Width(), width)
		}
		for _, mk := range makes {
			s.Add(mk())
		}
		outs := s.Run()
		if len(outs) != len(schedBugs) {
			t.Fatalf("width %d: %d outcomes, want %d", width, len(outs), len(schedBugs))
		}
		for i, out := range outs {
			if out.Label != schedBugs[i] {
				t.Errorf("width %d: outcome %d label %q, want %q (enrollment order)", width, i, out.Label, schedBugs[i])
			}
			got := fingerprint(out.Result, out.Err)
			if got != serial[i] {
				t.Errorf("width %d: %s diverged from serial diagnosis:\n--- scheduled ---\n%s\n--- serial ---\n%s",
					width, schedBugs[i], got, serial[i])
			}
		}
	}
}

// TestSchedulerFairnessTrace checks the round-robin accounting: every
// tenant is stepped every round it is live, the per-round samples match
// the round count, and the per-round run deltas sum to the diagnosis
// total.
func TestSchedulerFairnessTrace(t *testing.T) {
	makes, _ := prepareTenants(t)
	s := sched.New(0)
	camps := make([]*core.Campaign, len(makes))
	for i, mk := range makes {
		camps[i] = mk()
		s.Add(camps[i])
	}
	outs := s.Run()
	for i, out := range outs {
		if out.Rounds == 0 {
			t.Errorf("%s: zero rounds", out.Label)
		}
		if len(out.RunsPerRound) != out.Rounds {
			t.Errorf("%s: %d round samples for %d rounds", out.Label, len(out.RunsPerRound), out.Rounds)
		}
		sum := 0
		for _, n := range out.RunsPerRound {
			sum += n
		}
		if out.Result == nil {
			t.Fatalf("%s: nil result (err %v)", out.Label, out.Err)
		}
		if sum != out.Result.TotalRuns {
			t.Errorf("%s: per-round runs sum to %d, TotalRuns %d", out.Label, sum, out.Result.TotalRuns)
		}
		if camps[i].Iteration()+1 < out.Rounds {
			t.Errorf("%s: %d rounds but campaign only reached iteration %d", out.Label, out.Rounds, camps[i].Iteration())
		}
	}
}
