package sched_test

import (
	"testing"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sched"
)

// TestRetireAndReplaceAcrossSchedulers is the rebalancing contract the
// shard layer is built on: a campaign stepped partway on scheduler A
// (worker A's fleet pool), retired mid-diagnosis, and resumed on
// scheduler B from the snapshot at the retirement boundary must finish
// with a transcript byte-identical to the undisturbed serial run — the
// boundary checkpoint carries everything, and Retire/Replace never leak
// state between hosts.
func TestRetireAndReplaceAcrossSchedulers(t *testing.T) {
	for _, name := range schedBugs {
		b := bugs.ByName(name)
		if b == nil {
			t.Fatalf("unknown bug %q", name)
		}
		cfg := b.GistConfig()
		cfg.Label = b.Name
		cfg.StopWhen = experiments.DeveloperOracle(b)
		report, disc, err := core.FirstFailure(cfg)
		if err != nil {
			t.Fatalf("%s: discovery: %v", name, err)
		}
		serial := fingerprint(core.RunFromReport(cfg, report, disc))
		camp, err := core.NewCampaign(cfg, report, disc)
		if err != nil {
			t.Fatalf("%s: NewCampaign: %v", name, err)
		}

		a := sched.New(1)
		a.Add(camp)
		// Step on A until the campaign is mid-flight (a few iteration
		// boundaries in, not finished).
		for r := 0; r < 3 && !camp.Finished(); r++ {
			if a.RunRound() == 0 {
				break
			}
		}
		snap, err := camp.Snapshot()
		if err != nil {
			t.Fatalf("%s: snapshot at retirement boundary: %v", name, err)
		}
		data, err := snap.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		// Retire on A: A's slot steps no more, even if A keeps running.
		a.Retire(0)
		if !a.Retired(0) {
			t.Fatalf("%s: slot not marked retired", name)
		}
		if a.RunRound() != 0 {
			t.Fatalf("%s: retired slot still stepped", name)
		}

		// Resume on B from the durable snapshot, exactly as the new
		// owner's process would after a handoff.
		decoded, err := core.DecodeCampaignSnapshot(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		resumed, err := core.RestoreCampaign(cfg, decoded)
		if err != nil {
			t.Fatalf("%s: restore: %v", name, err)
		}
		sb := sched.New(1)
		sb.Add(resumed)
		outs := sb.Run()
		if got := fingerprint(outs[0].Result, outs[0].Err); got != serial {
			t.Errorf("%s: handed-off diagnosis diverged from serial baseline:\n--- handed off ---\n%s\n--- serial ---\n%s",
				name, got, serial)
		}
	}
}

// TestReplaceSwapsTheSlotCampaign pins Replace itself: after Replace,
// the slot steps the replacement campaign and the original is never
// stepped again.
func TestReplaceSwapsTheSlotCampaign(t *testing.T) {
	makes, serial := prepareTenants(t)
	s := sched.New(1)
	orig := makes[0]()
	s.Add(orig)
	replacement := makes[0]()
	s.Replace(0, replacement)
	if s.Campaign(0) != replacement {
		t.Fatalf("Replace did not swap the slot's campaign")
	}
	outs := s.Run()
	if got := fingerprint(outs[0].Result, outs[0].Err); got != serial[0] {
		t.Errorf("replacement campaign diverged from serial baseline")
	}
	if orig.Finished() {
		t.Errorf("original campaign was stepped after Replace")
	}
}
