// Package sched interleaves several concurrent Gist campaigns — one per
// distinct failure — over one shared endpoint fleet.
//
// The paper's deployment (§3.3) diagnoses many failures at once: the
// fleet is partitioned across failure clusters, and every cluster's
// adaptive slice-tracking loop makes progress while the others run.
// The simulator models that with a round-robin scheduler: each round,
// every unfinished campaign executes exactly one AsT iteration, all
// rounds' iterations running concurrently over a shared bounded worker
// pool (core.Pool). Round-robin batch admission is the fairness rule —
// no campaign can start iteration k+1 until every live campaign has
// finished iteration k, so a cheap bug cannot starve an expensive one
// of fleet slots and vice versa.
//
// Determinism: a campaign's diagnosis is a pure function of its own
// configuration and seed cursor; the pool only decides *when* runs
// execute, never which runs or in what admission order. Every Outcome
// is therefore byte-identical to running the same campaign serially,
// at any pool width and under any goroutine interleaving.
package sched

import (
	"sync"

	"repro/internal/core"
)

// Outcome is one campaign's result plus the scheduling trace the
// fairness analysis consumes.
type Outcome struct {
	Label  string
	Result *core.Result
	Err    error
	// Rounds is how many scheduler rounds (AsT iterations) the campaign
	// was stepped.
	Rounds int
	// RunsPerRound records the production runs the campaign consumed in
	// each round it participated in — the per-tenant fleet-share series
	// Jain's fairness index is computed over.
	RunsPerRound []int
}

// Stepper runs one campaign's turn within a scheduler round. The
// default stepper calls c.Step() directly; a supervisor installs one
// that wraps the step in panic recovery and a watchdog, may Replace the
// slot's campaign with one restored from a checkpoint, or may decline
// to step at all (a backoff round). Steppers for different slots run
// concurrently; a stepper must only touch its own slot.
type Stepper func(slot int, c *core.Campaign)

// Scheduler drives campaigns to completion in concurrent round-robin
// rounds over a shared fleet pool. Not safe for concurrent use; all
// concurrency is internal.
type Scheduler struct {
	pool    *core.Pool
	camps   []*core.Campaign
	outs    []Outcome
	retired []bool
	stepper Stepper
}

// New returns a scheduler whose shared fleet executes at most width
// runs concurrently across all campaigns (0 = GOMAXPROCS).
func New(width int) *Scheduler {
	return &Scheduler{pool: core.NewPool(width)}
}

// Width returns the shared fleet's concurrency bound.
func (s *Scheduler) Width() int { return s.pool.Width() }

// SetStepper installs a custom per-step driver. Must be set before the
// first round; nil restores the default.
func (s *Scheduler) SetStepper(fn Stepper) { s.stepper = fn }

// Add enrolls a campaign, attaching it to the shared pool. Campaigns
// must be added before Run and not stepped elsewhere.
func (s *Scheduler) Add(c *core.Campaign) {
	c.UsePool(s.pool)
	s.camps = append(s.camps, c)
	s.outs = append(s.outs, Outcome{Label: c.Label()})
	s.retired = append(s.retired, false)
}

// Len returns the number of enrolled campaigns.
func (s *Scheduler) Len() int { return len(s.camps) }

// Campaign returns the campaign currently occupying a slot.
func (s *Scheduler) Campaign(slot int) *core.Campaign { return s.camps[slot] }

// Replace swaps a slot's campaign for another (one a supervisor
// restored from a checkpoint), attaching it to the shared pool. Safe to
// call from the slot's own stepper.
func (s *Scheduler) Replace(slot int, c *core.Campaign) {
	c.UsePool(s.pool)
	s.camps[slot] = c
}

// Retire permanently excludes a slot from future rounds — the
// supervisor's circuit breaker. Safe to call from the slot's own
// stepper.
func (s *Scheduler) Retire(slot int) { s.retired[slot] = true }

// Retired reports whether a slot has been retired.
func (s *Scheduler) Retired(slot int) bool { return s.retired[slot] }

// RunRound steps every live (unfinished, unretired) campaign exactly
// once, concurrently, and folds the round into the fairness trace. It
// returns how many campaigns were live; 0 means the schedule is done.
func (s *Scheduler) RunRound() int {
	var active []int
	for i, c := range s.camps {
		if !s.retired[i] && !c.Finished() {
			active = append(active, i)
		}
	}
	if len(active) == 0 {
		return 0
	}
	before := make(map[int]int, len(active))
	for _, i := range active {
		before[i] = s.camps[i].TotalRuns()
	}
	var wg sync.WaitGroup
	for _, i := range active {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if s.stepper != nil {
				s.stepper(i, s.camps[i])
				return
			}
			s.camps[i].Step() // terminal errors surface via Result below
		}(i)
	}
	wg.Wait()
	// Record the round in enrollment order, after the barrier, so the
	// outcome trace is independent of goroutine interleaving. A slot
	// whose stepper replaced its campaign reads the replacement, which
	// a checkpoint restore has positioned at the pre-crash boundary.
	for _, i := range active {
		s.outs[i].Rounds++
		s.outs[i].RunsPerRound = append(s.outs[i].RunsPerRound, s.camps[i].TotalRuns()-before[i])
	}
	return len(active)
}

// Outcomes returns a copy of the per-slot outcomes in enrollment order.
// Finished campaigns carry their Result; unfinished or retired slots
// carry the campaign's not-finished error (a supervisor overlays those
// with degraded or drained outcomes).
func (s *Scheduler) Outcomes() []Outcome {
	outs := append([]Outcome(nil), s.outs...)
	for i := range outs {
		outs[i].RunsPerRound = append([]int(nil), s.outs[i].RunsPerRound...)
		outs[i].Result, outs[i].Err = s.camps[i].Result()
	}
	return outs
}

// Run steps every enrolled campaign to completion and returns the
// outcomes in enrollment order.
func (s *Scheduler) Run() []Outcome {
	for s.RunRound() > 0 {
	}
	return s.Outcomes()
}
