// Package sched interleaves several concurrent Gist campaigns — one per
// distinct failure — over one shared endpoint fleet.
//
// The paper's deployment (§3.3) diagnoses many failures at once: the
// fleet is partitioned across failure clusters, and every cluster's
// adaptive slice-tracking loop makes progress while the others run.
// The simulator models that with a round-robin scheduler: each round,
// every unfinished campaign executes exactly one AsT iteration, all
// rounds' iterations running concurrently over a shared bounded worker
// pool (core.Pool). Round-robin batch admission is the fairness rule —
// no campaign can start iteration k+1 until every live campaign has
// finished iteration k, so a cheap bug cannot starve an expensive one
// of fleet slots and vice versa.
//
// Determinism: a campaign's diagnosis is a pure function of its own
// configuration and seed cursor; the pool only decides *when* runs
// execute, never which runs or in what admission order. Every Outcome
// is therefore byte-identical to running the same campaign serially,
// at any pool width and under any goroutine interleaving.
package sched

import (
	"sync"

	"repro/internal/core"
)

// Outcome is one campaign's result plus the scheduling trace the
// fairness analysis consumes.
type Outcome struct {
	Label  string
	Result *core.Result
	Err    error
	// Rounds is how many scheduler rounds (AsT iterations) the campaign
	// was stepped.
	Rounds int
	// RunsPerRound records the production runs the campaign consumed in
	// each round it participated in — the per-tenant fleet-share series
	// Jain's fairness index is computed over.
	RunsPerRound []int
}

// Scheduler drives campaigns to completion in concurrent round-robin
// rounds over a shared fleet pool. Not safe for concurrent use; all
// concurrency is internal.
type Scheduler struct {
	pool  *core.Pool
	camps []*core.Campaign
}

// New returns a scheduler whose shared fleet executes at most width
// runs concurrently across all campaigns (0 = GOMAXPROCS).
func New(width int) *Scheduler {
	return &Scheduler{pool: core.NewPool(width)}
}

// Width returns the shared fleet's concurrency bound.
func (s *Scheduler) Width() int { return s.pool.Width() }

// Add enrolls a campaign, attaching it to the shared pool. Campaigns
// must be added before Run and not stepped elsewhere.
func (s *Scheduler) Add(c *core.Campaign) {
	c.UsePool(s.pool)
	s.camps = append(s.camps, c)
}

// Run steps every enrolled campaign to completion and returns the
// outcomes in enrollment order.
func (s *Scheduler) Run() []Outcome {
	outs := make([]Outcome, len(s.camps))
	for i, c := range s.camps {
		outs[i].Label = c.Label()
	}
	for {
		var active []int
		for i, c := range s.camps {
			if !c.Finished() {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			break
		}
		before := make(map[int]int, len(active))
		for _, i := range active {
			before[i] = s.camps[i].TotalRuns()
		}
		var wg sync.WaitGroup
		for _, i := range active {
			wg.Add(1)
			go func(c *core.Campaign) {
				defer wg.Done()
				c.Step() // terminal errors surface via Result below
			}(s.camps[i])
		}
		wg.Wait()
		// Record the round in enrollment order, after the barrier, so
		// the outcome trace is independent of goroutine interleaving.
		for _, i := range active {
			outs[i].Rounds++
			outs[i].RunsPerRound = append(outs[i].RunsPerRound, s.camps[i].TotalRuns()-before[i])
		}
	}
	for i, c := range s.camps {
		outs[i].Result, outs[i].Err = c.Result()
	}
	return outs
}
