package bugs

import (
	"testing"

	"repro/internal/core"
	"repro/internal/vm"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("suite has %d bugs, want 12", len(all))
	}
	want := []string{
		"apache-1", "apache-2", "apache-3", "apache-4",
		"cppcheck-1", "cppcheck-2",
		"curl", "transmission", "sqlite", "memcached", "pbzip2",
		"deadlock",
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("row %d: got %s, want %s (Table 1 order)", i, all[i].Name, name)
		}
		if ByName(name) != all[i] {
			t.Errorf("ByName(%s) mismatch", name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName of unknown bug should be nil")
	}
	if len(Names()) != 12 {
		t.Error("Names() incomplete")
	}
}

func TestMetadataPresent(t *testing.T) {
	for _, b := range All() {
		if b.Software == "" || b.Version == "" || b.BugID == "" || b.Class == "" || b.Fix == "" {
			t.Errorf("%s: incomplete metadata: %+v", b.Name, b)
		}
		if b.RealLOC <= 0 {
			t.Errorf("%s: missing real LOC", b.Name)
		}
		if len(b.FaultKinds) == 0 {
			t.Errorf("%s: no expected fault kinds", b.Name)
		}
		if len(b.IdealLines) < 3 {
			t.Errorf("%s: ideal sketch too small (%d lines)", b.Name, len(b.IdealLines))
		}
	}
}

func TestProgramsCompile(t *testing.T) {
	for _, b := range All() {
		p := b.Program()
		if p == nil || p.FuncByName["main"] == nil {
			t.Errorf("%s: did not compile", b.Name)
		}
		// Cached.
		if b.Program() != p {
			t.Errorf("%s: program not cached", b.Name)
		}
	}
}

func TestIdealSketchesResolve(t *testing.T) {
	for _, b := range All() {
		ideal := b.Ideal()
		if len(ideal.Lines) != len(b.IdealLines) {
			t.Errorf("%s: resolved %d of %d ideal lines", b.Name, len(ideal.Lines), len(b.IdealLines))
		}
		seen := map[int]bool{}
		for _, ln := range ideal.Lines {
			if ln <= 0 {
				t.Errorf("%s: bad ideal line %d", b.Name, ln)
			}
			if seen[ln] {
				t.Errorf("%s: duplicate ideal line %d", b.Name, ln)
			}
			seen[ln] = true
		}
		for _, pair := range ideal.Order {
			if pair[0] == pair[1] {
				t.Errorf("%s: degenerate order pair %v", b.Name, pair)
			}
		}
	}
}

func TestMustLinePanicsOnBadFragment(t *testing.T) {
	b := Pbzip2
	defer func() {
		if recover() == nil {
			t.Error("MustLine should panic on unknown fragment")
		}
	}()
	b.MustLine("no such line anywhere")
}

// TestEachBugHasBothOutcomes verifies the production population: every bug
// must fail sometimes (it is a bug) and succeed sometimes (it is elusive),
// and always with an expected fault kind.
func TestEachBugHasBothOutcomes(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p := b.Program()
			pm := b.PreemptMean
			if pm == 0 {
				pm = 3
			}
			fails, successes := 0, 0
			for seed := int64(0); seed < 120; seed++ {
				wl := vm.Workload{}
				if len(b.Workloads) > 0 {
					wl = b.Workloads[int(seed)%len(b.Workloads)]
				}
				out := vm.Run(p, vm.Config{Seed: seed, PreemptMean: pm, Workload: wl, MaxSteps: 300_000})
				if out.Failed {
					fails++
					if !b.FaultOK(out.Report.Kind) {
						t.Fatalf("unexpected fault %v at %s", out.Report.Kind, out.Report.Pos)
					}
				} else {
					successes++
				}
			}
			if fails == 0 {
				t.Error("bug never failed")
			}
			if successes == 0 {
				t.Error("bug always failed — not an elusive production bug")
			}
		})
	}
}

// TestGistDiagnosesEveryBug runs the full pipeline on all 11 bugs and
// checks the §5 claims in miniature: a sketch is produced, it ends at the
// failure, it covers the ideal sketch's lines, and the accuracy against
// the hand-written ideal is high.
func TestGistDiagnosesEveryBug(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite diagnosis is slow; run without -short")
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			res, err := core.Run(b.GistConfig())
			if err != nil {
				t.Fatalf("gist: %v", err)
			}
			sk := res.Sketch
			if !b.FaultOK(sk.Report.Kind) {
				t.Errorf("diagnosed wrong fault kind %v", sk.Report.Kind)
			}
			if !sk.Steps[len(sk.Steps)-1].IsFailure {
				t.Error("sketch does not end at the failure")
			}
			if res.FailureRecurrences < 1 {
				t.Error("no failure recurrences recorded")
			}
			ideal := b.Ideal()
			rel, ord, overall := sk.Accuracy(ideal)
			if overall < 55 {
				t.Errorf("accuracy too low: relevance=%.1f ordering=%.1f overall=%.1f\n%s",
					rel, ord, overall, sk.Render())
			}
			if ord < 60 {
				t.Errorf("ordering accuracy too low: %.1f\n%s", ord, sk.Render())
			}
			// Sketch lines must cover most of the ideal sketch.
			lines := map[int]bool{}
			for _, s := range sk.Steps {
				lines[s.Line] = true
			}
			missing := 0
			for _, ln := range ideal.Lines {
				if !lines[ln] {
					missing++
				}
			}
			if missing > len(ideal.Lines)/2 {
				t.Errorf("sketch misses %d of %d ideal lines\n%s", missing, len(ideal.Lines), sk.Render())
			}
			if b.Concurrency && !b.SingleThreadSketch && len(sk.Threads) < 2 {
				t.Errorf("concurrency bug sketch shows %d thread(s)", len(sk.Threads))
			}
		})
	}
}
