// Package bugs is the Bugbase-style suite of the 11 failures the paper
// evaluates (Table 1): MiniC programs that reproduce the *root-cause
// structure* of each real bug — the same dependence chains, interleaving
// patterns, and failure modes, at reduced scale — together with the
// workloads that trigger them and hand-written ideal failure sketches
// for the §5.2 accuracy evaluation.
//
// Each program also performs realistic background work (request serving,
// compression, parsing loops): like the real applications, the overwhelming
// majority of executed instructions are unrelated to the bug, which is what
// makes the overhead measurements meaningful.
package bugs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/vm"
)

// Bug is one evaluated failure.
type Bug struct {
	// Name is the suite identifier, e.g. "apache-3".
	Name string
	// Software/Version/BugID/RealLOC reproduce the Table 1 metadata for
	// the real system the MiniC program stands in for.
	Software string
	Version  string
	BugID    string
	RealLOC  int
	// Class describes the failure, e.g. "concurrency, double free".
	Class string
	// Concurrency marks schedule-dependent bugs.
	Concurrency bool
	// SingleThreadSketch marks concurrency bugs whose *failing* runs
	// legitimately produce a one-column sketch: in an order violation
	// where the racing write never executed before the crash, there is
	// nothing honest to show in the other thread's column (the root cause
	// is the absence of the write, pinned by the value predictor).
	SingleThreadSketch bool
	// Fix summarizes how the developers fixed the real bug.
	Fix string

	// Source is the MiniC program.
	Source string
	// Workloads is the input pool endpoints draw from; for sequential
	// bugs it mixes benign and failure-triggering inputs.
	Workloads []vm.Workload
	// FaultKinds lists the acceptable failure kinds (a race can surface
	// as either null-deref or use-after-free depending on the schedule).
	FaultKinds []vm.FaultKind

	// IdealLines are unique source fragments identifying the lines of the
	// hand-written ideal failure sketch.
	IdealLines []string
	// IdealOrder lists (earlier, later) fragment pairs that the sketch
	// must order correctly — the key cross-thread orderings.
	IdealOrder [][2]string

	// PreemptMean overrides the scheduler aggressiveness (0 = default).
	PreemptMean int
	// Endpoints overrides the per-iteration fleet size (0 = default).
	Endpoints int

	once sync.Once
	prog *ir.Program
}

// Program returns the compiled program (cached).
func (b *Bug) Program() *ir.Program {
	b.once.Do(func() {
		b.prog = ir.MustCompile(b.Name+".mc", b.Source)
	})
	return b.prog
}

// MustLine returns the 1-based line number of the unique source line
// containing frag; it panics if frag is absent or ambiguous, so stale
// ideal-sketch definitions fail loudly.
func (b *Bug) MustLine(frag string) int {
	line := 0
	for i, l := range strings.Split(b.Source, "\n") {
		if strings.Contains(l, frag) {
			if line != 0 {
				panic(fmt.Sprintf("%s: fragment %q is ambiguous (lines %d and %d)", b.Name, frag, line, i+1))
			}
			line = i + 1
		}
	}
	if line == 0 {
		panic(fmt.Sprintf("%s: fragment %q not found", b.Name, frag))
	}
	return line
}

// Ideal resolves the fragment-based ideal sketch to line numbers.
func (b *Bug) Ideal() core.IdealSketch {
	ideal := core.IdealSketch{}
	for _, frag := range b.IdealLines {
		ideal.Lines = append(ideal.Lines, b.MustLine(frag))
	}
	for _, pair := range b.IdealOrder {
		ideal.Order = append(ideal.Order, [2]int{b.MustLine(pair[0]), b.MustLine(pair[1])})
	}
	return ideal
}

// GistConfig returns the diagnosis configuration for this bug.
func (b *Bug) GistConfig() core.Config {
	title := fmt.Sprintf("%s bug #%s", b.Software, b.BugID)
	if b.BugID == "N/A" {
		title = fmt.Sprintf("%s bug", b.Software)
	}
	cfg := core.Config{
		Prog:         b.Program(),
		Title:        title,
		WorkloadPool: b.Workloads,
		SeedBase:     1,
	}
	if b.PreemptMean > 0 {
		cfg.PreemptMean = b.PreemptMean
	}
	if b.Endpoints > 0 {
		cfg.Endpoints = b.Endpoints
	}
	return cfg
}

// FaultOK reports whether kind is an expected failure of this bug.
func (b *Bug) FaultOK(kind vm.FaultKind) bool {
	for _, k := range b.FaultKinds {
		if k == kind {
			return true
		}
	}
	return false
}

var registry []*Bug

func register(b *Bug) *Bug {
	registry = append(registry, b)
	return b
}

// All returns the bug suite in Table 1 order.
func All() []*Bug {
	out := append([]*Bug(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return tableOrder(out[i].Name) < tableOrder(out[j].Name) })
	return out
}

// ByName returns the named bug, or nil.
func ByName(name string) *Bug {
	for _, b := range registry {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Names returns all bug names in Table 1 order.
func Names() []string {
	var names []string
	for _, b := range All() {
		names = append(names, b.Name)
	}
	return names
}

var tableRows = []string{
	"apache-1", "apache-2", "apache-3", "apache-4",
	"cppcheck-1", "cppcheck-2",
	"curl", "transmission", "sqlite", "memcached", "pbzip2",
	"deadlock",
}

func tableOrder(name string) int {
	for i, n := range tableRows {
		if n == name {
			return i
		}
	}
	return len(tableRows)
}
