package bugs

import "repro/internal/vm"

// Pbzip2 is the use-after-free/segfault of Fig. 1: the main thread frees
// and nulls the queue's mutex while the consumer may still be unlocking it.
var Pbzip2 = register(&Bug{
	Name: "pbzip2", Software: "Pbzip2", Version: "0.9.4", BugID: "N/A", RealLOC: 1492,
	Class: "concurrency, segmentation fault", Concurrency: true,
	Fix: "introduce synchronization so main cannot free the mutex before consumers are done (the fix shipped four months after the report)",
	Source: `struct queue { int* mut; int size; };
global struct queue* fifo;
int compress(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		acc = acc + (i * 7 + 3) % 11;
	}
	return acc;
}
void worker(int n) {
	int r = compress(n);
}
void cons(int arg) {
	struct queue* f = fifo;
	unlock(f->mut);
}
int main() {
	int w1 = spawn(worker, 1500);
	int w2 = spawn(worker, 1500);
	join(w1);
	join(w2);
	fifo = malloc(sizeof(queue));
	fifo->mut = malloc(8);
	fifo->size = 7;
	int t = spawn(cons, 0);
	free(fifo->mut);
	fifo->mut = null;
	join(t);
	return 0;
}`,
	FaultKinds: []vm.FaultKind{vm.FaultNullDeref, vm.FaultUseAfterFree},
	IdealLines: []string{
		"struct queue* f = fifo;",
		"unlock(f->mut);",
		"fifo = malloc(sizeof(queue));",
		"fifo->mut = malloc(8);",
		"free(fifo->mut);",
		"fifo->mut = null;",
	},
	IdealOrder: [][2]string{
		{"fifo->mut = null;", "unlock(f->mut);"},
		{"struct queue* f = fifo;", "unlock(f->mut);"},
		{"fifo->mut = malloc(8);", "free(fifo->mut);"},
	},
	PreemptMean: 3, Endpoints: 30,
})

// Apache1 is bug #45605: the fdqueue idlers counter is incremented and
// decremented without atomicity (WWR); a lost increment drives the
// counter negative.
var Apache1 = register(&Bug{
	Name: "apache-1", Software: "Apache httpd", Version: "2.2.9", BugID: "45605", RealLOC: 224533,
	Class: "concurrency, atomicity violation (WWR)", Concurrency: true,
	Fix: "use atomic increment/decrement for the idlers counter",
	Source: `global int idlers = 0;
int handle(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		acc = acc + (i * 13 + 7) % 17;
	}
	return acc;
}
void serve(int n) {
	int r = handle(n);
}
void worker(int n) {
	int i = idlers;
	i = i + 1;
	idlers = i;
	int w = handle(n);
	int j = idlers;
	j = j - 1;
	idlers = j;
	assert(idlers >= 0);
}
int main() {
	int s1 = spawn(serve, 1400);
	int s2 = spawn(serve, 1400);
	join(s1);
	join(s2);
	int t1 = spawn(worker, 120);
	int t2 = spawn(worker, 120);
	join(t1);
	join(t2);
	return idlers;
}`,
	FaultKinds: []vm.FaultKind{vm.FaultAssert},
	IdealLines: []string{
		"int i = idlers;",
		"i = i + 1;",
		"idlers = i;",
		"int j = idlers;",
		"j = j - 1;",
		"idlers = j;",
		"assert(idlers >= 0);",
	},
	IdealOrder: [][2]string{
		{"int i = idlers;", "idlers = i;"},
		{"idlers = j;", "assert(idlers >= 0);"},
	},
	PreemptMean: 2, Endpoints: 30,
})

// Apache2 is bug #25520: two request threads append to the shared log
// buffer with an unsynchronized position counter (WW race); interleaved
// writes corrupt the log.
var Apache2 = register(&Bug{
	Name: "apache-2", Software: "Apache httpd", Version: "2.0.48", BugID: "25520", RealLOC: 169747,
	Class: "concurrency, data race (WW)", Concurrency: true,
	Fix: "protect the log buffer position with a mutex so entries cannot be overwritten",
	Source: `global int* logbuf;
global int logpos = 0;
int handle(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		acc = acc + (i * 31 + 5) % 23;
	}
	return acc;
}
void logger(int n) {
	for (int k = 0; k < n; k++) {
		int w = handle(45);
		int p = logpos;
		logbuf[p] = k + 1;
		logpos = p + 1;
	}
}
void serve(int n) {
	int r = handle(n);
}
int main() {
	logbuf = malloc(1600);
	int s1 = spawn(serve, 1400);
	int s2 = spawn(serve, 1400);
	join(s1);
	join(s2);
	int t1 = spawn(logger, 18);
	int t2 = spawn(logger, 18);
	join(t1);
	join(t2);
	assert(logpos == 36);
	return logpos;
}`,
	FaultKinds: []vm.FaultKind{vm.FaultAssert},
	IdealLines: []string{
		"for (int k = 0; k < n; k++) {",
		"int p = logpos;",
		"logpos = p + 1;",
		"assert(logpos == 36);",
	},
	IdealOrder: [][2]string{
		{"int p = logpos;", "logpos = p + 1;"},
		{"logpos = p + 1;", "assert(logpos == 36);"},
	},
	PreemptMean: 2, Endpoints: 30,
})

// Apache3 is bug #21287 (Fig. 8): the decrement-check-free triplet on the
// cache object's reference count is not atomic (RWR), so two threads can
// both observe zero and both free the object.
var Apache3 = register(&Bug{
	Name: "apache-3", Software: "Apache httpd", Version: "2.0.48", BugID: "21287", RealLOC: 169747,
	Class: "concurrency, double free (RWR)", Concurrency: true,
	Fix: "execute the decrement-check-free triplet atomically",
	Source: `struct object { int refcnt; int complete; int* data; };
global struct object* obj;
int handle(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		acc = acc + (i * 13 + 7) % 17;
	}
	return acc;
}
void serve(int n) {
	int r = handle(n);
}
void decref(int arg) {
	if (obj->complete == 0) {
		int r = obj->refcnt;
		r = r - 1;
		obj->refcnt = r;
		int pause = handle(9);
		if (obj->refcnt == 0) {
			free(obj->data);
		}
	}
}
int main() {
	int s1 = spawn(serve, 1300);
	int s2 = spawn(serve, 1300);
	join(s1);
	join(s2);
	obj = malloc(sizeof(object));
	obj->refcnt = 2;
	obj->complete = 0;
	obj->data = malloc(16);
	int t1 = spawn(decref, 0);
	int t2 = spawn(decref, 0);
	join(t1);
	join(t2);
	return 0;
}`,
	FaultKinds: []vm.FaultKind{vm.FaultDoubleFree},
	IdealLines: []string{
		"if (obj->complete == 0) {",
		"int r = obj->refcnt;",
		"r = r - 1;",
		"obj->refcnt = r;",
		"if (obj->refcnt == 0) {",
		"free(obj->data);",
		"obj->refcnt = 2;",
		"obj->data = malloc(16);",
	},
	IdealOrder: [][2]string{
		{"int r = obj->refcnt;", "free(obj->data);"},
		{"obj->refcnt = r;", "if (obj->refcnt == 0) {"},
	},
	PreemptMean: 2, Endpoints: 30,
})

// Apache4 is bug #21285: a cache entry is freed by the expiry path while
// a request thread still holds a pointer into it (use after free).
var Apache4 = register(&Bug{
	Name: "apache-4", Software: "Apache httpd", Version: "2.0.46", BugID: "21285", RealLOC: 168574,
	Class: "concurrency, use after free", Concurrency: true,
	Fix: "reference-count cache entries so expiry cannot free an entry in use",
	Source: `struct entry { int key; int* data; };
global struct entry* cache;
global int hits = 0;
int handle(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		acc = acc + (i * 11 + 3) % 13;
	}
	return acc;
}
void reader(int arg) {
	struct entry* e = cache;
	int w = handle(60);
	hits = hits + e->key;
}
void expire(int arg) {
	int w = handle(55);
	free(cache);
}
void expire_warm(int n) {
	int r = handle(n);
}
int main() {
	int s1 = spawn(expire_warm, 1400);
	int s2 = spawn(expire_warm, 1400);
	join(s1);
	join(s2);
	cache = malloc(sizeof(entry));
	cache->key = 5;
	cache->data = malloc(16);
	int r = spawn(reader, 0);
	int x = spawn(expire, 0);
	join(r);
	join(x);
	return hits;
}`,
	FaultKinds: []vm.FaultKind{vm.FaultUseAfterFree},
	IdealLines: []string{
		"struct entry* e = cache;",
		"hits = hits + e->key;",
		"cache = malloc(sizeof(entry));",
		"cache->key = 5;",
		"free(cache);",
	},
	IdealOrder: [][2]string{
		{"struct entry* e = cache;", "hits = hits + e->key;"},
		{"free(cache);", "hits = hits + e->key;"},
	},
	PreemptMean: 3, Endpoints: 30,
})

// Cppcheck1 is bug #3238: the token-list pattern matcher dereferences the
// token after "if" without checking that the list continues; an input
// ending right after "if" crashes it.
var Cppcheck1 = register(&Bug{
	Name: "cppcheck-1", Software: "Cppcheck", Version: "1.52", BugID: "3238", RealLOC: 86215,
	Class: "sequential, null dereference",
	Fix:   "check Token::next() for null before matching the pattern tail",
	Source: `struct token { int ch; struct token* next; };
global struct token* head;
global int checks = 0;
struct token* tokenize(string s) {
	struct token* first = null;
	struct token* last = null;
	int i = 0;
	int c = s[i];
	while (c != 0) {
		struct token* t = malloc(sizeof(token));
		t->ch = c;
		t->next = null;
		if (first == null) { first = t; } else { last->next = t; }
		last = t;
		i = i + 1;
		c = s[i];
	}
	return first;
}
void check_if(struct token* tok) {
	while (tok != null) {
		if (tok->ch == 105) {
			struct token* n = tok->next;
			checks = checks + n->next->ch;
		}
		tok = tok->next;
	}
}
int preprocess(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		acc = acc + (i * 41 + 17) % 37;
	}
	return acc;
}
int main() {
	int warm = preprocess(6000);
	string src = input_str(0);
	head = tokenize(src);
	check_if(head);
	return checks;
}`,
	Workloads: []vm.Workload{
		{Strs: []string{"while(x) while(y) z"}},
		{Strs: []string{"for(a) b = c + d"}},
		{Strs: []string{"return x + y"}},
		{Strs: []string{"count the last if"}}, // ends right after "if": crash
	},
	FaultKinds: []vm.FaultKind{vm.FaultNullDeref},
	IdealLines: []string{
		"if (tok->ch == 105) {",
		"struct token* n = tok->next;",
		"checks = checks + n->next->ch;",
		"string src = input_str(0);",
	},
	IdealOrder: [][2]string{
		{"struct token* n = tok->next;", "checks = checks + n->next->ch;"},
	},
	Endpoints: 20,
})

// Cppcheck2 is bug #2782: nesting depth is used as an array index without
// a bound check; deeply nested input indexes past the array.
var Cppcheck2 = register(&Bug{
	Name: "cppcheck-2", Software: "Cppcheck", Version: "1.48", BugID: "2782", RealLOC: 76009,
	Class: "sequential, out of bounds",
	Fix:   "bound the nesting depth before indexing the per-depth counters",
	Source: `global int* counts;
int preprocess(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		acc = acc + (i * 43 + 19) % 41;
	}
	return acc;
}
int main() {
	int warm = preprocess(6000);
	counts = malloc(80);
	string s = input_str(0);
	int n = strlen(s);
	int depth = 0;
	int i = 0;
	while (i < n) {
		int c = s[i];
		if (c == 40) { depth = depth + 1; }
		if (c == 41) { depth = depth - 1; }
		counts[depth] = counts[depth] + 1;
		i = i + 1;
	}
	return counts[0];
}`,
	Workloads: []vm.Workload{
		{Strs: []string{"f(a(b))"}},
		{Strs: []string{"((x)) + ((y))"}},
		{Strs: []string{"plain text"}},
		{Strs: []string{"((((((((((deep))))))))))"}}, // depth 10: off the end
	},
	FaultKinds: []vm.FaultKind{vm.FaultOutOfBounds},
	IdealLines: []string{
		"int depth = 0;",
		"while (i < n) {",
		"int c = s[i];",
		"if (c == 40) { depth = depth + 1; }",
		"if (c == 41) { depth = depth - 1; }",
		"counts[depth] = counts[depth] + 1;",
		"string s = input_str(0);",
		"counts = malloc(80);",
	},
	IdealOrder: [][2]string{
		{"counts = malloc(80);", "counts[depth] = counts[depth] + 1;"},
	},
	Endpoints: 20,
})

// Curl is bug #965 (Fig. 7): a URL with unbalanced braces leaves
// urls->current null and strlen(NULL) segfaults.
var Curl = register(&Bug{
	Name: "curl", Software: "Curl", Version: "7.21", BugID: "965", RealLOC: 81658,
	Class: "sequential, data-dependent segfault",
	Fix:   "reject URLs with unbalanced braces during glob parsing",
	Source: `global string current;
int transfer(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		acc = acc + (i * 37 + 13) % 29;
	}
	return acc;
}
int next_url(string urls) {
	int depth = 0;
	int i = 0;
	int c = urls[0];
	while (c != 0) {
		if (c == 123) { depth = depth + 1; }
		if (c == 125) { depth = depth - 1; }
		i = i + 1;
		c = urls[i];
	}
	if (depth > 0) {
		current = null;
	}
	return strlen(current);
}
int main() {
	int warm = transfer(6000);
	string url = input_str(0);
	current = url;
	int n = next_url(url);
	return n;
}`,
	Workloads: []vm.Workload{
		{Strs: []string{"http://site/{alpha,beta}/file"}},
		{Strs: []string{"http://site/{}{"}}, // unbalanced: crash
		{Strs: []string{"http://site/{a}{b}"}},
		{Strs: []string{"http://site/plain"}},
	},
	FaultKinds: []vm.FaultKind{vm.FaultNullDeref},
	IdealLines: []string{
		"string url = input_str(0);",
		"current = url;",
		"if (depth > 0) {",
		"current = null;",
		"return strlen(current);",
	},
	IdealOrder: [][2]string{
		{"current = url;", "current = null;"},
		{"current = null;", "return strlen(current);"},
	},
	Endpoints: 20,
})

// Transmission is bug #1818: an I/O worker uses the session handle before
// the initializer publishes it (order violation / RW race).
var Transmission = register(&Bug{
	Name: "transmission", Software: "Transmission", Version: "1.42", BugID: "1818", RealLOC: 59977,
	Class: "concurrency, order violation (RW)", Concurrency: true, SingleThreadSketch: true,
	Fix: "initialize the session fully before starting the I/O worker",
	Source: `struct session { int* bandwidth; int peers; };
global struct session* sess;
global int rate = 0;
int handle(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		acc = acc + (i * 19 + 1) % 7;
	}
	return acc;
}
void io_worker(int arg) {
	int w = handle(40);
	struct session* s = sess;
	rate = s->bandwidth[0];
}
void net_worker(int n) {
	int r = handle(n);
}
int main() {
	int s1 = spawn(net_worker, 1400);
	int s2 = spawn(net_worker, 1400);
	join(s1);
	join(s2);
	int t = spawn(io_worker, 0);
	int w = handle(42);
	sess = malloc(sizeof(session));
	sess->bandwidth = malloc(8);
	sess->bandwidth[0] = 100;
	join(t);
	return rate;
}`,
	FaultKinds: []vm.FaultKind{vm.FaultNullDeref},
	IdealLines: []string{
		"struct session* s = sess;",
		"rate = s->bandwidth[0];",
		"sess = malloc(sizeof(session));",
	},
	IdealOrder: [][2]string{
		{"struct session* s = sess;", "rate = s->bandwidth[0];"},
	},
	PreemptMean: 3, Endpoints: 30,
})

// SQLite is bug #1672: a shared-cache page is released by one connection
// while another is still reading it (order violation, use after free).
var SQLite = register(&Bug{
	Name: "sqlite", Software: "SQLite", Version: "3.3.3", BugID: "1672", RealLOC: 47150,
	Class: "concurrency, order violation (WR)", Concurrency: true,
	Fix: "hold the shared-cache lock across the page read",
	Source: `global int* page;
global int sum = 0;
int handle(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		acc = acc + (i * 29 + 11) % 19;
	}
	return acc;
}
void reader(int arg) {
	int w = handle(58);
	sum = sum + page[0];
}
void releaser(int arg) {
	int w = handle(55);
	free(page);
}
void query_worker(int n) {
	int r = handle(n);
}
int main() {
	int q1 = spawn(query_worker, 1400);
	int q2 = spawn(query_worker, 1400);
	join(q1);
	join(q2);
	page = malloc(64);
	page[0] = 9;
	int r = spawn(reader, 0);
	int x = spawn(releaser, 0);
	join(r);
	join(x);
	return sum;
}`,
	FaultKinds: []vm.FaultKind{vm.FaultUseAfterFree},
	IdealLines: []string{
		"sum = sum + page[0];",
		"free(page);",
		"page = malloc(64);",
		"page[0] = 9;",
	},
	IdealOrder: [][2]string{
		{"free(page);", "sum = sum + page[0];"},
	},
	PreemptMean: 3, Endpoints: 30,
})

// Memcached is bug #127: the item reference count is updated with
// non-atomic read-modify-write sequences (RWW); an eviction racing with a
// get frees the item while the getter still uses it.
var Memcached = register(&Bug{
	Name: "memcached", Software: "Memcached", Version: "1.4.4", BugID: "127", RealLOC: 8182,
	Class: "concurrency, atomicity violation (RWW)", Concurrency: true,
	Fix: "use atomic reference-count updates (the fix introduced refcount CAS loops)",
	Source: `struct item { int refcnt; int* data; };
global struct item* it;
global int got = 0;
int handle(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		acc = acc + (i * 23 + 9) % 31;
	}
	return acc;
}
void getter(int arg) {
	int r = it->refcnt;
	r = r + 1;
	it->refcnt = r;
	got = it->data[0];
	int r2 = it->refcnt;
	r2 = r2 - 1;
	it->refcnt = r2;
}
void evictor(int arg) {
	int e1 = it->refcnt;
	e1 = e1 - 1;
	it->refcnt = e1;
	if (it->refcnt == 0) {
		free(it->data);
	}
}
void conn_worker(int n) {
	int r = handle(n);
}
int main() {
	int c1 = spawn(conn_worker, 1400);
	int c2 = spawn(conn_worker, 1400);
	join(c1);
	join(c2);
	it = malloc(sizeof(item));
	it->refcnt = 1;
	it->data = malloc(16);
	it->data[0] = 3;
	int g = spawn(getter, 0);
	int e = spawn(evictor, 0);
	join(g);
	join(e);
	return got;
}`,
	FaultKinds: []vm.FaultKind{vm.FaultUseAfterFree},
	IdealLines: []string{
		"int r = it->refcnt;",
		"it->refcnt = r;",
		"int e1 = it->refcnt;",
		"it->refcnt = e1;",
		"if (it->refcnt == 0) {",
		"got = it->data[0];",
		"free(it->data);",
		"it = malloc(sizeof(item));",
		"it->refcnt = 1;",
		"it->data = malloc(16);",
		"it->data[0] = 3;",
	},
	IdealOrder: [][2]string{
		{"free(it->data);", "got = it->data[0];"},
	},
	PreemptMean: 2, Endpoints: 30,
})

// Deadlock is the lock-order inversion from examples/deadlock, promoted
// into the registered suite: one thread locks giant then cache, the
// other locks cache then giant, and some schedules interleave the two
// acquisitions so every thread blocks forever. Gist handles failures
// beyond crashes — the VM turns the hang into a failure report whose
// identity includes the other blocked thread's program counter, and the
// sketch shows the lock statements of the cycle.
var Deadlock = register(&Bug{
	Name: "deadlock", Software: "Cache server (lock-order inversion)", Version: "1.0", BugID: "N/A", RealLOC: 58,
	Class: "concurrency, deadlock", Concurrency: true,
	Fix: "acquire giant and cache in a single global order everywhere",
	Source: `global int giant = 0;
global int cache = 0;
global int hits = 0;
int work(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) { acc = acc + i % 3; }
	return acc;
}
void request(int arg) {
	lock(&giant); int rg = 1;
	int w1 = work(8);
	lock(&cache); int rc = 1;
	hits = hits + 1;
	unlock(&cache);
	unlock(&giant);
}
void evict(int arg) {
	lock(&cache); int ec = 1;
	int w2 = work(8);
	lock(&giant); int eg = 1;
	hits = hits - 1;
	unlock(&giant);
	unlock(&cache);
}
int main() {
	int warm = work(2500);
	int r = spawn(request, 0);
	int s = work(10);
	int e = spawn(evict, 0);
	join(r);
	join(e);
	return hits;
}`,
	FaultKinds: []vm.FaultKind{vm.FaultDeadlock},
	IdealLines: []string{
		"lock(&giant); int rg = 1;",
		"lock(&cache); int rc = 1;",
		"lock(&cache); int ec = 1;",
		"lock(&giant); int eg = 1;",
	},
	IdealOrder: [][2]string{
		{"lock(&giant); int rg = 1;", "lock(&giant); int eg = 1;"},
		{"lock(&cache); int ec = 1;", "lock(&cache); int rc = 1;"},
	},
	PreemptMean: 3, Endpoints: 30,
})
