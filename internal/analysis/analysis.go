// Package analysis memoizes Gist's static-analysis artifacts: the TICFG
// (with its dominator and postdominator trees) per program, and the
// backward slice per (program, failing instruction).
//
// The paper's server performs static analysis once per failure, but the
// surrounding system re-derives the same artifacts constantly: every
// adaptive-slice-tracking iteration replans against the graph, deadlock
// diagnoses slice from every cycle participant, and the evaluation
// harness sweeps the same 11 programs across dozens of feature/sigma
// configurations. A compiled *ir.Program is immutable, so both artifacts
// are pure functions of their keys and can be computed exactly once per
// process.
//
// Concurrency: lookups are single-flight — concurrent requests for the
// same artifact share one computation and then read the shared result.
// Graphs are returned shared, because a built TICFG is read-only.
// Slices are returned as private clones, because refinement (§3.2.3)
// mutates the slice a diagnosis works on.
//
// Invalidation: none is needed — cache keys are live *ir.Program
// pointers and programs never change after ir finalizes them. The cache
// therefore pins cached programs for the life of the process; Reset
// exists for benchmarks that need cold-cache timings, not for
// correctness.
package analysis

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/slicer"
	"repro/internal/vm/bytecode"
)

type graphEntry struct {
	once sync.Once
	g    *cfg.TICFG
}

type sliceKey struct {
	prog *ir.Program
	id   int
}

type sliceEntry struct {
	once sync.Once
	sl   *slicer.Slice // pristine master; callers get clones
}

type bytecodeEntry struct {
	once sync.Once
	bp   *bytecode.Program
}

var (
	mu        sync.Mutex
	graphs    = make(map[*ir.Program]*graphEntry)
	slices    = make(map[sliceKey]*sliceEntry)
	bytecodes = make(map[*ir.Program]*bytecodeEntry)

	graphBuilds, graphHits       atomic.Int64
	sliceBuilds, sliceHits       atomic.Int64
	bytecodeBuilds, bytecodeHits atomic.Int64
	// Cumulative wall time spent inside cache-miss builds, the number
	// the telemetry layer reports as the offline static-analysis cost
	// (§5.3's "analysis time"). Hits cost nothing by design; only
	// misses accumulate here.
	graphBuildNS, sliceBuildNS, bytecodeBuildNS atomic.Int64
)

// Graph returns the memoized TICFG for p, building it on first use.
// The returned graph is shared: it is read-only after construction and
// must not be mutated.
func Graph(p *ir.Program) *cfg.TICFG {
	mu.Lock()
	e := graphs[p]
	if e == nil {
		e = &graphEntry{}
		graphs[p] = e
	}
	mu.Unlock()
	hit := true
	e.once.Do(func() {
		hit = false
		graphBuilds.Add(1)
		t0 := time.Now()
		e.g = cfg.BuildTICFG(p)
		graphBuildNS.Add(time.Since(t0).Nanoseconds())
	})
	if hit {
		graphHits.Add(1)
	}
	return e.g
}

// Slice returns the backward slice of p rooted at failingID, computed at
// most once per (program, PC) and returned as an independent clone that
// the caller may refine freely.
func Slice(p *ir.Program, failingID int) *slicer.Slice {
	mu.Lock()
	key := sliceKey{p, failingID}
	e := slices[key]
	if e == nil {
		e = &sliceEntry{}
		slices[key] = e
	}
	mu.Unlock()
	hit := true
	e.once.Do(func() {
		hit = false
		sliceBuilds.Add(1)
		t0 := time.Now()
		e.sl = slicer.Compute(Graph(p), failingID)
		sliceBuildNS.Add(time.Since(t0).Nanoseconds())
	})
	if hit {
		sliceHits.Add(1)
	}
	return e.sl.Clone()
}

// Bytecode returns the memoized bytecode compilation of p, building it
// on first use, and reports whether this call hit the cache. The
// returned program is shared safely across goroutines: its instruction
// stream is immutable after compilation and each Run draws a private
// pooled machine. Every fleet worker, scheduler lane, and service agent
// executing the same *ir.Program therefore pays compilation exactly
// once per process.
func Bytecode(p *ir.Program) (*bytecode.Program, bool) {
	mu.Lock()
	e := bytecodes[p]
	if e == nil {
		e = &bytecodeEntry{}
		bytecodes[p] = e
	}
	mu.Unlock()
	hit := true
	e.once.Do(func() {
		hit = false
		bytecodeBuilds.Add(1)
		t0 := time.Now()
		e.bp = bytecode.Compile(p)
		bytecodeBuildNS.Add(time.Since(t0).Nanoseconds())
	})
	if hit {
		bytecodeHits.Add(1)
	}
	return e.bp, hit
}

// Stats is a point-in-time snapshot of cache effectiveness, reported by
// the perf experiment and the telemetry metrics snapshot.
//
// GraphBuildNS and SliceBuildNS are cumulative wall time spent in
// cache-miss builds. A slice build that triggers the graph build
// includes that graph time (the slice cannot exist without it), so the
// two are not disjoint.
type Stats struct {
	GraphBuilds, GraphHits       int64
	SliceBuilds, SliceHits       int64
	BytecodeBuilds, BytecodeHits int64

	GraphBuildNS    int64
	SliceBuildNS    int64
	BytecodeBuildNS int64
}

// Snapshot returns the current cache counters.
func Snapshot() Stats {
	return Stats{
		GraphBuilds:     graphBuilds.Load(),
		GraphHits:       graphHits.Load(),
		SliceBuilds:     sliceBuilds.Load(),
		SliceHits:       sliceHits.Load(),
		BytecodeBuilds:  bytecodeBuilds.Load(),
		BytecodeHits:    bytecodeHits.Load(),
		GraphBuildNS:    graphBuildNS.Load(),
		SliceBuildNS:    sliceBuildNS.Load(),
		BytecodeBuildNS: bytecodeBuildNS.Load(),
	}
}

// Reset drops every cached artifact and zeroes the counters. It exists
// so benchmarks can measure cold-cache behavior; concurrent diagnoses
// already in flight keep their (still valid) references.
func Reset() {
	mu.Lock()
	graphs = make(map[*ir.Program]*graphEntry)
	slices = make(map[sliceKey]*sliceEntry)
	bytecodes = make(map[*ir.Program]*bytecodeEntry)
	mu.Unlock()
	graphBuilds.Store(0)
	graphHits.Store(0)
	sliceBuilds.Store(0)
	sliceHits.Store(0)
	bytecodeBuilds.Store(0)
	bytecodeHits.Store(0)
	graphBuildNS.Store(0)
	sliceBuildNS.Store(0)
	bytecodeBuildNS.Store(0)
}
