package analysis

import (
	"sync"
	"testing"

	"repro/internal/ir"
	"repro/internal/slicer"
)

const testProg = `global int g;
int f(int x) {
	int y = x * 2;
	g = y;
	return y;
}
int main() {
	int a = input(0);
	int b = f(a);
	assert(b < 100);
	return b;
}`

func compile(t *testing.T) *ir.Program {
	t.Helper()
	return ir.MustCompile("analysis_test.mc", testProg)
}

func TestGraphMemoized(t *testing.T) {
	Reset()
	p := compile(t)
	g1 := Graph(p)
	g2 := Graph(p)
	if g1 != g2 {
		t.Fatalf("Graph returned distinct graphs for the same program")
	}
	if g1.Prog != p {
		t.Fatalf("Graph built for the wrong program")
	}
	s := Snapshot()
	if s.GraphBuilds != 1 || s.GraphHits != 1 {
		t.Fatalf("want 1 build + 1 hit, got %+v", s)
	}
	// A different program gets its own graph.
	p2 := compile(t)
	if Graph(p2) == g1 {
		t.Fatalf("distinct programs share a graph")
	}
}

func TestSliceClonesAreIndependent(t *testing.T) {
	Reset()
	p := compile(t)
	root := findAssert(t, p)
	s1 := Slice(p, root)
	s2 := Slice(p, root)
	if s1 == s2 {
		t.Fatalf("Slice returned the same object twice")
	}
	if len(s1.IDs) != len(s2.IDs) {
		t.Fatalf("clones differ: %v vs %v", s1.IDs, s2.IDs)
	}
	// Refining one clone must not leak into the next caller's view.
	novel := -1
	for id := range p.Instrs {
		if !s1.Contains(id) {
			novel = id
			break
		}
	}
	if novel == -1 {
		t.Skip("slice covers whole program; nothing to refine")
	}
	if !s1.Add(novel) {
		t.Fatalf("Add(%d) reported already-present", novel)
	}
	s3 := Slice(p, root)
	if s3.Contains(novel) {
		t.Fatalf("refinement of one clone contaminated the cache")
	}
	s := Snapshot()
	if s.SliceBuilds != 1 || s.SliceHits != 2 {
		t.Fatalf("want 1 build + 2 hits, got %+v", s)
	}
}

func TestSliceMatchesDirectCompute(t *testing.T) {
	Reset()
	p := compile(t)
	root := findAssert(t, p)
	got := Slice(p, root)
	want := slicer.Compute(Graph(p), root)
	if len(got.IDs) != len(want.IDs) {
		t.Fatalf("cached slice differs from direct compute: %v vs %v", got.IDs, want.IDs)
	}
	for i := range got.IDs {
		if got.IDs[i] != want.IDs[i] {
			t.Fatalf("cached slice differs at %d: %v vs %v", i, got.IDs, want.IDs)
		}
	}
}

func TestBytecodeMemoized(t *testing.T) {
	Reset()
	p := compile(t)
	bp1, hit1 := Bytecode(p)
	bp2, hit2 := Bytecode(p)
	if bp1 != bp2 {
		t.Fatalf("Bytecode returned distinct programs for the same IR")
	}
	if hit1 || !hit2 {
		t.Fatalf("want miss then hit, got hit1=%v hit2=%v", hit1, hit2)
	}
	if bp1.IR() != p {
		t.Fatalf("Bytecode compiled the wrong program")
	}
	s := Snapshot()
	if s.BytecodeBuilds != 1 || s.BytecodeHits != 1 {
		t.Fatalf("want 1 build + 1 hit, got %+v", s)
	}
	// A different program gets its own compilation.
	p2 := compile(t)
	if bp, _ := Bytecode(p2); bp == bp1 {
		t.Fatalf("distinct programs share a bytecode compilation")
	}
}

func TestConcurrentSingleFlight(t *testing.T) {
	Reset()
	p := compile(t)
	root := findAssert(t, p)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Graph(p)
			Slice(p, root)
			Bytecode(p)
		}()
	}
	wg.Wait()
	s := Snapshot()
	if s.GraphBuilds != 1 {
		t.Errorf("graph built %d times under concurrency", s.GraphBuilds)
	}
	if s.SliceBuilds != 1 {
		t.Errorf("slice built %d times under concurrency", s.SliceBuilds)
	}
	if s.BytecodeBuilds != 1 {
		t.Errorf("bytecode built %d times under concurrency", s.BytecodeBuilds)
	}
}

// findAssert returns the ID of the assert callsite — a realistic slice
// root (the failing instruction of an assert failure).
func findAssert(t *testing.T, p *ir.Program) int {
	t.Helper()
	for _, in := range p.Instrs {
		if in.Op == ir.OpCallB && in.Callee == "assert" {
			return in.ID
		}
	}
	t.Fatal("no assert in test program")
	return -1
}
