package core

import (
	"sort"

	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/hw/pt"
	"repro/internal/hw/watch"
	"repro/internal/ir"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// RunSpec identifies one production run at one endpoint.
type RunSpec struct {
	EndpointID  int
	Seed        int64
	Workload    vm.Workload
	PreemptMean int
	MaxSteps    int64
}

// RunTrace is what an endpoint ships back to the Gist server for one run:
// the run outcome, the decoded control flow of the tracked regions, the
// watchpoint trap log (values + total order of shared accesses), and the
// overhead meter.
type RunTrace struct {
	Spec    RunSpec
	Outcome *vm.Outcome

	// Flow holds, per thread (= per PT core), the decoded instruction
	// sequences of the traced regions, concatenated in per-core order.
	Flow map[int][]int
	// Branches holds, per thread, the conditional-branch outcomes the
	// decoder recovered from TNT bits.
	Branches map[int][]pt.BranchObs
	// Executed is the set of instructions observed by control-flow
	// tracking (union of Flow).
	Executed map[int]bool
	// Traps is the watchpoint access log in global clock order.
	Traps []watch.Trap
	// WatchMisses counts shared accesses in the watch group that could
	// not be watched because all debug registers were armed (triggers
	// cooperative partitioning pressure).
	WatchMisses int

	Meter cost.Meter
	// DecodeErr reports a PT decode problem (trace corruption) that
	// salvage could not recover from; the run still contributes its
	// outcome, but the server must not feed its flow/branch data to
	// predictor extraction.
	DecodeErr error
	// SalvagedCores counts cores whose corrupt trace was partially
	// recovered by PSB resynchronization (SalvageDecode).
	SalvagedCores int
	// Late marks a report that arrived past the server's per-run
	// deadline (a hung endpoint); the server discards it.
	Late bool
	// DroppedTraps / ReorderedTraps count trap-log damage injected in
	// flight, for fleet-health accounting.
	DroppedTraps   int
	ReorderedTraps int
	// Truncated names the RunTrace field a truncation fault ate.
	Truncated faults.TruncateKind
}

// Failed reports whether the traced run failed.
func (rt *RunTrace) Failed() bool { return rt.Outcome.Failed }

// RunInstrumented executes one production run under the plan's
// instrumentation and collects the traces — the Gist client (Fig. 2,
// steps 2 and 4) — on a perfectly reliable endpoint.
func RunInstrumented(plan *Plan, spec RunSpec) *RunTrace {
	return RunInstrumentedFaults(plan, spec, faults.Decision{})
}

// RunInstrumentedFaults is RunInstrumented on a fallible endpoint: the
// decision injects the production failure modes of the fleet (endpoint
// crash, hang, ring-buffer overflow, trace corruption, trap loss and
// reordering, report truncation). A zero decision injects nothing and
// behaves byte-identically to RunInstrumented. A crashed endpoint
// returns nil: its report never reaches the server.
func RunInstrumentedFaults(plan *Plan, spec RunSpec, dec faults.Decision) *RunTrace {
	if dec.Crash {
		return nil
	}
	rt := &RunTrace{
		Spec:     spec,
		Flow:     make(map[int][]int),
		Branches: make(map[int][]pt.BranchObs),
		Executed: make(map[int]bool),
	}
	tracer := pt.NewTracer(pt.Config{BufBytes: dec.BufBytes(0)}, &rt.Meter)
	unit := watch.NewUnit(&rt.Meter)
	group := plan.WatchGroupFor(spec.EndpointID)

	// pendingStop[tid] holds the instruction after which tracing must be
	// disabled; the disable is performed when the thread takes its next
	// step so that the instruction's own packets are recorded first.
	pendingStop := make(map[int]int)
	lastTraced := make(map[int]int)

	// In the §6 extended-PT mode, tracing is simply always on: the whole
	// point of the extension is that trace cost is low enough to keep PT
	// running, with data packets making watchpoints unnecessary.
	alwaysOn := plan.Feats.ExtendedPT && plan.Feats.ControlFlow
	hooks := vm.Hooks{
		OnStep: func(t *vm.Thread, in *ir.Instr, clock int64) {
			rt.Meter.AddInstr(1)
			if !plan.Feats.ControlFlow {
				return
			}
			if alwaysOn {
				if !tracer.Enabled(t.ID) {
					tracer.Enable(t.ID, in.ID)
				}
				tracer.InstrRetired(t.ID)
				lastTraced[t.ID] = in.ID
				return
			}
			if stopIP, ok := pendingStop[t.ID]; ok {
				tracer.Disable(t.ID, stopIP)
				delete(pendingStop, t.ID)
			}
			if plan.StartAt[in.ID] && !tracer.Enabled(t.ID) {
				tracer.Enable(t.ID, in.ID)
			}
			if tracer.Enabled(t.ID) {
				tracer.InstrRetired(t.ID)
				lastTraced[t.ID] = in.ID
				if plan.StopAfter[in.ID] {
					pendingStop[t.ID] = in.ID
				}
			}
		},
		OnBranch: func(t *vm.Thread, in *ir.Instr, taken bool, clock int64) {
			if plan.Feats.ControlFlow {
				tracer.Branch(t.ID, in.ID, taken)
			}
		},
		OnIndirect: func(t *vm.Thread, in *ir.Instr, target *ir.Instr, clock int64) {
			if plan.Feats.ControlFlow && (in.Op == ir.OpCall || in.Op == ir.OpRet) {
				tracer.TIP(t.ID, in.ID, target.ID)
			}
		},
	}
	if plan.Feats.DataFlow && plan.Feats.ExtendedPT && plan.Feats.ControlFlow {
		// Extended-PT data flow (§6): every shared access inside a traced
		// region becomes a PTW packet; no debug registers, no groups.
		data := func(t *vm.Thread, in *ir.Instr, addr, val, size int64, clock int64, isWrite bool) {
			if !vm.IsStackAddr(addr) {
				tracer.Data(t.ID, in.ID, addr, val, size, isWrite, clock)
			}
		}
		hooks.OnLoad = func(t *vm.Thread, in *ir.Instr, addr, val, size int64, clock int64) {
			data(t, in, addr, val, size, clock, false)
		}
		hooks.OnStore = func(t *vm.Thread, in *ir.Instr, addr, val, size int64, clock int64) {
			data(t, in, addr, val, size, clock, true)
		}
	} else if plan.Feats.DataFlow {
		armedClass := make(map[string]bool)
		access := func(t *vm.Thread, in *ir.Instr, addr, val, size int64, clock int64, isWrite bool) {
			// Arm a watchpoint the first time a tracked access touches its
			// location class (conceptually inserted right before the
			// access, so the triggering access itself traps too). One
			// debug register per class: the watchpoint watches "the
			// variable", so an array walk does not drain the register
			// file.
			if group[in.ID] && !vm.IsStackAddr(addr) && !unit.Watched(addr, size) {
				cls := plan.Classes[in.ID]
				if !armedClass[cls] {
					if _, err := unit.SetAny(watch.Watchpoint{Addr: addr, Size: size, Kind: watch.KindReadWrite}); err != nil {
						rt.WatchMisses++
					} else {
						armedClass[cls] = true
					}
				}
			}
			unit.CheckAccess(t.ID, in.ID, addr, size, val, isWrite, clock)
		}
		hooks.OnLoad = func(t *vm.Thread, in *ir.Instr, addr, val, size int64, clock int64) {
			access(t, in, addr, val, size, clock, false)
		}
		hooks.OnStore = func(t *vm.Thread, in *ir.Instr, addr, val, size int64, clock int64) {
			access(t, in, addr, val, size, clock, true)
		}
	}

	execSpan := plan.Telemetry.StartSpan(telemetry.PhaseRunExec)
	rt.Outcome = plan.Engine.exec(plan.Prog, vm.Config{
		Seed:        spec.Seed,
		MaxSteps:    spec.MaxSteps,
		PreemptMean: spec.PreemptMean,
		Workload:    spec.Workload,
		Hooks:       hooks,
	}, plan.Telemetry)
	execSpan.End()

	if plan.Feats.ControlFlow {
		decodeSpan := plan.Telemetry.StartSpan(telemetry.PhaseDecode)
		for _, core := range tracer.Cores() {
			if tracer.Enabled(core) {
				tracer.Disable(core, lastTraced[core])
			}
			buf, wrapped := tracer.CoreBytes(core)
			buf = dec.CorruptTrace(buf)
			segs, branches, data, err := pt.DecodeFull(plan.Prog, buf, wrapped)
			if err != nil {
				// Corrupt trace: salvage the PSB-delimited chunks that
				// still parse and replay; only when nothing survives is
				// the core's flow abandoned (DecodeErr tells the server
				// to keep this run away from predictor extraction).
				var srep pt.SalvageReport
				segs, branches, data, srep = pt.SalvageDecode(plan.Prog, buf, wrapped)
				if !srep.Recovered() {
					rt.DecodeErr = err
					continue
				}
				rt.SalvagedCores++
			}
			rt.Branches[core] = branches
			for _, seg := range segs {
				rt.Flow[core] = append(rt.Flow[core], seg.Instrs...)
				for _, id := range seg.Instrs {
					rt.Executed[id] = true
				}
			}
			// Extended-PT data packets become the access log, exactly as
			// watchpoint traps would (the TSC is the total order).
			for _, d := range data {
				rt.Traps = append(rt.Traps, watch.Trap{
					Addr: d.Addr, Val: d.Val, Size: d.Size,
					IsWrite: d.IsWrite, InstrID: d.IP, Thread: core, Clock: d.TSC,
				})
			}
		}
		sort.Slice(rt.Traps, func(i, j int) bool { return rt.Traps[i].Clock < rt.Traps[j].Clock })
		decodeSpan.End()
	}
	// The decoded flow now lives in the RunTrace; the raw ring buffers
	// can go back to the pool for the next run on this worker.
	tracer.Release()
	watchSpan := plan.Telemetry.StartSpan(telemetry.PhaseWatch)
	if plan.Feats.DataFlow && !plan.Feats.ExtendedPT {
		rt.Traps = unit.Traps()
	}
	unit.Release()
	rt.applyTransitFaults(dec)
	watchSpan.End()
	return rt
}

// applyTransitFaults degrades the finished RunTrace the way the network
// path between endpoint and server can: dropped/reordered trap records,
// truncated fields, and a hung report that will miss the deadline.
func (rt *RunTrace) applyTransitFaults(dec faults.Decision) {
	if !dec.Any() {
		return
	}
	rt.Traps, rt.DroppedTraps, rt.ReorderedTraps = dec.ApplyTraps(rt.Traps)
	switch dec.Truncate {
	case faults.TruncateOutcome:
		rt.Outcome = nil
	case faults.TruncateTraps:
		rt.Traps = rt.Traps[:dec.TruncateAt(len(rt.Traps))]
	case faults.TruncateBranches:
		var cores []int
		for core := range rt.Branches {
			cores = append(cores, core)
		}
		sort.Ints(cores)
		if len(cores) > 0 {
			delete(rt.Branches, dec.PickCore(cores))
		}
	}
	rt.Truncated = dec.Truncate
	rt.Late = dec.Hang
}

// FilterTraps keeps only traps on addresses that some relevant
// instruction (per isRelevant) accessed in this run. The watchpoint unit
// gives this behavior in hardware (only slice-armed addresses trap); the
// extended-PT mode logs every shared access in traced regions, so the
// server applies the same address-relevance filter in software.
func (rt *RunTrace) FilterTraps(isRelevant func(instrID int) bool) {
	relevant := make(map[int64]bool)
	for _, tr := range rt.Traps {
		if isRelevant(tr.InstrID) {
			relevant[tr.Addr] = true
		}
	}
	var kept []watch.Trap
	for _, tr := range rt.Traps {
		if relevant[tr.Addr] {
			kept = append(kept, tr)
		}
	}
	rt.Traps = kept
}

// BranchOutcomes returns each traced conditional branch's observed
// outcomes (a branch can take both arms in one run), straight from the
// decoder's TNT consumption.
func (rt *RunTrace) BranchOutcomes(prog *ir.Program) map[int]map[bool]bool {
	out := make(map[int]map[bool]bool)
	for _, obs := range rt.Branches {
		for _, o := range obs {
			m := out[o.IP]
			if m == nil {
				m = make(map[bool]bool)
				out[o.IP] = m
			}
			m[o.Taken] = true
		}
	}
	return out
}
