package core

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/stats"
)

// PredictorKind classifies failure predictors (§3.3).
type PredictorKind int

// Predictor kinds: branch outcomes, data values, and inter-thread memory
// access patterns (atomicity violations RWR/WWR/RWW/WRW and race orders
// WW/WR/RW).
const (
	PredBranch PredictorKind = iota
	PredValue
	PredOrder
)

var predKindNames = map[PredictorKind]string{
	PredBranch: "branch",
	PredValue:  "value",
	PredOrder:  "order",
}

// String returns the kind name.
func (k PredictorKind) String() string { return predKindNames[k] }

// Predictor is one failure-predicting event.
type Predictor struct {
	Kind PredictorKind
	// Key uniquely identifies the predictor across runs (it names static
	// statements plus the predicate on them, never runtime addresses).
	Key string
	// Desc is the human-readable form shown in sketches.
	Desc string
	// InstrIDs are the statements the predictor involves, in pattern order.
	InstrIDs []int
	// Value is the data value for PredValue predictors.
	Value int64
	// Pattern is "RWR", "WW", ... for PredOrder; "taken"/"not-taken" for
	// PredBranch.
	Pattern string
}

// Ranked is a predictor with its statistics over the observed runs.
type Ranked struct {
	Predictor
	Fail    int // failing runs in which the predictor held
	Succ    int // successful runs in which the predictor held
	P, R, F float64
}

// ExtractPredicates returns the set of predictors that hold in one run.
// Runs whose PT trace failed to decode (DecodeErr) contribute no branch
// predictors even if stale branch data is still attached — corrupt TNT
// bits make convincing-looking lies — and traps naming instructions
// outside the program are skipped rather than trusted.
func ExtractPredicates(prog *ir.Program, rt *RunTrace) map[string]Predictor {
	out := make(map[string]Predictor)
	valid := func(id int) bool { return id >= 0 && id < len(prog.Instrs) }

	// Branch predictors from decoded control flow.
	if rt.DecodeErr == nil {
		for id, outcomes := range rt.BranchOutcomes(prog) {
			if !valid(id) {
				continue
			}
			for taken := range outcomes {
				pat := "not-taken"
				if taken {
					pat = "taken"
				}
				p := Predictor{
					Kind:     PredBranch,
					Key:      fmt.Sprintf("br:%d:%s", id, pat),
					Desc:     fmt.Sprintf("branch at %s %s", prog.Instrs[id].Pos, pat),
					InstrIDs: []int{id},
					Pattern:  pat,
				}
				out[p.Key] = p
			}
		}
	}

	// Value predictors from watchpoint traps: the value read or written
	// by each watched statement — both the exact value and its range
	// class (§6's future-work range/inequality predicates: exact values
	// like heap addresses vary across runs, but "negative", "zero", and
	// "positive" aggregate).
	for _, tr := range rt.Traps {
		if !valid(tr.InstrID) {
			continue
		}
		p := Predictor{
			Kind:     PredValue,
			Key:      fmt.Sprintf("val:%d:%d", tr.InstrID, tr.Val),
			Desc:     fmt.Sprintf("%s == %d", describeAccess(prog, tr.InstrID), tr.Val),
			InstrIDs: []int{tr.InstrID},
			Value:    tr.Val,
		}
		out[p.Key] = p
		rng, sym := rangeClass(tr.Val)
		// Range predictors deliberately carry no Value: the pattern is the
		// class, and stamping whichever concrete value happened to
		// introduce the key would make the metadata depend on observation
		// order (batch iterates failing-then-successful; streaming sees
		// admission order).
		r := Predictor{
			Kind:     PredValue,
			Key:      fmt.Sprintf("rng:%d:%s", tr.InstrID, rng),
			Desc:     fmt.Sprintf("%s %s", describeAccess(prog, tr.InstrID), sym),
			InstrIDs: []int{tr.InstrID},
			Pattern:  rng,
		}
		out[r.Key] = r
	}

	// Order predictors: per watched address, adjacent cross-thread access
	// pairs and t1-t2-t1 triples over the totally ordered trap log
	// (Fig. 5 and Fig. 6).
	byAddr := make(map[int64][]int) // address -> indexes into rt.Traps
	for i, tr := range rt.Traps {
		if !valid(tr.InstrID) {
			continue
		}
		byAddr[tr.Addr] = append(byAddr[tr.Addr], i)
	}
	var addrs []int64
	for a := range byAddr {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	letter := func(w bool) string {
		if w {
			return "W"
		}
		return "R"
	}
	for _, a := range addrs {
		seq := byAddr[a]
		for k := 0; k+1 < len(seq); k++ {
			t1, t2 := rt.Traps[seq[k]], rt.Traps[seq[k+1]]
			if t1.Thread == t2.Thread {
				continue
			}
			pat := letter(t1.IsWrite) + letter(t2.IsWrite)
			if pat == "RR" {
				continue // two reads do not conflict (the paper's race patterns are WW, WR, RW)
			}
			p := Predictor{
				Kind:     PredOrder,
				Key:      fmt.Sprintf("ord:%s:%d<%d", pat, t1.InstrID, t2.InstrID),
				Desc:     fmt.Sprintf("%s: %s before %s", pat, describeAccess(prog, t1.InstrID), describeAccess(prog, t2.InstrID)),
				InstrIDs: []int{t1.InstrID, t2.InstrID},
				Pattern:  pat,
			}
			out[p.Key] = p
		}
		for k := 0; k+2 < len(seq); k++ {
			t1, t2, t3 := rt.Traps[seq[k]], rt.Traps[seq[k+1]], rt.Traps[seq[k+2]]
			if t1.Thread != t3.Thread || t1.Thread == t2.Thread {
				continue
			}
			pat := letter(t1.IsWrite) + letter(t2.IsWrite) + letter(t3.IsWrite)
			if pat != "RWR" && pat != "WWR" && pat != "RWW" && pat != "WRW" {
				continue // only the paper's single-variable atomicity patterns (Fig. 5)
			}
			p := Predictor{
				Kind: PredOrder,
				Key:  fmt.Sprintf("ord:%s:%d,%d,%d", pat, t1.InstrID, t2.InstrID, t3.InstrID),
				Desc: fmt.Sprintf("%s atomicity violation: %s / %s / %s", pat,
					describeAccess(prog, t1.InstrID), describeAccess(prog, t2.InstrID), describeAccess(prog, t3.InstrID)),
				InstrIDs: []int{t1.InstrID, t2.InstrID, t3.InstrID},
				Pattern:  pat,
			}
			out[p.Key] = p
		}
	}
	return out
}

// rangeClass buckets a value for range/inequality predicates.
func rangeClass(v int64) (key, desc string) {
	switch {
	case v < 0:
		return "neg", "< 0"
	case v == 0:
		return "zero", "== 0"
	default:
		return "pos", "> 0"
	}
}

// describeAccess renders a memory-access statement for humans: its source
// text if available, else its position.
func describeAccess(prog *ir.Program, id int) string {
	in := prog.Instrs[id]
	if txt := prog.SourceLine(in.Pos.Line); txt != "" {
		return fmt.Sprintf("`%s` (line %d)", txt, in.Pos.Line)
	}
	return in.Pos.String()
}

// PredictorAccum accumulates predictor statistics one run at a time —
// the streaming form of RankPredictors. Each observed run's predicate
// set is extracted once, at admission, and folded into per-predictor
// contingency counters (internal/stats.Online); Ranked then reads the
// counters instead of recomputing them from the retained populations.
// Feeding the same runs in the same failing/successful split yields a
// ranking byte-identical to the batch computation: precision, recall,
// and F are pure functions of the same three integers, and the sort is
// the same. predict_test.go diffs the two on random trace streams.
//
// Not safe for concurrent use; the campaign admits runs strictly in
// dispatch order already.
type PredictorAccum struct {
	prog   *ir.Program
	beta   float64
	online *stats.Online[string]
	preds  map[string]Predictor
}

// NewPredictorAccum returns an empty accumulator for one program.
func NewPredictorAccum(prog *ir.Program, beta float64) *PredictorAccum {
	return &PredictorAccum{
		prog:   prog,
		beta:   beta,
		online: stats.NewOnline[string](),
		preds:  make(map[string]Predictor),
	}
}

// Observe folds one admitted run into the counters. failing says which
// population the run belongs to (the caller has already matched the
// failure identity and applied trap filtering, exactly as it would
// before batch ranking).
func (a *PredictorAccum) Observe(rt *RunTrace, failing bool) {
	set := ExtractPredicates(a.prog, rt)
	keys := make([]string, 0, len(set))
	for key, p := range set {
		if _, ok := a.preds[key]; !ok {
			a.preds[key] = p
		}
		keys = append(keys, key)
	}
	a.online.Observe(failing, keys)
}

// TotalFail returns the failing runs observed so far.
func (a *PredictorAccum) TotalFail() int { return a.online.TotalFail() }

// Ranked returns the ranking over everything observed so far, sorted by
// descending F with ties broken by key — the same order RankPredictors
// produces over the same runs.
func (a *PredictorAccum) Ranked() []Ranked {
	var out []Ranked
	for key, pred := range a.preds {
		c := a.online.Counts(key)
		p, r, f := c.PRF(a.beta)
		out = append(out, Ranked{Predictor: pred, Fail: c.Fail, Succ: c.Succ, P: p, R: r, F: f})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].F != out[j].F {
			return out[i].F > out[j].F
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// RankPredictors aggregates per-run predicate sets and ranks every
// predictor by its F-measure with the given beta (the paper uses β=0.5 to
// favor precision). Results are sorted by descending F, ties broken by
// key for determinism. This is the batch recomputation the streaming
// PredictorAccum is proven equal to; the campaign itself ranks from the
// accumulator, and this form remains for one-shot callers and as the
// differential-test oracle.
func RankPredictors(prog *ir.Program, failing, successful []*RunTrace, beta float64) []Ranked {
	type agg struct {
		p    Predictor
		f, s int
	}
	all := make(map[string]*agg)
	add := func(rt *RunTrace, isFail bool) {
		for key, p := range ExtractPredicates(prog, rt) {
			a := all[key]
			if a == nil {
				a = &agg{p: p}
				all[key] = a
			}
			if isFail {
				a.f++
			} else {
				a.s++
			}
		}
	}
	for _, rt := range failing {
		add(rt, true)
	}
	for _, rt := range successful {
		add(rt, false)
	}
	var out []Ranked
	for _, a := range all {
		p, r, f := stats.PrecisionRecallF(a.f, a.s, len(failing), beta)
		out = append(out, Ranked{Predictor: a.p, Fail: a.f, Succ: a.s, P: p, R: r, F: f})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].F != out[j].F {
			return out[i].F > out[j].F
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// minPredictorF is the F-measure floor below which a kind's best
// predictor is not worth showing: Gist favors precision (β=0.5) exactly
// so that developers are not misled by weakly-correlated events.
const minPredictorF = 0.3

// BestPerKind returns the highest-ranked predictor of each kind, in kind
// order — the events a failure sketch highlights (dotted rectangles in
// Figs. 1, 7, 8). Kinds whose best predictor correlates too weakly with
// the failure are omitted.
func BestPerKind(ranked []Ranked) []Ranked {
	var out []Ranked
	for _, kind := range []PredictorKind{PredOrder, PredValue, PredBranch} {
		for _, r := range ranked {
			if r.Kind == kind && r.Fail > 0 {
				if r.F >= minPredictorF {
					out = append(out, r)
				}
				break
			}
		}
	}
	return out
}
