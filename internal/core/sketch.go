package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/stats"
	"repro/internal/vm"
)

// SketchStep is one row of a failure sketch: a statement executed by one
// thread at one logical time step.
type SketchStep struct {
	Step   int
	Thread int
	Line   int
	Text   string
	// InstrIDs are the sketch instructions this row stands for.
	InstrIDs []int
	// HasValue/Value annotate the row with the data value observed by
	// data-flow tracking (dotted-rectangle values in Figs. 1 and 7).
	HasValue bool
	Value    int64
	// Highlight marks rows that participate in the best failure
	// predictors.
	Highlight bool
	// IsFailure marks the failing statement.
	IsFailure bool
}

// Sketch is a failure sketch: the minimal statement timeline plus the
// highest-ranked failure predictors.
type Sketch struct {
	Title       string
	FailureKind string
	Report      *vm.FailureReport
	Prog        *ir.Program

	Threads []int
	Steps   []SketchStep

	// Predictors holds the best predictor of each kind (order, value,
	// branch), highest F-measure first within its kind.
	Predictors []Ranked
	// AllRanked is the full ranking, for inspection and experiments.
	AllRanked []Ranked

	// InstrSet is the set of instructions the sketch includes, used by
	// the accuracy metrics.
	InstrSet map[int]bool
	// AddedByRefinement lists instructions that entered the sketch via
	// runtime data-flow discovery rather than the static slice.
	AddedByRefinement []int
	// LowConfidence marks a sketch ranked from fewer validated runs than
	// the server's quorum (a degraded fleet starved the iteration); the
	// predictors are still the best available but statistically weaker.
	LowConfidence bool
}

// sketchEvent is an internal pre-step: a (thread, line) statement
// occurrence with ordering hints.
type sketchEvent struct {
	thread  int
	line    int
	flowPos int
	instrs  []int
	clock   int64 // anchored total-order clock; -1 if unanchored
	hasVal  bool
	val     int64
	isFail  bool
}

// BuildSketch assembles a failure sketch from the tracked window, the
// failing run's traces, and the ranked predictors.
//
// Per-thread statement order comes from the decoded PT flow; cross-thread
// order comes only from watchpoint trap clocks (PT is per-core), exactly
// the partial order the paper's design can honestly produce. Unanchored
// statements stay in thread order, placed after their thread's latest
// anchored event.
func BuildSketch(title string, plan *Plan, failing *RunTrace, ranked []Ranked, added []int) *Sketch {
	prog := plan.Prog
	sk := &Sketch{
		Title:       title,
		FailureKind: failing.Outcome.Report.Kind.String(),
		Report:      failing.Outcome.Report,
		Prog:        prog,
		AllRanked:   ranked,
		Predictors:  BestPerKind(ranked),
		InstrSet:    make(map[int]bool),
	}
	include := make(map[int]bool)
	for _, id := range plan.Tracked {
		include[id] = true
	}
	addedSet := make(map[int]bool)
	for _, id := range added {
		include[id] = true
		addedSet[id] = true
		sk.AddedByRefinement = append(sk.AddedByRefinement, id)
	}

	// With control-flow tracking, keep only statements that actually
	// executed in this failing run; without it, the whole window stays.
	executed := func(id int) bool {
		if !plan.Feats.ControlFlow {
			return true
		}
		return failing.Executed[id] || id == failing.Outcome.Report.InstrID || addedSet[id]
	}

	// Last trap per (thread, instr): anchors and value annotations.
	lastTrap := make(map[trapKey]int64)
	lastVal := make(map[trapKey]int64)
	for _, tr := range failing.Traps {
		k := trapKey{tr.Thread, tr.InstrID}
		lastTrap[k] = tr.Clock
		lastVal[k] = tr.Val
	}

	// Collect per-(thread, line) events.
	events := sk.collectEvents(plan, failing, include, executed, lastTrap, lastVal)

	// Effective clocks: anchored events keep their trap clock; unanchored
	// events inherit the last anchored clock seen in their thread.
	byThread := make(map[int][]*sketchEvent)
	for i := range events {
		e := &events[i]
		byThread[e.thread] = append(byThread[e.thread], e)
	}
	var threads []int
	for tid := range byThread {
		threads = append(threads, tid)
	}
	sort.Ints(threads)
	sk.Threads = threads
	for _, tid := range threads {
		evs := byThread[tid]
		sort.Slice(evs, func(i, j int) bool { return evs[i].flowPos < evs[j].flowPos })
		last := int64(-1)
		for _, e := range evs {
			if e.clock >= 0 {
				last = e.clock
			} else {
				e.clock = last
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		a, b := &events[i], &events[j]
		if a.isFail != b.isFail {
			return b.isFail // failure row last
		}
		if a.clock != b.clock {
			return a.clock < b.clock
		}
		if a.thread != b.thread {
			return a.thread < b.thread
		}
		return a.flowPos < b.flowPos
	})

	highlight := make(map[int]bool)
	for _, r := range sk.Predictors {
		for _, id := range r.InstrIDs {
			highlight[id] = true
		}
	}
	for i := range events {
		e := &events[i]
		hl := false
		for _, id := range e.instrs {
			sk.InstrSet[id] = true
			if highlight[id] {
				hl = true
			}
		}
		sk.Steps = append(sk.Steps, SketchStep{
			Step:      i + 1,
			Thread:    e.thread,
			Line:      e.line,
			Text:      prog.SourceLine(e.line),
			InstrIDs:  e.instrs,
			HasValue:  e.hasVal,
			Value:     e.val,
			Highlight: hl,
			IsFailure: e.isFail,
		})
	}
	return sk
}

// trapKey identifies the last trap of one instruction on one thread.
type trapKey struct{ thread, instr int }

func (sk *Sketch) collectEvents(plan *Plan, failing *RunTrace,
	include map[int]bool, executed func(int) bool,
	lastTrap, lastVal map[trapKey]int64) []sketchEvent {

	prog := plan.Prog
	report := failing.Outcome.Report
	type lkey struct {
		thread, line int
	}
	byLine := make(map[lkey]*sketchEvent)
	note := func(thread, line, flowPos int, id int) {
		if line <= 0 {
			return
		}
		k := lkey{thread, line}
		e := byLine[k]
		if e == nil {
			e = &sketchEvent{thread: thread, line: line, clock: -1}
			byLine[k] = e
		}
		if flowPos >= e.flowPos {
			e.flowPos = flowPos
		}
		found := false
		for _, x := range e.instrs {
			if x == id {
				found = true
			}
		}
		if !found {
			e.instrs = append(e.instrs, id)
		}
		tk := trapKey{thread, id}
		if c, ok := lastTrap[tk]; ok && c > e.clock {
			e.clock = c
			e.hasVal = true
			e.val = lastVal[tk]
		}
	}

	if plan.Feats.ControlFlow && len(failing.Flow) > 0 {
		for tid, flow := range failing.Flow {
			for pos, id := range flow {
				if include[id] && executed(id) {
					note(tid, prog.Instrs[id].Pos.Line, pos, id)
				}
			}
		}
		// Refinement-added statements may fall outside traced regions;
		// anchor them via their traps.
		for _, tr := range failing.Traps {
			if include[tr.InstrID] {
				note(tr.Thread, prog.Instrs[tr.InstrID].Pos.Line, 1<<30, tr.InstrID)
			}
		}
	} else {
		// Static-only sketch: window statements in program order on the
		// failing thread's column.
		ids := append([]int(nil), plan.Tracked...)
		sort.Ints(ids)
		for pos, id := range ids {
			note(report.ThreadID, prog.Instrs[id].Pos.Line, pos, id)
		}
	}
	// The failing statement always appears.
	note(report.ThreadID, report.Pos.Line, 1<<30, report.InstrID)

	var events []sketchEvent
	for _, e := range byLine {
		if e.line == report.Pos.Line && e.thread == report.ThreadID {
			e.isFail = true
		}
		events = append(events, *e)
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].thread != events[j].thread {
			return events[i].thread < events[j].thread
		}
		return events[i].line < events[j].line
	})
	return events
}

// Lines returns the distinct source lines of the sketch in step order.
func (sk *Sketch) Lines() []int {
	var lines []int
	seen := make(map[int]bool)
	for _, s := range sk.Steps {
		if !seen[s.Line] {
			seen[s.Line] = true
			lines = append(lines, s.Line)
		}
	}
	return lines
}

// Render draws the sketch in the two-column style of Figs. 1, 7 and 8.
func (sk *Sketch) Render() string {
	const colWidth = 50
	var b strings.Builder
	fmt.Fprintf(&b, "Failure Sketch for %s\n", sk.Title)
	fmt.Fprintf(&b, "Type: %s\n", sk.FailureKind)
	if sk.LowConfidence {
		b.WriteString("Confidence: LOW (ranked below validated-run quorum)\n")
	}
	b.WriteString("\n")
	b.WriteString("Time ")
	for _, tid := range sk.Threads {
		fmt.Fprintf(&b, "%-*s", colWidth, fmt.Sprintf("Thread T%d", tid))
	}
	b.WriteString("\n")
	col := make(map[int]int)
	for i, tid := range sk.Threads {
		col[tid] = i
	}
	for _, s := range sk.Steps {
		fmt.Fprintf(&b, "%4d ", s.Step)
		text := s.Text
		if s.HasValue {
			text += fmt.Sprintf("   [= %d]", s.Value)
		}
		if s.Highlight {
			text = "| " + text + " |" // dotted-rectangle stand-in
		}
		if s.IsFailure {
			text += "   <-- FAILURE"
		}
		c := col[s.Thread]
		b.WriteString(strings.Repeat(" ", c*colWidth))
		if len(text) > colWidth-2 && c < len(sk.Threads)-1 {
			text = text[:colWidth-2]
		}
		b.WriteString(text)
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "\nFailure: %s\n", sk.FailureKind)
	if len(sk.Predictors) > 0 {
		b.WriteString("Best failure predictors (F-measure, beta=0.5):\n")
		for i, r := range sk.Predictors {
			fmt.Fprintf(&b, "  %d. [%s] %s   (P=%.2f R=%.2f F=%.2f)\n", i+1, r.Kind, r.Desc, r.P, r.R, r.F)
		}
	}
	if len(sk.AddedByRefinement) > 0 {
		var lines []string
		seen := map[int]bool{}
		for _, id := range sk.AddedByRefinement {
			ln := sk.Prog.Instrs[id].Pos.Line
			if !seen[ln] {
				seen[ln] = true
				lines = append(lines, fmt.Sprintf("%d", ln))
			}
		}
		fmt.Fprintf(&b, "Statements discovered by data-flow refinement: lines %s\n", strings.Join(lines, ", "))
	}
	return b.String()
}

// IdealSketch is the hand-written ground truth for one bug, used by the
// §5.2 accuracy evaluation: the source lines a perfect sketch contains
// and the cross-thread orderings it must show.
type IdealSketch struct {
	// Lines are the source lines of the ideal sketch.
	Lines []int
	// Order lists (earlier line, later line) pairs that the sketch must
	// present in that order — the partial order of the key accesses.
	Order [][2]int
}

// Accuracy computes the relevance, ordering and overall accuracy of the
// sketch against the ideal, as defined in §5.2 (relevance = Jaccard over
// instructions; ordering = 100·(1 − normalized Kendall tau)).
func (sk *Sketch) Accuracy(ideal IdealSketch) (relevance, ordering, overall float64) {
	idealLines := make(map[int]bool, len(ideal.Lines))
	for _, ln := range ideal.Lines {
		idealLines[ln] = true
	}
	// Both sketches are read as whole source lines; compare the
	// instruction sets those lines denote (the paper reports sizes and
	// accuracy in LLVM instructions but sketches are line-granular).
	sketchLines := make(map[int]bool)
	for _, st := range sk.Steps {
		sketchLines[st.Line] = true
	}
	idealSet := make(map[int]bool)
	sketchSet := make(map[int]bool)
	for _, in := range sk.Prog.Instrs {
		if idealLines[in.Pos.Line] {
			idealSet[in.ID] = true
		}
		if sketchLines[in.Pos.Line] {
			sketchSet[in.ID] = true
		}
	}
	relevance = stats.Jaccard(sketchSet, idealSet)

	// Ordering: first step at which each line appears.
	firstStep := make(map[int]int)
	for _, s := range sk.Steps {
		if _, ok := firstStep[s.Line]; !ok {
			firstStep[s.Line] = s.Step
		}
	}
	disagree, pairs := 0, 0
	for _, p := range ideal.Order {
		sa, oka := firstStep[p[0]]
		sb, okb := firstStep[p[1]]
		if !oka || !okb {
			continue
		}
		pairs++
		if sa >= sb {
			disagree++
		}
	}
	ordering = stats.OrderingAccuracy(disagree, pairs)
	overall = (relevance + ordering) / 2
	return relevance, ordering, overall
}
