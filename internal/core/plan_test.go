package core

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/hw/watch"
	"repro/internal/ir"
)

const planProg = `global int g = 0;
global int h = 0;
int main() {
	int x = input(0);
	g = x;
	if (x > 2) {
		h = g + 1;
	}
	g = h;
	return g;
}`

// trackedOnLines returns the instr IDs on the given source lines.
func trackedOnLines(p *ir.Program, lines ...int) []int {
	want := make(map[int]bool)
	for _, ln := range lines {
		want[ln] = true
	}
	var ids []int
	for _, in := range p.Instrs {
		if want[in.Pos.Line] {
			ids = append(ids, in.ID)
		}
	}
	return ids
}

func TestPlanStartStopPlacement(t *testing.T) {
	p := ir.MustCompile("t.mc", planProg)
	g := cfg.BuildTICFG(p)
	tracked := trackedOnLines(p, 5, 7, 9) // g = x; h = g + 1; g = h
	plan := BuildPlan(g, tracked, AllFeatures())

	if len(plan.StartAt) == 0 {
		t.Fatal("no start points")
	}
	if len(plan.StopAfter) == 0 {
		t.Fatal("no stop points")
	}
	// The earliest tracked statement sits in the entry block, so its
	// start anchor must be a tracked entry-block instruction (the
	// statement itself, not the whole function).
	main := p.FuncByName["main"]
	foundEntryAnchor := false
	for id := range plan.StartAt {
		in := p.Instrs[id]
		if in.Blk == main.Entry() && plan.IsTracked(id) {
			foundEntryAnchor = true
		}
	}
	if !foundEntryAnchor {
		t.Errorf("expected a start anchored at a tracked entry-block statement; starts: %v", plan.StartAt)
	}
}

func TestPlanStopUsesSdomOptimization(t *testing.T) {
	// Straight-line tracked statements: earlier ones strictly dominate
	// later ones, so only the last should stop tracing.
	src := `global int a; global int b; global int c;
int main() {
	a = 1;
	b = 2;
	c = 3;
	return c;
}`
	p := ir.MustCompile("t.mc", src)
	g := cfg.BuildTICFG(p)
	tracked := trackedOnLines(p, 3, 4, 5)
	plan := BuildPlan(g, tracked, AllFeatures())
	// Exactly one stop: after the last tracked instruction.
	if len(plan.StopAfter) != 1 {
		t.Fatalf("straight-line window should have exactly 1 stop, got %v", plan.StopAfter)
	}
	var maxTracked int
	for _, id := range tracked {
		if id > maxTracked {
			maxTracked = id
		}
	}
	if !plan.StopAfter[maxTracked] {
		t.Errorf("stop should be after the last tracked instruction %%%d, got %v", maxTracked, plan.StopAfter)
	}
	// And exactly one start: the first tracked statement (sdom covers the
	// rest).
	if len(plan.StartAt) != 1 {
		t.Errorf("straight-line window should have exactly 1 start, got %v", plan.StartAt)
	}
	var minTracked = 1 << 30
	for _, id := range tracked {
		if id < minTracked {
			minTracked = id
		}
	}
	if !plan.StartAt[minTracked] {
		t.Errorf("start should anchor at the first tracked instruction %%%d, got %v", minTracked, plan.StartAt)
	}
}

func TestPlanWatchesOnlySharedAccesses(t *testing.T) {
	src := `global int g;
int main() {
	int local = 1;
	local = local + 1;
	g = local;
	return g;
}`
	p := ir.MustCompile("t.mc", src)
	g := cfg.BuildTICFG(p)
	tracked := trackedOnLines(p, 3, 4, 5, 6)
	plan := BuildPlan(g, tracked, AllFeatures())
	for id := range plan.WatchAccesses {
		in := p.Instrs[id]
		if !in.IsMemAccess() {
			t.Errorf("watch target %%%d is not a memory access", id)
		}
		if in.Pos.Line == 3 || in.Pos.Line == 4 {
			t.Errorf("stack-only line %d must not be watched", in.Pos.Line)
		}
	}
	found := false
	for id := range plan.WatchAccesses {
		if p.Instrs[id].Pos.Line == 5 || p.Instrs[id].Pos.Line == 6 {
			found = true
		}
	}
	if !found {
		t.Error("global accesses on lines 5/6 should be watched")
	}
}

func TestPlanCooperativePartitioning(t *testing.T) {
	// More shared accesses than debug registers: the plan must split them
	// into groups of at most NumRegisters.
	src := `global int a; global int b; global int c; global int d; global int e; global int f;
int main() {
	a = 1; b = 2; c = 3; d = 4; e = 5; f = 6;
	return a + b + c + d + e + f;
}`
	p := ir.MustCompile("t.mc", src)
	g := cfg.BuildTICFG(p)
	tracked := trackedOnLines(p, 3, 4)
	plan := BuildPlan(g, tracked, AllFeatures())
	if len(plan.WatchAccesses) <= watch.NumRegisters {
		t.Fatalf("test needs >%d accesses, got %d", watch.NumRegisters, len(plan.WatchAccesses))
	}
	if len(plan.WatchGroups) < 2 {
		t.Fatalf("expected cooperative partitioning, got %d group(s)", len(plan.WatchGroups))
	}
	seen := make(map[int]bool)
	for _, grp := range plan.WatchGroups {
		classes := map[string]bool{}
		for _, id := range grp {
			classes[plan.Classes[id]] = true
		}
		if len(classes) > watch.NumRegisters {
			t.Errorf("group has %d location classes, over the register budget: %v", len(classes), grp)
		}
		for _, id := range grp {
			if seen[id] {
				t.Errorf("instruction %%%d in two groups", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != len(plan.WatchAccesses) {
		t.Errorf("groups cover %d of %d accesses", len(seen), len(plan.WatchAccesses))
	}
	// Different endpoints get different groups.
	g0 := plan.WatchGroupFor(0)
	g1 := plan.WatchGroupFor(1)
	same := len(g0) == len(g1)
	if same {
		for id := range g0 {
			if !g1[id] {
				same = false
			}
		}
	}
	if same {
		t.Error("endpoints 0 and 1 should watch different groups")
	}
}

func TestFeatureGates(t *testing.T) {
	p := ir.MustCompile("t.mc", planProg)
	g := cfg.BuildTICFG(p)
	tracked := trackedOnLines(p, 5, 7, 9)

	staticOnly := BuildPlan(g, tracked, Features{Static: true})
	if len(staticOnly.StartAt) != 0 || len(staticOnly.WatchAccesses) != 0 {
		t.Error("static-only plan must not instrument")
	}
	cfOnly := BuildPlan(g, tracked, Features{Static: true, ControlFlow: true})
	if len(cfOnly.StartAt) == 0 || len(cfOnly.WatchAccesses) != 0 {
		t.Error("control-flow-only plan wrong")
	}
	dfOnly := BuildPlan(g, tracked, Features{Static: true, DataFlow: true})
	if len(dfOnly.StartAt) != 0 || len(dfOnly.WatchAccesses) == 0 {
		t.Error("data-flow-only plan wrong")
	}
}
