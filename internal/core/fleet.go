package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
)

// This file is the deterministic parallel execution layer for the
// endpoint fleet. The paper amortizes tracking across 1,136 cooperating
// endpoints (§3.2); those endpoints run concurrently in production, and
// the simulator models that by executing production runs on a bounded
// worker pool.
//
// Determinism contract: every production run is a pure function of
// (plan, spec, fault decision) — the plan is read-only during
// execution, and each run owns its VM, PT tracer, watchpoint unit, and
// fault RNG. The server binds seeds to runs at job-creation time (in
// dispatch order, before any parallelism starts) and admits results
// strictly in dispatch order, so every sketch, predictor ranking, and
// FleetHealth counter is byte-identical for any worker count, including
// under chaos injection.

// RunJob is one production run awaiting execution: the spec the
// endpoint will run and the fault decision injected into it. It is
// exported so an alternative Runner (the service's remote fleet) can
// execute the same batch the in-process fleet would.
type RunJob struct {
	Spec RunSpec
	Dec  faults.Decision
}

// Runner executes one dispatched batch and returns the traces in job
// order, nil for runs whose endpoint crashed or whose trace was lost in
// transit. Because every run is a pure function of (plan, spec,
// decision) and the campaign admits results strictly in dispatch order,
// swapping the in-process fleet for a remote Runner cannot change a
// single byte of the diagnosis — only where the runs execute.
type Runner interface {
	RunBatch(plan *Plan, jobs []RunJob) []*RunTrace
}

// parallelMap evaluates f(0..n-1) on up to workers goroutines and
// returns the results indexed by input. Each f(i) must be a pure
// function of i; callers consume results in index order, which is what
// makes a parallel fleet byte-identical to a serial one.
func parallelMap[T any](n, workers int, f func(int) T) []T {
	out := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = f(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = f(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// runFleet executes the batch concurrently and returns the traces in
// job order.
func runFleet(plan *Plan, jobs []RunJob, workers int) []*RunTrace {
	return parallelMap(len(jobs), workers, func(i int) *RunTrace {
		return RunInstrumentedFaults(plan, jobs[i].Spec, jobs[i].Dec)
	})
}

// Pool is a shared bounded worker pool several concurrent campaigns
// draw endpoint runs from — the multi-tenant fleet. Each campaign keeps
// dispatching jobs and admitting results in its own deterministic
// order; the pool only bounds how many runs execute at once across all
// tenants, so sharing it affects wall-clock interleaving and nothing
// else. A nil *Pool is valid and means "use the campaign's private
// parallelMap pool".
type Pool struct {
	width int
	sem   chan struct{}
}

// NewPool returns a pool executing at most width runs concurrently
// (0 = GOMAXPROCS).
func NewPool(width int) *Pool {
	if width <= 0 {
		width = defaultWorkers()
	}
	return &Pool{width: width, sem: make(chan struct{}, width)}
}

// Width returns the pool's concurrency bound.
func (p *Pool) Width() int { return p.width }

func (p *Pool) acquire() { p.sem <- struct{}{} }
func (p *Pool) release() { <-p.sem }

// parallelMapPool is parallelMap drawing slots from a shared pool:
// f(0..n-1) runs on at most pool.width goroutines fleet-wide, results
// indexed by input. Slot acquisition happens before each goroutine
// spawns, so a chunk never holds more goroutines than pool slots.
func parallelMapPool[T any](n int, pool *Pool, f func(int) T) []T {
	out := make([]T, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		pool.acquire()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer pool.release()
			out[i] = f(i)
		}(i)
	}
	wg.Wait()
	return out
}

// fleetChunk is how many runs the server dispatches ahead of admission.
// A serial server dispatches one run at a time (no speculation — the
// historical loop exactly); a parallel server keeps the pipe a few
// batches deep, bounding the work ordered admission may discard when an
// iteration's quota fills mid-chunk. Discarded runs never burn seeds,
// so speculation costs only wall-clock slack, never determinism.
func fleetChunk(workers int) int {
	if workers <= 1 {
		return 1
	}
	return 4 * workers
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }
