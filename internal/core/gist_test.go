package core

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/vm"
)

// pbzipProg mirrors the structure of Pbzip2 bug #1 (Fig. 1): the main
// thread frees and nulls the queue's mutex while the consumer thread may
// still unlock it.
// The compress workers model pbzip2's real work: most cycles go to
// compression, the bug sits in teardown — which is also what keeps
// tracking overhead realistic.
const pbzipProg = `struct queue { int* mut; int size; };
global struct queue* fifo;
int compress(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		acc = acc + (i * 7 + 3) % 11;
	}
	return acc;
}
void worker(int n) {
	int r = compress(n);
}
void cons(int arg) {
	struct queue* f = fifo;
	unlock(f->mut);
}
int main() {
	int w1 = spawn(worker, 1500);
	int w2 = spawn(worker, 1500);
	join(w1);
	join(w2);
	fifo = malloc(sizeof(queue));
	fifo->mut = malloc(8);
	fifo->size = 7;
	int t = spawn(cons, 0);
	free(fifo->mut);
	fifo->mut = null;
	join(t);
	return 0;
}`

// curlProg mirrors Curl bug #965 (Fig. 7): unbalanced braces in the URL
// leave current null, and strlen(null) crashes.
const curlProg = `global string current;
int next_url(string urls) {
	int depth = 0;
	int i = 0;
	int c = urls[0];
	while (c != 0) {
		if (c == 123) { depth = depth + 1; }
		if (c == 125) { depth = depth - 1; }
		i = i + 1;
		c = urls[i];
	}
	if (depth > 0) {
		current = null;
	}
	return strlen(current);
}
int main() {
	string url = input_str(0);
	current = url;
	int n = next_url(url);
	return n;
}`

func pbzipConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Prog:        ir.MustCompile("pbzip2.mc", pbzipProg),
		Title:       "pbzip2 bug #1",
		Endpoints:   30,
		PreemptMean: 3,
		SeedBase:    1,
	}
}

func TestGistEndToEndPbzip(t *testing.T) {
	res, err := Run(pbzipConfig(t))
	if err != nil {
		t.Fatalf("gist run: %v", err)
	}
	sk := res.Sketch
	if sk == nil {
		t.Fatal("no sketch")
	}
	if res.FailureRecurrences < 1 {
		t.Error("no failure recurrences recorded")
	}
	if len(sk.Threads) < 2 {
		t.Errorf("sketch should show both threads, got %v", sk.Threads)
	}
	// The failing statement (unlock in cons, line 5) must be the last step.
	last := sk.Steps[len(sk.Steps)-1]
	if !last.IsFailure {
		t.Errorf("last step is not the failure: %+v", last)
	}
	// The sketch must include the consumer's statements.
	lines := map[int]bool{}
	for _, s := range sk.Steps {
		lines[s.Line] = true
	}
	for _, want := range []int{14, 15} { // f = fifo; unlock(f->mut)
		if !lines[want] {
			t.Errorf("sketch missing consumer line %d; lines: %v", want, lines)
		}
	}
	// Refinement must have discovered the pointer stores (fifo->mut = ...)
	// that the alias-free slice missed.
	if len(sk.AddedByRefinement) == 0 {
		t.Error("data-flow refinement added nothing; expected the fifo->mut stores")
	}
	var addedLines []int
	for _, id := range sk.AddedByRefinement {
		addedLines = append(addedLines, sk.Prog.Instrs[id].Pos.Line)
	}
	foundNullStore := false
	for _, ln := range addedLines {
		if ln == 27 { // fifo->mut = null;
			foundNullStore = true
		}
	}
	if !foundNullStore {
		t.Errorf("refinement did not find the null store (line 27); added lines: %v", addedLines)
	}
	// The best order predictor should be a cross-thread pattern on f->mut
	// involving main's store and cons's read.
	var bestOrder *Ranked
	for i := range sk.Predictors {
		if sk.Predictors[i].Kind == PredOrder {
			bestOrder = &sk.Predictors[i]
			break
		}
	}
	if bestOrder == nil {
		t.Fatal("no order predictor")
	}
	if bestOrder.P < 0.5 {
		t.Errorf("best order predictor precision too low: %+v", bestOrder)
	}
	// A value predictor should say the mutex pointer was 0/dead.
	var bestVal *Ranked
	for i := range sk.Predictors {
		if sk.Predictors[i].Kind == PredValue {
			bestVal = &sk.Predictors[i]
			break
		}
	}
	if bestVal == nil {
		t.Fatal("no value predictor")
	}
	// Rendering smoke test.
	out := sk.Render()
	for _, frag := range []string{"Failure Sketch for pbzip2 bug #1", "Thread T0", "Thread T3", "FAILURE", "predictors"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestGistOverheadIsLow(t *testing.T) {
	res, err := Run(pbzipConfig(t))
	if err != nil {
		t.Fatalf("gist run: %v", err)
	}
	if res.AvgOverheadPct <= 0 {
		t.Fatalf("overhead should be positive, got %f", res.AvgOverheadPct)
	}
	if res.AvgOverheadPct > 20 {
		t.Errorf("slice tracking overhead out of the paper's ballpark: %.2f%%", res.AvgOverheadPct)
	}
}

func TestGistDeterminism(t *testing.T) {
	a, err := Run(pbzipConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pbzipConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if a.FailureRecurrences != b.FailureRecurrences || a.TotalRuns != b.TotalRuns {
		t.Fatalf("nondeterministic run counts: %d/%d vs %d/%d",
			a.FailureRecurrences, a.TotalRuns, b.FailureRecurrences, b.TotalRuns)
	}
	if len(a.Sketch.Steps) != len(b.Sketch.Steps) {
		t.Fatalf("nondeterministic sketches: %d vs %d steps", len(a.Sketch.Steps), len(b.Sketch.Steps))
	}
	for i := range a.Sketch.Steps {
		sa, sb := a.Sketch.Steps[i], b.Sketch.Steps[i]
		if sa.Line != sb.Line || sa.Thread != sb.Thread {
			t.Fatalf("step %d differs: %+v vs %+v", i, sa, sb)
		}
	}
	if a.Sketch.Render() != b.Sketch.Render() {
		t.Error("renders differ")
	}
}

func TestGistSequentialBug(t *testing.T) {
	cfg := Config{
		Prog:      ir.MustCompile("curl.mc", curlProg),
		Title:     "curl bug #965",
		Endpoints: 20,
		SeedBase:  1,
		WorkloadPool: []vm.Workload{
			{Strs: []string{"{a}{b}"}},
			{Strs: []string{"{}{"}}, // unbalanced: fails
			{Strs: []string{"{x}"}},
			{Strs: []string{"plain"}},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("gist run: %v", err)
	}
	sk := res.Sketch
	if sk.Report.Kind != vm.FaultNullDeref {
		t.Fatalf("expected null deref, got %v", sk.Report.Kind)
	}
	// The best value predictor must pin current == 0.
	var val *Ranked
	for i := range sk.Predictors {
		if sk.Predictors[i].Kind == PredValue {
			val = &sk.Predictors[i]
			break
		}
	}
	if val == nil {
		t.Fatal("no value predictor for the sequential bug")
	}
	if val.Value != 0 || val.P < 0.99 {
		t.Errorf("best value predictor should be current==0 with high precision: %+v", val)
	}
	// A branch predictor should implicate the depth>0 path.
	var br *Ranked
	for i := range sk.Predictors {
		if sk.Predictors[i].Kind == PredBranch {
			br = &sk.Predictors[i]
			break
		}
	}
	if br == nil {
		t.Fatal("no branch predictor for the sequential bug")
	}
	if br.P < 0.6 {
		t.Errorf("branch predictor precision too low: %+v", br)
	}
}

func TestGistStopWhenOracle(t *testing.T) {
	stops := 0
	cfg := pbzipConfig(t)
	cfg.StopWhen = func(sk *Sketch) bool {
		stops++
		return true // stop at the first sketch
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stops != 1 || len(res.Iters) != 1 {
		t.Errorf("oracle should stop after first iteration: stops=%d iters=%d", stops, len(res.Iters))
	}
}

func TestGistAblationAccuracyOrdering(t *testing.T) {
	ideal := IdealSketch{
		Lines: []int{14, 15, 22, 23, 27},
		Order: [][2]int{{27, 15}, {14, 15}, {23, 27}},
	}
	run := func(f Features) float64 {
		cfg := pbzipConfig(t)
		cfg.Features = f
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("features %+v: %v", f, err)
		}
		_, _, overall := res.Sketch.Accuracy(ideal)
		return overall
	}
	full := run(AllFeatures())
	static := run(Features{Static: true})
	if full < static-5 { // full system should not be (meaningfully) worse
		t.Errorf("full system accuracy %.1f%% below static-only %.1f%%", full, static)
	}
	if full < 50 {
		t.Errorf("full system accuracy suspiciously low: %.1f%%", full)
	}
}

func TestRankPredictorsFavorsPrecision(t *testing.T) {
	// A synthetic check of the beta=0.5 ranking: a predictor with
	// precision 1.0 and recall 0.5 must outrank one with precision 0.5
	// and recall 1.0.
	prog := ir.MustCompile("t.mc", "int main() { return 0; }")
	mk := func(key string) Predictor { return Predictor{Kind: PredValue, Key: key} }
	_ = prog
	_ = mk
	// Direct formula check via stats is in internal/stats tests; here we
	// verify BestPerKind skips kinds with no failing support.
	ranked := []Ranked{
		{Predictor: Predictor{Kind: PredBranch, Key: "b"}, Fail: 0, Succ: 3, F: 0},
		{Predictor: Predictor{Kind: PredValue, Key: "v"}, Fail: 2, Succ: 0, F: 0.9},
	}
	best := BestPerKind(ranked)
	for _, r := range best {
		if r.Fail == 0 {
			t.Errorf("BestPerKind returned unsupported predictor %+v", r)
		}
	}
}
