package core

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/vm"
)

// twoBugs has two independent failure modes: a workload-dependent
// division by zero and a schedule-dependent use-after-free.
const twoBugs = `global int* shared;
global int out = 0;
int work(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) { acc = acc + i % 3; }
	return acc;
}
void reader(int arg) {
	int w = work(50);
	out = shared[0];
}
int main() {
	int d = input(0);
	out = 100 / d;
	shared = malloc(32);
	shared[0] = 4;
	int t = spawn(reader, 0);
	int w = work(48);
	free(shared);
	join(t);
	return out;
}`

func TestClusterSeparatesDistinctBugs(t *testing.T) {
	prog := ir.MustCompile("two.mc", twoBugs)
	clusters := ClusterFailures(ClusterConfig{
		Prog: prog, Runs: 240, SeedBase: 1,
		WorkloadPool: []vm.Workload{
			{Ints: []int64{2}},
			{Ints: []int64{0}}, // division by zero
			{Ints: []int64{5}},
		},
	})
	if len(clusters) != 2 {
		for _, c := range clusters {
			t.Logf("cluster %s: %d × %v at %s", c.ID, c.Count, c.Report.Kind, c.Report.Pos)
		}
		t.Fatalf("expected exactly 2 clusters, got %d", len(clusters))
	}
	kinds := map[vm.FaultKind]bool{}
	for _, c := range clusters {
		kinds[c.Report.Kind] = true
		if c.Count < 1 || len(c.Seeds) == 0 {
			t.Errorf("cluster %s underpopulated: %+v", c.ID, c)
		}
	}
	if !kinds[vm.FaultDivZero] || !kinds[vm.FaultUseAfterFree] {
		t.Errorf("cluster kinds: %v", kinds)
	}
	// Most-frequent first.
	if clusters[0].Count < clusters[1].Count {
		t.Error("clusters not sorted by frequency")
	}
	out := RenderClusters(prog, clusters)
	if !strings.Contains(out, "2 failure cluster(s)") {
		t.Errorf("render: %s", out)
	}
}

func TestClusterThenDiagnose(t *testing.T) {
	// The WER workflow: cluster first, then run one Gist diagnosis per
	// cluster using a seed from that cluster as the failure report source.
	prog := ir.MustCompile("two.mc", twoBugs)
	pool := []vm.Workload{{Ints: []int64{2}}, {Ints: []int64{0}}, {Ints: []int64{5}}}
	clusters := ClusterFailures(ClusterConfig{Prog: prog, Runs: 240, SeedBase: 1, WorkloadPool: pool})
	if len(clusters) != 2 {
		t.Fatalf("clusters: %d", len(clusters))
	}
	for _, c := range clusters {
		res, err := RunFromReport(Config{
			Prog: prog, Title: "cluster " + c.ID, WorkloadPool: pool,
			Endpoints: 20, SeedBase: 1,
		}, c.Report, 1)
		if err != nil {
			t.Fatalf("cluster %s: %v", c.ID, err)
		}
		if res.Sketch.Report.Kind != c.Report.Kind {
			t.Errorf("cluster %s diagnosed as %v", c.ID, res.Sketch.Report.Kind)
		}
		if !res.Sketch.Steps[len(res.Sketch.Steps)-1].IsFailure {
			t.Errorf("cluster %s sketch malformed", c.ID)
		}
	}
}

func TestClusterNoFailures(t *testing.T) {
	prog := ir.MustCompile("ok.mc", `int main() { return 0; }`)
	clusters := ClusterFailures(ClusterConfig{Prog: prog, Runs: 20, SeedBase: 1})
	if len(clusters) != 0 {
		t.Errorf("healthy program produced clusters: %v", clusters)
	}
}
