package core

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/vm"
)

// twoBugs has two independent failure modes: a workload-dependent
// division by zero and a schedule-dependent use-after-free.
const twoBugs = `global int* shared;
global int out = 0;
int work(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) { acc = acc + i % 3; }
	return acc;
}
void reader(int arg) {
	int w = work(50);
	out = shared[0];
}
int main() {
	int d = input(0);
	out = 100 / d;
	shared = malloc(32);
	shared[0] = 4;
	int t = spawn(reader, 0);
	int w = work(48);
	free(shared);
	join(t);
	return out;
}`

func TestClusterSeparatesDistinctBugs(t *testing.T) {
	prog := ir.MustCompile("two.mc", twoBugs)
	clusters, err := ClusterFailures(ClusterConfig{
		Prog: prog, Runs: 240, SeedBase: 1,
		WorkloadPool: []vm.Workload{
			{Ints: []int64{2}},
			{Ints: []int64{0}}, // division by zero
			{Ints: []int64{5}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		for _, c := range clusters {
			t.Logf("cluster %s: %d × %v at %s", c.ID, c.Count, c.Report.Kind, c.Report.Pos)
		}
		t.Fatalf("expected exactly 2 clusters, got %d", len(clusters))
	}
	kinds := map[vm.FaultKind]bool{}
	for _, c := range clusters {
		kinds[c.Report.Kind] = true
		if c.Count < 1 || len(c.Seeds) == 0 {
			t.Errorf("cluster %s underpopulated: %+v", c.ID, c)
		}
	}
	if !kinds[vm.FaultDivZero] || !kinds[vm.FaultUseAfterFree] {
		t.Errorf("cluster kinds: %v", kinds)
	}
	// Most-frequent first.
	if clusters[0].Count < clusters[1].Count {
		t.Error("clusters not sorted by frequency")
	}
	out := RenderClusters(prog, clusters)
	if !strings.Contains(out, "2 failure cluster(s)") {
		t.Errorf("render: %s", out)
	}
}

func TestClusterThenDiagnose(t *testing.T) {
	// The WER workflow: cluster first, then run one Gist diagnosis per
	// cluster using a seed from that cluster as the failure report source.
	prog := ir.MustCompile("two.mc", twoBugs)
	pool := []vm.Workload{{Ints: []int64{2}}, {Ints: []int64{0}}, {Ints: []int64{5}}}
	clusters, err := ClusterFailures(ClusterConfig{Prog: prog, Runs: 240, SeedBase: 1, WorkloadPool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("clusters: %d", len(clusters))
	}
	for _, c := range clusters {
		res, err := RunFromReport(Config{
			Prog: prog, Title: "cluster " + c.ID, WorkloadPool: pool,
			Endpoints: 20, SeedBase: 1,
		}, c.Report, 1)
		if err != nil {
			t.Fatalf("cluster %s: %v", c.ID, err)
		}
		if res.Sketch.Report.Kind != c.Report.Kind {
			t.Errorf("cluster %s diagnosed as %v", c.ID, res.Sketch.Report.Kind)
		}
		if !res.Sketch.Steps[len(res.Sketch.Steps)-1].IsFailure {
			t.Errorf("cluster %s sketch malformed", c.ID)
		}
	}
}

func TestClusterNoFailures(t *testing.T) {
	prog := ir.MustCompile("ok.mc", `int main() { return 0; }`)
	clusters, err := ClusterFailures(ClusterConfig{Prog: prog, Runs: 20, SeedBase: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 0 {
		t.Errorf("healthy program produced clusters: %v", clusters)
	}
}

// TestClusterSignatureEdgeCases pins the failure-identity semantics the
// clusterer relies on: grouping is by (kind, failing PC, stack, other
// blocked PCs) — never by position or message — and near-miss reports
// must NOT collapse into one cluster.
func TestClusterSignatureEdgeCases(t *testing.T) {
	base := &vm.FailureReport{
		Kind:    vm.FaultNullDeref,
		InstrID: 42,
		Stack: []vm.StackEntry{
			{Fn: "main", CallSiteID: -1},
			{Fn: "worker", CallSiteID: 7},
			{Fn: "deref", CallSiteID: 19},
		},
	}

	t.Run("empty stack", func(t *testing.T) {
		// A report with no stack at all (a crash before any frame was
		// pushed) still has a stable identity, distinct from the same
		// PC with frames.
		bare := &vm.FailureReport{Kind: vm.FaultNullDeref, InstrID: 42}
		if bare.ID() == "" {
			t.Fatal("empty-stack report has no identity")
		}
		if bare.ID() != (&vm.FailureReport{Kind: vm.FaultNullDeref, InstrID: 42}).ID() {
			t.Error("empty-stack identity not stable across runs")
		}
		if bare.ID() == base.ID() {
			t.Error("report with frames collides with the frameless one")
		}
	})

	t.Run("truncated stack", func(t *testing.T) {
		// A truncated crash dump (missing innermost frame) is a
		// different failure identity — collapsing it into the full
		// report's cluster would mix two observation qualities.
		trunc := &vm.FailureReport{
			Kind:    base.Kind,
			InstrID: base.InstrID,
			Stack:   base.Stack[:len(base.Stack)-1],
		}
		if trunc.ID() == base.ID() {
			t.Error("truncated stack collides with full stack")
		}
	})

	t.Run("same PC different bug class", func(t *testing.T) {
		// The same failing instruction can fault two ways (e.g. a race
		// surfacing as null-deref or use-after-free); each class is its
		// own cluster because each gets its own diagnosis.
		other := &vm.FailureReport{
			Kind:    vm.FaultUseAfterFree,
			InstrID: base.InstrID,
			Stack:   base.Stack,
		}
		if other.ID() == base.ID() {
			t.Error("different fault kinds at one PC collide")
		}
	})

	t.Run("position and message excluded", func(t *testing.T) {
		// Source positions and human messages vary across builds; they
		// must not split a cluster.
		a := &vm.FailureReport{Kind: base.Kind, InstrID: base.InstrID, Stack: base.Stack, Msg: "boom at 0x1"}
		b := &vm.FailureReport{Kind: base.Kind, InstrID: base.InstrID, Stack: base.Stack, Msg: "boom at 0x2"}
		b.Pos.Line = 99
		if a.ID() != b.ID() {
			t.Error("message/position leaked into the failure identity")
		}
	})

	t.Run("deadlock other-thread PCs", func(t *testing.T) {
		// For deadlocks the cycle's other participants are part of the
		// identity: same blocked PC, different partner = different cycle.
		d1 := &vm.FailureReport{Kind: vm.FaultDeadlock, InstrID: 10, OtherPCs: []int{20}}
		d2 := &vm.FailureReport{Kind: vm.FaultDeadlock, InstrID: 10, OtherPCs: []int{30}}
		if d1.ID() == d2.ID() {
			t.Error("deadlock cycles with different partners collide")
		}
	})
}

// TestClusterDeduplicatesRecurrences runs a single-failure program many
// times and checks every recurrence lands in one cluster with one
// identity — the WER-style dedup that makes "one diagnosis per cluster"
// meaningful.
func TestClusterDeduplicatesRecurrences(t *testing.T) {
	prog := ir.MustCompile("one.mc", `global int* p;
void boom(int arg) { int v = p[0]; }
int main() {
	int t = spawn(boom, 0);
	join(t);
	return 0;
}`)
	clusters, err := ClusterFailures(ClusterConfig{Prog: prog, Runs: 50, SeedBase: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Fatalf("expected 1 cluster, got %d", len(clusters))
	}
	c := clusters[0]
	if c.Count != 50 {
		t.Errorf("cluster count = %d, want 50 recurrences deduped into one cluster", c.Count)
	}
	if len(c.Seeds) != 16 {
		t.Errorf("recorded %d seeds, want the 16-seed cap", len(c.Seeds))
	}
	if c.ID != c.Report.ID() {
		t.Errorf("cluster ID %s does not match its report identity %s", c.ID, c.Report.ID())
	}
}

// TestClusterConfigValidate pins that nonsense knob values are rejected
// up front instead of silently corrupting the sweep (a negative seed cap
// used to break the seed-list bound without any diagnostic).
func TestClusterConfigValidate(t *testing.T) {
	prog := ir.MustCompile("ok.mc", `int main() { return 0; }`)
	cases := []struct {
		name string
		cfg  ClusterConfig
		ok   bool
	}{
		{"zero values default", ClusterConfig{Prog: prog}, true},
		{"explicit sane knobs", ClusterConfig{Prog: prog, Runs: 10, PreemptMean: 2, MaxSteps: 1000, MaxSeedsPerCluster: 4}, true},
		{"nil program", ClusterConfig{}, false},
		{"negative runs", ClusterConfig{Prog: prog, Runs: -1}, false},
		{"negative preempt mean", ClusterConfig{Prog: prog, PreemptMean: -3}, false},
		{"negative max steps", ClusterConfig{Prog: prog, MaxSteps: -1}, false},
		{"negative seed cap", ClusterConfig{Prog: prog, MaxSeedsPerCluster: -1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("invalid config accepted")
			}
			// ClusterFailures must refuse the same configs rather than
			// run with them.
			if _, err := ClusterFailures(tc.cfg); (err == nil) != tc.ok {
				t.Fatalf("ClusterFailures validation disagrees: err=%v", err)
			}
		})
	}
}

// TestClusterAdmitCap pins the shared admission rule: counts always
// grow, seeds only up to the cap.
func TestClusterAdmitCap(t *testing.T) {
	c := &FailureCluster{ID: "f0"}
	for s := int64(0); s < 10; s++ {
		c.Admit(s, 3)
	}
	if c.Count != 10 {
		t.Errorf("count = %d, want 10", c.Count)
	}
	if len(c.Seeds) != 3 {
		t.Errorf("seeds = %v, want 3 entries", c.Seeds)
	}
}
