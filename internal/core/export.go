package core

import "encoding/json"

// The paper integrated Gist with KCachegrind so developers could navigate
// sketches in a viewer; the equivalent integration surface here is a
// stable JSON encoding of the sketch for external tools.

// SketchJSON is the machine-readable form of a failure sketch.
type SketchJSON struct {
	Title       string           `json:"title"`
	FailureKind string           `json:"failure_kind"`
	FailureLine int              `json:"failure_line"`
	Threads     []int            `json:"threads"`
	Steps       []SketchStepJSON `json:"steps"`
	Predictors  []PredictorJSON  `json:"predictors"`
	Refined     []int            `json:"refined_lines,omitempty"`
}

// SketchStepJSON is one sketch row.
type SketchStepJSON struct {
	Step      int    `json:"step"`
	Thread    int    `json:"thread"`
	Line      int    `json:"line"`
	Text      string `json:"text"`
	Value     *int64 `json:"value,omitempty"`
	Highlight bool   `json:"highlight,omitempty"`
	IsFailure bool   `json:"is_failure,omitempty"`
}

// PredictorJSON is one ranked failure predictor.
type PredictorJSON struct {
	Kind      string  `json:"kind"`
	Desc      string  `json:"desc"`
	Pattern   string  `json:"pattern,omitempty"`
	Lines     []int   `json:"lines"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F         float64 `json:"f_measure"`
}

// ToJSON converts the sketch into its exportable form.
func (sk *Sketch) ToJSON() SketchJSON {
	out := SketchJSON{
		Title:       sk.Title,
		FailureKind: sk.FailureKind,
		FailureLine: sk.Report.Pos.Line,
		Threads:     sk.Threads,
	}
	for _, s := range sk.Steps {
		row := SketchStepJSON{
			Step: s.Step, Thread: s.Thread, Line: s.Line, Text: s.Text,
			Highlight: s.Highlight, IsFailure: s.IsFailure,
		}
		if s.HasValue {
			v := s.Value
			row.Value = &v
		}
		out.Steps = append(out.Steps, row)
	}
	for _, r := range sk.Predictors {
		var lines []int
		seen := map[int]bool{}
		for _, id := range r.InstrIDs {
			ln := sk.Prog.Instrs[id].Pos.Line
			if !seen[ln] {
				seen[ln] = true
				lines = append(lines, ln)
			}
		}
		out.Predictors = append(out.Predictors, PredictorJSON{
			Kind: r.Kind.String(), Desc: r.Desc, Pattern: r.Pattern,
			Lines: lines, Precision: r.P, Recall: r.R, F: r.F,
		})
	}
	seen := map[int]bool{}
	for _, id := range sk.AddedByRefinement {
		ln := sk.Prog.Instrs[id].Pos.Line
		if !seen[ln] {
			seen[ln] = true
			out.Refined = append(out.Refined, ln)
		}
	}
	return out
}

// MarshalIndentJSON renders the sketch as indented JSON.
func (sk *Sketch) MarshalIndentJSON() ([]byte, error) {
	return json.MarshalIndent(sk.ToJSON(), "", "  ")
}
