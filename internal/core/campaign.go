package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/faults"
	"repro/internal/ir"
	"repro/internal/slicer"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// A Campaign is one in-flight Gist diagnosis, decomposed into an
// explicit state machine. The paper's adaptive slice-tracking loop
// (§3.2.1) refines one failure sketch per failure *while the service
// keeps running*; holding every piece of iteration state — the sigma
// window, refinement-added statements, the seed cursor, per-iteration
// stats, fleet health — in an explicit, serializable struct is what
// lets a diagnosis be checkpointed, killed, resumed, and interleaved
// with other campaigns over a shared fleet.
//
// One AsT iteration is the stage sequence
//
//	Plan → Dispatch → Admit → Rank → Decide
//
// each a method on Campaign. Step runs them in order; Run loops Step to
// completion and is what RunFromReport wraps, byte-identical to the
// historical monolithic loop. Between Steps the campaign sits at an
// iteration boundary where Snapshot can serialize it; RestoreCampaign
// rebuilds an equivalent campaign that continues the diagnosis
// byte-for-byte.
//
// A Campaign is not safe for concurrent use; concurrency lives inside
// the fleet layer (Config.Workers or a shared Pool) and across
// campaigns (internal/sched).
type Campaign struct {
	cfg    Config // defaults applied
	label  string // telemetry tenant label (cfg.Label)
	report *vm.FailureReport
	pool   *Pool  // optional shared fleet; nil = private pool
	runner Runner // optional remote fleet; nil = run in-process

	g   *cfg.TICFG
	sl  *slicer.Slice
	inj *faults.Injector

	// Serializable iteration-boundary state.
	res       *Result
	overheads []float64
	added     []int
	addedSet  map[int]bool
	sigma     int
	seed      int64 // next production-run seed (the explicit seed cursor)
	iter      int

	finished bool
	// exhausted marks a campaign that stopped only because cfg.MaxIters
	// ran out — boundary state is intact and a restore with a larger
	// budget may continue, so Snapshot records it as unfinished.
	exhausted bool
	finErr    error

	// inIter guards Snapshot against mid-iteration capture when the
	// stage methods are driven individually.
	inIter bool

	st iterState
}

// iterState is the transient state of the iteration currently in
// flight. It is rebuilt by Plan every iteration and never serialized:
// checkpoints happen only at iteration boundaries.
type iterState struct {
	limit     int
	effSigma  int
	window    []int
	windowSet map[int]bool
	plan      *Plan

	failing    []*RunTrace
	successful []*RunTrace
	// accum streams predictor contingency counters as runs are
	// admitted, so Rank reads finished statistics instead of
	// recomputing them from the retained populations. Proven equal to
	// the batch recomputation (predict_test.go); rebuilt by Plan like
	// the rest of the iteration state, never serialized.
	accum     *PredictorAccum
	health    FleetHealth
	lost      []int
	iterStart int
	addedNow  []int

	fleetSpan telemetry.Span
}

// NewCampaign prepares a diagnosis for a known failure report: builds
// the TICFG and the static slice (merging deadlock participants), and
// positions the seed cursor right after the seeds discovery actually
// consumed — discovery used cfg.SeedBase..cfg.SeedBase+discRuns-1, so
// production-run seeds start at cfg.SeedBase+discRuns. (The historical
// loop skipped to cfg.SeedBase+cfg.MaxDiscoveryRuns even when discovery
// stopped far earlier, wasting the gap; checkpoints store the cursor
// explicitly, so restored campaigns replay whatever cursor they were
// saved with.)
func NewCampaign(c Config, report *vm.FailureReport, discRuns int) (*Campaign, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if report == nil {
		return nil, fmt.Errorf("gist: campaign needs a failure report")
	}
	c = c.withDefaults()
	camp := &Campaign{cfg: c, label: c.Label, report: report}
	camp.prepare()
	camp.res.DiscoveryRuns = discRuns
	camp.seed = c.SeedBase + int64(discRuns)
	return camp, nil
}

// prepare builds the derived (non-serialized) campaign state: graph,
// slice, injector, and the result shell. Shared by NewCampaign and
// RestoreCampaign so both construction paths run the same analysis
// phases.
func (c *Campaign) prepare() {
	cfg := c.cfg
	tel := cfg.Telemetry
	sp := tel.StartSpanL(telemetry.PhaseTICFG, c.label)
	c.g = cfg.BuildGraph()
	sp.End()
	sp = tel.StartSpanL(telemetry.PhaseSlice, c.label)
	sl := analysis.Slice(cfg.Prog, c.report.InstrID)
	// Deadlock reports carry the other blocked threads' PCs (a crash dump
	// has every thread's stack): slice from each cycle participant and
	// merge, so the sketch shows the whole inversion.
	for _, pc := range c.report.OtherPCs {
		for _, id := range analysis.Slice(cfg.Prog, pc).Discovery {
			sl.Add(id)
		}
	}
	sp.End()
	c.sl = sl
	c.res = &Result{Slice: sl, Report: c.report}
	tel.SetGauge("fleet.workers", int64(cfg.Workers))
	c.addedSet = make(map[int]bool)
	c.sigma = cfg.Sigma0
	c.inj = faults.NewInjector(cfg.Faults)
}

// UsePool attaches a shared fleet pool. Must be called before the first
// Step; the diagnosis output is byte-identical with or without a pool —
// only wall-clock interleaving changes.
func (c *Campaign) UsePool(p *Pool) { c.pool = p }

// Label returns the campaign's telemetry label.
func (c *Campaign) Label() string { return c.label }

// Report returns the failure report the campaign is diagnosing.
func (c *Campaign) Report() *vm.FailureReport { return c.report }

// Iteration returns the index of the next AsT iteration to run (equals
// the number of completed iterations at a boundary).
func (c *Campaign) Iteration() int { return c.iter }

// Finished reports whether the diagnosis reached a terminal state.
func (c *Campaign) Finished() bool { return c.finished }

// TotalRuns returns the production runs consumed so far — live progress
// for schedulers measuring per-tenant fleet consumption.
func (c *Campaign) TotalRuns() int { return c.res.TotalRuns }

// chunkWidth is the fleet width speculation is sized for.
func (c *Campaign) chunkWidth() int {
	if c.pool != nil {
		return c.pool.Width()
	}
	return c.cfg.Workers
}

// UseRunner routes the campaign's production runs through r instead of
// the in-process fleet — the service's seam. Passing nil restores the
// in-process fleet. Seed binding, admission order, and every counter
// are unchanged: the runner only decides where runs execute.
func (c *Campaign) UseRunner(r Runner) { c.runner = r }

// runJobs executes one batch on the campaign's fleet: the attached
// Runner when present, the shared pool when attached, a private bounded
// pool otherwise. Results come back in job order every way.
func (c *Campaign) runJobs(jobs []RunJob) []*RunTrace {
	if c.runner != nil {
		return c.runner.RunBatch(c.st.plan, jobs)
	}
	if c.pool != nil {
		return parallelMapPool(len(jobs), c.pool, func(i int) *RunTrace {
			return RunInstrumentedFaults(c.st.plan, jobs[i].Spec, jobs[i].Dec)
		})
	}
	return runFleet(c.st.plan, jobs, c.cfg.Workers)
}

// need reports whether the current iteration still wants runs.
func (c *Campaign) need() bool {
	return len(c.st.failing) < c.cfg.FailuresPerIter || len(c.st.successful) < c.cfg.MinSuccesses
}

// makeJob binds one production run's identity — endpoint, seed,
// workload, fault decision — at dispatch time, before the worker pool
// touches it, so parallel execution cannot perturb the seed-to-run
// mapping.
func (c *Campaign) makeJob(e int, s int64) RunJob {
	cfg := c.cfg
	return RunJob{
		Spec: RunSpec{
			EndpointID:  e,
			Seed:        s,
			Workload:    cfg.workloadFor(e),
			PreemptMean: cfg.PreemptMean,
			MaxSteps:    cfg.MaxSteps,
		},
		Dec: c.inj.ForRun(e, s),
	}
}

// admit applies the server's admission logic to one arrived report,
// strictly in dispatch order: crashed and deadline-missing endpoints
// are recorded for the retry pass, arriving reports pass server-side
// validation, and undecodable traces are quarantined away from
// predictor extraction while keeping their outcome.
func (c *Campaign) admit(job RunJob, rt *RunTrace) {
	cfg := c.cfg
	tel := cfg.Telemetry
	st := &c.st
	spec := job.Spec
	// Fault-class accounting happens here, not at dispatch: admission
	// order is the part of the pipeline that is byte-identical at any
	// worker width, so the counters are width-stable even though
	// speculative chunks over-dispatch.
	if tel != nil && job.Dec.Any() {
		tel.AddL(c.label, "faults.injected_runs", 1)
		countFaults(tel, c.label, job.Dec)
	}
	st.health.Dispatched++
	c.res.TotalRuns++
	if rt == nil {
		st.health.Lost++
		st.lost = append(st.lost, spec.EndpointID)
		return
	}
	if rt.Late || (cfg.RunDeadlineSteps > 0 && rt.Outcome != nil && rt.Outcome.Steps > cfg.RunDeadlineSteps) {
		st.health.Deadlined++
		st.lost = append(st.lost, spec.EndpointID)
		return
	}
	quarantine, repaired := validateTrace(rt, len(cfg.Prog.Instrs))
	if quarantine {
		st.health.Quarantined++
		return
	}
	if repaired > 0 {
		st.health.Repaired++
	}
	st.health.Arrived++
	st.health.TrapsDropped += rt.DroppedTraps
	if rt.SalvagedCores > 0 {
		st.health.Salvaged++
	}
	if rt.DecodeErr != nil {
		st.health.DecodeErrs++
		quarantineTraceData(rt)
	}
	if cfg.Features.ExtendedPT {
		// The extended-PT trace logs every shared access; keep only
		// those on addresses the tracked slice touches, the same set
		// hardware watchpoints would have trapped on.
		sl, windowSet := c.sl, st.windowSet
		rt.FilterTraps(func(id int) bool { return sl.Contains(id) || windowSet[id] })
	}
	c.overheads = append(c.overheads, rt.Meter.OverheadPct())
	if rt.Failed() && rt.Outcome.Report.ID() == c.report.ID() {
		if len(st.failing) < cfg.FailuresPerIter {
			st.failing = append(st.failing, rt)
			st.accum.Observe(rt, true)
		}
	} else if !rt.Failed() {
		st.successful = append(st.successful, rt)
		st.accum.Observe(rt, false)
	}
}

// Plan is stage 1 of an AsT iteration: size the tracked window from the
// current sigma, merge in every refinement-discovered statement, and
// build the instrumentation plan (PT start/stop points, watchpoint
// groups) for the fleet.
func (c *Campaign) Plan() {
	cfg := c.cfg
	c.inIter = true
	c.st = iterState{}
	st := &c.st
	limit := c.sl.LineCount()
	if cfg.MaxSigma > 0 && cfg.MaxSigma < limit {
		limit = cfg.MaxSigma
	}
	st.limit = limit
	st.effSigma = c.sigma
	if st.effSigma > limit {
		st.effSigma = limit
	}
	st.window = mergeWindow(c.sl.Window(st.effSigma), c.added)
	sp := cfg.Telemetry.StartSpanL(telemetry.PhasePlan, c.label)
	st.plan = BuildPlan(c.g, st.window, cfg.Features)
	sp.End()
	st.plan.Telemetry = cfg.Telemetry
	st.plan.Engine = cfg.Engine
	st.windowSet = make(map[int]bool, len(st.window))
	for _, id := range st.window {
		st.windowSet[id] = true
	}
	st.accum = NewPredictorAccum(cfg.Prog, cfg.Beta)
	st.iterStart = len(c.overheads)
}

// Dispatch is stage 2: fan the iteration's endpoint batches out over
// the fleet in speculative chunks while admitting reports strictly in
// dispatch order, stopping at exactly the run where a serial fleet
// would have stopped; speculated runs past that point are discarded
// unconsumed and their seeds are never burned.
func (c *Campaign) Dispatch() {
	cfg := c.cfg
	st := &c.st
	st.fleetSpan = cfg.Telemetry.StartSpanL(telemetry.PhaseFleet, c.label)
	budget := cfg.MaxBatches * cfg.Endpoints
	chunk := fleetChunk(c.chunkWidth())
	for done := 0; done < budget && c.need(); {
		n := chunk
		if done+n > budget {
			n = budget - done
		}
		jobs := make([]RunJob, n)
		for j := range jobs {
			jobs[j] = c.makeJob((done+j)%cfg.Endpoints, c.seed+int64(j))
		}
		results := c.runJobs(jobs)
		for j, rt := range results {
			if !c.need() {
				break
			}
			c.admit(jobs[j], rt)
			c.seed++
			done++
		}
	}
}

// Admit is stage 3: lost and deadlined endpoints get their batches
// retried with capped exponential backoff — each retry pass costs
// backoff simulated batch delays, then re-seeds a replacement run per
// missing endpoint. A retry batch always runs to completion (need()
// gates passes, not batch members), so the whole batch fans out across
// the pool at once.
func (c *Campaign) Admit() {
	cfg := c.cfg
	st := &c.st
	backoff := 1
	for retry := 0; retry < cfg.MaxRetries && len(st.lost) > 0 && c.need(); retry++ {
		st.health.Retries++
		st.health.BackoffBatches += backoff
		batch := st.lost
		st.lost = nil
		jobs := make([]RunJob, len(batch))
		for j, e := range batch {
			jobs[j] = c.makeJob(e, c.seed+int64(j))
		}
		results := c.runJobs(jobs)
		for j, rt := range results {
			st.health.Reseeded++
			c.admit(jobs[j], rt)
			c.seed++
		}
		if backoff < 8 {
			backoff *= 2
		}
	}
	st.fleetSpan.End()
}

// Rank is stage 4, run only when the failure recurred: refinement
// (§3.2.3) folds watchpoint-discovered statements into the slice, then
// the failing/successful populations are statistically compared, the
// predictors ranked, and the iteration's sketch rendered from the
// best-instrumented failing run.
func (c *Campaign) Rank() {
	cfg := c.cfg
	tel := cfg.Telemetry
	st := &c.st
	if len(st.failing) == 0 {
		return // Decide handles the did-not-recur path
	}
	c.res.FailureRecurrences += len(st.failing)

	// Refinement (§3.2.3): statements discovered by the watchpoints that
	// the alias-free static slice missed are added to the slice. Both
	// failing and successful runs contribute: in failing schedules the
	// racing store often happens before any tracked access arms a
	// watchpoint, while successful schedules catch it.
	refine := func(rt *RunTrace) {
		for _, tr := range rt.Traps {
			if !c.sl.Contains(tr.InstrID) && !c.addedSet[tr.InstrID] {
				c.addedSet[tr.InstrID] = true
				c.added = append(c.added, tr.InstrID)
				st.addedNow = append(st.addedNow, tr.InstrID)
				c.sl.Add(tr.InstrID)
			}
		}
	}
	for _, rt := range st.failing {
		refine(rt)
	}
	for _, rt := range st.successful {
		refine(rt)
	}

	// Quorum (§3.2): with too few validated runs the statistical
	// comparison is noise; rank anyway, but annotate the sketch so the
	// developer knows the confidence is degraded.
	lowConf := len(st.failing)+len(st.successful) < cfg.MinQuorum
	if lowConf {
		st.health.LowConfidenceIters++
	}
	// The streaming accumulator already holds every admitted run's
	// contingency counters; reading it here replaces the historical
	// end-of-iteration batch recomputation, byte-identically.
	sp := tel.StartSpanL(telemetry.PhaseRank, c.label)
	ranked := st.accum.Ranked()
	sp.End()
	// Base the sketch on the best-instrumented failing run: under
	// cooperative watchpoint partitioning, different failing runs
	// observed different location classes.
	basis := st.failing[0]
	for _, rt := range st.failing[1:] {
		if betterBasis(rt, basis) {
			basis = rt
		}
	}
	sp = tel.StartSpanL(telemetry.PhaseSketch, c.label)
	sketch := BuildSketch(cfg.Title, st.plan, basis, ranked, c.added)
	sp.End()
	sketch.LowConfidence = lowConf
	c.res.Sketch = sketch
	c.res.Iters = append(c.res.Iters, IterStats{
		Sigma:         st.effSigma,
		TrackedLines:  st.effSigma,
		TrackedInstrs: len(st.window),
		Failing:       len(st.failing),
		Successful:    len(st.successful),
		OverheadPct:   stats.Mean(c.overheads[st.iterStart:]),
		AddedInstrs:   st.addedNow,
		Health:        st.health,
	})
	c.res.Health.Merge(st.health)
}

// Decide is stage 5: fold the iteration into the diagnosis and pick the
// next move — stop at the developer oracle, stop when the window covers
// the slice and refinement converged, error out when the failure never
// recurs, or grow sigma and go around again. It returns true when the
// campaign reached a terminal state.
func (c *Campaign) Decide() bool {
	cfg := c.cfg
	st := &c.st
	c.inIter = false
	if len(st.failing) == 0 {
		c.res.Health.Merge(st.health)
		// The failure did not recur under this window's fleet budget;
		// grow the window and keep waiting, like a real deployment.
		c.growSigma()
		if st.effSigma >= st.limit {
			c.finish(fmt.Errorf("gist: failure %s did not recur (iteration %d)", c.report.ID(), c.iter))
			return true
		}
		c.iter++
		return false
	}
	if cfg.StopWhen != nil && cfg.StopWhen(c.res.Sketch) {
		c.finish(nil)
		return true
	}
	if len(st.addedNow) == 0 && st.effSigma >= st.limit {
		c.finish(nil) // window covers the slice and refinement converged
		return true
	}
	c.growSigma()
	c.iter++
	return false
}

func (c *Campaign) growSigma() {
	if c.cfg.SigmaGrowthAdd > 0 {
		c.sigma += c.cfg.SigmaGrowthAdd
	} else {
		c.sigma *= 2
	}
}

// finish moves the campaign to a terminal state. A nil err is the
// normal completion path: the diagnosis-wide overhead average is
// computed and a missing sketch becomes the "no sketch produced" error.
// The did-not-recur error path deliberately skips the average — exactly
// what the historical loop's early return did.
func (c *Campaign) finish(err error) {
	if c.finished {
		return
	}
	c.finished = true
	c.inIter = false
	if err == nil {
		c.res.AvgOverheadPct = stats.Mean(c.overheads)
		if c.res.Sketch == nil {
			err = fmt.Errorf("gist: no sketch produced")
		}
	}
	c.finErr = err
	// The diagnosis-wide FleetHealth aggregate doubles as the telemetry
	// counter inventory; push it on every terminal path so -metrics-json
	// sees the same numbers the Result carries.
	pushFleetCounters(c.cfg.Telemetry, c.label, c.res.Health)
}

// Abandon moves an unfinished campaign to a degraded terminal state —
// the supervisor's circuit breaker calls it after a campaign crash-loops
// past its restart budget. The latest checkpointed sketch is served
// marked low-confidence (degraded but actionable, like a quorum miss);
// a campaign abandoned before any sketch exists terminates with an
// error wrapping the abandonment reason.
func (c *Campaign) Abandon(reason error) {
	if c.finished {
		return
	}
	c.finished = true
	c.inIter = false
	c.res.AvgOverheadPct = stats.Mean(c.overheads)
	if c.res.Sketch != nil {
		c.res.Sketch.LowConfidence = true
	} else if reason != nil {
		c.finErr = fmt.Errorf("gist: campaign abandoned with no sketch: %w", reason)
	} else {
		c.finErr = fmt.Errorf("gist: campaign abandoned with no sketch")
	}
	pushFleetCounters(c.cfg.Telemetry, c.label, c.res.Health)
}

// Step runs one full AsT iteration — Plan through Decide — and reports
// whether the campaign finished (with the terminal error, if any). A
// Step on a finished campaign is a no-op returning the same terminal
// state, so drivers can poll freely.
func (c *Campaign) Step() (done bool, err error) {
	if c.finished {
		return true, c.finErr
	}
	if c.iter >= c.cfg.MaxIters {
		c.exhausted = true
		c.finish(nil)
		return true, c.finErr
	}
	c.Plan()
	c.Dispatch()
	c.Admit()
	c.Rank()
	if c.Decide() {
		return true, c.finErr
	}
	return false, nil
}

// Run steps the campaign to completion and returns its result — the
// historical RunFromReport behavior.
func (c *Campaign) Run() (*Result, error) {
	for {
		done, err := c.Step()
		if done {
			return c.res, err
		}
	}
}

// Result returns the finished campaign's outcome. Stepping drivers call
// it after Step reports done; the partial Result of an unfinished
// campaign is not exposed because its aggregate fields (AvgOverheadPct)
// are not yet computed.
func (c *Campaign) Result() (*Result, error) {
	if !c.finished {
		return nil, fmt.Errorf("gist: campaign not finished (iteration %d)", c.iter)
	}
	return c.res, c.finErr
}

// ------------------------------------------------------------ snapshot

// CampaignSnapshotVersion is the checkpoint schema version this build
// reads and writes. Unknown versions are rejected with a clear error so
// a stale checkpoint can never silently corrupt a diagnosis.
const CampaignSnapshotVersion = 1

// CampaignSnapshot is the versioned, serializable image of a campaign
// at an iteration boundary. Everything a resumed process cannot
// recompute deterministically is explicit: the failure report, the seed
// cursor, refinement-added statements (in discovery order, so the slice
// rebuilds byte-identically), the overhead samples, and the accumulated
// result including the latest sketch.
type CampaignSnapshot struct {
	Version int    `json:"version"`
	Label   string `json:"label,omitempty"`
	Title   string `json:"title"`

	Report        *vm.FailureReport `json:"report"`
	ReportID      string            `json:"report_id"`
	DiscoveryRuns int               `json:"discovery_runs"`

	Iter       int       `json:"iter"`
	Sigma      int       `json:"sigma"`
	SeedCursor int64     `json:"seed_cursor"`
	Added      []int     `json:"added,omitempty"`
	Overheads  []float64 `json:"overheads,omitempty"`

	FailureRecurrences int         `json:"failure_recurrences"`
	TotalRuns          int         `json:"total_runs"`
	Health             FleetHealth `json:"health"`
	Iters              []IterStats `json:"iters,omitempty"`

	Sketch *SketchState `json:"sketch,omitempty"`

	// Finished marks a terminal campaign (developer oracle, convergence,
	// or the did-not-recur error — recorded in FinalErr). A campaign
	// that merely ran out of MaxIters snapshots as unfinished boundary
	// state, so resuming with a larger budget continues the diagnosis.
	Finished       bool    `json:"finished,omitempty"`
	FinalErr       string  `json:"final_err,omitempty"`
	AvgOverheadPct float64 `json:"avg_overhead_pct,omitempty"`
}

// SketchState is the serializable part of a Sketch. The program and
// report pointers are reattached from the restoring configuration.
type SketchState struct {
	Title             string       `json:"title"`
	FailureKind       string       `json:"failure_kind"`
	Threads           []int        `json:"threads,omitempty"`
	Steps             []SketchStep `json:"steps,omitempty"`
	Predictors        []Ranked     `json:"predictors,omitempty"`
	AllRanked         []Ranked     `json:"all_ranked,omitempty"`
	InstrSet          []int        `json:"instr_set,omitempty"`
	AddedByRefinement []int        `json:"added_by_refinement,omitempty"`
	LowConfidence     bool         `json:"low_confidence,omitempty"`
}

func sketchToState(sk *Sketch) *SketchState {
	if sk == nil {
		return nil
	}
	instrs := make([]int, 0, len(sk.InstrSet))
	for id := range sk.InstrSet {
		instrs = append(instrs, id)
	}
	sort.Ints(instrs)
	return &SketchState{
		Title:             sk.Title,
		FailureKind:       sk.FailureKind,
		Threads:           sk.Threads,
		Steps:             sk.Steps,
		Predictors:        sk.Predictors,
		AllRanked:         sk.AllRanked,
		InstrSet:          instrs,
		AddedByRefinement: sk.AddedByRefinement,
		LowConfidence:     sk.LowConfidence,
	}
}

func (s *SketchState) toSketch(cfg Config, report *vm.FailureReport) *Sketch {
	if s == nil {
		return nil
	}
	sk := &Sketch{
		Title:             s.Title,
		FailureKind:       s.FailureKind,
		Report:            report,
		Prog:              cfg.Prog,
		Threads:           s.Threads,
		Steps:             s.Steps,
		Predictors:        s.Predictors,
		AllRanked:         s.AllRanked,
		InstrSet:          make(map[int]bool, len(s.InstrSet)),
		AddedByRefinement: s.AddedByRefinement,
		LowConfidence:     s.LowConfidence,
	}
	for _, id := range s.InstrSet {
		sk.InstrSet[id] = true
	}
	return sk
}

// Snapshot serializes the campaign at the current iteration boundary.
// It fails if called mid-iteration (between individually driven stage
// methods): transient fleet state is deliberately not serializable.
func (c *Campaign) Snapshot() (*CampaignSnapshot, error) {
	if c.inIter {
		return nil, fmt.Errorf("gist: snapshot mid-iteration %d; snapshots happen at iteration boundaries", c.iter)
	}
	snap := &CampaignSnapshot{
		Version:            CampaignSnapshotVersion,
		Label:              c.label,
		Title:              c.cfg.Title,
		Report:             c.report,
		ReportID:           c.report.ID(),
		DiscoveryRuns:      c.res.DiscoveryRuns,
		Iter:               c.iter,
		Sigma:              c.sigma,
		SeedCursor:         c.seed,
		Added:              append([]int(nil), c.added...),
		Overheads:          append([]float64(nil), c.overheads...),
		FailureRecurrences: c.res.FailureRecurrences,
		TotalRuns:          c.res.TotalRuns,
		Health:             c.res.Health,
		Iters:              append([]IterStats(nil), c.res.Iters...),
		Sketch:             sketchToState(c.res.Sketch),
	}
	if c.finished && !c.exhausted {
		snap.Finished = true
		snap.AvgOverheadPct = c.res.AvgOverheadPct
		if c.finErr != nil {
			snap.FinalErr = c.finErr.Error()
		}
	}
	return snap, nil
}

// RenderSketchJSON rebuilds the snapshot's sketch against prog and
// renders it exactly as a live campaign does (MarshalIndentJSON), so a
// sketch reloaded from a durable checkpoint after cache eviction is
// byte-identical to the one the finishing campaign served from memory.
// It fails when the snapshot carries no sketch (a campaign checkpointed
// before its first ranking, or one that errored out).
func (s *CampaignSnapshot) RenderSketchJSON(prog *ir.Program) ([]byte, error) {
	if s.Sketch == nil {
		return nil, fmt.Errorf("gist: checkpoint for %s has no sketch", s.Title)
	}
	return s.Sketch.toSketch(Config{Prog: prog}, s.Report).MarshalIndentJSON()
}

// Encode renders the snapshot as indented JSON with a trailing newline.
func (s *CampaignSnapshot) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeCampaignSnapshot parses a checkpoint, rejecting unknown schema
// versions before looking at anything else.
func DecodeCampaignSnapshot(data []byte) (*CampaignSnapshot, error) {
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("gist: checkpoint is not valid JSON: %w", err)
	}
	if probe.Version != CampaignSnapshotVersion {
		return nil, fmt.Errorf("gist: checkpoint version %d not supported (this build reads version %d)",
			probe.Version, CampaignSnapshotVersion)
	}
	var snap CampaignSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("gist: checkpoint: %w", err)
	}
	if snap.Report == nil {
		return nil, fmt.Errorf("gist: checkpoint has no failure report")
	}
	if snap.ReportID != "" && snap.Report.ID() != snap.ReportID {
		return nil, fmt.Errorf("gist: checkpoint report identity %s does not match stored id %s",
			snap.Report.ID(), snap.ReportID)
	}
	return &snap, nil
}

// RestoreCampaign rebuilds a campaign from a snapshot under cfg. The
// static analysis is recomputed (it is memoized and deterministic), the
// refinement-added statements are replayed onto the slice in their
// original discovery order, and the explicit seed cursor is restored
// verbatim — so continuing the campaign reproduces the uninterrupted
// diagnosis byte-for-byte from the checkpointed boundary on.
func RestoreCampaign(c Config, snap *CampaignSnapshot) (*Campaign, error) {
	if snap == nil {
		return nil, fmt.Errorf("gist: nil checkpoint")
	}
	if snap.Version != CampaignSnapshotVersion {
		return nil, fmt.Errorf("gist: checkpoint version %d not supported (this build reads version %d)",
			snap.Version, CampaignSnapshotVersion)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if snap.Report == nil {
		return nil, fmt.Errorf("gist: checkpoint has no failure report")
	}
	c = c.withDefaults()
	camp := &Campaign{cfg: c, label: c.Label, report: snap.Report}
	if snap.Label != "" {
		camp.label = snap.Label
	}
	camp.prepare()

	// Replay refinement in discovery order so Slice.IDs/Discovery match
	// the uninterrupted run exactly.
	for _, id := range snap.Added {
		camp.addedSet[id] = true
		camp.added = append(camp.added, id)
		camp.sl.Add(id)
	}
	camp.sigma = snap.Sigma
	camp.seed = snap.SeedCursor
	camp.iter = snap.Iter
	camp.overheads = append([]float64(nil), snap.Overheads...)

	camp.res.DiscoveryRuns = snap.DiscoveryRuns
	camp.res.FailureRecurrences = snap.FailureRecurrences
	camp.res.TotalRuns = snap.TotalRuns
	camp.res.Health = snap.Health
	camp.res.Iters = append([]IterStats(nil), snap.Iters...)
	camp.res.Sketch = snap.Sketch.toSketch(c, snap.Report)

	if snap.Finished {
		camp.finished = true
		camp.res.AvgOverheadPct = snap.AvgOverheadPct
		if snap.FinalErr != "" {
			camp.finErr = fmt.Errorf("%s", snap.FinalErr)
		}
	}
	return camp, nil
}

// betterBasis prefers a failing run with a clean decode over one whose
// trace had to be quarantined, then the run with the larger trap log
// (strictly larger, so the earliest run wins ties and the clean-fleet
// choice is unchanged).
func betterBasis(a, b *RunTrace) bool {
	if (a.DecodeErr == nil) != (b.DecodeErr == nil) {
		return a.DecodeErr == nil
	}
	return len(a.Traps) > len(b.Traps)
}

// countFaults records one admitted run's injected fault classes under
// the campaign's label.
func countFaults(tel *telemetry.Tracer, label string, dec faults.Decision) {
	for _, c := range []struct {
		name string
		hit  bool
	}{
		{"faults.crash", dec.Crash},
		{"faults.hang", dec.Hang},
		{"faults.overflow", dec.Overflow},
		{"faults.corrupt", dec.Corrupt},
		{"faults.drop_traps", dec.DropTraps},
		{"faults.reorder_traps", dec.ReorderTraps},
		{"faults.truncate", dec.Truncate != faults.TruncateNone},
	} {
		if c.hit {
			tel.AddL(label, c.name, 1)
		}
	}
}

// pushFleetCounters mirrors a FleetHealth aggregate into telemetry
// counters, unifying the scattered per-subsystem accounting under one
// "fleet.*" namespace (labeled per campaign when a label is set).
func pushFleetCounters(tel *telemetry.Tracer, label string, h FleetHealth) {
	if tel == nil {
		return
	}
	tel.AddL(label, "fleet.dispatched", int64(h.Dispatched))
	tel.AddL(label, "fleet.arrived", int64(h.Arrived))
	tel.AddL(label, "fleet.lost", int64(h.Lost))
	tel.AddL(label, "fleet.deadlined", int64(h.Deadlined))
	tel.AddL(label, "fleet.decode_errs", int64(h.DecodeErrs))
	tel.AddL(label, "fleet.salvaged", int64(h.Salvaged))
	tel.AddL(label, "fleet.quarantined", int64(h.Quarantined))
	tel.AddL(label, "fleet.repaired", int64(h.Repaired))
	tel.AddL(label, "fleet.traps_dropped", int64(h.TrapsDropped))
	tel.AddL(label, "fleet.retries", int64(h.Retries))
	tel.AddL(label, "fleet.reseeded", int64(h.Reseeded))
	tel.AddL(label, "fleet.backoff_batches", int64(h.BackoffBatches))
	tel.AddL(label, "fleet.low_confidence_iters", int64(h.LowConfidenceIters))
}
