package core

import (
	"strings"
	"testing"

	"repro/internal/faults"
)

// TestConfigValidateRejectsOutOfRange pins the config guard: negative
// knobs and out-of-range fault rates must be rejected before any run
// starts, via both Validate and the Run entry point.
func TestConfigValidateRejectsOutOfRange(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative workers", func(c *Config) { c.Workers = -2 }, "Workers"},
		{"negative sigma0", func(c *Config) { c.Sigma0 = -1 }, "Sigma0"},
		{"negative beta", func(c *Config) { c.Beta = -0.5 }, "Beta"},
		{"negative deadline", func(c *Config) { c.RunDeadlineSteps = -7 }, "RunDeadlineSteps"},
		{"negative endpoints", func(c *Config) { c.Endpoints = -1 }, "Endpoints"},
		{"fault rate above 1", func(c *Config) { c.Faults.CrashRate = 1.5 }, "crash rate 1.5"},
		{"negative fault rate", func(c *Config) { c.Faults.HangRate = -0.1 }, "hang rate -0.1"},
		{"drop fraction above 1", func(c *Config) {
			c.Faults.TrapDropRate = 0.5
			c.Faults.DropFraction = 2
		}, "drop fraction 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := pbzipConfig(t)
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted the config")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name %q", err, tc.want)
			}
			if _, rerr := Run(cfg); rerr == nil {
				t.Error("Run accepted the config Validate rejected")
			}
		})
	}
}

// TestConfigValidateAcceptsWorkingConfigs keeps the guard from drifting
// into rejecting configs the rest of the suite runs every day.
func TestConfigValidateAcceptsWorkingConfigs(t *testing.T) {
	cfg := pbzipConfig(t)
	if err := cfg.Validate(); err != nil {
		t.Errorf("base config rejected: %v", err)
	}
	cfg.Faults = faults.Composite(1, 1.0)
	cfg.Workers = 8
	if err := cfg.Validate(); err != nil {
		t.Errorf("full-rate composite config rejected: %v", err)
	}
}
