package core

import (
	"fmt"
	"sort"
	"strings"
)

// FleetHealth summarizes how the endpoint fleet behaved during a
// diagnosis (or one AsT iteration of it): how many runs were
// dispatched, how many reports actually arrived and in what shape, and
// what the server had to do about the rest. A perfectly reliable fleet
// — the only kind the simulator used to model — has Dispatched ==
// Arrived and zeros everywhere else.
type FleetHealth struct {
	// Dispatched counts runs handed to endpoints.
	Dispatched int
	// Arrived counts reports that reached the server in time.
	Arrived int
	// Lost counts endpoints that crashed mid-run: no report.
	Lost int
	// Deadlined counts reports that arrived past the per-run deadline
	// and were discarded so a hung run cannot stall the iteration.
	Deadlined int
	// DecodeErrs counts runs whose PT trace failed to decode cleanly.
	DecodeErrs int
	// Salvaged counts runs whose corrupt trace was partially recovered
	// by PSB resynchronization.
	Salvaged int
	// Quarantined counts runs rejected from predictor ranking (failed
	// validation: truncated outcome, unusable trace data).
	Quarantined int
	// Repaired counts runs whose trap logs needed server-side repair
	// (re-sorting out-of-order traps, dropping out-of-range entries).
	Repaired int
	// TrapsDropped counts watchpoint trap records lost in flight.
	TrapsDropped int
	// Retries counts retry passes for lost endpoint batches.
	Retries int
	// Reseeded counts replacement runs dispatched to cover losses.
	Reseeded int
	// BackoffBatches counts the simulated batch delays spent in capped
	// exponential backoff before retries.
	BackoffBatches int
	// LowConfidenceIters counts iterations that ranked predictors below
	// the validated-run quorum.
	LowConfidenceIters int
}

// Merge accumulates another health summary into h.
func (h *FleetHealth) Merge(o FleetHealth) {
	h.Dispatched += o.Dispatched
	h.Arrived += o.Arrived
	h.Lost += o.Lost
	h.Deadlined += o.Deadlined
	h.DecodeErrs += o.DecodeErrs
	h.Salvaged += o.Salvaged
	h.Quarantined += o.Quarantined
	h.Repaired += o.Repaired
	h.TrapsDropped += o.TrapsDropped
	h.Retries += o.Retries
	h.Reseeded += o.Reseeded
	h.BackoffBatches += o.BackoffBatches
	h.LowConfidenceIters += o.LowConfidenceIters
}

// Degraded reports whether the fleet lost or damaged anything.
func (h FleetHealth) Degraded() bool {
	return h.Lost > 0 || h.Deadlined > 0 || h.DecodeErrs > 0 ||
		h.Quarantined > 0 || h.Repaired > 0 || h.TrapsDropped > 0 ||
		h.LowConfidenceIters > 0
}

// String renders the summary on one line, omitting zero fields.
func (h FleetHealth) String() string {
	parts := []string{fmt.Sprintf("dispatched=%d arrived=%d", h.Dispatched, h.Arrived)}
	add := func(name string, v int) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("lost", h.Lost)
	add("deadlined", h.Deadlined)
	add("decode-errs", h.DecodeErrs)
	add("salvaged", h.Salvaged)
	add("quarantined", h.Quarantined)
	add("repaired", h.Repaired)
	add("traps-dropped", h.TrapsDropped)
	add("retries", h.Retries)
	add("reseeded", h.Reseeded)
	add("backoff-batches", h.BackoffBatches)
	add("low-confidence-iters", h.LowConfidenceIters)
	return strings.Join(parts, " ")
}

// validateTrace is the server's admission check for an arrived RunTrace.
// It repairs what can be repaired in place (out-of-order trap logs are
// re-sorted, entries naming unknown instructions are dropped) and
// reports whether the run must be quarantined entirely (no usable
// outcome). The repaired return counts applied repairs. maxID is the
// program's instruction count (IDs at or above it are corrupt).
func validateTrace(rt *RunTrace, maxID int) (quarantine bool, repaired int) {
	if rt.Outcome == nil || (rt.Outcome.Failed && rt.Outcome.Report == nil) {
		// Truncated header: without an outcome the run can be matched
		// to neither the failing nor the successful population.
		return true, 0
	}
	// Traps must name known instructions and be in clock order.
	kept := rt.Traps[:0]
	for _, tr := range rt.Traps {
		if tr.InstrID < 0 || (maxID > 0 && tr.InstrID >= maxID) {
			repaired++
			continue
		}
		kept = append(kept, tr)
	}
	rt.Traps = kept
	for i := 1; i < len(rt.Traps); i++ {
		if rt.Traps[i].Clock < rt.Traps[i-1].Clock {
			sort.SliceStable(rt.Traps, func(a, b int) bool {
				return rt.Traps[a].Clock < rt.Traps[b].Clock
			})
			repaired++
			break
		}
	}
	// Flow entries must name known instructions; a corrupt decode that
	// slipped through with wild IDs is discarded wholesale.
	if maxID > 0 {
		for core, flow := range rt.Flow {
			for _, id := range flow {
				if id < 0 || id >= maxID {
					delete(rt.Flow, core)
					delete(rt.Branches, core)
					repaired++
					break
				}
			}
		}
	}
	return false, repaired
}

// quarantineTraceData strips the control-flow payload of a run whose
// trace could not be decoded (or failed validation) so that predictor
// extraction never sees corrupt flow or branch data. The run outcome —
// which travels in the report header, not the trace — stays usable for
// the failing/successful populations.
func quarantineTraceData(rt *RunTrace) {
	rt.Flow = make(map[int][]int)
	rt.Branches = nil
	rt.Executed = make(map[int]bool)
}
