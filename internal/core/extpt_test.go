package core

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/vm"
)

// extFeatures is the §6 hardware-extension configuration: data flow via
// PT data packets instead of debug registers.
func extFeatures() Features {
	return Features{Static: true, ControlFlow: true, DataFlow: true, ExtendedPT: true}
}

func TestExtendedPTEndToEnd(t *testing.T) {
	cfg := pbzipConfig(t)
	cfg.Features = extFeatures()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("gist with extended PT: %v", err)
	}
	sk := res.Sketch
	// The same root cause must emerge: a WR order predictor on f->mut
	// with perfect precision and the value 0 at the failing unlock.
	var order, value *Ranked
	for i := range sk.Predictors {
		switch sk.Predictors[i].Kind {
		case PredOrder:
			if order == nil {
				order = &sk.Predictors[i]
			}
		case PredValue:
			if value == nil {
				value = &sk.Predictors[i]
			}
		}
	}
	if order == nil || order.P < 0.9 {
		t.Errorf("extended PT lost the order predictor: %+v", order)
	}
	if value == nil || value.Value != 0 {
		t.Errorf("extended PT lost the value predictor: %+v", value)
	}
	if len(sk.AddedByRefinement) == 0 {
		t.Error("refinement should still discover the pointer stores from data packets")
	}
}

func TestExtendedPTHasNoWatchMisses(t *testing.T) {
	// A program with more shared location classes than debug registers:
	// watchpoints must partition (and can miss); extended PT sees all.
	src := `global int a; global int b; global int c; global int d; global int e2; global int f;
int work(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) { acc = acc + i % 5; }
	return acc;
}
int main() {
	int warm = work(3000);
	a = input(0); b = a + 1; c = b + 1; d = c + 1; e2 = d + 1; f = e2 + 1;
	int z = 1;
	if (f == 12) { z = 0; }
	return 10 / z;
}`
	prog := ir.MustCompile("many.mc", src)
	cfg := Config{
		Prog: prog, Title: "many-locations", Endpoints: 12, SeedBase: 1,
		WorkloadPool: workloads(7, 1, 2, 3),
	}
	cfg.Features = extFeatures()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("gist: %v", err)
	}
	// With extended PT every shared access in traced regions is logged:
	// the value chain a..f is all visible, so the best value predictor
	// pins one of the chain values with high precision.
	var val *Ranked
	for i := range res.Sketch.Predictors {
		if res.Sketch.Predictors[i].Kind == PredValue {
			val = &res.Sketch.Predictors[i]
		}
	}
	if val == nil || val.P < 0.9 {
		t.Errorf("value predictor under extended PT: %+v", val)
	}
}

// workloads builds single-int workload pools.
func workloads(vals ...int64) []vm.Workload {
	var out []vm.Workload
	for _, v := range vals {
		out = append(out, vm.Workload{Ints: []int64{v}})
	}
	return out
}

func TestExtendedPTOverheadComparable(t *testing.T) {
	// The extension should not be more expensive than watchpoints on the
	// pbzip2 workload (packet writes are far cheaper than ptrace traps,
	// though more events are logged).
	base := pbzipConfig(t)
	resWP, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	ext := pbzipConfig(t)
	ext.Features = extFeatures()
	resExt, err := Run(ext)
	if err != nil {
		t.Fatal(err)
	}
	if resExt.AvgOverheadPct > 4*resWP.AvgOverheadPct+2 {
		t.Errorf("extended PT overhead %.2f%% should be comparable to watchpoints %.2f%%",
			resExt.AvgOverheadPct, resWP.AvgOverheadPct)
	}
}
