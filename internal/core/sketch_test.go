package core

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/hw/watch"
	"repro/internal/ir"
)

// buildFixture runs the pbzip2-like program until it fails under full
// tracking and returns the pieces a sketch needs.
func buildFixture(t *testing.T) (*Plan, *RunTrace, []Ranked) {
	t.Helper()
	prog := ir.MustCompile("pbzip2.mc", pbzipProg)
	g := cfg.BuildTICFG(prog)
	// Track every shared-memory touching line plus the failing region.
	var tracked []int
	for _, in := range prog.Instrs {
		if in.Blk.Fn.Name == "cons" || in.Blk.Fn.Name == "main" {
			tracked = append(tracked, in.ID)
		}
	}
	plan := BuildPlan(g, tracked, AllFeatures())
	var failing, successful []*RunTrace
	for seed := int64(0); seed < 200 && (len(failing) == 0 || len(successful) == 0); seed++ {
		rt := RunInstrumented(plan, RunSpec{Seed: seed, PreemptMean: 3, MaxSteps: 300_000})
		if rt.Failed() {
			if len(failing) == 0 {
				failing = append(failing, rt)
			}
		} else if len(successful) < 6 {
			successful = append(successful, rt)
		}
	}
	if len(failing) == 0 || len(successful) == 0 {
		t.Fatal("fixture needs both outcomes")
	}
	ranked := RankPredictors(prog, failing, successful, 0.5)
	return plan, failing[0], ranked
}

func TestSketchStepInvariants(t *testing.T) {
	plan, failing, ranked := buildFixture(t)
	sk := BuildSketch("fixture", plan, failing, ranked, nil)

	if len(sk.Steps) == 0 {
		t.Fatal("empty sketch")
	}
	// Steps are numbered 1..n in order.
	for i, s := range sk.Steps {
		if s.Step != i+1 {
			t.Errorf("step %d numbered %d", i, s.Step)
		}
	}
	// Exactly one failure row, and it is last.
	failures := 0
	for _, s := range sk.Steps {
		if s.IsFailure {
			failures++
		}
	}
	if failures != 1 || !sk.Steps[len(sk.Steps)-1].IsFailure {
		t.Errorf("failure rows: %d, last=%v", failures, sk.Steps[len(sk.Steps)-1].IsFailure)
	}
	// Every step's thread is declared, and per-thread flow order is
	// preserved (steps of one thread appear in increasing step order by
	// construction; verify lines are coherent with the program).
	declared := make(map[int]bool)
	for _, tid := range sk.Threads {
		declared[tid] = true
	}
	for _, s := range sk.Steps {
		if !declared[s.Thread] {
			t.Errorf("step %d uses undeclared thread %d", s.Step, s.Thread)
		}
		if s.Line <= 0 || s.Text == "" {
			t.Errorf("step %d has no source: %+v", s.Step, s)
		}
		for _, id := range s.InstrIDs {
			if !sk.InstrSet[id] {
				t.Errorf("step instr %%%d missing from InstrSet", id)
			}
		}
	}
}

func TestSketchCrossThreadOrderFromTraps(t *testing.T) {
	plan, failing, ranked := buildFixture(t)
	sk := BuildSketch("fixture", plan, failing, ranked, nil)

	// In a failing run the null store (main) must be ordered before the
	// consumer's unlock — the WR race the watchpoints witnessed.
	storeStep, unlockStep := 0, 0
	for _, s := range sk.Steps {
		if strings.Contains(s.Text, "fifo->mut = null") {
			storeStep = s.Step
		}
		if s.IsFailure {
			unlockStep = s.Step
		}
	}
	if storeStep == 0 {
		t.Skip("this failing schedule did not include the null store in the traced window")
	}
	if storeStep >= unlockStep {
		t.Errorf("null store (step %d) must precede the failing unlock (step %d)", storeStep, unlockStep)
	}
}

func TestSketchValueAnnotations(t *testing.T) {
	plan, failing, ranked := buildFixture(t)
	sk := BuildSketch("fixture", plan, failing, ranked, nil)
	if len(failing.Traps) == 0 {
		t.Fatal("fixture has no traps")
	}
	annotated := 0
	for _, s := range sk.Steps {
		if s.HasValue {
			annotated++
		}
	}
	if annotated == 0 {
		t.Error("no value annotations despite watchpoint traps")
	}
	// The failing unlock must be annotated with the dead value 0.
	last := sk.Steps[len(sk.Steps)-1]
	if !last.HasValue || last.Value != 0 {
		t.Errorf("failing step should carry the value 0: %+v", last)
	}
}

func TestSketchRenderLayout(t *testing.T) {
	plan, failing, ranked := buildFixture(t)
	sk := BuildSketch("fixture title", plan, failing, ranked, nil)
	out := sk.Render()
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[0], "Failure Sketch for fixture title") {
		t.Errorf("title line: %q", lines[0])
	}
	// Thread columns: a step of thread k is indented to column k.
	if len(sk.Threads) >= 2 {
		var col1Seen bool
		for _, l := range lines {
			// A second-column row: step number, then an empty first
			// column (50 spaces), then text.
			if len(l) > 55 && strings.TrimSpace(l[5:55]) == "" && strings.TrimSpace(l[55:]) != "" {
				col1Seen = true
			}
		}
		if !col1Seen {
			t.Error("no second-column rows in a two-thread sketch")
		}
	}
	if !strings.Contains(out, "<-- FAILURE") {
		t.Error("missing failure marker")
	}
}

func TestAccuracyBoundsAndMonotonicity(t *testing.T) {
	plan, failing, ranked := buildFixture(t)
	sk := BuildSketch("fixture", plan, failing, ranked, nil)

	// Perfect ideal = the sketch's own lines with no order constraints.
	var own IdealSketch
	seen := map[int]bool{}
	for _, s := range sk.Steps {
		if !seen[s.Line] {
			seen[s.Line] = true
			own.Lines = append(own.Lines, s.Line)
		}
	}
	rel, ord, overall := sk.Accuracy(own)
	if rel != 100 || ord != 100 || overall != 100 {
		t.Errorf("self-accuracy should be perfect: %f %f %f", rel, ord, overall)
	}

	// A disjoint ideal scores zero relevance.
	rel2, _, _ := sk.Accuracy(IdealSketch{Lines: []int{9999}})
	if rel2 != 0 {
		t.Errorf("disjoint ideal relevance: %f", rel2)
	}

	// Reversed order pairs score zero ordering.
	first, last := sk.Steps[0].Line, sk.Steps[len(sk.Steps)-1].Line
	if first != last {
		_, ord3, _ := sk.Accuracy(IdealSketch{Lines: own.Lines, Order: [][2]int{{last, first}}})
		if ord3 != 0 {
			t.Errorf("reversed pair ordering accuracy: %f", ord3)
		}
	}
}

func TestStaticOnlySketchSingleColumn(t *testing.T) {
	prog := ir.MustCompile("pbzip2.mc", pbzipProg)
	g := cfg.BuildTICFG(prog)
	var tracked []int
	for _, in := range prog.Instrs {
		if in.Blk.Fn.Name == "cons" {
			tracked = append(tracked, in.ID)
		}
	}
	plan := BuildPlan(g, tracked, Features{Static: true})
	var failing *RunTrace
	for seed := int64(0); seed < 200; seed++ {
		rt := RunInstrumented(plan, RunSpec{Seed: seed, PreemptMean: 3, MaxSteps: 300_000})
		if rt.Failed() {
			failing = rt
			break
		}
	}
	if failing == nil {
		t.Fatal("no failing run")
	}
	sk := BuildSketch("static", plan, failing, nil, nil)
	if len(sk.Threads) != 1 {
		t.Errorf("static-only sketch should have one column, got %v", sk.Threads)
	}
	if len(sk.Steps) == 0 || !sk.Steps[len(sk.Steps)-1].IsFailure {
		t.Error("static-only sketch malformed")
	}
}

func TestWatchMissesCountedWhenRegistersExhausted(t *testing.T) {
	// A program touching more distinct shared locations than registers:
	// the client must count misses rather than fail.
	src := `global int a; global int b; global int c; global int d; global int e; global int f;
int main() {
	a = 1; b = 2; c = 3; d = 4; e = 5; f = 6;
	int z = 0;
	if (a + b + c + d + e + f == 0) { z = 1 / z; }
	return z;
}`
	prog := ir.MustCompile("t.mc", src)
	g := cfg.BuildTICFG(prog)
	var tracked []int
	for _, in := range prog.Instrs {
		tracked = append(tracked, in.ID)
	}
	plan := BuildPlan(g, tracked, AllFeatures())
	if len(plan.WatchGroups) < 2 {
		t.Fatalf("expected partitioning, got %d groups", len(plan.WatchGroups))
	}
	// Force all accesses into one run by merging groups into the plan of
	// endpoint 0 and 1; between them every class is covered.
	covered := map[int]bool{}
	for e := 0; e < len(plan.WatchGroups); e++ {
		grp := plan.WatchGroupFor(e)
		for id := range grp {
			covered[id] = true
		}
	}
	if len(covered) != len(plan.WatchAccesses) {
		t.Errorf("cooperative groups cover %d of %d accesses", len(covered), len(plan.WatchAccesses))
	}
	_ = watch.NumRegisters
}
