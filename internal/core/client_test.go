package core

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/vm"
)

const clientProg = `global int g = 0;
global int h = 0;
int work(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) { acc = acc + i % 7; }
	return acc;
}
int main() {
	int w = work(500);
	g = w % 5;
	if (g > 1) {
		h = g * 2;
	}
	h = h + 1;
	return h;
}`

func clientPlan(t *testing.T, lines []int, feats Features) (*ir.Program, *Plan) {
	t.Helper()
	prog := ir.MustCompile("client.mc", clientProg)
	g := cfg.BuildTICFG(prog)
	want := map[int]bool{}
	for _, ln := range lines {
		want[ln] = true
	}
	var tracked []int
	for _, in := range prog.Instrs {
		if want[in.Pos.Line] {
			tracked = append(tracked, in.ID)
		}
	}
	return prog, BuildPlan(g, tracked, feats)
}

func TestClientTracesOnlyPlannedRegions(t *testing.T) {
	// Track lines 10-12 (g store, the if, h store); the work loop (lines
	// 3-7) must not appear in decoded flow.
	prog, plan := clientPlan(t, []int{10, 11, 12}, AllFeatures())
	rt := RunInstrumented(plan, RunSpec{Seed: 3, MaxSteps: 100_000})
	if rt.Failed() {
		t.Fatalf("run failed: %v", rt.Outcome.Report)
	}
	if rt.DecodeErr != nil {
		t.Fatalf("decode: %v", rt.DecodeErr)
	}
	if len(rt.Executed) == 0 {
		t.Fatal("nothing traced")
	}
	for id := range rt.Executed {
		ln := prog.Instrs[id].Pos.Line
		if ln >= 4 && ln <= 6 {
			t.Errorf("work-loop line %d traced despite not being planned", ln)
		}
	}
	// All tracked instructions that executed must be observed.
	for _, id := range plan.Tracked {
		if !rt.Executed[id] && prog.Instrs[id].Pos.Line == 10 {
			t.Errorf("tracked instruction %%%d (line 10) not observed", id)
		}
	}
}

func TestClientMeterCountsEverything(t *testing.T) {
	_, plan := clientPlan(t, []int{10, 12}, AllFeatures())
	rt := RunInstrumented(plan, RunSpec{Seed: 3, MaxSteps: 100_000})
	if got := rt.Meter.BaseCycles(); got != float64(rt.Outcome.Steps) {
		t.Errorf("base cycles %.0f != steps %d", got, rt.Outcome.Steps)
	}
	if rt.Meter.ExtraCycles() <= 0 {
		t.Error("instrumentation recorded no overhead")
	}
}

func TestClientWatchGroupsRespected(t *testing.T) {
	// Two globals tracked; both are in the (single) watch group, so both
	// addresses trap.
	_, plan := clientPlan(t, []int{10, 12, 13}, AllFeatures())
	rt := RunInstrumented(plan, RunSpec{Seed: 3, MaxSteps: 100_000})
	addrs := map[int64]bool{}
	for _, tr := range rt.Traps {
		addrs[tr.Addr] = true
	}
	if len(addrs) < 2 {
		t.Errorf("expected traps on both globals, got addresses %v (traps %v)", addrs, rt.Traps)
	}
}

func TestClientStaticOnlyNoInstrumentation(t *testing.T) {
	_, plan := clientPlan(t, []int{10, 12}, Features{Static: true})
	rt := RunInstrumented(plan, RunSpec{Seed: 3, MaxSteps: 100_000})
	if len(rt.Flow) != 0 || len(rt.Traps) != 0 {
		t.Error("static-only run produced traces")
	}
	if rt.Meter.ExtraCycles() != 0 {
		t.Errorf("static-only run charged overhead: %f", rt.Meter.ExtraCycles())
	}
}

func TestClientDeterministic(t *testing.T) {
	_, plan := clientPlan(t, []int{10, 11, 12, 13}, AllFeatures())
	a := RunInstrumented(plan, RunSpec{Seed: 9, MaxSteps: 100_000})
	b := RunInstrumented(plan, RunSpec{Seed: 9, MaxSteps: 100_000})
	if len(a.Traps) != len(b.Traps) || a.Outcome.Steps != b.Outcome.Steps {
		t.Fatalf("nondeterministic client: %d/%d traps, %d/%d steps",
			len(a.Traps), len(b.Traps), a.Outcome.Steps, b.Outcome.Steps)
	}
	for i := range a.Traps {
		if a.Traps[i] != b.Traps[i] {
			t.Fatalf("trap %d differs", i)
		}
	}
}

func TestDeadlockDiagnosis(t *testing.T) {
	// A lock-order inversion: Gist handles hangs/deadlocks as failures
	// too (§3.3 "can understand common failures, such as crashes,
	// assertion violations, and hangs").
	src := `global int mA = 0;
global int mB = 0;
global int done = 0;
int work(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) { acc = acc + i % 3; }
	return acc;
}
void t1(int arg) {
	lock(&mA);
	int w = work(30);
	lock(&mB);
	done = done + 1;
	unlock(&mB);
	unlock(&mA);
}
void t2(int arg) {
	lock(&mB);
	int w = work(30);
	lock(&mA);
	done = done + 1;
	unlock(&mA);
	unlock(&mB);
}
int main() {
	int warm = work(2000);
	int a = spawn(t1, 0);
	int b = spawn(t2, 0);
	join(a);
	join(b);
	return done;
}`
	prog := ir.MustCompile("deadlock.mc", src)
	res, err := Run(Config{Prog: prog, Title: "lock-order inversion", Endpoints: 30, SeedBase: 1, PreemptMean: 3})
	if err != nil {
		t.Fatalf("gist: %v", err)
	}
	sk := res.Sketch
	if sk.Report.Kind != vm.FaultDeadlock {
		t.Fatalf("expected a deadlock diagnosis, got %v", sk.Report.Kind)
	}
	// The sketch must include the blocked lock acquisition...
	found := false
	lockLines := map[int]bool{}
	for _, s := range sk.Steps {
		if s.Text == "lock(&mB);" || s.Text == "lock(&mA);" {
			lockLines[s.Line] = true
			if s.IsFailure {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("deadlock sketch does not end at a lock statement:\n%s", sk.Render())
	}
	// ...and, via the report's other blocked PCs, the whole inversion:
	// both lock statements of the cycle.
	if len(lockLines) < 2 {
		t.Errorf("deadlock sketch shows only one side of the inversion:\n%s", sk.Render())
	}
	if len(sk.Threads) < 2 {
		t.Errorf("deadlock sketch should show both blocked threads, got %v", sk.Threads)
	}
}
