package core

import (
	"encoding/json"
	"testing"
)

func TestSketchJSONRoundTrip(t *testing.T) {
	plan, failing, ranked := buildFixture(t)
	sk := BuildSketch("json fixture", plan, failing, ranked, nil)
	data, err := sk.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back SketchJSON
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if back.Title != "json fixture" || back.FailureKind == "" {
		t.Errorf("header: %+v", back)
	}
	if len(back.Steps) != len(sk.Steps) {
		t.Fatalf("steps: %d vs %d", len(back.Steps), len(sk.Steps))
	}
	if !back.Steps[len(back.Steps)-1].IsFailure {
		t.Error("failure flag lost")
	}
	// Value annotations survive as pointers (present vs absent).
	annotated := 0
	for _, s := range back.Steps {
		if s.Value != nil {
			annotated++
		}
	}
	if annotated == 0 {
		t.Error("value annotations lost in JSON")
	}
	if len(back.Predictors) == 0 {
		t.Error("predictors lost in JSON")
	}
	for _, p := range back.Predictors {
		if p.Kind == "" || len(p.Lines) == 0 {
			t.Errorf("malformed predictor: %+v", p)
		}
	}
}
