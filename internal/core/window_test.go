package core

import (
	"reflect"
	"testing"
)

func TestContainsInt(t *testing.T) {
	if containsInt(nil, 1) {
		t.Error("empty slice contains nothing")
	}
	if !containsInt([]int{3, 1, 2}, 1) {
		t.Error("1 is present")
	}
	if containsInt([]int{3, 1, 2}, 4) {
		t.Error("4 is absent")
	}
}

func TestMergeWindow(t *testing.T) {
	cases := []struct {
		name          string
		window, added []int
		want          []int
	}{
		{"empty added", []int{1, 2}, nil, []int{1, 2}},
		{"disjoint", []int{1, 2}, []int{4, 3}, []int{1, 2, 4, 3}},
		{"overlap skipped", []int{1, 2}, []int{2, 3}, []int{1, 2, 3}},
		{"dup within added deduped", []int{1}, []int{5, 5, 6}, []int{1, 5, 6}},
		{"empty window", nil, []int{7}, []int{7}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := mergeWindow(append([]int(nil), c.window...), c.added)
			if !reflect.DeepEqual(got, c.want) {
				t.Fatalf("mergeWindow(%v, %v) = %v, want %v", c.window, c.added, got, c.want)
			}
		})
	}
}

func TestMergeWindowPreservesAddedOrder(t *testing.T) {
	// Refinement order is diagnosis-visible (it shapes the plan), so the
	// merge must keep added IDs in discovery order, not sorted.
	got := mergeWindow([]int{10}, []int{9, 3, 7})
	want := []int{10, 9, 3, 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order not preserved: %v want %v", got, want)
	}
}
