package core

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/hw/pt"
	"repro/internal/hw/watch"
	"repro/internal/ir"
	"repro/internal/slicer"
	"repro/internal/vm"
)

// TestZeroDecisionMatchesCleanClient pins the byte-identity contract: a
// zero fault decision must leave RunInstrumentedFaults indistinguishable
// from the clean client.
func TestZeroDecisionMatchesCleanClient(t *testing.T) {
	cfg := pbzipConfig(t).withDefaults()
	report, _, err := FirstFailure(cfg)
	if err != nil {
		t.Fatalf("discovery: %v", err)
	}
	g := cfg.BuildGraph()
	sl := slicer.Compute(g, report.InstrID)
	plan := BuildPlan(g, sl.Window(4), AllFeatures())
	for seed := int64(50); seed < 56; seed++ {
		spec := RunSpec{EndpointID: int(seed), Seed: seed, PreemptMean: 3, MaxSteps: 200_000}
		clean := RunInstrumented(plan, spec)
		faulty := RunInstrumentedFaults(plan, spec, faults.Decision{})
		if !reflect.DeepEqual(clean, faulty) {
			t.Fatalf("seed %d: zero decision changed the run trace", seed)
		}
	}
}

// TestFleetHealthCleanFleet: with injection disabled every dispatched
// run arrives and nothing is degraded.
func TestFleetHealthCleanFleet(t *testing.T) {
	res, err := Run(pbzipConfig(t))
	if err != nil {
		t.Fatalf("gist run: %v", err)
	}
	h := res.Health
	if h.Degraded() {
		t.Errorf("clean fleet reports degradation: %s", h)
	}
	if h.Dispatched != h.Arrived {
		t.Errorf("clean fleet lost runs: %s", h)
	}
	if h.Dispatched != res.TotalRuns {
		t.Errorf("health dispatched=%d but TotalRuns=%d", h.Dispatched, res.TotalRuns)
	}
	for i, it := range res.Iters {
		if it.Health.Degraded() {
			t.Errorf("iteration %d degraded on a clean fleet: %s", i, it.Health)
		}
	}
}

// TestGistSurvivesChaosPbzip is the core-level chaos regression: at a
// 10% composite fault rate the pbzip2 sketch must still contain the
// root cause, and the whole diagnosis must be deterministic in the
// injector seed.
func TestGistSurvivesChaosPbzip(t *testing.T) {
	run := func() *Result {
		cfg := pbzipConfig(t)
		cfg.Faults = faults.Composite(42, 0.10)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("gist run under 10%% faults: %v", err)
		}
		return res
	}
	res := run()
	sk := res.Sketch
	if sk == nil {
		t.Fatal("no sketch under faults")
	}
	lines := map[int]bool{}
	for _, s := range sk.Steps {
		lines[s.Line] = true
	}
	for _, want := range []int{14, 15} { // f = fifo; unlock(f->mut)
		if !lines[want] {
			t.Errorf("sketch lost root-cause line %d under faults; lines: %v", want, lines)
		}
	}
	if !sk.Steps[len(sk.Steps)-1].IsFailure {
		t.Error("failure is no longer the last sketch step")
	}
	if !res.Health.Degraded() {
		t.Errorf("10%% composite faults injected but fleet health is clean: %s", res.Health)
	}

	res2 := run()
	if sk.Render() != res2.Sketch.Render() {
		t.Error("chaos diagnosis is not deterministic: sketches differ across identical runs")
	}
	if res.Health != res2.Health {
		t.Errorf("chaos diagnosis is not deterministic: health %s vs %s", res.Health, res2.Health)
	}
}

// TestRetryReseedsCrashedEndpoints: a starved iteration (tiny budget,
// heavy crash rate) must spend retry passes with backoff and re-seed
// replacement runs for the lost endpoints.
func TestRetryReseedsCrashedEndpoints(t *testing.T) {
	cfg := pbzipConfig(t)
	cfg.Endpoints = 8
	cfg.MaxBatches = 1
	cfg.Faults = faults.Config{Seed: 7, CrashRate: 0.5}
	res, _ := Run(cfg) // convergence is not the point; fleet behavior is
	if res == nil {
		t.Fatal("no result at all")
	}
	h := res.Health
	if h.Lost == 0 {
		t.Fatalf("50%% crash rate lost nothing: %s", h)
	}
	if h.Retries == 0 || h.Reseeded == 0 {
		t.Errorf("lost endpoints were not retried/re-seeded: %s", h)
	}
	if h.BackoffBatches < h.Retries {
		t.Errorf("each retry pass must cost at least one backoff batch: %s", h)
	}
	if h.Dispatched != h.Arrived+h.Lost+h.Deadlined+h.Quarantined {
		t.Errorf("health does not account for every dispatched run: %s", h)
	}
}

// TestValidateTraceRepairsDamage covers the server's admission checks:
// reordered trap logs are re-sorted, wild instruction IDs dropped,
// duplicated traps tolerated, and reports without a usable outcome
// quarantined.
func TestValidateTraceRepairsDamage(t *testing.T) {
	rt := &RunTrace{
		Outcome: &vm.Outcome{},
		Traps: []watch.Trap{
			{InstrID: 1, Clock: 5},
			{InstrID: 2, Clock: 3},
			{InstrID: 2, Clock: 3}, // duplicated delivery
			{InstrID: 999, Clock: 4},
		},
		Flow:     map[int][]int{0: {1, 2}, 1: {1, 5000}},
		Branches: map[int][]pt.BranchObs{0: nil, 1: nil},
	}
	quarantine, repaired := validateTrace(rt, 10)
	if quarantine {
		t.Fatal("repairable trace was quarantined")
	}
	if repaired < 2 {
		t.Errorf("expected at least 2 repairs (wild ID + re-sort), got %d", repaired)
	}
	if len(rt.Traps) != 3 {
		t.Errorf("wild-ID trap not dropped: %v", rt.Traps)
	}
	for i := 1; i < len(rt.Traps); i++ {
		if rt.Traps[i].Clock < rt.Traps[i-1].Clock {
			t.Errorf("traps not re-sorted: %v", rt.Traps)
		}
	}
	if _, ok := rt.Flow[1]; ok {
		t.Error("core with out-of-range flow IDs not discarded")
	}
	if _, ok := rt.Flow[0]; !ok {
		t.Error("healthy core's flow was discarded")
	}

	if q, _ := validateTrace(&RunTrace{}, 10); !q {
		t.Error("trace without outcome must be quarantined")
	}
	if q, _ := validateTrace(&RunTrace{Outcome: &vm.Outcome{Failed: true}}, 10); !q {
		t.Error("failed run without a failure report must be quarantined")
	}
}

// TestDecodeErrRunsContributeNoBranchData: a quarantined-decode run may
// keep its outcome and traps, but predictor extraction must see none of
// its control-flow evidence.
func TestDecodeErrRunsContributeNoBranchData(t *testing.T) {
	prog := ir.MustCompile("curl.mc", curlProg)
	var branchID int
	for _, in := range prog.Instrs {
		if in.Op == ir.OpBr {
			branchID = in.ID
			break
		}
	}
	rt := &RunTrace{
		Branches:  map[int][]pt.BranchObs{0: {{IP: branchID, Taken: true}}},
		Traps:     []watch.Trap{{InstrID: 1, Addr: 8, Val: 3}, {InstrID: 1 << 20, Addr: 8}},
		DecodeErr: errors.New("simulated corruption"),
	}
	preds := ExtractPredicates(prog, rt)
	for key, p := range preds {
		if p.Kind == PredBranch {
			t.Errorf("DecodeErr run leaked branch predictor %s", key)
		}
		for _, id := range p.InstrIDs {
			if id < 0 || id >= len(prog.Instrs) {
				t.Errorf("predictor %s names wild instruction %d", key, id)
			}
		}
	}

	quarantineTraceData(rt)
	if len(rt.Flow) != 0 || rt.Branches != nil || len(rt.Executed) != 0 {
		t.Error("quarantineTraceData left control-flow payload behind")
	}
	if len(rt.Traps) == 0 {
		t.Error("quarantine must keep the trap log (it travels outside the PT trace)")
	}
}

// TestRunDeadlineDiscardsSlowRuns: a per-run step deadline must discard
// runs that consumed more steps than allowed, counting them as
// deadlined, while an unhindered config accepts them.
func TestRunDeadlineDiscardsSlowRuns(t *testing.T) {
	cfg := pbzipConfig(t)
	cfg.RunDeadlineSteps = 1 // nothing finishes in one step
	cfg.Endpoints = 8
	cfg.MaxBatches = 1
	cfg.MaxIters = 1
	res, err := Run(cfg)
	if err == nil {
		t.Fatal("every run missed the deadline yet the diagnosis converged")
	}
	if res.Health.Deadlined == 0 {
		t.Errorf("no runs counted as deadlined: %s", res.Health)
	}
	if res.Health.Arrived != 0 {
		t.Errorf("runs beat an impossible deadline: %s", res.Health)
	}
}

// TestDiscoveryProgressAndBudget covers the hardened FirstFailure: the
// progress callback fires periodically and the step budget aborts a
// discovery that would otherwise spin forever.
func TestDiscoveryProgressAndBudget(t *testing.T) {
	// A program that never fails keeps discovery spinning.
	prog := ir.MustCompile("ok.mc", `int main() { return 0; }`)
	var calls int
	var lastRuns int
	var lastSteps int64
	cfg := Config{
		Prog:                   prog,
		MaxDiscoveryRuns:       100,
		DiscoveryProgressEvery: 10,
		DiscoveryProgress: func(runs int, steps int64) {
			calls++
			lastRuns = runs
			lastSteps = steps
		},
	}
	_, runs, err := FirstFailure(cfg)
	if err == nil {
		t.Fatal("program cannot fail; discovery must error")
	}
	if runs != 100 {
		t.Errorf("discovery stopped after %d runs, want 100", runs)
	}
	if calls != 10 {
		t.Errorf("progress fired %d times, want 10", calls)
	}
	if lastRuns != 100 || lastSteps <= 0 {
		t.Errorf("last progress report (%d runs, %d steps) is implausible", lastRuns, lastSteps)
	}

	cfg.DiscoveryStepBudget = 1 // a single run blows the budget
	_, runs, err = FirstFailure(cfg)
	if err == nil || runs != 1 {
		t.Errorf("step budget did not abort discovery: runs=%d err=%v", runs, err)
	}
}

// TestQuorumAnnotatesLowConfidence: an iteration that ranks predictors
// from fewer validated runs than the quorum must mark its sketch.
func TestQuorumAnnotatesLowConfidence(t *testing.T) {
	cfg := pbzipConfig(t)
	cfg.FailuresPerIter = 1
	cfg.MinSuccesses = 1
	cfg.MinQuorum = 1000 // unreachable: every iteration is under quorum
	cfg.MaxIters = 1
	res, _ := Run(cfg)
	if res == nil || res.Sketch == nil {
		t.Fatal("no sketch")
	}
	if !res.Sketch.LowConfidence {
		t.Error("sketch not annotated low-confidence below quorum")
	}
	if res.Health.LowConfidenceIters == 0 {
		t.Errorf("health did not count the low-confidence iteration: %s", res.Health)
	}
}
