// Package core implements Gist, the failure-sketching engine — the
// paper's primary contribution. It combines the static backward slice
// (package slicer) with cooperative, adaptive runtime tracking:
//
//   - plan.go places Intel PT start/stop instrumentation around the
//     tracked slice portion using predecessor-block analysis with the
//     strict-dominator and immediate-postdominator optimizations of
//     §3.2.2, and selects the shared-memory accesses to watch (§3.2.3);
//   - client.go is the endpoint runtime that applies a plan to a
//     production run and returns compressed traces;
//   - predict.go extracts failure predictors from failing and successful
//     runs and ranks them statistically (§3.3);
//   - sketch.go assembles and renders failure sketches and computes the
//     accuracy metrics of §5.2;
//   - gist.go is the server: failure matching, adaptive slice tracking
//     (σ doubling, §3.2.1), refinement, and the overall loop of Fig. 2.
package core

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/hw/watch"
	"repro/internal/ir"
	"repro/internal/slicer"
	"repro/internal/telemetry"
)

// Features gates Gist's three tracking techniques, enabling the Fig. 10
// ablation (static slicing only / + control flow / + data flow).
//
// ExtendedPT switches data-flow tracking from hardware watchpoints to the
// hypothetical PT extension of §6 that carries data addresses and values
// in the trace (the shape Intel later shipped as PTWRITE): every shared
// access inside a traced region is logged as a PTW packet with a TSC for
// cross-core order. There is no debug-register budget and hence no
// cooperative partitioning; the per-event cost is a packet write instead
// of a ptrace trap. It requires ControlFlow (data packets exist only
// within traced regions).
type Features struct {
	Static      bool
	ControlFlow bool
	DataFlow    bool
	ExtendedPT  bool
}

// AllFeatures enables the full system.
func AllFeatures() Features { return Features{Static: true, ControlFlow: true, DataFlow: true} }

// Plan is the instrumentation a client applies to one production run.
type Plan struct {
	Prog    *ir.Program
	Feats   Features
	Tracked []int // tracked slice-window instruction IDs

	tracked map[int]bool

	// StartAt: enable PT when execution reaches this instruction
	// (instrumentation inserted in each predecessor basic block / at
	// function entries for entry-block statements).
	StartAt map[int]bool
	// StopAfter: disable PT right after this instruction executes and
	// before its immediate postdominator (the FUP anchor is the
	// instruction itself).
	StopAfter map[int]bool

	// WatchAccesses are tracked shared-memory access instructions: when
	// one executes, the client arms a hardware watchpoint on the accessed
	// address (placed, per the paper, right before the access and after
	// its immediate dominator).
	WatchAccesses map[int]bool
	// WatchGroups partitions WatchAccesses for the cooperative case where
	// the tracked accesses may need more than the available debug
	// registers: endpoint k uses group k mod len(WatchGroups).
	WatchGroups [][]int
	// Classes maps each watched access instruction to its static location
	// class; the client arms one debug register per class (a watchpoint
	// watches "the variable", not every address a walk touches).
	Classes map[int]string

	// Telemetry, when set by the server, receives the client-side phase
	// spans (run execution, PT decode, trap collection) of every run
	// executed under this plan. Purely observational; nil is fine and
	// costs nothing.
	Telemetry *telemetry.Tracer

	// Engine is the execution engine every run under this plan uses.
	// The zero value is the bytecode VM; the campaign copies its
	// Config.Engine here so remote runners execute on the same engine.
	Engine Engine
}

// IsTracked reports whether instruction id is part of the tracked window.
func (p *Plan) IsTracked(id int) bool { return p.tracked[id] }

// BuildPlan computes the instrumentation plan for the tracked window.
func BuildPlan(g *cfg.TICFG, tracked []int, feats Features) *Plan {
	p := &Plan{
		Prog:          g.Prog,
		Feats:         feats,
		Tracked:       append([]int(nil), tracked...),
		tracked:       make(map[int]bool, len(tracked)),
		StartAt:       make(map[int]bool),
		StopAfter:     make(map[int]bool),
		WatchAccesses: make(map[int]bool),
		Classes:       make(map[int]string),
	}
	for _, id := range tracked {
		p.tracked[id] = true
	}
	if feats.ControlFlow {
		p.planControlFlow(g)
	}
	if feats.DataFlow {
		p.planDataFlow(g)
	}
	return p
}

// planControlFlow places PT start/stop points (§3.2.2, Fig. 4).
func (p *Plan) planControlFlow(g *cfg.TICFG) {
	// Group tracked instructions by function, in flow order (reverse
	// postorder of blocks, then index within block).
	byFn := make(map[*ir.Func][]*ir.Instr)
	for _, id := range p.Tracked {
		in := p.Prog.Instrs[id]
		byFn[in.Blk.Fn] = append(byFn[in.Blk.Fn], in)
	}
	for fn, instrs := range byFn {
		rpo := blockRPO(fn)
		sort.Slice(instrs, func(i, j int) bool {
			a, b := instrs[i], instrs[j]
			if a.Blk != b.Blk {
				return rpo[a.Blk.ID] < rpo[b.Blk.ID]
			}
			return a.Idx < b.Idx
		})
		dom := g.Dom[fn]
		for i, s := range instrs {
			// Optimization I (sdom): if the previously processed tracked
			// statement strictly dominates s, tracing — which only stops
			// when the previous statement fails to dominate its successor
			// (optimization II below) — is still on when execution reaches
			// s, so no start instrumentation is needed. Looking only at
			// the immediately preceding statement is what keeps the
			// coverage claim sound: a stop can never sit between a
			// dominating predecessor and s.
			covered := i > 0 && dom.InstrSDom(instrs[i-1], s) && !p.StopAfter[instrs[i-1].ID]
			if !covered {
				p.addStarts(g, s)
			}
			// Optimization II (ipdom): stop tracking right after s unless
			// s strictly dominates the next tracked statement, in which
			// case tracking must stay on through it.
			stop := true
			if i+1 < len(instrs) && dom.InstrSDom(s, instrs[i+1]) {
				stop = false
			}
			if stop {
				p.StopAfter[s.ID] = true
			}
		}
	}
}

// addStarts registers trace-enable points for statement s: the terminator
// of each predecessor basic block (the branch into s's block is then the
// first recorded event). Entry-block statements have no intra-function
// predecessors (their predecessors are callsites/spawn sites); tracing is
// anchored at the statement itself — the tightest point that still
// captures its execution — so unrelated work earlier in the function
// (calls, warm-up loops) stays untraced.
func (p *Plan) addStarts(g *cfg.TICFG, s *ir.Instr) {
	blk := s.Blk
	if blk == blk.Fn.Entry() || len(blk.Preds) == 0 {
		p.StartAt[s.ID] = true
		return
	}
	for _, pred := range blk.Preds {
		if t := pred.Terminator(); t != nil {
			p.StartAt[t.ID] = true
		}
	}
	// A block reached by fallthrough from a call return inside it is not
	// possible in this IR (calls are not terminators), so predecessor
	// terminators cover all intra-function entries.
}

// planDataFlow selects the shared-memory accesses to watch and builds the
// cooperative partition (§3.2.3).
//
// Accesses are first grouped into static *location classes* — a cheap
// approximation of "same memory location": accesses to the same global,
// or through the same struct-field offset. Classes, not individual
// instructions, are then packed into watch groups of at most
// watch.NumRegisters, because all accesses in a class share debug
// registers at runtime. Only when there are more classes than registers
// does cooperative partitioning split the work across endpoints (the
// paper notes it never hit this case in practice).
func (p *Plan) planDataFlow(g *cfg.TICFG) {
	classes := make(map[string][]int)
	for _, id := range p.Tracked {
		in := p.Prog.Instrs[id]
		if !slicer.SharedAccess(g, in) {
			continue
		}
		p.WatchAccesses[id] = true
		cls := addrClass(g, in)
		p.Classes[id] = cls
		classes[cls] = append(classes[cls], id)
	}
	if len(classes) == 0 {
		return
	}
	var names []string
	for cls := range classes {
		names = append(names, cls)
	}
	sort.Strings(names)
	var group []int
	nclasses := 0
	for _, cls := range names {
		if nclasses == watch.NumRegisters {
			sort.Ints(group)
			p.WatchGroups = append(p.WatchGroups, group)
			group = nil
			nclasses = 0
		}
		group = append(group, classes[cls]...)
		nclasses++
	}
	if len(group) > 0 {
		sort.Ints(group)
		p.WatchGroups = append(p.WatchGroups, group)
	}
}

// addrClass names the static location class of a shared access: the
// global it touches, or the field offset / element shape it goes through.
func addrClass(g *cfg.TICFG, in *ir.Instr) string {
	root := slicer.RootOf(g, in)
	switch root.Kind {
	case slicer.RootGlobal:
		return fmt.Sprintf("g:%d", root.Global)
	case slicer.RootLocal:
		return fmt.Sprintf("l:%s:%d", root.Fn.Name, root.Slot)
	}
	// Dynamic: classify by the address-producing instruction.
	if in.A.Kind == ir.ValReg {
		if def := singleDef(in.Blk.Fn, in.A.Reg); def != nil {
			switch def.Op {
			case ir.OpFieldAddr:
				return fmt.Sprintf("fld:%d", def.Offset)
			case ir.OpIndexAddr:
				return fmt.Sprintf("idx:%d", def.ElemSz)
			}
		}
	}
	return "dyn"
}

// singleDef returns the unique defining instruction of reg in fn, or nil.
func singleDef(fn *ir.Func, reg int) *ir.Instr {
	var def *ir.Instr
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Dst == reg {
				if def != nil {
					return nil
				}
				def = in
			}
		}
	}
	return def
}

// GroupOf returns the watch-group index endpoint k is assigned to, or
// -1 when the plan has no watch groups. A replacement run re-seeded for
// a lost endpoint keeps the endpoint's ID and therefore its group, so
// cooperative partitioning coverage survives fleet losses.
func (p *Plan) GroupOf(endpoint int) int {
	if len(p.WatchGroups) == 0 {
		return -1
	}
	return endpoint % len(p.WatchGroups)
}

// WatchGroupFor returns the set of access instructions endpoint k arms
// watchpoints for.
func (p *Plan) WatchGroupFor(endpoint int) map[int]bool {
	if len(p.WatchGroups) == 0 {
		return nil
	}
	grp := p.WatchGroups[endpoint%len(p.WatchGroups)]
	m := make(map[int]bool, len(grp))
	for _, id := range grp {
		m[id] = true
	}
	return m
}

// blockRPO numbers a function's blocks in reverse postorder.
func blockRPO(fn *ir.Func) []int {
	order := make([]int, len(fn.Blocks))
	for i := range order {
		order[i] = 1 << 30 // unreachable blocks sort last
	}
	var post []*ir.Block
	seen := make(map[*ir.Block]bool)
	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs() {
			visit(s)
		}
		post = append(post, b)
	}
	visit(fn.Entry())
	for i, b := range post {
		order[b.ID] = len(post) - 1 - i
	}
	return order
}
