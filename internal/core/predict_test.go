package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/hw/pt"
	"repro/internal/hw/watch"
	"repro/internal/ir"
)

// synthTrace fabricates a run trace with random branch outcomes and
// watchpoint traps over prog's instruction space. A small address pool
// and thread pool makes cross-thread order patterns (WW/WR/RW pairs and
// the atomicity triples) actually occur.
func synthTrace(rng *rand.Rand, prog *ir.Program) *RunTrace {
	rt := &RunTrace{
		Branches: make(map[int][]pt.BranchObs),
	}
	nInstr := len(prog.Instrs)
	// Branch observations across a few threads, including an occasional
	// out-of-range IP that extraction must skip.
	for th := 0; th < 1+rng.Intn(3); th++ {
		n := rng.Intn(6)
		for i := 0; i < n; i++ {
			ip := rng.Intn(nInstr)
			if rng.Intn(10) == 0 {
				ip = nInstr + rng.Intn(5) // invalid on purpose
			}
			rt.Branches[th] = append(rt.Branches[th], pt.BranchObs{IP: ip, Taken: rng.Intn(2) == 0})
		}
	}
	// Watchpoint traps over a tiny address pool so adjacent cross-thread
	// pairs and t1-t2-t1 triples show up.
	n := rng.Intn(10)
	for i := 0; i < n; i++ {
		id := rng.Intn(nInstr)
		if rng.Intn(12) == 0 {
			id = -1 - rng.Intn(3) // invalid on purpose
		}
		rt.Traps = append(rt.Traps, watch.Trap{
			InstrID: id,
			Addr:    int64(1000 + 8*rng.Intn(3)),
			Val:     int64(rng.Intn(5) - 2),
			Thread:  rng.Intn(3),
			IsWrite: rng.Intn(2) == 0,
			Clock:   int64(i),
		})
	}
	// Some runs have corrupt PT data: branch predictors must be ignored
	// for them, identically in streaming and batch form.
	if rng.Intn(5) == 0 {
		rt.DecodeErr = errors.New("synthetic decode corruption")
	}
	return rt
}

// TestPredictorAccumMatchesBatch is the core-level half of the
// streaming-equals-batch proof: feeding random run streams one at a time
// through PredictorAccum yields, at every prefix, exactly the ranking
// RankPredictors computes from the retained populations — every field of
// every entry, in the same order.
func TestPredictorAccumMatchesBatch(t *testing.T) {
	prog := ir.MustCompile("two.mc", twoBugs)
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		beta := []float64{0.5, 1, 2}[trial%3]
		acc := NewPredictorAccum(prog, beta)
		var failing, successful []*RunTrace
		events := 1 + rng.Intn(20)
		for e := 0; e < events; e++ {
			rt := synthTrace(rng, prog)
			// Trial 0 keeps every run successful: totalFail==0 must rank
			// identically too (all recalls pinned to zero).
			isFail := trial != 0 && rng.Intn(2) == 0
			if isFail {
				failing = append(failing, rt)
			} else {
				successful = append(successful, rt)
			}
			acc.Observe(rt, isFail)

			if acc.TotalFail() != len(failing) {
				t.Fatalf("trial %d event %d: TotalFail = %d, want %d", trial, e, acc.TotalFail(), len(failing))
			}
			got := acc.Ranked()
			want := RankPredictors(prog, failing, successful, beta)
			if len(got) != len(want) {
				t.Fatalf("trial %d event %d: %d ranked streaming vs %d batch", trial, e, len(got), len(want))
			}
			for i := range want {
				g, w := got[i], want[i]
				if g.Key != w.Key || g.Kind != w.Kind || g.Desc != w.Desc || g.Pattern != w.Pattern || g.Value != w.Value {
					t.Fatalf("trial %d event %d rank %d: predictor %+v vs batch %+v", trial, e, i, g.Predictor, w.Predictor)
				}
				if len(g.InstrIDs) != len(w.InstrIDs) {
					t.Fatalf("trial %d event %d rank %d: InstrIDs %v vs %v", trial, e, i, g.InstrIDs, w.InstrIDs)
				}
				for j := range w.InstrIDs {
					if g.InstrIDs[j] != w.InstrIDs[j] {
						t.Fatalf("trial %d event %d rank %d: InstrIDs %v vs %v", trial, e, i, g.InstrIDs, w.InstrIDs)
					}
				}
				if g.Fail != w.Fail || g.Succ != w.Succ || g.P != w.P || g.R != w.R || g.F != w.F {
					t.Fatalf("trial %d event %d rank %d (%s): streaming (%d,%d,%g,%g,%g) vs batch (%d,%d,%g,%g,%g)",
						trial, e, i, w.Key, g.Fail, g.Succ, g.P, g.R, g.F, w.Fail, w.Succ, w.P, w.R, w.F)
				}
			}
		}
	}
}
