package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/faults"
)

// campaignFingerprint captures everything diagnosis-visible about a
// result; equal fingerprints mean byte-identical diagnoses.
func campaignFingerprint(res *Result, err error) string {
	if err != nil {
		return "err: " + err.Error()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "disc=%d total=%d rec=%d ov=%.9f\n",
		res.DiscoveryRuns, res.TotalRuns, res.FailureRecurrences, res.AvgOverheadPct)
	fmt.Fprintf(&sb, "health=%+v\n", res.Health)
	for _, it := range res.Iters {
		fmt.Fprintf(&sb, "iter=%+v\n", it)
	}
	fmt.Fprintf(&sb, "slice=%v\n", res.Slice.IDs)
	if res.Sketch != nil {
		sb.WriteString(res.Sketch.Render())
		for _, r := range res.Sketch.AllRanked {
			fmt.Fprintf(&sb, "ranked=%+v\n", r)
		}
	}
	return sb.String()
}

// TestSeedCursorFollowsDiscovery pins the satellite fix: the production
// seed cursor starts right after the seeds discovery actually consumed,
// not after the MaxDiscoveryRuns worth it was budgeted.
func TestSeedCursorFollowsDiscovery(t *testing.T) {
	cfg := pbzipConfig(t)
	report, disc, err := FirstFailure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if disc >= cfg.withDefaults().MaxDiscoveryRuns {
		t.Fatalf("discovery consumed its whole budget (%d runs); the cursor fix is unobservable", disc)
	}
	camp, err := NewCampaign(cfg, report, disc)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := camp.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.SeedBase + int64(disc); snap.SeedCursor != want {
		t.Errorf("seed cursor %d, want SeedBase+discRuns = %d (historical bug: SeedBase+MaxDiscoveryRuns = %d)",
			snap.SeedCursor, want, cfg.SeedBase+int64(cfg.withDefaults().MaxDiscoveryRuns))
	}
}

// TestCampaignWrapperEquivalence checks RunFromReport (the wrapper) and
// a manually stepped campaign produce identical diagnoses.
func TestCampaignWrapperEquivalence(t *testing.T) {
	cfg := pbzipConfig(t)
	report, disc, err := FirstFailure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := campaignFingerprint(RunFromReport(cfg, report, disc))
	camp, err := NewCampaign(cfg, report, disc)
	if err != nil {
		t.Fatal(err)
	}
	for {
		done, _ := camp.Step()
		if done {
			break
		}
	}
	if got := campaignFingerprint(camp.Result()); got != want {
		t.Errorf("stepped campaign diverged from RunFromReport:\n--- stepped ---\n%s\n--- wrapper ---\n%s", got, want)
	}
}

// TestCampaignSnapshotRoundTrip: Snapshot → Encode → Decode → Restore →
// Snapshot → Encode must be byte-identical JSON.
func TestCampaignSnapshotRoundTrip(t *testing.T) {
	cfg := pbzipConfig(t)
	report, disc, err := FirstFailure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := NewCampaign(cfg, report, disc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := camp.Step(); err != nil {
		t.Fatal(err)
	}
	snap, err := camp.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeCampaignSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	camp2, err := RestoreCampaign(cfg, dec)
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := camp2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data2, err := snap2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("snapshot round trip not byte-identical:\n--- first ---\n%s\n--- second ---\n%s", data, data2)
	}
}

// TestCampaignSnapshotVersioning: unknown or malformed checkpoints are
// rejected with clear errors, never silently accepted.
func TestCampaignSnapshotVersioning(t *testing.T) {
	cases := []struct {
		name, data, wantErr string
	}{
		{"unknown version", `{"version": 99}`, "version 99 not supported"},
		{"zero version", `{"version": 0}`, "version 0 not supported"},
		{"not json", `garbage`, "not valid JSON"},
		{"no report", `{"version": 1}`, "no failure report"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := DecodeCampaignSnapshot([]byte(c.data))
			if err == nil {
				t.Fatalf("decode accepted %q", c.data)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
	if _, err := RestoreCampaign(pbzipConfig(t), &CampaignSnapshot{Version: 7}); err == nil ||
		!strings.Contains(err.Error(), "version 7 not supported") {
		t.Errorf("RestoreCampaign accepted version 7: %v", err)
	}
	if _, err := RestoreCampaign(pbzipConfig(t), nil); err == nil {
		t.Error("RestoreCampaign accepted a nil snapshot")
	}
}

// TestCampaignSnapshotMidIterationRejected: checkpoints only happen at
// iteration boundaries; transient fleet state is not serializable.
func TestCampaignSnapshotMidIterationRejected(t *testing.T) {
	cfg := pbzipConfig(t)
	report, disc, err := FirstFailure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := NewCampaign(cfg, report, disc)
	if err != nil {
		t.Fatal(err)
	}
	camp.Plan()
	if _, err := camp.Snapshot(); err == nil || !strings.Contains(err.Error(), "mid-iteration") {
		t.Errorf("mid-iteration snapshot not rejected: %v", err)
	}
}

// TestCampaignResumeEveryBoundary is the persistence acceptance test:
// killing a diagnosis at ANY iteration boundary and resuming from the
// checkpoint must reproduce the uninterrupted diagnosis byte-for-byte —
// on a clean fleet and under 10% composite fault injection.
func TestCampaignResumeEveryBoundary(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"clean", func(*Config) {}},
		{"faults10", func(c *Config) { c.Faults = faults.Composite(1, 0.10) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := pbzipConfig(t)
			tc.mut(&cfg)
			report, disc, err := FirstFailure(cfg)
			if err != nil {
				t.Fatal(err)
			}
			baseline := campaignFingerprint(RunFromReport(cfg, report, disc))
			boundaries := 0
			for k := 0; ; k++ {
				camp, err := NewCampaign(cfg, report, disc)
				if err != nil {
					t.Fatal(err)
				}
				done := false
				for i := 0; i < k && !done; i++ {
					done, _ = camp.Step()
				}
				if done {
					break // every boundary of the diagnosis covered
				}
				snap, err := camp.Snapshot()
				if err != nil {
					t.Fatalf("boundary %d: %v", k, err)
				}
				data, err := snap.Encode()
				if err != nil {
					t.Fatalf("boundary %d: %v", k, err)
				}
				dec, err := DecodeCampaignSnapshot(data)
				if err != nil {
					t.Fatalf("boundary %d: %v", k, err)
				}
				resumed, err := RestoreCampaign(cfg, dec)
				if err != nil {
					t.Fatalf("boundary %d: %v", k, err)
				}
				if got := campaignFingerprint(resumed.Run()); got != baseline {
					t.Fatalf("resume at boundary %d diverged:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s",
						k, got, baseline)
				}
				boundaries++
			}
			if boundaries == 0 {
				t.Fatal("diagnosis finished before any boundary; test covered nothing")
			}
		})
	}
}

// TestCampaignFinishedSnapshot: a terminal campaign checkpoints as
// finished, restores as finished, and stepping it stays a no-op.
func TestCampaignFinishedSnapshot(t *testing.T) {
	cfg := pbzipConfig(t)
	report, disc, err := FirstFailure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := NewCampaign(cfg, report, disc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := camp.Run(); err != nil {
		t.Fatal(err)
	}
	want := campaignFingerprint(camp.Result())
	snap, err := camp.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Finished {
		t.Fatal("terminal campaign snapshotted as unfinished")
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeCampaignSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreCampaign(cfg, dec)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Finished() {
		t.Fatal("restored terminal campaign reports unfinished")
	}
	if done, _ := restored.Step(); !done {
		t.Error("Step on a finished campaign must stay terminal")
	}
	if got := campaignFingerprint(restored.Result()); got != want {
		t.Errorf("restored terminal result diverged:\n--- restored ---\n%s\n--- original ---\n%s", got, want)
	}
}

// TestCampaignMaxItersResumable: running out of MaxIters is boundary
// state, not a terminal verdict — resuming with a larger budget
// continues to the same diagnosis an unbudgeted run produces.
func TestCampaignMaxItersResumable(t *testing.T) {
	cfg := pbzipConfig(t)
	report, disc, err := FirstFailure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseline := campaignFingerprint(RunFromReport(cfg, report, disc))

	small := cfg
	small.MaxIters = 2
	camp, err := NewCampaign(small, report, disc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := camp.Run(); err != nil {
		t.Fatalf("budgeted run: %v", err)
	}
	snap, err := camp.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Finished {
		t.Fatal("MaxIters exhaustion snapshotted as finished; resume would be refused more budget")
	}
	if snap.Iter != 2 {
		t.Fatalf("exhausted at iteration %d, want 2", snap.Iter)
	}
	resumed, err := RestoreCampaign(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := campaignFingerprint(resumed.Run()); got != baseline {
		t.Errorf("resume after MaxIters exhaustion diverged:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s",
			got, baseline)
	}
}
