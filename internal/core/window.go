package core

// Window-merge helpers shared by the campaign engine and the discovery
// wrappers. Adaptive slice tracking takes the first sigma source lines
// of the slice and merges in every statement runtime refinement has
// discovered so far (§3.2.3); the merge semantics — append-preserving,
// first-occurrence dedup against the growing window — determine the
// plan's tracked set and therefore the diagnosis output, so exactly one
// implementation may exist.

// containsInt reports whether v occurs in xs.
func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// mergeWindow appends to window every id of added that the window does
// not already contain, in added order, deduplicating against the window
// as it grows. It returns the (possibly reallocated) window; callers
// must use the return value.
func mergeWindow(window, added []int) []int {
	for _, id := range added {
		if !containsInt(window, id) {
			window = append(window, id)
		}
	}
	return window
}
