package core

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestParallelMapIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 200} {
		out := parallelMap(100, workers, func(i int) int { return i * i })
		if len(out) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestParallelMapEmpty(t *testing.T) {
	if out := parallelMap(0, 8, func(i int) int { return i }); len(out) != 0 {
		t.Fatalf("got %d results for n=0", len(out))
	}
}

func TestFleetChunk(t *testing.T) {
	if got := fleetChunk(1); got != 1 {
		t.Errorf("serial server must not speculate: chunk = %d", got)
	}
	if got := fleetChunk(4); got != 16 {
		t.Errorf("fleetChunk(4) = %d, want 16", got)
	}
}

func TestParallelMapPoolIndexOrder(t *testing.T) {
	for _, width := range []int{1, 2, 8} {
		pool := NewPool(width)
		out := parallelMapPool(50, pool, func(i int) int { return i * i })
		if len(out) != 50 {
			t.Fatalf("width=%d: got %d results", width, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("width=%d: out[%d] = %d", width, i, v)
			}
		}
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const width = 3
	pool := NewPool(width)
	var active, peak atomic.Int64
	// Two concurrent tenants drawing from one pool: the fleet-wide
	// in-flight count must never exceed the pool width.
	done := make(chan struct{}, 2)
	for tenant := 0; tenant < 2; tenant++ {
		go func() {
			parallelMapPool(40, pool, func(i int) int {
				n := active.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				active.Add(-1)
				return i
			})
			done <- struct{}{}
		}()
	}
	<-done
	<-done
	if p := peak.Load(); p > width {
		t.Errorf("pool of width %d ran %d jobs concurrently", width, p)
	}
}

func TestNewPoolDefaultWidth(t *testing.T) {
	if w := NewPool(0).Width(); w < 1 {
		t.Errorf("NewPool(0).Width() = %d", w)
	}
	if w := NewPool(5).Width(); w != 5 {
		t.Errorf("NewPool(5).Width() = %d", w)
	}
}

// TestCampaignPoolDeterminism: attaching a shared pool changes only
// wall-clock interleaving, never the diagnosis.
func TestCampaignPoolDeterminism(t *testing.T) {
	cfg := pbzipConfig(t)
	report, disc, err := FirstFailure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := campaignFingerprint(RunFromReport(cfg, report, disc))
	for _, width := range []int{1, 4} {
		camp, err := NewCampaign(cfg, report, disc)
		if err != nil {
			t.Fatal(err)
		}
		camp.UsePool(NewPool(width))
		if got := campaignFingerprint(camp.Run()); got != want {
			t.Errorf("pool width %d diverged from private fleet:\n--- pooled ---\n%s\n--- private ---\n%s",
				width, got, want)
		}
	}
}

func TestFirstFailureWorkerDeterminism(t *testing.T) {
	type probe struct {
		kind    string
		instrID int
		disc    int
	}
	var base probe
	for i, workers := range []int{1, 3, 8} {
		cfg := pbzipConfig(t)
		cfg.Workers = workers
		report, disc, err := FirstFailure(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := probe{kind: fmt.Sprint(report.Kind), instrID: report.InstrID, disc: disc}
		if i == 0 {
			base = got
			continue
		}
		if got != base {
			t.Errorf("workers=%d diverged: %+v vs %+v", workers, got, base)
		}
	}
}

// TestRunWorkerDeterminism is the core-level half of the repo's
// determinism contract: the full pipeline must produce byte-identical
// output at any fleet width. The experiments package repeats this
// across the printed-sketch bugs and under fault injection.
func TestRunWorkerDeterminism(t *testing.T) {
	fingerprint := func(workers int) string {
		cfg := pbzipConfig(t)
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		fp := fmt.Sprintf("disc=%d total=%d rec=%d ov=%.6f health=%s\n",
			res.DiscoveryRuns, res.TotalRuns, res.FailureRecurrences,
			res.AvgOverheadPct, res.Health)
		for _, it := range res.Iters {
			fp += fmt.Sprintf("%+v\n", it)
		}
		fp += res.Sketch.Render()
		for _, r := range res.Sketch.AllRanked {
			fp += fmt.Sprintf("%+v\n", r)
		}
		return fp
	}
	serial := fingerprint(1)
	if wide := fingerprint(8); wide != serial {
		t.Fatalf("workers=8 diverged from serial:\n--- serial ---\n%s\n--- workers=8 ---\n%s", serial, wide)
	}
}
