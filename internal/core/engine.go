package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// Engine selects which execution engine runs MiniC programs: the flat
// bytecode VM (default) or the tree-walking interpreter the bytecode
// engine is differentially tested against. The two are observationally
// identical — same RNG consumption, same hook events at the same
// clocks, byte-identical failure reports — so selecting an engine can
// change wall-clock only, never a diagnosis. The interpreter remains
// selectable as the reference implementation for differential runs and
// for bisecting a suspected engine bug.
type Engine int

const (
	// EngineBytecode executes compiled bytecode on pooled machines with
	// the process-wide compile cache (analysis.Bytecode). The zero value,
	// so every config and plan defaults to the fast engine.
	EngineBytecode Engine = iota
	// EngineInterp executes the tree-walking reference interpreter.
	EngineInterp
)

// String returns the flag spelling of the engine.
func (e Engine) String() string {
	switch e {
	case EngineBytecode:
		return "bytecode"
	case EngineInterp:
		return "interp"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// ParseEngine parses a -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "bytecode":
		return EngineBytecode, nil
	case "interp", "interpreter":
		return EngineInterp, nil
	}
	return EngineBytecode, fmt.Errorf("unknown engine %q (want bytecode or interp)", s)
}

// exec runs one production run on the selected engine. On the bytecode
// engine the program is compiled at most once per process (single-flight
// via analysis.Bytecode) and the run executes on a pooled machine; the
// vm.compile_cache_hit and vm.state_reuse counters record how often the
// fleet actually rode the warm paths. The counters track physical
// executions (including speculatively dispatched runs a campaign later
// discards), so they are observability-only and not width-stable.
func (e Engine) exec(prog *ir.Program, vcfg vm.Config, tel *telemetry.Tracer) *vm.Outcome {
	if e == EngineInterp {
		return vm.Run(prog, vcfg)
	}
	bp, hit := analysis.Bytecode(prog)
	out, reused := bp.Run(vcfg)
	if tel != nil {
		if hit {
			tel.Add("vm.compile_cache_hit", 1)
		}
		if reused {
			tel.Add("vm.state_reuse", 1)
		}
	}
	return out
}
