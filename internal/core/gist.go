package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/faults"
	"repro/internal/ir"
	"repro/internal/slicer"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// Config configures one end-to-end Gist diagnosis (Fig. 2).
type Config struct {
	Prog  *ir.Program
	Title string

	// Label tags the diagnosis's telemetry (spans and counters) with a
	// campaign identity so multi-tenant schedulers can attribute cost
	// per bug in -metrics-json. Empty means unlabeled: the telemetry
	// stream is byte-compatible with historical output.
	Label string

	// Engine selects the execution engine for every production run of
	// the diagnosis (discovery and instrumented fleet runs alike). The
	// zero value is the bytecode VM; EngineInterp selects the
	// tree-walking reference interpreter. The diagnosis is byte-identical
	// either way.
	Engine Engine

	// Sigma0 is the initial tracked-slice size in statements (§3.2.1;
	// the paper uses 2). Each AsT iteration doubles it.
	Sigma0 int
	// SigmaGrowthAdd, when positive, switches AsT to additive window
	// growth (sigma += SigmaGrowthAdd) instead of the paper's
	// multiplicative doubling — the growth-strategy ablation.
	SigmaGrowthAdd int
	// MaxSigma caps the tracked window; 0 means the whole slice.
	MaxSigma int
	// Features gates static/control-flow/data-flow tracking (Fig. 10).
	Features Features

	// Endpoints is the number of production runs per AsT iteration (the
	// cooperative fleet slice assigned to this failure).
	Endpoints int
	// MaxBatches bounds how many endpoint batches one iteration may
	// consume while waiting for the failure to recur.
	MaxBatches int
	// FailuresPerIter is how many failing runs each AsT iteration
	// consumes before re-planning (the paper's per-iteration failure
	// recurrences; Table 1 counts their total).
	FailuresPerIter int
	// MinSuccesses is how many successful runs each iteration gathers for
	// the statistical comparison before it stops early.
	MinSuccesses int
	// MaxIters bounds AsT iterations.
	MaxIters int

	// WorkloadPool is the set of inputs endpoints run; endpoint k uses
	// pool[k mod len]. An empty pool means empty workloads.
	WorkloadPool []vm.Workload

	PreemptMean int
	MaxSteps    int64
	SeedBase    int64
	// Beta is the F-measure beta; the paper uses 0.5.
	Beta float64

	// StopWhen is the developer oracle: given the iteration's sketch,
	// decide whether it contains the root cause and AsT can stop. If nil,
	// AsT runs until the window covers the whole slice.
	StopWhen func(*Sketch) bool

	// MaxDiscoveryRuns bounds the search for the first failure.
	MaxDiscoveryRuns int
	// DiscoveryStepBudget bounds the total interpreted steps discovery
	// may consume across runs, so a hang-class bug with an unlucky seed
	// cannot burn the whole MaxDiscoveryRuns budget; 0 means unlimited.
	DiscoveryStepBudget int64
	// DiscoveryProgress, when set, is called every
	// DiscoveryProgressEvery runs with the runs and steps consumed so
	// far — the deployment's liveness signal during discovery.
	DiscoveryProgress func(runs int, steps int64)
	// DiscoveryProgressEvery is the progress-report period in runs; 0
	// means 256.
	DiscoveryProgressEvery int

	// Faults configures the fault-injected fleet; the zero value keeps
	// every endpoint perfectly reliable (byte-identical to the
	// pre-chaos pipeline).
	Faults faults.Config
	// RunDeadlineSteps is the per-run step deadline the server applies
	// to arriving reports: a run whose outcome consumed more steps, or
	// whose endpoint hung, is discarded so it cannot stall the
	// iteration. 0 disables the deadline.
	RunDeadlineSteps int64
	// MaxRetries caps the retry passes (with capped exponential
	// backoff) the AsT controller spends re-seeding replacement runs
	// for lost endpoints in one iteration. 0 means 3.
	MaxRetries int
	// MinQuorum is the minimum number of validated failing+successful
	// runs an iteration needs before its predictor ranking is
	// considered trustworthy; below it the sketch is annotated as low
	// confidence. 0 means 3.
	MinQuorum int

	// Workers bounds how many endpoint runs the server executes
	// concurrently (discovery, iteration, and retry batches). Results
	// are admitted in dispatch order, so any worker count produces
	// byte-identical diagnoses; 0 means GOMAXPROCS.
	Workers int

	// Telemetry, when non-nil, receives phase spans (discovery, TICFG
	// build, slicing, planning, fleet collection, ranking, sketch
	// rendering, and the client-side run/decode/watch phases) plus
	// fleet and fault counters. Telemetry only observes: the diagnosis
	// is byte-identical with it nil or set, at any worker width.
	Telemetry *telemetry.Tracer
}

// Validate rejects configurations that out-of-range CLI flags (or
// library callers) could smuggle in: negative worker counts, fault
// probabilities outside [0,1], negative budgets. Zero values are always
// valid — they mean "use the default". Run, RunFromReport, and
// FirstFailure all call this, so every entry point is guarded.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"Workers", int64(c.Workers)},
		{"Sigma0", int64(c.Sigma0)},
		{"SigmaGrowthAdd", int64(c.SigmaGrowthAdd)},
		{"MaxSigma", int64(c.MaxSigma)},
		{"Endpoints", int64(c.Endpoints)},
		{"MaxBatches", int64(c.MaxBatches)},
		{"FailuresPerIter", int64(c.FailuresPerIter)},
		{"MinSuccesses", int64(c.MinSuccesses)},
		{"MaxIters", int64(c.MaxIters)},
		{"MaxSteps", c.MaxSteps},
		{"RunDeadlineSteps", c.RunDeadlineSteps},
		{"MaxRetries", int64(c.MaxRetries)},
		{"MinQuorum", int64(c.MinQuorum)},
		{"MaxDiscoveryRuns", int64(c.MaxDiscoveryRuns)},
		{"DiscoveryStepBudget", c.DiscoveryStepBudget},
	} {
		if f.v < 0 {
			return fmt.Errorf("gist: config %s = %d is negative", f.name, f.v)
		}
	}
	if c.Beta < 0 {
		return fmt.Errorf("gist: config Beta = %g is negative", c.Beta)
	}
	if err := c.Faults.Validate(); err != nil {
		return fmt.Errorf("gist: %w", err)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Sigma0 == 0 {
		c.Sigma0 = 2
	}
	if c.Endpoints == 0 {
		c.Endpoints = 40
	}
	if c.MaxBatches == 0 {
		c.MaxBatches = 8
	}
	if c.FailuresPerIter == 0 {
		c.FailuresPerIter = 2
	}
	if c.MinSuccesses == 0 {
		c.MinSuccesses = 6
	}
	if c.MaxIters == 0 {
		c.MaxIters = 12
	}
	if c.PreemptMean == 0 {
		c.PreemptMean = 3
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 200_000
	}
	if c.Beta == 0 {
		c.Beta = 0.5
	}
	if c.MaxDiscoveryRuns == 0 {
		c.MaxDiscoveryRuns = 4000
	}
	if c.DiscoveryProgressEvery == 0 {
		c.DiscoveryProgressEvery = 256
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MinQuorum == 0 {
		c.MinQuorum = 3
	}
	if c.Workers == 0 {
		c.Workers = defaultWorkers()
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if !c.Features.Static && !c.Features.ControlFlow && !c.Features.DataFlow {
		c.Features = AllFeatures()
	}
	return c
}

// IterStats records one AsT iteration for the evaluation harness.
type IterStats struct {
	Sigma         int
	TrackedLines  int
	TrackedInstrs int
	Failing       int
	Successful    int
	// OverheadPct is the mean client overhead across this iteration's
	// instrumented runs.
	OverheadPct float64
	// AddedInstrs are statements discovered by data-flow refinement this
	// iteration.
	AddedInstrs []int
	// Health summarizes fleet behavior during this iteration: losses,
	// decode errors, quarantined runs, retries.
	Health FleetHealth
}

// Result is the outcome of a Gist diagnosis.
type Result struct {
	Sketch *Sketch
	Slice  *slicer.Slice
	Report *vm.FailureReport
	Iters  []IterStats

	// FailureRecurrences counts the failing production runs consumed
	// after the initial failure (Table 1's "# failure recurrences").
	FailureRecurrences int
	TotalRuns          int
	// AvgOverheadPct is the mean client overhead across all instrumented
	// runs of the diagnosis.
	AvgOverheadPct float64
	// DiscoveryRuns is how many runs were needed to see the first failure.
	DiscoveryRuns int
	// Health aggregates fleet behavior across the whole diagnosis.
	Health FleetHealth
}

// workloadFor picks the workload for an endpoint.
func (c Config) workloadFor(k int) vm.Workload {
	if len(c.WorkloadPool) == 0 {
		return vm.Workload{}
	}
	return c.WorkloadPool[k%len(c.WorkloadPool)]
}

// FirstFailure runs uninstrumented executions until the target program
// fails, returning the failure report (the crash dump a production
// deployment would ship) and how many runs it took. A positive
// RunDeadlineSteps caps each run's steps (a hung run trips the VM's
// hang fault at the deadline instead of burning the whole MaxSteps
// allowance), DiscoveryStepBudget bounds the total steps across runs,
// and DiscoveryProgress reports liveness while the search spins.
//
// Runs execute on the fleet's worker pool (Config.Workers) in
// speculative chunks; outcomes are consumed in seed order, so the
// report, run count, and budget errors are identical to serial search.
func FirstFailure(cfg Config) (*vm.FailureReport, int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	cfg = cfg.withDefaults()
	sp := cfg.Telemetry.StartSpan(telemetry.PhaseDiscovery)
	defer sp.End()
	maxSteps := cfg.MaxSteps
	if cfg.RunDeadlineSteps > 0 && cfg.RunDeadlineSteps < maxSteps {
		maxSteps = cfg.RunDeadlineSteps
	}
	var totalSteps int64
	chunk := fleetChunk(cfg.Workers)
	for base := 0; base < cfg.MaxDiscoveryRuns; base += chunk {
		n := chunk
		if base+n > cfg.MaxDiscoveryRuns {
			n = cfg.MaxDiscoveryRuns - base
		}
		outs := parallelMap(n, cfg.Workers, func(j int) *vm.Outcome {
			i := base + j
			return cfg.Engine.exec(cfg.Prog, vm.Config{
				Seed:        cfg.SeedBase + int64(i),
				PreemptMean: cfg.PreemptMean,
				MaxSteps:    maxSteps,
				Workload:    cfg.workloadFor(i),
			}, cfg.Telemetry)
		})
		for j, out := range outs {
			i := base + j
			totalSteps += out.Steps
			if out.Failed {
				return out.Report, i + 1, nil
			}
			if cfg.DiscoveryProgress != nil && (i+1)%cfg.DiscoveryProgressEvery == 0 {
				cfg.DiscoveryProgress(i+1, totalSteps)
			}
			if cfg.DiscoveryStepBudget > 0 && totalSteps >= cfg.DiscoveryStepBudget {
				return nil, i + 1, fmt.Errorf("gist: discovery step budget %d exhausted after %d runs", cfg.DiscoveryStepBudget, i+1)
			}
		}
	}
	return nil, cfg.MaxDiscoveryRuns, fmt.Errorf("gist: no failure in %d discovery runs", cfg.MaxDiscoveryRuns)
}

// Run performs the full Gist pipeline: slice statically, then adaptively
// track increasingly larger slice portions across the endpoint fleet,
// refining the slice and re-ranking failure predictors after each
// iteration, until the developer oracle is satisfied or the window covers
// the whole slice.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	report, discRuns, err := FirstFailure(cfg)
	if err != nil {
		return nil, err
	}
	return RunFromReport(cfg, report, discRuns)
}

// RunFromReport performs the pipeline for a known failure report: it is
// a thin wrapper over the Campaign state machine (campaign.go), which
// owns the adaptive slice-tracking loop.
func RunFromReport(cfg Config, report *vm.FailureReport, discRuns int) (*Result, error) {
	camp, err := NewCampaign(cfg, report, discRuns)
	if err != nil {
		return nil, err
	}
	return camp.Run()
}

// BuildGraph returns the TICFG for the configured program, constructing
// it on first use and returning the process-wide memoized graph after
// that (the graph is read-only once built, so sharing is safe).
func (c Config) BuildGraph() *cfg.TICFG { return analysis.Graph(c.Prog) }
