package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/faults"
	"repro/internal/ir"
	"repro/internal/slicer"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// Config configures one end-to-end Gist diagnosis (Fig. 2).
type Config struct {
	Prog  *ir.Program
	Title string

	// Sigma0 is the initial tracked-slice size in statements (§3.2.1;
	// the paper uses 2). Each AsT iteration doubles it.
	Sigma0 int
	// SigmaGrowthAdd, when positive, switches AsT to additive window
	// growth (sigma += SigmaGrowthAdd) instead of the paper's
	// multiplicative doubling — the growth-strategy ablation.
	SigmaGrowthAdd int
	// MaxSigma caps the tracked window; 0 means the whole slice.
	MaxSigma int
	// Features gates static/control-flow/data-flow tracking (Fig. 10).
	Features Features

	// Endpoints is the number of production runs per AsT iteration (the
	// cooperative fleet slice assigned to this failure).
	Endpoints int
	// MaxBatches bounds how many endpoint batches one iteration may
	// consume while waiting for the failure to recur.
	MaxBatches int
	// FailuresPerIter is how many failing runs each AsT iteration
	// consumes before re-planning (the paper's per-iteration failure
	// recurrences; Table 1 counts their total).
	FailuresPerIter int
	// MinSuccesses is how many successful runs each iteration gathers for
	// the statistical comparison before it stops early.
	MinSuccesses int
	// MaxIters bounds AsT iterations.
	MaxIters int

	// WorkloadPool is the set of inputs endpoints run; endpoint k uses
	// pool[k mod len]. An empty pool means empty workloads.
	WorkloadPool []vm.Workload

	PreemptMean int
	MaxSteps    int64
	SeedBase    int64
	// Beta is the F-measure beta; the paper uses 0.5.
	Beta float64

	// StopWhen is the developer oracle: given the iteration's sketch,
	// decide whether it contains the root cause and AsT can stop. If nil,
	// AsT runs until the window covers the whole slice.
	StopWhen func(*Sketch) bool

	// MaxDiscoveryRuns bounds the search for the first failure.
	MaxDiscoveryRuns int
	// DiscoveryStepBudget bounds the total interpreted steps discovery
	// may consume across runs, so a hang-class bug with an unlucky seed
	// cannot burn the whole MaxDiscoveryRuns budget; 0 means unlimited.
	DiscoveryStepBudget int64
	// DiscoveryProgress, when set, is called every
	// DiscoveryProgressEvery runs with the runs and steps consumed so
	// far — the deployment's liveness signal during discovery.
	DiscoveryProgress func(runs int, steps int64)
	// DiscoveryProgressEvery is the progress-report period in runs; 0
	// means 256.
	DiscoveryProgressEvery int

	// Faults configures the fault-injected fleet; the zero value keeps
	// every endpoint perfectly reliable (byte-identical to the
	// pre-chaos pipeline).
	Faults faults.Config
	// RunDeadlineSteps is the per-run step deadline the server applies
	// to arriving reports: a run whose outcome consumed more steps, or
	// whose endpoint hung, is discarded so it cannot stall the
	// iteration. 0 disables the deadline.
	RunDeadlineSteps int64
	// MaxRetries caps the retry passes (with capped exponential
	// backoff) the AsT controller spends re-seeding replacement runs
	// for lost endpoints in one iteration. 0 means 3.
	MaxRetries int
	// MinQuorum is the minimum number of validated failing+successful
	// runs an iteration needs before its predictor ranking is
	// considered trustworthy; below it the sketch is annotated as low
	// confidence. 0 means 3.
	MinQuorum int

	// Workers bounds how many endpoint runs the server executes
	// concurrently (discovery, iteration, and retry batches). Results
	// are admitted in dispatch order, so any worker count produces
	// byte-identical diagnoses; 0 means GOMAXPROCS.
	Workers int

	// Telemetry, when non-nil, receives phase spans (discovery, TICFG
	// build, slicing, planning, fleet collection, ranking, sketch
	// rendering, and the client-side run/decode/watch phases) plus
	// fleet and fault counters. Telemetry only observes: the diagnosis
	// is byte-identical with it nil or set, at any worker width.
	Telemetry *telemetry.Tracer
}

// Validate rejects configurations that out-of-range CLI flags (or
// library callers) could smuggle in: negative worker counts, fault
// probabilities outside [0,1], negative budgets. Zero values are always
// valid — they mean "use the default". Run, RunFromReport, and
// FirstFailure all call this, so every entry point is guarded.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"Workers", int64(c.Workers)},
		{"Sigma0", int64(c.Sigma0)},
		{"SigmaGrowthAdd", int64(c.SigmaGrowthAdd)},
		{"MaxSigma", int64(c.MaxSigma)},
		{"Endpoints", int64(c.Endpoints)},
		{"MaxBatches", int64(c.MaxBatches)},
		{"FailuresPerIter", int64(c.FailuresPerIter)},
		{"MinSuccesses", int64(c.MinSuccesses)},
		{"MaxIters", int64(c.MaxIters)},
		{"MaxSteps", c.MaxSteps},
		{"RunDeadlineSteps", c.RunDeadlineSteps},
		{"MaxRetries", int64(c.MaxRetries)},
		{"MinQuorum", int64(c.MinQuorum)},
		{"MaxDiscoveryRuns", int64(c.MaxDiscoveryRuns)},
		{"DiscoveryStepBudget", c.DiscoveryStepBudget},
	} {
		if f.v < 0 {
			return fmt.Errorf("gist: config %s = %d is negative", f.name, f.v)
		}
	}
	if c.Beta < 0 {
		return fmt.Errorf("gist: config Beta = %g is negative", c.Beta)
	}
	if err := c.Faults.Validate(); err != nil {
		return fmt.Errorf("gist: %w", err)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Sigma0 == 0 {
		c.Sigma0 = 2
	}
	if c.Endpoints == 0 {
		c.Endpoints = 40
	}
	if c.MaxBatches == 0 {
		c.MaxBatches = 8
	}
	if c.FailuresPerIter == 0 {
		c.FailuresPerIter = 2
	}
	if c.MinSuccesses == 0 {
		c.MinSuccesses = 6
	}
	if c.MaxIters == 0 {
		c.MaxIters = 12
	}
	if c.PreemptMean == 0 {
		c.PreemptMean = 3
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 200_000
	}
	if c.Beta == 0 {
		c.Beta = 0.5
	}
	if c.MaxDiscoveryRuns == 0 {
		c.MaxDiscoveryRuns = 4000
	}
	if c.DiscoveryProgressEvery == 0 {
		c.DiscoveryProgressEvery = 256
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MinQuorum == 0 {
		c.MinQuorum = 3
	}
	if c.Workers == 0 {
		c.Workers = defaultWorkers()
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if !c.Features.Static && !c.Features.ControlFlow && !c.Features.DataFlow {
		c.Features = AllFeatures()
	}
	return c
}

// IterStats records one AsT iteration for the evaluation harness.
type IterStats struct {
	Sigma         int
	TrackedLines  int
	TrackedInstrs int
	Failing       int
	Successful    int
	// OverheadPct is the mean client overhead across this iteration's
	// instrumented runs.
	OverheadPct float64
	// AddedInstrs are statements discovered by data-flow refinement this
	// iteration.
	AddedInstrs []int
	// Health summarizes fleet behavior during this iteration: losses,
	// decode errors, quarantined runs, retries.
	Health FleetHealth
}

// Result is the outcome of a Gist diagnosis.
type Result struct {
	Sketch *Sketch
	Slice  *slicer.Slice
	Report *vm.FailureReport
	Iters  []IterStats

	// FailureRecurrences counts the failing production runs consumed
	// after the initial failure (Table 1's "# failure recurrences").
	FailureRecurrences int
	TotalRuns          int
	// AvgOverheadPct is the mean client overhead across all instrumented
	// runs of the diagnosis.
	AvgOverheadPct float64
	// DiscoveryRuns is how many runs were needed to see the first failure.
	DiscoveryRuns int
	// Health aggregates fleet behavior across the whole diagnosis.
	Health FleetHealth
}

// workloadFor picks the workload for an endpoint.
func (c Config) workloadFor(k int) vm.Workload {
	if len(c.WorkloadPool) == 0 {
		return vm.Workload{}
	}
	return c.WorkloadPool[k%len(c.WorkloadPool)]
}

// FirstFailure runs uninstrumented executions until the target program
// fails, returning the failure report (the crash dump a production
// deployment would ship) and how many runs it took. A positive
// RunDeadlineSteps caps each run's steps (a hung run trips the VM's
// hang fault at the deadline instead of burning the whole MaxSteps
// allowance), DiscoveryStepBudget bounds the total steps across runs,
// and DiscoveryProgress reports liveness while the search spins.
//
// Runs execute on the fleet's worker pool (Config.Workers) in
// speculative chunks; outcomes are consumed in seed order, so the
// report, run count, and budget errors are identical to serial search.
func FirstFailure(cfg Config) (*vm.FailureReport, int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	cfg = cfg.withDefaults()
	sp := cfg.Telemetry.StartSpan(telemetry.PhaseDiscovery)
	defer sp.End()
	maxSteps := cfg.MaxSteps
	if cfg.RunDeadlineSteps > 0 && cfg.RunDeadlineSteps < maxSteps {
		maxSteps = cfg.RunDeadlineSteps
	}
	var totalSteps int64
	chunk := fleetChunk(cfg.Workers)
	for base := 0; base < cfg.MaxDiscoveryRuns; base += chunk {
		n := chunk
		if base+n > cfg.MaxDiscoveryRuns {
			n = cfg.MaxDiscoveryRuns - base
		}
		outs := parallelMap(n, cfg.Workers, func(j int) *vm.Outcome {
			i := base + j
			return vm.Run(cfg.Prog, vm.Config{
				Seed:        cfg.SeedBase + int64(i),
				PreemptMean: cfg.PreemptMean,
				MaxSteps:    maxSteps,
				Workload:    cfg.workloadFor(i),
			})
		})
		for j, out := range outs {
			i := base + j
			totalSteps += out.Steps
			if out.Failed {
				return out.Report, i + 1, nil
			}
			if cfg.DiscoveryProgress != nil && (i+1)%cfg.DiscoveryProgressEvery == 0 {
				cfg.DiscoveryProgress(i+1, totalSteps)
			}
			if cfg.DiscoveryStepBudget > 0 && totalSteps >= cfg.DiscoveryStepBudget {
				return nil, i + 1, fmt.Errorf("gist: discovery step budget %d exhausted after %d runs", cfg.DiscoveryStepBudget, i+1)
			}
		}
	}
	return nil, cfg.MaxDiscoveryRuns, fmt.Errorf("gist: no failure in %d discovery runs", cfg.MaxDiscoveryRuns)
}

// Run performs the full Gist pipeline: slice statically, then adaptively
// track increasingly larger slice portions across the endpoint fleet,
// refining the slice and re-ranking failure predictors after each
// iteration, until the developer oracle is satisfied or the window covers
// the whole slice.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	report, discRuns, err := FirstFailure(cfg)
	if err != nil {
		return nil, err
	}
	return RunFromReport(cfg, report, discRuns)
}

// RunFromReport performs the pipeline for a known failure report.
func RunFromReport(cfg Config, report *vm.FailureReport, discRuns int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	tel := cfg.Telemetry
	sp := tel.StartSpan(telemetry.PhaseTICFG)
	g := cfg.BuildGraph()
	sp.End()
	sp = tel.StartSpan(telemetry.PhaseSlice)
	sl := analysis.Slice(cfg.Prog, report.InstrID)
	// Deadlock reports carry the other blocked threads' PCs (a crash dump
	// has every thread's stack): slice from each cycle participant and
	// merge, so the sketch shows the whole inversion.
	for _, pc := range report.OtherPCs {
		for _, id := range analysis.Slice(cfg.Prog, pc).Discovery {
			sl.Add(id)
		}
	}
	sp.End()

	res := &Result{Slice: sl, Report: report, DiscoveryRuns: discRuns}
	// The diagnosis-wide FleetHealth aggregate doubles as the telemetry
	// counter inventory; push it on every exit path so -metrics-json
	// sees the same numbers the Result carries.
	tel.SetGauge("fleet.workers", int64(cfg.Workers))
	defer func() { pushFleetCounters(tel, res.Health) }()
	var overheads []float64
	var added []int
	addedSet := make(map[int]bool)

	sigma := cfg.Sigma0
	maxSigma := cfg.MaxSigma
	seed := cfg.SeedBase + int64(cfg.MaxDiscoveryRuns) // past discovery seeds
	inj := faults.NewInjector(cfg.Faults)

	for iter := 0; iter < cfg.MaxIters; iter++ {
		limit := sl.LineCount()
		if maxSigma > 0 && maxSigma < limit {
			limit = maxSigma
		}
		effSigma := sigma
		if effSigma > limit {
			effSigma = limit
		}
		window := sl.Window(effSigma)
		for _, id := range added {
			if !containsInt(window, id) {
				window = append(window, id)
			}
		}
		sp = tel.StartSpan(telemetry.PhasePlan)
		plan := BuildPlan(g, window, cfg.Features)
		sp.End()
		plan.Telemetry = tel
		windowSet := make(map[int]bool, len(window))
		for _, id := range window {
			windowSet[id] = true
		}

		var failing, successful []*RunTrace
		var health FleetHealth
		var lostEndpoints []int
		iterStart := len(overheads)
		// makeJob binds one production run's identity — endpoint, seed,
		// workload, fault decision — at dispatch time, before the worker
		// pool touches it, so parallel execution cannot perturb the
		// seed-to-run mapping.
		makeJob := func(e int, s int64) fleetJob {
			return fleetJob{
				spec: RunSpec{
					EndpointID:  e,
					Seed:        s,
					Workload:    cfg.workloadFor(e),
					PreemptMean: cfg.PreemptMean,
					MaxSteps:    cfg.MaxSteps,
				},
				dec: inj.ForRun(e, s),
			}
		}
		// admit applies the server's admission logic to one arrived
		// report, strictly in dispatch order: crashed and
		// deadline-missing endpoints are recorded for the retry pass,
		// arriving reports pass server-side validation, and undecodable
		// traces are quarantined away from predictor extraction while
		// keeping their outcome.
		admit := func(job fleetJob, rt *RunTrace) {
			spec := job.spec
			// Fault-class accounting happens here, not at dispatch:
			// admission order is the part of the pipeline that is
			// byte-identical at any worker width, so the counters are
			// width-stable even though speculative chunks over-dispatch.
			if tel != nil && job.dec.Any() {
				tel.Add("faults.injected_runs", 1)
				countFaults(tel, job.dec)
			}
			health.Dispatched++
			res.TotalRuns++
			if rt == nil {
				health.Lost++
				lostEndpoints = append(lostEndpoints, spec.EndpointID)
				return
			}
			if rt.Late || (cfg.RunDeadlineSteps > 0 && rt.Outcome != nil && rt.Outcome.Steps > cfg.RunDeadlineSteps) {
				health.Deadlined++
				lostEndpoints = append(lostEndpoints, spec.EndpointID)
				return
			}
			quarantine, repaired := validateTrace(rt, len(cfg.Prog.Instrs))
			if quarantine {
				health.Quarantined++
				return
			}
			if repaired > 0 {
				health.Repaired++
			}
			health.Arrived++
			health.TrapsDropped += rt.DroppedTraps
			if rt.SalvagedCores > 0 {
				health.Salvaged++
			}
			if rt.DecodeErr != nil {
				health.DecodeErrs++
				quarantineTraceData(rt)
			}
			if cfg.Features.ExtendedPT {
				// The extended-PT trace logs every shared access; keep
				// only those on addresses the tracked slice touches, the
				// same set hardware watchpoints would have trapped on.
				rt.FilterTraps(func(id int) bool { return sl.Contains(id) || windowSet[id] })
			}
			overheads = append(overheads, rt.Meter.OverheadPct())
			if rt.Failed() && rt.Outcome.Report.ID() == report.ID() {
				if len(failing) < cfg.FailuresPerIter {
					failing = append(failing, rt)
				}
			} else if !rt.Failed() {
				successful = append(successful, rt)
			}
		}
		need := func() bool {
			return len(failing) < cfg.FailuresPerIter || len(successful) < cfg.MinSuccesses
		}
		fleetSpan := tel.StartSpan(telemetry.PhaseFleet)
		budget := cfg.MaxBatches * cfg.Endpoints
		chunk := fleetChunk(cfg.Workers)
		// The fleet executes speculative chunks concurrently while the
		// server admits reports strictly in dispatch order, stopping at
		// exactly the run where a serial fleet would have stopped;
		// speculated runs past that point are discarded unconsumed and
		// their seeds are never burned.
		for done := 0; done < budget && need(); {
			n := chunk
			if done+n > budget {
				n = budget - done
			}
			jobs := make([]fleetJob, n)
			for j := range jobs {
				jobs[j] = makeJob((done+j)%cfg.Endpoints, seed+int64(j))
			}
			results := runFleet(plan, jobs, cfg.Workers)
			for j, rt := range results {
				if !need() {
					break
				}
				admit(jobs[j], rt)
				seed++
				done++
			}
		}
		// Lost and deadlined endpoints get their batches retried with
		// capped exponential backoff: each retry pass costs backoff
		// simulated batch delays, then re-seeds a replacement run per
		// missing endpoint. A retry batch always runs to completion
		// (need() gates passes, not batch members), so the whole batch
		// fans out across the pool at once.
		backoff := 1
		for retry := 0; retry < cfg.MaxRetries && len(lostEndpoints) > 0 && need(); retry++ {
			health.Retries++
			health.BackoffBatches += backoff
			batch := lostEndpoints
			lostEndpoints = nil
			jobs := make([]fleetJob, len(batch))
			for j, e := range batch {
				jobs[j] = makeJob(e, seed+int64(j))
			}
			results := runFleet(plan, jobs, cfg.Workers)
			for j, rt := range results {
				health.Reseeded++
				admit(jobs[j], rt)
				seed++
			}
			if backoff < 8 {
				backoff *= 2
			}
		}
		fleetSpan.End()
		if len(failing) == 0 {
			res.Health.Merge(health)
			// The failure did not recur under this window's fleet budget;
			// grow the window and keep waiting, like a real deployment.
			if cfg.SigmaGrowthAdd > 0 {
				sigma += cfg.SigmaGrowthAdd
			} else {
				sigma *= 2
			}
			if effSigma >= limit {
				return res, fmt.Errorf("gist: failure %s did not recur (iteration %d)", report.ID(), iter)
			}
			continue
		}
		res.FailureRecurrences += len(failing)

		// Refinement (§3.2.3): statements discovered by the watchpoints
		// that the alias-free static slice missed are added to the slice.
		// Both failing and successful runs contribute: in failing
		// schedules the racing store often happens before any tracked
		// access arms a watchpoint, while successful schedules catch it.
		var addedNow []int
		refine := func(rt *RunTrace) {
			for _, tr := range rt.Traps {
				if !sl.Contains(tr.InstrID) && !addedSet[tr.InstrID] {
					addedSet[tr.InstrID] = true
					added = append(added, tr.InstrID)
					addedNow = append(addedNow, tr.InstrID)
					sl.Add(tr.InstrID)
				}
			}
		}
		for _, rt := range failing {
			refine(rt)
		}
		for _, rt := range successful {
			refine(rt)
		}

		// Quorum (§3.2): with too few validated runs the statistical
		// comparison is noise; rank anyway, but annotate the sketch so
		// the developer knows the confidence is degraded.
		lowConf := len(failing)+len(successful) < cfg.MinQuorum
		if lowConf {
			health.LowConfidenceIters++
		}
		sp = tel.StartSpan(telemetry.PhaseRank)
		ranked := RankPredictors(cfg.Prog, failing, successful, cfg.Beta)
		sp.End()
		// Base the sketch on the best-instrumented failing run: under
		// cooperative watchpoint partitioning, different failing runs
		// observed different location classes.
		basis := failing[0]
		for _, rt := range failing[1:] {
			if betterBasis(rt, basis) {
				basis = rt
			}
		}
		sp = tel.StartSpan(telemetry.PhaseSketch)
		sketch := BuildSketch(cfg.Title, plan, basis, ranked, added)
		sp.End()
		sketch.LowConfidence = lowConf
		res.Sketch = sketch
		res.Iters = append(res.Iters, IterStats{
			Sigma:         effSigma,
			TrackedLines:  effSigma,
			TrackedInstrs: len(window),
			Failing:       len(failing),
			Successful:    len(successful),
			OverheadPct:   stats.Mean(overheads[iterStart:]),
			AddedInstrs:   addedNow,
			Health:        health,
		})
		res.Health.Merge(health)

		if cfg.StopWhen != nil && cfg.StopWhen(sketch) {
			break
		}
		if len(addedNow) == 0 && effSigma >= limit {
			break // window covers the slice and refinement converged
		}
		if cfg.SigmaGrowthAdd > 0 {
			sigma += cfg.SigmaGrowthAdd
		} else {
			sigma *= 2
		}
	}
	res.AvgOverheadPct = stats.Mean(overheads)
	if res.Sketch == nil {
		return res, fmt.Errorf("gist: no sketch produced")
	}
	return res, nil
}

// BuildGraph returns the TICFG for the configured program, constructing
// it on first use and returning the process-wide memoized graph after
// that (the graph is read-only once built, so sharing is safe).
func (c Config) BuildGraph() *cfg.TICFG { return analysis.Graph(c.Prog) }

// betterBasis prefers a failing run with a clean decode over one whose
// trace had to be quarantined, then the run with the larger trap log
// (strictly larger, so the earliest run wins ties and the clean-fleet
// choice is unchanged).
func betterBasis(a, b *RunTrace) bool {
	if (a.DecodeErr == nil) != (b.DecodeErr == nil) {
		return a.DecodeErr == nil
	}
	return len(a.Traps) > len(b.Traps)
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// countFaults records one admitted run's injected fault classes.
func countFaults(tel *telemetry.Tracer, dec faults.Decision) {
	for _, c := range []struct {
		name string
		hit  bool
	}{
		{"faults.crash", dec.Crash},
		{"faults.hang", dec.Hang},
		{"faults.overflow", dec.Overflow},
		{"faults.corrupt", dec.Corrupt},
		{"faults.drop_traps", dec.DropTraps},
		{"faults.reorder_traps", dec.ReorderTraps},
		{"faults.truncate", dec.Truncate != faults.TruncateNone},
	} {
		if c.hit {
			tel.Add(c.name, 1)
		}
	}
}

// pushFleetCounters mirrors a FleetHealth aggregate into telemetry
// counters, unifying the scattered per-subsystem accounting under one
// "fleet.*" namespace.
func pushFleetCounters(tel *telemetry.Tracer, h FleetHealth) {
	if tel == nil {
		return
	}
	tel.Add("fleet.dispatched", int64(h.Dispatched))
	tel.Add("fleet.arrived", int64(h.Arrived))
	tel.Add("fleet.lost", int64(h.Lost))
	tel.Add("fleet.deadlined", int64(h.Deadlined))
	tel.Add("fleet.decode_errs", int64(h.DecodeErrs))
	tel.Add("fleet.salvaged", int64(h.Salvaged))
	tel.Add("fleet.quarantined", int64(h.Quarantined))
	tel.Add("fleet.repaired", int64(h.Repaired))
	tel.Add("fleet.traps_dropped", int64(h.TrapsDropped))
	tel.Add("fleet.retries", int64(h.Retries))
	tel.Add("fleet.reseeded", int64(h.Reseeded))
	tel.Add("fleet.backoff_batches", int64(h.BackoffBatches))
	tel.Add("fleet.low_confidence_iters", int64(h.LowConfidenceIters))
}
