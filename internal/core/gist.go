package core

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/slicer"
	"repro/internal/stats"
	"repro/internal/vm"
)

// Config configures one end-to-end Gist diagnosis (Fig. 2).
type Config struct {
	Prog  *ir.Program
	Title string

	// Sigma0 is the initial tracked-slice size in statements (§3.2.1;
	// the paper uses 2). Each AsT iteration doubles it.
	Sigma0 int
	// SigmaGrowthAdd, when positive, switches AsT to additive window
	// growth (sigma += SigmaGrowthAdd) instead of the paper's
	// multiplicative doubling — the growth-strategy ablation.
	SigmaGrowthAdd int
	// MaxSigma caps the tracked window; 0 means the whole slice.
	MaxSigma int
	// Features gates static/control-flow/data-flow tracking (Fig. 10).
	Features Features

	// Endpoints is the number of production runs per AsT iteration (the
	// cooperative fleet slice assigned to this failure).
	Endpoints int
	// MaxBatches bounds how many endpoint batches one iteration may
	// consume while waiting for the failure to recur.
	MaxBatches int
	// FailuresPerIter is how many failing runs each AsT iteration
	// consumes before re-planning (the paper's per-iteration failure
	// recurrences; Table 1 counts their total).
	FailuresPerIter int
	// MinSuccesses is how many successful runs each iteration gathers for
	// the statistical comparison before it stops early.
	MinSuccesses int
	// MaxIters bounds AsT iterations.
	MaxIters int

	// WorkloadPool is the set of inputs endpoints run; endpoint k uses
	// pool[k mod len]. An empty pool means empty workloads.
	WorkloadPool []vm.Workload

	PreemptMean int
	MaxSteps    int64
	SeedBase    int64
	// Beta is the F-measure beta; the paper uses 0.5.
	Beta float64

	// StopWhen is the developer oracle: given the iteration's sketch,
	// decide whether it contains the root cause and AsT can stop. If nil,
	// AsT runs until the window covers the whole slice.
	StopWhen func(*Sketch) bool

	// MaxDiscoveryRuns bounds the search for the first failure.
	MaxDiscoveryRuns int
}

func (c Config) withDefaults() Config {
	if c.Sigma0 == 0 {
		c.Sigma0 = 2
	}
	if c.Endpoints == 0 {
		c.Endpoints = 40
	}
	if c.MaxBatches == 0 {
		c.MaxBatches = 8
	}
	if c.FailuresPerIter == 0 {
		c.FailuresPerIter = 2
	}
	if c.MinSuccesses == 0 {
		c.MinSuccesses = 6
	}
	if c.MaxIters == 0 {
		c.MaxIters = 12
	}
	if c.PreemptMean == 0 {
		c.PreemptMean = 3
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 200_000
	}
	if c.Beta == 0 {
		c.Beta = 0.5
	}
	if c.MaxDiscoveryRuns == 0 {
		c.MaxDiscoveryRuns = 4000
	}
	if !c.Features.Static && !c.Features.ControlFlow && !c.Features.DataFlow {
		c.Features = AllFeatures()
	}
	return c
}

// IterStats records one AsT iteration for the evaluation harness.
type IterStats struct {
	Sigma         int
	TrackedLines  int
	TrackedInstrs int
	Failing       int
	Successful    int
	// OverheadPct is the mean client overhead across this iteration's
	// instrumented runs.
	OverheadPct float64
	// AddedInstrs are statements discovered by data-flow refinement this
	// iteration.
	AddedInstrs []int
}

// Result is the outcome of a Gist diagnosis.
type Result struct {
	Sketch *Sketch
	Slice  *slicer.Slice
	Report *vm.FailureReport
	Iters  []IterStats

	// FailureRecurrences counts the failing production runs consumed
	// after the initial failure (Table 1's "# failure recurrences").
	FailureRecurrences int
	TotalRuns          int
	// AvgOverheadPct is the mean client overhead across all instrumented
	// runs of the diagnosis.
	AvgOverheadPct float64
	// DiscoveryRuns is how many runs were needed to see the first failure.
	DiscoveryRuns int
}

// workloadFor picks the workload for an endpoint.
func (c Config) workloadFor(k int) vm.Workload {
	if len(c.WorkloadPool) == 0 {
		return vm.Workload{}
	}
	return c.WorkloadPool[k%len(c.WorkloadPool)]
}

// FirstFailure runs uninstrumented executions until the target program
// fails, returning the failure report (the crash dump a production
// deployment would ship) and how many runs it took.
func FirstFailure(cfg Config) (*vm.FailureReport, int, error) {
	cfg = cfg.withDefaults()
	for i := 0; i < cfg.MaxDiscoveryRuns; i++ {
		out := vm.Run(cfg.Prog, vm.Config{
			Seed:        cfg.SeedBase + int64(i),
			PreemptMean: cfg.PreemptMean,
			MaxSteps:    cfg.MaxSteps,
			Workload:    cfg.workloadFor(i),
		})
		if out.Failed {
			return out.Report, i + 1, nil
		}
	}
	return nil, cfg.MaxDiscoveryRuns, fmt.Errorf("gist: no failure in %d discovery runs", cfg.MaxDiscoveryRuns)
}

// Run performs the full Gist pipeline: slice statically, then adaptively
// track increasingly larger slice portions across the endpoint fleet,
// refining the slice and re-ranking failure predictors after each
// iteration, until the developer oracle is satisfied or the window covers
// the whole slice.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	report, discRuns, err := FirstFailure(cfg)
	if err != nil {
		return nil, err
	}
	return RunFromReport(cfg, report, discRuns)
}

// RunFromReport performs the pipeline for a known failure report.
func RunFromReport(cfg Config, report *vm.FailureReport, discRuns int) (*Result, error) {
	cfg = cfg.withDefaults()
	g := cfg.BuildGraph()
	sl := slicer.Compute(g, report.InstrID)
	// Deadlock reports carry the other blocked threads' PCs (a crash dump
	// has every thread's stack): slice from each cycle participant and
	// merge, so the sketch shows the whole inversion.
	for _, pc := range report.OtherPCs {
		for _, id := range slicer.Compute(g, pc).Discovery {
			sl.Add(id)
		}
	}

	res := &Result{Slice: sl, Report: report, DiscoveryRuns: discRuns}
	var overheads []float64
	var added []int
	addedSet := make(map[int]bool)

	sigma := cfg.Sigma0
	maxSigma := cfg.MaxSigma
	seed := cfg.SeedBase + int64(cfg.MaxDiscoveryRuns) // past discovery seeds

	for iter := 0; iter < cfg.MaxIters; iter++ {
		limit := sl.LineCount()
		if maxSigma > 0 && maxSigma < limit {
			limit = maxSigma
		}
		effSigma := sigma
		if effSigma > limit {
			effSigma = limit
		}
		window := sl.Window(effSigma)
		for _, id := range added {
			if !containsInt(window, id) {
				window = append(window, id)
			}
		}
		plan := BuildPlan(g, window, cfg.Features)
		windowSet := make(map[int]bool, len(window))
		for _, id := range window {
			windowSet[id] = true
		}

		var failing, successful []*RunTrace
		iterStart := len(overheads)
		budget := cfg.MaxBatches * cfg.Endpoints
		for i := 0; i < budget; i++ {
			if len(failing) >= cfg.FailuresPerIter && len(successful) >= cfg.MinSuccesses {
				break
			}
			e := i % cfg.Endpoints
			spec := RunSpec{
				EndpointID:  e,
				Seed:        seed,
				Workload:    cfg.workloadFor(e),
				PreemptMean: cfg.PreemptMean,
				MaxSteps:    cfg.MaxSteps,
			}
			seed++
			rt := RunInstrumented(plan, spec)
			if cfg.Features.ExtendedPT {
				// The extended-PT trace logs every shared access; keep
				// only those on addresses the tracked slice touches, the
				// same set hardware watchpoints would have trapped on.
				rt.FilterTraps(func(id int) bool { return sl.Contains(id) || windowSet[id] })
			}
			res.TotalRuns++
			overheads = append(overheads, rt.Meter.OverheadPct())
			if rt.Failed() && rt.Outcome.Report.ID() == report.ID() {
				if len(failing) < cfg.FailuresPerIter {
					failing = append(failing, rt)
				}
			} else if !rt.Failed() {
				successful = append(successful, rt)
			}
		}
		if len(failing) == 0 {
			// The failure did not recur under this window's fleet budget;
			// grow the window and keep waiting, like a real deployment.
			if cfg.SigmaGrowthAdd > 0 {
				sigma += cfg.SigmaGrowthAdd
			} else {
				sigma *= 2
			}
			if effSigma >= limit {
				return res, fmt.Errorf("gist: failure %s did not recur (iteration %d)", report.ID(), iter)
			}
			continue
		}
		res.FailureRecurrences += len(failing)

		// Refinement (§3.2.3): statements discovered by the watchpoints
		// that the alias-free static slice missed are added to the slice.
		// Both failing and successful runs contribute: in failing
		// schedules the racing store often happens before any tracked
		// access arms a watchpoint, while successful schedules catch it.
		var addedNow []int
		refine := func(rt *RunTrace) {
			for _, tr := range rt.Traps {
				if !sl.Contains(tr.InstrID) && !addedSet[tr.InstrID] {
					addedSet[tr.InstrID] = true
					added = append(added, tr.InstrID)
					addedNow = append(addedNow, tr.InstrID)
					sl.Add(tr.InstrID)
				}
			}
		}
		for _, rt := range failing {
			refine(rt)
		}
		for _, rt := range successful {
			refine(rt)
		}

		ranked := RankPredictors(cfg.Prog, failing, successful, cfg.Beta)
		// Base the sketch on the best-instrumented failing run: under
		// cooperative watchpoint partitioning, different failing runs
		// observed different location classes.
		basis := failing[0]
		for _, rt := range failing[1:] {
			if len(rt.Traps) > len(basis.Traps) {
				basis = rt
			}
		}
		sketch := BuildSketch(cfg.Title, plan, basis, ranked, added)
		res.Sketch = sketch
		res.Iters = append(res.Iters, IterStats{
			Sigma:         effSigma,
			TrackedLines:  effSigma,
			TrackedInstrs: len(window),
			Failing:       len(failing),
			Successful:    len(successful),
			OverheadPct:   stats.Mean(overheads[iterStart:]),
			AddedInstrs:   addedNow,
		})

		if cfg.StopWhen != nil && cfg.StopWhen(sketch) {
			break
		}
		if len(addedNow) == 0 && effSigma >= limit {
			break // window covers the slice and refinement converged
		}
		if cfg.SigmaGrowthAdd > 0 {
			sigma += cfg.SigmaGrowthAdd
		} else {
			sigma *= 2
		}
	}
	res.AvgOverheadPct = stats.Mean(overheads)
	if res.Sketch == nil {
		return res, fmt.Errorf("gist: no sketch produced")
	}
	return res, nil
}

// BuildGraph constructs (or returns) the TICFG for the configured program.
func (c Config) BuildGraph() *cfg.TICFG { return cfg.BuildTICFG(c.Prog) }

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
