package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/vm"
)

// FailureCluster groups production failures that share a failure identity
// (failing program counter + stack trace + fault kind) — the grouping a
// Windows-Error-Reporting-style collector performs before a diagnosis is
// launched per cluster (§7's WER discussion). One Gist diagnosis is run
// per cluster, not per crash.
type FailureCluster struct {
	ID     string
	Report *vm.FailureReport
	// Count is how many observed failures matched this cluster.
	Count int
	// Seeds are the run seeds that produced the failures (capped).
	Seeds []int64
}

// ClusterConfig configures a fleet sweep for failure clustering.
type ClusterConfig struct {
	Prog        *ir.Program
	Runs        int
	SeedBase    int64
	PreemptMean int
	MaxSteps    int64
	// WorkloadPool as in Config.
	WorkloadPool []vm.Workload
	// MaxSeedsPerCluster bounds the recorded seed list (0 = 16).
	MaxSeedsPerCluster int
	// Engine as in Config: zero value is the bytecode VM.
	Engine Engine
}

// Validate rejects nonsense knob values, mirroring Config.Validate.
// Negative counts used to slip through the zero-value defaulting and
// quietly corrupt the sweep (a negative MaxSeedsPerCluster breaks the
// seed-list bound, a negative Runs silently does nothing). Zero still
// means "use the default".
func (cfg *ClusterConfig) Validate() error {
	if cfg.Prog == nil {
		return fmt.Errorf("gist: cluster config requires a program")
	}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"runs", int64(cfg.Runs)},
		{"preempt-mean", int64(cfg.PreemptMean)},
		{"max-steps", cfg.MaxSteps},
		{"max-seeds-per-cluster", int64(cfg.MaxSeedsPerCluster)},
	} {
		if c.v < 0 {
			return fmt.Errorf("gist: cluster config %s must be >= 0, got %d", c.name, c.v)
		}
	}
	return nil
}

// Admit folds one observed failure into the cluster: the recurrence
// count always grows, the seed list only up to the cap. The streaming
// ingestion front-end shares this admission rule so a submit-path
// cluster accumulates evidence exactly like a fleet-sweep one.
func (c *FailureCluster) Admit(seed int64, maxSeeds int) {
	c.Count++
	if len(c.Seeds) < maxSeeds {
		c.Seeds = append(c.Seeds, seed)
	}
}

// ClusterFailures runs the fleet uninstrumented and groups every observed
// failure by identity. Clusters are returned most-frequent first.
func ClusterFailures(cfg ClusterConfig) ([]*FailureCluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Runs == 0 {
		cfg.Runs = 200
	}
	if cfg.PreemptMean == 0 {
		cfg.PreemptMean = 3
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 300_000
	}
	if cfg.MaxSeedsPerCluster == 0 {
		cfg.MaxSeedsPerCluster = 16
	}
	byID := make(map[string]*FailureCluster)
	for i := 0; i < cfg.Runs; i++ {
		seed := cfg.SeedBase + int64(i)
		wl := vm.Workload{}
		if len(cfg.WorkloadPool) > 0 {
			wl = cfg.WorkloadPool[i%len(cfg.WorkloadPool)]
		}
		out := cfg.Engine.exec(cfg.Prog, vm.Config{
			Seed: seed, PreemptMean: cfg.PreemptMean, MaxSteps: cfg.MaxSteps, Workload: wl,
		}, nil)
		if !out.Failed {
			continue
		}
		id := out.Report.ID()
		c := byID[id]
		if c == nil {
			c = &FailureCluster{ID: id, Report: out.Report}
			byID[id] = c
		}
		c.Admit(seed, cfg.MaxSeedsPerCluster)
	}
	clusters := make([]*FailureCluster, 0, len(byID))
	for _, c := range byID {
		clusters = append(clusters, c)
	}
	sort.Slice(clusters, func(i, j int) bool {
		if clusters[i].Count != clusters[j].Count {
			return clusters[i].Count > clusters[j].Count
		}
		return clusters[i].ID < clusters[j].ID
	})
	return clusters, nil
}

// RenderClusters summarizes clusters for an operator.
func RenderClusters(prog *ir.Program, clusters []*FailureCluster) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d failure cluster(s):\n", len(clusters))
	for i, c := range clusters {
		fmt.Fprintf(&b, "%2d. %4d crash(es)  %-38s at %s", i+1, c.Count, c.Report.Kind, c.Report.Pos)
		if txt := prog.SourceLine(c.Report.Pos.Line); txt != "" {
			fmt.Fprintf(&b, "  `%s`", txt)
		}
		b.WriteString("\n")
	}
	return b.String()
}
