package cost

import (
	"testing"
	"testing/quick"
)

func TestMeterZeroValue(t *testing.T) {
	var m Meter
	if m.BaseCycles() != 0 || m.ExtraCycles() != 0 || m.OverheadPct() != 0 {
		t.Errorf("zero meter not zero: %+v", m)
	}
}

func TestOverheadPct(t *testing.T) {
	var m Meter
	m.AddInstr(1000) // 1000 cycles base
	m.AddExtra(100 * 1000)
	if got := m.OverheadPct(); got != 10 {
		t.Errorf("overhead: got %g, want 10", got)
	}
	if m.BaseCycles() != 1000 || m.ExtraCycles() != 100 {
		t.Errorf("cycles: base=%g extra=%g", m.BaseCycles(), m.ExtraCycles())
	}
}

func TestMeterAdd(t *testing.T) {
	var a, b Meter
	a.AddInstr(100)
	a.AddExtra(5_000)
	b.AddInstr(300)
	b.AddExtra(15_000)
	a.Add(&b)
	if a.BaseCycles() != 400 {
		t.Errorf("base after merge: %g", a.BaseCycles())
	}
	if a.ExtraCycles() != 20 {
		t.Errorf("extra after merge: %g", a.ExtraCycles())
	}
}

// Property: overhead percentage is linear in extra and inverse in base.
func TestOverheadProperties(t *testing.T) {
	f := func(base, extra uint16) bool {
		if base == 0 {
			return true
		}
		var m Meter
		m.AddInstr(int64(base))
		m.AddExtra(int64(extra))
		want := 100 * float64(extra) / (float64(base) * 1000)
		got := m.OverheadPct()
		return got >= 0 && abs(got-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// The cost-model ordering invariants that the evaluation's shapes rest
// on: hardware tracing is per-event cheap, ptrace-era operations are
// expensive, software instrumentation sits in between per event but hits
// every instruction.
func TestCostModelOrdering(t *testing.T) {
	if PTBranchMC >= PTTIPMC {
		t.Error("a TNT bit must be cheaper than a TIP packet")
	}
	if PTTIPMC >= PTToggleMC {
		t.Error("a packet must be cheaper than an MSR toggle")
	}
	if WatchTrapMC <= PTToggleMC {
		t.Error("a debug trap (ptrace) must dominate a PT toggle")
	}
	if SWPTInstrMC <= InstrMC {
		t.Error("software instrumentation must tax every instruction")
	}
	if RRSerializeMC <= InstrMC {
		t.Error("serialization must be a multiple of the base instruction cost")
	}
}
