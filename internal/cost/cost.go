// Package cost is the deterministic cycle model used to report runtime
// overheads. Wall-clock time inside a simulator says nothing about the
// overhead the corresponding hardware/software mechanisms would impose on
// a production system, so — like architectural simulators — we charge
// every mechanism an explicit cost and report overhead as extra model
// cycles over base model cycles.
//
// Costs are expressed in millicycles (mc, 1/1000 of a model cycle) so that
// sub-cycle per-event costs stay in integer arithmetic.
//
// The constants are calibrated so that the *relative* overheads match the
// measurements reported in the paper's §5.3 and Fig. 13:
//
//   - full-program Intel PT tracing ≈ 11% average overhead,
//   - full-program software control-flow tracing (PIN-style) is 3×–5000×,
//   - full-program record/replay (Mozilla rr-style) ≈ 984% average,
//   - Gist's slice tracking at σ=2 ≈ 2–4% (control flow) + ~1% (data flow).
//
// Absolute magnitudes are meaningless by construction; shapes are what we
// reproduce.
package cost

// Model cost constants, in millicycles.
const (
	// InstrMC is the cost of retiring one IR instruction.
	InstrMC = 1_000

	// PTBranchMC is the hardware cost of recording one conditional-branch
	// outcome (TNT bit) with Intel PT: a fraction of a cycle of memory
	// bandwidth. Per-byte packing is accounted at the encoder.
	PTBranchMC = 700
	// PTTIPMC is the cost of a TIP packet (indirect transfer target).
	PTTIPMC = 1_800
	// PTToggleMC is the cost of turning tracing on or off (MSR write via
	// the kernel driver's ioctl path).
	PTToggleMC = 18_000

	// SWPTInstrMC is the per-instruction cost of software control-flow
	// tracing (dynamic binary instrumentation, PIN-style): every
	// instruction runs through the instrumentation engine.
	SWPTInstrMC = 2_400
	// SWPTBranchMC is the additional software cost per branch recorded.
	SWPTBranchMC = 45_000

	// WatchTrapMC is the cost of one hardware watchpoint trap delivered
	// through the debug exception + handler path.
	WatchTrapMC = 90_000
	// WatchSetupMC is the cost of installing or clearing one watchpoint
	// via the ptrace interface.
	WatchSetupMC = 40_000

	// PTWDataMC is the cost of one PTW data packet in the extended-PT
	// mode (§6's "if Intel PT also captured data addresses and values"):
	// a packet write, far cheaper than a ptrace-delivered debug trap but
	// emitted for every shared access inside a traced region.
	PTWDataMC = 2_200

	// RREventMC is the per-logged-event cost of software record/replay
	// (every shared memory access and scheduling decision is logged with
	// synchronization, Mozilla rr-style).
	RREventMC = 26_000
	// RRSerializeMC is the per-instruction cost of record/replay's
	// single-core serialization, charged while more than one thread is
	// runnable: rr runs the whole program on one core, so parallel
	// applications lose their parallelism — the dominant term in the
	// paper's Fig. 13 for the threaded programs (and absent for the
	// single-threaded ones, where rr is comparable to PT).
	RRSerializeMC = 9_000
)

// Meter accumulates base work and instrumentation overhead for one run.
// The zero value is ready to use.
type Meter struct {
	baseMC  int64
	extraMC int64
}

// AddInstr charges the base cost of n retired instructions.
func (m *Meter) AddInstr(n int64) { m.baseMC += n * InstrMC }

// AddExtra charges mc millicycles of instrumentation overhead.
func (m *Meter) AddExtra(mc int64) { m.extraMC += mc }

// BaseCycles returns the base work in cycles.
func (m *Meter) BaseCycles() float64 { return float64(m.baseMC) / 1000 }

// ExtraCycles returns the instrumentation overhead in cycles.
func (m *Meter) ExtraCycles() float64 { return float64(m.extraMC) / 1000 }

// OverheadPct returns instrumentation overhead as a percentage of base
// work, the number every figure in §5.3 reports.
func (m *Meter) OverheadPct() float64 {
	if m.baseMC == 0 {
		return 0
	}
	return 100 * float64(m.extraMC) / float64(m.baseMC)
}

// Add merges another meter into m (aggregation across runs).
func (m *Meter) Add(o *Meter) {
	m.baseMC += o.baseMC
	m.extraMC += o.extraMC
}

// MC returns the raw millicycle counters. Together with MeterFromMC it
// lets a wire codec round-trip a meter exactly; cycle-level getters
// lose the sub-cycle precision admission control depends on.
func (m Meter) MC() (base, extra int64) { return m.baseMC, m.extraMC }

// MeterFromMC rebuilds a meter from raw millicycle counters.
func MeterFromMC(base, extra int64) Meter {
	return Meter{baseMC: base, extraMC: extra}
}
