// Package token defines the lexical tokens of MiniC, the small C-like
// language used as the compilation substrate for the failure-sketching
// pipeline. MiniC plays the role that C + LLVM play in the Gist paper:
// programs under diagnosis are written in MiniC, compiled to the IR in
// package ir, and executed on the VM in package vm.
package token

import "fmt"

// Kind enumerates the lexical token kinds.
type Kind int

// Token kinds. Literal kinds carry their text in Token.Lit.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT  // main, obj, refcnt
	INT    // 123
	STRING // "{}{"

	// Operators and delimiters.
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %

	AMP  // &
	NOT  // !
	LAND // &&
	LOR  // ||

	EQ // ==
	NE // !=
	LT // <
	LE // <=
	GT // >
	GE // >=

	ASSIGN // =
	ARROW  // ->

	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACK   // [
	RBRACK   // ]
	COMMA    // ,
	SEMI     // ;
	DOT      // .
	PLUSPLUS // ++
	MINUSMIN // --

	// Keywords.
	KwInt
	KwString
	KwVoid
	KwStruct
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwNull
	KwGlobal
)

var kindNames = map[Kind]string{
	ILLEGAL:  "ILLEGAL",
	EOF:      "EOF",
	IDENT:    "IDENT",
	INT:      "INT",
	STRING:   "STRING",
	PLUS:     "+",
	MINUS:    "-",
	STAR:     "*",
	SLASH:    "/",
	PERCENT:  "%",
	AMP:      "&",
	NOT:      "!",
	LAND:     "&&",
	LOR:      "||",
	EQ:       "==",
	NE:       "!=",
	LT:       "<",
	LE:       "<=",
	GT:       ">",
	GE:       ">=",
	ASSIGN:   "=",
	ARROW:    "->",
	LPAREN:   "(",
	RPAREN:   ")",
	LBRACE:   "{",
	RBRACE:   "}",
	LBRACK:   "[",
	RBRACK:   "]",
	COMMA:    ",",
	SEMI:     ";",
	DOT:      ".",
	PLUSPLUS: "++",
	MINUSMIN: "--",

	KwInt:      "int",
	KwString:   "string",
	KwVoid:     "void",
	KwStruct:   "struct",
	KwIf:       "if",
	KwElse:     "else",
	KwWhile:    "while",
	KwFor:      "for",
	KwReturn:   "return",
	KwBreak:    "break",
	KwContinue: "continue",
	KwNull:     "null",
	KwGlobal:   "global",
}

// String returns a human-readable name for the kind (the operator text for
// operators, the keyword for keywords).
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"int":      KwInt,
	"string":   KwString,
	"void":     KwVoid,
	"struct":   KwStruct,
	"if":       KwIf,
	"else":     KwElse,
	"while":    KwWhile,
	"for":      KwFor,
	"return":   KwReturn,
	"break":    KwBreak,
	"continue": KwContinue,
	"null":     KwNull,
	"global":   KwGlobal,
}

// LookupIdent maps an identifier to its keyword kind, or IDENT if it is not
// a keyword.
func LookupIdent(name string) Kind {
	if k, ok := keywords[name]; ok {
		return k
	}
	return IDENT
}

// Position is a source position: 1-based line and column within a named file.
type Position struct {
	File string
	Line int
	Col  int
}

// String renders the position as file:line:col (or line:col without a file).
func (p Position) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// IsValid reports whether the position has been set.
func (p Position) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token with its source position.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT, INT, STRING (unquoted)
	Pos  Position
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT:
		return t.Lit
	case STRING:
		return fmt.Sprintf("%q", t.Lit)
	default:
		return t.Kind.String()
	}
}
