package parser

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lang/ast"
	"repro/internal/lang/token"
)

const sample = `
struct queue {
	int* mut;
	int size;
};

global struct queue* fifo;
global int done = 0;

void cons(int arg) {
	struct queue* f = fifo;
	lock(f->mut);
	unlock(f->mut);
}

int main() {
	fifo = malloc(sizeof(queue));
	int t = spawn(cons, 0);
	free(fifo->mut);
	fifo->mut = null;
	join(t);
	return 0;
}
`

func TestParseSample(t *testing.T) {
	f, err := ParseFile("sample.mc", sample)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(f.Structs) != 1 || f.Structs[0].Name != "queue" || len(f.Structs[0].Fields) != 2 {
		t.Errorf("structs: %+v", f.Structs)
	}
	if len(f.Globals) != 2 || f.Globals[0].Name != "fifo" || f.Globals[1].Init == nil {
		t.Errorf("globals: %+v", f.Globals)
	}
	if len(f.Funcs) != 2 || f.Funcs[0].Name != "cons" || f.Funcs[1].Name != "main" {
		t.Errorf("funcs: %+v", f.Funcs)
	}
}

func TestParsePrecedence(t *testing.T) {
	f, err := ParseFile("t.mc", "int main() { int x = 1 + 2 * 3 == 7 && 1 || 0; return x; }")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	decl := f.Funcs[0].Body.List[0].(*ast.DeclStmt)
	got := ast.PrintExpr(decl.Init)
	want := "(((1 + (2 * 3)) == 7) && 1) || 0"
	// Normalize the fully parenthesized printer output.
	if got != "((((1 + (2 * 3)) == 7) && 1) || 0)" {
		t.Errorf("precedence tree: got %s, want structure %s", got, want)
	}
}

func TestParsePostfixChains(t *testing.T) {
	f, err := ParseFile("t.mc", "int main() { int v = obj->next->vals[i+1]; return v; }")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	decl := f.Funcs[0].Body.List[0].(*ast.DeclStmt)
	if got := ast.PrintExpr(decl.Init); got != "obj->next->vals[(i + 1)]" {
		t.Errorf("got %s", got)
	}
}

func TestParseIncDecDesugar(t *testing.T) {
	f, err := ParseFile("t.mc", "int main() { int i = 0; i++; i--; return i; }")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	inc := f.Funcs[0].Body.List[1].(*ast.AssignStmt)
	if got := ast.PrintExpr(inc.RHS); got != "(i + 1)" {
		t.Errorf("i++ desugar: got %s", got)
	}
	dec := f.Funcs[0].Body.List[2].(*ast.AssignStmt)
	if got := ast.PrintExpr(dec.RHS); got != "(i - 1)" {
		t.Errorf("i-- desugar: got %s", got)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
int main() {
	for (int i = 0; i < 10; i++) {
		if (i % 2 == 0) { continue; } else { print(i); }
		while (i > 5) { break; }
	}
	return 0;
}`
	if _, err := ParseFile("t.mc", src); err != nil {
		t.Fatalf("parse: %v", err)
	}
}

func TestParseForWithEmptyClauses(t *testing.T) {
	f, err := ParseFile("t.mc", "int main() { for (;;) { break; } return 0; }")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fs := f.Funcs[0].Body.List[0].(*ast.ForStmt)
	if fs.Init != nil || fs.Cond != nil || fs.Post != nil {
		t.Errorf("empty for clauses should be nil: %+v", fs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int main() { return 0 }",  // missing semicolon
		"int main() { 1 +; }",      // bad expression
		"int main( { }",            // bad params
		"struct S { int x }",       // missing field semicolon
		"int main() { if 1 { } }",  // missing parens
		"int main() { x = ; }",     // missing RHS
		"blah",                     // not a declaration
		"int main() { (1+2)(3); }", // call of non-name
		"global int;",              // missing name
		"int f(int a,, int b) { }", // bad param list
	}
	for _, src := range cases {
		if _, err := ParseFile("t.mc", src); err == nil {
			t.Errorf("source %q: expected syntax error", src)
		}
	}
}

func TestParseErrorsAreNotFatal(t *testing.T) {
	// The parser must recover and still produce a partial AST.
	f, err := ParseFile("t.mc", "int main() { @ ; return 0; } int g() { return 1; }")
	if err == nil {
		t.Fatal("expected error")
	}
	if f == nil || len(f.Funcs) != 2 {
		t.Fatalf("expected partial AST with 2 funcs, got %+v", f)
	}
}

func TestStructTypeUseVsDecl(t *testing.T) {
	src := `
struct node { struct node* next; };
struct node* head(struct node* n) { return n->next; }
int main() { return 0; }
`
	f, err := ParseFile("t.mc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(f.Structs) != 1 || len(f.Funcs) != 2 {
		t.Fatalf("got %d structs, %d funcs", len(f.Structs), len(f.Funcs))
	}
}

// Property: the printer output of a parsed file re-parses without errors
// (print/parse fixpoint on the sample corpus plus generated variants).
func TestPrintParseFixpoint(t *testing.T) {
	srcs := []string{sample,
		"int main() { string s = \"{}{\"; int n = strlen(s); return n; }",
		"global int x = 5;\nint main() { x = x * -2; return !x; }",
	}
	for _, src := range srcs {
		f1, err := ParseFile("t.mc", src)
		if err != nil {
			t.Fatalf("parse 1: %v", err)
		}
		printed := ast.PrintFile(f1)
		f2, err := ParseFile("t.mc", printed)
		if err != nil {
			t.Fatalf("parse 2 of printed output: %v\n%s", err, printed)
		}
		if ast.PrintFile(f2) != printed {
			t.Errorf("printer not a fixpoint:\n--- first\n%s\n--- second\n%s", printed, ast.PrintFile(f2))
		}
	}
}

// Property: parsing arbitrary strings never panics.
func TestParseArbitraryInputNoPanic(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", src, r)
			}
		}()
		ParseFile("t.mc", src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: well-formed identifier assignment statements parse into
// AssignStmt nodes for arbitrary identifier names.
func TestParseAssignProperty(t *testing.T) {
	f := func(raw string) bool {
		name := sanitizeIdent(raw)
		src := "int main() { int " + name + " = 0; " + name + " = 1; return " + name + "; }"
		file, err := ParseFile("t.mc", src)
		if err != nil {
			return false
		}
		_, ok := file.Funcs[0].Body.List[1].(*ast.AssignStmt)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sanitizeIdent(s string) string {
	var b strings.Builder
	b.WriteByte('v')
	for _, r := range s {
		if r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9') {
			b.WriteRune(r)
		}
		if b.Len() > 12 {
			break
		}
	}
	name := b.String()
	if token.LookupIdent(name) != token.IDENT {
		name += "x"
	}
	return name
}
