// Package parser implements a recursive-descent parser for MiniC.
//
// The grammar (EBNF, whitespace/comments elided):
//
//	File       = { StructDecl | GlobalDecl | FuncDecl } .
//	StructDecl = "struct" IDENT "{" { Type IDENT ";" } "}" ";" .
//	GlobalDecl = "global" Type IDENT [ "=" Expr ] ";" .
//	FuncDecl   = Type IDENT "(" [ Param { "," Param } ] ")" Block .
//	Param      = Type IDENT .
//	Type       = ( "int" | "string" | "void" | "struct" IDENT ) { "*" } .
//	Block      = "{" { Stmt } "}" .
//	Stmt       = DeclStmt | IfStmt | WhileStmt | ForStmt | ReturnStmt
//	           | "break" ";" | "continue" ";" | Block | SimpleStmt ";" .
//	SimpleStmt = Expr [ "=" Expr ] | Expr "++" | Expr "--" .
//	Expr       = OrExpr .
//	OrExpr     = AndExpr { "||" AndExpr } .
//	AndExpr    = CmpExpr { "&&" CmpExpr } .
//	CmpExpr    = AddExpr { ("=="|"!="|"<"|"<="|">"|">=") AddExpr } .
//	AddExpr    = MulExpr { ("+"|"-") MulExpr } .
//	MulExpr    = UnaryExpr { ("*"|"/"|"%") UnaryExpr } .
//	UnaryExpr  = ( "-" | "!" | "*" | "&" ) UnaryExpr | Postfix .
//	Postfix    = Primary { "(" Args ")" | "[" Expr "]" | "->" IDENT } .
//	Primary    = INT | STRING | "null" | IDENT | "(" Expr ")" .
//
// i++ and i-- are desugared to i = i + 1 / i = i - 1 during parsing so the
// IR and the slicer only ever see plain assignments.
package parser

import (
	"fmt"

	"repro/internal/lang/ast"
	"repro/internal/lang/lexer"
	"repro/internal/lang/token"
)

// Error is a syntax error with a source position.
type Error struct {
	Pos token.Position
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: syntax error: %s", e.Pos, e.Msg) }

// ErrorList is a list of syntax errors; it implements error.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	default:
		return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
	}
}

type parser struct {
	lex  *lexer.Lexer
	tok  token.Token // current token
	next token.Token // one token of lookahead
	errs ErrorList
}

// ParseFile parses a MiniC source file. On syntax errors it returns a
// partial AST together with an ErrorList.
func ParseFile(filename, src string) (*ast.File, error) {
	p := &parser{lex: lexer.New(filename, src)}
	p.tok = p.lex.Next()
	p.next = p.lex.Next()
	f := p.parseFile(filename)
	for _, le := range p.lex.Errors() {
		p.errs = append(p.errs, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	if len(p.errs) > 0 {
		return f, p.errs
	}
	return f, nil
}

// MustParse parses src and panics on error. It is intended for the embedded
// bug-suite programs and for tests, where the source is a compile-time
// constant.
func MustParse(filename, src string) *ast.File {
	f, err := ParseFile(filename, src)
	if err != nil {
		panic(fmt.Sprintf("parse %s: %v", filename, err))
	}
	return f
}

func (p *parser) advance() {
	p.tok = p.next
	if p.next.Kind != token.EOF {
		p.next = p.lex.Next()
	}
}

func (p *parser) errorf(pos token.Position, format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (p *parser) expect(k token.Kind) token.Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		// Do not consume: the caller's recovery loop will skip tokens.
		return token.Token{Kind: k, Pos: t.Pos}
	}
	p.advance()
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.tok.Kind == k {
		p.advance()
		return true
	}
	return false
}

// sync skips tokens until a likely statement/declaration boundary to
// recover from a syntax error.
func (p *parser) sync() {
	for {
		switch p.tok.Kind {
		case token.EOF, token.RBRACE:
			return
		case token.SEMI:
			p.advance()
			return
		}
		p.advance()
	}
}

func (p *parser) parseFile(name string) *ast.File {
	f := &ast.File{Name: name}
	for p.tok.Kind != token.EOF {
		switch {
		case p.tok.Kind == token.KwStruct && p.next.Kind == token.IDENT && p.peekAfterStructName() == token.LBRACE:
			f.Structs = append(f.Structs, p.parseStructDecl())
		case p.tok.Kind == token.KwGlobal:
			f.Globals = append(f.Globals, p.parseGlobalDecl())
		case p.isTypeStart():
			f.Funcs = append(f.Funcs, p.parseFuncDecl())
		default:
			p.errorf(p.tok.Pos, "expected declaration, found %s", p.tok)
			p.sync()
		}
	}
	return f
}

// peekAfterStructName distinguishes "struct S { ... }" (a declaration) from
// "struct S* f(...)" (a type use). It requires 2 tokens of lookahead; since
// we only keep one, we cheat: p.tok is KwStruct and p.next is IDENT, so the
// interesting token is the one after p.next. We re-lex it cheaply via a
// cloned lexer state by peeking at the token kind cached in next. To stay
// simple we instead require struct *declarations* to appear at column 1 of
// a logical decl and rely on the brace: the only token that can follow
// "struct IDENT" at the top level in a declaration is "{"; in a function
// signature it is "*" or IDENT. We look ahead by saving the lexer.
func (p *parser) peekAfterStructName() token.Kind {
	// The lexer is a value-copyable scanner over an immutable string.
	save := *p.lex
	t := save.Next()
	return t.Kind
}

func (p *parser) isTypeStart() bool {
	switch p.tok.Kind {
	case token.KwInt, token.KwString, token.KwVoid, token.KwStruct:
		return true
	}
	return false
}

func (p *parser) parseType() ast.TypeExpr {
	var base ast.TypeExpr
	switch p.tok.Kind {
	case token.KwInt:
		base = &ast.NamedType{NamePos: p.tok.Pos, Name: "int"}
		p.advance()
	case token.KwString:
		base = &ast.NamedType{NamePos: p.tok.Pos, Name: "string"}
		p.advance()
	case token.KwVoid:
		base = &ast.NamedType{NamePos: p.tok.Pos, Name: "void"}
		p.advance()
	case token.KwStruct:
		pos := p.tok.Pos
		p.advance()
		name := p.expect(token.IDENT)
		base = &ast.StructRef{StructPos: pos, Name: name.Lit}
	default:
		p.errorf(p.tok.Pos, "expected type, found %s", p.tok)
		base = &ast.NamedType{NamePos: p.tok.Pos, Name: "int"}
		p.advance()
	}
	for p.accept(token.STAR) {
		base = &ast.PointerType{Elem: base}
	}
	return base
}

func (p *parser) parseStructDecl() *ast.StructDecl {
	pos := p.expect(token.KwStruct).Pos
	name := p.expect(token.IDENT)
	sd := &ast.StructDecl{StructPos: pos, Name: name.Lit}
	p.expect(token.LBRACE)
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		ft := p.parseType()
		fn := p.expect(token.IDENT)
		p.expect(token.SEMI)
		sd.Fields = append(sd.Fields, &ast.Field{Type: ft, Name: fn.Lit, NPos: fn.Pos})
	}
	p.expect(token.RBRACE)
	p.accept(token.SEMI)
	return sd
}

func (p *parser) parseGlobalDecl() *ast.GlobalDecl {
	pos := p.expect(token.KwGlobal).Pos
	typ := p.parseType()
	name := p.expect(token.IDENT)
	g := &ast.GlobalDecl{GlobalPos: pos, Type: typ, Name: name.Lit}
	if p.accept(token.ASSIGN) {
		g.Init = p.parseExpr()
	}
	p.expect(token.SEMI)
	return g
}

func (p *parser) parseFuncDecl() *ast.FuncDecl {
	ret := p.parseType()
	name := p.expect(token.IDENT)
	fd := &ast.FuncDecl{RetType: ret, Name: name.Lit, NamePos: name.Pos}
	p.expect(token.LPAREN)
	for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
		pt := p.parseType()
		pn := p.expect(token.IDENT)
		fd.Params = append(fd.Params, &ast.Field{Type: pt, Name: pn.Lit, NPos: pn.Pos})
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	fd.Body = p.parseBlock()
	return fd
}

func (p *parser) parseBlock() *ast.BlockStmt {
	lb := p.expect(token.LBRACE)
	b := &ast.BlockStmt{LbracePos: lb.Pos}
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		before := p.tok
		b.List = append(b.List, p.parseStmt())
		if p.tok == before { // no progress: recover
			p.sync()
		}
	}
	p.expect(token.RBRACE)
	return b
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.tok.Kind {
	case token.LBRACE:
		return p.parseBlock()
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		return p.parseWhile()
	case token.KwFor:
		return p.parseFor()
	case token.KwReturn:
		pos := p.tok.Pos
		p.advance()
		var x ast.Expr
		if p.tok.Kind != token.SEMI {
			x = p.parseExpr()
		}
		p.expect(token.SEMI)
		return &ast.ReturnStmt{RetPos: pos, X: x}
	case token.KwBreak:
		pos := p.tok.Pos
		p.advance()
		p.expect(token.SEMI)
		return &ast.BreakStmt{KwPos: pos}
	case token.KwContinue:
		pos := p.tok.Pos
		p.advance()
		p.expect(token.SEMI)
		return &ast.ContinueStmt{KwPos: pos}
	}
	if p.isTypeStart() && !p.looksLikeExprStart() {
		s := p.parseDeclStmt()
		p.expect(token.SEMI)
		return s
	}
	s := p.parseSimpleStmt()
	p.expect(token.SEMI)
	return s
}

// looksLikeExprStart distinguishes a local declaration from an expression
// statement. The ambiguity arises only for "struct" (which always starts a
// declaration in statement position) — int/string/void likewise. So a type
// start is always a declaration; this hook exists for clarity.
func (p *parser) looksLikeExprStart() bool { return false }

func (p *parser) parseDeclStmt() ast.Stmt {
	typ := p.parseType()
	name := p.expect(token.IDENT)
	d := &ast.DeclStmt{Type: typ, Name: name.Lit, NPos: name.Pos}
	if p.accept(token.ASSIGN) {
		d.Init = p.parseExpr()
	}
	return d
}

func (p *parser) parseSimpleStmt() ast.Stmt {
	lhs := p.parseExpr()
	switch p.tok.Kind {
	case token.ASSIGN:
		p.advance()
		rhs := p.parseExpr()
		return &ast.AssignStmt{LHS: lhs, RHS: rhs}
	case token.PLUSPLUS:
		p.advance()
		return &ast.AssignStmt{LHS: lhs, RHS: &ast.BinaryExpr{Op: token.PLUS, X: lhs, Y: &ast.IntLit{LitPos: lhs.Pos(), Value: 1}}}
	case token.MINUSMIN:
		p.advance()
		return &ast.AssignStmt{LHS: lhs, RHS: &ast.BinaryExpr{Op: token.MINUS, X: lhs, Y: &ast.IntLit{LitPos: lhs.Pos(), Value: 1}}}
	}
	return &ast.ExprStmt{X: lhs}
}

func (p *parser) parseIf() ast.Stmt {
	pos := p.expect(token.KwIf).Pos
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseStmt()
	var els ast.Stmt
	if p.accept(token.KwElse) {
		els = p.parseStmt()
	}
	return &ast.IfStmt{IfPos: pos, Cond: cond, Then: then, Else: els}
}

func (p *parser) parseWhile() ast.Stmt {
	pos := p.expect(token.KwWhile).Pos
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	body := p.parseStmt()
	return &ast.WhileStmt{WhilePos: pos, Cond: cond, Body: body}
}

func (p *parser) parseFor() ast.Stmt {
	pos := p.expect(token.KwFor).Pos
	p.expect(token.LPAREN)
	f := &ast.ForStmt{ForPos: pos}
	if p.tok.Kind != token.SEMI {
		if p.isTypeStart() {
			f.Init = p.parseDeclStmt()
		} else {
			f.Init = p.parseSimpleStmt()
		}
	}
	p.expect(token.SEMI)
	if p.tok.Kind != token.SEMI {
		f.Cond = p.parseExpr()
	}
	p.expect(token.SEMI)
	if p.tok.Kind != token.RPAREN {
		f.Post = p.parseSimpleStmt()
	}
	p.expect(token.RPAREN)
	f.Body = p.parseStmt()
	return f
}

// ---------------------------------------------------------------- exprs

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(1) }

// Binary operator precedence levels, lowest first.
func precOf(k token.Kind) int {
	switch k {
	case token.LOR:
		return 1
	case token.LAND:
		return 2
	case token.EQ, token.NE, token.LT, token.LE, token.GT, token.GE:
		return 3
	case token.PLUS, token.MINUS:
		return 4
	case token.STAR, token.SLASH, token.PERCENT:
		return 5
	}
	return 0
}

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		prec := precOf(p.tok.Kind)
		if prec < minPrec || prec == 0 {
			return x
		}
		op := p.tok.Kind
		p.advance()
		y := p.parseBinary(prec + 1)
		x = &ast.BinaryExpr{Op: op, X: x, Y: y}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.tok.Kind {
	case token.MINUS, token.NOT, token.STAR, token.AMP:
		op := p.tok.Kind
		pos := p.tok.Pos
		p.advance()
		x := p.parseUnary()
		return &ast.UnaryExpr{OpPos: pos, Op: op, X: x}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		switch p.tok.Kind {
		case token.LPAREN:
			id, ok := x.(*ast.Ident)
			if !ok {
				p.errorf(p.tok.Pos, "called object is not a function name")
				id = &ast.Ident{NamePos: x.Pos(), Name: "<bad>"}
			}
			p.advance()
			call := &ast.CallExpr{Fun: id}
			for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
				call.Args = append(call.Args, p.parseExpr())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
			x = call
		case token.LBRACK:
			p.advance()
			idx := p.parseExpr()
			p.expect(token.RBRACK)
			x = &ast.IndexExpr{X: x, Index: idx}
		case token.ARROW:
			p.advance()
			name := p.expect(token.IDENT)
			x = &ast.FieldExpr{X: x, Name: name.Lit, NPos: name.Pos}
		default:
			return x
		}
	}
}

func (p *parser) parsePrimary() ast.Expr {
	switch p.tok.Kind {
	case token.INT:
		t := p.tok
		p.advance()
		var v int64
		for i := 0; i < len(t.Lit); i++ {
			v = v*10 + int64(t.Lit[i]-'0')
		}
		return &ast.IntLit{LitPos: t.Pos, Value: v}
	case token.STRING:
		t := p.tok
		p.advance()
		return &ast.StringLit{LitPos: t.Pos, Value: t.Lit}
	case token.KwNull:
		t := p.tok
		p.advance()
		return &ast.NullLit{LitPos: t.Pos}
	case token.IDENT:
		t := p.tok
		p.advance()
		return &ast.Ident{NamePos: t.Pos, Name: t.Lit}
	case token.LPAREN:
		p.advance()
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return x
	}
	p.errorf(p.tok.Pos, "expected expression, found %s", p.tok)
	t := p.tok
	p.advance()
	return &ast.IntLit{LitPos: t.Pos, Value: 0}
}
