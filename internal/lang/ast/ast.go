// Package ast defines the abstract syntax tree for MiniC.
//
// The tree is deliberately small: just enough surface syntax (structs,
// pointers, strings, loops, calls) to express the dependence and
// interleaving structure of the bugs evaluated in the Gist paper. Every
// node carries a source position; positions flow through IR generation so
// failure sketches can be rendered in terms of source lines.
package ast

import "repro/internal/lang/token"

// Node is the interface implemented by all AST nodes.
type Node interface {
	Pos() token.Position
}

// Expr is the interface implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Stmt is the interface implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// TypeExpr is the interface implemented by syntactic type expressions.
type TypeExpr interface {
	Node
	typeNode()
}

// ---------------------------------------------------------------- types

// NamedType is a builtin scalar type: "int", "string", or "void".
type NamedType struct {
	NamePos token.Position
	Name    string
}

// StructRef is a reference to a declared struct type: "struct queue".
type StructRef struct {
	StructPos token.Position
	Name      string
}

// PointerType is a pointer type: "T*".
type PointerType struct {
	Elem TypeExpr
}

func (t *NamedType) Pos() token.Position   { return t.NamePos }
func (t *StructRef) Pos() token.Position   { return t.StructPos }
func (t *PointerType) Pos() token.Position { return t.Elem.Pos() }

func (*NamedType) typeNode()   {}
func (*StructRef) typeNode()   {}
func (*PointerType) typeNode() {}

// ---------------------------------------------------------------- decls

// File is a parsed MiniC source file (a whole program).
type File struct {
	Name    string
	Structs []*StructDecl
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// StructDecl declares a struct type.
type StructDecl struct {
	StructPos token.Position
	Name      string
	Fields    []*Field
}

func (d *StructDecl) Pos() token.Position { return d.StructPos }

// Field is a struct field or a function parameter.
type Field struct {
	Type TypeExpr
	Name string
	NPos token.Position
}

func (f *Field) Pos() token.Position { return f.NPos }

// GlobalDecl declares a global variable, optionally with a constant
// initializer. Globals are the primary shared state between threads and are
// therefore the variables Gist places hardware watchpoints on.
type GlobalDecl struct {
	GlobalPos token.Position
	Type      TypeExpr
	Name      string
	Init      Expr // may be nil
}

func (d *GlobalDecl) Pos() token.Position { return d.GlobalPos }

// FuncDecl declares a function with a body.
type FuncDecl struct {
	RetType TypeExpr
	Name    string
	NamePos token.Position
	Params  []*Field
	Body    *BlockStmt
}

func (d *FuncDecl) Pos() token.Position { return d.NamePos }

// ---------------------------------------------------------------- stmts

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	LbracePos token.Position
	List      []Stmt
}

// DeclStmt declares a local variable, optionally initialized.
type DeclStmt struct {
	Type TypeExpr
	Name string
	NPos token.Position
	Init Expr // may be nil
}

// ExprStmt evaluates an expression for its side effects (typically a call).
type ExprStmt struct {
	X Expr
}

// AssignStmt stores RHS into the location denoted by LHS.
type AssignStmt struct {
	LHS Expr
	RHS Expr
}

// IfStmt is a conditional with an optional else branch.
type IfStmt struct {
	IfPos token.Position
	Cond  Expr
	Then  Stmt
	Else  Stmt // may be nil
}

// WhileStmt is a pre-tested loop.
type WhileStmt struct {
	WhilePos token.Position
	Cond     Expr
	Body     Stmt
}

// ForStmt is a C-style for loop; any of Init, Cond, Post may be nil.
type ForStmt struct {
	ForPos token.Position
	Init   Stmt
	Cond   Expr
	Post   Stmt
	Body   Stmt
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	RetPos token.Position
	X      Expr // may be nil
}

// BreakStmt exits the innermost loop.
type BreakStmt struct {
	KwPos token.Position
}

// ContinueStmt jumps to the post/condition of the innermost loop.
type ContinueStmt struct {
	KwPos token.Position
}

func (s *BlockStmt) Pos() token.Position    { return s.LbracePos }
func (s *DeclStmt) Pos() token.Position     { return s.NPos }
func (s *ExprStmt) Pos() token.Position     { return s.X.Pos() }
func (s *AssignStmt) Pos() token.Position   { return s.LHS.Pos() }
func (s *IfStmt) Pos() token.Position       { return s.IfPos }
func (s *WhileStmt) Pos() token.Position    { return s.WhilePos }
func (s *ForStmt) Pos() token.Position      { return s.ForPos }
func (s *ReturnStmt) Pos() token.Position   { return s.RetPos }
func (s *BreakStmt) Pos() token.Position    { return s.KwPos }
func (s *ContinueStmt) Pos() token.Position { return s.KwPos }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// ---------------------------------------------------------------- exprs

// IntLit is an integer literal.
type IntLit struct {
	LitPos token.Position
	Value  int64
}

// StringLit is a string literal; the VM materializes it as a NUL-terminated
// byte array in the read-only data region.
type StringLit struct {
	LitPos token.Position
	Value  string
}

// NullLit is the null pointer literal.
type NullLit struct {
	LitPos token.Position
}

// Ident names a variable or a function.
type Ident struct {
	NamePos token.Position
	Name    string
}

// UnaryExpr applies a prefix operator: -x, !x, *p (deref), &x (address-of).
type UnaryExpr struct {
	OpPos token.Position
	Op    token.Kind
	X     Expr
}

// BinaryExpr applies an infix operator.
type BinaryExpr struct {
	Op   token.Kind
	X, Y Expr
}

// CallExpr calls a named function or builtin.
type CallExpr struct {
	Fun  *Ident
	Args []Expr
}

// IndexExpr indexes a pointer or string: p[i]. For string operands the
// element is a single byte widened to int.
type IndexExpr struct {
	X     Expr
	Index Expr
}

// FieldExpr selects a struct field through a pointer: p->f.
type FieldExpr struct {
	X    Expr
	Name string
	NPos token.Position
}

func (e *IntLit) Pos() token.Position     { return e.LitPos }
func (e *StringLit) Pos() token.Position  { return e.LitPos }
func (e *NullLit) Pos() token.Position    { return e.LitPos }
func (e *Ident) Pos() token.Position      { return e.NamePos }
func (e *UnaryExpr) Pos() token.Position  { return e.OpPos }
func (e *BinaryExpr) Pos() token.Position { return e.X.Pos() }
func (e *CallExpr) Pos() token.Position   { return e.Fun.NamePos }
func (e *IndexExpr) Pos() token.Position  { return e.X.Pos() }
func (e *FieldExpr) Pos() token.Position  { return e.X.Pos() }

func (*IntLit) exprNode()     {}
func (*StringLit) exprNode()  {}
func (*NullLit) exprNode()    {}
func (*Ident) exprNode()      {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CallExpr) exprNode()   {}
func (*IndexExpr) exprNode()  {}
func (*FieldExpr) exprNode()  {}
