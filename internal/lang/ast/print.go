package ast

import (
	"fmt"
	"strings"

	"repro/internal/lang/token"
)

// PrintType renders a syntactic type expression as MiniC source.
func PrintType(t TypeExpr) string {
	switch t := t.(type) {
	case *NamedType:
		return t.Name
	case *StructRef:
		return "struct " + t.Name
	case *PointerType:
		return PrintType(t.Elem) + "*"
	default:
		return fmt.Sprintf("<?type %T>", t)
	}
}

// PrintExpr renders an expression as MiniC source. The output is fully
// parenthesized for binary/unary operators so it round-trips through the
// parser with identical structure.
func PrintExpr(e Expr) string {
	switch e := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", e.Value)
	case *StringLit:
		return fmt.Sprintf("%q", e.Value)
	case *NullLit:
		return "null"
	case *Ident:
		return e.Name
	case *UnaryExpr:
		return fmt.Sprintf("%s(%s)", unaryOpText(e.Op), PrintExpr(e.X))
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", PrintExpr(e.X), e.Op, PrintExpr(e.Y))
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = PrintExpr(a)
		}
		return fmt.Sprintf("%s(%s)", e.Fun.Name, strings.Join(args, ", "))
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", PrintExpr(e.X), PrintExpr(e.Index))
	case *FieldExpr:
		return fmt.Sprintf("%s->%s", PrintExpr(e.X), e.Name)
	default:
		return fmt.Sprintf("<?expr %T>", e)
	}
}

func unaryOpText(op token.Kind) string {
	switch op {
	case token.MINUS:
		return "-"
	case token.NOT:
		return "!"
	case token.STAR:
		return "*"
	case token.AMP:
		return "&"
	default:
		return op.String()
	}
}

// PrintStmt renders a statement (and its children) as indented MiniC source.
func PrintStmt(s Stmt, indent int) string {
	pad := strings.Repeat("  ", indent)
	switch s := s.(type) {
	case *BlockStmt:
		var b strings.Builder
		b.WriteString(pad + "{\n")
		for _, st := range s.List {
			b.WriteString(PrintStmt(st, indent+1))
		}
		b.WriteString(pad + "}\n")
		return b.String()
	case *DeclStmt:
		if s.Init != nil {
			return fmt.Sprintf("%s%s %s = %s;\n", pad, PrintType(s.Type), s.Name, PrintExpr(s.Init))
		}
		return fmt.Sprintf("%s%s %s;\n", pad, PrintType(s.Type), s.Name)
	case *ExprStmt:
		return fmt.Sprintf("%s%s;\n", pad, PrintExpr(s.X))
	case *AssignStmt:
		return fmt.Sprintf("%s%s = %s;\n", pad, PrintExpr(s.LHS), PrintExpr(s.RHS))
	case *IfStmt:
		out := fmt.Sprintf("%sif (%s)\n%s", pad, PrintExpr(s.Cond), PrintStmt(s.Then, indent+1))
		if s.Else != nil {
			out += fmt.Sprintf("%selse\n%s", pad, PrintStmt(s.Else, indent+1))
		}
		return out
	case *WhileStmt:
		return fmt.Sprintf("%swhile (%s)\n%s", pad, PrintExpr(s.Cond), PrintStmt(s.Body, indent+1))
	case *ForStmt:
		init, cond, post := "", "", ""
		if s.Init != nil {
			init = strings.TrimSuffix(strings.TrimSpace(PrintStmt(s.Init, 0)), ";")
		}
		if s.Cond != nil {
			cond = PrintExpr(s.Cond)
		}
		if s.Post != nil {
			post = strings.TrimSuffix(strings.TrimSpace(PrintStmt(s.Post, 0)), ";")
		}
		return fmt.Sprintf("%sfor (%s; %s; %s)\n%s", pad, init, cond, post, PrintStmt(s.Body, indent+1))
	case *ReturnStmt:
		if s.X != nil {
			return fmt.Sprintf("%sreturn %s;\n", pad, PrintExpr(s.X))
		}
		return pad + "return;\n"
	case *BreakStmt:
		return pad + "break;\n"
	case *ContinueStmt:
		return pad + "continue;\n"
	default:
		return fmt.Sprintf("%s<?stmt %T>\n", pad, s)
	}
}

// PrintFile renders a whole file as MiniC source.
func PrintFile(f *File) string {
	var b strings.Builder
	for _, sd := range f.Structs {
		fmt.Fprintf(&b, "struct %s {\n", sd.Name)
		for _, fld := range sd.Fields {
			fmt.Fprintf(&b, "  %s %s;\n", PrintType(fld.Type), fld.Name)
		}
		b.WriteString("};\n")
	}
	for _, g := range f.Globals {
		if g.Init != nil {
			fmt.Fprintf(&b, "global %s %s = %s;\n", PrintType(g.Type), g.Name, PrintExpr(g.Init))
		} else {
			fmt.Fprintf(&b, "global %s %s;\n", PrintType(g.Type), g.Name)
		}
	}
	for _, fn := range f.Funcs {
		params := make([]string, len(fn.Params))
		for i, p := range fn.Params {
			params[i] = fmt.Sprintf("%s %s", PrintType(p.Type), p.Name)
		}
		fmt.Fprintf(&b, "%s %s(%s)\n", PrintType(fn.RetType), fn.Name, strings.Join(params, ", "))
		b.WriteString(PrintStmt(fn.Body, 0))
	}
	return b.String()
}
