package ast

import (
	"strings"
	"testing"

	"repro/internal/lang/token"
)

func pos() token.Position { return token.Position{Line: 1, Col: 1} }

func TestPrintType(t *testing.T) {
	cases := []struct {
		t    TypeExpr
		want string
	}{
		{&NamedType{Name: "int"}, "int"},
		{&NamedType{Name: "string"}, "string"},
		{&StructRef{Name: "queue"}, "struct queue"},
		{&PointerType{Elem: &NamedType{Name: "int"}}, "int*"},
		{&PointerType{Elem: &PointerType{Elem: &StructRef{Name: "s"}}}, "struct s**"},
	}
	for _, c := range cases {
		if got := PrintType(c.t); got != c.want {
			t.Errorf("PrintType: got %q, want %q", got, c.want)
		}
	}
}

func TestPrintExpr(t *testing.T) {
	x := &Ident{NamePos: pos(), Name: "x"}
	y := &Ident{NamePos: pos(), Name: "y"}
	cases := []struct {
		e    Expr
		want string
	}{
		{&IntLit{LitPos: pos(), Value: 42}, "42"},
		{&StringLit{LitPos: pos(), Value: "a\nb"}, `"a\nb"`},
		{&NullLit{LitPos: pos()}, "null"},
		{&UnaryExpr{OpPos: pos(), Op: token.MINUS, X: x}, "-(x)"},
		{&UnaryExpr{OpPos: pos(), Op: token.NOT, X: x}, "!(x)"},
		{&UnaryExpr{OpPos: pos(), Op: token.STAR, X: x}, "*(x)"},
		{&UnaryExpr{OpPos: pos(), Op: token.AMP, X: x}, "&(x)"},
		{&BinaryExpr{Op: token.PLUS, X: x, Y: y}, "(x + y)"},
		{&CallExpr{Fun: &Ident{NamePos: pos(), Name: "f"}, Args: []Expr{x, y}}, "f(x, y)"},
		{&IndexExpr{X: x, Index: y}, "x[y]"},
		{&FieldExpr{X: x, Name: "mut", NPos: pos()}, "x->mut"},
	}
	for _, c := range cases {
		if got := PrintExpr(c.e); got != c.want {
			t.Errorf("PrintExpr: got %q, want %q", got, c.want)
		}
	}
}

func TestPrintStmtShapes(t *testing.T) {
	x := &Ident{NamePos: pos(), Name: "x"}
	one := &IntLit{LitPos: pos(), Value: 1}
	cases := []struct {
		s    Stmt
		frag string
	}{
		{&DeclStmt{Type: &NamedType{Name: "int"}, Name: "x", NPos: pos(), Init: one}, "int x = 1;"},
		{&DeclStmt{Type: &NamedType{Name: "int"}, Name: "x", NPos: pos()}, "int x;"},
		{&AssignStmt{LHS: x, RHS: one}, "x = 1;"},
		{&ExprStmt{X: x}, "x;"},
		{&ReturnStmt{RetPos: pos(), X: one}, "return 1;"},
		{&ReturnStmt{RetPos: pos()}, "return;"},
		{&BreakStmt{KwPos: pos()}, "break;"},
		{&ContinueStmt{KwPos: pos()}, "continue;"},
		{&IfStmt{IfPos: pos(), Cond: x, Then: &ExprStmt{X: one}}, "if (x)"},
		{&WhileStmt{WhilePos: pos(), Cond: x, Body: &ExprStmt{X: one}}, "while (x)"},
	}
	for _, c := range cases {
		if got := PrintStmt(c.s, 0); !strings.Contains(got, c.frag) {
			t.Errorf("PrintStmt: got %q, want fragment %q", got, c.frag)
		}
	}
}

func TestPositionsPropagate(t *testing.T) {
	p := token.Position{File: "f.mc", Line: 3, Col: 7}
	nodes := []Node{
		&IntLit{LitPos: p},
		&Ident{NamePos: p},
		&BreakStmt{KwPos: p},
		&IfStmt{IfPos: p},
		&StructDecl{StructPos: p},
		&GlobalDecl{GlobalPos: p},
	}
	for _, n := range nodes {
		if n.Pos() != p {
			t.Errorf("%T.Pos() = %v", n, n.Pos())
		}
	}
}
