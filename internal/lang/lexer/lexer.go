// Package lexer implements the hand-written scanner for MiniC source code.
//
// The scanner is line/column aware so that every IR instruction — and hence
// every statement appearing in a failure sketch — can be attributed to a
// precise source location, which is what developers read in the sketch.
package lexer

import (
	"fmt"
	"strings"

	"repro/internal/lang/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Position
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans MiniC source text into tokens.
type Lexer struct {
	file string
	src  string
	off  int // byte offset of the next unread character
	line int
	col  int
	errs []*Error
}

// New returns a lexer for src. file is used in positions and diagnostics.
func New(file, src string) *Lexer {
	return &Lexer{file: file, src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Position, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) pos() token.Position {
	return token.Position{File: l.file, Line: l.line, Col: l.col}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	if l.off >= len(l.src) {
		return 0
	}
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for {
		switch c := l.peek(); {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.peek() != '\n' && l.peek() != 0 {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.peek() != 0 {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next scans and returns the next token. At end of input it returns an EOF
// token; calling Next after EOF keeps returning EOF.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	c := l.peek()
	switch {
	case c == 0:
		return token.Token{Kind: token.EOF, Pos: pos}
	case isLetter(c):
		return l.scanIdent(pos)
	case isDigit(c):
		return l.scanNumber(pos)
	case c == '"':
		return l.scanString(pos)
	}
	l.advance()
	two := func(next byte, with, without token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: with, Pos: pos}
		}
		return token.Token{Kind: without, Pos: pos}
	}
	switch c {
	case '+':
		return two('+', token.PLUSPLUS, token.PLUS)
	case '-':
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.ARROW, Pos: pos}
		}
		return two('-', token.MINUSMIN, token.MINUS)
	case '*':
		return token.Token{Kind: token.STAR, Pos: pos}
	case '/':
		return token.Token{Kind: token.SLASH, Pos: pos}
	case '%':
		return token.Token{Kind: token.PERCENT, Pos: pos}
	case '&':
		return two('&', token.LAND, token.AMP)
	case '|':
		if l.peek() == '|' {
			l.advance()
			return token.Token{Kind: token.LOR, Pos: pos}
		}
		l.errorf(pos, "unexpected character %q (did you mean ||?)", '|')
		return token.Token{Kind: token.ILLEGAL, Lit: "|", Pos: pos}
	case '!':
		return two('=', token.NE, token.NOT)
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '<':
		return two('=', token.LE, token.LT)
	case '>':
		return two('=', token.GE, token.GT)
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACK, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACK, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMI, Pos: pos}
	case '.':
		return token.Token{Kind: token.DOT, Pos: pos}
	}
	l.errorf(pos, "unexpected character %q", c)
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

func (l *Lexer) scanIdent(pos token.Position) token.Token {
	start := l.off
	for isLetter(l.peek()) || isDigit(l.peek()) {
		l.advance()
	}
	lit := l.src[start:l.off]
	return token.Token{Kind: token.LookupIdent(lit), Lit: lit, Pos: pos}
}

func (l *Lexer) scanNumber(pos token.Position) token.Token {
	start := l.off
	for isDigit(l.peek()) {
		l.advance()
	}
	if isLetter(l.peek()) {
		bad := l.pos()
		for isLetter(l.peek()) || isDigit(l.peek()) {
			l.advance()
		}
		l.errorf(bad, "identifier immediately after number literal")
	}
	return token.Token{Kind: token.INT, Lit: l.src[start:l.off], Pos: pos}
}

func (l *Lexer) scanString(pos token.Position) token.Token {
	l.advance() // opening quote
	var b strings.Builder
	for {
		c := l.peek()
		switch c {
		case 0, '\n':
			l.errorf(pos, "unterminated string literal")
			return token.Token{Kind: token.STRING, Lit: b.String(), Pos: pos}
		case '"':
			l.advance()
			return token.Token{Kind: token.STRING, Lit: b.String(), Pos: pos}
		case '\\':
			l.advance()
			esc := l.advance()
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case '0':
				b.WriteByte(0)
			default:
				l.errorf(pos, "unknown escape \\%c", esc)
				b.WriteByte(esc)
			}
		default:
			l.advance()
			b.WriteByte(c)
		}
	}
}

// ScanAll scans the whole input and returns all tokens up to and including
// the EOF token.
func ScanAll(file, src string) ([]token.Token, []*Error) {
	l := New(file, src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, l.Errors()
		}
	}
}
