package lexer

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lang/token"
)

func kindsOf(src string) []token.Kind {
	toks, _ := ScanAll("test.mc", src)
	kinds := make([]token.Kind, len(toks))
	for i, t := range toks {
		kinds[i] = t.Kind
	}
	return kinds
}

func TestScanOperators(t *testing.T) {
	src := "+ - * / % & ! && || == != < <= > >= = -> ( ) { } [ ] , ; . ++ --"
	want := []token.Kind{
		token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
		token.AMP, token.NOT, token.LAND, token.LOR,
		token.EQ, token.NE, token.LT, token.LE, token.GT, token.GE,
		token.ASSIGN, token.ARROW,
		token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE,
		token.LBRACK, token.RBRACK, token.COMMA, token.SEMI, token.DOT,
		token.PLUSPLUS, token.MINUSMIN,
		token.EOF,
	}
	got := kindsOf(src)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestScanKeywordsAndIdents(t *testing.T) {
	toks, errs := ScanAll("t.mc", "int x while whilex _foo f00 struct null global")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []struct {
		kind token.Kind
		lit  string
	}{
		{token.KwInt, "int"}, {token.IDENT, "x"}, {token.KwWhile, "while"},
		{token.IDENT, "whilex"}, {token.IDENT, "_foo"}, {token.IDENT, "f00"},
		{token.KwStruct, "struct"}, {token.KwNull, "null"}, {token.KwGlobal, "global"},
		{token.EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Lit != w.lit {
			t.Errorf("token %d: got (%s,%q), want (%s,%q)", i, toks[i].Kind, toks[i].Lit, w.kind, w.lit)
		}
	}
}

func TestScanNumbersAndStrings(t *testing.T) {
	toks, errs := ScanAll("t.mc", `42 0 "hello" "a\nb" "{}{"`)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if toks[0].Kind != token.INT || toks[0].Lit != "42" {
		t.Errorf("got %v", toks[0])
	}
	if toks[2].Kind != token.STRING || toks[2].Lit != "hello" {
		t.Errorf("got %v", toks[2])
	}
	if toks[3].Lit != "a\nb" {
		t.Errorf("escape: got %q", toks[3].Lit)
	}
	if toks[4].Lit != "{}{" {
		t.Errorf("braces: got %q", toks[4].Lit)
	}
}

func TestScanComments(t *testing.T) {
	src := "a // line comment\n b /* block\ncomment */ c"
	toks, errs := ScanAll("t.mc", src)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	var lits []string
	for _, tk := range toks {
		if tk.Kind == token.IDENT {
			lits = append(lits, tk.Lit)
		}
	}
	if strings.Join(lits, " ") != "a b c" {
		t.Errorf("got idents %v", lits)
	}
}

func TestScanPositions(t *testing.T) {
	toks, _ := ScanAll("t.mc", "a\n  b\nc")
	type pos struct{ line, col int }
	want := []pos{{1, 1}, {2, 3}, {3, 1}}
	for i, w := range want {
		if toks[i].Pos.Line != w.line || toks[i].Pos.Col != w.col {
			t.Errorf("token %d: got %d:%d, want %d:%d", i, toks[i].Pos.Line, toks[i].Pos.Col, w.line, w.col)
		}
	}
}

func TestScanErrors(t *testing.T) {
	cases := []string{"\"unterminated", "/* unterminated", "@", "|", "123abc"}
	for _, src := range cases {
		_, errs := ScanAll("t.mc", src)
		if len(errs) == 0 {
			t.Errorf("source %q: expected a lexical error", src)
		}
	}
}

func TestEOFIsSticky(t *testing.T) {
	l := New("t.mc", "x")
	l.Next()
	for i := 0; i < 3; i++ {
		if tk := l.Next(); tk.Kind != token.EOF {
			t.Fatalf("call %d after end: got %s, want EOF", i, tk.Kind)
		}
	}
}

// Property: scanning never panics and always terminates with EOF, for
// arbitrary byte strings.
func TestScanArbitraryInputTerminates(t *testing.T) {
	f := func(src string) bool {
		toks, _ := ScanAll("t.mc", src)
		return len(toks) > 0 && toks[len(toks)-1].Kind == token.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: integer literals round-trip: scanning the decimal rendering of
// a non-negative number yields a single INT token with identical text.
func TestIntLiteralRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		src := strings.TrimLeft(string([]byte(fmtUint(uint64(n)))), " ")
		toks, errs := ScanAll("t.mc", src)
		return len(errs) == 0 && len(toks) == 2 && toks[0].Kind == token.INT && toks[0].Lit == src
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func fmtUint(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
