// Package sema implements semantic analysis for MiniC: symbol resolution,
// a small nominal type system, struct layout, and the builtin function
// catalogue shared with the VM.
//
// All MiniC values are 64-bit machine words: ints, pointers, and strings
// (a string value is a pointer to NUL-terminated bytes). Struct fields
// occupy one word each, so field offsets are 8*index. This mirrors the
// "everything is a word" flavor of the LLVM-level analyses in the paper
// while keeping the VM memory model trivial to reason about.
package sema

import (
	"fmt"
	"strings"
)

// WordSize is the size in bytes of every MiniC scalar (int, pointer, string).
const WordSize = 8

// TypeKind discriminates the Type variants.
type TypeKind int

// Type kinds.
const (
	KindInt TypeKind = iota
	KindString
	KindVoid
	KindPointer
	KindStruct
)

// Type is a resolved MiniC type.
type Type struct {
	Kind   TypeKind
	Elem   *Type       // for KindPointer
	Struct *StructInfo // for KindStruct
}

// Predefined scalar types. Types are compared with Equal, not pointer
// identity, so sharing these is a convenience, not a requirement.
var (
	TypeInt    = &Type{Kind: KindInt}
	TypeString = &Type{Kind: KindString}
	TypeVoid   = &Type{Kind: KindVoid}
)

// PointerTo returns the type *elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: KindPointer, Elem: elem} }

// Equal reports structural type equality (nominal for structs).
func (t *Type) Equal(u *Type) bool {
	if t == nil || u == nil {
		return t == u
	}
	if t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case KindPointer:
		return t.Elem.Equal(u.Elem)
	case KindStruct:
		return t.Struct.Name == u.Struct.Name
	default:
		return true
	}
}

// IsPointer reports whether t is a pointer type.
func (t *Type) IsPointer() bool { return t != nil && t.Kind == KindPointer }

// IsPointerLike reports whether values of t are addresses (pointers and
// strings).
func (t *Type) IsPointerLike() bool {
	return t != nil && (t.Kind == KindPointer || t.Kind == KindString)
}

// IsScalar reports whether values of t fit into a single machine word
// (everything except bare struct types, which only exist behind pointers).
func (t *Type) IsScalar() bool { return t != nil && t.Kind != KindStruct && t.Kind != KindVoid }

// Size returns the size of a value of t in bytes.
func (t *Type) Size() int64 {
	if t.Kind == KindStruct {
		return int64(len(t.Struct.Fields)) * WordSize
	}
	return WordSize
}

// String renders the type in MiniC syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil type>"
	}
	switch t.Kind {
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindVoid:
		return "void"
	case KindPointer:
		return t.Elem.String() + "*"
	case KindStruct:
		return "struct " + t.Struct.Name
	default:
		return fmt.Sprintf("<type kind %d>", t.Kind)
	}
}

// StructInfo is a resolved struct declaration with field layout.
type StructInfo struct {
	Name   string
	Fields []FieldInfo
	byName map[string]int
}

// FieldInfo is a single resolved struct field.
type FieldInfo struct {
	Name   string
	Type   *Type
	Offset int64 // byte offset within the struct
}

// Field returns the field with the given name, or nil.
func (s *StructInfo) Field(name string) *FieldInfo {
	if i, ok := s.byName[name]; ok {
		return &s.Fields[i]
	}
	return nil
}

// Size returns the struct's size in bytes.
func (s *StructInfo) Size() int64 { return int64(len(s.Fields)) * WordSize }

// FuncSig is a function signature (user function or builtin).
type FuncSig struct {
	Name    string
	Params  []*Type
	Ret     *Type
	Builtin Builtin // BuiltinNone for user functions
	// Variadic builtins (print) accept extra int args.
	Variadic bool
}

// String renders the signature for diagnostics.
func (s *FuncSig) String() string {
	parts := make([]string, len(s.Params))
	for i, p := range s.Params {
		parts[i] = p.String()
	}
	return fmt.Sprintf("%s %s(%s)", s.Ret, s.Name, strings.Join(parts, ", "))
}

// Builtin identifies a builtin function implemented by the VM.
type Builtin int

// The builtin catalogue. These are the MiniC spellings of the runtime
// facilities the paper's target programs use: heap allocation, threads,
// mutexes, assertions, string helpers, and workload input.
const (
	BuiltinNone Builtin = iota
	BuiltinMalloc
	BuiltinFree
	BuiltinSpawn  // spawn(fn, arg) -> tid; creates a thread (TICFG edge)
	BuiltinJoin   // join(tid); joins a thread (TICFG edge)
	BuiltinLock   // lock(&m) on a mutex word
	BuiltinUnlock // unlock(&m)
	BuiltinAssert // assert(cond); failure point when cond == 0
	BuiltinPrint  // print(int...)
	BuiltinPrints // prints(string)
	BuiltinStrlen // strlen(s); segfaults on null, like C strlen
	BuiltinInput  // input(i) -> i-th int of the workload
	BuiltinInputStr
	BuiltinYield // yield(); scheduler hint, also a preemption point
	BuiltinSizeof
)

// Builtins maps MiniC names to signatures. sizeof is special-cased by the
// checker (its argument is a type name) and never reaches the VM.
var Builtins = map[string]*FuncSig{
	"malloc":    {Name: "malloc", Params: []*Type{TypeInt}, Ret: PointerTo(TypeVoid), Builtin: BuiltinMalloc},
	"free":      {Name: "free", Params: []*Type{nil}, Ret: TypeVoid, Builtin: BuiltinFree},
	"spawn":     {Name: "spawn", Params: []*Type{nil, TypeInt}, Ret: TypeInt, Builtin: BuiltinSpawn},
	"join":      {Name: "join", Params: []*Type{TypeInt}, Ret: TypeVoid, Builtin: BuiltinJoin},
	"lock":      {Name: "lock", Params: []*Type{nil}, Ret: TypeVoid, Builtin: BuiltinLock},
	"unlock":    {Name: "unlock", Params: []*Type{nil}, Ret: TypeVoid, Builtin: BuiltinUnlock},
	"assert":    {Name: "assert", Params: []*Type{TypeInt}, Ret: TypeVoid, Builtin: BuiltinAssert},
	"print":     {Name: "print", Params: []*Type{TypeInt}, Ret: TypeVoid, Builtin: BuiltinPrint, Variadic: true},
	"prints":    {Name: "prints", Params: []*Type{TypeString}, Ret: TypeVoid, Builtin: BuiltinPrints},
	"strlen":    {Name: "strlen", Params: []*Type{TypeString}, Ret: TypeInt, Builtin: BuiltinStrlen},
	"input":     {Name: "input", Params: []*Type{TypeInt}, Ret: TypeInt, Builtin: BuiltinInput},
	"input_str": {Name: "input_str", Params: []*Type{TypeInt}, Ret: TypeString, Builtin: BuiltinInputStr},
	"yield":     {Name: "yield", Params: nil, Ret: TypeVoid, Builtin: BuiltinYield},
	"sizeof":    {Name: "sizeof", Params: []*Type{nil}, Ret: TypeInt, Builtin: BuiltinSizeof},
}
