package sema

import (
	"strings"
	"testing"

	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	f, err := parser.ParseFile("t.mc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(f)
}

func mustCheckOK(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return info
}

func wantErr(t *testing.T, src, frag string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected error containing %q, got none\nsource: %s", frag, src)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("expected error containing %q, got %v", frag, err)
	}
}

func TestCheckPbzip2LikeProgram(t *testing.T) {
	info := mustCheckOK(t, `
struct queue {
	int* mut;
	int size;
};
global struct queue* fifo;
void cons(int arg) {
	struct queue* f = fifo;
	unlock(f->mut);
}
int main() {
	fifo = malloc(sizeof(queue));
	fifo->mut = malloc(8);
	int t = spawn(cons, 0);
	free(fifo->mut);
	fifo->mut = null;
	join(t);
	return 0;
}`)
	if len(info.Globals) != 1 || info.Globals[0].Name != "fifo" {
		t.Errorf("globals: %+v", info.Globals)
	}
	if got := len(info.SpawnTargets); got != 1 {
		t.Fatalf("spawn targets: got %d, want 1", got)
	}
	for _, target := range info.SpawnTargets {
		if target != "cons" {
			t.Errorf("spawn target: got %s, want cons", target)
		}
	}
}

func TestStructLayout(t *testing.T) {
	info := mustCheckOK(t, `
struct item {
	int refcnt;
	int* data;
	struct item* next;
};
int main() { return sizeof(item); }`)
	si := info.Structs["item"]
	if si == nil {
		t.Fatal("struct item not found")
	}
	if si.Size() != 24 {
		t.Errorf("size: got %d, want 24", si.Size())
	}
	if f := si.Field("next"); f == nil || f.Offset != 16 {
		t.Errorf("field next: %+v", f)
	}
	if f := si.Field("refcnt"); f == nil || f.Offset != 0 || f.Type.Kind != KindInt {
		t.Errorf("field refcnt: %+v", f)
	}
	if si.Field("nope") != nil {
		t.Error("unexpected field nope")
	}
}

func TestSizeofFolding(t *testing.T) {
	info := mustCheckOK(t, `
struct pair { int a; int b; };
int main() { return sizeof(pair); }`)
	found := false
	for _, v := range info.ConstValues {
		if v == 16 {
			found = true
		}
	}
	if !found {
		t.Errorf("sizeof(pair) not folded to 16: %v", info.ConstValues)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"int main() { return y; }", "undefined variable y"},
		{"int main() { foo(); return 0; }", "undefined function foo"},
		{"int main() { int x = 0; int x = 1; return x; }", "redeclared"},
		{"struct s { int a; }; struct s { int b; }; int main() { return 0; }", "duplicate struct"},
		{"global int g; global int g; int main() { return 0; }", "duplicate global"},
		{"int f() { return 0; } int f() { return 1; } int main() { return 0; }", "duplicate function"},
		{"int main() { break; }", "break outside loop"},
		{"int main() { continue; }", "continue outside loop"},
		{"void main() { return 1; }", "unexpected return value"},
		{"int main() { return; }", "missing return value"},
		{"int main() { int* p = null; int x = p + p; return x; }", "invalid operands"},
		{"int main() { string s = \"x\"; int n = s * 2; return n; }", "requires ints"},
		{"int main() { 5 = 3; return 0; }", "cannot assign to"},
		{"int main() { int x = sizeof(nope); return x; }", "unknown struct"},
		{"int main() { int t = spawn(missing, 0); return t; }", "undefined function missing"},
		{"int f(int a, int b) { return a; } int main() { int t = spawn(f, 0); return t; }", "exactly one scalar"},
		{"int main() { int x = 1; int y = x->f; return y; }", "requires a struct pointer"},
		{"struct s { int a; }; int main() { struct s* p = malloc(sizeof(s)); return p->b; }", "no field b"},
		{"int main() { free(3); return 0; }", "requires a pointer"},
		{"int main() { int x = *5; return x; }", "cannot dereference"},
		{"int malloc(int n) { return n; } int main() { return 0; }", "shadows a builtin"},
		{"global struct s x; struct s { int a; }; int main() { return 0; }", "must be scalar or pointer"},
		{"int main(struct q v) { return 0; } struct q { int a; };", "must be scalar or pointer"},
	}
	for _, c := range cases {
		wantErr(t, c.src, c.frag)
	}
}

func TestPointerRules(t *testing.T) {
	mustCheckOK(t, `
int main() {
	int* p = malloc(16);
	p[0] = 5;
	p[1] = p[0] + 1;
	int* q = p + 1;
	int diff = q - p;
	int v = *p;
	*q = v;
	int* r = &v;
	if (p == null) { return 1; }
	if (p != q) { return 2; }
	return diff;
}`)
}

func TestStringRules(t *testing.T) {
	mustCheckOK(t, `
global string current;
int main() {
	string s = input_str(0);
	current = s;
	int n = strlen(current);
	int c = s[0];
	if (c == 123) { prints("left brace"); }
	return n;
}`)
}

func TestShadowingInNestedScopes(t *testing.T) {
	mustCheckOK(t, `
global int x = 1;
int main() {
	int x = 2;
	{
		int x = 3;
		print(x);
	}
	for (int x = 0; x < 2; x++) { print(x); }
	return x;
}`)
}

func TestExprTypesRecorded(t *testing.T) {
	info := mustCheckOK(t, `
struct q { int* mut; };
global struct q* g;
int main() {
	g = malloc(sizeof(q));
	int* m = g->mut;
	return 0;
}`)
	var sawFieldPtr bool
	for e, ty := range info.ExprTypes {
		if fe, ok := e.(*ast.FieldExpr); ok && fe.Name == "mut" {
			if ty.String() != "int*" {
				t.Errorf("g->mut type: got %s", ty)
			}
			sawFieldPtr = true
		}
	}
	if !sawFieldPtr {
		t.Error("no FieldExpr type recorded")
	}
}

func TestVariadicPrint(t *testing.T) {
	mustCheckOK(t, `int main() { print(1); print(1, 2, 3); return 0; }`)
	wantErr(t, `int main() { print(); return 0; }`, "at least 1")
}

func TestAssignabilityMatrix(t *testing.T) {
	intT := TypeInt
	strT := TypeString
	pInt := PointerTo(TypeInt)
	pp := PointerTo(pInt)
	cases := []struct {
		dst, src *Type
		want     bool
	}{
		{intT, intT, true},
		{intT, strT, false},
		{pInt, pInt, true},
		{pInt, anyPtr, true},
		{anyPtr, pInt, true},
		{anyPtr, strT, true},
		{pInt, pp, false},
		{strT, anyPtr, true},
		{strT, intT, false},
		{pp, PointerTo(PointerTo(TypeInt)), true},
	}
	for _, c := range cases {
		if got := assignable(c.dst, c.src); got != c.want {
			t.Errorf("assignable(%s, %s) = %v, want %v", c.dst, c.src, got, c.want)
		}
	}
}
