package sema

import (
	"fmt"

	"repro/internal/lang/ast"
	"repro/internal/lang/token"
)

// Error is a semantic error with a source position.
type Error struct {
	Pos token.Position
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a list of semantic errors; it implements error.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	default:
		return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
	}
}

// VarInfo describes a resolved variable (global, parameter, or local).
type VarInfo struct {
	Name   string
	Type   *Type
	Global bool
}

// FuncInfo is a resolved function: its declaration and signature.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Sig  *FuncSig
}

// Info is the result of type-checking a file. It is a side table keyed by
// AST nodes, in the style of go/types.
type Info struct {
	File    *ast.File
	Structs map[string]*StructInfo
	Globals []*VarInfo
	Funcs   map[string]*FuncInfo

	// ExprTypes records the type of every checked expression.
	ExprTypes map[ast.Expr]*Type
	// Uses resolves identifier expressions to variables.
	Uses map[*ast.Ident]*VarInfo
	// SpawnTargets records, for each spawn(...) call, the statically known
	// thread start routine. This is the information the paper recovers with
	// data structure analysis to build the TICFG.
	SpawnTargets map[*ast.CallExpr]string
	// CallSigs records the resolved callee signature of every call.
	CallSigs map[*ast.CallExpr]*FuncSig
	// ConstValues records expressions folded to constants (sizeof).
	ConstValues map[ast.Expr]int64
}

// anyPtr is the wildcard pointer type (malloc's return type): assignable to
// and from every pointer-like type, like void* in C.
var anyPtr = PointerTo(TypeVoid)

func isAnyPtr(t *Type) bool { return t.Kind == KindPointer && t.Elem.Kind == KindVoid }

// assignable reports whether a value of type src can be stored into a
// location of type dst.
func assignable(dst, src *Type) bool {
	if dst == nil || src == nil {
		return false
	}
	if dst.Equal(src) {
		return true
	}
	if dst.IsPointerLike() && isAnyPtr(src) {
		return true
	}
	if isAnyPtr(dst) && src.IsPointerLike() {
		return true
	}
	return false
}

type checker struct {
	info   *Info
	errs   ErrorList
	scopes []map[string]*VarInfo
	cur    *FuncInfo
	loops  int
}

// Check resolves and type-checks a parsed file.
func Check(f *ast.File) (*Info, error) {
	c := &checker{info: &Info{
		File:         f,
		Structs:      make(map[string]*StructInfo),
		Funcs:        make(map[string]*FuncInfo),
		ExprTypes:    make(map[ast.Expr]*Type),
		Uses:         make(map[*ast.Ident]*VarInfo),
		SpawnTargets: make(map[*ast.CallExpr]string),
		CallSigs:     make(map[*ast.CallExpr]*FuncSig),
		ConstValues:  make(map[ast.Expr]int64),
	}}
	c.collectStructs(f)
	c.collectGlobals(f)
	c.collectFuncs(f)
	for _, fn := range f.Funcs {
		c.checkFunc(fn)
	}
	if len(c.errs) > 0 {
		return c.info, c.errs
	}
	return c.info, nil
}

// MustCheck type-checks f and panics on error; for embedded programs/tests.
func MustCheck(f *ast.File) *Info {
	info, err := Check(f)
	if err != nil {
		panic(fmt.Sprintf("typecheck %s: %v", f.Name, err))
	}
	return info
}

func (c *checker) errorf(pos token.Position, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) collectStructs(f *ast.File) {
	// Two passes so structs may contain pointers to later-declared structs.
	for _, sd := range f.Structs {
		if _, dup := c.info.Structs[sd.Name]; dup {
			c.errorf(sd.Pos(), "duplicate struct %s", sd.Name)
			continue
		}
		c.info.Structs[sd.Name] = &StructInfo{Name: sd.Name, byName: make(map[string]int)}
	}
	for _, sd := range f.Structs {
		si := c.info.Structs[sd.Name]
		for i, fld := range sd.Fields {
			ft := c.resolveType(fld.Type)
			if ft.Kind == KindStruct {
				c.errorf(fld.Pos(), "struct field %s.%s must be scalar or pointer (use struct %s*)",
					sd.Name, fld.Name, ft.Struct.Name)
				ft = TypeInt
			}
			if _, dup := si.byName[fld.Name]; dup {
				c.errorf(fld.Pos(), "duplicate field %s in struct %s", fld.Name, sd.Name)
				continue
			}
			si.byName[fld.Name] = len(si.Fields)
			si.Fields = append(si.Fields, FieldInfo{Name: fld.Name, Type: ft, Offset: int64(i) * WordSize})
		}
		// Recompute offsets in case duplicates were skipped.
		for i := range si.Fields {
			si.Fields[i].Offset = int64(i) * WordSize
		}
	}
}

func (c *checker) collectGlobals(f *ast.File) {
	seen := make(map[string]bool)
	for _, g := range f.Globals {
		t := c.resolveType(g.Type)
		if t.Kind == KindStruct || t.Kind == KindVoid {
			c.errorf(g.Pos(), "global %s must be scalar or pointer", g.Name)
			t = TypeInt
		}
		if seen[g.Name] {
			c.errorf(g.Pos(), "duplicate global %s", g.Name)
			continue
		}
		seen[g.Name] = true
		c.info.Globals = append(c.info.Globals, &VarInfo{Name: g.Name, Type: t, Global: true})
		if g.Init != nil {
			it := c.checkExpr(g.Init)
			if it != nil && !assignable(t, it) && !(t.IsPointerLike() && isNull(g.Init)) {
				c.errorf(g.Init.Pos(), "cannot initialize global %s (%s) with %s", g.Name, t, it)
			}
		}
	}
}

func isNull(e ast.Expr) bool {
	_, ok := e.(*ast.NullLit)
	return ok
}

func (c *checker) collectFuncs(f *ast.File) {
	for _, fn := range f.Funcs {
		if _, isBuiltin := Builtins[fn.Name]; isBuiltin {
			c.errorf(fn.Pos(), "function %s shadows a builtin", fn.Name)
			continue
		}
		if _, dup := c.info.Funcs[fn.Name]; dup {
			c.errorf(fn.Pos(), "duplicate function %s", fn.Name)
			continue
		}
		sig := &FuncSig{Name: fn.Name, Ret: c.resolveType(fn.RetType)}
		for _, p := range fn.Params {
			pt := c.resolveType(p.Type)
			if !pt.IsScalar() {
				c.errorf(p.Pos(), "parameter %s of %s must be scalar or pointer", p.Name, fn.Name)
				pt = TypeInt
			}
			sig.Params = append(sig.Params, pt)
		}
		if sig.Ret.Kind == KindStruct {
			c.errorf(fn.Pos(), "function %s cannot return a struct by value", fn.Name)
			sig.Ret = TypeInt
		}
		c.info.Funcs[fn.Name] = &FuncInfo{Decl: fn, Sig: sig}
	}
}

func (c *checker) resolveType(t ast.TypeExpr) *Type {
	switch t := t.(type) {
	case *ast.NamedType:
		switch t.Name {
		case "int":
			return TypeInt
		case "string":
			return TypeString
		case "void":
			return TypeVoid
		}
		c.errorf(t.Pos(), "unknown type %s", t.Name)
		return TypeInt
	case *ast.StructRef:
		si, ok := c.info.Structs[t.Name]
		if !ok {
			c.errorf(t.Pos(), "unknown struct %s", t.Name)
			return TypeInt
		}
		return &Type{Kind: KindStruct, Struct: si}
	case *ast.PointerType:
		return PointerTo(c.resolveType(t.Elem))
	default:
		return TypeInt
	}
}

// ---------------------------------------------------------------- scopes

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]*VarInfo)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(pos token.Position, v *VarInfo) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[v.Name]; dup {
		c.errorf(pos, "redeclared variable %s", v.Name)
		return
	}
	top[v.Name] = v
}

func (c *checker) lookup(name string) *VarInfo {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v
		}
	}
	for _, g := range c.info.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// ---------------------------------------------------------------- stmts

func (c *checker) checkFunc(fn *ast.FuncDecl) {
	fi, ok := c.info.Funcs[fn.Name]
	if !ok {
		return // duplicate, already reported
	}
	c.cur = fi
	c.pushScope()
	for i, p := range fn.Params {
		c.declare(p.Pos(), &VarInfo{Name: p.Name, Type: fi.Sig.Params[i]})
	}
	c.checkStmt(fn.Body)
	c.popScope()
	c.cur = nil
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.pushScope()
		for _, st := range s.List {
			c.checkStmt(st)
		}
		c.popScope()
	case *ast.DeclStmt:
		t := c.resolveType(s.Type)
		if !t.IsScalar() {
			c.errorf(s.Pos(), "local %s must be scalar or pointer", s.Name)
			t = TypeInt
		}
		if s.Init != nil {
			it := c.checkExpr(s.Init)
			if it != nil && !assignable(t, it) && !(t.IsPointerLike() && isNull(s.Init)) && !(t.Kind == KindInt && it.IsPointerLike()) {
				c.errorf(s.Init.Pos(), "cannot initialize %s (%s) with %s", s.Name, t, it)
			}
		}
		c.declare(s.Pos(), &VarInfo{Name: s.Name, Type: t})
	case *ast.ExprStmt:
		c.checkExpr(s.X)
	case *ast.AssignStmt:
		lt := c.checkLValue(s.LHS)
		rt := c.checkExpr(s.RHS)
		if lt != nil && rt != nil && !assignable(lt, rt) &&
			!(lt.IsPointerLike() && isNull(s.RHS)) &&
			!(lt.Kind == KindInt && rt.IsPointerLike()) {
			c.errorf(s.Pos(), "cannot assign %s to %s", rt, lt)
		}
	case *ast.IfStmt:
		c.checkCond(s.Cond)
		c.checkStmt(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *ast.WhileStmt:
		c.checkCond(s.Cond)
		c.loops++
		c.checkStmt(s.Body)
		c.loops--
	case *ast.ForStmt:
		c.pushScope()
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		if s.Cond != nil {
			c.checkCond(s.Cond)
		}
		if s.Post != nil {
			c.checkStmt(s.Post)
		}
		c.loops++
		c.checkStmt(s.Body)
		c.loops--
		c.popScope()
	case *ast.ReturnStmt:
		ret := c.cur.Sig.Ret
		if s.X == nil {
			if ret.Kind != KindVoid {
				c.errorf(s.Pos(), "missing return value in %s (returns %s)", c.cur.Sig.Name, ret)
			}
			return
		}
		if ret.Kind == KindVoid {
			c.errorf(s.Pos(), "unexpected return value in void function %s", c.cur.Sig.Name)
			c.checkExpr(s.X)
			return
		}
		t := c.checkExpr(s.X)
		if t != nil && !assignable(ret, t) && !(ret.IsPointerLike() && isNull(s.X)) {
			c.errorf(s.Pos(), "cannot return %s from %s (returns %s)", t, c.cur.Sig.Name, ret)
		}
	case *ast.BreakStmt:
		if c.loops == 0 {
			c.errorf(s.Pos(), "break outside loop")
		}
	case *ast.ContinueStmt:
		if c.loops == 0 {
			c.errorf(s.Pos(), "continue outside loop")
		}
	default:
		c.errorf(s.Pos(), "unhandled statement %T", s)
	}
}

func (c *checker) checkCond(e ast.Expr) {
	t := c.checkExpr(e)
	if t != nil && !t.IsScalar() {
		c.errorf(e.Pos(), "condition must be scalar, got %s", t)
	}
}

// checkLValue checks an expression in store position and returns the type
// of the location.
func (c *checker) checkLValue(e ast.Expr) *Type {
	switch e := e.(type) {
	case *ast.Ident, *ast.FieldExpr, *ast.IndexExpr:
		return c.checkExpr(e)
	case *ast.UnaryExpr:
		if e.Op == token.STAR {
			return c.checkExpr(e)
		}
	}
	c.errorf(e.Pos(), "cannot assign to %s", ast.PrintExpr(e))
	return c.checkExpr(e)
}

// ---------------------------------------------------------------- exprs

func (c *checker) setType(e ast.Expr, t *Type) *Type {
	c.info.ExprTypes[e] = t
	return t
}

func (c *checker) checkExpr(e ast.Expr) *Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return c.setType(e, TypeInt)
	case *ast.StringLit:
		return c.setType(e, TypeString)
	case *ast.NullLit:
		return c.setType(e, anyPtr)
	case *ast.Ident:
		v := c.lookup(e.Name)
		if v == nil {
			c.errorf(e.Pos(), "undefined variable %s", e.Name)
			return c.setType(e, TypeInt)
		}
		c.info.Uses[e] = v
		return c.setType(e, v.Type)
	case *ast.UnaryExpr:
		return c.setType(e, c.checkUnary(e))
	case *ast.BinaryExpr:
		return c.setType(e, c.checkBinary(e))
	case *ast.CallExpr:
		return c.setType(e, c.checkCall(e))
	case *ast.IndexExpr:
		return c.setType(e, c.checkIndex(e))
	case *ast.FieldExpr:
		return c.setType(e, c.checkField(e))
	default:
		c.errorf(e.Pos(), "unhandled expression %T", e)
		return TypeInt
	}
}

func (c *checker) checkUnary(e *ast.UnaryExpr) *Type {
	switch e.Op {
	case token.MINUS, token.NOT:
		t := c.checkExpr(e.X)
		if t != nil && t.Kind != KindInt && !(e.Op == token.NOT && t.IsPointerLike()) {
			c.errorf(e.Pos(), "operator %s requires int, got %s", e.Op, t)
		}
		return TypeInt
	case token.STAR:
		t := c.checkExpr(e.X)
		if t == nil || !t.IsPointer() {
			c.errorf(e.Pos(), "cannot dereference %s", t)
			return TypeInt
		}
		if isAnyPtr(t) {
			return TypeInt
		}
		if !t.Elem.IsScalar() {
			c.errorf(e.Pos(), "cannot load struct value; access fields with ->")
			return TypeInt
		}
		return t.Elem
	case token.AMP:
		switch x := e.X.(type) {
		case *ast.Ident:
			t := c.checkExpr(x)
			return PointerTo(t)
		case *ast.FieldExpr:
			t := c.checkExpr(x)
			return PointerTo(t)
		case *ast.IndexExpr:
			t := c.checkExpr(x)
			return PointerTo(t)
		default:
			c.errorf(e.Pos(), "cannot take address of %s", ast.PrintExpr(e.X))
			c.checkExpr(e.X)
			return anyPtr
		}
	}
	c.errorf(e.Pos(), "unhandled unary operator %s", e.Op)
	return TypeInt
}

func (c *checker) checkBinary(e *ast.BinaryExpr) *Type {
	xt := c.checkExpr(e.X)
	yt := c.checkExpr(e.Y)
	if xt == nil || yt == nil {
		return TypeInt
	}
	switch e.Op {
	case token.PLUS, token.MINUS:
		// int op int, ptr ± int, ptr - ptr.
		switch {
		case xt.Kind == KindInt && yt.Kind == KindInt:
			return TypeInt
		case xt.IsPointerLike() && yt.Kind == KindInt:
			return xt
		case e.Op == token.MINUS && xt.IsPointerLike() && yt.IsPointerLike():
			return TypeInt
		}
		c.errorf(e.Pos(), "invalid operands to %s: %s and %s", e.Op, xt, yt)
		return TypeInt
	case token.STAR, token.SLASH, token.PERCENT:
		if xt.Kind != KindInt || yt.Kind != KindInt {
			c.errorf(e.Pos(), "operator %s requires ints, got %s and %s", e.Op, xt, yt)
		}
		return TypeInt
	case token.EQ, token.NE, token.LT, token.LE, token.GT, token.GE:
		ok := (xt.Kind == KindInt && yt.Kind == KindInt) ||
			(xt.IsPointerLike() && yt.IsPointerLike()) ||
			(xt.IsPointerLike() && isAnyPtr(yt)) ||
			(isAnyPtr(xt) && yt.IsPointerLike())
		if !ok {
			c.errorf(e.Pos(), "cannot compare %s and %s", xt, yt)
		}
		return TypeInt
	case token.LAND, token.LOR:
		return TypeInt
	}
	c.errorf(e.Pos(), "unhandled binary operator %s", e.Op)
	return TypeInt
}

func (c *checker) checkIndex(e *ast.IndexExpr) *Type {
	xt := c.checkExpr(e.X)
	it := c.checkExpr(e.Index)
	if it != nil && it.Kind != KindInt {
		c.errorf(e.Index.Pos(), "index must be int, got %s", it)
	}
	if xt == nil {
		return TypeInt
	}
	switch {
	case xt.Kind == KindString:
		return TypeInt // byte read, widened
	case xt.IsPointer() && !isAnyPtr(xt) && xt.Elem.IsScalar():
		return xt.Elem
	case isAnyPtr(xt):
		return TypeInt
	}
	c.errorf(e.Pos(), "cannot index %s", xt)
	return TypeInt
}

func (c *checker) checkField(e *ast.FieldExpr) *Type {
	xt := c.checkExpr(e.X)
	if xt == nil || !xt.IsPointer() || xt.Elem.Kind != KindStruct {
		c.errorf(e.Pos(), "-> requires a struct pointer, got %s", xt)
		return TypeInt
	}
	fld := xt.Elem.Struct.Field(e.Name)
	if fld == nil {
		c.errorf(e.NPos, "struct %s has no field %s", xt.Elem.Struct.Name, e.Name)
		return TypeInt
	}
	return fld.Type
}

func (c *checker) checkCall(e *ast.CallExpr) *Type {
	name := e.Fun.Name
	if sig, ok := Builtins[name]; ok {
		return c.checkBuiltinCall(e, sig)
	}
	fi, ok := c.info.Funcs[name]
	if !ok {
		c.errorf(e.Fun.Pos(), "undefined function %s", name)
		for _, a := range e.Args {
			c.checkExpr(a)
		}
		return TypeInt
	}
	c.info.CallSigs[e] = fi.Sig
	if len(e.Args) != len(fi.Sig.Params) {
		c.errorf(e.Pos(), "%s expects %d arguments, got %d", name, len(fi.Sig.Params), len(e.Args))
	}
	for i, a := range e.Args {
		at := c.checkExpr(a)
		if i < len(fi.Sig.Params) && at != nil && !assignable(fi.Sig.Params[i], at) &&
			!(fi.Sig.Params[i].IsPointerLike() && isNull(a)) {
			c.errorf(a.Pos(), "argument %d of %s: cannot use %s as %s", i+1, name, at, fi.Sig.Params[i])
		}
	}
	return fi.Sig.Ret
}

func (c *checker) checkBuiltinCall(e *ast.CallExpr, sig *FuncSig) *Type {
	c.info.CallSigs[e] = sig
	switch sig.Builtin {
	case BuiltinSizeof:
		if len(e.Args) != 1 {
			c.errorf(e.Pos(), "sizeof expects exactly 1 argument")
			return TypeInt
		}
		id, ok := e.Args[0].(*ast.Ident)
		if !ok {
			c.errorf(e.Args[0].Pos(), "sizeof argument must be a struct name")
			return TypeInt
		}
		si, ok := c.info.Structs[id.Name]
		if !ok {
			c.errorf(id.Pos(), "sizeof: unknown struct %s", id.Name)
			return TypeInt
		}
		c.setType(e.Args[0], TypeInt)
		c.info.ConstValues[e] = si.Size()
		return TypeInt
	case BuiltinSpawn:
		if len(e.Args) != 2 {
			c.errorf(e.Pos(), "spawn expects (function, int)")
			return TypeInt
		}
		id, ok := e.Args[0].(*ast.Ident)
		if !ok {
			c.errorf(e.Args[0].Pos(), "spawn's first argument must be a function name")
		} else if fi, ok := c.info.Funcs[id.Name]; !ok {
			c.errorf(id.Pos(), "spawn: undefined function %s", id.Name)
		} else {
			if len(fi.Sig.Params) != 1 || !fi.Sig.Params[0].IsScalar() {
				c.errorf(id.Pos(), "spawn target %s must take exactly one scalar argument", id.Name)
			}
			c.info.SpawnTargets[e] = id.Name
			c.setType(e.Args[0], TypeInt)
		}
		at := c.checkExpr(e.Args[1])
		if at != nil && !at.IsScalar() {
			c.errorf(e.Args[1].Pos(), "spawn argument must be scalar")
		}
		return TypeInt
	case BuiltinFree, BuiltinLock, BuiltinUnlock:
		if len(e.Args) != 1 {
			c.errorf(e.Pos(), "%s expects exactly 1 argument", sig.Name)
			return sig.Ret
		}
		at := c.checkExpr(e.Args[0])
		if at != nil && !at.IsPointerLike() {
			c.errorf(e.Args[0].Pos(), "%s requires a pointer, got %s", sig.Name, at)
		}
		return sig.Ret
	case BuiltinPrint:
		if len(e.Args) == 0 {
			c.errorf(e.Pos(), "print expects at least 1 argument")
		}
		for _, a := range e.Args {
			at := c.checkExpr(a)
			if at != nil && !at.IsScalar() {
				c.errorf(a.Pos(), "print argument must be scalar")
			}
		}
		return TypeVoid
	default:
		if len(e.Args) != len(sig.Params) {
			c.errorf(e.Pos(), "%s expects %d arguments, got %d", sig.Name, len(sig.Params), len(e.Args))
		}
		for i, a := range e.Args {
			at := c.checkExpr(a)
			if i >= len(sig.Params) || sig.Params[i] == nil {
				continue // wildcard parameter
			}
			if at != nil && !assignable(sig.Params[i], at) && !(sig.Params[i].IsPointerLike() && isNull(a)) {
				c.errorf(a.Pos(), "argument %d of %s: cannot use %s as %s", i+1, sig.Name, at, sig.Params[i])
			}
		}
		return sig.Ret
	}
}
