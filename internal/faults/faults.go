// Package faults is the deterministic fault injector for the simulated
// endpoint fleet. Gist's premise is diagnosis from *in-production* runs
// (§3.2), and production fleets are not the clean room the rest of the
// simulator provides: endpoints crash or hang mid-run, PT ring buffers
// overflow, trace bytes get corrupted in transit, watchpoint traps are
// dropped or reordered by the delivery path, and reports arrive
// truncated. This package injects exactly those failure classes, per
// run, from a seeded stream, so that every degraded-mode code path of
// the server can be exercised deterministically.
//
// Determinism contract: the injected faults for a run are a pure
// function of (Config.Seed, endpoint ID, run seed). A disabled Config
// (the zero value) produces a nil *Injector whose decisions are all
// zero — callers on the clean path never draw randomness, so behavior
// with injection disabled is byte-identical to a build without this
// package.
package faults

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"repro/internal/hw/watch"
)

// Config sets per-run fault probabilities for the simulated fleet. All
// rates are in [0, 1] and independent; one run can suffer several fault
// classes at once (a crashing endpoint trivially also loses its traps).
// The zero value disables injection entirely.
type Config struct {
	// Seed salts the per-run fault stream. Two fleets with the same
	// rates but different seeds fail in different places.
	Seed int64

	// CrashRate is the probability an endpoint dies mid-run: its report
	// never reaches the server.
	CrashRate float64
	// HangRate is the probability an endpoint wedges: its report exists
	// but arrives past the server's per-run deadline.
	HangRate float64
	// OverflowRate is the probability the endpoint's PT ring buffer is
	// squeezed hard enough to overflow, forcing the decoder to resync at
	// a PSB and lose the trace prefix.
	OverflowRate float64
	// CorruptRate is the probability the raw PT trace bytes are
	// corrupted in flight (bit rot, truncated DMA, torn writes).
	CorruptRate float64
	// TrapDropRate is the probability the run's watchpoint trap log
	// loses a fraction of its entries.
	TrapDropRate float64
	// TrapReorderRate is the probability adjacent trap records are
	// swapped by the delivery path, breaking clock order.
	TrapReorderRate float64
	// TruncateRate is the probability a RunTrace field is truncated in
	// flight (outcome header lost, trap log chopped, a core's branch
	// observations dropped).
	TruncateRate float64

	// DiskRate is the probability one checkpoint write to the durable
	// store suffers a disk fault (torn write, post-write bit flip,
	// dropped rename, or fsync error, picked uniformly). Unlike the
	// per-run classes above, disk faults are drawn per (store name,
	// generation) by ForCheckpoint and never touch the pipeline's
	// per-run streams, so enabling them leaves every diagnosis
	// byte-identical.
	DiskRate float64

	// TransportRate is the probability one service RPC attempt is hit by
	// a transport fault (dropped request, delayed response, duplicated
	// delivery, corrupted body, or mid-response disconnect, picked
	// uniformly). Like DiskRate this is not a per-run class: decisions
	// are drawn per (tenant, agent, request, attempt) by ForRequest, so
	// retried attempts draw fresh decisions and an unlucky request can
	// never wedge an agent forever.
	TransportRate float64

	// SlowRate is the probability an agent's execution of one task is
	// artificially delayed — the straggler fault the hedged-dispatch
	// path exists for. Like DiskRate and TransportRate this is not a
	// per-run pipeline class: decisions are drawn per (tenant, agent,
	// task) by ForSlowdown from a separately keyed stream, so enabling
	// it cannot shift any per-run fault decision and every diagnosis
	// stays byte-identical — only its timing changes.
	SlowRate float64
	// SlowMeanMs is the mean injected delay in milliseconds for a slow
	// task; 0 means 200. Actual delays are jittered in [0.5, 3.0]× the
	// mean from the decision's seeded stream.
	SlowMeanMs int

	// DropFraction is the fraction of traps dropped within an affected
	// run; 0 means 0.3.
	DropFraction float64
	// OverflowBufBytes is the forced ring-buffer size for overflow
	// faults; 0 means 512 bytes (small enough that any realistic traced
	// region wraps).
	OverflowBufBytes int
}

// Enabled reports whether any fault class has a nonzero rate.
func (c Config) Enabled() bool {
	return c.CrashRate > 0 || c.HangRate > 0 || c.OverflowRate > 0 ||
		c.CorruptRate > 0 || c.TrapDropRate > 0 || c.TrapReorderRate > 0 ||
		c.TruncateRate > 0 || c.DiskRate > 0 || c.TransportRate > 0 ||
		c.SlowRate > 0
}

// Rates returns the per-run pipeline class probabilities by name, in a
// fixed order. DiskRate is deliberately not listed: it is a per-write
// store-layer class, not a per-run class, and Composite never sets it.
func (c Config) Rates() map[string]float64 {
	return map[string]float64{
		"crash":    c.CrashRate,
		"hang":     c.HangRate,
		"overflow": c.OverflowRate,
		"corrupt":  c.CorruptRate,
		"drop":     c.TrapDropRate,
		"reorder":  c.TrapReorderRate,
		"truncate": c.TruncateRate,
	}
}

// Validate rejects configurations whose probabilities are not actual
// probabilities. It is the library-level guard behind the CLI flag
// checks: a rate outside [0, 1] would make rng.Float64() < rate either
// always or never true, silently degenerating the fault model instead
// of failing loudly.
func (c Config) Validate() error {
	for name, rate := range c.Rates() {
		if rate < 0 || rate > 1 {
			return fmt.Errorf("faults: %s rate %g outside [0,1]", name, rate)
		}
	}
	if c.DiskRate < 0 || c.DiskRate > 1 {
		return fmt.Errorf("faults: disk rate %g outside [0,1]", c.DiskRate)
	}
	if c.TransportRate < 0 || c.TransportRate > 1 {
		return fmt.Errorf("faults: transport rate %g outside [0,1]", c.TransportRate)
	}
	if c.SlowRate < 0 || c.SlowRate > 1 {
		return fmt.Errorf("faults: slow rate %g outside [0,1]", c.SlowRate)
	}
	if c.SlowMeanMs < 0 {
		return fmt.Errorf("faults: slow mean %d ms is negative", c.SlowMeanMs)
	}
	if c.DropFraction < 0 || c.DropFraction > 1 {
		return fmt.Errorf("faults: drop fraction %g outside [0,1]", c.DropFraction)
	}
	if c.OverflowBufBytes < 0 {
		return fmt.Errorf("faults: overflow buffer %d bytes is negative", c.OverflowBufBytes)
	}
	return nil
}

// Composite returns a Config that spreads one composite fault rate
// across every fault class: rate is the probability that a run is hit
// by at least roughly one fault, split evenly so no single class
// dominates. This is the knob the chaos experiment sweeps.
//
// rate is clamped to [0, 1] first, so no class probability can leave
// [0, 1/7] no matter what a CLI flag or library caller passes in
// (rate 1.5 used to flow straight through and silently skew the split).
func Composite(seed int64, rate float64) Config {
	if rate < 0 {
		rate = 0
	} else if rate > 1 {
		rate = 1
	}
	per := rate / 7
	return Config{
		Seed:            seed,
		CrashRate:       per,
		HangRate:        per,
		OverflowRate:    per,
		CorruptRate:     per,
		TrapDropRate:    per,
		TrapReorderRate: per,
		TruncateRate:    per,
	}
}

// Disk returns a Config injecting only store-layer disk faults: rate is
// the probability one checkpoint write is hit by exactly one of the four
// durability fault kinds (picked uniformly). rate is clamped to [0, 1]
// like Composite's. This is the knob the crashloop experiment sweeps.
func Disk(seed int64, rate float64) Config {
	if rate < 0 {
		rate = 0
	} else if rate > 1 {
		rate = 1
	}
	return Config{Seed: seed, DiskRate: rate}
}

// Transport returns a Config injecting only service-transport faults:
// rate is the probability one RPC attempt is hit by exactly one of the
// five transport fault kinds (picked uniformly). rate is clamped to
// [0, 1] like Composite's. This is the knob the service chaos tests and
// the -transport-fault-rate flag sweep.
func Transport(seed int64, rate float64) Config {
	if rate < 0 {
		rate = 0
	} else if rate > 1 {
		rate = 1
	}
	return Config{Seed: seed, TransportRate: rate}
}

// Slowdown returns a Config injecting only agent-slowdown faults: rate
// is the probability one task execution is delayed, meanMs the mean
// delay (0 = 200ms). rate is clamped to [0, 1] like Composite's. This
// is the knob the overload experiment's slow-agent mix sweeps.
func Slowdown(seed int64, rate float64, meanMs int) Config {
	if rate < 0 {
		rate = 0
	} else if rate > 1 {
		rate = 1
	}
	return Config{Seed: seed, SlowRate: rate, SlowMeanMs: meanMs}
}

// String summarizes the configuration for experiment tables.
func (c Config) String() string {
	if !c.Enabled() {
		return "faults: disabled"
	}
	return fmt.Sprintf("faults: crash=%.3f hang=%.3f overflow=%.3f corrupt=%.3f drop=%.3f reorder=%.3f truncate=%.3f",
		c.CrashRate, c.HangRate, c.OverflowRate, c.CorruptRate,
		c.TrapDropRate, c.TrapReorderRate, c.TruncateRate)
}

// Injector derives per-run fault decisions. A nil injector is valid and
// never injects anything.
type Injector struct {
	cfg Config
}

// NewInjector returns an injector for cfg, or nil when cfg is disabled
// so clean-path callers pay nothing.
func NewInjector(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	if cfg.DropFraction == 0 {
		cfg.DropFraction = 0.3
	}
	if cfg.OverflowBufBytes == 0 {
		cfg.OverflowBufBytes = 512
	}
	return &Injector{cfg: cfg}
}

// TruncateKind selects which RunTrace field a truncation fault eats.
type TruncateKind int

// Truncation targets.
const (
	// TruncateNone: no truncation.
	TruncateNone TruncateKind = iota
	// TruncateOutcome drops the run outcome header; the report is
	// useless and the server must quarantine it.
	TruncateOutcome
	// TruncateTraps chops a suffix of the watchpoint trap log.
	TruncateTraps
	// TruncateBranches drops one core's branch observations.
	TruncateBranches
)

// Decision is the set of faults injected into one production run. The
// zero value injects nothing.
type Decision struct {
	// Crash: the endpoint dies; the report never arrives.
	Crash bool
	// Hang: the report arrives past the server's per-run deadline.
	Hang bool
	// Overflow: the PT ring buffer is forced down to OverflowBufBytes.
	Overflow bool
	// Corrupt: trace bytes are flipped in flight.
	Corrupt bool
	// DropTraps / ReorderTraps: the watchpoint trap log is degraded.
	DropTraps    bool
	ReorderTraps bool
	// Truncate selects a RunTrace field to truncate.
	Truncate TruncateKind

	dropFraction float64
	bufBytes     int
	rng          *rand.Rand
}

// Any reports whether the decision injects at least one fault.
func (d Decision) Any() bool {
	return d.Crash || d.Hang || d.Overflow || d.Corrupt ||
		d.DropTraps || d.ReorderTraps || d.Truncate != TruncateNone
}

// ForRun derives the fault decision for one run, a pure function of the
// injector seed and the run's identity.
func (i *Injector) ForRun(endpoint int, seed int64) Decision {
	if i == nil {
		return Decision{}
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d", i.cfg.Seed, endpoint, seed)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	d := Decision{
		Crash:        rng.Float64() < i.cfg.CrashRate,
		Hang:         rng.Float64() < i.cfg.HangRate,
		Overflow:     rng.Float64() < i.cfg.OverflowRate,
		Corrupt:      rng.Float64() < i.cfg.CorruptRate,
		DropTraps:    rng.Float64() < i.cfg.TrapDropRate,
		ReorderTraps: rng.Float64() < i.cfg.TrapReorderRate,
		dropFraction: i.cfg.DropFraction,
		bufBytes:     i.cfg.OverflowBufBytes,
		rng:          rng,
	}
	if rng.Float64() < i.cfg.TruncateRate {
		d.Truncate = TruncateKind(1 + rng.Intn(3))
	}
	return d
}

// BufBytes returns the PT ring-buffer size the client must use: the
// forced tiny buffer under an overflow fault, dflt otherwise (0 keeps
// the tracer's own default).
func (d Decision) BufBytes(dflt int) int {
	if d.Overflow {
		return d.bufBytes
	}
	return dflt
}

// CorruptTrace flips a few bytes of a copy of buf, modeling in-flight
// trace corruption. The number and positions of flipped bytes come from
// the decision's seeded stream. Empty buffers pass through untouched.
func (d Decision) CorruptTrace(buf []byte) []byte {
	if !d.Corrupt || len(buf) == 0 {
		return buf
	}
	out := append([]byte(nil), buf...)
	n := 1 + d.rng.Intn(8)
	for k := 0; k < n; k++ {
		pos := d.rng.Intn(len(out))
		out[pos] ^= byte(1 + d.rng.Intn(255))
	}
	return out
}

// ApplyTraps degrades a trap log per the decision: dropped entries,
// then adjacent swaps that break clock order. It returns the degraded
// log and how many entries were dropped and reordered.
func (d Decision) ApplyTraps(traps []watch.Trap) (out []watch.Trap, dropped, reordered int) {
	out = traps
	if d.DropTraps && len(out) > 0 {
		kept := make([]watch.Trap, 0, len(out))
		for _, tr := range out {
			if d.rng.Float64() < d.dropFraction {
				dropped++
				continue
			}
			kept = append(kept, tr)
		}
		out = kept
	}
	if d.ReorderTraps && len(out) > 1 {
		if &out[0] == &traps[0] {
			out = append([]watch.Trap(nil), out...)
		}
		n := 1 + d.rng.Intn(3)
		for k := 0; k < n; k++ {
			i := d.rng.Intn(len(out) - 1)
			out[i], out[i+1] = out[i+1], out[i]
			reordered++
		}
	}
	return out, dropped, reordered
}

// TruncateAt returns a truncation point in [0, n) for a field of length
// n, from the decision's seeded stream.
func (d Decision) TruncateAt(n int) int {
	if n <= 0 {
		return 0
	}
	return d.rng.Intn(n)
}

// PickCore picks one of the given core IDs for a per-core fault.
func (d Decision) PickCore(cores []int) int {
	if len(cores) == 0 {
		return 0
	}
	return cores[d.rng.Intn(len(cores))]
}

// DiskKind selects which durability fault a checkpoint write suffers.
// These model the classic crash-consistency hazards of an atomic-rename
// checkpoint protocol: data that never fully reached the platter, bit
// rot after the write, a rename the crash window swallowed, and an
// fsync the kernel failed.
type DiskKind int

// Disk fault kinds.
const (
	// DiskNone: the write is durable and intact.
	DiskNone DiskKind = iota
	// DiskTorn: only a prefix of the frame reaches the disk.
	DiskTorn
	// DiskFlip: one byte of the durable frame is flipped after the
	// write (latent media corruption the CRC must catch).
	DiskFlip
	// DiskRenameDrop: the rename publishing the generation never
	// happens; the temp file is left behind.
	DiskRenameDrop
	// DiskFsyncErr: fsync reports an error; the write must be treated
	// as lost.
	DiskFsyncErr
)

// String names the kind for store quarantine records and logs.
func (k DiskKind) String() string {
	switch k {
	case DiskNone:
		return "none"
	case DiskTorn:
		return "torn-write"
	case DiskFlip:
		return "bit-flip"
	case DiskRenameDrop:
		return "dropped-rename"
	case DiskFsyncErr:
		return "fsync-error"
	}
	return fmt.Sprintf("disk-kind-%d", int(k))
}

// DiskDecision is the durability fault injected into one checkpoint
// write. The zero value injects nothing.
type DiskDecision struct {
	Kind DiskKind
	rng  *rand.Rand
}

// Any reports whether the decision injects a fault.
func (d DiskDecision) Any() bool { return d.Kind != DiskNone }

// TornLen returns how many of the frame's n bytes survive a torn write,
// in [0, n), from the decision's seeded stream.
func (d DiskDecision) TornLen(n int) int {
	if n <= 0 {
		return 0
	}
	return d.rng.Intn(n)
}

// FlipByte picks the position and XOR mask of a post-write bit flip in
// an n-byte frame. The mask is never zero, so the flip always damages
// the frame.
func (d DiskDecision) FlipByte(n int) (pos int, mask byte) {
	if n <= 0 {
		return 0, 1
	}
	return d.rng.Intn(n), byte(1 + d.rng.Intn(255))
}

// TransportKind selects which wire-level fault an RPC attempt suffers.
// These model the classic failure modes of a datacenter transport: a
// request that never arrives, a response that arrives after the caller
// gave up, a retry storm delivering the same request twice, bytes
// damaged in flight, and a connection reset after the server already
// processed the call. The last three are precisely the cases that make
// idempotency keys and body checksums load-bearing.
type TransportKind int

// Transport fault kinds.
const (
	// TransportNone: the attempt goes through clean.
	TransportNone TransportKind = iota
	// TransportDrop: the request is lost before reaching the server.
	TransportDrop
	// TransportDelay: the server processes the call but the response
	// arrives after the caller's deadline; the caller must retry an
	// already-applied request.
	TransportDelay
	// TransportDuplicate: the request is delivered twice; the server
	// must deduplicate.
	TransportDuplicate
	// TransportCorrupt: request body bytes are flipped in flight; the
	// server's checksum must reject the call.
	TransportCorrupt
	// TransportDisconnect: the connection is reset mid-response, after
	// the server processed the call.
	TransportDisconnect
)

// String names the kind for logs and telemetry.
func (k TransportKind) String() string {
	switch k {
	case TransportNone:
		return "none"
	case TransportDrop:
		return "drop"
	case TransportDelay:
		return "delay"
	case TransportDuplicate:
		return "duplicate"
	case TransportCorrupt:
		return "corrupt"
	case TransportDisconnect:
		return "disconnect"
	}
	return fmt.Sprintf("transport-kind-%d", int(k))
}

// TransportDecision is the wire fault injected into one RPC attempt.
// The zero value injects nothing.
type TransportDecision struct {
	Kind TransportKind
	rng  *rand.Rand
}

// Any reports whether the decision injects a fault.
func (d TransportDecision) Any() bool { return d.Kind != TransportNone }

// CorruptBody flips a few bytes of a copy of body, modeling in-flight
// damage the server-side checksum must catch. Empty bodies pass through
// untouched.
func (d TransportDecision) CorruptBody(body []byte) []byte {
	if len(body) == 0 {
		return body
	}
	out := append([]byte(nil), body...)
	n := 1 + d.rng.Intn(4)
	for k := 0; k < n; k++ {
		pos := d.rng.Intn(len(out))
		out[pos] ^= byte(1 + d.rng.Intn(255))
	}
	return out
}

// ForRequest derives the transport-fault decision for one RPC attempt,
// a pure function of the injector seed and the attempt's identity
// (tenant, agent, request key, attempt number). Attempts are counted
// per request, so every retry draws a fresh decision and a faulted
// request can never starve forever. Nil-safe.
func (i *Injector) ForRequest(tenant, agent, request string, attempt int) TransportDecision {
	if i == nil || i.cfg.TransportRate <= 0 {
		return TransportDecision{}
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "net|%d|%s|%s|%s|%d", i.cfg.Seed, tenant, agent, request, attempt)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	d := TransportDecision{rng: rng}
	if rng.Float64() < i.cfg.TransportRate {
		d.Kind = TransportKind(1 + rng.Intn(5))
	}
	return d
}

// SlowDecision is the straggler fault injected into one task execution.
// The zero value injects nothing.
type SlowDecision struct {
	Slow bool
	// Delay is how long the agent must stall before uploading; zero
	// unless Slow.
	Delay time.Duration
}

// Any reports whether the decision injects a fault.
func (d SlowDecision) Any() bool { return d.Slow }

// ForSlowdown derives the straggler decision for one task execution, a
// pure function of the injector seed and the execution's identity
// (tenant, agent, task ID). The agent is in the key, so a hedged
// re-dispatch of the same task to a different agent draws a fresh
// decision — exactly the property that lets a hedge beat a straggler.
// Nil-safe.
func (i *Injector) ForSlowdown(tenant, agent string, taskID uint64) SlowDecision {
	if i == nil || i.cfg.SlowRate <= 0 {
		return SlowDecision{}
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "slow|%d|%s|%s|%d", i.cfg.Seed, tenant, agent, taskID)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	d := SlowDecision{}
	if rng.Float64() < i.cfg.SlowRate {
		mean := i.cfg.SlowMeanMs
		if mean <= 0 {
			mean = 200
		}
		d.Slow = true
		d.Delay = time.Duration(float64(mean)*(0.5+2.5*rng.Float64())) * time.Millisecond
	}
	return d
}

// Flood is a seeded burst generator modeling a tenant flood: it yields
// the deterministic inter-submit gaps of a bursty report stream whose
// long-run offered rate averages rps. Submissions inside a burst are
// back to back; the gap between bursts is jittered ±50% around
// burst/rps seconds. The overload experiment and the CI flood smoke
// drive their offered load from it so a flood replays exactly.
type Flood struct {
	rng   *rand.Rand
	rps   float64
	burst int
	pos   int
}

// NewFlood returns a flood schedule for the given seed, offered rate
// (submits/sec, min 1e-3) and burst size (min 1).
func NewFlood(seed int64, rps float64, burst int) *Flood {
	if rps < 1e-3 {
		rps = 1e-3
	}
	if burst < 1 {
		burst = 1
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "flood|%d|%g|%d", seed, rps, burst)
	return &Flood{rng: rand.New(rand.NewSource(int64(h.Sum64()))), rps: rps, burst: burst}
}

// Next returns the gap to wait before the next submission: zero within
// a burst, a jittered burst-sized gap at each burst boundary. The first
// burst fires immediately.
func (f *Flood) Next() time.Duration {
	var d time.Duration
	if f.pos > 0 && f.pos%f.burst == 0 {
		gap := float64(f.burst) / f.rps
		d = time.Duration(gap * (0.5 + f.rng.Float64()) * float64(time.Second))
	}
	f.pos++
	return d
}

// ForCheckpoint derives the disk-fault decision for one checkpoint
// write, a pure function of the injector seed and the write's identity
// (store name, generation number). Generations are monotonic, so every
// write draws a fresh decision and an unlucky generation can never
// wedge a store forever. Nil-safe.
func (i *Injector) ForCheckpoint(name string, gen uint64) DiskDecision {
	if i == nil || i.cfg.DiskRate <= 0 {
		return DiskDecision{}
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "disk|%d|%s|%d", i.cfg.Seed, name, gen)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	d := DiskDecision{rng: rng}
	if rng.Float64() < i.cfg.DiskRate {
		d.Kind = DiskKind(1 + rng.Intn(4))
	}
	return d
}
