package faults

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/hw/watch"
)

func TestDisabledConfigInjectsNothing(t *testing.T) {
	if NewInjector(Config{}) != nil {
		t.Fatal("zero config must yield a nil injector")
	}
	var inj *Injector
	d := inj.ForRun(3, 77)
	if d.Any() {
		t.Fatalf("nil injector produced a fault: %+v", d)
	}
	// The zero decision's primitives are all pass-through.
	if d.BufBytes(0) != 0 || d.BufBytes(4096) != 4096 {
		t.Error("zero decision altered the buffer size")
	}
	buf := []byte{1, 2, 3}
	if got := d.CorruptTrace(buf); &got[0] != &buf[0] {
		t.Error("zero decision copied/corrupted the trace")
	}
	traps := []watch.Trap{{Clock: 1}, {Clock: 2}}
	out, dropped, reordered := d.ApplyTraps(traps)
	if dropped != 0 || reordered != 0 || &out[0] != &traps[0] {
		t.Error("zero decision touched the trap log")
	}
}

func TestForRunIsDeterministic(t *testing.T) {
	cfg := Composite(99, 0.5)
	a, b := NewInjector(cfg), NewInjector(cfg)
	for e := 0; e < 10; e++ {
		for seed := int64(0); seed < 20; seed++ {
			da, db := a.ForRun(e, seed), b.ForRun(e, seed)
			if da.Crash != db.Crash || da.Hang != db.Hang || da.Overflow != db.Overflow ||
				da.Corrupt != db.Corrupt || da.DropTraps != db.DropTraps ||
				da.ReorderTraps != db.ReorderTraps || da.Truncate != db.Truncate {
				t.Fatalf("endpoint %d seed %d: decisions differ across identical injectors", e, seed)
			}
		}
	}
}

func TestSeedChangesWhereFaultsLand(t *testing.T) {
	a := NewInjector(Composite(1, 0.5))
	b := NewInjector(Composite(2, 0.5))
	differs := false
	for e := 0; e < 10 && !differs; e++ {
		for seed := int64(0); seed < 20; seed++ {
			if !reflect.DeepEqual(faultsOf(a.ForRun(e, seed)), faultsOf(b.ForRun(e, seed))) {
				differs = true
				break
			}
		}
	}
	if !differs {
		t.Error("two different fleet seeds fail in exactly the same places")
	}
}

func faultsOf(d Decision) [7]interface{} {
	return [7]interface{}{d.Crash, d.Hang, d.Overflow, d.Corrupt, d.DropTraps, d.ReorderTraps, d.Truncate}
}

func TestCompositeSpreadsRate(t *testing.T) {
	c := Composite(5, 0.21)
	if !c.Enabled() {
		t.Fatal("composite rate 0.21 should enable injection")
	}
	sum := c.CrashRate + c.HangRate + c.OverflowRate + c.CorruptRate +
		c.TrapDropRate + c.TrapReorderRate + c.TruncateRate
	if sum < 0.2099 || sum > 0.2101 {
		t.Errorf("per-class rates sum to %v, want 0.21", sum)
	}
	if Composite(5, 0).Enabled() {
		t.Error("composite rate 0 must stay disabled")
	}
}

// Property: for any composite rate — including out-of-range garbage a
// flag could deliver — every per-class probability stays in [0, 1], the
// config validates, and the class split stays even.
func TestCompositeRateRangeProperty(t *testing.T) {
	f := func(raw int16) bool {
		rate := float64(raw) / 1000 // sweeps roughly [-32.8, 32.8]
		c := Composite(1, rate)
		if err := c.Validate(); err != nil {
			return false
		}
		var first float64
		for _, per := range c.Rates() {
			if per < 0 || per > 1 {
				return false
			}
			first = per
		}
		for _, per := range c.Rates() {
			if per != first { // even split across all 7 classes
				return false
			}
		}
		// In-range rates must be preserved exactly; out-of-range clamped.
		sum := 7 * first
		switch {
		case rate <= 0:
			return sum == 0
		case rate >= 1:
			return sum > 0.9999 && sum < 1.0001
		default:
			return sum > rate-1e-9 && sum < rate+1e-9
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	cases := []Config{
		{CrashRate: 1.5},
		{HangRate: -0.1},
		{OverflowRate: 2},
		{CorruptRate: math.Inf(1)},
		{TrapDropRate: -1},
		{TrapReorderRate: 1.01},
		{TruncateRate: 7},
		{DropFraction: 1.2},
		{DropFraction: -0.5},
		{OverflowBufBytes: -1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%+v): want error, got nil", i, c)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config should validate: %v", err)
	}
	if err := Composite(1, 1).Validate(); err != nil {
		t.Errorf("composite at full rate should validate: %v", err)
	}
}

func TestCorruptTraceDamagesCopy(t *testing.T) {
	inj := NewInjector(Config{Seed: 3, CorruptRate: 1})
	d := inj.ForRun(0, 0)
	if !d.Corrupt {
		t.Fatal("CorruptRate=1 did not corrupt")
	}
	orig := make([]byte, 64)
	for i := range orig {
		orig[i] = byte(i)
	}
	snapshot := append([]byte(nil), orig...)
	got := d.CorruptTrace(orig)
	if !reflect.DeepEqual(orig, snapshot) {
		t.Error("CorruptTrace mutated the caller's buffer")
	}
	changed := 0
	for i := range got {
		if got[i] != orig[i] {
			changed++
		}
	}
	if changed == 0 || changed > 8 {
		t.Errorf("corruption flipped %d bytes, want 1..8", changed)
	}
}

func TestApplyTrapsDropAndReorder(t *testing.T) {
	traps := make([]watch.Trap, 40)
	for i := range traps {
		traps[i] = watch.Trap{InstrID: i, Clock: int64(i)}
	}
	inj := NewInjector(Config{Seed: 11, TrapDropRate: 1, TrapReorderRate: 1, DropFraction: 0.25})
	d := inj.ForRun(0, 0)
	out, dropped, reordered := d.ApplyTraps(traps)
	if dropped == 0 || len(out) != len(traps)-dropped {
		t.Fatalf("dropped=%d len(out)=%d len(in)=%d", dropped, len(out), len(traps))
	}
	if reordered == 0 {
		t.Fatal("reorder fault swapped nothing")
	}
	broken := false
	for i := 1; i < len(out); i++ {
		if out[i].Clock < out[i-1].Clock {
			broken = true
		}
	}
	if !broken {
		t.Error("reordering left the log in clock order")
	}
	// The input log is never mutated.
	for i := range traps {
		if traps[i].InstrID != i {
			t.Fatal("ApplyTraps mutated the input slice")
		}
	}
}

func TestDiskDecisions(t *testing.T) {
	// Disabled and nil injectors never inject.
	if Disk(1, 0).Enabled() {
		t.Error("disk rate 0 must stay disabled")
	}
	var nilInj *Injector
	if nilInj.ForCheckpoint("x", 1).Any() {
		t.Error("nil injector produced a disk fault")
	}

	inj := NewInjector(Disk(7, 1))
	if inj == nil {
		t.Fatal("disk rate 1 should enable injection")
	}
	// Deterministic per (name, generation): identical injectors agree.
	other := NewInjector(Disk(7, 1))
	kinds := make(map[DiskKind]bool)
	for gen := uint64(0); gen < 64; gen++ {
		d := inj.ForCheckpoint("pbzip2", gen)
		if !d.Any() {
			t.Fatalf("DiskRate=1 produced no fault at gen %d", gen)
		}
		if d2 := other.ForCheckpoint("pbzip2", gen); d2.Kind != d.Kind {
			t.Fatalf("gen %d: kinds differ across identical injectors", gen)
		}
		kinds[d.Kind] = true
	}
	if len(kinds) != 4 {
		t.Errorf("64 decisions hit %d disk-fault kinds, want all 4", len(kinds))
	}
	// The store name salts the stream: two stores fail in different
	// places.
	differs := false
	for gen := uint64(0); gen < 64 && !differs; gen++ {
		differs = inj.ForCheckpoint("a", gen).Kind != inj.ForCheckpoint("b", gen).Kind
	}
	if !differs {
		t.Error("two store names draw identical disk-fault streams")
	}
	// Decision primitives stay in range.
	d := inj.ForCheckpoint("pbzip2", 3)
	if n := d.TornLen(100); n < 0 || n >= 100 {
		t.Errorf("TornLen(100) = %d outside [0,100)", n)
	}
	if pos, mask := d.FlipByte(100); pos < 0 || pos >= 100 || mask == 0 {
		t.Errorf("FlipByte(100) = (%d, %#x) invalid", pos, mask)
	}
	// Disk-only injection never perturbs the per-run pipeline stream.
	if inj.ForRun(0, 0).Any() {
		t.Error("disk-only config injected a pipeline fault")
	}
}

func TestDiskRateValidation(t *testing.T) {
	if err := (Config{DiskRate: 1.5}).Validate(); err == nil {
		t.Error("disk rate 1.5 should fail validation")
	}
	if err := (Config{DiskRate: -0.1}).Validate(); err == nil {
		t.Error("disk rate -0.1 should fail validation")
	}
	if err := Disk(1, 5).Validate(); err != nil {
		t.Errorf("Disk clamps its rate, should validate: %v", err)
	}
}

func TestTruncateRateSelectsAKind(t *testing.T) {
	inj := NewInjector(Config{Seed: 13, TruncateRate: 1})
	kinds := make(map[TruncateKind]bool)
	for seed := int64(0); seed < 50; seed++ {
		d := inj.ForRun(0, seed)
		if d.Truncate == TruncateNone {
			t.Fatalf("TruncateRate=1 produced no truncation (seed %d)", seed)
		}
		kinds[d.Truncate] = true
	}
	if len(kinds) != 3 {
		t.Errorf("50 decisions hit %d truncation kinds, want all 3", len(kinds))
	}
}

func TestTransportDecisions(t *testing.T) {
	// Disabled and nil injectors never inject.
	if Transport(1, 0).Enabled() {
		t.Error("transport rate 0 must stay disabled")
	}
	var nilInj *Injector
	if nilInj.ForRequest("t", "a", "r", 0).Any() {
		t.Error("nil injector produced a transport fault")
	}

	inj := NewInjector(Transport(7, 1))
	if inj == nil {
		t.Fatal("transport rate 1 should enable injection")
	}
	// Deterministic per (tenant, agent, request, attempt): identical
	// injectors agree.
	other := NewInjector(Transport(7, 1))
	kinds := make(map[TransportKind]bool)
	for att := 0; att < 64; att++ {
		d := inj.ForRequest("acme", "agent-0", "upload/42", att)
		if !d.Any() {
			t.Fatalf("TransportRate=1 produced no fault at attempt %d", att)
		}
		if d2 := other.ForRequest("acme", "agent-0", "upload/42", att); d2.Kind != d.Kind {
			t.Fatalf("attempt %d: kinds differ across identical injectors", att)
		}
		kinds[d.Kind] = true
	}
	if len(kinds) != 5 {
		t.Errorf("64 decisions hit %d transport-fault kinds, want all 5", len(kinds))
	}
	// Every identity component salts the stream.
	differs := func(f func(att int) TransportDecision) bool {
		for att := 0; att < 64; att++ {
			if f(att).Kind != inj.ForRequest("acme", "agent-0", "upload/42", att).Kind {
				return true
			}
		}
		return false
	}
	if !differs(func(att int) TransportDecision { return inj.ForRequest("umbrella", "agent-0", "upload/42", att) }) {
		t.Error("tenant does not salt the transport stream")
	}
	if !differs(func(att int) TransportDecision { return inj.ForRequest("acme", "agent-1", "upload/42", att) }) {
		t.Error("agent does not salt the transport stream")
	}
	if !differs(func(att int) TransportDecision { return inj.ForRequest("acme", "agent-0", "poll/42", att) }) {
		t.Error("request key does not salt the transport stream")
	}
	// Transport-only injection never perturbs the per-run or disk
	// streams.
	if inj.ForRun(0, 0).Any() {
		t.Error("transport-only config injected a pipeline fault")
	}
	if inj.ForCheckpoint("x", 1).Any() {
		t.Error("transport-only config injected a disk fault")
	}
}

func TestTransportCorruptBodyDamagesCopy(t *testing.T) {
	inj := NewInjector(Transport(11, 1))
	var d TransportDecision
	for att := 0; ; att++ {
		d = inj.ForRequest("t", "a", "r", att)
		if d.Kind == TransportCorrupt {
			break
		}
		if att > 256 {
			t.Fatal("no corrupt decision in 256 attempts at rate 1")
		}
	}
	body := []byte("0123456789abcdef")
	orig := append([]byte(nil), body...)
	out := d.CorruptBody(body)
	if string(body) != string(orig) {
		t.Error("CorruptBody mutated the input")
	}
	if string(out) == string(orig) {
		t.Error("CorruptBody left the copy undamaged")
	}
	if len(out) != len(orig) {
		t.Errorf("CorruptBody changed length %d -> %d", len(orig), len(out))
	}
	if got := d.CorruptBody(nil); got != nil {
		t.Error("CorruptBody of empty body should pass through")
	}
}

func TestTransportRateValidation(t *testing.T) {
	if err := (Config{TransportRate: 1.5}).Validate(); err == nil {
		t.Error("transport rate 1.5 should fail validation")
	}
	if err := (Config{TransportRate: -0.1}).Validate(); err == nil {
		t.Error("transport rate -0.1 should fail validation")
	}
	if err := Transport(1, 5).Validate(); err != nil {
		t.Errorf("Transport clamps its rate, should validate: %v", err)
	}
}

func TestSlowdownDecisions(t *testing.T) {
	inj := NewInjector(Slowdown(7, 0.3, 200))

	// Deterministic: the same (tenant, agent, task) replays exactly.
	for task := uint64(1); task <= 64; task++ {
		a := inj.ForSlowdown("acme", "ep-1", task)
		b := inj.ForSlowdown("acme", "ep-1", task)
		if a != b {
			t.Fatalf("task %d: decisions differ on replay: %+v vs %+v", task, a, b)
		}
		if a.Slow && a.Delay <= 0 {
			t.Fatalf("task %d: slow decision with non-positive delay %v", task, a.Delay)
		}
		if a.Slow != a.Any() {
			t.Fatalf("task %d: Any() = %v disagrees with Slow = %v", task, a.Any(), a.Slow)
		}
	}

	// The stream is keyed by agent: a hedged re-dispatch of the same
	// task to another agent draws an independent decision, so a hedge
	// can dodge the slowdown that stalled the first attempt.
	differs := false
	for task := uint64(1); task <= 256 && !differs; task++ {
		differs = inj.ForSlowdown("acme", "ep-1", task).Slow != inj.ForSlowdown("acme", "ep-2", task).Slow
	}
	if !differs {
		t.Fatal("per-agent slowdown streams are identical across 256 tasks at rate 0.3")
	}

	// The empirical rate must track the configured one.
	slow := 0
	const n = 2000
	for task := uint64(0); task < n; task++ {
		if inj.ForSlowdown("acme", "ep-1", task).Slow {
			slow++
		}
	}
	if got := float64(slow) / n; math.Abs(got-0.3) > 0.05 {
		t.Fatalf("empirical slow rate %.3f, want ≈ 0.3", got)
	}

	// Rate 0 and nil injectors never slow anything.
	if NewInjector(Slowdown(7, 0, 200)) != nil {
		t.Fatal("rate-0 slowdown config must yield a nil injector")
	}
	var nilInj *Injector
	if d := nilInj.ForSlowdown("t", "a", 1); d.Slow || d.Delay != 0 {
		t.Fatalf("nil injector slowdown = %+v, want none", d)
	}
}

func TestSlowdownDoesNotPerturbRunStream(t *testing.T) {
	// Diagnoses stay byte-identical under the slow-agent mix because
	// the slowdown stream is keyed separately: adding SlowRate to a
	// config must not move a single draw of the shared run stream.
	base := Composite(42, 0.5)
	withSlow := base
	withSlow.SlowRate = 0.5
	withSlow.SlowMeanMs = 300
	a, b := NewInjector(base), NewInjector(withSlow)
	for ep := 0; ep < 8; ep++ {
		for seed := int64(0); seed < 64; seed++ {
			da, db := a.ForRun(ep, seed), b.ForRun(ep, seed)
			if da.Crash != db.Crash || da.Hang != db.Hang || da.Overflow != db.Overflow ||
				da.Corrupt != db.Corrupt || da.DropTraps != db.DropTraps ||
				da.ReorderTraps != db.ReorderTraps || da.Truncate != db.Truncate {
				t.Fatalf("run decision (%d,%d) shifted when SlowRate was added: %+v vs %+v", ep, seed, da, db)
			}
		}
	}
}

func TestSlowdownRateValidation(t *testing.T) {
	if err := (Config{SlowRate: 1.5}).Validate(); err == nil {
		t.Error("slow rate 1.5 should fail validation")
	}
	if err := (Config{SlowRate: -0.1}).Validate(); err == nil {
		t.Error("slow rate -0.1 should fail validation")
	}
	if err := (Config{SlowRate: 0.5, SlowMeanMs: -1}).Validate(); err == nil {
		t.Error("negative slow mean should fail validation")
	}
	if err := Slowdown(1, 5, 100).Validate(); err != nil {
		t.Errorf("Slowdown clamps its rate, should validate: %v", err)
	}
}

func TestFloodDeterministicBursts(t *testing.T) {
	// Same seed and shape → identical gap sequence.
	a, b := NewFlood(3, 50, 10), NewFlood(3, 50, 10)
	for i := 0; i < 200; i++ {
		ga, gb := a.Next(), b.Next()
		if ga != gb {
			t.Fatalf("report %d: gaps differ: %v vs %v", i, ga, gb)
		}
	}

	// Bursts are tight: within a burst the gap is zero, between bursts
	// it is positive and centered on burst/rps.
	f := NewFlood(3, 50, 10)
	var gaps []float64
	for i := 0; i < 500; i++ {
		d := f.Next()
		if i%10 != 0 || i == 0 {
			if d != 0 {
				t.Fatalf("report %d inside a burst has gap %v, want 0", i, d)
			}
			continue
		}
		if d <= 0 {
			t.Fatalf("report %d between bursts has gap %v, want > 0", i, d)
		}
		gaps = append(gaps, d.Seconds())
	}
	mean := 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	// E[gap] = (burst/rps) × E[0.5 + U(0,1)] = 0.2s × 1.0.
	if math.Abs(mean-0.2) > 0.05 {
		t.Fatalf("mean inter-burst gap %.3fs, want ≈ 0.2s at 50 rps / burst 10", mean)
	}

	// Different seeds walk different gap sequences.
	c, d := NewFlood(3, 50, 10), NewFlood(4, 50, 10)
	same := true
	for i := 0; i < 100; i++ {
		if c.Next() != d.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("two seeds produced identical flood timing")
	}
}
