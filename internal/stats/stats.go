// Package stats provides the statistical primitives the Gist server uses:
// precision/recall/F-beta ranking of failure predictors (§3.3) and the
// normalized Kendall tau distance used for ordering accuracy (§5.2).
package stats

// PrecisionRecallF computes a predictor's precision, recall and F-beta
// measure from its contingency counts:
//
//	fail      — failing runs in which the predictor held
//	succ      — successful runs in which the predictor held
//	totalFail — failing runs observed in total
//
// Precision answers "how many runs fail among those the predictor flags";
// recall answers "how many failing runs the predictor flags". The paper
// sets beta=0.5 so that precision dominates: a wrong root-cause hint is
// worse than a missed one.
//
// Edge: with totalFail == 0 there are no failing runs to recover, so
// recall — and with it F — is 0 by convention even at perfect
// precision. The ranking pipeline never reaches this case (predictors
// are only ranked once at least one failing run arrived), but callers
// feeding raw contingency counts must not interpret the zero F as "bad
// predictor"; it means "no evidence".
func PrecisionRecallF(fail, succ, totalFail int, beta float64) (p, r, f float64) {
	if fail+succ > 0 {
		p = float64(fail) / float64(fail+succ)
	}
	if totalFail > 0 {
		r = float64(fail) / float64(totalFail)
	}
	b2 := beta * beta
	if den := b2*p + r; den > 0 {
		f = (1 + b2) * p * r / den
	}
	return p, r, f
}

// KendallTau returns the number of pairwise order disagreements between
// two rankings of the same item set, plus the number of comparable pairs.
// Items present in only one ranking are ignored; ties (equal positions)
// cannot occur since positions are list indexes.
//
// Duplicates: a ranking is a list of distinct keys, so repeated items
// are a caller bug — but rather than skewing the pair count silently,
// the semantics are pinned down and tested: only the FIRST occurrence
// of a duplicated item counts, later occurrences are ignored entirely
// (for both position lookup and the common-item set). A ranking with
// duplicates therefore behaves exactly like the ranking with all
// later duplicates deleted. Callers that must not tolerate duplicates
// should reject them before ranking.
//
// The normalized distance used in the paper's ordering accuracy is
// disagreements / pairs.
func KendallTau[T comparable](a, b []T) (disagreements, pairs int) {
	posA := make(map[T]int, len(a))
	for i, x := range a {
		if _, dup := posA[x]; !dup {
			posA[x] = i
		}
	}
	posB := make(map[T]int, len(b))
	for i, x := range b {
		if _, dup := posB[x]; !dup {
			posB[x] = i
		}
	}
	var common []T
	seen := make(map[T]bool)
	for _, x := range a {
		if _, ok := posB[x]; ok && !seen[x] {
			seen[x] = true
			common = append(common, x)
		}
	}
	for i := 0; i < len(common); i++ {
		for j := i + 1; j < len(common); j++ {
			x, y := common[i], common[j]
			dA := posA[x] - posA[y]
			dB := posB[x] - posB[y]
			pairs++
			if (dA < 0) != (dB < 0) {
				disagreements++
			}
		}
	}
	return disagreements, pairs
}

// OrderingAccuracy converts Kendall tau counts into the percentage
// accuracy of §5.2: 100 * (1 - tau / pairs). With no comparable pairs the
// orderings cannot disagree and accuracy is 100.
func OrderingAccuracy(disagreements, pairs int) float64 {
	if pairs == 0 {
		return 100
	}
	return 100 * (1 - float64(disagreements)/float64(pairs))
}

// Jaccard returns 100 * |A ∩ B| / |A ∪ B| over two sets — the relevance
// accuracy of §5.2.
func Jaccard[T comparable](a, b map[T]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 100
	}
	inter, union := 0, 0
	seen := make(map[T]bool, len(a)+len(b))
	for x := range a {
		seen[x] = true
		if b[x] {
			inter++
		}
	}
	for x := range b {
		seen[x] = true
	}
	union = len(seen)
	if union == 0 {
		return 100
	}
	return 100 * float64(inter) / float64(union)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
