package stats

// Streaming contingency counters. The batch ranking pipeline
// (core.RankPredictors) recomputes every predictor's contingency table
// from the full failing/successful populations at the end of each
// iteration; the streaming ingestion front-end instead folds each run
// into per-predictor counters as it arrives. The two are provably
// equal: precision, recall, and F-beta are pure functions of the three
// integers (fail, succ, totalFail), and integer addition is
// order-independent — so feeding runs one at a time and asking PRF at
// any point yields exactly PrecisionRecallF over the counts so far.
// stats_online_test.go pins the equivalence on random streams.

// Contingency is one predictor's contingency counters, accumulated
// incrementally. The zero value is an empty table.
type Contingency struct {
	// Fail counts failing runs in which the predictor held.
	Fail int `json:"fail"`
	// Succ counts successful runs in which the predictor held.
	Succ int `json:"succ"`
	// TotalFail counts failing runs observed in total, whether or not
	// the predictor held in them.
	TotalFail int `json:"total_fail"`
}

// Merge folds another table into this one (shard combination).
func (c *Contingency) Merge(o Contingency) {
	c.Fail += o.Fail
	c.Succ += o.Succ
	c.TotalFail += o.TotalFail
}

// PRF returns the table's precision, recall, and F-beta — exactly
// PrecisionRecallF over the accumulated counts, including the
// documented totalFail==0 edge (recall and F are 0 by convention).
func (c Contingency) PRF(beta float64) (p, r, f float64) {
	return PrecisionRecallF(c.Fail, c.Succ, c.TotalFail, beta)
}

// Online tracks streaming contingency counters for a population of
// predictors identified by comparable keys. Each observed run
// contributes to the global failing-run total and to the held counters
// of every predictor that held in it — predictors first seen mid-stream
// still get charged the full failing-run total, exactly as the batch
// recomputation charges them len(failing).
//
// Not safe for concurrent use; callers serialize (the campaign admits
// runs strictly in dispatch order already).
type Online[K comparable] struct {
	totalFail int
	held      map[K]*heldCounts
}

type heldCounts struct {
	fail, succ int
}

// NewOnline returns an empty streaming counter set.
func NewOnline[K comparable]() *Online[K] {
	return &Online[K]{held: make(map[K]*heldCounts)}
}

// Observe folds one run into the counters: failing says which
// population the run belongs to, held lists the predictors that held in
// it. Keys must be distinct within one call (predicate extraction
// returns a set); repeating a key would double-count the run.
func (o *Online[K]) Observe(failing bool, held []K) {
	if failing {
		o.totalFail++
	}
	for _, k := range held {
		h := o.held[k]
		if h == nil {
			h = &heldCounts{}
			o.held[k] = h
		}
		if failing {
			h.fail++
		} else {
			h.succ++
		}
	}
}

// TotalFail returns the failing runs observed so far.
func (o *Online[K]) TotalFail() int { return o.totalFail }

// Len returns how many distinct predictors have held at least once.
func (o *Online[K]) Len() int { return len(o.held) }

// Counts returns predictor k's contingency table as of now. A key that
// never held reads as an empty table charged the full failing total.
func (o *Online[K]) Counts(k K) Contingency {
	c := Contingency{TotalFail: o.totalFail}
	if h := o.held[k]; h != nil {
		c.Fail, c.Succ = h.fail, h.succ
	}
	return c
}

// PRF returns predictor k's precision, recall, and F-beta as of now.
func (o *Online[K]) PRF(k K, beta float64) (p, r, f float64) {
	return o.Counts(k).PRF(beta)
}
