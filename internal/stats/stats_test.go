package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPrecisionRecallF(t *testing.T) {
	cases := []struct {
		fail, succ, totalFail int
		beta                  float64
		p, r, f               float64
	}{
		{5, 0, 5, 0.5, 1, 1, 1},
		{5, 5, 5, 0.5, 0.5, 1, (1.25 * 0.5 * 1) / (0.25*0.5 + 1)},
		{0, 5, 5, 0.5, 0, 0, 0},
		{0, 0, 5, 0.5, 0, 0, 0},
		{3, 0, 6, 0.5, 1, 0.5, (1.25 * 1 * 0.5) / (0.25*1 + 0.5)},
		{5, 0, 5, 1, 1, 1, 1},
	}
	for _, c := range cases {
		p, r, f := PrecisionRecallF(c.fail, c.succ, c.totalFail, c.beta)
		if !almost(p, c.p) || !almost(r, c.r) || !almost(f, c.f) {
			t.Errorf("PRF(%d,%d,%d,%g) = %g,%g,%g want %g,%g,%g",
				c.fail, c.succ, c.totalFail, c.beta, p, r, f, c.p, c.r, c.f)
		}
	}
}

func TestBetaHalfFavorsPrecision(t *testing.T) {
	// Predictor A: precision 1.0, recall 0.5. Predictor B: precision 0.5,
	// recall 1.0. With beta=0.5, A must win; with beta=2 (recall-heavy),
	// B must win.
	_, _, fa := PrecisionRecallF(5, 0, 10, 0.5)
	_, _, fb := PrecisionRecallF(10, 10, 10, 0.5)
	if fa <= fb {
		t.Errorf("beta=0.5 should favor precision: F(A)=%g F(B)=%g", fa, fb)
	}
	_, _, fa2 := PrecisionRecallF(5, 0, 10, 2)
	_, _, fb2 := PrecisionRecallF(10, 10, 10, 2)
	if fa2 >= fb2 {
		t.Errorf("beta=2 should favor recall: F(A)=%g F(B)=%g", fa2, fb2)
	}
}

// Property: F is always between min(P,R)·k and max(P,R), and zero iff
// either P or R is zero.
func TestFMeasureBounds(t *testing.T) {
	f := func(fail, succ, extraFail uint8) bool {
		totalFail := int(fail) + int(extraFail)
		if totalFail == 0 {
			totalFail = 1
		}
		p, r, fm := PrecisionRecallF(int(fail), int(succ), totalFail, 0.5)
		if p == 0 || r == 0 {
			return fm == 0
		}
		lo, hi := p, r
		if lo > hi {
			lo, hi = hi, lo
		}
		return fm >= 0 && fm <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestKendallTauIdentical(t *testing.T) {
	d, p := KendallTau([]int{1, 2, 3, 4}, []int{1, 2, 3, 4})
	if d != 0 || p != 6 {
		t.Errorf("identical: d=%d p=%d", d, p)
	}
	if acc := OrderingAccuracy(d, p); acc != 100 {
		t.Errorf("accuracy: %g", acc)
	}
}

func TestKendallTauReversed(t *testing.T) {
	d, p := KendallTau([]int{1, 2, 3}, []int{3, 2, 1})
	if d != 3 || p != 3 {
		t.Errorf("reversed: d=%d p=%d", d, p)
	}
	if acc := OrderingAccuracy(d, p); acc != 0 {
		t.Errorf("accuracy: %g", acc)
	}
}

func TestKendallTauPaperExample(t *testing.T) {
	// From §5.2: <A,B,C> vs <A,C,B> has tau = 1 (the (B,C) pair).
	d, p := KendallTau([]string{"A", "B", "C"}, []string{"A", "C", "B"})
	if d != 1 || p != 3 {
		t.Errorf("paper example: d=%d p=%d", d, p)
	}
}

func TestKendallTauPartialOverlap(t *testing.T) {
	// Only common items are compared.
	d, p := KendallTau([]int{1, 2, 3, 9}, []int{7, 3, 2})
	// common = {2,3}: a has 2 before 3, b has 3 before 2 -> 1 disagreement.
	if d != 1 || p != 1 {
		t.Errorf("partial: d=%d p=%d", d, p)
	}
}

// The documented duplicate semantics: only the first occurrence of a
// repeated key counts; a ranking with duplicates is equivalent to the
// same ranking with later duplicates deleted.
func TestKendallTauDuplicatesFirstOccurrenceWins(t *testing.T) {
	// [1 2 1 3] must behave exactly like [1 2 3].
	d1, p1 := KendallTau([]int{1, 2, 1, 3}, []int{3, 2, 1})
	d2, p2 := KendallTau([]int{1, 2, 3}, []int{3, 2, 1})
	if d1 != d2 || p1 != p2 {
		t.Errorf("dup in a: d=%d p=%d, dedup'd: d=%d p=%d", d1, p1, d2, p2)
	}
	// Duplicates in b as well: [3 2 3 1 2] behaves like [3 2 1].
	d3, p3 := KendallTau([]int{1, 2, 3}, []int{3, 2, 3, 1, 2})
	if d3 != d2 || p3 != p2 {
		t.Errorf("dup in b: d=%d p=%d, want d=%d p=%d", d3, p3, d2, p2)
	}
	// The pair count must reflect distinct common items only — the
	// historical bug risk was `pairs` inflating with repeated keys.
	_, p4 := KendallTau([]int{5, 5, 5, 6}, []int{6, 5})
	if p4 != 1 {
		t.Errorf("pairs over {5,6} = %d, want 1", p4)
	}
}

// Property: appending duplicates of already-present items never changes
// the result.
func TestKendallTauDuplicateInvariance(t *testing.T) {
	f := func(raw []uint8) bool {
		seen := map[uint8]bool{}
		var a []uint8
		for _, x := range raw {
			if !seen[x] {
				seen[x] = true
				a = append(a, x)
			}
		}
		b := make([]uint8, len(a))
		copy(b, a)
		for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
			b[i], b[j] = b[j], b[i]
		}
		d1, p1 := KendallTau(a, b)
		// Duplicate every element of a (appended at the end, the worst
		// position for a "last occurrence wins" bug to hide).
		dup := append(append([]uint8(nil), a...), a...)
		d2, p2 := KendallTau(dup, b)
		return d1 == d2 && p1 == p2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The totalFail == 0 edge: recall and F are 0 by convention, precision
// is still meaningful, and nothing divides by zero.
func TestPrecisionRecallFNoFailingRuns(t *testing.T) {
	p, r, f := PrecisionRecallF(0, 0, 0, 0.5)
	if p != 0 || r != 0 || f != 0 {
		t.Errorf("all-zero counts: got %g,%g,%g want 0,0,0", p, r, f)
	}
	p, r, f = PrecisionRecallF(0, 3, 0, 0.5)
	if p != 0 || r != 0 || f != 0 {
		t.Errorf("succ-only counts: got %g,%g,%g want 0,0,0", p, r, f)
	}
	// Inconsistent counts (fail > totalFail == 0): precision is perfect
	// but recall and F stay 0 by the documented convention — and stay
	// finite, which is what admission code relies on.
	p, r, f = PrecisionRecallF(2, 0, 0, 0.5)
	if p != 1 || r != 0 || f != 0 {
		t.Errorf("fail>totalFail=0: got %g,%g,%g want 1,0,0", p, r, f)
	}
	for _, v := range []float64{p, r, f} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("non-finite result: %g", v)
		}
	}
}

func TestKendallTauEmpty(t *testing.T) {
	d, p := KendallTau([]int{}, []int{1, 2})
	if d != 0 || p != 0 {
		t.Errorf("empty: d=%d p=%d", d, p)
	}
	if acc := OrderingAccuracy(0, 0); acc != 100 {
		t.Errorf("no-pairs accuracy should be 100, got %g", acc)
	}
}

// Property: tau distance is symmetric and bounded by the pair count.
func TestKendallTauProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		// Build two permutations of the dedup'd items.
		seen := map[uint8]bool{}
		var a []uint8
		for _, x := range raw {
			if !seen[x] {
				seen[x] = true
				a = append(a, x)
			}
		}
		b := make([]uint8, len(a))
		copy(b, a)
		// Reverse b.
		for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
			b[i], b[j] = b[j], b[i]
		}
		d1, p1 := KendallTau(a, b)
		d2, p2 := KendallTau(b, a)
		if d1 != d2 || p1 != p2 {
			return false
		}
		if d1 > p1 {
			return false
		}
		n := len(a)
		return p1 == n*(n-1)/2 && d1 == p1 // full reversal disagrees everywhere
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestJaccard(t *testing.T) {
	set := func(xs ...int) map[int]bool {
		m := map[int]bool{}
		for _, x := range xs {
			m[x] = true
		}
		return m
	}
	cases := []struct {
		a, b map[int]bool
		want float64
	}{
		{set(1, 2, 3), set(1, 2, 3), 100},
		{set(1, 2), set(3, 4), 0},
		{set(1, 2, 3), set(2, 3, 4), 50},
		{set(), set(), 100},
		{set(1), set(), 0},
	}
	for i, c := range cases {
		if got := Jaccard(c.a, c.b); !almost(got, c.want) {
			t.Errorf("case %d: got %g want %g", i, got, c.want)
		}
	}
}

// Property: Jaccard is symmetric and within [0, 100].
func TestJaccardProperties(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := map[uint8]bool{}
		b := map[uint8]bool{}
		for _, x := range xs {
			a[x] = true
		}
		for _, y := range ys {
			b[y] = true
		}
		j1 := Jaccard(a, b)
		j2 := Jaccard(b, a)
		return almost(j1, j2) && j1 >= 0 && j1 <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); !almost(got, 2) {
		t.Errorf("mean: %g", got)
	}
}
