package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestOnlineMatchesBatch is the property test behind the streaming
// ingestion front-end: for random report streams, incrementally updated
// contingency counters must match the end-of-stream batch recomputation
// exactly — same integers in, same floats out, at every prefix of the
// stream, for every predictor, including ones that first hold
// mid-stream and the documented totalFail==0 edge.
func TestOnlineMatchesBatch(t *testing.T) {
	const universe = 12 // predictor keys 0..11
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		o := NewOnline[int]()

		// Batch ground truth, recomputed from scratch after every event.
		batchFail := make(map[int]int)
		batchSucc := make(map[int]int)
		totalFail := 0

		// Trial 0 never fails: the totalFail==0 edge must hold at every
		// prefix, not just the empty stream.
		events := 1 + rng.Intn(40)
		for e := 0; e < events; e++ {
			failing := trial != 0 && rng.Intn(2) == 0
			var held []int
			for k := 0; k < universe; k++ {
				if rng.Intn(3) == 0 {
					held = append(held, k)
				}
			}
			o.Observe(failing, held)
			if failing {
				totalFail++
			}
			for _, k := range held {
				if failing {
					batchFail[k]++
				} else {
					batchSucc[k]++
				}
			}

			if o.TotalFail() != totalFail {
				t.Fatalf("trial %d event %d: TotalFail = %d, batch says %d", trial, e, o.TotalFail(), totalFail)
			}
			for k := 0; k < universe; k++ {
				c := o.Counts(k)
				if c.Fail != batchFail[k] || c.Succ != batchSucc[k] || c.TotalFail != totalFail {
					t.Fatalf("trial %d event %d key %d: counts %+v, batch (%d,%d,%d)",
						trial, e, k, c, batchFail[k], batchSucc[k], totalFail)
				}
				for _, beta := range []float64{0.5, 1, 2} {
					p1, r1, f1 := o.PRF(k, beta)
					p2, r2, f2 := PrecisionRecallF(batchFail[k], batchSucc[k], totalFail, beta)
					if p1 != p2 || r1 != r2 || f1 != f2 {
						t.Fatalf("trial %d event %d key %d beta %g: online (%g,%g,%g), batch (%g,%g,%g)",
							trial, e, k, beta, p1, r1, f1, p2, r2, f2)
					}
					if totalFail == 0 && (r1 != 0 || f1 != 0) {
						t.Fatalf("trial %d event %d key %d: totalFail==0 must pin recall and F to 0, got r=%g f=%g", trial, e, k, r1, f1)
					}
					if math.IsNaN(p1) || math.IsNaN(r1) || math.IsNaN(f1) {
						t.Fatalf("trial %d event %d key %d: NaN from PRF", trial, e, k)
					}
				}
			}
		}
	}
}

// TestContingencyMerge pins that sharded accumulation combines by plain
// addition: observing a stream in two halves and merging equals
// observing it whole.
func TestContingencyMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var whole, a, b Contingency
	for e := 0; e < 100; e++ {
		failing := rng.Intn(2) == 0
		held := rng.Intn(2) == 0
		obs := func(c *Contingency) {
			if failing {
				c.TotalFail++
			}
			if held {
				if failing {
					c.Fail++
				} else {
					c.Succ++
				}
			}
		}
		obs(&whole)
		if e%2 == 0 {
			obs(&a)
		} else {
			obs(&b)
		}
	}
	a.Merge(b)
	if a != whole {
		t.Fatalf("merged shards %+v differ from whole-stream counts %+v", a, whole)
	}
	p1, r1, f1 := a.PRF(0.5)
	p2, r2, f2 := whole.PRF(0.5)
	if p1 != p2 || r1 != r2 || f1 != f2 {
		t.Fatalf("merged PRF (%g,%g,%g) differs from whole-stream PRF (%g,%g,%g)", p1, r1, f1, p2, r2, f2)
	}
}
